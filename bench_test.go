// Benchmark harness: one testing.B benchmark per table/figure of the
// paper (see DESIGN.md's per-experiment index). The full averaged
// tables are produced by cmd/rsnbench; these benchmarks exercise the
// same code paths at a bounded size so `go test -bench=.` regenerates
// every experiment's machinery and reports its cost.
package rsnsec

import (
	"strings"
	"testing"
)

// BenchmarkTableISizes (E1) regenerates the structural columns of
// Table I: all 22 full-size benchmark networks.
func BenchmarkTableISizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range Catalog() {
			nw := bm.Build(1)
			st := nw.Stats()
			if st.Registers != bm.Registers || st.Muxes != bm.Muxes {
				b.Fatalf("%s: structure mismatch", bm.Name)
			}
		}
	}
}

// benchProtocol runs the Table I measured protocol (E2/E3) for one
// benchmark at smoke-test size.
func benchProtocol(b *testing.B, name string) {
	b.Helper()
	bm, ok := BenchmarkByName(name)
	if !ok {
		b.Fatalf("benchmark %s missing", name)
	}
	cfg := QuickRunConfig()
	cfg.Circuits, cfg.Specs = 2, 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBenchmark(bm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIMainBasicSCB (E2/E3) measures the averaged protocol
// on the smallest BASTION benchmark.
func BenchmarkTableIMainBasicSCB(b *testing.B) { benchProtocol(b, "BasicSCB") }

// BenchmarkTableIMainTreeFlat (E2/E3) covers the SIB-tree topology.
func BenchmarkTableIMainTreeFlat(b *testing.B) { benchProtocol(b, "TreeFlat") }

// BenchmarkTableIMainMBIST (E2/E3) covers the industrial MBIST family.
func BenchmarkTableIMainMBIST(b *testing.B) { benchProtocol(b, "MBIST_1_5_5") }

// BenchmarkTableIMainFlexScan (E2/E3) covers the serial-bypass
// topology with one module per register.
func BenchmarkTableIMainFlexScan(b *testing.B) { benchProtocol(b, "FlexScan") }

// BenchmarkBridging (E4) measures the Section III-A bridging
// comparison: the dependency analysis with and without internal
// flip-flop elimination.
func BenchmarkBridging(b *testing.B) {
	bm, _ := BenchmarkByName("Mingle")
	cfg := QuickRunConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunBridging(bm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FFReduction() <= 0 {
			b.Fatal("bridging removed nothing")
		}
	}
}

// BenchmarkStructuralApprox (E5) measures the Section IV-C ablation:
// exact versus structurally over-approximated dependencies.
func BenchmarkStructuralApprox(b *testing.B) {
	bm, _ := BenchmarkByName("BasicSCB")
	cfg := QuickRunConfig()
	cfg.Circuits, cfg.Specs = 2, 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunApprox(bm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunningExample (E6, Figures 1/4/5) secures the paper's
// running example end to end.
func BenchmarkRunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ex := RunningExample()
		rep, err := Secure(ex.Network, ex.Circuit, ex.Internal, ex.Spec, Options{})
		if err != nil || !rep.Secured {
			b.Fatalf("secure failed: %v", err)
		}
	}
}

// BenchmarkPipelineStages (E7, Figure 2) isolates the pipeline on a
// mid-size benchmark with one circuit and specification.
func BenchmarkPipelineStages(b *testing.B) {
	bm, _ := BenchmarkByName("MBIST_1_5_5")
	base := bm.Build(1)
	att := AttachCircuit(base, DefaultCircuitConfig(), 3)
	spec := GenerateSpec(len(base.Modules), DefaultSpecGenConfig(), 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := base.Clone()
		if _, err := Secure(nw, att.Circuit, att.Internal, spec, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkICLRoundTrip measures parsing and writing of a mid-size
// network (the benchmark distribution format, E1's substrate).
func BenchmarkICLRoundTrip(b *testing.B) {
	bm, _ := BenchmarkByName("p22810")
	nw := bm.Build(0.2)
	text := mustICL(b, nw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw2, err := ParseICL(text, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = mustICL(b, nw2)
	}
}

func mustICL(b *testing.B, nw *Network) string {
	b.Helper()
	var sb strings.Builder
	if err := WriteICL(&sb, nw, nil); err != nil {
		b.Fatal(err)
	}
	return sb.String()
}
