package rsnsec

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	ex := RunningExample()
	rep, err := Secure(ex.Network, ex.Circuit, ex.Internal, ex.Spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secured || rep.TotalChanges() == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFacadeBuildAndRoundTrip(t *testing.T) {
	nw := NewNetwork("facade")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 3, m)
	b := nw.AddRegister("B", 2, m)
	nw.Connect(a, ScanIn)
	mx := nw.AddMux("M", RegRef(a), ScanIn)
	nw.Connect(b, MuxRef(mx))
	nw.ConnectOut(RegRef(b))
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteICL(&sb, nw, nil); err != nil {
		t.Fatal(err)
	}
	nw2, err := ParseICL(sb.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nw2.Stats() != nw.Stats() {
		t.Fatalf("round trip: %+v vs %+v", nw2.Stats(), nw.Stats())
	}
}

func TestFacadeSpecHelpers(t *testing.T) {
	s := NewSpec(2, 4)
	s.SetTrust(0, 3)
	s.SetAccepts(0, NewCatSet(3))
	if !s.Violates(0, 1) {
		t.Fatal("spec helpers broken")
	}
	if AllCats(4).Len() != 4 {
		t.Fatal("AllCats broken")
	}
	g := GenerateSpec(10, DefaultSpecGenConfig(), 3)
	if g.NumModules() != 10 {
		t.Fatal("GenerateSpec broken")
	}
}

func TestFacadeCatalogAndExperiments(t *testing.T) {
	if len(Catalog()) != 22 {
		t.Fatal("catalog size")
	}
	b, ok := BenchmarkByName("BasicSCB")
	if !ok {
		t.Fatal("BasicSCB missing")
	}
	cfg := QuickRunConfig()
	cfg.Circuits, cfg.Specs = 1, 2
	res, err := RunBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs+res.SkippedNoViolation+res.SkippedInsecureLogic+res.Errors != 2 {
		t.Fatal("accounting broken")
	}
}

func TestFacadeSimulators(t *testing.T) {
	n := NewNetlist()
	mod := n.AddModule("m")
	f := n.AddFF("f", mod)
	n.SetFFInput(f, n.FFs[f].Node)

	nw := NewNetwork("sim")
	nw.AddModule("m")
	r := nw.AddRegister("R", 1, 0)
	nw.Connect(r, ScanIn)
	nw.ConnectOut(RegRef(r))
	nw.SetCapture(r, 0, f)

	cs := NewCircuitSimulator(n)
	cs.SetFF(f, true)
	sim := NewNetworkSimulator(nw, cs)
	cfg := nw.NewConfig()
	if err := sim.Capture(cfg); err != nil {
		t.Fatal(err)
	}
	if !sim.ScanFF(r, 0) {
		t.Fatal("capture through facade failed")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	ex := RunningExample()
	an := NewAnalysis(ex.Network, ex.Circuit, ex.Internal, ex.Spec, Exact)
	if len(an.Violations(ex.Network)) == 0 {
		t.Fatal("analysis found no violations on the insecure example")
	}
	if len(an.InsecureLogic()) != 0 {
		t.Fatal("unexpected insecure logic")
	}
}

func TestFacadeGenerateCircuit(t *testing.T) {
	g := GenerateCircuit(CircuitGenConfig{
		ModuleNames:       []string{"a", "b"},
		PortFFs:           []int{3, 3},
		InternalFFs:       1,
		Inputs:            2,
		CrossEdges:        2,
		ReconvergenceRate: 0.2,
		Depth:             2,
	}, 9)
	if g.N.NumFFs() != 8 {
		t.Fatalf("FFs = %d", g.N.NumFFs())
	}
	if err := g.N.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVerify(t *testing.T) {
	ex := RunningExample()
	if Verify(ex.Network, ex.Circuit, ex.Spec).Secure {
		t.Fatal("insecure example passed verification")
	}
	rep, err := Secure(ex.Network, ex.Circuit, ex.Internal, ex.Spec, Options{})
	if err != nil || !rep.Secured {
		t.Fatal(err)
	}
	v := Verify(ex.Network, ex.Circuit, ex.Spec)
	if !v.Secure {
		t.Fatalf("secured example failed verification: %v", v.Counterexamples)
	}
	if v.Edges == 0 {
		t.Fatal("empty flow graph")
	}
}

func TestFacadeBenchFormat(t *testing.T) {
	g := GenerateCircuit(CircuitGenConfig{
		ModuleNames: []string{"m"}, PortFFs: []int{3}, InternalFFs: 1,
		Inputs: 2, CrossEdges: 0, Depth: 2,
	}, 4)
	var sb strings.Builder
	if err := WriteBench(&sb, g.N); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumFFs() != g.N.NumFFs() {
		t.Fatal("bench round trip lost flip-flops")
	}
}

func TestFacadeICLWithSpec(t *testing.T) {
	ex := RunningExample()
	var sb strings.Builder
	name := func(f FFID) string { return ex.Circuit.FFs[f].Name }
	if err := WriteICLWithSpec(&sb, ex.Network, ex.Spec, name); err != nil {
		t.Fatal(err)
	}
	byName := map[string]FFID{}
	for i := range ex.Circuit.FFs {
		byName[ex.Circuit.FFs[i].Name] = FFID(i)
	}
	lookup := func(s string) (FFID, bool) { id, ok := byName[s]; return id, ok }
	nw, spec, err := ParseICLWithSpec(sb.String(), lookup)
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.NumCategories != ex.Spec.NumCategories {
		t.Fatal("spec lost")
	}
	if nw.Stats() != ex.Network.Stats() {
		t.Fatal("network changed")
	}
	// The reloaded problem must show the same violations.
	an := NewAnalysis(nw, ex.Circuit, ex.Internal, spec, Exact)
	if len(an.Violations(nw)) == 0 {
		t.Fatal("reloaded problem lost its violations")
	}
}

func TestFacadeIncrementalSession(t *testing.T) {
	ex := RunningExample()
	an, err := NewAnalysisOpts(ex.Network, ex.Circuit, ex.Internal, ex.Spec, Exact, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := SecureWithAnalysis(an, ex.Network.Clone(), Options{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	baseRep := SecureRunReport("test", "facade", Exact, ex.Network.Stats(), base, nil)

	script, err := ParseEditScript([]byte(
		`{"ops":[{"op":"add-register","pin":"R0","src":"SI","name":"dx","len":1,"module":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !script.AddsRegisters() {
		t.Fatal("AddsRegisters lost through the facade")
	}
	res, err := SecureDelta("test", "facade", an, ex.Network, script, Options{Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Structural {
		t.Fatal("add-register delta not flagged structural")
	}

	hash, err := script.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDeltaDoc("", "", hash, len(script.Ops), baseRep, res.Report)
	var buf bytes.Buffer
	if err := WriteDeltaDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := ReadDeltaDoc(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Schema != DeltaReportSchema || doc2.Diff == nil {
		t.Fatalf("delta doc round trip: %+v", doc2)
	}
	if d := CompareRunReports(baseRep, res.Report); d == nil {
		t.Fatal("CompareRunReports returned nil")
	}

	// Snapshot round trip through the facade seam.
	snap, err := res.Analysis.Snapshot(res.Derived)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := ReadAnalysisSnapshot(res.Derived, snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Analysis.Restore(snap2); err != nil {
		t.Fatal(err)
	}
	// A wiring-only script must NOT be structural and must reuse the
	// caller's analysis.
	wiring := &EditScript{Ops: []EditOp{{Op: OpCutReconnect, Pin: "R0", Src: "R1"}}}
	if res2, err := SecureDelta("test", "facade", an, ex.Network, wiring, Options{Mode: Exact}); err == nil {
		if res2.Structural || res2.Analysis != an {
			t.Fatal("wiring-only delta did not reuse the analysis")
		}
	}
}

func TestFacadeRolesAndExplain(t *testing.T) {
	b, _ := BenchmarkByName("BasicSCB")
	nw := b.Build(1)
	att := AttachCircuit(nw, DefaultCircuitConfig(), 2)
	spec := GenerateSpecWithRoles(len(nw.Modules), att.DataSources, DefaultSpecGenConfig(), 7)
	an := NewAnalysis(nw, att.Circuit, att.Internal, spec, Exact)
	if len(an.InsecureModulePairs()) > 0 {
		t.Skip("seed produced insecure logic; explanation path covered elsewhere")
	}
	for _, e := range an.ExplainAll(nw) {
		if len(e.Steps) == 0 || e.String() == "" {
			t.Fatal("degenerate explanation")
		}
	}
}
