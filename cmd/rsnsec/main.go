// Command rsnsec analyzes a reconfigurable scan network against a
// security specification and transforms it into a data-flow secure
// network, printing the pipeline stages of the paper's Figure 2.
//
// Two input modes:
//
//	rsnsec -benchmark BasicSCB [-scale 0.5] [-seed 1] [-spec-seed 1]
//	    reconstructs a Table I benchmark, attaches a random circuit and
//	    a random security specification (the paper's protocol);
//
//	rsnsec -icl network.icl
//	    reads an ICL description (without instrument links) and runs
//	    the pure-path stage against a random specification.
//
// Use -mode structural for the Section IV-C over-approximation and
// -out to write the secured network back as ICL.
//
// Attack mode: -attack runs the scan-obfuscation attack analysis
// instead of securing. The network comes from -benchmark or -icl; the
// key-gate overlay from -overlay overlay.json (rsnsec.obfus-overlay/v1,
// optionally with an embedded defender key) or is generated with
// -obf-keybits N [-obf-mux-share F] [-obf-dynamic] from -seed. The true
// key defaults to the overlay's embedded key (generated overlays always
// have one); -key HEX overrides it. The run prints the
// rsnsec.attack-report/v1 document on stdout — under -q the only bytes
// stdout carries. -attack-timings stamps wall-clock durations into the
// report (off by default so identical runs stay byte-identical);
// -attack-horizon, -attack-iters and -attack-conflicts bound the
// attacks. -validate-attack report.json checks a stored report against
// the schema and exits.
//
// Incremental mode: -delta script.json secures the base network, then
// applies the JSON edit script and re-secures the derived network
// incrementally — wiring-only scripts reuse the dependency analysis
// entirely — and prints the rsnsec.delta-report/v1 document (the delta
// run's report plus the structured diff against the base run) on
// stdout. Under -q stdout carries nothing but that document.
//
// Engine flags:
// -workers bounds the SAT worker pool (the hybrid resolve stage also
// fans candidate trials out over it), -timeout cancels the run after
// a duration, and -v prints per-stage engine progress and a stats
// table — the propagate-delta row shows how much of the violation
// checking the incremental resolution answered from the cached fixed
// point (items = re-propagated nodes, saved = reused ones).
//
// Observability flags: -q silences the informational stdout lines and
// the stderr diagnostics (debug-endpoint banner, progress, stats) —
// full machine mode, hard errors still reach stderr; -trace writes the
// hierarchical span journal (run > secure > stage > query) as JSONL
// with query spans sampled per -trace-sample, and -debug-addr serves
// live expvar, Prometheus-text metrics and pprof during the run.
// -validate-slo FILE checks a stored observability document — an SLO
// objectives config (rsnsec.slo-config/v1), a served status snapshot
// (rsnsec.slo-status/v1) or a metrics-history query result
// (rsnsec.metrics-history/v1) — against its schema and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	rsnsec "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/series"
	"repro/internal/obs/slo"
	"repro/internal/version"
)

// engineConfig carries the run-orchestration flags.
type engineConfig struct {
	workers     int
	timeout     time.Duration
	verbose     bool
	quiet       bool
	tracePath   string
	traceSample int
	debugAddr   string
	logger      *slog.Logger
}

func main() {
	var (
		benchName   = flag.String("benchmark", "", "Table I benchmark name (see rsnbench -table sizes)")
		iclPath     = flag.String("icl", "", "path to an ICL network description")
		scale       = flag.Float64("scale", 1, "structure scale for -benchmark (0..1]")
		seed        = flag.Int64("seed", 1, "circuit generation seed")
		specSeed    = flag.Int64("spec-seed", 1, "security specification seed")
		mode        = flag.String("mode", "exact", "dependency mode: exact or structural")
		outPath     = flag.String("out", "", "write the secured network as ICL to this file")
		deltaPath   = flag.String("delta", "", "JSON edit script: secure the base, apply the script, re-secure incrementally and print the delta report on stdout")
		benchPath   = flag.String("bench", "", "circuit (.bench) backing the -icl network's instrument links")
		doVerify    = flag.Bool("verify", false, "re-check the result with the independent verifier")
		explain     = flag.Int("explain", 0, "print up to N violating data flows before resolving")
		workers     = flag.Int("workers", 0, "SAT worker pool size (0 = all CPUs)")
		timeout     = flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
		verbose     = flag.Bool("v", false, "print per-stage engine progress and a stats table (stderr)")
		quiet       = flag.Bool("q", false, "suppress the informational lines on stdout")
		trace       = flag.String("trace", "", "write the span journal as JSONL to this file")
		traceSmp    = flag.Int("trace-sample", 64, "record every n-th high-frequency query span")
		debugAddr   = flag.String("debug-addr", "", "serve expvar, Prometheus metrics and pprof on this address during the run")
		attack      = flag.Bool("attack", false, "run the scan-obfuscation attack analysis and print the attack report on stdout")
		overlayPath = flag.String("overlay", "", "key-gate overlay (rsnsec.obfus-overlay/v1) for -attack")
		obfKeyBits  = flag.Int("obf-keybits", 0, "generate an overlay with this many key bits when -overlay is not given")
		obfMuxShare = flag.Float64("obf-mux-share", -1, "fraction of generated key bits gating mux selects (-1 = default 0.5)")
		obfDynamic  = flag.Bool("obf-dynamic", false, "generated overlay uses the dynamic (LFSR) key schedule")
		keyHex      = flag.String("key", "", "true key as big-endian hex (default: the overlay's embedded key)")
		atkHorizon  = flag.Int("attack-horizon", 0, "observation window in shift cycles (0 = derived from the network)")
		atkIters    = flag.Int("attack-iters", 0, "max ScanSAT refinement iterations (0 = default)")
		atkConfl    = flag.Int64("attack-conflicts", 0, "total solver conflict budget for the key recovery (0 = unlimited)")
		atkTimings  = flag.Bool("attack-timings", false, "include wall-clock timings in the attack report")
		validateAtk = flag.String("validate-attack", "", "validate a stored attack report and exit")
		validateSLO = flag.String("validate-slo", "", "validate a stored SLO/observability document (slo-config, slo-status or metrics-history) and exit")
		logLevel    = flag.String("log-level", "info", "log level spec: LEVEL[,component=LEVEL...] (debug|info|warn|error|off)")
		logFormat   = flag.String("log-format", "text", "log record encoding: text or json")
		showVer     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("rsnsec"))
		return
	}
	lg, err := cliutil.Logger(os.Stderr, *logLevel, *logFormat, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsnsec:", err)
		os.Exit(1)
	}
	ec := engineConfig{workers: *workers, timeout: *timeout, verbose: *verbose,
		quiet: *quiet, tracePath: *trace, traceSample: *traceSmp, debugAddr: *debugAddr,
		logger: lg}
	switch {
	case *validateAtk != "":
		err = runValidateAttack(*validateAtk, ec)
	case *validateSLO != "":
		err = runValidateSLO(*validateSLO, ec)
	case *attack:
		ac := attackConfig{overlayPath: *overlayPath, keyBits: *obfKeyBits,
			muxShare: *obfMuxShare, dynamic: *obfDynamic, keyHex: *keyHex,
			horizon: *atkHorizon, iters: *atkIters, conflicts: *atkConfl,
			timings: *atkTimings}
		err = runAttack(*benchName, *iclPath, *scale, *seed, ac, ec)
	default:
		err = run(*benchName, *iclPath, *benchPath, *scale, *seed, *specSeed, *mode, *outPath, *deltaPath, *doVerify, *explain, ec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsnsec:", err)
		os.Exit(1)
	}
}

func run(benchName, iclPath, benchPath string, scale float64, seed, specSeed int64, modeName, outPath, deltaPath string, doVerify bool, explain int, ec engineConfig) error {
	var m rsnsec.Mode
	switch modeName {
	case "exact":
		m = rsnsec.Exact
	case "structural":
		m = rsnsec.StructuralApprox
	default:
		return fmt.Errorf("unknown mode %q (want exact or structural)", modeName)
	}

	ctx := context.Background()
	if ec.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ec.timeout)
		defer cancel()
	}

	// Informational lines go to stdout, engine progress and the stats
	// table to stderr; -q silences both (hard errors still reach
	// stderr through main).
	out := io.Writer(os.Stdout)
	errw := io.Writer(os.Stderr)
	if ec.quiet {
		out = io.Discard
		errw = io.Discard
	}
	reg := rsnsec.NewMetricsRegistry()
	var stats *rsnsec.EngineStats
	var progress func(format string, args ...any)
	if ec.verbose || ec.debugAddr != "" {
		stats = rsnsec.NewEngineStatsOn(reg)
	}
	if ec.verbose {
		progress = func(f string, a ...any) { fmt.Fprintf(errw, "  engine: %s\n", fmt.Sprintf(f, a...)) }
	}
	var tracer *rsnsec.Tracer
	if ec.tracePath != "" {
		tf, err := os.Create(ec.tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		tracer = rsnsec.NewTracer(rsnsec.NewJSONLTraceSink(tf))
		tracer.SampleEvery("query", ec.traceSample)
		tracer.SampleEvery("propagate-delta", ec.traceSample)
	}
	if ec.debugAddr != "" {
		dbg, err := rsnsec.StartDebugServer(ec.debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		ec.logger.LogAttrs(ctx, slog.LevelInfo, "debug endpoints up", slog.String("addr", dbg.Addr()))
	}
	runSpan := tracer.Start(nil, "run", obs.Str("tool", "rsnsec"), obs.Int("workers", int64(ec.workers)))
	defer runSpan.End()
	engLog := olog.Component(ec.logger, "engine")
	engOpts := rsnsec.EngineOptions{Workers: ec.workers, Context: ctx, Progress: progress, Stats: stats,
		Tracer: tracer, TraceParent: runSpan, Logger: engLog}

	var (
		nw           *rsnsec.Network
		circuit      *rsnsec.Netlist
		internal     []rsnsec.FFID
		embeddedSpec *rsnsec.Spec
		dataSources  []bool
	)
	switch {
	case benchName != "" && iclPath != "":
		return fmt.Errorf("-benchmark and -icl are mutually exclusive")
	case benchName != "":
		b, ok := rsnsec.BenchmarkByName(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", benchName)
		}
		nw = b.Build(scale)
		att := rsnsec.AttachCircuit(nw, rsnsec.DefaultCircuitConfig(), seed)
		circuit = att.Circuit
		internal = att.Internal
		dataSources = att.DataSources
		fmt.Fprintf(out, "benchmark %s at scale %g: %d registers, %d scan FFs, %d muxes, circuit %d FFs\n",
			benchName, scale, nw.Stats().Registers, nw.Stats().ScanFFs, nw.Stats().Muxes, circuit.NumFFs())
	case iclPath != "":
		data, err := os.ReadFile(iclPath)
		if err != nil {
			return err
		}
		var lookup func(string) (rsnsec.FFID, bool)
		var lazyCircuit *rsnsec.Netlist
		if benchPath != "" {
			// Bind instrument links against a real circuit.
			cf, err := os.Open(benchPath)
			if err != nil {
				return err
			}
			circuit, err = rsnsec.ParseBench(cf)
			cf.Close()
			if err != nil {
				return err
			}
			byName := map[string]rsnsec.FFID{}
			for i := range circuit.FFs {
				byName[circuit.FFs[i].Name] = rsnsec.FFID(i)
			}
			lookup = func(name string) (rsnsec.FFID, bool) {
				id, ok := byName[name]
				return id, ok
			}
		} else {
			// Synthesize hold flip-flops for referenced instrument
			// names so link-carrying files load without a circuit.
			lazyCircuit = rsnsec.NewNetlist()
			byName := map[string]rsnsec.FFID{}
			lookup = func(name string) (rsnsec.FFID, bool) {
				if id, ok := byName[name]; ok {
					return id, true
				}
				f := lazyCircuit.AddFF(name, 0)
				lazyCircuit.SetFFInput(f, lazyCircuit.FFs[f].Node)
				byName[name] = f
				return f, true
			}
		}
		var fileSpec *rsnsec.Spec
		nw, fileSpec, err = rsnsec.ParseICLWithSpec(string(data), lookup)
		if err != nil {
			return err
		}
		embeddedSpec = fileSpec
		if circuit == nil {
			// The synthetic circuit needs the network's module table.
			circuit = rsnsec.NewNetlist()
			for _, name := range nw.Modules {
				circuit.AddModule(name)
			}
			for i := range lazyCircuit.FFs {
				name := lazyCircuit.FFs[i].Name
				mod := 0
				for mi, mn := range nw.Modules {
					if len(name) > len(mn) && name[:len(mn)] == mn && name[len(mn)] == '.' {
						mod = mi
						break
					}
				}
				f := circuit.AddFF(name, mod)
				circuit.SetFFInput(f, circuit.FFs[f].Node)
			}
			if circuit.NumFFs() == 0 {
				for mi, name := range nw.Modules {
					f := circuit.AddFF(name+".f", mi)
					circuit.SetFFInput(f, circuit.FFs[f].Node)
				}
			}
		}
		fmt.Fprintf(out, "network %s: %d registers, %d scan FFs, %d muxes, circuit %d FFs\n",
			nw.Name, nw.Stats().Registers, nw.Stats().ScanFFs, nw.Stats().Muxes, circuit.NumFFs())
	default:
		return fmt.Errorf("one of -benchmark or -icl is required")
	}

	spec := embeddedSpec
	if spec != nil {
		fmt.Fprintln(out, "using the security specification embedded in the ICL file")
	}
	genSpec := func(seed int64) *rsnsec.Spec {
		if dataSources != nil {
			return rsnsec.GenerateSpecWithRoles(len(nw.Modules), dataSources, rsnsec.DefaultSpecGenConfig(), seed)
		}
		return rsnsec.GenerateSpec(len(nw.Modules), rsnsec.DefaultSpecGenConfig(), seed)
	}
	logTo := func(f string, a ...any) { fmt.Fprintf(out, "  %s\n", fmt.Sprintf(f, a...)) }
	secOpts := rsnsec.Options{Mode: m, Log: logTo,
		Workers: ec.workers, Context: ctx, Progress: progress, Stats: stats,
		Tracer: tracer, TraceParent: runSpan, Logger: engLog}
	showFlows := func(sp *rsnsec.Spec) error {
		if explain <= 0 {
			return nil
		}
		an, err := rsnsec.NewAnalysisOpts(nw, circuit, internal, sp, m, engOpts)
		if err != nil {
			return err
		}
		exps := an.ExplainAll(nw)
		if len(exps) == 0 {
			fmt.Fprintln(out, "no violating data flows")
			return nil
		}
		fmt.Fprintf(out, "violating data flows (%d total, showing up to %d):\n", len(exps), explain)
		for i, e := range exps {
			if i >= explain {
				break
			}
			fmt.Fprintf(out, "  [%d wiring hops] %s\n", e.WiringHops, e)
		}
		return nil
	}
	if spec == nil {
		// Like the paper's protocol, skip generated specifications under
		// which the circuit logic itself is insecure: no scan network
		// transformation can help those.
		const maxTries = 16
		analysis, err := rsnsec.NewAnalysisOpts(nw, circuit, internal, nil, m, engOpts)
		if err != nil {
			return err
		}
		chosen := int64(-1)
		for try := int64(0); try < maxTries; try++ {
			cand := genSpec(specSeed + try)
			ca := analysis.WithSpec(cand)
			if len(ca.InsecureModulePairs()) > 0 {
				continue // the paper's protocol skips such specifications
			}
			spec = cand
			chosen = specSeed + try
			if len(ca.ViolatingRegisters(nw)) > 0 {
				break // prefer a specification the method has work on
			}
		}
		if spec == nil {
			return fmt.Errorf("no generated specification with secure circuit logic in %d tries; give -spec-seed", maxTries)
		}
		if chosen != specSeed {
			fmt.Fprintf(out, "using spec seed %d (earlier seeds classified the circuit logic insecure)\n", chosen)
		}
	}
	if err := showFlows(spec); err != nil {
		return err
	}
	if deltaPath != "" {
		if outPath != "" || doVerify {
			return fmt.Errorf("-delta is incompatible with -out and -verify (its result is the delta report, not a transformed network)")
		}
		return runDelta(nw, circuit, internal, spec, deltaPath, m, engOpts, secOpts, out)
	}
	rep, err := rsnsec.Secure(nw, circuit, internal, spec, secOpts)
	if err != nil {
		return err
	}
	switch {
	case rep.InsecureLogic:
		fmt.Fprintf(out, "result: INSECURE CIRCUIT LOGIC (%d module pairs) — requires circuit redesign\n",
			len(rep.InsecureModulePairs))
	case rep.Secured:
		fmt.Fprintf(out, "result: SECURE after %d changes (%d pure + %d hybrid) in %s\n",
			rep.TotalChanges(), rep.PureChanges, rep.HybridChanges, rep.Times.Total.Round(1000000))
	}
	if doVerify && rep.Secured {
		v := rsnsec.Verify(nw, circuit, spec)
		if v.Secure {
			fmt.Fprintf(out, "independent verification: SECURE (%d edges, %d exhaustive + %d SAT checks)\n",
				v.Edges, v.ExhaustiveChecks, v.SATChecks)
		} else {
			fmt.Fprintln(os.Stderr, "independent verification FAILED:")
			for _, f := range v.Counterexamples {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			return fmt.Errorf("verification mismatch — please report this")
		}
	}
	if outPath != "" && rep.Secured {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		name := func(ff rsnsec.FFID) string { return circuit.FFs[ff].Name }
		if err := rsnsec.WriteICLWithSpec(f, nw, spec, name); err != nil {
			return err
		}
		fmt.Fprintf(out, "secured network written to %s\n", outPath)
	}
	if ec.verbose && stats != nil {
		fmt.Fprintf(errw, "engine stats:\n%s\n", stats)
	}
	return nil
}

// attackConfig carries the -attack mode flags.
type attackConfig struct {
	overlayPath string
	keyBits     int
	muxShare    float64
	dynamic     bool
	keyHex      string
	horizon     int
	iters       int
	conflicts   int64
	timings     bool
}

// loadAttackNetwork resolves the attacked network from -benchmark or
// -icl. Attack mode never consults the instrument circuit, so ICL
// instrument links resolve against synthesized flip-flop IDs.
func loadAttackNetwork(benchName, iclPath string, scale float64, out io.Writer) (*rsnsec.Network, error) {
	switch {
	case benchName != "" && iclPath != "":
		return nil, fmt.Errorf("-benchmark and -icl are mutually exclusive")
	case benchName != "":
		b, ok := rsnsec.BenchmarkByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", benchName)
		}
		nw := b.Build(scale)
		st := nw.Stats()
		fmt.Fprintf(out, "benchmark %s at scale %g: %d registers, %d scan FFs, %d muxes\n",
			benchName, scale, st.Registers, st.ScanFFs, st.Muxes)
		return nw, nil
	case iclPath != "":
		data, err := os.ReadFile(iclPath)
		if err != nil {
			return nil, err
		}
		byName := map[string]rsnsec.FFID{}
		lookup := func(name string) (rsnsec.FFID, bool) {
			if id, ok := byName[name]; ok {
				return id, true
			}
			id := rsnsec.FFID(len(byName))
			byName[name] = id
			return id, true
		}
		nw, _, err := rsnsec.ParseICLWithSpec(string(data), lookup)
		if err != nil {
			return nil, err
		}
		st := nw.Stats()
		fmt.Fprintf(out, "network %s: %d registers, %d scan FFs, %d muxes\n",
			nw.Name, st.Registers, st.ScanFFs, st.Muxes)
		return nw, nil
	default:
		return nil, fmt.Errorf("one of -benchmark or -icl is required")
	}
}

// runAttack is the -attack mode: resolve the network and overlay, run
// the attack analysis and print the rsnsec.attack-report/v1 document on
// stdout (under -q the only bytes stdout carries).
func runAttack(benchName, iclPath string, scale float64, seed int64, ac attackConfig, ec engineConfig) error {
	ctx := context.Background()
	if ec.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ec.timeout)
		defer cancel()
	}
	out := io.Writer(os.Stdout)
	errw := io.Writer(os.Stderr)
	if ec.quiet {
		out = io.Discard
		errw = io.Discard
	}
	nw, err := loadAttackNetwork(benchName, iclPath, scale, out)
	if err != nil {
		return err
	}

	var (
		ov      *rsnsec.Obfuscation
		trueKey []bool
	)
	switch {
	case ac.overlayPath != "" && ac.keyBits > 0:
		return fmt.Errorf("-overlay and -obf-keybits are mutually exclusive")
	case ac.overlayPath != "":
		data, err := os.ReadFile(ac.overlayPath)
		if err != nil {
			return err
		}
		ov, trueKey, err = rsnsec.ParseObfuscationOverlay(data, nw)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "overlay: %d key bits, %d gates, dynamic=%v\n",
			ov.NumKeyBits, len(ov.Gates), ov.Dynamic)
	case ac.keyBits > 0:
		ov, trueKey, err = rsnsec.ObfuscateNetwork(nw,
			rsnsec.ObfusGenConfig{KeyBits: ac.keyBits, MuxShare: ac.muxShare, Dynamic: ac.dynamic}, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "generated overlay (seed %d): %d key bits, %d gates, dynamic=%v\n",
			seed, ov.NumKeyBits, len(ov.Gates), ov.Dynamic)
	default:
		return fmt.Errorf("-attack needs -overlay or -obf-keybits")
	}
	if ac.keyHex != "" {
		trueKey, err = rsnsec.ParseObfusKeyHex(ac.keyHex, ov.NumKeyBits)
		if err != nil {
			return err
		}
	}
	if trueKey == nil {
		return fmt.Errorf("the overlay carries no key; give -key HEX")
	}

	var stats *rsnsec.EngineStats
	if ec.verbose {
		stats = rsnsec.NewEngineStats()
	}
	var tracer *rsnsec.Tracer
	if ec.tracePath != "" {
		tf, err := os.Create(ec.tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		tracer = rsnsec.NewTracer(rsnsec.NewJSONLTraceSink(tf))
	}
	runSpan := tracer.Start(nil, "run", obs.Str("tool", "rsnsec"), obs.Str("mode", "attack"))
	defer runSpan.End()

	rep, err := rsnsec.RunAttackAnalysis(ctx, "rsnsec", nw, ov, trueKey, rsnsec.AttackOptions{
		Horizon:        ac.horizon,
		MaxIterations:  ac.iters,
		ConflictBudget: ac.conflicts,
		IncludeTimings: ac.timings,
		Stats:          stats,
		Tracer:         tracer,
		TraceParent:    runSpan,
	})
	if err != nil {
		return err
	}
	if s := rep.SAT; s != nil {
		fmt.Fprintf(out, "sat attack: %s, key %s (verified=%v) after %d iterations, %d solve calls\n",
			s.Outcome, s.RecoveredKey, s.Verified, s.Iterations, s.SolveCalls)
	}
	if f := rep.Flush; f != nil {
		if f.Applicable {
			fmt.Fprintf(out, "flush attack: rank %d/%d, %d of %d key bits recovered\n",
				f.Rank, f.Equations, len(f.RecoveredBits), ov.NumKeyBits)
		} else {
			fmt.Fprintf(out, "flush attack: not applicable (%s)\n", f.Reason)
		}
	}
	if ec.verbose && stats != nil {
		fmt.Fprintf(errw, "engine stats:\n%s\n", stats)
	}
	return rsnsec.WriteAttackReport(os.Stdout, rep)
}

// runValidateAttack is the -validate-attack mode.
func runValidateAttack(path string, ec engineConfig) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := rsnsec.ReadAttackReport(f)
	if err != nil {
		return err
	}
	if !ec.quiet {
		fmt.Printf("%s: valid %s (network %s, %d key bits)\n",
			path, rep.Schema, rep.Network.Name, rep.Overlay.KeyBits)
	}
	return nil
}

// runValidateSLO is the -validate-slo mode: sniff the document's
// schema field and run it through the matching validating reader. One
// flag covers the PR-10 document family — objectives configs
// (rsnsec.slo-config/v1), served status documents (rsnsec.slo-status/v1)
// and metrics-history query results (rsnsec.metrics-history/v1) — so a
// pipeline can check any artifact it stored without knowing which
// endpoint produced it.
func runValidateSLO(path string, ec engineConfig) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("%s: parse: %w", path, err)
	}
	var detail string
	switch head.Schema {
	case slo.ConfigSchema:
		c, err := slo.ReadConfig(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		detail = fmt.Sprintf("%d objectives", len(c.Objectives))
	case slo.StatusSchema:
		s, err := slo.ReadStatus(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		detail = fmt.Sprintf("%d objectives, breaching=%v", len(s.Objectives), s.Breaching)
	case series.HistorySchema:
		h, err := series.ReadHistory(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		detail = fmt.Sprintf("%s %s/%s, %d points", h.Kind, h.Name, h.Fn, len(h.Points))
	default:
		return fmt.Errorf("%s: unknown schema %q (want %s, %s or %s)",
			path, head.Schema, slo.ConfigSchema, slo.StatusSchema, series.HistorySchema)
	}
	if !ec.quiet {
		fmt.Printf("%s: valid %s (%s)\n", path, head.Schema, detail)
	}
	return nil
}

// runDelta is the -delta mode: secure the base network on a clone (so
// the base wiring survives for the edit), apply the script, re-secure
// the derived network through the incremental path, and print the
// rsnsec.delta-report/v1 document on stdout — under -q the only bytes
// stdout carries, so the mode pipes into jq and friends.
func runDelta(nw *rsnsec.Network, circuit *rsnsec.Netlist, internal []rsnsec.FFID, spec *rsnsec.Spec, deltaPath string, m rsnsec.Mode, engOpts rsnsec.EngineOptions, secOpts rsnsec.Options, out io.Writer) error {
	data, err := os.ReadFile(deltaPath)
	if err != nil {
		return err
	}
	script, err := rsnsec.ParseEditScript(data)
	if err != nil {
		return err
	}
	scriptHash, err := script.CanonicalHash()
	if err != nil {
		return err
	}
	an, err := rsnsec.NewAnalysisOpts(nw, circuit, internal, spec, m, engOpts)
	if err != nil {
		return err
	}
	base, err := rsnsec.SecureWithAnalysis(an, nw.Clone(), secOpts)
	if err != nil {
		return err
	}
	baseRep := rsnsec.SecureRunReport("rsnsec", nw.Name, m, nw.Stats(), base, nil)
	fmt.Fprintf(out, "base run: secured=%v, %d changes\n", base.Secured, base.TotalChanges())
	res, err := rsnsec.SecureDelta("rsnsec", nw.Name, an, nw, script, secOpts)
	if err != nil {
		return err
	}
	kind := "incremental, dependencies reused"
	if res.Structural {
		kind = "structural, dependencies recomputed"
	}
	fmt.Fprintf(out, "delta run (%d ops, %s): secured=%v, %d changes in %s\n",
		len(script.Ops), kind, res.Core.Secured, res.Core.TotalChanges(),
		res.Core.Times.Total.Round(time.Millisecond))
	doc := rsnsec.NewDeltaDoc("", "", scriptHash, len(script.Ops), baseRep, res.Report)
	return rsnsec.WriteDeltaDoc(os.Stdout, doc)
}
