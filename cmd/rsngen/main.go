// Command rsngen reconstructs the benchmark networks of the paper's
// Table I and writes them as ICL files.
//
//	rsngen -all -out networks/            # every benchmark, full size
//	rsngen -benchmark FlexScan -scale 0.1 # one scaled benchmark to stdout
//
// Pass -with-circuit to also attach the seeded random circuit and emit
// the capture/update instrument links. Per-benchmark progress records
// go to stderr (the ICL itself may stream to stdout) as structured log
// lines (-log-level/-log-format); -q silences them.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	rsnsec "repro"
	"repro/internal/cliutil"
	"repro/internal/version"
)

func main() {
	var (
		benchName   = flag.String("benchmark", "", "benchmark to generate (default: stdout)")
		all         = flag.Bool("all", false, "generate every Table I benchmark")
		scale       = flag.Float64("scale", 1, "structure scale (0..1]")
		outDir      = flag.String("out", "", "output directory (required with -all)")
		seed        = flag.Int64("seed", 1, "circuit generation seed")
		withCircuit = flag.Bool("with-circuit", false, "attach a random circuit and emit instrument links")
		quiet       = flag.Bool("q", false, "suppress the per-benchmark progress records")
		logLevel    = flag.String("log-level", "info", "log level spec: LEVEL[,component=LEVEL...] (debug|info|warn|error|off)")
		logFormat   = flag.String("log-format", "text", "log record encoding: text or json")
		showVer     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("rsngen"))
		return
	}
	lg, err := cliutil.Logger(os.Stderr, *logLevel, *logFormat, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", err)
		os.Exit(1)
	}
	if err := run(*benchName, *all, *scale, *outDir, *seed, *withCircuit, lg); err != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", err)
		os.Exit(1)
	}
}

func run(benchName string, all bool, scale float64, outDir string, seed int64, withCircuit bool, lg *slog.Logger) error {
	var list []rsnsec.Benchmark
	switch {
	case all:
		if outDir == "" {
			return fmt.Errorf("-all requires -out")
		}
		list = rsnsec.Catalog()
	case benchName != "":
		b, ok := rsnsec.BenchmarkByName(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", benchName)
		}
		list = []rsnsec.Benchmark{b}
	default:
		return fmt.Errorf("one of -benchmark or -all is required")
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, b := range list {
		nw := b.Build(scale)
		var ffName func(rsnsec.FFID) string
		var circuit *rsnsec.Netlist
		if withCircuit {
			att := rsnsec.AttachCircuit(nw, rsnsec.DefaultCircuitConfig(), seed)
			circuit = att.Circuit
			ffName = func(f rsnsec.FFID) string { return circuit.FFs[f].Name }
		}
		st := nw.Stats()
		if outDir == "" {
			if err := rsnsec.WriteICL(os.Stdout, nw, ffName); err != nil {
				return err
			}
			continue
		}
		path := filepath.Join(outDir, b.Name+".icl")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = rsnsec.WriteICL(f, nw, ffName)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		lg.Info("benchmark written", "benchmark", b.Name, "registers", st.Registers,
			"scan_ffs", st.ScanFFs, "muxes", st.Muxes, "path", path)
		if circuit != nil {
			// The attached circuit travels alongside as .bench.
			cpath := filepath.Join(outDir, b.Name+".bench")
			cf, err := os.Create(cpath)
			if err != nil {
				return err
			}
			err = rsnsec.WriteBench(cf, circuit)
			if cerr := cf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			lg.Info("circuit written", "benchmark", b.Name, "ffs", circuit.NumFFs(),
				"gates", circuit.NumGates(), "path", cpath)
		}
	}
	return nil
}
