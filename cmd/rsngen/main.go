// Command rsngen reconstructs the benchmark networks of the paper's
// Table I and writes them as ICL files.
//
//	rsngen -all -out networks/            # every benchmark, full size
//	rsngen -benchmark FlexScan -scale 0.1 # one scaled benchmark to stdout
//
// Pass -with-circuit to also attach the seeded random circuit and emit
// the capture/update instrument links. Per-benchmark progress lines go
// to stderr (the ICL itself may stream to stdout); -q silences them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	rsnsec "repro"
)

func main() {
	var (
		benchName   = flag.String("benchmark", "", "benchmark to generate (default: stdout)")
		all         = flag.Bool("all", false, "generate every Table I benchmark")
		scale       = flag.Float64("scale", 1, "structure scale (0..1]")
		outDir      = flag.String("out", "", "output directory (required with -all)")
		seed        = flag.Int64("seed", 1, "circuit generation seed")
		withCircuit = flag.Bool("with-circuit", false, "attach a random circuit and emit instrument links")
		quiet       = flag.Bool("q", false, "suppress the per-benchmark progress lines")
	)
	flag.Parse()
	if err := run(*benchName, *all, *scale, *outDir, *seed, *withCircuit, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", err)
		os.Exit(1)
	}
}

func run(benchName string, all bool, scale float64, outDir string, seed int64, withCircuit, quiet bool) error {
	progress := io.Writer(os.Stderr)
	if quiet {
		progress = io.Discard
	}
	var list []rsnsec.Benchmark
	switch {
	case all:
		if outDir == "" {
			return fmt.Errorf("-all requires -out")
		}
		list = rsnsec.Catalog()
	case benchName != "":
		b, ok := rsnsec.BenchmarkByName(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", benchName)
		}
		list = []rsnsec.Benchmark{b}
	default:
		return fmt.Errorf("one of -benchmark or -all is required")
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, b := range list {
		nw := b.Build(scale)
		var ffName func(rsnsec.FFID) string
		var circuit *rsnsec.Netlist
		if withCircuit {
			att := rsnsec.AttachCircuit(nw, rsnsec.DefaultCircuitConfig(), seed)
			circuit = att.Circuit
			ffName = func(f rsnsec.FFID) string { return circuit.FFs[f].Name }
		}
		st := nw.Stats()
		if outDir == "" {
			if err := rsnsec.WriteICL(os.Stdout, nw, ffName); err != nil {
				return err
			}
			continue
		}
		path := filepath.Join(outDir, b.Name+".icl")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = rsnsec.WriteICL(f, nw, ffName)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(progress, "%-16s %6d registers %7d scan FFs %5d muxes -> %s\n",
			b.Name, st.Registers, st.ScanFFs, st.Muxes, path)
		if circuit != nil {
			// The attached circuit travels alongside as .bench.
			cpath := filepath.Join(outDir, b.Name+".bench")
			cf, err := os.Create(cpath)
			if err != nil {
				return err
			}
			err = rsnsec.WriteBench(cf, circuit)
			if cerr := cf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(progress, "%-16s circuit: %d FFs, %d gates -> %s\n", "", circuit.NumFFs(), circuit.NumGates(), cpath)
		}
	}
	return nil
}
