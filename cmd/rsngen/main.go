// Command rsngen reconstructs the benchmark networks of the paper's
// Table I and writes them as ICL files.
//
//	rsngen -all -out networks/            # every benchmark, full size
//	rsngen -benchmark FlexScan -scale 0.1 # one scaled benchmark to stdout
//
// Pass -with-circuit to also attach the seeded random circuit and emit
// the capture/update instrument links. Per-benchmark progress records
// go to stderr (the ICL itself may stream to stdout) as structured log
// lines (-log-level/-log-format); -q silences them.
//
// Scale mode: -scale-ff N streams a generated SIB-hierarchy network of
// N scan flip-flops as ICL — to stdout, or to <out>/<name>.icl with
// -out. The network is never materialized in memory; peak heap stays
// bounded by the SIB tree depth regardless of N (1M scan FFs stream in
// ~10 MB peak RSS, see EXPERIMENTS.md). -sib-fanout, -leaf-len and
// -modules shape the hierarchy, -with-spec embeds a generated security
// specification, and -obf-keybits K overlays K key gates, writing the
// rsnsec.obfus-overlay/v1 sidecar (with the embedded defender key) to
// -overlay-out (default <out>/<name>.overlay.json; required explicitly
// when streaming to stdout). The same seed always streams the same
// bytes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	rsnsec "repro"
	"repro/internal/cliutil"
	"repro/internal/version"
)

func main() {
	var (
		benchName   = flag.String("benchmark", "", "benchmark to generate (default: stdout)")
		all         = flag.Bool("all", false, "generate every Table I benchmark")
		scale       = flag.Float64("scale", 1, "structure scale (0..1]")
		outDir      = flag.String("out", "", "output directory (required with -all)")
		seed        = flag.Int64("seed", 1, "circuit generation seed")
		withCircuit = flag.Bool("with-circuit", false, "attach a random circuit and emit instrument links")
		scaleFF     = flag.Int("scale-ff", 0, "stream a generated SIB-hierarchy network with this many scan flip-flops")
		sibFanout   = flag.Int("sib-fanout", 0, "children per SIB tree node in -scale-ff mode (0 = 8)")
		leafLen     = flag.Int("leaf-len", 0, "scan length of each leaf register in -scale-ff mode (0 = 16)")
		modules     = flag.Int("modules", 0, "module count in -scale-ff mode (0 = 16)")
		withSpec    = flag.Bool("with-spec", false, "embed a generated security specification in -scale-ff mode")
		obfKeyBits  = flag.Int("obf-keybits", 0, "overlay this many key gates in -scale-ff mode and write the overlay sidecar")
		obfMuxShare = flag.Float64("obf-mux-share", -1, "fraction of key bits gating mux selects (-1 = default 0.5)")
		obfDynamic  = flag.Bool("obf-dynamic", false, "overlay uses the dynamic (LFSR) key schedule")
		overlayOut  = flag.String("overlay-out", "", "overlay sidecar path (default <out>/<name>.overlay.json)")
		quiet       = flag.Bool("q", false, "suppress the per-benchmark progress records")
		logLevel    = flag.String("log-level", "info", "log level spec: LEVEL[,component=LEVEL...] (debug|info|warn|error|off)")
		logFormat   = flag.String("log-format", "text", "log record encoding: text or json")
		showVer     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("rsngen"))
		return
	}
	lg, err := cliutil.Logger(os.Stderr, *logLevel, *logFormat, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", err)
		os.Exit(1)
	}
	if *scaleFF > 0 {
		cfg := rsnsec.ScaleGenConfig{
			TargetScanFFs: *scaleFF,
			SIBFanout:     *sibFanout,
			LeafLen:       *leafLen,
			Modules:       *modules,
			WithSpec:      *withSpec,
			Seed:          *seed,
			ObfKeyBits:    *obfKeyBits,
			ObfMuxShare:   *obfMuxShare,
			ObfDynamic:    *obfDynamic,
		}
		if err := runScale(cfg, *outDir, *overlayOut, lg); err != nil {
			fmt.Fprintln(os.Stderr, "rsngen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*benchName, *all, *scale, *outDir, *seed, *withCircuit, lg); err != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", err)
		os.Exit(1)
	}
}

// runScale is the -scale-ff mode: stream the generated network (and
// the optional overlay sidecar) without materializing it.
func runScale(cfg rsnsec.ScaleGenConfig, outDir, overlayOut string, lg *slog.Logger) error {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("scale%d", cfg.TargetScanFFs)
	}
	out := io.Writer(os.Stdout)
	iclPath := "(stdout)"
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		iclPath = filepath.Join(outDir, cfg.Name+".icl")
		f, err := os.Create(iclPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var ovw io.Writer
	ovPath := overlayOut
	if cfg.ObfKeyBits > 0 {
		if ovPath == "" {
			if outDir == "" {
				return fmt.Errorf("-obf-keybits with stdout output requires -overlay-out")
			}
			ovPath = filepath.Join(outDir, cfg.Name+".overlay.json")
		}
		of, err := os.Create(ovPath)
		if err != nil {
			return err
		}
		defer of.Close()
		ovw = of
	}
	st, err := rsnsec.StreamScaleICL(out, ovw, cfg)
	if err != nil {
		return err
	}
	lg.Info("scale network streamed", "name", cfg.Name, "registers", st.Registers,
		"scan_ffs", st.ScanFFs, "muxes", st.Muxes, "modules", st.Modules,
		"sib_depth", st.Depth, "key_bits", st.KeyBits, "path", iclPath,
		"overlay", ovPath)
	return nil
}

func run(benchName string, all bool, scale float64, outDir string, seed int64, withCircuit bool, lg *slog.Logger) error {
	var list []rsnsec.Benchmark
	switch {
	case all:
		if outDir == "" {
			return fmt.Errorf("-all requires -out")
		}
		list = rsnsec.Catalog()
	case benchName != "":
		b, ok := rsnsec.BenchmarkByName(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", benchName)
		}
		list = []rsnsec.Benchmark{b}
	default:
		return fmt.Errorf("one of -benchmark or -all is required")
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, b := range list {
		nw := b.Build(scale)
		var ffName func(rsnsec.FFID) string
		var circuit *rsnsec.Netlist
		if withCircuit {
			att := rsnsec.AttachCircuit(nw, rsnsec.DefaultCircuitConfig(), seed)
			circuit = att.Circuit
			ffName = func(f rsnsec.FFID) string { return circuit.FFs[f].Name }
		}
		st := nw.Stats()
		if outDir == "" {
			if err := rsnsec.WriteICL(os.Stdout, nw, ffName); err != nil {
				return err
			}
			continue
		}
		path := filepath.Join(outDir, b.Name+".icl")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = rsnsec.WriteICL(f, nw, ffName)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		lg.Info("benchmark written", "benchmark", b.Name, "registers", st.Registers,
			"scan_ffs", st.ScanFFs, "muxes", st.Muxes, "path", path)
		if circuit != nil {
			// The attached circuit travels alongside as .bench.
			cpath := filepath.Join(outDir, b.Name+".bench")
			cf, err := os.Create(cpath)
			if err != nil {
				return err
			}
			err = rsnsec.WriteBench(cf, circuit)
			if cerr := cf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			lg.Info("circuit written", "benchmark", b.Name, "ffs", circuit.NumFFs(),
				"gates", circuit.NumGates(), "path", cpath)
		}
	}
	return nil
}
