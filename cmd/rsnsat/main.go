// Command rsnsat exposes the library's CDCL SAT solver as a DIMACS
// tool, mainly for debugging the dependency computation's substrate:
//
//	rsnsat formula.cnf        # prints SAT + model, or UNSAT
//	rsnsat -stats formula.cnf # adds solver statistics
//
// Exit status follows the SAT-competition convention: 10 for
// satisfiable, 20 for unsatisfiable. -debug-addr serves pprof and
// expvar while a hard formula solves. -q keeps stdout to the bare
// "s"/"v" result lines (no "c" comments) and silences the stderr
// diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	rsnsec "repro"
	"repro/internal/cliutil"
	"repro/internal/sat"
	"repro/internal/version"
)

func main() {
	stats := flag.Bool("stats", false, "print solver statistics")
	quiet := flag.Bool("q", false, "result lines only: no \"c\" comments on stdout, no diagnostics on stderr")
	debugAddr := flag.String("debug-addr", "", "serve expvar, Prometheus metrics and pprof on this address during the solve")
	logLevel := flag.String("log-level", "info", "log level spec: LEVEL[,component=LEVEL...] (debug|info|warn|error|off)")
	logFormat := flag.String("log-format", "text", "log record encoding: text or json")
	showVer := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("rsnsat"))
		return
	}
	lg, err := cliutil.Logger(os.Stderr, *logLevel, *logFormat, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsnsat:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		dbg, err := rsnsec.StartDebugServer(*debugAddr, rsnsec.NewMetricsRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsnsat:", err)
			os.Exit(2)
		}
		defer dbg.Close()
		lg.Info("debug endpoints up", "addr", dbg.Addr())
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rsnsat [-stats] formula.cnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsnsat:", err)
		os.Exit(2)
	}
	s, err := sat.LoadDIMACS(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsnsat:", err)
		os.Exit(2)
	}
	res := s.Solve()
	if *stats && !*quiet {
		fmt.Printf("c vars=%d clauses=%d decisions=%d propagations=%d conflicts=%d learnt=%d deleted=%d restarts=%d\n",
			s.NumVars(), s.NumClauses(), s.Stats.Decisions, s.Stats.Propagations,
			s.Stats.Conflicts, s.Stats.Learnt, s.Stats.Deleted, s.Stats.Restarts)
	}
	switch res {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		fmt.Print("v")
		for v := sat.Var(1); int(v) <= s.NumVars(); v++ {
			if s.Value(v) {
				fmt.Printf(" %d", v)
			} else {
				fmt.Printf(" -%d", v)
			}
		}
		fmt.Println(" 0")
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	}
	fmt.Println("s UNKNOWN")
}
