// Command rsnserved is the analysis-as-a-service daemon: it runs the
// secure-data-flow method behind an HTTP+JSON API, backed by a
// content-addressed result store and a bounded job scheduler.
//
// Submit analyses with POST /v1/analyses, poll GET /v1/analyses/{id},
// fetch the finished rsnsec.run-report/v1 document from
// GET /v1/analyses/{id}/report, cancel with DELETE /v1/analyses/{id}.
// Identical submissions are answered from the store (or coalesced onto
// the in-flight run); a full queue answers 429. /metrics exposes queue
// depth, cache hit/miss counters, per-endpoint latencies and the
// engine stage counters; -debug-addr additionally serves expvar and
// pprof. SIGINT/SIGTERM drain gracefully: queued and running jobs
// finish (bounded by -drain-timeout), new submissions get 503, and
// the trace journal and slow-job log flush before the process exits.
//
// Performance observatory: -slow-job-threshold DUR dumps the full
// span tree of any job slower than DUR as one JSONL record to
// -slow-job-log; POST /v1/analyses?profile=cpu (or heap) forces a
// real run with pprof capture around it, retrievable from
// GET /v1/analyses/{id}/profile.
//
// Incremental sessions: finished ICL submissions keep a session (the
// parsed network plus the analysis's propagated fixed point; persisted
// with -store-dir). POST /v1/analyses/{id}/delta applies a JSON edit
// script against it and re-secures incrementally, returning a
// rsnsec.delta-report/v1 document; -max-sessions bounds the hydrated
// sessions held in memory.
//
// Telemetry: every log line is a structured record (JSON by default,
// -log-format text for humans; -log-level takes a spec like
// "info,serve.http=warn"); each HTTP request gets an X-Request-ID and
// W3C traceparent (accepted or minted, echoed on the response) that
// follow the work through logs, spans, job records and the flight
// recorder (GET /debug/events, sized by -flight-events; pollers tail
// incrementally with ?since=<last_seq>). Autoscalers read GET /v1/load
// (or the serve_* gauges on /metrics) for the predicted backlog;
// -readyz-saturation DUR turns /readyz into a backpressure signal, and
// -load-model seeds the cost model from a rsnbench record before the
// first job completes (-load-ewma-alpha tunes its adaptation speed).
//
// Metrics history and SLOs: -history-interval samples every registry
// metric into a bounded in-process series store (window sized by
// -history-retention), queryable at GET /debug/metrics/history as
// rsnsec.metrics-history/v1 documents; -slo FILE loads declarative
// objectives (rsnsec.slo-config/v1) evaluated with fast+slow burn-rate
// windows over that history, served at GET /v1/slo, re-exported as
// slo_* gauges, and — for gate_ready objectives — coupled to /readyz.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	rsnsec "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/perfrec"
	"repro/internal/obs/series"
	"repro/internal/obs/slo"
	"repro/internal/serve"
	"repro/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rsnserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "localhost:8341", "HTTP listen address")
		workers      = flag.Int("workers", 1, "concurrent analysis jobs")
		engWorkers   = flag.Int("engine-workers", 0, "SAT workers per job (0 = all CPUs)")
		queueDepth   = flag.Int("queue-depth", 64, "pending-job queue bound (429 beyond it)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job run-time cap (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for in-flight jobs")
		storeDir     = flag.String("store-dir", "", "persist results as <key>.json in this directory (empty = memory only)")
		storeEntries = flag.Int("store-entries", 0, "in-memory store entry bound (0 = 512)")
		maxScanFFs   = flag.Int("max-scan-ffs", 0, "largest accepted analysis in scan flip-flops (0 = 1500)")
		maxSessions  = flag.Int("max-sessions", 0, "hydrated incremental sessions kept in memory (0 = 16)")
		tracePath    = flag.String("trace", "", "write the span journal as JSONL to this file")
		slowJobThr   = flag.Duration("slow-job-threshold", 0, "dump the span tree of jobs slower than this to -slow-job-log (0 = off)")
		slowJobPath  = flag.String("slow-job-log", "", "slow-job JSONL log file (default <stderr> when -slow-job-threshold is set)")
		debugAddr    = flag.String("debug-addr", "", "also serve expvar and pprof on this address")
		quiet        = flag.Bool("q", false, "suppress all log output (overridden by an explicit -log-level)")
		logLevel     = flag.String("log-level", "info", "log level spec: LEVEL[,component=LEVEL...] (debug|info|warn|error|off)")
		logFormat    = flag.String("log-format", "json", "log record encoding: json or text")
		logFile      = flag.String("log-file", "", "write log records to this file instead of stderr (buffered, flushed on shutdown)")
		flightEvents = flag.Int("flight-events", 0, "flight-recorder ring size per category (0 = 256, -1 = disabled)")
		loadModel    = flag.String("load-model", "", "seed the predicted-backlog cost model from this rsnbench record")
		loadAlpha    = flag.Float64("load-ewma-alpha", 0.3, "cost-model EWMA weight on (0,1] (higher adapts faster)")
		readyzSat    = flag.Duration("readyz-saturation", 0, "/readyz answers 503 while the predicted backlog exceeds this (0 = off)")
		histInterval = flag.Duration("history-interval", 0, "sample metrics into the in-process history every DUR (0 = off unless -slo)")
		histRetain   = flag.Duration("history-retention", 0, "metrics-history window (0 = 1h, or the slowest SLO window)")
		sloPath      = flag.String("slo", "", "evaluate SLO objectives from this rsnsec.slo-config/v1 file")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("rsnserved"))
		return nil
	}

	logw := io.Writer(os.Stderr)
	var logBuf *olog.BufferedWriter
	if *logFile != "" {
		lf, err := os.Create(*logFile)
		if err != nil {
			return err
		}
		defer lf.Close()
		// Buffered: the access log is the hottest sink in the process.
		// Flushed after graceful shutdown (defers run LIFO, before the
		// file closes) so the tail of drained requests is never lost.
		logBuf = olog.NewBufferedWriter(lf)
		defer logBuf.Flush()
		logw = logBuf
	}
	lg, err := cliutil.Logger(logw, *logLevel, *logFormat, *quiet)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	obs.EnableRuntimeMetrics(reg)
	version.Register(reg)

	var loadRec *perfrec.Record
	if *loadModel != "" {
		loadRec, err = perfrec.ReadFile(*loadModel)
		if err != nil {
			return fmt.Errorf("load model: %w", err)
		}
	}
	if *loadAlpha <= 0 || *loadAlpha > 1 {
		return fmt.Errorf("-load-ewma-alpha %v outside (0, 1]", *loadAlpha)
	}
	var sloCfg *slo.Config
	if *sloPath != "" {
		sloCfg, err = slo.LoadConfig(*sloPath)
		if err != nil {
			return err
		}
	}
	var histCfg *series.Config
	if *histInterval > 0 || *histRetain > 0 || sloCfg != nil {
		histCfg = &series.Config{Interval: *histInterval, Retention: *histRetain}
		if sloCfg != nil && *histRetain == 0 {
			if w := sloCfg.MaxWindow(); w > histCfg.Retention {
				histCfg.Retention = w
			}
		}
	}
	var tracer *obs.Tracer
	var traceSink *obs.BufferedJSONLSink
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		// Buffered: flushed after graceful shutdown, before the file
		// closes, so no spans of drained jobs are lost.
		traceSink = obs.NewBufferedJSONLSink(tf)
		defer traceSink.Flush()
		tracer = rsnsec.NewTracer(traceSink)
	}
	var slowJobLog io.Writer
	if *slowJobThr > 0 {
		slowJobLog = os.Stderr
		if *slowJobPath != "" {
			sf, err := os.Create(*slowJobPath)
			if err != nil {
				return err
			}
			defer sf.Close()
			slowJobLog = sf
		}
	}

	srv, err := serve.New(serve.Config{
		Addr:          *addr,
		Workers:       *workers,
		EngineWorkers: *engWorkers,
		QueueDepth:    *queueDepth,
		JobTimeout:    *jobTimeout,
		Store: serve.StoreConfig{
			Dir:        *storeDir,
			MaxEntries: *storeEntries,
		},
		Limits:              serve.Limits{MaxScanFFs: *maxScanFFs},
		MaxSessions:         *maxSessions,
		Registry:            reg,
		Tracer:              tracer,
		SlowJobThreshold:    *slowJobThr,
		SlowJobLog:          slowJobLog,
		Logger:              lg,
		FlightEvents:        *flightEvents,
		LoadModel:           loadRec,
		LoadEWMAAlpha:       *loadAlpha,
		SaturationThreshold: *readyzSat,
		History:             histCfg,
		SLO:                 sloCfg,
	})
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		dbg, err := rsnsec.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		lg.LogAttrs(context.Background(), slog.LevelInfo, "debug endpoints up",
			slog.String("addr", dbg.Addr()))
	}
	if err := srv.Start(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig) // a second signal kills the process the hard way

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	return srv.Shutdown(ctx)
}
