// Command rsnbench regenerates the paper's experimental results:
//
//	rsnbench -table sizes     Table I structural columns (full size)
//	rsnbench -table main      Table I measured columns (violations,
//	                          applied changes, per-stage runtimes)
//	rsnbench -table bridging  Section III-A bridging reductions
//	rsnbench -table approx    Section IV-C structural approximation
//	rsnbench -table all       everything
//
// The analysis columns run on scaled structures by default (the
// paper's full sizes need many hours; see -ffbudget/-scale). The
// default budget of 700 scan flip-flops per benchmark relies on the
// sparse SCC closure and the incremental violation checking of the
// resolve loop; pass -ffbudget 350 to reproduce the original smaller
// protocol. Absolute
// runtimes are machine-bound; the reproduced claims are the relative
// ones (pure-vs-hybrid change split, bridging reductions,
// approximation overhead).
//
// Engine flags: -workers bounds the circuit worker pool (inner SAT
// pools divide the remaining CPUs), -timeout cancels the experiments
// after a duration, and -v streams per-circuit progress to stderr and
// prints an engine stats table at the end (also stderr).
//
// Observability flags: -report writes the schema-versioned
// machine-readable run report of the -table main protocol as JSON
// ("-" for stdout); -q suppresses the human tables so stdout carries
// only the report; -trace writes the hierarchical span journal
// (run > circuit > stage > query) as JSONL, query spans sampled per
// -trace-sample; -debug-addr serves live expvar, Prometheus-text
// metrics and pprof during the run. -validate-report checks a report
// artifact against the schema, and -diff-report old.json,new.json
// prints the regression deltas between two reports.
//
// Performance observatory: -bench-out FILE measures the protocol
// -reps times per benchmark and writes a schema-versioned bench
// record (per-stage medians with MAD noise estimates, SAT totals,
// memory peaks, environment fingerprint); -baseline FILE gates the
// fresh record against a committed baseline with the noise-aware
// comparator (exit 1 on regression; -bench-threshold and -bench-mad-k
// tune the allowance). -validate-bench checks a record artifact, and
// -compare-bench old.json,new.json gates two existing records.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	rsnsec "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/obs/reportdiff"
	"repro/internal/report"
	"repro/internal/version"
)

// benchConfig carries the command-line configuration.
type benchConfig struct {
	table       string
	scale       float64
	ffBudget    int
	circuits    int
	specs       int
	seed        int64
	only        string
	mode        string
	csvPath     string
	workers     int
	timeout     time.Duration
	verbose     bool
	quiet       bool
	reportPath  string
	tracePath   string
	traceSample int
	debugAddr   string

	// Performance observatory (-bench-out mode).
	benchOut       string
	baseline       string
	reps           int
	benchThreshold float64
	benchMADK      float64
	commit         string
	attackKeyBits  int
	attackDynamic  bool

	lg *slog.Logger
}

func main() {
	var c benchConfig
	flag.StringVar(&c.table, "table", "main", "sizes | main | bridging | approx | all")
	flag.Float64Var(&c.scale, "scale", 0, "explicit structure scale (overrides -ffbudget)")
	flag.IntVar(&c.ffBudget, "ffbudget", 700, "per-benchmark scan flip-flop budget for auto scaling")
	flag.IntVar(&c.circuits, "circuits", 10, "random circuits per benchmark (paper: 10)")
	flag.IntVar(&c.specs, "specs", 16, "random specifications per circuit (paper: 16)")
	flag.Int64Var(&c.seed, "seed", 1, "experiment seed")
	flag.StringVar(&c.only, "benchmarks", "", "comma-separated benchmark filter")
	flag.StringVar(&c.mode, "mode", "exact", "dependency mode for -table main: exact or structural")
	flag.StringVar(&c.csvPath, "csv", "", "also write the main table as CSV to this file")
	flag.IntVar(&c.workers, "workers", 0, "circuit worker pool size (0 = all CPUs)")
	flag.DurationVar(&c.timeout, "timeout", 0, "cancel the experiments after this duration (0 = no limit)")
	flag.BoolVar(&c.verbose, "v", false, "print per-circuit progress and an engine stats table (stderr)")
	flag.BoolVar(&c.quiet, "q", false, "suppress the human-readable tables on stdout")
	flag.StringVar(&c.reportPath, "report", "", "write the machine-readable run report as JSON to this file (\"-\" = stdout)")
	flag.StringVar(&c.tracePath, "trace", "", "write the span journal as JSONL to this file")
	flag.IntVar(&c.traceSample, "trace-sample", 64, "record every n-th high-frequency query span")
	flag.StringVar(&c.debugAddr, "debug-addr", "", "serve expvar, Prometheus metrics and pprof on this address during the run")
	flag.StringVar(&c.benchOut, "bench-out", "", "measure the protocol -reps times and write the bench record JSON to this file (\"-\" = stdout)")
	flag.StringVar(&c.baseline, "baseline", "", "baseline bench record to gate -bench-out against (nonzero exit on regression)")
	flag.IntVar(&c.reps, "reps", 3, "repetitions per benchmark for -bench-out (medians and MADs are taken across reps)")
	flag.Float64Var(&c.benchThreshold, "bench-threshold", 0, "relative slowdown threshold for the -baseline gate (0 = default 0.10)")
	flag.Float64Var(&c.benchMADK, "bench-mad-k", 0, "MAD multiplier of the noise allowance (0 = default 4)")
	flag.StringVar(&c.commit, "commit", os.Getenv("GITHUB_SHA"), "VCS revision stamped into the bench record's environment")
	flag.IntVar(&c.attackKeyBits, "attack-keybits", 0, "also measure the attack analysis per rep against a key-gate overlay of this many bits (0 = off)")
	flag.BoolVar(&c.attackDynamic, "attack-dynamic", false, "the -attack-keybits overlay uses the dynamic (LFSR) key schedule")
	validatePath := flag.String("validate-report", "", "validate a run-report JSON file against the schema and exit")
	diffSpec := flag.String("diff-report", "", "compare two run reports (old.json,new.json) and print the deltas")
	validateBench := flag.String("validate-bench", "", "validate a bench-record JSON file against the schema and exit")
	compareBench := flag.String("compare-bench", "", "gate two bench records (old.json,new.json); nonzero exit on regression")
	logLevel := flag.String("log-level", "info", "log level spec: LEVEL[,component=LEVEL...] (debug|info|warn|error|off)")
	logFormat := flag.String("log-format", "text", "log record encoding: text or json")
	showVer := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("rsnbench"))
		return
	}
	var err error
	if c.lg, err = cliutil.Logger(os.Stderr, *logLevel, *logFormat, c.quiet); err != nil {
		fmt.Fprintln(os.Stderr, "rsnbench:", err)
		os.Exit(1)
	}

	switch {
	case *validatePath != "":
		if err := validateReport(*validatePath); err != nil {
			fmt.Fprintln(os.Stderr, "rsnbench:", err)
			os.Exit(1)
		}
	case *diffSpec != "":
		if err := diffReports(*diffSpec); err != nil {
			fmt.Fprintln(os.Stderr, "rsnbench:", err)
			os.Exit(1)
		}
	case *validateBench != "":
		if err := validateBenchRecord(*validateBench); err != nil {
			fmt.Fprintln(os.Stderr, "rsnbench:", err)
			os.Exit(1)
		}
	case *compareBench != "":
		if err := compareBenchRecords(*compareBench, c); err != nil {
			fmt.Fprintln(os.Stderr, "rsnbench:", err)
			os.Exit(1)
		}
	case c.benchOut != "":
		if err := runBenchRecord(c); err != nil {
			fmt.Fprintln(os.Stderr, "rsnbench:", err)
			os.Exit(1)
		}
	default:
		if err := run(c); err != nil {
			fmt.Fprintln(os.Stderr, "rsnbench:", err)
			os.Exit(1)
		}
	}
}

// validateReport implements -validate-report: parse + schema check.
func validateReport(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := rsnsec.ReadRunReport(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: valid %s report (%d benchmarks, %d stages, %d runs)\n",
		path, r.Schema, len(r.Benchmarks), len(r.Stages), r.Totals.Runs)
	return nil
}

// diffReports implements -diff-report old.json,new.json.
func diffReports(spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff-report wants old.json,new.json")
	}
	load := func(path string) (*obs.RunReport, error) {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rsnsec.ReadRunReport(f)
	}
	oldR, err := load(parts[0])
	if err != nil {
		return err
	}
	newR, err := load(parts[1])
	if err != nil {
		return err
	}
	fmt.Println(reportdiff.Compare(oldR, newR))
	return nil
}

// validateBenchRecord implements -validate-bench: parse + schema check.
func validateBenchRecord(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := rsnsec.ReadBenchRecord(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: valid %s record (%d benchmarks, %d reps, %s/%s %s)\n",
		path, r.Schema, len(r.Benchmarks), r.Reps, r.Env.GOOS, r.Env.GOARCH, r.Env.GoVersion)
	return nil
}

// benchLimits resolves the gate parameters from the command line.
func (c benchConfig) benchLimits() rsnsec.BenchLimits {
	return rsnsec.BenchLimits{MinPct: c.benchThreshold, MADK: c.benchMADK}
}

// loadBenchRecord reads and validates one bench record file.
func loadBenchRecord(path string) (*rsnsec.BenchRecord, error) {
	f, err := os.Open(strings.TrimSpace(path))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rsnsec.ReadBenchRecord(f)
}

// gateBenchRecords prints the gate outcome and returns an error when
// any regression flags (the nonzero-exit path).
func gateBenchRecords(old, new *rsnsec.BenchRecord, lim rsnsec.BenchLimits) error {
	regs := rsnsec.CompareBenchRecords(old, new, lim)
	fmt.Println(rsnsec.FormatBenchRegressions(regs))
	if !old.Env.Matches(new.Env) {
		fmt.Fprintf(os.Stderr, "note: records come from different environments (%s/%s %d CPUs vs %s/%s %d CPUs)\n",
			old.Env.GOOS, old.Env.GOARCH, old.Env.NumCPU, new.Env.GOOS, new.Env.GOARCH, new.Env.NumCPU)
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d performance regression(s)", len(regs))
	}
	return nil
}

// compareBenchRecords implements -compare-bench old.json,new.json.
func compareBenchRecords(spec string, c benchConfig) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare-bench wants old.json,new.json")
	}
	oldR, err := loadBenchRecord(parts[0])
	if err != nil {
		return err
	}
	newR, err := loadBenchRecord(parts[1])
	if err != nil {
		return err
	}
	return gateBenchRecords(oldR, newR, c.benchLimits())
}

// runBenchRecord implements -bench-out: collect a fresh record over
// the selected benchmarks, write it, and optionally gate it against
// -baseline (nonzero exit on regression).
func runBenchRecord(c benchConfig) error {
	benchmarks, err := selectBenchmarks(c.only)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	cfg := rsnsec.DefaultRunConfig()
	cfg.Scale = c.scale
	cfg.TargetScanFFs = c.ffBudget
	cfg.Circuits = c.circuits
	cfg.Specs = c.specs
	cfg.Seed = c.seed
	cfg.Workers = c.workers
	switch c.mode {
	case "exact":
		cfg.Mode = rsnsec.Exact
	case "structural":
		cfg.Mode = rsnsec.StructuralApprox
	default:
		return fmt.Errorf("unknown mode %q", c.mode)
	}
	opts := rsnsec.BenchCollectOptions{
		Reps: c.reps, Commit: c.commit,
		AttackKeyBits: c.attackKeyBits, AttackDynamic: c.attackDynamic,
	}
	if c.verbose {
		opts.Progress = func(f string, a ...any) { fmt.Fprintf(os.Stderr, "  %s\n", fmt.Sprintf(f, a...)) }
	}
	rec, err := rsnsec.CollectBenchRecord(ctx, benchmarks, cfg, opts)
	if err != nil {
		return err
	}
	rec.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	w := io.Writer(os.Stdout)
	if c.benchOut != "-" {
		f, err := os.Create(c.benchOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rsnsec.WriteBenchRecord(w, rec); err != nil {
		return err
	}
	if c.benchOut != "-" {
		c.lg.Info("bench record written", "path", c.benchOut)
	}
	if c.baseline == "" {
		return nil
	}
	base, err := loadBenchRecord(c.baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return gateBenchRecords(base, rec, c.benchLimits())
}

func selectBenchmarks(filter string) ([]rsnsec.Benchmark, error) {
	cat := rsnsec.Catalog()
	if filter == "" {
		return cat, nil
	}
	var out []rsnsec.Benchmark
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		b, ok := rsnsec.BenchmarkByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		out = append(out, b)
	}
	return out, nil
}

func run(c benchConfig) error {
	benchmarks, err := selectBenchmarks(c.only)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}

	// Human-readable tables go to stdout unless -q; progress, warnings
	// and the stats table go to stderr so a -report - pipeline reads
	// clean JSON from stdout. -q is full machine mode: it also silences
	// those stderr diagnostics (hard errors still reach stderr), so a
	// quiet run emits nothing but the requested artifacts.
	out := io.Writer(os.Stdout)
	errw := io.Writer(os.Stderr)
	if c.quiet {
		out = io.Discard
		errw = io.Discard
	}

	// Observability: the metrics registry backs the engine stats (and
	// the live -debug-addr endpoints); the tracer journals spans.
	reg := rsnsec.NewMetricsRegistry()
	var stats *rsnsec.EngineStats
	if c.verbose || c.reportPath != "" || c.debugAddr != "" {
		stats = rsnsec.NewEngineStatsOn(reg)
	}
	var tracer *rsnsec.Tracer
	if c.tracePath != "" {
		tf, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		sink := obs.NewBufferedJSONLSink(tf)
		defer sink.Flush()
		tracer = rsnsec.NewTracer(sink)
		tracer.SampleEvery("query", c.traceSample)
		tracer.SampleEvery("propagate-delta", c.traceSample)
	}
	if c.debugAddr != "" {
		dbg, err := rsnsec.StartDebugServer(c.debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		c.lg.Info("debug endpoints up", "addr", dbg.Addr())
	}

	cfg := rsnsec.DefaultRunConfig()
	cfg.Scale = c.scale
	cfg.TargetScanFFs = c.ffBudget
	cfg.Circuits = c.circuits
	cfg.Specs = c.specs
	cfg.Seed = c.seed
	cfg.Workers = c.workers
	cfg.Stats = stats
	cfg.Tracer = tracer
	if c.verbose {
		cfg.Progress = func(f string, a ...any) { fmt.Fprintf(errw, "  %s\n", fmt.Sprintf(f, a...)) }
	}
	switch c.mode {
	case "exact":
		cfg.Mode = rsnsec.Exact
	case "structural":
		cfg.Mode = rsnsec.StructuralApprox
	default:
		return fmt.Errorf("unknown mode %q", c.mode)
	}

	runSpan := tracer.Start(nil, "run",
		obs.Str("tool", "rsnbench"), obs.Str("table", c.table),
		obs.Int("benchmarks", int64(len(benchmarks))), obs.Int("workers", int64(c.workers)))
	defer runSpan.End()
	cfg.TraceParent = runSpan

	want := func(name string) bool { return c.table == name || c.table == "all" }
	ran := false
	var mainResults []*rsnsec.RunResult
	if want("sizes") {
		ran = true
		sizesTable(out, benchmarks)
	}
	if want("main") {
		ran = true
		mainResults, err = mainTable(ctx, out, errw, benchmarks, cfg, c.csvPath)
		if err != nil {
			return err
		}
	}
	if want("bridging") {
		ran = true
		if err := bridgingTable(ctx, out, benchmarks, cfg); err != nil {
			return err
		}
	}
	if want("approx") {
		ran = true
		if err := approxTable(ctx, out, benchmarks, cfg); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown table %q", c.table)
	}
	if c.reportPath != "" {
		rep := rsnsec.BuildRunReport("rsnbench", c.table, cfg, mainResults, stats)
		rep.StartedAt = time.Now().UTC().Format(time.RFC3339)
		w := io.Writer(os.Stdout)
		if c.reportPath != "-" {
			f, err := os.Create(c.reportPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rsnsec.WriteRunReport(w, rep); err != nil {
			return err
		}
		if c.reportPath != "-" {
			c.lg.Info("run report written", "path", c.reportPath)
		}
	}
	if c.verbose && stats != nil {
		fmt.Fprintf(errw, "engine stats:\n%s\n", stats)
	}
	return nil
}

func sizesTable(out io.Writer, benchmarks []rsnsec.Benchmark) {
	t := report.New("Table I (structural columns, full size) — paper vs generated",
		"Benchmark", "Family", ">#Scan Registers", ">#Scan Flip-Flops", ">#Scan Mux's", ">Paper FFs")
	for _, b := range benchmarks {
		nw := b.Build(1)
		st := nw.Stats()
		t.Add(b.Name, b.Family.String(), report.Int(st.Registers), report.Int(st.ScanFFs),
			report.Int(st.Muxes), report.Int(b.PaperScanFFs))
	}
	t.WriteTo(out)
	fmt.Fprintln(out)
}

func mainTable(ctx context.Context, out, errw io.Writer, benchmarks []rsnsec.Benchmark, cfg rsnsec.RunConfig, csvPath string) ([]*rsnsec.RunResult, error) {
	var csvW *csv.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		csvW = csv.NewWriter(f)
		defer csvW.Flush()
		if err := csvW.Write([]string{
			"benchmark", "family", "regs", "scan_ffs", "muxes",
			"full_regs", "full_scan_ffs", "full_muxes",
			"avg_violating_regs", "avg_pure_changes", "avg_hybrid_changes", "avg_total_changes",
			"dep_calc_s", "pure_s", "hybrid_s", "total_s",
			"runs", "skipped_secure", "skipped_insecure_logic", "errors",
		}); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(out, "Protocol: %d circuits x %d specs per benchmark, mode=%v, scan-FF budget %d (scale %g)\n",
		cfg.Circuits, cfg.Specs, cfg.Mode, cfg.TargetScanFFs, cfg.Scale)
	t := report.New("Table I (measured columns, scaled structures)",
		"Benchmark", ">Regs", ">FFs", ">Muxes",
		">#Reg w/ viol.", ">Chg pure", ">Chg hybrid", ">Chg total",
		">Dep calc (s)", ">Pure (s)", ">Hybrid (s)", ">Total (s)",
		">Runs", ">Skip(sec)", ">Skip(logic)")
	var sumPure, sumTotal float64
	var csvErr error
	// The protocol itself is the shared exp.RunProtocol driver (also
	// behind rsnserved jobs); the observer renders each finished row.
	results, err := rsnsec.RunProtocolCtx(ctx, benchmarks, cfg, func(res *rsnsec.RunResult) {
		b := res.Benchmark
		if res.Errors > 0 {
			fmt.Fprintf(errw, "warning: %s: %d runs failed to resolve\n", b.Name, res.Errors)
		}
		t.Add(b.Name,
			report.Int(res.ScaledStats.Registers), report.Int(res.ScaledStats.ScanFFs), report.Int(res.ScaledStats.Muxes),
			report.F2(res.AvgViolatingRegs), report.F1(res.AvgPureChanges), report.F1(res.AvgHybridChanges), report.F1(res.AvgTotalChanges),
			report.Secs(res.AvgDepTime), report.Secs(res.AvgPureTime), report.Secs(res.AvgHybridTime), report.Secs(res.AvgTotalTime),
			report.Int(res.Runs), report.Int(res.SkippedNoViolation), report.Int(res.SkippedInsecureLogic))
		sumPure += res.AvgPureChanges
		sumTotal += res.AvgTotalChanges
		if csvW != nil && csvErr == nil {
			csvErr = csvW.Write([]string{
				b.Name, b.Family.String(),
				report.Int(res.ScaledStats.Registers), report.Int(res.ScaledStats.ScanFFs), report.Int(res.ScaledStats.Muxes),
				report.Int(res.FullStats.Registers), report.Int(res.FullStats.ScanFFs), report.Int(res.FullStats.Muxes),
				report.F2(res.AvgViolatingRegs), report.F1(res.AvgPureChanges), report.F1(res.AvgHybridChanges), report.F1(res.AvgTotalChanges),
				report.Secs(res.AvgDepTime), report.Secs(res.AvgPureTime), report.Secs(res.AvgHybridTime), report.Secs(res.AvgTotalTime),
				report.Int(res.Runs), report.Int(res.SkippedNoViolation), report.Int(res.SkippedInsecureLogic), report.Int(res.Errors),
			})
		}
	})
	if err != nil {
		return nil, err
	}
	if csvErr != nil {
		return nil, csvErr
	}
	t.WriteTo(out)
	if sumTotal > 0 {
		fmt.Fprintf(out, "\npure changes are %.0f%% of total changes (paper: ~43%%)\n\n", 100*sumPure/sumTotal)
	}
	return results, nil
}

func bridgingTable(ctx context.Context, out io.Writer, benchmarks []rsnsec.Benchmark, cfg rsnsec.RunConfig) error {
	t := report.New("Section III-A: bridging over internal flip-flops",
		"Benchmark", ">FFs (no bridge)", ">FFs (bridged)", ">FF reduction",
		">Deps (no bridge)", ">Deps (bridged)", ">Dep reduction")
	var sumFF, sumDep float64
	n := 0
	for _, b := range benchmarks {
		res, err := rsnsec.RunBridgingCtx(ctx, b, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		t.Add(b.Name, report.Int(res.FFsTotal), report.Int(res.FFsBridged), report.Pct(res.FFReduction()),
			report.Int(res.DepsNoBridge), report.Int(res.DepsBridge), report.Pct(res.DepReduction()))
		sumFF += res.FFReduction()
		sumDep += res.DepReduction()
		n++
	}
	t.WriteTo(out)
	if n > 0 {
		fmt.Fprintf(out, "\naverage reductions: %.2f%% flip-flops, %.2f%% dependencies (paper: 41.72%% / 65.37%%)\n\n",
			100*sumFF/float64(n), 100*sumDep/float64(n))
	}
	return nil
}

func approxTable(ctx context.Context, out io.Writer, benchmarks []rsnsec.Benchmark, cfg rsnsec.RunConfig) error {
	t := report.New("Section IV-C: approximating path-dependency with structural dependency",
		"Benchmark", ">Runs", ">Exact changes", ">Approx changes", ">Overhead", ">False insecure", ">Rate")
	var sumExact, sumApprox, sumOverhead float64
	falseCnt, totalCnt, withRuns := 0, 0, 0
	for _, b := range benchmarks {
		res, err := rsnsec.RunApproxCtx(ctx, b, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		t.Add(b.Name, report.Int(res.Runs), report.F1(res.ExactChanges), report.F1(res.ApproxChanges),
			report.Pct(res.ChangeOverhead()), report.Int(res.FalseInsecure), report.Pct(res.FalseInsecureRate()))
		sumExact += res.ExactChanges
		sumApprox += res.ApproxChanges
		falseCnt += res.FalseInsecure
		totalCnt += res.TotalSpecRuns
		if res.Runs > 0 {
			sumOverhead += res.ChangeOverhead()
			withRuns++
		}
	}
	t.WriteTo(out)
	if sumExact > 0 && totalCnt > 0 && withRuns > 0 {
		fmt.Fprintf(out, "\noverall: +%.0f%% additional changes weighted, +%.0f%% per-benchmark average (paper: +61%%); %.2f%% falsely insecure logic (paper: 6.21%%)\n\n",
			100*(sumApprox/sumExact-1), 100*sumOverhead/float64(withRuns), 100*float64(falseCnt)/float64(totalCnt))
	}
	return nil
}
