// Command rsnbench regenerates the paper's experimental results:
//
//	rsnbench -table sizes     Table I structural columns (full size)
//	rsnbench -table main      Table I measured columns (violations,
//	                          applied changes, per-stage runtimes)
//	rsnbench -table bridging  Section III-A bridging reductions
//	rsnbench -table approx    Section IV-C structural approximation
//	rsnbench -table all       everything
//
// The analysis columns run on scaled structures by default (the
// paper's full sizes need many hours; see -ffbudget/-scale). The
// default budget of 700 scan flip-flops per benchmark relies on the
// sparse SCC closure and the incremental violation checking of the
// resolve loop; pass -ffbudget 350 to reproduce the original smaller
// protocol. Absolute
// runtimes are machine-bound; the reproduced claims are the relative
// ones (pure-vs-hybrid change split, bridging reductions,
// approximation overhead).
//
// Engine flags: -workers bounds the circuit worker pool (inner SAT
// pools divide the remaining CPUs), -timeout cancels the experiments
// after a duration, and -v streams per-circuit progress to stderr and
// prints an engine stats table at the end.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	rsnsec "repro"
	"repro/internal/report"
)

func main() {
	var (
		table    = flag.String("table", "main", "sizes | main | bridging | approx | all")
		scale    = flag.Float64("scale", 0, "explicit structure scale (overrides -ffbudget)")
		ffBudget = flag.Int("ffbudget", 700, "per-benchmark scan flip-flop budget for auto scaling")
		circuits = flag.Int("circuits", 10, "random circuits per benchmark (paper: 10)")
		specs    = flag.Int("specs", 16, "random specifications per circuit (paper: 16)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		only     = flag.String("benchmarks", "", "comma-separated benchmark filter")
		mode     = flag.String("mode", "exact", "dependency mode for -table main: exact or structural")
		csvPath  = flag.String("csv", "", "also write the main table as CSV to this file")
		workers  = flag.Int("workers", 0, "circuit worker pool size (0 = all CPUs)")
		timeout  = flag.Duration("timeout", 0, "cancel the experiments after this duration (0 = no limit)")
		verbose  = flag.Bool("v", false, "print per-circuit progress and an engine stats table")
	)
	flag.Parse()
	if err := run(*table, *scale, *ffBudget, *circuits, *specs, *seed, *only, *mode, *csvPath, *workers, *timeout, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "rsnbench:", err)
		os.Exit(1)
	}
}

func selectBenchmarks(filter string) ([]rsnsec.Benchmark, error) {
	cat := rsnsec.Catalog()
	if filter == "" {
		return cat, nil
	}
	var out []rsnsec.Benchmark
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		b, ok := rsnsec.BenchmarkByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		out = append(out, b)
	}
	return out, nil
}

func run(table string, scale float64, ffBudget, circuits, specs int, seed int64, only, modeName, csvPath string, workers int, timeout time.Duration, verbose bool) error {
	benchmarks, err := selectBenchmarks(only)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cfg := rsnsec.DefaultRunConfig()
	cfg.Scale = scale
	cfg.TargetScanFFs = ffBudget
	cfg.Circuits = circuits
	cfg.Specs = specs
	cfg.Seed = seed
	cfg.Workers = workers
	var stats *rsnsec.EngineStats
	if verbose {
		stats = rsnsec.NewEngineStats()
		cfg.Stats = stats
		cfg.Progress = func(f string, a ...any) { fmt.Fprintf(os.Stderr, "  %s\n", fmt.Sprintf(f, a...)) }
	}
	switch modeName {
	case "exact":
		cfg.Mode = rsnsec.Exact
	case "structural":
		cfg.Mode = rsnsec.StructuralApprox
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	want := func(name string) bool { return table == name || table == "all" }
	ran := false
	if want("sizes") {
		ran = true
		sizesTable(benchmarks)
	}
	if want("main") {
		ran = true
		if err := mainTable(ctx, benchmarks, cfg, csvPath); err != nil {
			return err
		}
	}
	if want("bridging") {
		ran = true
		if err := bridgingTable(ctx, benchmarks, cfg); err != nil {
			return err
		}
	}
	if want("approx") {
		ran = true
		if err := approxTable(ctx, benchmarks, cfg); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown table %q", table)
	}
	if stats != nil {
		fmt.Printf("engine stats:\n%s\n", stats)
	}
	return nil
}

func sizesTable(benchmarks []rsnsec.Benchmark) {
	t := report.New("Table I (structural columns, full size) — paper vs generated",
		"Benchmark", "Family", ">#Scan Registers", ">#Scan Flip-Flops", ">#Scan Mux's", ">Paper FFs")
	for _, b := range benchmarks {
		nw := b.Build(1)
		st := nw.Stats()
		t.Add(b.Name, b.Family.String(), report.Int(st.Registers), report.Int(st.ScanFFs),
			report.Int(st.Muxes), report.Int(b.PaperScanFFs))
	}
	t.WriteTo(os.Stdout)
	fmt.Println()
}

func mainTable(ctx context.Context, benchmarks []rsnsec.Benchmark, cfg rsnsec.RunConfig, csvPath string) error {
	var csvW *csv.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = csv.NewWriter(f)
		defer csvW.Flush()
		if err := csvW.Write([]string{
			"benchmark", "family", "regs", "scan_ffs", "muxes",
			"full_regs", "full_scan_ffs", "full_muxes",
			"avg_violating_regs", "avg_pure_changes", "avg_hybrid_changes", "avg_total_changes",
			"dep_calc_s", "pure_s", "hybrid_s", "total_s",
			"runs", "skipped_secure", "skipped_insecure_logic", "errors",
		}); err != nil {
			return err
		}
	}
	fmt.Printf("Protocol: %d circuits x %d specs per benchmark, mode=%v, scan-FF budget %d (scale %g)\n",
		cfg.Circuits, cfg.Specs, cfg.Mode, cfg.TargetScanFFs, cfg.Scale)
	t := report.New("Table I (measured columns, scaled structures)",
		"Benchmark", ">Regs", ">FFs", ">Muxes",
		">#Reg w/ viol.", ">Chg pure", ">Chg hybrid", ">Chg total",
		">Dep calc (s)", ">Pure (s)", ">Hybrid (s)", ">Total (s)",
		">Runs", ">Skip(sec)", ">Skip(logic)")
	var sumPure, sumTotal float64
	for _, b := range benchmarks {
		res, err := rsnsec.RunBenchmarkCtx(ctx, b, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		if res.Errors > 0 {
			fmt.Fprintf(os.Stderr, "warning: %s: %d runs failed to resolve\n", b.Name, res.Errors)
		}
		t.Add(b.Name,
			report.Int(res.ScaledStats.Registers), report.Int(res.ScaledStats.ScanFFs), report.Int(res.ScaledStats.Muxes),
			report.F2(res.AvgViolatingRegs), report.F1(res.AvgPureChanges), report.F1(res.AvgHybridChanges), report.F1(res.AvgTotalChanges),
			report.Secs(res.AvgDepTime), report.Secs(res.AvgPureTime), report.Secs(res.AvgHybridTime), report.Secs(res.AvgTotalTime),
			report.Int(res.Runs), report.Int(res.SkippedNoViolation), report.Int(res.SkippedInsecureLogic))
		sumPure += res.AvgPureChanges
		sumTotal += res.AvgTotalChanges
		if csvW != nil {
			if err := csvW.Write([]string{
				b.Name, b.Family.String(),
				report.Int(res.ScaledStats.Registers), report.Int(res.ScaledStats.ScanFFs), report.Int(res.ScaledStats.Muxes),
				report.Int(res.FullStats.Registers), report.Int(res.FullStats.ScanFFs), report.Int(res.FullStats.Muxes),
				report.F2(res.AvgViolatingRegs), report.F1(res.AvgPureChanges), report.F1(res.AvgHybridChanges), report.F1(res.AvgTotalChanges),
				report.Secs(res.AvgDepTime), report.Secs(res.AvgPureTime), report.Secs(res.AvgHybridTime), report.Secs(res.AvgTotalTime),
				report.Int(res.Runs), report.Int(res.SkippedNoViolation), report.Int(res.SkippedInsecureLogic), report.Int(res.Errors),
			}); err != nil {
				return err
			}
		}
	}
	t.WriteTo(os.Stdout)
	if sumTotal > 0 {
		fmt.Printf("\npure changes are %.0f%% of total changes (paper: ~43%%)\n\n", 100*sumPure/sumTotal)
	}
	return nil
}

func bridgingTable(ctx context.Context, benchmarks []rsnsec.Benchmark, cfg rsnsec.RunConfig) error {
	t := report.New("Section III-A: bridging over internal flip-flops",
		"Benchmark", ">FFs (no bridge)", ">FFs (bridged)", ">FF reduction",
		">Deps (no bridge)", ">Deps (bridged)", ">Dep reduction")
	var sumFF, sumDep float64
	n := 0
	for _, b := range benchmarks {
		res, err := rsnsec.RunBridgingCtx(ctx, b, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		t.Add(b.Name, report.Int(res.FFsTotal), report.Int(res.FFsBridged), report.Pct(res.FFReduction()),
			report.Int(res.DepsNoBridge), report.Int(res.DepsBridge), report.Pct(res.DepReduction()))
		sumFF += res.FFReduction()
		sumDep += res.DepReduction()
		n++
	}
	t.WriteTo(os.Stdout)
	if n > 0 {
		fmt.Printf("\naverage reductions: %.2f%% flip-flops, %.2f%% dependencies (paper: 41.72%% / 65.37%%)\n\n",
			100*sumFF/float64(n), 100*sumDep/float64(n))
	}
	return nil
}

func approxTable(ctx context.Context, benchmarks []rsnsec.Benchmark, cfg rsnsec.RunConfig) error {
	t := report.New("Section IV-C: approximating path-dependency with structural dependency",
		"Benchmark", ">Runs", ">Exact changes", ">Approx changes", ">Overhead", ">False insecure", ">Rate")
	var sumExact, sumApprox, sumOverhead float64
	falseCnt, totalCnt, withRuns := 0, 0, 0
	for _, b := range benchmarks {
		res, err := rsnsec.RunApproxCtx(ctx, b, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		t.Add(b.Name, report.Int(res.Runs), report.F1(res.ExactChanges), report.F1(res.ApproxChanges),
			report.Pct(res.ChangeOverhead()), report.Int(res.FalseInsecure), report.Pct(res.FalseInsecureRate()))
		sumExact += res.ExactChanges
		sumApprox += res.ApproxChanges
		falseCnt += res.FalseInsecure
		totalCnt += res.TotalSpecRuns
		if res.Runs > 0 {
			sumOverhead += res.ChangeOverhead()
			withRuns++
		}
	}
	t.WriteTo(os.Stdout)
	if sumExact > 0 && totalCnt > 0 && withRuns > 0 {
		fmt.Printf("\noverall: +%.0f%% additional changes weighted, +%.0f%% per-benchmark average (paper: +61%%); %.2f%% falsely insecure logic (paper: 6.21%%)\n\n",
			100*(sumApprox/sumExact-1), 100*sumOverhead/float64(withRuns), 100*float64(falseCnt)/float64(totalCnt))
	}
	return nil
}
