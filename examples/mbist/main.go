// MBIST: secure an industrial-style memory-BIST scan network
// (MBIST_2_5_5 from the paper's Table I). The scenario: one of the
// chip's memory controllers comes from an untrusted third-party vendor,
// while another controller's memories buffer confidential data. The
// hierarchy lets every controller be included in or excluded from the
// scan path — and that flexibility is exactly what an attacker can use
// to route the confidential buffer contents through the untrusted
// controller's segments.
package main

import (
	"fmt"
	"log"
	"strings"

	rsnsec "repro"
)

func main() {
	b, ok := rsnsec.BenchmarkByName("MBIST_2_5_5")
	if !ok {
		log.Fatal("benchmark missing")
	}
	nw := b.Build(1)
	st := nw.Stats()
	fmt.Printf("MBIST_2_5_5: %d registers, %d scan FFs, %d muxes, %d modules\n",
		st.Registers, st.ScanFFs, st.Muxes, len(nw.Modules))

	// Attach a random circuit (the benchmark ships without one).
	att := rsnsec.AttachCircuit(nw, rsnsec.DefaultCircuitConfig(), 42)
	fmt.Printf("attached circuit: %d flip-flops (%d internal), %d instrument links\n",
		att.Circuit.NumFFs(), len(att.Internal), att.Links)

	// Hand-written specification: core0.ctrl0's memories hold
	// confidential data; core1.ctrl2 is the untrusted vendor block.
	spec := rsnsec.NewSpec(len(nw.Modules), 4)
	confidential, untrusted := -1, -1
	for m, name := range nw.Modules {
		switch {
		case name == "core0.ctrl0":
			confidential = m
			spec.SetTrust(m, 3)
			spec.SetAccepts(m, rsnsec.NewCatSet(2, 3))
		case name == "core1.ctrl2":
			untrusted = m
			spec.SetTrust(m, 0)
			spec.SetAccepts(m, rsnsec.AllCats(4))
		default:
			spec.SetTrust(m, 2)
			spec.SetAccepts(m, rsnsec.AllCats(4))
		}
	}
	if confidential < 0 || untrusted < 0 {
		log.Fatalf("module layout unexpected: %v", nw.Modules[:3])
	}
	fmt.Printf("confidential: %s; untrusted: %s\n\n", nw.Modules[confidential], nw.Modules[untrusted])

	rep, err := rsnsec.Secure(nw, att.Circuit, att.Internal, spec, rsnsec.Options{
		Log: func(f string, a ...any) { fmt.Printf("  %s\n", fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case rep.InsecureLogic:
		fmt.Println("\nthe generated circuit itself leaks (rare): re-run with another seed")
	case rep.Secured:
		fmt.Printf("\nsecured with %d changes (%d pure + %d hybrid) in %v\n",
			rep.TotalChanges(), rep.PureChanges, rep.HybridChanges, rep.Times.Total)
		fmt.Printf("registers kept: %d of %d (the method never drops a register)\n",
			len(nw.Registers), st.Registers)
		// Every register of the confidential controller must be
		// unreachable from... rather: no untrusted register may sit
		// downstream of a confidential one.
		leaks := 0
		for x := range nw.Registers {
			if nw.Registers[x].Module != confidential {
				continue
			}
			for y := range nw.Registers {
				if nw.Registers[y].Module == untrusted && nw.PureReaches(rsnsec.RegRef(x), rsnsec.RegRef(y)) {
					leaks++
				}
			}
		}
		fmt.Printf("confidential->untrusted pure-path pairs remaining: %d\n", leaks)
		fmt.Printf("structure after securing: %d muxes (%d added)\n",
			len(nw.Muxes), len(nw.Muxes)-st.Muxes)
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("tip: rsnbench -table main -benchmarks MBIST_2_5_5 reruns the")
	fmt.Println("full averaged protocol (10 circuits x 16 specifications).")
}
