// Quickstart: build a small reconfigurable scan network over a toy
// circuit, declare which instrument is confidential and which is
// untrusted, and let the library transform the network until no pure or
// hybrid scan path can leak the confidential data.
package main

import (
	"fmt"
	"log"
	"os"

	rsnsec "repro"
)

func main() {
	// A circuit with three instruments: a key register (confidential),
	// a sensor (untrusted; an attacker can read it out via a side
	// channel), and a status block.
	circuit := rsnsec.NewNetlist()
	keyMod := circuit.AddModule("key")
	sensorMod := circuit.AddModule("sensor")
	statusMod := circuit.AddModule("status")

	key := circuit.AddFF("key.bit", keyMod)
	sensor := circuit.AddFF("sensor.bit", sensorMod)
	status := circuit.AddFF("status.bit", statusMod)
	circuit.SetFFInput(key, circuit.FFs[key].Node) // holds the secret
	// The sensor latches whatever the status block drives — an
	// innocent-looking functional path that a hybrid scan path can
	// exploit.
	circuit.SetFFInput(sensor, circuit.FFs[status].Node)
	circuit.SetFFInput(status, circuit.FFs[status].Node)

	// The scan network: SI -> KEY -> STATUS -> SENSOR -> SO, each
	// register capturing from and updating into its instrument.
	nw := rsnsec.NewNetwork("quickstart")
	for _, m := range circuit.Modules {
		nw.AddModule(m)
	}
	rKey := nw.AddRegister("KEY", 1, keyMod)
	rStatus := nw.AddRegister("STATUS", 1, statusMod)
	rSensor := nw.AddRegister("SENSOR", 1, sensorMod)
	nw.Connect(rKey, rsnsec.ScanIn)
	nw.Connect(rStatus, rsnsec.RegRef(rKey))
	nw.Connect(rSensor, rsnsec.RegRef(rStatus))
	nw.ConnectOut(rsnsec.RegRef(rSensor))
	nw.SetCapture(rKey, 0, key)
	nw.SetUpdate(rKey, 0, key)
	nw.SetCapture(rStatus, 0, status)
	nw.SetUpdate(rStatus, 0, status)
	nw.SetCapture(rSensor, 0, sensor)
	nw.SetUpdate(rSensor, 0, sensor)

	// The security specification: key data accepts only high-trust
	// segments; the sensor has the lowest trust category.
	spec := rsnsec.NewSpec(3, 4)
	spec.SetTrust(keyMod, 3)
	spec.SetAccepts(keyMod, rsnsec.NewCatSet(2, 3))
	spec.SetTrust(sensorMod, 0)
	spec.SetAccepts(sensorMod, rsnsec.AllCats(4))
	spec.SetTrust(statusMod, 2)
	spec.SetAccepts(statusMod, rsnsec.AllCats(4))

	fmt.Println("before: KEY can shift into SENSOR purely, and into STATUS")
	fmt.Println("        whose circuit path feeds SENSOR (a hybrid scan path)")

	rep, err := rsnsec.Secure(nw, circuit, nil, spec, rsnsec.Options{
		Log: func(f string, a ...any) { fmt.Printf("  %s\n", fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secured: %v, %d pure + %d hybrid changes\n",
		rep.Secured, rep.PureChanges, rep.HybridChanges)

	fmt.Println("\nsecured network as ICL:")
	name := func(f rsnsec.FFID) string { return circuit.FFs[f].Name }
	if err := rsnsec.WriteICL(os.Stdout, nw, name); err != nil {
		log.Fatal(err)
	}
}
