// Running example: the paper's Figures 1, 3, 4 and 5 as an executable
// walk-through. It builds the circuit and scan network of Figure 1,
// demonstrates the attack of Section II-D by simulation, shows the
// bridging trace of Figure 3, resolves the pure violation (Figure 4)
// and the hybrid violation (Figure 5), and verifies by exhaustive
// simulation that the secured network leaks nothing.
package main

import (
	"fmt"
	"log"

	rsnsec "repro"
)

func main() {
	ex := rsnsec.RunningExample()
	fmt.Println("== Figure 1: the insecure running example ==")
	st := ex.Network.Stats()
	fmt.Printf("scan network: %d registers, %d scan flip-flops, %d muxes\n",
		st.Registers, st.ScanFFs, st.Muxes)
	fmt.Printf("circuit: %d flip-flops (%d internal: IF1, IF2)\n",
		ex.Circuit.NumFFs(), len(ex.Internal))
	fmt.Println("confidential: crypto's F2; untrusted: the module holding F7..F10")

	fmt.Println("\n== Section II-D: the attack, simulated ==")
	if leak := attack(ex); leak {
		fmt.Println("hybrid attack SUCCEEDS: F2's bit reached the untrusted F7")
	} else {
		log.Fatal("internal error: attack should succeed on the insecure network")
	}

	fmt.Println("\n== Figure 3: dependencies after bridging IF1 and IF2 ==")
	an := rsnsec.NewAnalysis(ex.Network, ex.Circuit, ex.Internal, ex.Spec, rsnsec.Exact)
	for _, pair := range [][2]rsnsec.FFID{{ex.F[8], ex.F[4]}, {ex.F[8], ex.F[5]}} {
		dst, src := pair[0], pair[1]
		kind := an.Clo.Kind(int(dst), int(src))
		fmt.Printf("%s on %s: %v\n", ex.Circuit.FFs[dst].Name, ex.Circuit.FFs[src].Name, kind)
	}
	fmt.Println("(the XOR reconvergence makes the F6 dependency only structural)")

	fmt.Println("\n== Figures 4 and 5: securing the network ==")
	rep, err := rsnsec.Secure(ex.Network, ex.Circuit, ex.Internal, ex.Spec, rsnsec.Options{
		Log: func(f string, a ...any) { fmt.Printf("  %s\n", fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pure changes (Figure 4): %d\n", rep.PureChanges)
	for _, c := range rep.PureChangeList {
		fmt.Printf("  %s\n", c)
	}
	fmt.Printf("hybrid changes (Figure 5): %d\n", rep.HybridChanges)
	for _, c := range rep.HybridChangeList {
		fmt.Printf("  %s\n", c)
	}

	fmt.Println("\n== verification: replaying the attack on the secured network ==")
	if attack(ex) {
		log.Fatal("attack still succeeds — method failed")
	}
	fmt.Println("attack fails under every configuration: the RSN is data-flow secure")
}

// attack tries the Section II-D scenario under every mux configuration
// and shift count: capture the confidential F2, shift, update, clock the
// circuit, and check whether the bit reached the untrusted module.
func attack(ex *rsnsec.RunningExampleParts) bool {
	for _, cfg := range allConfigs(ex.Network) {
		for shifts := 0; shifts <= 14; shifts++ {
			csim := rsnsec.NewCircuitSimulator(ex.Circuit)
			csim.SetFF(ex.F[1], true) // the confidential bit
			sim := rsnsec.NewNetworkSimulator(ex.Network, csim)
			if sim.Capture(cfg) != nil {
				continue
			}
			if _, err := sim.ShiftN(cfg, nil, shifts); err != nil {
				continue
			}
			if sim.Update(cfg) != nil {
				continue
			}
			sim.ClockCircuit(4)
			for _, f := range []rsnsec.FFID{ex.F[6], ex.F[7], ex.F[8], ex.F[9]} {
				if csim.FFValue(f) {
					return true
				}
			}
		}
	}
	return false
}

func allConfigs(nw *rsnsec.Network) []rsnsec.ScanConfig {
	cfgs := []rsnsec.ScanConfig{nw.NewConfig()}
	for m := range nw.Muxes {
		var next []rsnsec.ScanConfig
		for _, c := range cfgs {
			for sel := range nw.Muxes[m].Inputs {
				cc := append(rsnsec.ScanConfig{}, c...)
				cc[m] = sel
				next = append(next, cc)
			}
		}
		cfgs = next
	}
	return cfgs
}
