// Access plans: the point of an RSN is reading and writing embedded
// instruments. This example shows that the secure transformation keeps
// every register accessible — the method's guarantee that
// distinguishes it from filter-based defenses, which must block whole
// register pairs. For every register of the running example we compute
// an access plan (configuration + shift offsets) before and after
// securing, and exercise a full write-update / capture-read round trip
// through the secured network.
package main

import (
	"fmt"
	"log"

	rsnsec "repro"
)

func main() {
	ex := rsnsec.RunningExample()
	fmt.Println("access plans on the INSECURE network:")
	printPlans(ex.Network)

	rep, err := rsnsec.Secure(ex.Network, ex.Circuit, ex.Internal, ex.Spec, rsnsec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecured with %d changes; plans on the SECURED network:\n", rep.TotalChanges())
	printPlans(ex.Network)

	// Read and write an instrument through the secured network: the
	// plain module's register SR3 still reaches its circuit flip-flops.
	plan, err := ex.Network.PlanAccess(ex.SR[2])
	if err != nil {
		log.Fatal(err)
	}
	csim := rsnsec.NewCircuitSimulator(ex.Circuit)
	sim := rsnsec.NewNetworkSimulator(ex.Network, csim)

	fmt.Println("\nwriting pattern 10 into SR3's instrument (F5, F6)...")
	if err := sim.WriteInstrument(plan, []bool{true, false}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit now holds F5=%v F6=%v\n", csim.FFValue(ex.F[4]), csim.FFValue(ex.F[5]))

	got, err := sim.ReadInstrument(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back over the scan path: %v\n", fmtBits(got))
	if !got[0] || got[1] {
		log.Fatal("instrument round trip failed")
	}
	fmt.Println("\nevery register of the secured RSN remains fully usable for")
	fmt.Println("test and debug — only the insecure data flows are gone.")
}

func printPlans(nw *rsnsec.Network) {
	plans, err := nw.PlanAllAccesses()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range plans {
		reg := &nw.Registers[p.Register]
		fmt.Printf("  %-4s len %d: config %v, offset %d, path %d FFs (write: %d shifts, read: %d)\n",
			reg.Name, reg.Len, p.Config, p.Offset, p.PathLen,
			p.ShiftsToWrite(reg.Len), p.ShiftsToRead(reg.Len))
	}
}

func fmtBits(bits []bool) string {
	out := ""
	for _, b := range bits {
		if b {
			out += "1"
		} else {
			out += "0"
		}
	}
	return out
}
