// Ablation (Section IV-C): what happens when path-dependency is
// over-approximated by structural dependency? Every real violation is
// still found, but reconvergence-masked paths produce false positives:
// more scan-network changes than necessary, and sometimes an entirely
// false "insecure circuit logic" verdict. The paper reports +61%
// additional changes and 6.21% falsely insecure classifications; this
// example measures both on a handful of benchmarks.
package main

import (
	"fmt"
	"log"

	rsnsec "repro"
)

func main() {
	// First, the effect in isolation on the running example: the
	// XOR-reconvergence path from F6 is only structural, so exact
	// analysis ends with a cheaper network than the approximation.
	fmt.Println("== running example ==")
	exact := rsnsec.RunningExample()
	repE, err := rsnsec.Secure(exact.Network, exact.Circuit, exact.Internal, exact.Spec,
		rsnsec.Options{Mode: rsnsec.Exact})
	if err != nil {
		log.Fatal(err)
	}
	approx := rsnsec.RunningExample()
	repA, err := rsnsec.Secure(approx.Network, approx.Circuit, approx.Internal, approx.Spec,
		rsnsec.Options{Mode: rsnsec.StructuralApprox})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:  %d changes, %d SAT calls\n", repE.TotalChanges(), repE.DepStats.SATCalls)
	fmt.Printf("approx: %d changes, %d SAT calls (no SAT, but more to fix)\n\n",
		repA.TotalChanges(), repA.DepStats.SATCalls)

	// Then the paper's protocol on a few benchmarks.
	fmt.Println("== benchmark protocol (5 circuits x 8 specs each) ==")
	cfg := rsnsec.DefaultRunConfig()
	cfg.Circuits, cfg.Specs = 5, 8
	var sumExact, sumApprox float64
	falseInsecure, total := 0, 0
	for _, name := range []string{"BasicSCB", "Mingle", "TreeFlat", "MBIST_1_5_5"} {
		b, ok := rsnsec.BenchmarkByName(name)
		if !ok {
			log.Fatalf("benchmark %s missing", name)
		}
		res, err := rsnsec.RunApprox(b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s runs=%-3d exact=%5.1f approx=%5.1f overhead=%+5.0f%%  false-insecure=%d/%d\n",
			name, res.Runs, res.ExactChanges, res.ApproxChanges,
			100*res.ChangeOverhead(), res.FalseInsecure, res.TotalSpecRuns)
		sumExact += res.ExactChanges
		sumApprox += res.ApproxChanges
		falseInsecure += res.FalseInsecure
		total += res.TotalSpecRuns
	}
	if sumExact > 0 {
		fmt.Printf("\noverall change overhead: %+.0f%% (paper: +61%%)\n", 100*(sumApprox/sumExact-1))
	}
	if total > 0 {
		fmt.Printf("falsely insecure circuit logic: %.2f%% (paper: 6.21%%)\n",
			100*float64(falseInsecure)/float64(total))
	}
	fmt.Println("\nconclusion: hours of one-time SAT runtime buy a markedly")
	fmt.Println("cheaper secured scan network — the paper's IV-C argument.")
}
