package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one finished span, as handed to the sink. Timestamps are
// microseconds on the tracer's monotonic clock (time since the tracer
// was constructed), so events of one run order and subtract exactly
// regardless of wall-clock adjustments.
type Event struct {
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	StartU int64          `json:"start_us"`
	DurU   int64          `json:"dur_us"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Sink receives finished span events. Implementations must be safe for
// concurrent use; spans end on worker goroutines.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per line. Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink emitting JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.enc.Encode(ev)
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// BufferedJSONLSink is a JSONL sink over a buffered writer: span
// events amortize into large writes, and Flush pushes everything
// buffered down to the underlying writer. Long-running processes
// (rsnserved) flush on graceful shutdown so no buffered spans are
// lost; short-lived CLIs flush before closing the file.
type BufferedJSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewBufferedJSONLSink returns a buffered sink emitting JSON lines to
// w. Call Flush before the underlying writer closes.
func NewBufferedJSONLSink(w io.Writer) *BufferedJSONLSink {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &BufferedJSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit buffers the event as one JSON line.
func (s *BufferedJSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.enc.Encode(ev)
	}
}

// Flush writes all buffered events to the underlying writer.
func (s *BufferedJSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Err returns the first write error, if any.
func (s *BufferedJSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// CollectorSink buffers events in memory (tests, report builders).
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *CollectorSink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a copy of the buffered events in emission order.
func (s *CollectorSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Tracer hands out hierarchical spans (run > circuit > stage > query)
// and emits them to a sink when they end. Span creation is cheap and
// race-safe; high-frequency span names can be sampled so query-level
// tracing does not swamp the journal. A nil *Tracer hands out nil
// spans whose methods no-op.
type Tracer struct {
	sink   Sink
	epoch  time.Time
	now    func() time.Time // test seam; defaults to time.Now
	nextID atomic.Uint64

	mu     sync.Mutex
	sample map[string]int
	counts map[string]*atomic.Int64

	emitted atomic.Int64
	dropped atomic.Int64
}

// NewTracer returns a tracer emitting to sink (which must be non-nil).
func NewTracer(sink Sink) *Tracer {
	return &Tracer{
		sink:   sink,
		epoch:  time.Now(),
		now:    time.Now,
		sample: make(map[string]int),
		counts: make(map[string]*atomic.Int64),
	}
}

// SampleEvery records only every n-th span of the given name (n <= 1
// records all). Unrecorded spans still receive IDs and still parent
// their children, so the hierarchy stays intact; only their events are
// dropped (counted by Dropped).
func (t *Tracer) SampleEvery(name string, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sample[name] = n
	t.mu.Unlock()
}

// Emitted returns the number of events handed to the sink.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.emitted.Load()
}

// Dropped returns the number of spans elided by sampling.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Start opens a span under parent (nil parent makes a root span). The
// returned span must be closed with End; it may be nil (when the
// tracer is nil), and nil spans are safe to use.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		t:     t,
		id:    t.nextID.Add(1),
		name:  name,
		start: t.now().Sub(t.epoch),
	}
	if parent != nil {
		s.parent = parent.id
	}
	s.attrs = append(s.attrs, attrs...)
	s.record = t.shouldRecord(name)
	if !s.record {
		t.dropped.Add(1)
	}
	return s
}

// shouldRecord applies the per-name sampling policy.
func (t *Tracer) shouldRecord(name string) bool {
	t.mu.Lock()
	n := t.sample[name]
	if n <= 1 {
		t.mu.Unlock()
		return true
	}
	c, ok := t.counts[name]
	if !ok {
		c = new(atomic.Int64)
		t.counts[name] = c
	}
	t.mu.Unlock()
	return (c.Add(1)-1)%int64(n) == 0
}

// Span is one timed region of the run hierarchy. All methods tolerate
// nil receivers.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	record bool

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttrs appends attributes; typically called right before End with
// the span's results (query counts, change counts).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End closes the span and emits it (unless elided by sampling). End is
// idempotent; later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	if !s.record {
		return
	}
	end := s.t.now().Sub(s.t.epoch)
	ev := Event{
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		StartU: s.start.Microseconds(),
		DurU:   (end - s.start).Microseconds(),
	}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = attrValue(a.Val)
		}
	}
	s.t.emitted.Add(1)
	s.t.sink.Emit(ev)
}
