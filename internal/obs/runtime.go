package obs

import (
	"math"
	"runtime/metrics"
)

// runtimeSamples maps runtime/metrics sample names to the exported
// gauge names. Values are sampled by a registry collector at scrape
// time — runtime/metrics reads are cheap and stop-the-world free, so
// scrapes stay O(µs) regardless of heap size.
var runtimeSamples = []struct {
	sample string
	gauge  string
	help   string
}{
	{"/sched/goroutines:goroutines", "go_goroutines",
		"Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_heap_live_bytes",
		"Bytes of live heap objects (allocated and not yet collected)."},
	{"/memory/classes/total:bytes", "go_mem_total_bytes",
		"Total memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total",
		"Completed GC cycles since process start."},
	{"/cpu/classes/gc/pause:cpu-seconds", "go_gc_pause_cpu_ms_total",
		"Cumulative CPU-milliseconds spent in GC stop-the-world pauses."},
}

// cpuSamples feed go_cpu_seconds_total: the runtime's estimate of all
// CPU time available to the process minus the idle share — i.e. the
// CPU the process actually spent working (user code, GC, scavenger).
// Kept apart from runtimeSamples because two samples combine into one
// exported value, and that value is a float (seconds truncate too
// coarsely for SLO CPU accounting).
var cpuSamples = struct{ total, idle string }{
	total: "/cpu/classes/total:cpu-seconds",
	idle:  "/cpu/classes/idle:cpu-seconds",
}

// EnableRuntimeMetrics registers Go runtime health gauges
// (go_goroutines, go_heap_live_bytes, go_mem_total_bytes,
// go_gc_cycles_total, go_gc_pause_cpu_ms_total, go_cpu_seconds_total)
// in the registry, refreshed via runtime/metrics on every exposition.
// Unknown sample names (older runtimes) are skipped silently, so the
// set degrades instead of breaking across Go versions.
func EnableRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	gauges := make([]*Gauge, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.sample
		r.SetHelp(rs.gauge, rs.help)
		gauges[i] = r.Gauge(rs.gauge)
	}
	r.SetHelp("go_cpu_seconds_total",
		"Cumulative CPU seconds the process spent working (total minus idle, "+
			"per runtime/metrics; the estimate refreshes on GC, so it lags on quiet processes).")
	cpuG := r.FloatGauge("go_cpu_seconds_total")
	cpu := []metrics.Sample{{Name: cpuSamples.total}, {Name: cpuSamples.idle}}
	r.AddCollector(func() {
		metrics.Read(samples)
		for i := range samples {
			switch samples[i].Value.Kind() {
			case metrics.KindUint64:
				v := samples[i].Value.Uint64()
				if v > math.MaxInt64 {
					v = math.MaxInt64
				}
				gauges[i].Set(int64(v))
			case metrics.KindFloat64:
				// Float samples here are cumulative seconds; export as
				// integer milliseconds (the registry is int64-valued).
				gauges[i].Set(int64(samples[i].Value.Float64() * 1e3))
			}
		}
		metrics.Read(cpu)
		if cpu[0].Value.Kind() == metrics.KindFloat64 && cpu[1].Value.Kind() == metrics.KindFloat64 {
			if busy := cpu[0].Value.Float64() - cpu[1].Value.Float64(); busy >= 0 {
				cpuG.Set(busy)
			}
		}
	})
}
