package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema is the run-report schema identifier. Bump the suffix on
// any incompatible field change; readers reject unknown versions so a
// regression pipeline never silently mis-parses an old artifact.
const ReportSchema = "rsnsec.run-report/v1"

// RunReport is the machine-readable outcome of one experimental run —
// the data behind the bench_tables.txt trajectory: the protocol
// configuration, one row per benchmark with the measured averages of
// Table I, and the engine's per-stage instrumentation totals.
type RunReport struct {
	Schema string `json:"schema"`
	// Tool identifies the producer (e.g. "rsnbench").
	Tool string `json:"tool"`
	// StartedAt is an optional RFC3339 wall-clock stamp. It is excluded
	// from Validate so reports stay byte-comparable in tests.
	StartedAt string `json:"started_at,omitempty"`
	// Config echoes the protocol parameters the run used.
	Config ReportConfig `json:"config"`
	// Benchmarks holds one row per analyzed benchmark.
	Benchmarks []BenchmarkReport `json:"benchmarks"`
	// Stages holds the engine's per-stage totals across the whole run.
	Stages []StageReport `json:"stages,omitempty"`
	// Totals aggregates the benchmark rows.
	Totals ReportTotals `json:"totals"`
}

// ReportConfig echoes the experimental protocol parameters.
type ReportConfig struct {
	Table         string  `json:"table,omitempty"`
	Mode          string  `json:"mode"`
	Seed          int64   `json:"seed"`
	Circuits      int     `json:"circuits"`
	Specs         int     `json:"specs"`
	TargetScanFFs int     `json:"target_scan_ffs"`
	Scale         float64 `json:"scale"`
	Workers       int     `json:"workers"`
}

// BenchmarkReport is one benchmark's measured row (Table I).
type BenchmarkReport struct {
	Name   string `json:"name"`
	Family string `json:"family"`

	Registers int `json:"registers"`
	ScanFFs   int `json:"scan_ffs"`
	Muxes     int `json:"muxes"`

	FullRegisters int `json:"full_registers"`
	FullScanFFs   int `json:"full_scan_ffs"`
	FullMuxes     int `json:"full_muxes"`

	Runs                 int `json:"runs"`
	SkippedSecure        int `json:"skipped_secure"`
	SkippedInsecureLogic int `json:"skipped_insecure_logic"`
	Errors               int `json:"errors"`

	AvgViolatingRegs float64 `json:"avg_violating_regs"`
	AvgPureChanges   float64 `json:"avg_pure_changes"`
	AvgHybridChanges float64 `json:"avg_hybrid_changes"`
	AvgTotalChanges  float64 `json:"avg_total_changes"`

	AvgDepNS    int64 `json:"avg_dep_ns"`
	AvgPureNS   int64 `json:"avg_pure_ns"`
	AvgHybridNS int64 `json:"avg_hybrid_ns"`
	AvgTotalNS  int64 `json:"avg_total_ns"`
}

// StageReport is one engine stage's totals (mirrors
// engine.StageSnapshot with JSON-stable field names).
type StageReport struct {
	Name    string `json:"name"`
	WallNS  int64  `json:"wall_ns"`
	Calls   int64  `json:"calls"`
	Queries int64  `json:"queries"`
	Items   int64  `json:"items"`
	Saved   int64  `json:"saved"`
}

// ReportTotals aggregates the benchmark rows.
type ReportTotals struct {
	Benchmarks int `json:"benchmarks"`
	Runs       int `json:"runs"`
	Errors     int `json:"errors"`
	// SumAvgPureChanges / SumAvgTotalChanges back the paper's
	// pure-vs-total change split (~43%).
	SumAvgPureChanges  float64 `json:"sum_avg_pure_changes"`
	SumAvgTotalChanges float64 `json:"sum_avg_total_changes"`
	// StageWallNS is the sum of all stage wall times.
	StageWallNS int64 `json:"stage_wall_ns"`
}

// ComputeTotals recomputes Totals from the benchmark and stage rows.
func (r *RunReport) ComputeTotals() {
	t := ReportTotals{Benchmarks: len(r.Benchmarks)}
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		t.Runs += b.Runs
		t.Errors += b.Errors
		t.SumAvgPureChanges += b.AvgPureChanges
		t.SumAvgTotalChanges += b.AvgTotalChanges
	}
	for i := range r.Stages {
		t.StageWallNS += r.Stages[i].WallNS
	}
	r.Totals = t
}

// Validate checks the report's structural invariants: the schema
// version, unique non-empty benchmark and stage names, non-negative
// counters, and totals consistent with the rows.
func (r *RunReport) Validate() error {
	if r == nil {
		return fmt.Errorf("report: nil")
	}
	if r.Schema != ReportSchema {
		return fmt.Errorf("report: schema %q, this reader wants %q", r.Schema, ReportSchema)
	}
	if r.Tool == "" {
		return fmt.Errorf("report: missing tool")
	}
	seen := make(map[string]bool)
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		if b.Name == "" {
			return fmt.Errorf("report: benchmark %d: empty name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("report: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		for _, c := range []struct {
			what string
			v    int64
		}{
			{"runs", int64(b.Runs)}, {"errors", int64(b.Errors)},
			{"skipped_secure", int64(b.SkippedSecure)},
			{"skipped_insecure_logic", int64(b.SkippedInsecureLogic)},
			{"registers", int64(b.Registers)}, {"scan_ffs", int64(b.ScanFFs)},
			{"avg_dep_ns", b.AvgDepNS}, {"avg_pure_ns", b.AvgPureNS},
			{"avg_hybrid_ns", b.AvgHybridNS}, {"avg_total_ns", b.AvgTotalNS},
		} {
			if c.v < 0 {
				return fmt.Errorf("report: benchmark %q: negative %s", b.Name, c.what)
			}
		}
		if b.AvgPureChanges < 0 || b.AvgHybridChanges < 0 || b.AvgTotalChanges < 0 || b.AvgViolatingRegs < 0 {
			return fmt.Errorf("report: benchmark %q: negative average", b.Name)
		}
	}
	seenStage := make(map[string]bool)
	for i := range r.Stages {
		s := &r.Stages[i]
		if s.Name == "" {
			return fmt.Errorf("report: stage %d: empty name", i)
		}
		if seenStage[s.Name] {
			return fmt.Errorf("report: duplicate stage %q", s.Name)
		}
		seenStage[s.Name] = true
		if s.WallNS < 0 || s.Calls < 0 || s.Queries < 0 || s.Items < 0 || s.Saved < 0 {
			return fmt.Errorf("report: stage %q: negative counter", s.Name)
		}
	}
	var want RunReport
	want.Benchmarks = r.Benchmarks
	want.Stages = r.Stages
	want.ComputeTotals()
	if r.Totals != want.Totals {
		return fmt.Errorf("report: totals %+v inconsistent with rows (want %+v)", r.Totals, want.Totals)
	}
	return nil
}

// WriteReport serializes the report as indented JSON.
func WriteReport(w io.Writer, r *RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses and validates a report.
func ReadReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("report: parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
