package perfrec

import (
	"bytes"
	"strings"
	"testing"
)

// sample builds a minimal valid record with one benchmark and the
// given closure-stage samples.
func sample(closureNS ...int64) *Record {
	return &Record{
		Schema: BenchSchema,
		Tool:   "test",
		Reps:   len(closureNS),
		Config: Config{Mode: "exact", Seed: 1, Circuits: 2, Specs: 4, TargetScanFFs: 80},
		Env:    CaptureEnvironment("deadbeef"),
		Benchmarks: []Benchmark{{
			Name:    "TreeFlat",
			ScanFFs: 60,
			Runs:    5,
			Stages: []Stage{
				NewStage("closure", closureNS),
				NewStage("one-cycle", samplesTimes(closureNS, 3)),
			},
			SATQueries:         100,
			SATDecisions:       2000,
			SATConflicts:       50,
			HeapAllocPeakBytes: 64 << 20,
			TotalAllocBytes:    128 << 20,
		}},
	}
}

func samplesTimes(xs []int64, k int64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

func TestMedianAndMAD(t *testing.T) {
	cases := []struct {
		xs       []int64
		med, mad int64
	}{
		{nil, 0, 0},
		{[]int64{7}, 7, 0},
		{[]int64{1, 3}, 2, 1},
		{[]int64{5, 1, 9}, 5, 4},
		{[]int64{10, 12, 11, 100}, 11, 1}, // outlier-robust: deviations 1,1,0,89 → median 1
	}
	for _, c := range cases {
		if m := Median(c.xs); m != c.med {
			t.Errorf("Median(%v) = %d, want %d", c.xs, m, c.med)
		}
		if m := MAD(c.xs); m != c.mad {
			t.Errorf("MAD(%v) = %d, want %d", c.xs, m, c.mad)
		}
	}
	// Median must not mutate its input.
	xs := []int64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sample(10_000_000, 11_000_000, 10_500_000)
	r.CreatedAt = "2026-08-06T00:00:00Z"
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Stages[0].MedianNS != 10_500_000 {
		t.Errorf("median = %d after round trip", got.Benchmarks[0].Stages[0].MedianNS)
	}
	if got.Env.GoVersion == "" || got.Env.GOMAXPROCS < 1 {
		t.Errorf("environment fingerprint lost: %+v", got.Env)
	}
}

// TestSimSATSplitOptional pins the backward compatibility of the
// resolution-path split: zero values serialize to nothing (so records
// written before the prefilter stay byte-identical), and old JSON
// without the fields reads back as zeroes.
func TestSimSATSplitOptional(t *testing.T) {
	r := sample(10, 20, 30)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "sim_resolved") || strings.Contains(s, "sat_resolved") {
		t.Fatalf("zero split fields serialized:\n%s", s)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := got.Benchmarks[0].Stages[0]
	if st.SimResolved != 0 || st.SATResolved != 0 {
		t.Fatalf("absent split fields read as %d/%d", st.SimResolved, st.SATResolved)
	}
	// Non-zero values survive a round trip.
	r.Benchmarks[0].Stages[0].SimResolved = 730
	r.Benchmarks[0].Stages[0].SATResolved = 87
	buf.Reset()
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st = got.Benchmarks[0].Stages[0]
	if st.SimResolved != 730 || st.SATResolved != 87 {
		t.Fatalf("split fields lost in round trip: %d/%d", st.SimResolved, st.SATResolved)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Record)
		want   string
	}{
		{"wrong schema", func(r *Record) { r.Schema = "rsnsec.bench-record/v0" }, "schema"},
		{"missing tool", func(r *Record) { r.Tool = "" }, "missing tool"},
		{"zero reps", func(r *Record) { r.Reps = 0 }, "reps"},
		{"no benchmarks", func(r *Record) { r.Benchmarks = nil }, "no benchmarks"},
		{"empty benchmark name", func(r *Record) { r.Benchmarks[0].Name = "" }, "empty name"},
		{"duplicate benchmark", func(r *Record) {
			r.Benchmarks = append(r.Benchmarks, r.Benchmarks[0])
		}, "duplicate benchmark"},
		{"duplicate stage", func(r *Record) {
			b := &r.Benchmarks[0]
			b.Stages[1] = b.Stages[0]
		}, "duplicate stage"},
		{"negative counter", func(r *Record) { r.Benchmarks[0].SATDecisions = -1 }, "negative"},
		{"negative stage counter", func(r *Record) { r.Benchmarks[0].Stages[0].Items = -1 }, "negative"},
		{"sample count mismatch", func(r *Record) {
			r.Benchmarks[0].Stages[0].SamplesNS = []int64{1}
		}, "samples"},
		{"median inconsistent", func(r *Record) { r.Benchmarks[0].Stages[0].MedianNS++ }, "median_ns"},
		{"mad inconsistent", func(r *Record) { r.Benchmarks[0].Stages[0].MADNS++ }, "mad_ns"},
		{"negative sim split", func(r *Record) { r.Benchmarks[0].Stages[0].SimResolved = -1 }, "negative"},
		{"negative sat split", func(r *Record) { r.Benchmarks[0].Stages[0].SATResolved = -1 }, "negative"},
	}
	for _, c := range cases {
		r := sample(10, 20, 30)
		c.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the record", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := sample(10, 20, 30).Validate(); err != nil {
		t.Errorf("unmutated record rejected: %v", err)
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	r := sample(10_000_000, 11_000_000, 10_500_000)
	if regs := Compare(r, r, Limits{}); len(regs) != 0 {
		t.Fatalf("self-comparison flagged %d regressions: %v", len(regs), regs)
	}
}

func TestCompareFlagsSyntheticRegression(t *testing.T) {
	old := sample(10_000_000, 11_000_000, 10_500_000)
	slow := sample(100_000_000, 110_000_000, 105_000_000) // 10x on every stage
	regs := Compare(old, slow, Limits{})
	if len(regs) != 2 {
		t.Fatalf("want 2 stage regressions, got %d: %s", len(regs), FormatRegressions(regs))
	}
	// Ordered by relative increase (equal here) then path.
	if regs[0].Path != "TreeFlat/closure/median_ns" || regs[1].Path != "TreeFlat/one-cycle/median_ns" {
		t.Errorf("unexpected order: %v", regs)
	}
	if regs[0].Old != 10_500_000 || regs[0].New != 105_000_000 {
		t.Errorf("regression values: %+v", regs[0])
	}
	if p := regs[0].Pct(); p < 8.9 || p > 9.1 {
		t.Errorf("Pct = %v, want ~9 (+900%%)", p)
	}
	if !strings.Contains(regs[0].String(), "+900.0%") {
		t.Errorf("String lacks signed percent: %s", regs[0])
	}
}

func TestCompareNoiseAllowance(t *testing.T) {
	// Old record is noisy: MAD 2ms around a 10ms median. A 5ms slowdown
	// is within 4·MAD and must not flag; a 20ms slowdown must.
	old := sample(8_000_000, 10_000_000, 12_000_000) // median 10ms, MAD 2ms
	within := sample(13_000_000, 15_000_000, 17_000_000)
	if regs := Compare(old, within, Limits{}); len(regs) != 0 {
		t.Fatalf("delta inside k·MAD flagged: %s", FormatRegressions(regs))
	}
	beyond := sample(28_000_000, 30_000_000, 32_000_000)
	if regs := Compare(old, beyond, Limits{}); len(regs) == 0 {
		t.Fatal("delta beyond k·MAD not flagged")
	}
}

func TestCompareAbsoluteFloor(t *testing.T) {
	// Microsecond stages may jitter by whole multiples: below MinNS
	// nothing flags even at +300%.
	old := sample(100_000, 100_000, 100_000)
	slow := sample(400_000, 400_000, 400_000)
	if regs := Compare(old, slow, Limits{}); len(regs) != 0 {
		t.Fatalf("sub-floor stage flagged: %s", FormatRegressions(regs))
	}
	// Tightening the floor exposes it.
	if regs := Compare(old, slow, Limits{MinNS: 10_000}); len(regs) != 2 {
		t.Fatalf("want 2 regressions under a 10µs floor, got %d", len(regs))
	}
}

func TestCompareMemoryGate(t *testing.T) {
	old := sample(10_000_000, 10_000_000, 10_000_000)
	bloat := sample(10_000_000, 10_000_000, 10_000_000)
	bloat.Benchmarks[0].HeapAllocPeakBytes = old.Benchmarks[0].HeapAllocPeakBytes * 3
	regs := Compare(old, bloat, Limits{})
	if len(regs) != 1 || regs[0].Path != "TreeFlat/heap_alloc_peak_bytes" {
		t.Fatalf("want one heap-peak regression, got %s", FormatRegressions(regs))
	}
	if regs := Compare(old, bloat, Limits{MemPct: NoMemGate}); len(regs) != 0 {
		t.Fatalf("NoMemGate still flagged: %s", FormatRegressions(regs))
	}
}

func TestCompareSkipsDisjointRows(t *testing.T) {
	old := sample(10_000_000, 10_000_000, 10_000_000)
	new := sample(100_000_000, 100_000_000, 100_000_000)
	new.Benchmarks[0].Name = "OtherBench" // no common benchmark
	if regs := Compare(old, new, Limits{}); len(regs) != 0 {
		t.Fatalf("disjoint benchmarks compared: %s", FormatRegressions(regs))
	}
	// A stage only present in the new record is skipped too.
	new2 := sample(100_000_000, 100_000_000, 100_000_000)
	new2.Benchmarks[0].Stages[0].Name = "brand-new-stage"
	regs := Compare(old, new2, Limits{})
	for _, r := range regs {
		if strings.Contains(r.Path, "brand-new-stage") {
			t.Fatalf("new-only stage compared: %s", r)
		}
	}
}

func TestCompareImprovementNeverFlags(t *testing.T) {
	old := sample(100_000_000, 100_000_000, 100_000_000)
	fast := sample(10_000_000, 10_000_000, 10_000_000)
	if regs := Compare(old, fast, Limits{}); len(regs) != 0 {
		t.Fatalf("improvement flagged: %s", FormatRegressions(regs))
	}
}

func TestFormatRegressionsClean(t *testing.T) {
	if s := FormatRegressions(nil); s != "performance gate clean" {
		t.Errorf("clean format = %q", s)
	}
}

func TestEnvironmentMatches(t *testing.T) {
	a := CaptureEnvironment("x")
	b := a
	if !a.Matches(b) {
		t.Error("identical environments do not match")
	}
	b.GOMAXPROCS++
	if a.Matches(b) {
		t.Error("different GOMAXPROCS matches")
	}
}

// withAttack attaches an attack annex with the given attack-sat
// samples to the record's benchmark.
func withAttack(r *Record, satNS ...int64) *Record {
	r.Benchmarks[0].Attack = &AttackBench{
		KeyBits: 8,
		Stages: []Stage{
			NewStage("attack-sat", satNS),
			NewStage("attack-flush", samplesTimes(satNS, 2)),
		},
		SATIterations: 5,
		SATConflicts:  40,
		FlushRank:     4,
	}
	return r
}

func TestAttackAnnexRoundTripAndOptional(t *testing.T) {
	// Without the annex (a record predating the obfuscation study) the
	// record stays valid and the field stays absent from the encoding.
	plain := sample(10_000_000, 11_000_000, 10_500_000)
	var buf bytes.Buffer
	if err := Write(&buf, plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"attack"`) {
		t.Fatal("attack key serialized for a record without the annex")
	}
	// With the annex it round-trips.
	r := withAttack(sample(10_000_000, 11_000_000, 10_500_000), 5_000_000, 5_100_000, 5_050_000)
	buf.Reset()
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := got.Benchmarks[0].Attack
	if a == nil || a.KeyBits != 8 || len(a.Stages) != 2 || a.SATIterations != 5 {
		t.Fatalf("attack annex did not round-trip: %+v", a)
	}
}

func TestAttackAnnexValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"zero key bits", func(r *Record) { r.Benchmarks[0].Attack.KeyBits = 0 }},
		{"no stages", func(r *Record) { r.Benchmarks[0].Attack.Stages = nil }},
		{"negative counter", func(r *Record) { r.Benchmarks[0].Attack.SATConflicts = -1 }},
		{"duplicate stage", func(r *Record) {
			a := r.Benchmarks[0].Attack
			a.Stages = append(a.Stages, a.Stages[0])
		}},
		{"inconsistent median", func(r *Record) { r.Benchmarks[0].Attack.Stages[0].MedianNS++ }},
	}
	for _, c := range cases {
		r := withAttack(sample(10_000_000), 5_000_000)
		c.mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestCompareGatesAttackStages(t *testing.T) {
	old := withAttack(sample(10_000_000, 10_000_000, 10_000_000), 5_000_000, 5_000_000, 5_000_000)
	new := withAttack(sample(10_000_000, 10_000_000, 10_000_000), 9_000_000, 9_000_000, 9_000_000)
	regs := Compare(old, new, Limits{})
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (attack-sat and attack-flush):\n%s",
			len(regs), FormatRegressions(regs))
	}
	for _, r := range regs {
		if !strings.HasPrefix(r.Path, "TreeFlat/attack/") {
			t.Errorf("unexpected regression path %q", r.Path)
		}
	}
	// An annex present on only one side is skipped, not flagged.
	noAnnex := sample(10_000_000, 10_000_000, 10_000_000)
	if regs := Compare(noAnnex, new, Limits{}); len(regs) != 0 {
		t.Fatalf("one-sided annex flagged: %s", FormatRegressions(regs))
	}
}
