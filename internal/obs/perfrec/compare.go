package perfrec

import (
	"fmt"
	"sort"
	"strings"
)

// Limits parameterizes the noise-aware regression gate. A new median
// only counts as a regression when it exceeds the old one by more than
// every allowance: the relative threshold, k·MAD of either record, and
// the absolute floor. The zero value resolves to the defaults.
type Limits struct {
	// MinPct is the relative slowdown threshold (0.10 = +10%); <= 0
	// uses 0.10.
	MinPct float64
	// MADK scales the per-stage MAD noise estimate; a delta inside
	// k·max(oldMAD, newMAD) is jitter, not signal. <= 0 uses 4 (≈ 2.7σ
	// for normal noise, MAD·1.4826 ≈ σ).
	MADK float64
	// MinNS is the absolute wall-time floor: deltas on stages faster
	// than this are ignored entirely (microsecond stages jitter by
	// whole multiples). <= 0 uses 500µs.
	MinNS int64
	// MemPct is the relative threshold for HeapAllocPeakBytes; 0 uses
	// 0.50, NoMemGate disables the heap-peak comparison.
	MemPct float64
	// MinBytes is the absolute heap-peak floor; <= 0 uses 16 MiB.
	MinBytes int64
}

// NoMemGate disables the heap-peak comparison when assigned to MemPct.
const NoMemGate = -1

// DefaultLimits are the resolved default gate parameters.
func DefaultLimits() Limits {
	return Limits{MinPct: 0.10, MADK: 4, MinNS: 500_000, MemPct: 0.50, MinBytes: 16 << 20}
}

func (l Limits) resolved() Limits {
	d := DefaultLimits()
	if l.MinPct <= 0 {
		l.MinPct = d.MinPct
	}
	if l.MADK <= 0 {
		l.MADK = d.MADK
	}
	if l.MinNS <= 0 {
		l.MinNS = d.MinNS
	}
	if l.MemPct == 0 {
		l.MemPct = d.MemPct
	}
	if l.MinBytes <= 0 {
		l.MinBytes = d.MinBytes
	}
	return l
}

// Regression is one gated delta that exceeded its noise allowance.
type Regression struct {
	// Path locates the regressed quantity, e.g.
	// "TreeFlat/closure/median_ns" or "TreeFlat/heap_alloc_peak_bytes".
	Path string `json:"path"`
	Old  int64  `json:"old"`
	New  int64  `json:"new"`
	// AllowedDelta is the noise allowance the delta exceeded:
	// max(threshold·old, k·MAD, floor).
	AllowedDelta int64 `json:"allowed_delta"`
}

// Delta returns the absolute increase.
func (r Regression) Delta() int64 { return r.New - r.Old }

// Pct returns the relative increase (0 old → +Inf is avoided: 0 old
// never regresses, see Compare).
func (r Regression) Pct() float64 {
	if r.Old == 0 {
		return 0
	}
	return float64(r.New-r.Old) / float64(r.Old)
}

// String renders one regression line with sign and percent.
func (r Regression) String() string {
	return fmt.Sprintf("%s  %d -> %d  (+%d, %+.1f%%, allowed +%d)",
		r.Path, r.Old, r.New, r.Delta(), 100*r.Pct(), r.AllowedDelta)
}

// FormatRegressions renders the gate outcome as one line per
// regression ("performance gate clean" when empty).
func FormatRegressions(regs []Regression) string {
	if len(regs) == 0 {
		return "performance gate clean"
	}
	lines := make([]string, len(regs))
	for i, r := range regs {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

// allowance resolves the noise allowance for one stage pair:
// max(threshold·old, k·max(oldMAD, newMAD)).
func (l Limits) allowance(old, oldMAD, newMAD int64) int64 {
	allowed := int64(l.MinPct * float64(old))
	mad := oldMAD
	if newMAD > mad {
		mad = newMAD
	}
	if k := int64(l.MADK * float64(mad)); k > allowed {
		allowed = k
	}
	return allowed
}

// compareStages gates one stage list pair (pipeline stages, or the
// attack annex's) under the resolved limits.
func (l Limits) compareStages(prefix string, old, new []Stage) []Regression {
	oldS := make(map[string]*Stage, len(old))
	for j := range old {
		oldS[old[j].Name] = &old[j]
	}
	var regs []Regression
	for j := range new {
		ns := &new[j]
		os, ok := oldS[ns.Name]
		if !ok || os.MedianNS < l.MinNS {
			// Sub-floor stages jitter by whole multiples of their
			// own runtime; they cannot carry a meaningful signal.
			continue
		}
		delta := ns.MedianNS - os.MedianNS
		if allowed := l.allowance(os.MedianNS, os.MADNS, ns.MADNS); delta > allowed {
			regs = append(regs, Regression{
				Path: prefix + "/" + ns.Name + "/median_ns",
				Old:  os.MedianNS, New: ns.MedianNS, AllowedDelta: allowed,
			})
		}
	}
	return regs
}

// Compare gates new against old and returns every regression: a
// per-stage median that grew beyond max(MinPct·old, MADK·MAD, MinNS),
// or a heap peak that grew beyond max(MemPct·old, MinBytes). Only
// benchmarks and stages present in both records are compared, so a
// committed baseline may cover a superset of the smoke subset CI runs.
// Improvements never flag. Results are ordered by relative increase,
// largest first.
func Compare(old, new *Record, lim Limits) []Regression {
	lim = lim.resolved()
	oldB := make(map[string]*Benchmark, len(old.Benchmarks))
	for i := range old.Benchmarks {
		oldB[old.Benchmarks[i].Name] = &old.Benchmarks[i]
	}
	var regs []Regression
	for i := range new.Benchmarks {
		nb := &new.Benchmarks[i]
		ob, ok := oldB[nb.Name]
		if !ok {
			continue
		}
		regs = append(regs, lim.compareStages(nb.Name, ob.Stages, nb.Stages)...)
		if ob.Attack != nil && nb.Attack != nil {
			regs = append(regs, lim.compareStages(nb.Name+"/attack", ob.Attack.Stages, nb.Attack.Stages)...)
		}
		if lim.MemPct != NoMemGate && ob.HeapAllocPeakBytes > 0 {
			delta := nb.HeapAllocPeakBytes - ob.HeapAllocPeakBytes
			allowed := int64(lim.MemPct * float64(ob.HeapAllocPeakBytes))
			if lim.MinBytes > allowed {
				allowed = lim.MinBytes
			}
			if delta > allowed {
				regs = append(regs, Regression{
					Path: nb.Name + "/heap_alloc_peak_bytes",
					Old:  ob.HeapAllocPeakBytes, New: nb.HeapAllocPeakBytes, AllowedDelta: allowed,
				})
			}
		}
	}
	sort.SliceStable(regs, func(i, j int) bool {
		pi, pj := regs[i].Pct(), regs[j].Pct()
		if pi != pj {
			return pi > pj
		}
		return regs[i].Path < regs[j].Path
	})
	return regs
}
