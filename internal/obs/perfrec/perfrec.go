// Package perfrec defines the schema-versioned benchmark performance
// record (rsnsec.bench-record/v1) behind the repo's BENCH_*.json
// trajectory: per-benchmark × per-stage wall-time medians over N
// repetitions with MAD noise estimates, SAT decision/conflict totals,
// closure/propagation items-saved counters, runtime.MemStats peaks and
// an environment fingerprint. A validating reader and a noise-aware
// comparator (Compare) let CI gate every PR on recorded performance
// evidence: a delta only counts as a regression when it exceeds
// max(threshold·old, k·MAD, floor), so run-to-run jitter does not
// produce false alarms while real slowdowns cannot hide inside it.
//
// The record is produced by exp.CollectBenchRecord (per-stage timings
// summed from real trace spans, not ad-hoc timers) and written by
// `rsnbench -bench-out`; `rsnbench -baseline` and
// `rsnbench -compare-bench` apply the gate.
package perfrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// BenchSchema is the bench-record schema identifier. Bump the suffix on
// any incompatible field change; readers reject unknown versions so the
// regression gate never silently mis-parses an old baseline.
const BenchSchema = "rsnsec.bench-record/v1"

// Record is one machine-readable benchmark run: the noise-aware
// performance snapshot a PR commits as BENCH_<n>.json.
type Record struct {
	Schema string `json:"schema"`
	// Tool identifies the producer (e.g. "rsnbench").
	Tool string `json:"tool"`
	// CreatedAt is an optional RFC3339 wall-clock stamp; excluded from
	// Validate so records stay byte-comparable in tests.
	CreatedAt string `json:"created_at,omitempty"`
	// Reps is the number of repetitions each timing was sampled over.
	Reps int `json:"reps"`
	// Config echoes the protocol parameters the run used.
	Config Config `json:"config"`
	// Env fingerprints the machine the record was taken on; timing
	// comparisons across different fingerprints are advisory only.
	Env Environment `json:"env"`
	// Benchmarks holds one entry per measured benchmark.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Config echoes the experimental protocol parameters of the run.
type Config struct {
	Mode          string  `json:"mode"`
	Seed          int64   `json:"seed"`
	Circuits      int     `json:"circuits"`
	Specs         int     `json:"specs"`
	TargetScanFFs int     `json:"target_scan_ffs"`
	Scale         float64 `json:"scale"`
	Workers       int     `json:"workers"`
}

// Environment fingerprints the machine and build a record was taken
// on. Absolute wall times are only comparable between records whose
// fingerprints match; the comparator does not enforce this (CI runners
// differ), but renderers surface mismatches.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the first "model name" of /proc/cpuinfo (best effort;
	// empty where unavailable).
	CPUModel string `json:"cpu_model,omitempty"`
	// Commit is the VCS revision the record was taken at (stamped by
	// the CLI, e.g. from GITHUB_SHA).
	Commit string `json:"commit,omitempty"`
}

// CaptureEnvironment fingerprints the current process and machine.
func CaptureEnvironment(commit string) Environment {
	return Environment{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Commit:     commit,
	}
}

// cpuModel reads the first CPU model name from /proc/cpuinfo (Linux);
// other platforms report "".
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}

// Matches reports whether two environments are timing-comparable: same
// platform, CPU model and parallelism.
func (e Environment) Matches(o Environment) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH &&
		e.CPUModel == o.CPUModel && e.GOMAXPROCS == o.GOMAXPROCS
}

// Benchmark is one benchmark's measured record.
type Benchmark struct {
	Name string `json:"name"`
	// ScanFFs is the analyzed (scaled) structure size.
	ScanFFs int `json:"scan_ffs"`
	// Runs is the number of measured (circuit, spec) pairs per rep.
	Runs int `json:"runs"`
	// Stages holds the per-stage timing samples, in pipeline order.
	Stages []Stage `json:"stages"`
	// SAT totals per rep (medians over reps): solver effort counters of
	// the dependency computation.
	SATQueries   int64 `json:"sat_queries"`
	SATDecisions int64 `json:"sat_decisions"`
	SATConflicts int64 `json:"sat_conflicts"`
	// HeapAllocPeakBytes is the peak live heap observed during the
	// benchmark's reps (sampled runtime.MemStats, best effort).
	HeapAllocPeakBytes int64 `json:"heap_alloc_peak_bytes"`
	// TotalAllocBytes is the median per-rep allocation volume.
	TotalAllocBytes int64 `json:"total_alloc_bytes"`
	// Attack optionally records the attack-analysis annex of the run
	// (collected with rsnbench -attack-keybits). Absent in records
	// predating the obfuscation study; this reader accepts both forms,
	// so the v1 schema stays backward-compatible.
	Attack *AttackBench `json:"attack,omitempty"`
}

// AttackBench is one benchmark's attack-analysis measurements: the
// overlay shape it ran under, the per-stage wall-time distributions
// ("attack-sat", "attack-flush") and the attacks' effort counters
// (medians across reps).
type AttackBench struct {
	KeyBits int  `json:"key_bits"`
	Dynamic bool `json:"dynamic,omitempty"`
	// Stages holds the attack stages' timing samples, shaped exactly
	// like the benchmark's pipeline stages so the comparator gates them
	// with the same noise allowance.
	Stages []Stage `json:"stages"`
	// SATIterations and SATConflicts are the key recovery's refinement
	// and solver effort; FlushRank is the flush attack's achieved GF(2)
	// rank.
	SATIterations int64 `json:"sat_iterations"`
	SATConflicts  int64 `json:"sat_conflicts"`
	FlushRank     int64 `json:"flush_rank"`
}

// Stage is one pipeline stage's wall-time distribution over the reps,
// with the engine's items/saved counters (median across reps).
type Stage struct {
	Name string `json:"name"`
	// Reps is the number of samples behind the median (a stage absent
	// in some rep records fewer samples than the record's Reps).
	Reps int `json:"reps"`
	// MedianNS and MADNS summarize the per-rep cumulative wall time:
	// the median and the median absolute deviation (the noise scale the
	// comparator multiplies by k).
	MedianNS int64 `json:"median_ns"`
	MADNS    int64 `json:"mad_ns"`
	// SamplesNS optionally retains the raw per-rep samples; when
	// present, Validate recomputes the median/MAD from them.
	SamplesNS []int64 `json:"samples_ns,omitempty"`
	// Engine counters (median across reps).
	Calls   int64 `json:"calls"`
	Queries int64 `json:"queries"`
	Items   int64 `json:"items"`
	Saved   int64 `json:"saved"`
	// SimResolved and SATResolved split the stage's dependence
	// classifications by how they were resolved: witnessed by the
	// bit-parallel simulation prefilter vs. decided by a SAT cofactor
	// query. Optional (omitted when zero) so records predating the
	// prefilter stay valid and byte-stable under this reader.
	SimResolved int64 `json:"sim_resolved,omitempty"`
	SATResolved int64 `json:"sat_resolved,omitempty"`
}

// Median returns the median of xs (mean of the two middles for even
// lengths, integer division); 0 for an empty slice. xs is not mutated.
func Median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs around its median —
// the robust noise scale of the regression gate. 0 for fewer than two
// samples.
func MAD(xs []int64) int64 {
	if len(xs) < 2 {
		return 0
	}
	med := Median(xs)
	dev := make([]int64, len(xs))
	for i, x := range xs {
		d := x - med
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return Median(dev)
}

// NewStage summarizes per-rep samples into a Stage row (median, MAD,
// retained samples).
func NewStage(name string, samples []int64) Stage {
	return Stage{
		Name:      name,
		Reps:      len(samples),
		MedianNS:  Median(samples),
		MADNS:     MAD(samples),
		SamplesNS: append([]int64(nil), samples...),
	}
}

// Validate checks the record's structural invariants: schema version,
// positive rep counts, unique non-empty benchmark and stage names,
// non-negative counters, and medians/MADs consistent with retained
// samples.
func (r *Record) Validate() error {
	if r == nil {
		return fmt.Errorf("bench-record: nil")
	}
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench-record: schema %q, this reader wants %q", r.Schema, BenchSchema)
	}
	if r.Tool == "" {
		return fmt.Errorf("bench-record: missing tool")
	}
	if r.Reps < 1 {
		return fmt.Errorf("bench-record: reps %d < 1", r.Reps)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("bench-record: no benchmarks")
	}
	seen := make(map[string]bool)
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		if b.Name == "" {
			return fmt.Errorf("bench-record: benchmark %d: empty name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("bench-record: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		for _, c := range []struct {
			what string
			v    int64
		}{
			{"scan_ffs", int64(b.ScanFFs)}, {"runs", int64(b.Runs)},
			{"sat_queries", b.SATQueries}, {"sat_decisions", b.SATDecisions},
			{"sat_conflicts", b.SATConflicts},
			{"heap_alloc_peak_bytes", b.HeapAllocPeakBytes},
			{"total_alloc_bytes", b.TotalAllocBytes},
		} {
			if c.v < 0 {
				return fmt.Errorf("bench-record: benchmark %q: negative %s", b.Name, c.what)
			}
		}
		if err := validateStages(b.Name, b.Stages); err != nil {
			return err
		}
		if a := b.Attack; a != nil {
			if a.KeyBits < 1 {
				return fmt.Errorf("bench-record: benchmark %q: attack key_bits %d < 1", b.Name, a.KeyBits)
			}
			if a.SATIterations < 0 || a.SATConflicts < 0 || a.FlushRank < 0 {
				return fmt.Errorf("bench-record: benchmark %q: negative attack counter", b.Name)
			}
			if len(a.Stages) == 0 {
				return fmt.Errorf("bench-record: benchmark %q: attack annex without stages", b.Name)
			}
			if err := validateStages(b.Name+"/attack", a.Stages); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateStages checks one stage list (a benchmark's pipeline stages
// or its attack annex) for unique names, positive reps, non-negative
// counters and sample-consistent medians.
func validateStages(owner string, stages []Stage) error {
	seenStage := make(map[string]bool)
	for j := range stages {
		s := &stages[j]
		if s.Name == "" {
			return fmt.Errorf("bench-record: benchmark %q: stage %d: empty name", owner, j)
		}
		if seenStage[s.Name] {
			return fmt.Errorf("bench-record: benchmark %q: duplicate stage %q", owner, s.Name)
		}
		seenStage[s.Name] = true
		if s.Reps < 1 {
			return fmt.Errorf("bench-record: benchmark %q: stage %q: reps %d < 1", owner, s.Name, s.Reps)
		}
		if s.MedianNS < 0 || s.MADNS < 0 || s.Calls < 0 || s.Queries < 0 || s.Items < 0 || s.Saved < 0 ||
			s.SimResolved < 0 || s.SATResolved < 0 {
			return fmt.Errorf("bench-record: benchmark %q: stage %q: negative counter", owner, s.Name)
		}
		if len(s.SamplesNS) > 0 {
			if len(s.SamplesNS) != s.Reps {
				return fmt.Errorf("bench-record: benchmark %q: stage %q: %d samples for %d reps",
					owner, s.Name, len(s.SamplesNS), s.Reps)
			}
			if m := Median(s.SamplesNS); m != s.MedianNS {
				return fmt.Errorf("bench-record: benchmark %q: stage %q: median_ns %d inconsistent with samples (want %d)",
					owner, s.Name, s.MedianNS, m)
			}
			if m := MAD(s.SamplesNS); m != s.MADNS {
				return fmt.Errorf("bench-record: benchmark %q: stage %q: mad_ns %d inconsistent with samples (want %d)",
					owner, s.Name, s.MADNS, m)
			}
		}
	}
	return nil
}

// Write serializes the record as indented JSON.
func Write(w io.Writer, r *Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a bench record.
func Read(rd io.Reader) (*Record, error) {
	var r Record
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench-record: parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile reads and validates the record at path.
func ReadFile(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
