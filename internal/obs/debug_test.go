// The debug-server test lives in an external test package so it can
// drive a real pipeline run (exp imports obs; importing it from
// package obs would cycle).
package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestDebugServerScrapeMidRun pins the -debug-addr contract: while a
// real benchmark run is in flight, /metrics serves the engine's stage
// counters as Prometheus text, /debug/vars serves them as expvar JSON,
// and the pprof handlers answer. The run is provably mid-flight: the
// first per-circuit progress callback blocks until the scrapes finish,
// with further circuits still queued behind it.
func TestDebugServerScrapeMidRun(t *testing.T) {
	reg := obs.NewRegistry()
	dbg, err := obs.StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	b, ok := bench.ByName("BasicSCB")
	if !ok {
		t.Fatal("BasicSCB missing")
	}
	cfg := exp.QuickRunConfig()
	cfg.Stats = engine.NewStatsOn(reg)
	inRun := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg.Progress = func(string, ...any) {
		once.Do(func() {
			close(inRun)
			<-release
		})
	}
	done := make(chan error, 1)
	go func() {
		_, err := exp.RunBenchmark(b, cfg)
		done <- err
	}()
	<-inRun // first circuit finished, the rest are held back

	base := "http://" + dbg.Addr()

	code, metrics, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(metrics, "# TYPE engine_stage_wall_ns_total counter") {
		t.Fatalf("/metrics lacks the stage wall family:\n%s", metrics)
	}
	if !strings.Contains(metrics, `engine_stage_queries_total{stage="one-cycle"}`) {
		t.Fatalf("/metrics lacks the one-cycle series:\n%s", metrics)
	}

	code, vars, _ := get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", code)
	}
	var ev struct {
		Metrics map[string]any `json:"rsnsec_metrics"`
	}
	if err := json.Unmarshal([]byte(vars), &ev); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if v, ok := ev.Metrics[`engine_stage_calls_total{stage="one-cycle"}`]; !ok || v.(float64) < 1 {
		t.Fatalf("expvar lacks live stage calls: %v", ev.Metrics)
	}

	if code, body, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: status %d", code)
	}
	if code, body, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index: status %d", code)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// After the run the counters only grew.
	_, after, _ := get(t, base+"/metrics")
	if !strings.Contains(after, `engine_stage_calls_total{stage="resolve"}`) {
		t.Fatalf("post-run metrics lack the resolve stage:\n%s", after)
	}
}

func TestDebugServerCloseStopsServing(t *testing.T) {
	dbg, err := obs.StartDebug("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := dbg.Addr()
	if err := dbg.Close(); err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Timeout: 2 * time.Second}
	if _, err := cl.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
