package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value
// is ready to use; all methods tolerate nil receivers (a nil Counter
// discards updates and reads as zero), so hot paths never branch on
// whether metrics collection is enabled.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (e.g. worker count, queue depth).
// All methods tolerate nil receivers.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for SAT-query and
// stage latencies, in seconds: 10µs .. ~10s, quarter-decade spaced.
var DefLatencyBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// Histogram is a fixed-bucket cumulative histogram with atomic
// updates, Prometheus-compatible (le-labelled cumulative buckets plus
// _sum and _count series). All methods tolerate nil receivers.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns an upper bound for the q-quantile from the bucket
// counts — the bound of the first bucket whose cumulative count
// reaches q, or +Inf when the sample lands in the overflow bucket.
// q must lie in (0, 1]; anything else returns NaN. An empty histogram
// returns 0 (nothing observed bounds at zero), matching the nil
// receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Bounds returns a copy of the histogram's sorted bucket upper bounds
// (the implicit +Inf overflow bucket is not listed). A nil receiver
// returns nil.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts copies the per-bucket (non-cumulative) observation
// counts into dst — len(Bounds())+1 entries, the last being the +Inf
// overflow bucket — reusing dst's backing array when it is large
// enough. The counts are read bucket-by-bucket without a lock, so a
// snapshot taken under concurrent Observe calls may be internally
// skewed by in-flight observations; each bucket value is itself
// monotone, which is what windowed-delta consumers (the series
// sampler) need. A nil receiver returns dst unchanged (nil for a nil
// dst).
func (h *Histogram) BucketCounts(dst []int64) []int64 {
	if h == nil {
		return dst[:0]
	}
	n := len(h.buckets)
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	for i := range h.buckets {
		dst[i] = h.buckets[i].Load()
	}
	return dst
}

// FloatGauge is a settable float64 metric for values that lose too
// much to int64 truncation (cumulative CPU seconds, ratios). Like the
// other metric kinds, all methods tolerate nil receivers.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics and renders them for exposition. Metric
// names follow the Prometheus convention and may carry a literal label
// set, e.g. `engine_stage_wall_ns_total{stage="closure"}`; series of
// one family (the name up to the label braces) are grouped in the
// exposition regardless of registration order. A nil *Registry hands
// out nil metrics, so callers thread an optional registry without
// branching.
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]any
	help   map[string]string

	// collectors run before each exposition so on-demand values
	// (runtime health, load gauges) are fresh at scrape time.
	collMu     sync.Mutex
	collectors []func()
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any), help: make(map[string]string)}
}

// lookup returns the named metric, creating it with mk on first use.
func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := mk()
	r.byName[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use. It
// panics when the name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q registered as %T, not a counter", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q registered as %T, not a gauge", name, m))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds are ignored; an empty list
// uses DefLatencyBuckets).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	m := r.lookup(name, func() any { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q registered as %T, not a histogram", name, m))
	}
	return h
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(FloatGauge) })
	g, ok := m.(*FloatGauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q registered as %T, not a float gauge", name, m))
	}
	return g
}

// AddCollector registers fn to run immediately before each exposition
// (WritePrometheus, Snapshot), refreshing pull-style gauges — values
// that are cheap to compute on demand but wasteful to keep current
// (goroutine counts, queue wait ages, predicted backlog). fn runs
// outside the registry lock and may therefore set metrics freely; it
// must not itself trigger an exposition.
func (r *Registry) AddCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.collMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collMu.Unlock()
}

// collect runs the registered collectors (outside the metrics lock).
func (r *Registry) collect() {
	r.collMu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.collMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Collect runs the registered collectors without rendering anything —
// the refresh half of an exposition. Non-rendering consumers that read
// metric values directly (the series sampler) call it so pull-style
// gauges are as fresh in their samples as they are in a scrape.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	r.collect()
}

// SetHelp attaches a HELP line to a metric family.
func (r *Registry) SetHelp(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = help
	r.mu.Unlock()
}

// family splits a series name into its family and the literal label
// block (including braces, empty when unlabelled).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// snapshot returns the registered names in registration order plus the
// metric map, under the lock.
func (r *Registry) snapshot() ([]string, map[string]any, map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	metrics := make(map[string]any, len(r.byName))
	for k, v := range r.byName {
		metrics[k] = v
	}
	helps := make(map[string]string, len(r.help))
	for k, v := range r.help {
		helps[k] = v
	}
	return names, metrics, helps
}

// Each calls fn for every registered metric in registration order. The
// value is *Counter, *Gauge, *FloatGauge or *Histogram.
func (r *Registry) Each(fn func(name string, metric any)) {
	if r == nil {
		return
	}
	names, metrics, _ := r.snapshot()
	for _, n := range names {
		fn(n, metrics[n])
	}
}

// Snapshot returns a plain map of current values: int64 for counters
// and gauges; histograms expand into name_count and name_sum entries.
// It backs the expvar exposition.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	r.collect()
	out := make(map[string]any)
	r.Each(func(name string, m any) {
		switch x := m.(type) {
		case *Counter:
			out[name] = x.Value()
		case *Gauge:
			out[name] = x.Value()
		case *FloatGauge:
			out[name] = x.Value()
		case *Histogram:
			fam, labels := family(name)
			out[fam+"_count"+labels] = x.Count()
			out[fam+"_sum"+labels] = x.Sum()
		}
	})
	return out
}

// mergeLabels splices an extra label into a literal label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Series of one family are grouped
// under a single TYPE line; families appear in first-registration
// order, series in registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.collect()
	names, metrics, helps := r.snapshot()
	var famOrder []string
	byFam := make(map[string][]string)
	for _, n := range names {
		f, _ := family(n)
		if _, ok := byFam[f]; !ok {
			famOrder = append(famOrder, f)
		}
		byFam[f] = append(byFam[f], n)
	}
	var sb strings.Builder
	for _, f := range famOrder {
		series := byFam[f]
		if h := helps[f]; h != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f, h)
		}
		switch metrics[series[0]].(type) {
		case *Counter:
			fmt.Fprintf(&sb, "# TYPE %s counter\n", f)
		case *Gauge, *FloatGauge:
			fmt.Fprintf(&sb, "# TYPE %s gauge\n", f)
		case *Histogram:
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", f)
		}
		for _, n := range series {
			_, labels := family(n)
			switch x := metrics[n].(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", f, labels, x.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %d\n", f, labels, x.Value())
			case *FloatGauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f, labels, formatFloat(x.Value()))
			case *Histogram:
				var cum int64
				for i, b := range x.bounds {
					cum += x.buckets[i].Load()
					le := fmt.Sprintf("le=%q", formatFloat(b))
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f, mergeLabels(labels, le), cum)
				}
				cum += x.buckets[len(x.bounds)].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f, mergeLabels(labels, `le="+Inf"`), cum)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f, labels, formatFloat(x.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f, labels, x.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
