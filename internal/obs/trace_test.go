package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic now() advancing 100µs per call.
func fakeClock(epoch time.Time) func() time.Time {
	n := 0
	return func() time.Time {
		n++
		return epoch.Add(time.Duration(n) * 100 * time.Microsecond)
	}
}

func TestSpanNesting(t *testing.T) {
	sink := &CollectorSink{}
	tr := NewTracer(sink)
	run := tr.Start(nil, "run")
	circuit := tr.Start(run, "circuit", Str("benchmark", "BasicSCB"))
	stage := tr.Start(circuit, "one-cycle")
	q := tr.Start(stage, "query", Int("root_ff", 3))
	q.End()
	stage.End()
	circuit.End()
	run.End()

	evs := sink.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	parentOf := make(map[string]uint64)
	idOf := make(map[string]uint64)
	for _, ev := range evs {
		parentOf[ev.Name] = ev.Parent
		idOf[ev.Name] = ev.Span
	}
	if parentOf["run"] != 0 {
		t.Fatal("root span has a parent")
	}
	if parentOf["circuit"] != idOf["run"] || parentOf["one-cycle"] != idOf["circuit"] ||
		parentOf["query"] != idOf["one-cycle"] {
		t.Fatalf("broken parent chain: ids=%v parents=%v", idOf, parentOf)
	}
	if evs[0].Name != "query" {
		t.Fatal("spans must emit at End (innermost first)")
	}
	if evs[0].Attrs["root_ff"] != int64(3) {
		t.Fatalf("attrs lost: %v", evs[0].Attrs)
	}
}

func TestSamplingKeepsHierarchy(t *testing.T) {
	sink := &CollectorSink{}
	tr := NewTracer(sink)
	tr.SampleEvery("query", 4)
	root := tr.Start(nil, "run")
	for i := 0; i < 10; i++ {
		q := tr.Start(root, "query")
		// Children of unrecorded spans still parent correctly.
		c := tr.Start(q, "sub")
		if c.ID() == 0 || q.ID() == 0 {
			t.Fatal("sampled-out span lost its ID")
		}
		c.End()
		q.End()
	}
	root.End()
	var queries int
	for _, ev := range sink.Events() {
		if ev.Name == "query" {
			queries++
		}
	}
	if queries != 3 { // observations 1, 5, 9 of 10
		t.Fatalf("recorded %d query spans, want 3", queries)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	if tr.Emitted() != int64(len(sink.Events())) {
		t.Fatalf("emitted = %d, events = %d", tr.Emitted(), len(sink.Events()))
	}
}

func TestNilTracerAndSpans(t *testing.T) {
	var tr *Tracer
	tr.SampleEvery("query", 8)
	s := tr.Start(nil, "anything", Str("k", "v"))
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.SetAttrs(Int("n", 1))
	s.End()
	s.End()
	if s.ID() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil accessors nonzero")
	}
}

func TestEndIdempotent(t *testing.T) {
	sink := &CollectorSink{}
	tr := NewTracer(sink)
	s := tr.Start(nil, "x")
	s.End()
	s.End()
	if len(sink.Events()) != 1 {
		t.Fatalf("double End emitted %d events", len(sink.Events()))
	}
}

func TestConcurrentSpans(t *testing.T) {
	sink := &CollectorSink{}
	tr := NewTracer(sink)
	tr.SampleEvery("query", 3)
	root := tr.Start(nil, "run")
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tr.Start(root, "query", Int("i", int64(i)))
				s.SetAttrs(Bool("done", true))
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Emitted() + tr.Dropped(); got != workers*per+1 {
		t.Fatalf("emitted+dropped = %d, want %d", got, workers*per+1)
	}
	seen := make(map[uint64]bool)
	for _, ev := range sink.Events() {
		if seen[ev.Span] {
			t.Fatalf("duplicate span id %d", ev.Span)
		}
		seen[ev.Span] = true
	}
}

// TestJSONLGolden pins the journal wire format: one JSON object per
// line with stable keys, driven through the tracer's clock seam so the
// bytes are deterministic.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.epoch = time.Unix(0, 0)
	tr.now = fakeClock(tr.epoch)

	run := tr.Start(nil, "run", Str("tool", "rsnbench"))
	circuit := tr.Start(run, "circuit", Str("benchmark", "BasicSCB"), Int("scan_ffs", 60))
	stage := tr.Start(circuit, "one-cycle", Int("roots", 2))
	q := tr.Start(stage, "query", Int("root_ff", 0))
	q.SetAttrs(Int("decisions", 47), Bool("functional", true))
	q.End()
	stage.SetAttrs(Int("sat_queries", 320))
	stage.End()
	circuit.End()
	run.SetAttrs(Float("elapsed_s", 0.25))
	run.End()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("journal drifted from golden file (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
