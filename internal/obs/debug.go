package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarRegs are the registries folded into the process-wide
// "rsnsec_metrics" expvar. expvar.Publish panics on duplicate names,
// so the variable is published once and snapshots whatever registries
// have been attached since.
var (
	expvarMu   sync.Mutex
	expvarRegs []*Registry
	expvarOnce sync.Once
)

// publishExpvar attaches reg to the process-wide expvar exposition.
func publishExpvar(reg *Registry) {
	if reg == nil {
		return
	}
	expvarMu.Lock()
	for _, r := range expvarRegs {
		if r == reg {
			expvarMu.Unlock()
			return
		}
	}
	expvarRegs = append(expvarRegs, reg)
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("rsnsec_metrics", expvar.Func(func() any {
			expvarMu.Lock()
			regs := append([]*Registry(nil), expvarRegs...)
			expvarMu.Unlock()
			merged := make(map[string]any)
			for _, r := range regs {
				for k, v := range r.Snapshot() {
					merged[k] = v
				}
			}
			return merged
		}))
	})
}

// DebugServer is the -debug-addr HTTP listener: live expvar under
// /debug/vars, Prometheus text metrics under /metrics, and the full
// net/http/pprof suite under /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug listens on addr (e.g. "localhost:6060", ":0" for an
// ephemeral port) and serves the debug endpoints in a background
// goroutine. reg (may be nil) is exposed on /metrics and folded into
// the expvar under "rsnsec_metrics".
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "rsnsec debug endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address (host:port).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the listener.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
