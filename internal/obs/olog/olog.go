// Package olog is the structured-logging layer of the pipeline, built
// on the standard library's log/slog: a JSON (or text) handler with
// per-component level control, automatic stamping of every record with
// the active request identity (request ID, W3C trace/span IDs) carried
// in context.Context by internal/obs, and rate-limited sampling
// primitives for hot paths.
//
// The design splits responsibilities the same way internal/obs does:
//
//   - Levels owns the level policy — one default plus per-component
//     overrides ("info,engine=debug,serve.http=warn"), adjustable at
//     runtime without rebuilding loggers.
//   - the handler owns record mechanics — it consults Levels with the
//     record's component (attached via Component), stamps request_id /
//     trace_id / span_id from the context, and delegates encoding to a
//     stdlib slog.JSONHandler or slog.TextHandler.
//   - Every and Limiter own hot-path discipline — callers gate
//     high-frequency records through them so the journal records a
//     sample (with a skipped count) instead of swamping the sink.
//
// Like the rest of internal/obs, disabled logging must cost nothing on
// hot paths: a record below its component's level is rejected in
// Enabled before any attribute is materialized, and slog's front-end
// already elides argument construction for rejected records.
package olog

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ComponentKey is the attribute key that routes a record to its
// component's level policy (see Component).
const ComponentKey = "component"

// LevelOff disables a component entirely; no record passes.
const LevelOff = slog.Level(127)

// ParseLevel parses one level name: debug, info, warn, error, off.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return 0, fmt.Errorf("olog: unknown level %q (want debug, info, warn, error or off)", s)
	}
}

// Levels is the runtime level policy: a default level plus
// per-component overrides. The zero value is unusable; construct with
// NewLevels or ParseSpec. Lookups are lock-free on the fast path (an
// atomically swapped map), so Enabled checks stay cheap even when hot
// paths probe them.
type Levels struct {
	def atomic.Int64 // slog.Level
	mu  sync.Mutex   // serializes writers of byComp
	m   atomic.Value // map[string]slog.Level, copy-on-write
}

// NewLevels returns a policy with the given default level and no
// per-component overrides.
func NewLevels(def slog.Level) *Levels {
	l := &Levels{}
	l.def.Store(int64(def))
	l.m.Store(map[string]slog.Level{})
	return l
}

// ParseSpec parses a level specification of the form
//
//	LEVEL[,component=LEVEL...]
//
// e.g. "info", "debug", "info,engine=debug,serve.http=warn". The bare
// leading LEVEL (optional) sets the default.
func ParseSpec(spec string) (*Levels, error) {
	l := NewLevels(slog.LevelInfo)
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if comp, lv, ok := strings.Cut(part, "="); ok {
			parsed, err := ParseLevel(lv)
			if err != nil {
				return nil, err
			}
			if strings.TrimSpace(comp) == "" {
				return nil, fmt.Errorf("olog: empty component in level spec %q", spec)
			}
			l.Set(strings.TrimSpace(comp), parsed)
			continue
		}
		if i != 0 {
			return nil, fmt.Errorf("olog: default level must lead the spec, got %q in %q", part, spec)
		}
		parsed, err := ParseLevel(part)
		if err != nil {
			return nil, err
		}
		l.SetDefault(parsed)
	}
	return l, nil
}

// SetDefault changes the default level.
func (l *Levels) SetDefault(lv slog.Level) { l.def.Store(int64(lv)) }

// Set overrides the level of one component.
func (l *Levels) Set(component string, lv slog.Level) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.m.Load().(map[string]slog.Level)
	next := make(map[string]slog.Level, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[component] = lv
	l.m.Store(next)
}

// Level resolves the effective level for a component ("" uses the
// default).
func (l *Levels) Level(component string) slog.Level {
	if l == nil {
		return slog.LevelInfo
	}
	if component != "" {
		if lv, ok := l.m.Load().(map[string]slog.Level)[component]; ok {
			return lv
		}
	}
	return slog.Level(l.def.Load())
}

// String renders the policy in ParseSpec's input form (components
// sorted for determinism).
func (l *Levels) String() string {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(slog.Level(l.def.Load()).String()))
	m := l.m.Load().(map[string]slog.Level)
	comps := make([]string, 0, len(m))
	for c := range m {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Fprintf(&sb, ",%s=%s", c, strings.ToLower(m[c].String()))
	}
	return sb.String()
}

// Options parameterizes New.
type Options struct {
	// Writer receives the encoded records; nil discards.
	Writer io.Writer
	// Format selects the encoding: "json" (default) or "text".
	Format string
	// Levels is the level policy; nil uses a fresh info-level policy.
	Levels *Levels
	// AddSource records the caller's file:line (off by default; the
	// interesting identity here is the request, not the call site).
	AddSource bool
	// ReplaceAttr is passed through to the underlying stdlib handler
	// (tests use it to drop the time attribute for stable golden
	// output).
	ReplaceAttr func(groups []string, a slog.Attr) slog.Attr
}

// New builds a logger whose handler stamps request identity from the
// context and consults the Levels policy per component. The returned
// logger is safe for concurrent use; derive component loggers with
// Component.
func New(opts Options) *slog.Logger {
	if opts.Writer == nil {
		return Discard()
	}
	levels := opts.Levels
	if levels == nil {
		levels = NewLevels(slog.LevelInfo)
	}
	hopts := &slog.HandlerOptions{
		// The inner handler must not re-filter: the component-aware
		// outer handler owns the level decision.
		Level:       slog.Level(-128),
		AddSource:   opts.AddSource,
		ReplaceAttr: opts.ReplaceAttr,
	}
	var inner slog.Handler
	if opts.Format == "text" {
		inner = slog.NewTextHandler(opts.Writer, hopts)
	} else {
		inner = slog.NewJSONHandler(opts.Writer, hopts)
	}
	return slog.New(&handler{inner: inner, levels: levels})
}

// Component derives a child logger bound to a named component: records
// carry component=name and are filtered by that component's level in
// the policy. On loggers not built by New the attribute is still
// attached (level routing just stays global).
func Component(lg *slog.Logger, name string) *slog.Logger {
	if lg == nil {
		return Discard()
	}
	return lg.With(ComponentKey, name)
}

// Discard returns a logger that drops everything with near-zero cost.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// handler is the component- and context-aware front of a stdlib
// encoding handler.
type handler struct {
	inner     slog.Handler
	levels    *Levels
	component string
}

// Enabled applies the component's level from the policy — the hot-path
// fast exit: a disabled record costs one atomic map load.
func (h *handler) Enabled(_ context.Context, lvl slog.Level) bool {
	return lvl >= h.levels.Level(h.component)
}

// Handle stamps the record with the request identity carried by ctx
// (request_id, trace_id, span_id) and delegates encoding.
func (h *handler) Handle(ctx context.Context, rec slog.Record) error {
	if ri, ok := obs.ReqInfoFrom(ctx); ok {
		if ri.RequestID != "" {
			rec.AddAttrs(slog.String("request_id", ri.RequestID))
		}
		if ri.Trace.TraceID != "" {
			rec.AddAttrs(slog.String("trace_id", ri.Trace.TraceID),
				slog.String("span_id", ri.Trace.SpanID))
		}
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs tracks the component attribute (so level routing follows
// Component) and forwards the attrs for encoding.
func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	for _, a := range attrs {
		if a.Key == ComponentKey {
			nh.component = a.Value.String()
		}
	}
	nh.inner = h.inner.WithAttrs(attrs)
	return &nh
}

func (h *handler) WithGroup(name string) slog.Handler {
	nh := *h
	nh.inner = h.inner.WithGroup(name)
	return &nh
}

// Every admits one record in N — deterministic modulo sampling for
// hot-path diagnostics where the exact rate does not matter but the
// volume must not scale with traffic. The zero value (N <= 1) admits
// everything. Safe for concurrent use.
type Every struct {
	N   int
	ctr atomic.Uint64
}

// Allow reports whether this occurrence should be logged (the first
// always is) and counts the rest as skipped.
func (e *Every) Allow() bool {
	if e == nil || e.N <= 1 {
		return true
	}
	return (e.ctr.Add(1)-1)%uint64(e.N) == 0
}

// Skipped returns how many occurrences were elided so far; samplers
// attach it to the admitted record so absolute rates stay computable.
func (e *Every) Skipped() uint64 {
	if e == nil || e.N <= 1 {
		return 0
	}
	n := e.ctr.Load()
	admitted := (n + uint64(e.N) - 1) / uint64(e.N)
	return n - admitted
}

// Limiter is a token-bucket rate limit for log records: at most Burst
// records instantaneously and PerSecond sustained. Use it on paths
// whose record rate follows traffic (per-request debug records, cache
// events) so a traffic spike cannot turn the log sink into the
// bottleneck. Safe for concurrent use.
type Limiter struct {
	perSec  float64
	burst   float64
	mu      sync.Mutex
	tokens  float64
	last    time.Time
	dropped atomic.Uint64
	now     func() time.Time // test seam
}

// NewLimiter returns a limiter admitting perSecond sustained records
// with the given burst (burst < 1 uses 1). A nil *Limiter admits
// everything.
func NewLimiter(perSecond float64, burst int) *Limiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Limiter{perSec: perSecond, burst: b, tokens: b, now: time.Now}
}

// Allow consumes one token if available; a depleted bucket counts the
// record as dropped.
func (l *Limiter) Allow() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.perSec
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		l.mu.Unlock()
		return true
	}
	l.mu.Unlock()
	l.dropped.Add(1)
	return false
}

// Dropped returns how many records the limiter rejected so far.
func (l *Limiter) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// BufferedWriter wraps a writer with a mutex-guarded bufio buffer so
// high-rate log sinks (access logs to a file) amortize syscalls; Flush
// pushes the tail through before the underlying file closes. It exists
// because slog handlers write one record at a time and bufio.Writer
// alone is not safe for the handler's concurrent writes.
type BufferedWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

// NewBufferedWriter returns a concurrent-safe buffered writer over w.
func NewBufferedWriter(w io.Writer) *BufferedWriter {
	return &BufferedWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Write buffers p.
func (b *BufferedWriter) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bw.Write(p)
}

// Flush writes everything buffered to the underlying writer.
func (b *BufferedWriter) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bw.Flush()
}

// NewPrintfLogger bridges structured records onto a printf-style sink
// — the legacy serve.Config.Logf seam keeps receiving one line per
// event while the call sites move to structured logging. Attributes
// render as trailing key=value pairs.
func NewPrintfLogger(logf func(format string, args ...any), levels *Levels) *slog.Logger {
	if logf == nil {
		return Discard()
	}
	if levels == nil {
		levels = NewLevels(slog.LevelInfo)
	}
	return slog.New(&printfHandler{logf: logf, levels: levels})
}

type printfHandler struct {
	logf      func(format string, args ...any)
	levels    *Levels
	component string
	attrs     []slog.Attr
}

func (h *printfHandler) Enabled(_ context.Context, lvl slog.Level) bool {
	return lvl >= h.levels.Level(h.component)
}

func (h *printfHandler) Handle(ctx context.Context, rec slog.Record) error {
	var sb strings.Builder
	sb.WriteString(rec.Message)
	emit := func(a slog.Attr) bool {
		if a.Key != "" && a.Key != ComponentKey {
			fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
		}
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	rec.Attrs(emit)
	if ri, ok := obs.ReqInfoFrom(ctx); ok && ri.RequestID != "" {
		fmt.Fprintf(&sb, " request_id=%s", ri.RequestID)
	}
	h.logf("%s", sb.String())
	return nil
}

func (h *printfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	for _, a := range attrs {
		if a.Key == ComponentKey {
			nh.component = a.Value.String()
		}
	}
	nh.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &nh
}

func (h *printfHandler) WithGroup(string) slog.Handler { return h }
