package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func jsonLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestJSONRecordsCarryComponentAndLevel(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{Writer: &buf})
	Component(lg, "serve").Info("listening", "addr", "localhost:1")
	recs := jsonLines(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r["component"] != "serve" || r["msg"] != "listening" || r["addr"] != "localhost:1" || r["level"] != "INFO" {
		t.Errorf("record = %v", r)
	}
	if r["time"] == nil {
		t.Errorf("record missing time: %v", r)
	}
}

func TestPerComponentLevelControl(t *testing.T) {
	var buf bytes.Buffer
	levels, err := ParseSpec("warn,engine=debug,store=off")
	if err != nil {
		t.Fatal(err)
	}
	lg := New(Options{Writer: &buf, Levels: levels})

	Component(lg, "engine").Debug("closure pass", "items", 12) // admitted: engine=debug
	Component(lg, "serve").Info("suppressed")                  // below default warn
	Component(lg, "serve").Warn("admitted")
	Component(lg, "store").Error("never") // off silences even errors

	recs := jsonLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2:\n%s", len(recs), buf.String())
	}
	if recs[0]["component"] != "engine" || recs[1]["msg"] != "admitted" {
		t.Errorf("records = %v", recs)
	}

	// Levels adjust at runtime without rebuilding the logger.
	levels.Set("serve", slog.LevelDebug)
	buf.Reset()
	Component(lg, "serve").Debug("now visible")
	if len(jsonLines(t, &buf)) != 1 {
		t.Errorf("runtime level change had no effect:\n%s", buf.String())
	}
}

func TestHandlerStampsRequestIdentityFromContext(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{Writer: &buf})
	tc, _ := obs.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	ctx := obs.WithReqInfo(context.Background(), obs.ReqInfo{RequestID: "req-42", Trace: tc})
	lg.InfoContext(ctx, "access", "status", 200)
	r := jsonLines(t, &buf)[0]
	if r["request_id"] != "req-42" {
		t.Errorf("request_id = %v", r["request_id"])
	}
	if r["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" || r["span_id"] != "00f067aa0ba902b7" {
		t.Errorf("trace identity = %v / %v", r["trace_id"], r["span_id"])
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{"verbose", "engine=chatty", "=debug", "info,warn"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	l, err := ParseSpec("info,engine=debug")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "info,engine=debug" {
		t.Errorf("String() = %q", got)
	}
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{Writer: &buf, Format: "text"})
	lg.Info("hello", "k", "v")
	if line := buf.String(); !strings.Contains(line, "msg=hello") || !strings.Contains(line, "k=v") {
		t.Errorf("text record = %q", line)
	}
}

func TestEverySampling(t *testing.T) {
	e := &Every{N: 4}
	admitted := 0
	for i := 0; i < 10; i++ {
		if e.Allow() {
			admitted++
		}
	}
	if admitted != 3 { // i = 0, 4, 8
		t.Errorf("admitted %d of 10, want 3", admitted)
	}
	if got := e.Skipped(); got != 7 {
		t.Errorf("skipped = %d, want 7", got)
	}
	var zero *Every
	if !zero.Allow() || zero.Skipped() != 0 {
		t.Error("nil Every must admit everything")
	}
}

func TestLimiterBucket(t *testing.T) {
	l := NewLimiter(10, 2)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	if !l.Allow() || !l.Allow() {
		t.Fatal("burst of 2 rejected")
	}
	if l.Allow() {
		t.Fatal("depleted bucket admitted")
	}
	now = now.Add(100 * time.Millisecond) // refills one token at 10/s
	if !l.Allow() {
		t.Fatal("refilled token rejected")
	}
	if l.Allow() {
		t.Fatal("second token admitted after one refill")
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
}

func TestBufferedWriterConcurrentFlush(t *testing.T) {
	var sink bytes.Buffer
	bw := NewBufferedWriter(&sink)
	lg := New(Options{Writer: bw})
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lg.Info("line", "i", i)
		}(i)
	}
	wg.Wait()
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(jsonLines(t, &sink)); got != n {
		t.Errorf("flushed %d records, want %d", got, n)
	}
}

func TestPrintfBridge(t *testing.T) {
	var lines []string
	lg := NewPrintfLogger(func(f string, a ...any) {
		lines = append(lines, strings.TrimSpace(strings.ReplaceAll(f, "%s", "")+strings.Join(func() []string {
			var s []string
			for _, x := range a {
				s = append(s, x.(string))
			}
			return s
		}(), " ")))
	}, nil)
	Component(lg, "serve").Info("job done", "job", "a1")
	if len(lines) != 1 || !strings.Contains(lines[0], "job done") || !strings.Contains(lines[0], "job=a1") {
		t.Errorf("printf bridge lines = %q", lines)
	}
	if strings.Contains(lines[0], "component=") {
		t.Errorf("component key must not leak into printf lines: %q", lines[0])
	}
}
