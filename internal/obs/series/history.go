// Step-aligned query evaluator and the rsnsec.metrics-history/v1
// document: the read side of the series store. A query names a metric
// family, a trailing window, a step, and an aggregation function; the
// evaluator walks the retained ring samples and emits one point per
// step boundary, producing a document shaped like a tiny range-query
// response — schema-versioned like every other rsnsec artifact, with a
// validating reader so downstream tooling rejects what it cannot
// parse.
package series

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// HistorySchema is the metrics-history document schema identifier.
// Bump the suffix on any incompatible field change; readers reject
// unknown versions.
const HistorySchema = "rsnsec.metrics-history/v1"

// Aggregation functions accepted by Query, by kind:
//
//	counter:   rate (default; per-second increase), increase
//	gauge:     avg (default), min, max, last
//	histogram: p50 (default), p90, p99, avg, rate
//
// Unknown combinations are rejected by Query.
var queryFns = map[Kind][]string{
	KindCounter:   {"rate", "increase"},
	KindGauge:     {"avg", "min", "max", "last"},
	KindHistogram: {"p50", "p90", "p99", "avg", "rate"},
}

// DefaultFn returns the default aggregation for a kind.
func DefaultFn(k Kind) string {
	if fns, ok := queryFns[k]; ok {
		return fns[0]
	}
	return ""
}

// HistoryPoint is one evaluated step. T is the step's right edge in
// unix milliseconds; V is absent (null) when the step held no data —
// series younger than the window, or a quantile over an empty step.
type HistoryPoint struct {
	T int64    `json:"t_unix_ms"`
	V *float64 `json:"v"`
}

// History is the rsnsec.metrics-history/v1 document: one evaluated
// range query over the in-process series store.
type History struct {
	Schema string `json:"schema"`
	// Name is the queried metric family.
	Name string `json:"name"`
	// Kind is the family's sampled kind.
	Kind Kind `json:"kind"`
	// Fn is the aggregation evaluated per step.
	Fn string `json:"fn"`
	// WindowMS / StepMS echo the evaluated range.
	WindowMS int64 `json:"window_ms"`
	StepMS   int64 `json:"step_ms"`
	// IntervalMS is the store's sampling interval — the native
	// resolution under the steps.
	IntervalMS int64 `json:"interval_ms"`
	// Points hold one entry per step, oldest first, strictly
	// step-aligned and increasing.
	Points []HistoryPoint `json:"points"`
}

// Validate checks the document's structural invariants.
func (h *History) Validate() error {
	if h == nil {
		return fmt.Errorf("history: nil")
	}
	if h.Schema != HistorySchema {
		return fmt.Errorf("history: schema %q, this reader wants %q", h.Schema, HistorySchema)
	}
	if h.Name == "" {
		return fmt.Errorf("history: missing name")
	}
	fns, ok := queryFns[h.Kind]
	if !ok {
		return fmt.Errorf("history: unknown kind %q", h.Kind)
	}
	if !contains(fns, h.Fn) {
		return fmt.Errorf("history: fn %q not valid for kind %q (want one of %v)", h.Fn, h.Kind, fns)
	}
	if h.StepMS <= 0 {
		return fmt.Errorf("history: step_ms %d, want > 0", h.StepMS)
	}
	if h.WindowMS < h.StepMS {
		return fmt.Errorf("history: window_ms %d < step_ms %d", h.WindowMS, h.StepMS)
	}
	for i, p := range h.Points {
		if p.T%h.StepMS != 0 {
			return fmt.Errorf("history: point %d: t %d not aligned to step %d", i, p.T, h.StepMS)
		}
		if i > 0 && p.T != h.Points[i-1].T+h.StepMS {
			return fmt.Errorf("history: point %d: t %d does not follow %d by one step", i, p.T, h.Points[i-1].T)
		}
		if p.V != nil && (math.IsNaN(*p.V) || math.IsInf(*p.V, 0)) {
			return fmt.Errorf("history: point %d: non-finite value", i)
		}
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// WriteHistory serializes the document as indented JSON.
func WriteHistory(w io.Writer, h *History) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// ReadHistory parses and validates a metrics-history document.
func ReadHistory(rd io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(rd).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: parse: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// Query evaluates fn over family on a step grid covering the trailing
// window, ending at the last step boundary at or before now. An empty
// fn uses the kind's default; a step below the sampling interval is
// raised to it (steps finer than the data would fabricate resolution).
// Unknown families and invalid fn/kind combinations return an error.
func (s *Store) Query(family string, window, step time.Duration, fn string, now time.Time) (*History, error) {
	kind, ok := s.FamilyKind(family)
	if !ok {
		return nil, fmt.Errorf("series: unknown family %q (known: %v)", family, s.Families())
	}
	if step <= 0 {
		step = s.cfg.interval()
	}
	if step < s.cfg.interval() {
		step = s.cfg.interval()
	}
	if window < step {
		window = step
	}
	if window > s.cfg.retention() {
		window = s.cfg.retention()
	}
	if fn == "" {
		fn = DefaultFn(kind)
	}
	if !contains(queryFns[kind], fn) {
		return nil, fmt.Errorf("series: fn %q not valid for %s family %q (want one of %v)",
			fn, kind, family, queryFns[kind])
	}

	stepMS := step.Milliseconds()
	endMS := now.UnixMilli() / stepMS * stepMS
	steps := int(window.Milliseconds() / stepMS)
	if steps < 1 {
		steps = 1
	}
	h := &History{
		Schema:     HistorySchema,
		Name:       family,
		Kind:       kind,
		Fn:         fn,
		WindowMS:   window.Milliseconds(),
		StepMS:     stepMS,
		IntervalMS: s.cfg.interval().Milliseconds(),
		Points:     make([]HistoryPoint, 0, steps),
	}
	for i := steps - 1; i >= 0; i-- {
		tMS := endMS - int64(i)*stepMS
		t := time.UnixMilli(tMS)
		if v, ok := s.evalStep(family, kind, fn, step, t); ok && !math.IsNaN(v) && !math.IsInf(v, 0) {
			vv := v
			h.Points = append(h.Points, HistoryPoint{T: tMS, V: &vv})
		} else {
			h.Points = append(h.Points, HistoryPoint{T: tMS})
		}
	}
	return h, nil
}

// evalStep evaluates one aggregation over the step ending at t.
func (s *Store) evalStep(family string, kind Kind, fn string, step time.Duration, t time.Time) (float64, bool) {
	switch kind {
	case KindCounter:
		d, ok := s.CounterWindowDelta(family, step, t)
		if !ok {
			return 0, false
		}
		if fn == "rate" {
			return d / step.Seconds(), true
		}
		return d, true
	case KindGauge:
		return s.gaugeStep(family, fn, step, t)
	case KindHistogram:
		d, ok := s.FamilyHistogramWindow(family, step, t)
		if !ok {
			return 0, false
		}
		switch fn {
		case "avg":
			if d.Count <= 0 {
				return 0, false
			}
			return d.Sum / float64(d.Count), true
		case "rate":
			return float64(d.Count) / step.Seconds(), true
		default: // p50 / p90 / p99
			q := map[string]float64{"p50": 0.5, "p90": 0.9, "p99": 0.99}[fn]
			return d.Quantile(q), true
		}
	}
	return 0, false
}

// gaugeStep aggregates every gauge series of a family over one step.
// Multi-series families merge samples (avg of all, min of all, ...);
// "last" takes the newest sample across the family.
func (s *Store) gaugeStep(family string, fn string, step time.Duration, t time.Time) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t1 := t.UnixNano()
	lo := t1 - int64(step)
	var (
		n              int
		sum            float64
		minV           = math.Inf(1)
		maxV           = math.Inf(-1)
		last           float64
		lastT    int64 = math.MinInt64
	)
	for _, b := range s.familySeriesLocked(family) {
		if b.kind != KindGauge {
			continue
		}
		b.inWindow(lo, t1, func(sm sample) {
			n++
			sum += sm.v
			minV = math.Min(minV, sm.v)
			maxV = math.Max(maxV, sm.v)
			if sm.t >= lastT {
				lastT, last = sm.t, sm.v
			}
		})
	}
	if n == 0 {
		return 0, false
	}
	switch fn {
	case "min":
		return minV, true
	case "max":
		return maxV, true
	case "last":
		return last, true
	default:
		return sum / float64(n), true
	}
}

// KnownFns returns the fn vocabulary per kind, for error messages and
// the endpoint's self-description.
func KnownFns() map[Kind][]string {
	out := make(map[Kind][]string, len(queryFns))
	for k, v := range queryFns {
		out[k] = append([]string(nil), v...)
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}
