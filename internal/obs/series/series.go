// Package series is a bounded, in-process time-series store over an
// obs.Registry: a sampler reads every registered metric on a fixed
// interval into per-series ring buffers, and a step-aligned query
// evaluator turns the retained samples into windowed rates (counters),
// last/min/max/avg (gauges) and windowed quantiles (histograms,
// computed from cumulative-bucket deltas). It is what gives the
// point-in-time /metrics exposition a memory: "what was p99 request
// latency over the last ten minutes" becomes answerable in process,
// with no external scrape pipeline.
//
// # Memory ceiling
//
// Retention is bounded by construction, never by eviction heuristics:
//
//   - each series keeps a ring of slots = ceil(Retention/Interval)
//     samples and nothing else;
//   - at most MaxSeries distinct series are tracked — series appearing
//     beyond the cap are counted (DroppedSeries) and ignored;
//   - a scalar sample is sampleBytes (56 B); a histogram sample adds
//     8 bytes per bucket (its bounds plus the +Inf overflow bucket).
//
// The store therefore never retains more than
//
//	MaxSeries × slots × (sampleBytes + 8×(maxBuckets+1))
//
// bytes of samples, where maxBuckets is the widest histogram's bucket
// count. Footprint reports the actual retained bytes; the bound is
// asserted in tests.
package series

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Kind is the sampled metric kind.
type Kind string

// Sampled metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Config sizes a Store. The zero value is usable: 15s interval, 1h
// retention, 512 series.
type Config struct {
	// Interval is the sampling period; <= 0 uses 15s.
	Interval time.Duration
	// Retention is how far back samples are kept; <= 0 uses 1h. The
	// per-series ring holds ceil(Retention/Interval) slots.
	Retention time.Duration
	// MaxSeries bounds the distinct series tracked; <= 0 uses 512.
	// Series first seen beyond the cap are dropped (DroppedSeries
	// counts them), so one labelled-family explosion cannot grow the
	// store without bound.
	MaxSeries int
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 15 * time.Second
}

func (c Config) retention() time.Duration {
	if c.Retention > 0 {
		return c.Retention
	}
	return time.Hour
}

func (c Config) maxSeries() int {
	if c.MaxSeries > 0 {
		return c.MaxSeries
	}
	return 512
}

// slots is the ring capacity: enough samples to cover the retention
// window at the sampling interval, plus one so a full window always
// has a baseline sample at (or before) its left edge.
func (c Config) slots() int {
	n := int((c.retention() + c.interval() - 1) / c.interval())
	if n < 1 {
		n = 1
	}
	return n + 1
}

// sample is one stored observation. Scalar kinds use t and v;
// histograms use t, count, sum and buckets (per-bucket counts, the
// last entry being the +Inf overflow bucket).
type sample struct {
	t       int64 // unix nanoseconds
	v       float64
	count   int64
	sum     float64
	buckets []int64
}

// sampleBytes is the in-memory size of one scalar sample slot (the
// struct itself; histogram bucket payloads are accounted separately).
const sampleBytes = 56

// seriesBuf is one series' ring buffer.
type seriesBuf struct {
	name   string
	family string
	labels string // literal label block including braces ("" unlabelled)
	kind   Kind
	bounds []float64 // histogram bucket upper bounds (nil otherwise)

	buf   []sample
	next  int
	count int // total samples ever written
}

// write appends one sample, overwriting the oldest beyond capacity.
func (b *seriesBuf) write(s sample) {
	slot := &b.buf[b.next]
	if s.buckets != nil {
		// Reuse the evicted slot's bucket slice when it fits, so a full
		// ring stops allocating entirely.
		if cap(slot.buckets) >= len(s.buckets) {
			dst := slot.buckets[:len(s.buckets)]
			copy(dst, s.buckets)
			s.buckets = dst
		} else {
			s.buckets = append([]int64(nil), s.buckets...)
		}
	}
	*slot = s
	b.next = (b.next + 1) % len(b.buf)
	b.count++
}

// at returns the latest sample with timestamp <= t.
func (b *seriesBuf) at(t int64) (sample, bool) {
	n := b.count
	if n > len(b.buf) {
		n = len(b.buf)
	}
	for i := 1; i <= n; i++ {
		s := b.buf[(b.next-i+len(b.buf))%len(b.buf)]
		if s.t <= t {
			return s, true
		}
	}
	return sample{}, false
}

// inWindow calls fn for every sample with lo < t <= hi, oldest first.
func (b *seriesBuf) inWindow(lo, hi int64, fn func(sample)) {
	n := b.count
	if n > len(b.buf) {
		n = len(b.buf)
	}
	start := (b.next - n + len(b.buf)) % len(b.buf)
	for i := 0; i < n; i++ {
		s := b.buf[(start+i)%len(b.buf)]
		if s.t > lo && s.t <= hi {
			fn(s)
		}
	}
}

// Store samples a registry into bounded per-series rings.
type Store struct {
	reg *obs.Registry
	cfg Config

	mu      sync.Mutex
	byName  map[string]*seriesBuf
	order   []string
	dropped map[string]bool // series names refused by the MaxSeries cap
	scratch []int64         // histogram snapshot buffer, reused per tick

	stop chan struct{}
	done chan struct{}
}

// NewStore returns a store sampling reg under cfg. Nothing is sampled
// until Sample or Start is called.
func NewStore(reg *obs.Registry, cfg Config) *Store {
	return &Store{
		reg:     reg,
		cfg:     cfg,
		byName:  make(map[string]*seriesBuf),
		dropped: make(map[string]bool),
	}
}

// Interval returns the effective sampling interval.
func (s *Store) Interval() time.Duration { return s.cfg.interval() }

// Retention returns the effective retention window.
func (s *Store) Retention() time.Duration { return s.cfg.retention() }

// Start launches the background sampler goroutine (one immediate
// sample, then one per interval). Stop terminates it.
func (s *Store) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		s.Sample(time.Now())
		t := time.NewTicker(s.cfg.interval())
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.Sample(now)
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop terminates the background sampler and waits for it to exit.
// Safe to call when Start never ran, and more than once.
func (s *Store) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Sample takes one sample of every registry metric, stamped at now.
// Registry collectors run first, so pull-style gauges (load signal,
// runtime health) are as fresh here as in a scrape. Callable directly
// for tests and manual ticking; the background sampler calls it too.
func (s *Store) Sample(now time.Time) {
	if s == nil {
		return
	}
	s.reg.Collect()
	t := now.UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Each(func(name string, m any) {
		b := s.bufForLocked(name, m)
		if b == nil {
			return
		}
		switch x := m.(type) {
		case *obs.Counter:
			b.write(sample{t: t, v: float64(x.Value())})
		case *obs.Gauge:
			b.write(sample{t: t, v: float64(x.Value())})
		case *obs.FloatGauge:
			b.write(sample{t: t, v: x.Value()})
		case *obs.Histogram:
			s.scratch = x.BucketCounts(s.scratch)
			b.write(sample{t: t, count: x.Count(), sum: x.Sum(), buckets: s.scratch})
		}
	})
}

// bufForLocked resolves (or creates, capacity permitting) the ring of
// one series.
func (s *Store) bufForLocked(name string, m any) *seriesBuf {
	if b, ok := s.byName[name]; ok {
		return b
	}
	if s.dropped[name] {
		return nil
	}
	if len(s.byName) >= s.cfg.maxSeries() {
		s.dropped[name] = true
		return nil
	}
	b := &seriesBuf{name: name, buf: make([]sample, s.cfg.slots())}
	b.family, b.labels = splitFamily(name)
	switch x := m.(type) {
	case *obs.Counter:
		b.kind = KindCounter
	case *obs.Gauge, *obs.FloatGauge:
		b.kind = KindGauge
	case *obs.Histogram:
		b.kind = KindHistogram
		b.bounds = x.Bounds()
	default:
		return nil
	}
	s.byName[name] = b
	s.order = append(s.order, name)
	return b
}

// splitFamily splits a series name into its family and the literal
// label block (including braces, empty when unlabelled).
func splitFamily(name string) (fam, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// DroppedSeries returns how many distinct series were refused by the
// MaxSeries cap.
func (s *Store) DroppedSeries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dropped)
}

// SeriesCount returns the number of tracked series.
func (s *Store) SeriesCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byName)
}

// Footprint returns the retained sample bytes across all series — the
// quantity the package-level memory ceiling bounds. It counts ring
// slots (allocated up front) and histogram bucket payloads (allocated
// as slots fill, then reused).
func (s *Store) Footprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, b := range s.byName {
		total += int64(len(b.buf)) * sampleBytes
		for i := range b.buf {
			total += int64(cap(b.buf[i].buckets)) * 8
		}
	}
	return total
}

// FootprintBound returns the store's documented memory ceiling in
// bytes, given the widest histogram bucket count in play (bounds plus
// the +Inf overflow bucket).
func (s *Store) FootprintBound(maxBuckets int) int64 {
	return int64(s.cfg.maxSeries()) * int64(s.cfg.slots()) * (sampleBytes + 8*int64(maxBuckets+1))
}

// FamilyKind reports the kind of a metric family (or exact series
// name) and whether the store tracks it.
func (s *Store) FamilyKind(family string) (Kind, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.byName {
		if b.family == family || b.name == family {
			return b.kind, true
		}
	}
	return "", false
}

// familySeriesLocked returns the rings of one family (exact series
// names also match), in first-seen order.
func (s *Store) familySeriesLocked(family string) []*seriesBuf {
	var out []*seriesBuf
	for _, name := range s.order {
		b := s.byName[name]
		if b.family == family || b.name == family {
			out = append(out, b)
		}
	}
	return out
}

// HistDelta is a windowed histogram: the increase of a cumulative
// histogram (or a merged family of them) between two sample points.
type HistDelta struct {
	Bounds []float64
	// Counts are per-bucket increases; the last entry is the +Inf
	// overflow bucket.
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile returns an upper bound for the q-quantile of the windowed
// distribution — the bound of the first bucket whose cumulative delta
// reaches q, +Inf when it lands in the overflow bucket, NaN when the
// window holds no observations or q lies outside (0, 1].
func (d HistDelta) Quantile(q float64) float64 {
	if math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	var total int64
	for _, c := range d.Counts {
		total += c
	}
	if total <= 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range d.Counts {
		cum += c
		if cum >= target {
			if i < len(d.Bounds) {
				return d.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// CountAtMost returns how many windowed observations fell into buckets
// whose upper bound is <= threshold — the "good event" count of a
// latency SLO. A threshold between two bounds rounds down to the last
// covered bucket (the conservative direction: observations are never
// over-credited as fast).
func (d HistDelta) CountAtMost(threshold float64) int64 {
	var n int64
	for i, b := range d.Bounds {
		if b > threshold {
			break
		}
		n += d.Counts[i]
	}
	return n
}

// histDeltaLocked computes one ring's increase between the samples at
// (or before) t0 and t1. A missing baseline uses zero (the series is
// younger than the window; its full history is the delta).
func histDeltaLocked(b *seriesBuf, t0, t1 int64) (HistDelta, bool) {
	s1, ok := b.at(t1)
	if !ok {
		return HistDelta{}, false
	}
	d := HistDelta{Bounds: b.bounds, Counts: make([]int64, len(s1.buckets))}
	copy(d.Counts, s1.buckets)
	d.Count, d.Sum = s1.count, s1.sum
	if s0, ok := b.at(t0); ok {
		for i := range d.Counts {
			if i < len(s0.buckets) {
				d.Counts[i] -= s0.buckets[i]
			}
		}
		d.Count -= s0.count
		d.Sum -= s0.sum
	}
	return d, true
}

// FamilyHistogramWindow merges the trailing-window increase of every
// histogram series in a family (e.g. all endpoints of
// serve_request_seconds). Series whose bucket bounds differ from the
// first one's are skipped. ok is false when no series has a sample.
func (s *Store) FamilyHistogramWindow(family string, window time.Duration, now time.Time) (HistDelta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t1 := now.UnixNano()
	t0 := t1 - int64(window)
	var merged HistDelta
	any := false
	for _, b := range s.familySeriesLocked(family) {
		if b.kind != KindHistogram {
			continue
		}
		d, ok := histDeltaLocked(b, t0, t1)
		if !ok {
			continue
		}
		if !any {
			merged = d
			any = true
			continue
		}
		if !sameBounds(merged.Bounds, d.Bounds) {
			continue
		}
		for i := range d.Counts {
			merged.Counts[i] += d.Counts[i]
		}
		merged.Count += d.Count
		merged.Sum += d.Sum
	}
	return merged, any
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterWindowDelta returns the increase of a counter family over the
// trailing window, summed across the family's series. A series younger
// than the window contributes its full value. ok is false when no
// series has a sample.
func (s *Store) CounterWindowDelta(family string, window time.Duration, now time.Time) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t1 := now.UnixNano()
	t0 := t1 - int64(window)
	var total float64
	any := false
	for _, b := range s.familySeriesLocked(family) {
		if b.kind != KindCounter {
			continue
		}
		s1, ok := b.at(t1)
		if !ok {
			continue
		}
		any = true
		v := s1.v
		if s0, ok := b.at(t0); ok {
			v -= s0.v
		}
		if v > 0 {
			total += v
		}
	}
	return total, any
}

// GaugeWindow summarizes a gauge series' samples over the trailing
// window: last/min/max/avg plus how many samples exceeded limit (the
// saturation SLO's "bad event" count). ok is false when the window
// holds no samples.
type GaugeWindow struct {
	Last, Min, Max, Avg float64
	Samples             int
	AboveLimit          int
}

// GaugeWindowStats summarizes one gauge series (by exact name) over
// the trailing window.
func (s *Store) GaugeWindowStats(name string, limit float64, window time.Duration, now time.Time) (GaugeWindow, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.byName[name]
	if !ok || b.kind != KindGauge {
		return GaugeWindow{}, false
	}
	t1 := now.UnixNano()
	gw := GaugeWindow{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	b.inWindow(t1-int64(window), t1, func(sm sample) {
		gw.Samples++
		gw.Last = sm.v
		sum += sm.v
		gw.Min = math.Min(gw.Min, sm.v)
		gw.Max = math.Max(gw.Max, sm.v)
		if sm.v > limit {
			gw.AboveLimit++
		}
	})
	if gw.Samples == 0 {
		return GaugeWindow{}, false
	}
	gw.Avg = sum / float64(gw.Samples)
	return gw, true
}

// Families returns the tracked metric families, sorted — the
// discoverable query surface of /debug/metrics/history.
func (s *Store) Families() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, name := range s.order {
		f := s.byName[name].family
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the store configuration (for logs).
func (s *Store) String() string {
	return fmt.Sprintf("series.Store{interval=%s retention=%s maxSeries=%d slots=%d}",
		s.cfg.interval(), s.cfg.retention(), s.cfg.maxSeries(), s.cfg.slots())
}
