package series

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// t0 is an arbitrary fixed epoch; tests tick the store manually so
// nothing depends on the wall clock.
var t0 = time.Unix(1_700_000_000, 0)

func tick(s *Store, base time.Time, n int, step time.Duration) time.Time {
	now := base
	for i := 0; i < n; i++ {
		now = now.Add(step)
		s.Sample(now)
	}
	return now
}

func TestCounterWindowDelta(t *testing.T) {
	reg := obs.NewRegistry()
	c1 := reg.Counter(`req_total{endpoint="a"}`)
	c2 := reg.Counter(`req_total{endpoint="b"}`)
	st := NewStore(reg, Config{Interval: time.Second, Retention: time.Minute})

	now := t0
	st.Sample(now)
	for i := 0; i < 10; i++ {
		c1.Inc()
		c2.Add(2)
		now = now.Add(time.Second)
		st.Sample(now)
	}
	// Family-wide delta over the last 5s: 5*(1+2).
	d, ok := st.CounterWindowDelta("req_total", 5*time.Second, now)
	if !ok || d != 15 {
		t.Fatalf("delta = %v ok=%v, want 15", d, ok)
	}
	// Over the whole window: 10*(1+2).
	d, _ = st.CounterWindowDelta("req_total", time.Minute, now)
	if d != 30 {
		t.Fatalf("full delta = %v, want 30", d)
	}
	if _, ok := st.CounterWindowDelta("nonexistent", time.Minute, now); ok {
		t.Fatal("unknown family reported ok")
	}
}

func TestGaugeWindowStats(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("queue_depth")
	st := NewStore(reg, Config{Interval: time.Second, Retention: time.Minute})

	now := t0
	for i, v := range []int64{1, 5, 3, 9, 2} {
		g.Set(v)
		now = now.Add(time.Second)
		st.Sample(now)
		_ = i
	}
	gw, ok := st.GaugeWindowStats("queue_depth", 4, time.Minute, now)
	if !ok {
		t.Fatal("no stats")
	}
	if gw.Samples != 5 || gw.Min != 1 || gw.Max != 9 || gw.Last != 2 {
		t.Fatalf("stats = %+v", gw)
	}
	if gw.Avg != 4 {
		t.Fatalf("avg = %v, want 4", gw.Avg)
	}
	if gw.AboveLimit != 2 { // 5 and 9 exceed limit 4
		t.Fatalf("above limit = %d, want 2", gw.AboveLimit)
	}
}

func TestHistogramWindowQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", 0.01, 0.1, 1)
	st := NewStore(reg, Config{Interval: time.Second, Retention: time.Minute})

	now := t0
	// First sample: 10 fast observations.
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
	}
	now = tick(st, now, 1, time.Second)
	// Second epoch: 10 slow observations land; the trailing-1s window
	// must see ONLY them (cumulative-bucket delta, not totals).
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	now = tick(st, now, 1, time.Second)

	d, ok := st.FamilyHistogramWindow("lat_seconds", time.Second, now)
	if !ok {
		t.Fatal("no window")
	}
	if d.Count != 10 {
		t.Fatalf("windowed count = %d, want 10 (delta, not cumulative)", d.Count)
	}
	if q := d.Quantile(0.5); q != 1 { // 0.5 falls in the (0.1, 1] bucket
		t.Fatalf("windowed p50 = %v, want 1", q)
	}
	// Whole retention: both epochs, median in the fastest bucket half.
	d, _ = st.FamilyHistogramWindow("lat_seconds", time.Minute, now)
	if d.Quantile(0.5) != 0.01 {
		t.Fatalf("full p50 = %v, want 0.01", d.Quantile(0.5))
	}
	if got := d.CountAtMost(0.1); got != 10 {
		t.Fatalf("CountAtMost(0.1) = %d, want 10", got)
	}
	if !math.IsNaN(d.Quantile(0)) || !math.IsNaN(d.Quantile(1.5)) {
		t.Fatal("out-of-range quantiles must be NaN")
	}
	empty := HistDelta{Bounds: []float64{1}, Counts: []int64{0, 0}}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty window quantile must be NaN")
	}
	over := HistDelta{Bounds: []float64{1}, Counts: []int64{0, 3}}
	if !math.IsInf(over.Quantile(0.9), 1) {
		t.Fatal("overflow-bucket quantile must be +Inf")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ticks_total")
	// 5s retention at 1s interval = 6 slots.
	st := NewStore(reg, Config{Interval: time.Second, Retention: 5 * time.Second})
	now := t0
	for i := 0; i < 50; i++ {
		c.Inc()
		now = now.Add(time.Second)
		st.Sample(now)
	}
	// Only the newest retention window is answerable: the full-window
	// delta is bounded by the slot count, not the 50 written samples.
	d, ok := st.CounterWindowDelta("ticks_total", 5*time.Second, now)
	if !ok || d != 5 {
		t.Fatalf("wrapped delta = %v ok=%v, want 5", d, ok)
	}
}

func TestMaxSeriesCapAndFootprintBound(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Interval: time.Second, Retention: 10 * time.Second, MaxSeries: 8}
	st := NewStore(reg, cfg)
	// 20 distinct series against a cap of 8.
	for i := 0; i < 18; i++ {
		reg.Counter(fmt.Sprintf("c%02d_total", i)).Inc()
	}
	reg.Histogram("h_seconds", 0.01, 0.1, 1).Observe(0.5)
	reg.Gauge("g").Set(1)
	now := tick(st, t0, 30, time.Second)
	_ = now

	if got := st.SeriesCount(); got != 8 {
		t.Fatalf("series count = %d, want the cap 8", got)
	}
	if got := st.DroppedSeries(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}

	// The documented ceiling: MaxSeries x slots x (sampleBytes + bucket
	// payload) — with the widest histogram in play (3 bounds + Inf).
	bound := st.FootprintBound(3)
	if fp := st.Footprint(); fp <= 0 || fp > bound {
		t.Fatalf("footprint %d outside (0, %d]", fp, bound)
	}
}

func TestFootprintStopsGrowingOnceFull(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("h_seconds", 0.01, 0.1, 1).Observe(0.5)
	reg.Counter("c_total").Inc()
	st := NewStore(reg, Config{Interval: time.Second, Retention: 5 * time.Second})
	tick(st, t0, 10, time.Second)
	full := st.Footprint()
	tick(st, t0.Add(10*time.Second), 100, time.Second)
	if got := st.Footprint(); got != full {
		t.Fatalf("footprint grew after rings filled: %d -> %d", full, got)
	}
}

func TestQueryDocumentRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("req_total")
	st := NewStore(reg, Config{Interval: time.Second, Retention: time.Minute})
	now := t0
	for i := 0; i < 30; i++ {
		c.Add(3)
		now = now.Add(time.Second)
		st.Sample(now)
	}
	h, err := st.Query("req_total", 10*time.Second, 2*time.Second, "", now)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fn != "rate" || h.Kind != KindCounter {
		t.Fatalf("defaults = %s/%s", h.Kind, h.Fn)
	}
	if len(h.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(h.Points))
	}
	for _, p := range h.Points {
		if p.V == nil || *p.V != 3 { // 3/s counted over 2s steps
			t.Fatalf("point = %+v, want rate 3", p)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHistory(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(h.Points) || back.Name != h.Name {
		t.Fatalf("round trip mismatch: %+v", back)
	}

	// The reader rejects a wrong schema and broken alignment.
	bad := *h
	bad.Schema = "rsnsec.metrics-history/v999"
	var bb bytes.Buffer
	_ = WriteHistory(&bb, &bad)
	if _, err := ReadHistory(&bb); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("unknown schema accepted: %v", err)
	}
	bad2 := *h
	bad2.Points = append([]HistoryPoint(nil), h.Points...)
	bad2.Points[1].T++ // misaligned
	if err := bad2.Validate(); err == nil {
		t.Fatal("misaligned points accepted")
	}

	// Unknown family and invalid fn are query errors.
	if _, err := st.Query("nope", time.Minute, time.Second, "", now); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := st.Query("req_total", time.Minute, time.Second, "p50", now); err == nil {
		t.Fatal("histogram fn accepted on a counter")
	}
}

func TestQueryGaugeAndHistogramFns(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("depth")
	h := reg.Histogram("lat_seconds", 0.01, 0.1, 1)
	st := NewStore(reg, Config{Interval: time.Second, Retention: time.Minute})
	now := t0
	for i := 1; i <= 10; i++ {
		g.Set(int64(i))
		h.Observe(0.05)
		now = now.Add(time.Second)
		st.Sample(now)
	}
	doc, err := st.Query("depth", 10*time.Second, 5*time.Second, "max", now)
	if err != nil {
		t.Fatal(err)
	}
	lastPt := doc.Points[len(doc.Points)-1]
	if lastPt.V == nil || *lastPt.V != 10 {
		t.Fatalf("gauge max point = %+v", lastPt)
	}
	doc, err = st.Query("lat_seconds", 10*time.Second, 5*time.Second, "p90", now)
	if err != nil {
		t.Fatal(err)
	}
	lastPt = doc.Points[len(doc.Points)-1]
	if lastPt.V == nil || *lastPt.V != 0.1 {
		t.Fatalf("hist p90 point = %+v", lastPt)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStartStopBackgroundSampler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total").Inc()
	st := NewStore(reg, Config{Interval: 10 * time.Millisecond, Retention: time.Second})
	st.Start()
	deadline := time.Now().Add(2 * time.Second)
	for st.SeriesCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st.Stop()
	st.Stop() // idempotent
	if st.SeriesCount() == 0 {
		t.Fatal("background sampler never sampled")
	}
	var nilStore *Store
	nilStore.Start()
	nilStore.Stop()
	nilStore.Sample(time.Now())
}
