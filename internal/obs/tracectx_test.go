package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", h)
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q", tc.TraceID)
	}
	if tc.SpanID != "00f067aa0ba902b7" {
		t.Errorf("span id = %q", tc.SpanID)
	}
	if tc.Flags != 0x01 {
		t.Errorf("flags = %#02x", tc.Flags)
	}
	if got := tc.Traceparent(); got != h {
		t.Errorf("round trip = %q, want %q", got, h)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 must be exactly 4 fields
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // all-zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
}

func TestParseTraceparentFutureVersionWithSuffix(t *testing.T) {
	// A future version may append fields after the flags; the 00-shaped
	// prefix must still parse.
	h := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"
	tc, ok := ParseTraceparent(h)
	if !ok || tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("future-version header rejected: ok=%v tc=%+v", ok, tc)
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("NewTraceContext invalid: %+v", tc)
	}
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Errorf("child changed trace id: %q -> %q", tc.TraceID, child.TraceID)
	}
	if child.SpanID == tc.SpanID {
		t.Errorf("child kept the parent span id %q", tc.SpanID)
	}
	if !child.Valid() {
		t.Errorf("child invalid: %+v", child)
	}
}

func TestNewRequestIDShape(t *testing.T) {
	id := NewRequestID()
	if !strings.HasPrefix(id, "req-") || len(id) != 4+16 {
		t.Errorf("request id %q has unexpected shape", id)
	}
	if id == NewRequestID() {
		t.Errorf("two request ids collided")
	}
}

func TestReqInfoContextRoundTrip(t *testing.T) {
	if _, ok := ReqInfoFrom(context.Background()); ok {
		t.Fatal("empty context reported a request identity")
	}
	ri := ReqInfo{RequestID: "req-1", Trace: NewTraceContext()}
	ctx := WithReqInfo(context.Background(), ri)
	got, ok := ReqInfoFrom(ctx)
	if !ok || got != ri {
		t.Fatalf("ReqInfoFrom = %+v, %v; want %+v", got, ok, ri)
	}
	attrs := ri.Attrs()
	if len(attrs) != 2 || attrs[0].Key != "request_id" || attrs[1].Key != "trace_id" {
		t.Errorf("Attrs = %+v", attrs)
	}
}

func TestRuntimeMetricsCollect(t *testing.T) {
	reg := NewRegistry()
	EnableRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"go_goroutines", "go_heap_live_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
	if reg.Gauge("go_goroutines").Value() < 1 {
		t.Errorf("go_goroutines = %d, want >= 1", reg.Gauge("go_goroutines").Value())
	}
	if reg.Gauge("go_heap_live_bytes").Value() <= 0 {
		t.Errorf("go_heap_live_bytes = %d, want > 0", reg.Gauge("go_heap_live_bytes").Value())
	}
}

func TestRegistryCollectorRefreshesOnSnapshot(t *testing.T) {
	reg := NewRegistry()
	n := 0
	reg.AddCollector(func() { n++; reg.Gauge("ticks").Set(int64(n)) })
	_ = reg.Snapshot()
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	if n != 2 {
		t.Fatalf("collector ran %d times, want 2", n)
	}
	if got := reg.Gauge("ticks").Value(); got != 2 {
		t.Fatalf("ticks = %d, want 2", got)
	}
}
