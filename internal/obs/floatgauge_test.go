package obs

import (
	"strings"
	"testing"
)

func TestFloatGaugeSetValueAndRender(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("cpu_seconds_total")
	if g.Value() != 0 {
		t.Fatalf("zero value = %v", g.Value())
	}
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Fatalf("value = %v, want 12.5", g.Value())
	}
	if r.FloatGauge("cpu_seconds_total") != g {
		t.Fatal("second lookup returned a different gauge")
	}
	snap := r.Snapshot()
	if snap["cpu_seconds_total"] != 12.5 {
		t.Fatalf("snapshot = %v", snap["cpu_seconds_total"])
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE cpu_seconds_total gauge") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "cpu_seconds_total 12.5") {
		t.Fatalf("missing rendered value:\n%s", out)
	}

	var nilG *FloatGauge
	nilG.Set(3) // must not panic
	if nilG.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
}

func TestHistogramBoundsAndBucketCounts(t *testing.T) {
	h := NewRegistry().Histogram("h", 0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 7} {
		h.Observe(v)
	}
	b := h.Bounds()
	if len(b) != 3 || b[0] != 0.01 || b[2] != 1 {
		t.Fatalf("bounds = %v", b)
	}
	b[0] = 99 // must be a copy
	if h.Bounds()[0] != 0.01 {
		t.Fatal("Bounds aliases internal state")
	}
	counts := h.BucketCounts(nil)
	want := []int64{1, 1, 1, 2} // last = +Inf overflow
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	// dst reuse: a big-enough buffer comes back resliced, not realloced.
	buf := make([]int64, 8)
	reused := h.BucketCounts(buf)
	if &reused[0] != &buf[0] || len(reused) != 4 {
		t.Fatalf("dst not reused: len=%d", len(reused))
	}
	var nilH *Histogram
	if got := nilH.BucketCounts(buf); len(got) != 0 {
		t.Fatalf("nil histogram counts = %v", got)
	}
	if nilH.Bounds() != nil {
		t.Fatal("nil histogram bounds != nil")
	}
}

func TestRegistryCollectRunsCollectors(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pulled")
	n := 0
	r.AddCollector(func() { n++; g.Set(int64(n)) })
	r.Collect()
	r.Collect()
	if g.Value() != 2 || n != 2 {
		t.Fatalf("collector ran %d times, gauge = %d", n, g.Value())
	}
	var nilR *Registry
	nilR.Collect() // must not panic
}

func TestRuntimeMetricsExportCPUSeconds(t *testing.T) {
	r := NewRegistry()
	EnableRuntimeMetrics(r)
	// Burn a little CPU so the runtime's estimate is plausibly nonzero,
	// then collect via a snapshot.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i % 7
	}
	_ = x
	r.Collect()
	snap := r.Snapshot()
	v, ok := snap["go_cpu_seconds_total"]
	if !ok {
		t.Fatalf("go_cpu_seconds_total missing from snapshot: %v", snap)
	}
	f, ok := v.(float64)
	if !ok || f < 0 {
		t.Fatalf("go_cpu_seconds_total = %v (%T), want float64 >= 0", v, v)
	}
}
