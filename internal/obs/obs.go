// Package obs is the observability substrate of the pipeline: a
// metrics registry (counters, gauges, histograms) with expvar and
// Prometheus-text exposition, a structured hierarchical span tracer
// with a pluggable JSONL sink and sampling for high-frequency spans,
// an optional debug HTTP server that mounts the metrics endpoints and
// net/http/pprof, and a schema-versioned machine-readable run report.
//
// The package is a leaf: it depends on the standard library only, so
// every layer of the pipeline (engine, dep, hybrid, pure, exp, the
// CLIs) can emit telemetry through it without import cycles. All types
// tolerate nil receivers — a nil *Registry hands out nil metrics whose
// methods no-op, and a nil *Tracer hands out nil spans — so
// instrumented code never branches on whether observability is
// enabled.
package obs

import (
	"fmt"
	"strconv"
)

// Attr is one key/value span or report attribute.
type Attr struct {
	Key string
	Val any
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{key, val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{key, val} }

// Float builds a float attribute.
func Float(key string, val float64) Attr { return Attr{key, val} }

// Bool builds a boolean attribute.
func Bool(key string, val bool) Attr { return Attr{key, val} }

// attrValue normalizes an attribute value for JSON emission: integers
// stay integers, floats stay floats, everything else is stringified.
func attrValue(v any) any {
	switch x := v.(type) {
	case string, bool, int64, float64:
		return x
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}

// formatFloat renders a float in the shortest round-trip form, the
// convention of the Prometheus text format.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
