package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestNilMetricsNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter reads nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge reads nonzero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reads nonzero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z") != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); math.Abs(got-109) > 1e-9 {
		t.Fatalf("sum = %v, want 109", got)
	}
	// Cumulative: le=1 -> 2 (0.5 and the boundary value 1), le=2 -> 3,
	// le=4 -> 5, +Inf -> 6.
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want 2", q)
	}
	if q := h.Quantile(0.75); q != 4 {
		t.Fatalf("p75 = %v, want 4", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %v, want +Inf", q)
	}
	if h.Quantile(0.0001) != 1 {
		t.Fatal("tiny quantile must hit the first non-empty bucket")
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// q outside (0,1] is a caller error: NaN, never a bucket bound.
	h := newHistogram([]float64{1, 2})
	h.Observe(1)
	for _, q := range []float64{0, -0.5, 1.0001, 2, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// An empty histogram answers 0 for every valid q (nothing observed),
	// matching the nil receiver.
	empty := newHistogram([]float64{1, 2})
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	// Every observation beyond the last bound: any quantile is +Inf —
	// the histogram honestly reports it cannot bound the value.
	over := newHistogram([]float64{1, 2})
	over.Observe(50)
	over.Observe(100)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := over.Quantile(q); !math.IsInf(got, 1) {
			t.Errorf("overflow-only Quantile(%v) = %v, want +Inf", q, got)
		}
	}
}

func TestRegistryGetOrCreateAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits_total")
	c2 := r.Counter("hits_total")
	if c1 != c2 {
		t.Fatal("same name returned different counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("hits_total")
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix registration races with update races.
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_seconds", 0.001, 0.01, 0.1)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.005)
			}
		}(w)
	}
	wg.Wait()
	if v := r.Counter("c_total").Value(); v != workers*per {
		t.Fatalf("counter = %d, want %d", v, workers*per)
	}
	if v := r.Gauge("g").Value(); v != workers*per {
		t.Fatalf("gauge = %d, want %d", v, workers*per)
	}
	if n := r.Histogram("h_seconds").Count(); n != workers*per {
		t.Fatalf("histogram count = %d, want %d", n, workers*per)
	}
}

func TestSnapshotExpandsHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Histogram(`lat_seconds{stage="x"}`, 1).Observe(0.5)
	snap := r.Snapshot()
	if snap["a_total"] != int64(3) {
		t.Fatalf("a_total = %v", snap["a_total"])
	}
	if snap[`lat_seconds_count{stage="x"}`] != int64(1) {
		t.Fatalf("histogram count missing: %v", snap)
	}
	if snap[`lat_seconds_sum{stage="x"}`] != 0.5 {
		t.Fatalf("histogram sum missing: %v", snap)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("req_total", "requests by stage")
	r.Counter(`req_total{stage="a"}`).Add(2)
	r.Counter(`req_total{stage="b"}`).Add(5)
	r.Gauge("workers").Set(4)
	r.Histogram("lat_seconds", 0.1, 1).Observe(0.05)
	r.Histogram("lat_seconds").Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP req_total requests by stage
# TYPE req_total counter
req_total{stage="a"} 2
req_total{stage="b"} 5
# TYPE workers gauge
workers 4
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 2.05
lat_seconds_count 2
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestMergeLabels(t *testing.T) {
	if got := mergeLabels("", `le="1"`); got != `{le="1"}` {
		t.Fatalf("empty labels: %s", got)
	}
	if got := mergeLabels(`{stage="x"}`, `le="1"`); got != `{stage="x",le="1"}` {
		t.Fatalf("merged labels: %s", got)
	}
}
