package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// This file is the request-identity substrate: W3C trace-context
// (traceparent) parsing and formatting, request-ID generation, and the
// context.Context plumbing that carries one request's identity from
// the HTTP edge through the scheduler into engine runs, spans, logs
// and flight-recorder events. Everything here is allocation-light and
// dependency-free so any layer may stamp records with the active
// identity without caring where it came from.

// TraceContext is one hop of a W3C trace-context chain: the 16-byte
// trace ID shared by every participant of a distributed request, the
// 8-byte span ID of the current hop, and the trace flags (bit 0 =
// sampled). IDs are lowercase hex strings, validated on parse.
type TraceContext struct {
	TraceID string // 32 lowercase hex chars, not all-zero
	SpanID  string // 16 lowercase hex chars, not all-zero
	Flags   byte
}

// Valid reports whether both IDs are well-formed and non-zero.
func (tc TraceContext) Valid() bool {
	return validHexID(tc.TraceID, 32) && validHexID(tc.SpanID, 16)
}

// Traceparent renders the context in the W3C header form
// "00-<trace-id>-<span-id>-<flags>".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// Child returns a context with the same trace ID and flags but a fresh
// span ID — the identity this process propagates downstream, parenting
// its own work under the caller's trace.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = NewSpanID()
	return tc
}

// ParseTraceparent parses a W3C traceparent header. Unknown (future)
// versions are accepted as long as the version-00 prefix fields parse,
// per the spec's forward-compatibility rule; a malformed header
// returns ok=false and the caller should mint a fresh context.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	// version(2) - trace-id(32) - span-id(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	ver := h[:2]
	if !isHex(ver) || ver == "ff" {
		return TraceContext{}, false
	}
	if ver == "00" && len(h) != 55 {
		return TraceContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: h[3:35], SpanID: h[36:52]}
	flags := h[53:55]
	if !tc.Valid() || !isHex(flags) {
		return TraceContext{}, false
	}
	b, err := hex.DecodeString(flags)
	if err != nil {
		return TraceContext{}, false
	}
	tc.Flags = b[0]
	return tc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func validHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false // all-zero IDs are invalid per the W3C spec
}

// randHex returns n/2 random bytes as n lowercase hex chars. The
// crypto/rand reader never fails on supported platforms; on the
// (theoretical) failure path the ID degrades to a counter-free but
// still non-zero constant rather than panicking in a telemetry path.
func randHex(n int) string {
	b := make([]byte, n/2)
	if _, err := rand.Read(b); err != nil {
		return strings.Repeat("f", n)
	}
	s := hex.EncodeToString(b)
	// An all-zero ID is invalid; flip a nibble in the astronomically
	// unlikely draw.
	if !validHexID(s, n) {
		s = "1" + s[1:]
	}
	return s
}

// NewTraceID mints a random 16-byte trace ID.
func NewTraceID() string { return randHex(32) }

// NewSpanID mints a random 8-byte span ID.
func NewSpanID() string { return randHex(16) }

// NewTraceContext mints a fresh sampled trace context — the root of a
// new trace, used when a request arrives without a traceparent.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 0x01}
}

// NewRequestID mints a request ID ("req-" + 8 random bytes of hex):
// the human-greppable identity echoed in X-Request-ID, access-log
// lines, job records and flight-recorder events.
func NewRequestID() string { return "req-" + randHex(16) }

// ReqInfo is one request's identity as carried through
// context.Context: the request ID and the trace context of the hop
// this process performs on the request's behalf.
type ReqInfo struct {
	RequestID string
	Trace     TraceContext
}

// Attrs renders the identity as span attributes (empty fields
// omitted), so spans of request-scoped work are findable by the same
// IDs as logs and events.
func (ri ReqInfo) Attrs() []Attr {
	var attrs []Attr
	if ri.RequestID != "" {
		attrs = append(attrs, Str("request_id", ri.RequestID))
	}
	if ri.Trace.TraceID != "" {
		attrs = append(attrs, Str("trace_id", ri.Trace.TraceID))
	}
	return attrs
}

type reqInfoKey struct{}

// WithReqInfo returns a context carrying the request identity.
func WithReqInfo(ctx context.Context, ri ReqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// ReqInfoFrom extracts the request identity placed by WithReqInfo;
// ok is false when the context carries none.
func ReqInfoFrom(ctx context.Context) (ReqInfo, bool) {
	if ctx == nil {
		return ReqInfo{}, false
	}
	ri, ok := ctx.Value(reqInfoKey{}).(ReqInfo)
	return ri, ok
}
