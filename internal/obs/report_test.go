package obs

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *RunReport {
	r := &RunReport{
		Schema: ReportSchema,
		Tool:   "rsnbench",
		Config: ReportConfig{Table: "main", Mode: "exact", Seed: 1, Circuits: 2, Specs: 4, TargetScanFFs: 60},
		Benchmarks: []BenchmarkReport{
			{Name: "BasicSCB", Family: "Bastion", Registers: 12, ScanFFs: 60, Muxes: 6,
				Runs: 3, AvgViolatingRegs: 2.5, AvgPureChanges: 2, AvgHybridChanges: 1, AvgTotalChanges: 3,
				AvgDepNS: 5e6, AvgTotalNS: 6e6},
			{Name: "Mingle", Family: "Mingle", Registers: 20, ScanFFs: 80, Muxes: 9,
				Runs: 2, Errors: 1, AvgPureChanges: 1, AvgTotalChanges: 4},
		},
		Stages: []StageReport{
			{Name: "one-cycle", WallNS: 4e6, Calls: 2, Queries: 640},
			{Name: "resolve", WallNS: 1e6, Calls: 2, Queries: 7, Items: 30},
		},
	}
	r.ComputeTotals()
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Totals != r.Totals || len(got.Benchmarks) != 2 || len(got.Stages) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Benchmarks[0] != r.Benchmarks[0] || got.Stages[1] != r.Stages[1] {
		t.Fatal("rows differ after round trip")
	}
}

func TestComputeTotals(t *testing.T) {
	r := sampleReport()
	tt := r.Totals
	if tt.Benchmarks != 2 || tt.Runs != 5 || tt.Errors != 1 {
		t.Fatalf("counts: %+v", tt)
	}
	if tt.SumAvgPureChanges != 3 || tt.SumAvgTotalChanges != 7 {
		t.Fatalf("change sums: %+v", tt)
	}
	if tt.StageWallNS != 5e6 {
		t.Fatalf("stage wall: %d", tt.StageWallNS)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RunReport)
		want   string
	}{
		{"wrong schema", func(r *RunReport) { r.Schema = "rsnsec.run-report/v0" }, "schema"},
		{"missing tool", func(r *RunReport) { r.Tool = "" }, "missing tool"},
		{"empty benchmark name", func(r *RunReport) { r.Benchmarks[0].Name = "" }, "empty name"},
		{"duplicate benchmark", func(r *RunReport) { r.Benchmarks[1].Name = "BasicSCB" }, "duplicate benchmark"},
		{"negative counter", func(r *RunReport) { r.Benchmarks[0].Runs = -1; r.ComputeTotals() }, "negative"},
		{"negative average", func(r *RunReport) { r.Benchmarks[0].AvgTotalChanges = -1; r.ComputeTotals() }, "negative average"},
		{"duplicate stage", func(r *RunReport) { r.Stages[1].Name = "one-cycle" }, "duplicate stage"},
		{"negative stage counter", func(r *RunReport) { r.Stages[0].Queries = -1 }, "negative counter"},
		{"stale totals", func(r *RunReport) { r.Totals.Runs++ }, "inconsistent"},
	}
	for _, c := range cases {
		r := sampleReport()
		c.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a bad report", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateIgnoresStartedAt(t *testing.T) {
	r := sampleReport()
	r.StartedAt = "2026-08-06T00:00:00Z"
	if err := r.Validate(); err != nil {
		t.Fatalf("wall-clock stamp must not affect validity: %v", err)
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("not json")); err == nil {
		t.Fatal("parsed garbage")
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus","tool":"x","config":{},"totals":{}}`)); err == nil {
		t.Fatal("accepted unknown schema")
	}
}
