// Package slo evaluates declarative service-level objectives against
// the in-process metrics history (internal/obs/series). Objectives are
// loaded from a schema-versioned JSON config, evaluated with
// multi-window burn-rate rules (a fast window that reacts and a slow
// window that confirms, SRE-style: an alert needs the budget burning
// in both), and surfaced three ways — a status document on /v1/slo,
// re-exported slo_* gauges in /metrics, and an optional /readyz gate.
package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ConfigSchema is the objectives-config schema identifier. Bump the
// suffix on any incompatible field change; readers reject unknown
// versions.
const ConfigSchema = "rsnsec.slo-config/v1"

// Objective types.
const (
	// TypeLatency judges a histogram family: good events are
	// observations at or under ThresholdSeconds.
	TypeLatency = "latency"
	// TypeErrorRate judges two counter families: bad over good+bad.
	TypeErrorRate = "error_rate"
	// TypeSaturation judges a gauge series: bad samples exceed Limit.
	TypeSaturation = "saturation"
)

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in status documents and gauge
	// labels. Must be unique within a config.
	Name string `json:"name"`
	// Type is one of latency, error_rate, saturation.
	Type string `json:"type"`

	// Metric names the judged family: a histogram for latency, a gauge
	// series for saturation. Unused for error_rate.
	Metric string `json:"metric,omitempty"`
	// ThresholdSeconds is the latency objective's good/bad boundary.
	// Judged against histogram bucket bounds: observations are counted
	// good up to the largest bucket bound <= the threshold, so pick a
	// threshold on (or above) a bucket boundary.
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`

	// GoodMetric / BadMetric are the error_rate objective's counter
	// families (e.g. serve_jobs_completed_total / serve_jobs_failed_total).
	GoodMetric string `json:"good_metric,omitempty"`
	BadMetric  string `json:"bad_metric,omitempty"`

	// Limit is the saturation objective's gauge ceiling; samples above
	// it are bad events.
	Limit float64 `json:"limit,omitempty"`

	// Target is the objective's good-event ratio on [0, 1), e.g. 0.99.
	Target float64 `json:"target"`

	// FastWindowMS / SlowWindowMS are the burn-rate windows; defaults
	// 5m / 30m. Both must fit the series store's retention.
	FastWindowMS int64 `json:"fast_window_ms,omitempty"`
	SlowWindowMS int64 `json:"slow_window_ms,omitempty"`

	// BurnThreshold is the burn rate at or above which (in both
	// windows) the objective is breaching; default 1 (burning the
	// budget exactly as fast as the target allows).
	BurnThreshold float64 `json:"burn_threshold,omitempty"`

	// GateReady couples the objective to /readyz: while breaching, the
	// daemon reports not-ready so load balancers drain it.
	GateReady bool `json:"gate_ready,omitempty"`
}

// FastWindow returns the effective fast window.
func (o *Objective) FastWindow() time.Duration {
	if o.FastWindowMS > 0 {
		return time.Duration(o.FastWindowMS) * time.Millisecond
	}
	return 5 * time.Minute
}

// SlowWindow returns the effective slow window.
func (o *Objective) SlowWindow() time.Duration {
	if o.SlowWindowMS > 0 {
		return time.Duration(o.SlowWindowMS) * time.Millisecond
	}
	return 30 * time.Minute
}

// Burn returns the effective burn threshold.
func (o *Objective) Burn() float64 {
	if o.BurnThreshold > 0 {
		return o.BurnThreshold
	}
	return 1
}

// Config is the rsnsec.slo-config/v1 document.
type Config struct {
	Schema     string      `json:"schema"`
	Objectives []Objective `json:"objectives"`
}

// Validate checks the config's structural invariants.
func (c *Config) Validate() error {
	if c == nil {
		return fmt.Errorf("slo config: nil")
	}
	if c.Schema != ConfigSchema {
		return fmt.Errorf("slo config: schema %q, this reader wants %q", c.Schema, ConfigSchema)
	}
	if len(c.Objectives) == 0 {
		return fmt.Errorf("slo config: no objectives")
	}
	seen := make(map[string]bool)
	for i := range c.Objectives {
		o := &c.Objectives[i]
		if o.Name == "" {
			return fmt.Errorf("slo config: objective %d: empty name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("slo config: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
		if o.Target < 0 || o.Target >= 1 {
			return fmt.Errorf("slo config: objective %q: target %v, want [0, 1)", o.Name, o.Target)
		}
		if o.FastWindowMS < 0 || o.SlowWindowMS < 0 || o.BurnThreshold < 0 {
			return fmt.Errorf("slo config: objective %q: negative window or burn threshold", o.Name)
		}
		if o.FastWindow() > o.SlowWindow() {
			return fmt.Errorf("slo config: objective %q: fast window %s exceeds slow window %s",
				o.Name, o.FastWindow(), o.SlowWindow())
		}
		switch o.Type {
		case TypeLatency:
			if o.Metric == "" {
				return fmt.Errorf("slo config: objective %q: latency needs metric", o.Name)
			}
			if o.ThresholdSeconds <= 0 {
				return fmt.Errorf("slo config: objective %q: latency needs threshold_seconds > 0", o.Name)
			}
		case TypeErrorRate:
			if o.GoodMetric == "" || o.BadMetric == "" {
				return fmt.Errorf("slo config: objective %q: error_rate needs good_metric and bad_metric", o.Name)
			}
		case TypeSaturation:
			if o.Metric == "" {
				return fmt.Errorf("slo config: objective %q: saturation needs metric", o.Name)
			}
			if o.Limit <= 0 {
				return fmt.Errorf("slo config: objective %q: saturation needs limit > 0", o.Name)
			}
		default:
			return fmt.Errorf("slo config: objective %q: unknown type %q (want %s, %s or %s)",
				o.Name, o.Type, TypeLatency, TypeErrorRate, TypeSaturation)
		}
	}
	return nil
}

// MaxWindow returns the longest window any objective uses — the
// minimum retention the series store must carry.
func (c *Config) MaxWindow() time.Duration {
	var max time.Duration
	for i := range c.Objectives {
		if w := c.Objectives[i].SlowWindow(); w > max {
			max = w
		}
	}
	return max
}

// ReadConfig parses and validates an objectives config.
func ReadConfig(rd io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("slo config: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadConfig reads and validates an objectives config file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slo config: %w", err)
	}
	defer f.Close()
	c, err := ReadConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WriteConfig serializes the config as indented JSON.
func WriteConfig(w io.Writer, c *Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
