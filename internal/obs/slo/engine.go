package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/series"
)

// StatusSchema is the slo-status document schema identifier. Bump the
// suffix on any incompatible field change; readers reject unknown
// versions.
const StatusSchema = "rsnsec.slo-status/v1"

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"`
	Target float64 `json:"target"`

	// FastWindowMS / SlowWindowMS / BurnThreshold echo the evaluated
	// rule, so a status document is interpretable on its own.
	FastWindowMS  int64   `json:"fast_window_ms"`
	SlowWindowMS  int64   `json:"slow_window_ms"`
	BurnThreshold float64 `json:"burn_threshold"`

	// NoData is true when neither window held any events or samples —
	// the objective is unjudged, burn rates read zero, and Breaching is
	// false (an idle daemon is not failing its SLOs).
	NoData bool `json:"no_data"`

	// BurnFast / BurnSlow are the windowed burn rates: the bad-event
	// fraction divided by the budget fraction (1 - target). Burn 1
	// spends the budget exactly as fast as the target allows; burn 10
	// spends it 10x faster.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`

	// Events / BadEvents count the slow window's judged events.
	Events    int64 `json:"events"`
	BadEvents int64 `json:"bad_events"`

	// ErrorBudgetRemaining is 1 - BurnSlow clamped to [0, 1]: the
	// slow-window budget share still unspent.
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`

	// Breaching is true when both windows burn at or above the
	// threshold — fast to react, slow to confirm.
	Breaching bool `json:"breaching"`

	// GateReady echoes whether this objective couples to /readyz.
	GateReady bool `json:"gate_ready,omitempty"`
}

// Status is the rsnsec.slo-status/v1 document served on /v1/slo.
type Status struct {
	Schema string `json:"schema"`
	// EvaluatedUnixMS stamps the evaluation time.
	EvaluatedUnixMS int64 `json:"evaluated_unix_ms"`
	// Objectives hold one entry per configured objective, in config
	// order.
	Objectives []ObjectiveStatus `json:"objectives"`
	// Breaching is true when any objective is breaching.
	Breaching bool `json:"breaching"`
}

// Validate checks the document's structural invariants.
func (s *Status) Validate() error {
	if s == nil {
		return fmt.Errorf("slo status: nil")
	}
	if s.Schema != StatusSchema {
		return fmt.Errorf("slo status: schema %q, this reader wants %q", s.Schema, StatusSchema)
	}
	any := false
	seen := make(map[string]bool)
	for i := range s.Objectives {
		o := &s.Objectives[i]
		if o.Name == "" {
			return fmt.Errorf("slo status: objective %d: empty name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("slo status: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
		if o.Type != TypeLatency && o.Type != TypeErrorRate && o.Type != TypeSaturation {
			return fmt.Errorf("slo status: objective %q: unknown type %q", o.Name, o.Type)
		}
		if o.Target < 0 || o.Target >= 1 {
			return fmt.Errorf("slo status: objective %q: target %v, want [0, 1)", o.Name, o.Target)
		}
		if o.BurnFast < 0 || o.BurnSlow < 0 ||
			math.IsNaN(o.BurnFast) || math.IsNaN(o.BurnSlow) ||
			math.IsInf(o.BurnFast, 0) || math.IsInf(o.BurnSlow, 0) {
			return fmt.Errorf("slo status: objective %q: invalid burn rates (%v, %v)", o.Name, o.BurnFast, o.BurnSlow)
		}
		if o.ErrorBudgetRemaining < 0 || o.ErrorBudgetRemaining > 1 {
			return fmt.Errorf("slo status: objective %q: budget remaining %v outside [0, 1]", o.Name, o.ErrorBudgetRemaining)
		}
		if o.BadEvents < 0 || o.Events < 0 || o.BadEvents > o.Events {
			return fmt.Errorf("slo status: objective %q: bad events %d outside [0, %d]", o.Name, o.BadEvents, o.Events)
		}
		if o.Breaching {
			any = true
		}
	}
	if s.Breaching != any {
		return fmt.Errorf("slo status: breaching flag %v inconsistent with objectives", s.Breaching)
	}
	return nil
}

// WriteStatus serializes the document as indented JSON.
func WriteStatus(w io.Writer, s *Status) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadStatus parses and validates an slo-status document.
func ReadStatus(rd io.Reader) (*Status, error) {
	var s Status
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("slo status: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Engine evaluates a config against a series store and re-exports the
// results as registry gauges. Evaluations are memoized for one store
// sampling interval: the underlying data only changes when a sample
// lands, so hammering /v1/slo (or /readyz with a gating objective)
// costs one window scan per interval, not per request.
type Engine struct {
	cfg   *Config
	store *series.Store
	now   func() time.Time // collector clock; a test seam

	mu     sync.Mutex
	last   *Status
	lastAt time.Time

	burnG   map[string]*obs.Gauge
	budgetG map[string]*obs.Gauge
}

// NewEngine wires an engine over a validated config and a series
// store, registering per-objective gauges in reg:
//
//	slo_burn_rate{objective="..."}               slow-window burn x1000
//	slo_error_budget_remaining{objective="..."}  budget share x1000
//
// Both are scaled by 1000 because registry gauges are int64-valued
// (burn 1500 = 1.5x budget speed; remaining 250 = 25% left).
func NewEngine(cfg *Config, store *series.Store, reg *obs.Registry) (*Engine, error) {
	if cfg == nil || store == nil {
		return nil, fmt.Errorf("slo: engine needs config and series store")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w := cfg.MaxWindow(); w > store.Retention() {
		return nil, fmt.Errorf("slo: objective window %s exceeds series retention %s — raise -history-retention",
			w, store.Retention())
	}
	e := &Engine{
		cfg:     cfg,
		store:   store,
		now:     time.Now,
		burnG:   make(map[string]*obs.Gauge),
		budgetG: make(map[string]*obs.Gauge),
	}
	if reg != nil {
		reg.SetHelp("slo_burn_rate",
			"Slow-window SLO burn rate x1000 (1000 = burning the error budget exactly at target speed).")
		reg.SetHelp("slo_error_budget_remaining",
			"Slow-window SLO error budget remaining x1000 (1000 = untouched, 0 = spent).")
		for i := range cfg.Objectives {
			name := cfg.Objectives[i].Name
			e.burnG[name] = reg.Gauge(fmt.Sprintf("slo_burn_rate{objective=%q}", name))
			e.budgetG[name] = reg.Gauge(fmt.Sprintf("slo_error_budget_remaining{objective=%q}", name))
			e.budgetG[name].Set(1000)
		}
		reg.AddCollector(func() { e.Evaluate(e.now()) })
	}
	return e, nil
}

// Config returns the engine's objectives config.
func (e *Engine) Config() *Config { return e.cfg }

// Evaluate returns the objectives' state as of now, reusing the
// previous evaluation when it is younger than one sampling interval.
func (e *Engine) Evaluate(now time.Time) *Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last != nil && now.Sub(e.lastAt) >= 0 && now.Sub(e.lastAt) < e.store.Interval() {
		return e.last
	}
	st := &Status{Schema: StatusSchema, EvaluatedUnixMS: now.UnixMilli()}
	for i := range e.cfg.Objectives {
		o := &e.cfg.Objectives[i]
		os := e.evalObjective(o, now)
		st.Objectives = append(st.Objectives, os)
		if os.Breaching {
			st.Breaching = true
		}
		if g := e.burnG[o.Name]; g != nil {
			g.Set(int64(os.BurnSlow * 1000))
		}
		if g := e.budgetG[o.Name]; g != nil {
			g.Set(int64(os.ErrorBudgetRemaining * 1000))
		}
	}
	e.last, e.lastAt = st, now
	return st
}

// Breaching reports whether any ready-gating objective is currently
// breaching — the /readyz coupling.
func (e *Engine) Breaching(now time.Time) bool {
	st := e.Evaluate(now)
	for i := range st.Objectives {
		if st.Objectives[i].GateReady && st.Objectives[i].Breaching {
			return true
		}
	}
	return false
}

func (e *Engine) evalObjective(o *Objective, now time.Time) ObjectiveStatus {
	os := ObjectiveStatus{
		Name:          o.Name,
		Type:          o.Type,
		Target:        o.Target,
		FastWindowMS:  o.FastWindow().Milliseconds(),
		SlowWindowMS:  o.SlowWindow().Milliseconds(),
		BurnThreshold: o.Burn(),
		GateReady:     o.GateReady,
	}
	fastBad, fastTotal, okF := e.window(o, o.FastWindow(), now)
	slowBad, slowTotal, okS := e.window(o, o.SlowWindow(), now)
	if (!okF && !okS) || (fastTotal == 0 && slowTotal == 0) {
		os.NoData = true
		os.ErrorBudgetRemaining = 1
		return os
	}
	budget := 1 - o.Target
	os.BurnFast = burn(fastBad, fastTotal, budget)
	os.BurnSlow = burn(slowBad, slowTotal, budget)
	os.Events, os.BadEvents = slowTotal, slowBad
	os.ErrorBudgetRemaining = math.Max(0, math.Min(1, 1-os.BurnSlow))
	os.Breaching = os.BurnFast >= o.Burn() && os.BurnSlow >= o.Burn()
	return os
}

// burn converts a bad/total ratio into a burn rate against the budget
// fraction, clamped so int64 gauge scaling stays sane.
func burn(bad, total int64, budget float64) float64 {
	if total <= 0 || budget <= 0 {
		return 0
	}
	b := float64(bad) / float64(total) / budget
	if b > 1e6 {
		b = 1e6
	}
	return b
}

// window counts one objective's (bad, total) events over a trailing
// window.
func (e *Engine) window(o *Objective, w time.Duration, now time.Time) (bad, total int64, ok bool) {
	switch o.Type {
	case TypeLatency:
		d, ok := e.store.FamilyHistogramWindow(o.Metric, w, now)
		if !ok {
			return 0, 0, false
		}
		var n int64
		for _, c := range d.Counts {
			n += c
		}
		good := d.CountAtMost(o.ThresholdSeconds)
		return n - good, n, true
	case TypeErrorRate:
		g, okG := e.store.CounterWindowDelta(o.GoodMetric, w, now)
		b, okB := e.store.CounterWindowDelta(o.BadMetric, w, now)
		if !okG && !okB {
			return 0, 0, false
		}
		return int64(b), int64(g + b), true
	case TypeSaturation:
		gw, ok := e.store.GaugeWindowStats(o.Metric, o.Limit, w, now)
		if !ok {
			return 0, 0, false
		}
		return int64(gw.AboveLimit), int64(gw.Samples), true
	}
	return 0, 0, false
}
