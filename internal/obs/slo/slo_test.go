package slo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/series"
)

var t0 = time.Unix(1_700_000_000, 0)

func validConfig() *Config {
	return &Config{
		Schema: ConfigSchema,
		Objectives: []Objective{
			{Name: "latency", Type: TypeLatency, Metric: "lat_seconds",
				ThresholdSeconds: 0.1, Target: 0.9,
				FastWindowMS: 5_000, SlowWindowMS: 30_000, BurnThreshold: 2},
			{Name: "errors", Type: TypeErrorRate,
				GoodMetric: "ok_total", BadMetric: "bad_total", Target: 0.9,
				FastWindowMS: 5_000, SlowWindowMS: 30_000, BurnThreshold: 2, GateReady: true},
			{Name: "queue", Type: TypeSaturation, Metric: "depth", Limit: 5,
				Target: 0.5, FastWindowMS: 5_000, SlowWindowMS: 30_000, BurnThreshold: 1},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	c := validConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.MaxWindow(); got != 30*time.Second {
		t.Fatalf("max window = %v", got)
	}
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Schema = "nope" }, "schema"},
		{func(c *Config) { c.Objectives = nil }, "no objectives"},
		{func(c *Config) { c.Objectives[1].Name = "latency" }, "duplicate"},
		{func(c *Config) { c.Objectives[0].Target = 1 }, "target"},
		{func(c *Config) { c.Objectives[0].Metric = "" }, "needs metric"},
		{func(c *Config) { c.Objectives[0].ThresholdSeconds = 0 }, "threshold_seconds"},
		{func(c *Config) { c.Objectives[1].BadMetric = "" }, "bad_metric"},
		{func(c *Config) { c.Objectives[2].Limit = 0 }, "limit"},
		{func(c *Config) { c.Objectives[0].Type = "weird" }, "unknown type"},
		{func(c *Config) { c.Objectives[0].FastWindowMS = 60_000 }, "exceeds slow window"},
	}
	for i, tc := range cases {
		c := validConfig()
		tc.mutate(c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: err = %v, want %q", i, err, tc.want)
		}
	}
}

func TestConfigReadRejectsUnknownFields(t *testing.T) {
	doc := `{"schema":"rsnsec.slo-config/v1","objectives":[{"name":"x","type":"latency","metric":"m","threshold_seconds":0.1,"target":0.9,"typo_field":1}]}`
	if _, err := ReadConfig(strings.NewReader(doc)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// sloFixture builds a series store + engine over real registry metrics
// and returns the mutators the tests drive.
type sloFixture struct {
	reg   *obs.Registry
	store *series.Store
	eng   *Engine
	lat   *obs.Histogram
	okC   *obs.Counter
	badC  *obs.Counter
	depth *obs.Gauge
}

func newFixture(t *testing.T) *sloFixture {
	t.Helper()
	reg := obs.NewRegistry()
	f := &sloFixture{
		reg:   reg,
		lat:   reg.Histogram("lat_seconds", 0.01, 0.1, 1),
		okC:   reg.Counter("ok_total"),
		badC:  reg.Counter("bad_total"),
		depth: reg.Gauge("depth"),
	}
	f.store = series.NewStore(reg, series.Config{Interval: time.Second, Retention: time.Minute})
	eng, err := NewEngine(validConfig(), f.store, reg)
	if err != nil {
		t.Fatal(err)
	}
	f.eng = eng
	return f
}

func TestEngineNoDataAndHealthy(t *testing.T) {
	f := newFixture(t)
	now := t0

	// No samples at all: every objective is unjudged.
	st := f.eng.Evaluate(now)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, o := range st.Objectives {
		if !o.NoData || o.Breaching || o.ErrorBudgetRemaining != 1 {
			t.Fatalf("idle objective = %+v", o)
		}
	}

	// Healthy traffic: fast requests, no errors, shallow queue.
	for i := 0; i < 30; i++ {
		f.lat.Observe(0.005)
		f.okC.Inc()
		f.depth.Set(1)
		now = now.Add(time.Second)
		f.store.Sample(now)
	}
	st = f.eng.Evaluate(now)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Breaching {
		t.Fatalf("healthy status breaching: %+v", st)
	}
	for _, o := range st.Objectives {
		if o.NoData || o.BurnFast != 0 || o.BurnSlow != 0 || o.ErrorBudgetRemaining != 1 {
			t.Fatalf("healthy objective = %+v", o)
		}
	}
}

func TestEngineBreachingAndGauges(t *testing.T) {
	f := newFixture(t)
	now := t0
	// Pin the collector clock to the fixture timeline so the /metrics
	// exposition below evaluates against the same windows the manual
	// samples fill (not the wall clock).
	f.eng.now = func() time.Time { return now }
	// Everything bad: slow requests, all errors, saturated queue.
	for i := 0; i < 30; i++ {
		f.lat.Observe(0.5) // over the 0.1s threshold
		f.badC.Inc()
		f.depth.Set(50) // over limit 5
		now = now.Add(time.Second)
		f.store.Sample(now)
	}
	st := f.eng.Evaluate(now)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if !st.Breaching {
		t.Fatalf("status not breaching: %+v", st)
	}
	for _, o := range st.Objectives {
		// 100% bad against a 10% (or 50%) budget: burn 10 (or 2), over
		// each threshold in both windows.
		if !o.Breaching || o.BurnFast < o.BurnThreshold || o.BurnSlow < o.BurnThreshold {
			t.Fatalf("objective %s = %+v", o.Name, o)
		}
		if o.ErrorBudgetRemaining != 0 {
			t.Fatalf("objective %s budget = %v, want 0", o.Name, o.ErrorBudgetRemaining)
		}
	}
	// gate_ready on "errors" couples to readiness.
	if !f.eng.Breaching(now) {
		t.Fatal("ready gate not breaching")
	}

	// The re-exported gauges carry the x1000 scaling.
	var sb strings.Builder
	if err := f.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `slo_burn_rate{objective="errors"} 10000`) {
		t.Fatalf("burn gauge missing/wrong:\n%s", out)
	}
	if !strings.Contains(out, `slo_error_budget_remaining{objective="errors"} 0`) {
		t.Fatalf("budget gauge missing/wrong:\n%s", out)
	}
}

func TestEngineFastOnlySpikeDoesNotBreach(t *testing.T) {
	f := newFixture(t)
	now := t0
	// 25s of good traffic, then a 5s error spike: the fast window (5s)
	// burns hot but the slow window (30s) stays under threshold 2
	// (5/30 bad against a 10% budget = burn ~1.67).
	for i := 0; i < 25; i++ {
		f.okC.Inc()
		now = now.Add(time.Second)
		f.store.Sample(now)
	}
	for i := 0; i < 5; i++ {
		f.badC.Inc()
		now = now.Add(time.Second)
		f.store.Sample(now)
	}
	st := f.eng.Evaluate(now)
	var errObj *ObjectiveStatus
	for i := range st.Objectives {
		if st.Objectives[i].Name == "errors" {
			errObj = &st.Objectives[i]
		}
	}
	if errObj.BurnFast < errObj.BurnThreshold {
		t.Fatalf("fast burn = %v, expected the spike to burn hot", errObj.BurnFast)
	}
	if errObj.BurnSlow >= errObj.BurnThreshold {
		t.Fatalf("slow burn = %v, expected the long window to absorb the spike", errObj.BurnSlow)
	}
	if errObj.Breaching {
		t.Fatal("fast-only spike must not breach the multi-window rule")
	}
	if f.eng.Breaching(now) {
		t.Fatal("ready gate flipped on a fast-only spike")
	}
}

func TestEngineMemoizesPerInterval(t *testing.T) {
	f := newFixture(t)
	now := t0
	f.okC.Inc()
	f.store.Sample(now)
	st1 := f.eng.Evaluate(now)
	st2 := f.eng.Evaluate(now.Add(100 * time.Millisecond))
	if st1 != st2 {
		t.Fatal("evaluation within one interval not memoized")
	}
	st3 := f.eng.Evaluate(now.Add(2 * time.Second))
	if st1 == st3 {
		t.Fatal("evaluation past the interval still memoized")
	}
}

func TestEngineRejectsWindowBeyondRetention(t *testing.T) {
	reg := obs.NewRegistry()
	st := series.NewStore(reg, series.Config{Interval: time.Second, Retention: 10 * time.Second})
	cfg := validConfig() // slow windows: 30s > 10s retention
	if _, err := NewEngine(cfg, st, reg); err == nil || !strings.Contains(err.Error(), "retention") {
		t.Fatalf("err = %v, want retention complaint", err)
	}
}

func TestStatusRoundTripAndRejects(t *testing.T) {
	f := newFixture(t)
	now := t0
	f.okC.Inc()
	f.depth.Set(1)
	f.lat.Observe(0.005)
	f.store.Sample(now.Add(time.Second))
	st := f.eng.Evaluate(now.Add(time.Second))

	var buf bytes.Buffer
	if err := WriteStatus(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStatus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objectives) != 3 {
		t.Fatalf("round trip objectives = %d", len(back.Objectives))
	}

	bad := *st
	bad.Schema = "rsnsec.slo-status/v0"
	buf.Reset()
	_ = WriteStatus(&buf, &bad)
	if _, err := ReadStatus(&buf); err == nil {
		t.Fatal("unknown schema accepted")
	}
	bad2 := *st
	bad2.Breaching = !bad2.Breaching
	if err := bad2.Validate(); err == nil {
		t.Fatal("inconsistent breaching flag accepted")
	}
}

func TestConfigRoundTripFile(t *testing.T) {
	c := validConfig()
	var buf bytes.Buffer
	if err := WriteConfig(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objectives) != 3 || back.Objectives[1].GateReady != true {
		t.Fatalf("round trip = %+v", back)
	}
}
