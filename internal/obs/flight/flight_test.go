package flight

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestRingWrapKeepsLatest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Cat: "sched", Name: "enqueue", Detail: string(rune('a' + i))})
	}
	evs := r.Snapshot("sched")
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Detail != "g" || evs[3].Detail != "j" {
		t.Errorf("retained window = %q..%q, want g..j", evs[0].Detail, evs[3].Detail)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestCategoriesIsolateAndMerge(t *testing.T) {
	r := New(2)
	r.Record(Event{Cat: "job", Name: "start", Job: "a1"})
	r.Record(Event{Cat: "store", Name: "miss"})
	r.Record(Event{Cat: "job", Name: "done", Job: "a1"})
	// The store ring must not have been evicted by job traffic.
	if got := r.Snapshot("store"); len(got) != 1 || got[0].Name != "miss" {
		t.Errorf("store ring = %+v", got)
	}
	all := r.Snapshot("")
	if len(all) != 3 || all[0].Name != "start" || all[1].Name != "miss" || all[2].Name != "done" {
		t.Errorf("merged order = %+v", all)
	}
	if cats := r.Categories(); len(cats) != 2 || cats[0] != "job" || cats[1] != "store" {
		t.Errorf("categories = %v", cats)
	}
	if got := r.ForJob("a1"); len(got) != 2 {
		t.Errorf("ForJob = %+v", got)
	}
	if got := r.Recent(2); len(got) != 2 || got[1].Name != "done" {
		t.Errorf("Recent = %+v", got)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Record(Event{Cat: "job", Name: "x"})
	if r.Snapshot("") != nil || r.Categories() != nil || r.Dropped() != 0 {
		t.Error("nil recorder leaked state")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cat := []string{"job", "sched", "store"}[g%3]
			for i := 0; i < 100; i++ {
				r.Record(Event{Cat: cat, Name: "ev"})
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range r.Categories() {
		total += len(r.Snapshot(c))
	}
	if total == 0 || total > 3*64 {
		t.Errorf("retained %d events", total)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := New(8)
	ri := obs.ReqInfo{RequestID: "req-7", Trace: obs.NewTraceContext()}
	r.Record(Event{Cat: "job", Name: "enqueue", Job: "a1"}.WithReqInfo(ri))
	r.Record(Event{Cat: "sched", Name: "reject"})

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var resp struct {
		Categories []string `json:"categories"`
		Events     []Event  `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(resp.Events) != 2 || resp.Events[0].RequestID != "req-7" || resp.Events[0].TraceID != ri.Trace.TraceID {
		t.Errorf("events = %+v", resp.Events)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?cat=sched&n=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Name != "reject" {
		t.Errorf("filtered events = %+v", resp.Events)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?n=bogus", nil))
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("bad n: code=%d body=%s", rec.Code, rec.Body.String())
	}
}

func TestSnapshotSinceCursor(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Cat: "job", Name: "tick"})
	}
	all := r.Snapshot("")
	if len(all) != 5 || r.LastSeq() != all[4].Seq {
		t.Fatalf("snapshot = %d events, last seq %d", len(all), r.LastSeq())
	}
	mid := all[2].Seq
	tail := r.SnapshotSince("", mid)
	if len(tail) != 2 || tail[0].Seq != all[3].Seq {
		t.Fatalf("since %d = %+v", mid, tail)
	}
	// Cursor at the tip: nothing new.
	if got := r.SnapshotSince("job", r.LastSeq()); len(got) != 0 {
		t.Fatalf("since tip = %+v", got)
	}
	// Cursor older than everything retained: full ring.
	if got := r.SnapshotSince("", 0); len(got) != 5 {
		t.Fatalf("since 0 = %d events", len(got))
	}
	var nilR *Recorder
	if nilR.LastSeq() != 0 || nilR.SnapshotSince("", 0) != nil {
		t.Fatal("nil recorder must no-op")
	}
}

func TestHandlerSinceParam(t *testing.T) {
	r := New(8)
	r.Record(Event{Cat: "job", Name: "first", Job: "a1"})
	r.Record(Event{Cat: "job", Name: "second", Job: "a1"})

	var resp struct {
		LastSeq uint64  `json:"last_seq"`
		Events  []Event `json:"events"`
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.LastSeq == 0 || len(resp.Events) != 2 {
		t.Fatalf("baseline = %+v", resp)
	}

	// Tail from the advertised cursor: only what happened after.
	cursor := resp.LastSeq
	r.Record(Event{Cat: "sched", Name: "third", Job: "a1"})
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		fmt.Sprintf("/debug/events?since=%d", cursor), nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Name != "third" {
		t.Fatalf("tailed events = %+v", resp.Events)
	}
	if resp.LastSeq != cursor+1 {
		t.Fatalf("last_seq = %d, want %d", resp.LastSeq, cursor+1)
	}

	// since composes with the job filter.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		fmt.Sprintf("/debug/events?job=a1&since=%d", cursor), nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Name != "third" {
		t.Fatalf("job-filtered tail = %+v", resp.Events)
	}

	// A malformed cursor is a 400.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?since=-3", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: code=%d", rec.Code)
	}
}
