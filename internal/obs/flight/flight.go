// Package flight is an in-memory flight recorder: fixed-size ring
// buffers of recent operational events (job lifecycle transitions,
// scheduler decisions, store activity), kept cheap enough to record
// unconditionally and served as JSON so a stuck or misbehaving daemon
// is diagnosable in place — no restart, no log-file access, no
// sampling gaps right where the incident is.
//
// The recorder is category-sharded: each category owns its own ring
// and mutex, so job events never contend with store events, and one
// noisy category cannot evict another's history. Record is O(1) with
// a critical section of a few field stores; Snapshot copies out under
// the same short lock. A nil *Recorder no-ops everywhere, matching the
// internal/obs convention that telemetry paths never branch on
// enablement.
package flight

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Event is one recorded occurrence. Seq orders events globally across
// categories (a single atomic counter), so interleavings reconstruct
// exactly even when per-category rings wrap at different rates.
type Event struct {
	Seq  uint64 `json:"seq"`
	Time string `json:"time"` // RFC3339Nano UTC
	Cat  string `json:"cat"`
	Name string `json:"event"`
	// Job, RequestID and TraceID correlate the event with the job
	// record, access log and span tree of the same request.
	Job       string `json:"job,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// Detail carries one short free-form value (a key prefix, an error
	// summary, a queue position).
	Detail string `json:"detail,omitempty"`
}

// ring is one category's fixed-size circular buffer.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int // index of the next write
	count int // total events ever written (saturates reads)
}

// snapshot returns the buffered events, oldest first.
func (r *ring) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]Event, 0, n)
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Recorder is the category-sharded flight recorder.
type Recorder struct {
	size int
	seq  atomic.Uint64
	now  func() time.Time // test seam

	mu    sync.RWMutex
	rings map[string]*ring

	dropped atomic.Uint64 // events lost to ring wrap (diagnostic)
}

// New returns a recorder retaining up to size events per category
// (size <= 0 uses 256).
func New(size int) *Recorder {
	if size <= 0 {
		size = 256
	}
	return &Recorder{size: size, now: time.Now, rings: make(map[string]*ring)}
}

func (r *Recorder) ring(cat string) *ring {
	r.mu.RLock()
	rg := r.rings[cat]
	r.mu.RUnlock()
	if rg != nil {
		return rg
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rg = r.rings[cat]; rg == nil {
		rg = &ring{buf: make([]Event, r.size)}
		r.rings[cat] = rg
	}
	return rg
}

// Record stamps and stores one event. Seq and Time are assigned here;
// callers fill Cat, Name and the correlation fields.
func (r *Recorder) Record(ev Event) {
	if r == nil || ev.Cat == "" {
		return
	}
	ev.Seq = r.seq.Add(1)
	ev.Time = r.now().UTC().Format(time.RFC3339Nano)
	rg := r.ring(ev.Cat)
	rg.mu.Lock()
	if rg.count >= len(rg.buf) {
		r.dropped.Add(1)
	}
	rg.buf[rg.next] = ev
	rg.next = (rg.next + 1) % len(rg.buf)
	rg.count++
	rg.mu.Unlock()
}

// Categories returns the categories that have recorded events, sorted.
func (r *Recorder) Categories() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	cats := make([]string, 0, len(r.rings))
	for c := range r.rings {
		cats = append(cats, c)
	}
	r.mu.RUnlock()
	sort.Strings(cats)
	return cats
}

// Snapshot returns the retained events of one category ("" merges all
// categories), in global Seq order.
func (r *Recorder) Snapshot(cat string) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	if cat != "" {
		r.mu.RLock()
		rg := r.rings[cat]
		r.mu.RUnlock()
		if rg == nil {
			return nil
		}
		return rg.snapshot()
	}
	for _, c := range r.Categories() {
		r.mu.RLock()
		rg := r.rings[c]
		r.mu.RUnlock()
		out = append(out, rg.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recent returns the latest n events across all categories (global Seq
// order, oldest of the n first).
func (r *Recorder) Recent(n int) []Event {
	evs := r.Snapshot("")
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// SnapshotSince returns the retained events with Seq > since, one
// category or all (""), in global Seq order — the incremental-tail
// primitive behind the endpoint's ?since= cursor. A poller that keeps
// the last seq it saw reads only new events on each poll instead of
// re-reading the whole ring; a cursor older than the ring simply
// returns everything retained (the gap shows up in Dropped).
func (r *Recorder) SnapshotSince(cat string, since uint64) []Event {
	evs := r.Snapshot(cat)
	if since == 0 {
		return evs
	}
	// Seq is globally monotone, so within a snapshot (already Seq
	// sorted) the cut is a binary search.
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Seq > since })
	return evs[i:]
}

// LastSeq returns the newest sequence number assigned so far (0 before
// any event): the cursor a poller should resume from.
func (r *Recorder) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// ForJob returns the retained events of one job across all categories.
func (r *Recorder) ForJob(jobID string) []Event {
	var out []Event
	for _, ev := range r.Snapshot("") {
		if ev.Job == jobID {
			out = append(out, ev)
		}
	}
	return out
}

// Dropped returns how many events were overwritten before ever being
// snapshotted — strictly: how many writes landed on a full ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// response is the JSON document served by Handler.
type response struct {
	Categories []string `json:"categories"`
	Dropped    uint64   `json:"dropped"`
	// LastSeq is the newest sequence number assigned so far; pass it
	// back as ?since= to read only what happened after this response.
	LastSeq uint64  `json:"last_seq"`
	Events  []Event `json:"events"`
}

// Handler serves the recorder as JSON (the /debug/events endpoint):
//
//	GET ?cat=sched    one category only
//	GET ?job=a0001-…  one job's events across categories
//	GET ?n=100        at most the latest 100 events
//	GET ?since=42     only events with seq > 42 (incremental tail;
//	                  resume from the previous response's last_seq)
//
// The request's identity middleware runs outside this handler, so the
// recorder itself stays HTTP-agnostic.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp := response{Categories: r.Categories(), Dropped: r.Dropped(), LastSeq: r.LastSeq()}
		var since uint64
		if ss := req.URL.Query().Get("since"); ss != "" {
			v, err := strconv.ParseUint(ss, 10, 64)
			if err != nil {
				http.Error(w, `{"error":"since must be a non-negative integer"}`, http.StatusBadRequest)
				return
			}
			since = v
		}
		switch {
		case req.URL.Query().Get("job") != "":
			resp.Events = r.ForJob(req.URL.Query().Get("job"))
			if since > 0 {
				i := sort.Search(len(resp.Events), func(i int) bool { return resp.Events[i].Seq > since })
				resp.Events = resp.Events[i:]
			}
		default:
			resp.Events = r.SnapshotSince(req.URL.Query().Get("cat"), since)
		}
		if ns := req.URL.Query().Get("n"); ns != "" {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 0 {
				http.Error(w, `{"error":"n must be a non-negative integer"}`, http.StatusBadRequest)
				return
			}
			if len(resp.Events) > n {
				resp.Events = resp.Events[len(resp.Events)-n:]
			}
		}
		if resp.Events == nil {
			resp.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// WithReqInfo copies the request identity of ri into the event's
// correlation fields.
func (ev Event) WithReqInfo(ri obs.ReqInfo) Event {
	ev.RequestID = ri.RequestID
	ev.TraceID = ri.Trace.TraceID
	return ev
}
