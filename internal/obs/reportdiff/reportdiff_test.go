package reportdiff

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

func report(muts ...func(*obs.RunReport)) *obs.RunReport {
	r := &obs.RunReport{
		Schema: obs.ReportSchema,
		Tool:   "rsnbench",
		Benchmarks: []obs.BenchmarkReport{
			{Name: "BasicSCB", Runs: 4, AvgPureChanges: 2, AvgTotalChanges: 5, AvgTotalNS: 1000},
			{Name: "Mingle", Runs: 2, AvgTotalChanges: 3},
		},
		Stages: []obs.StageReport{
			{Name: "one-cycle", WallNS: 100, Queries: 640},
			{Name: "resolve", WallNS: 50, Items: 12},
		},
	}
	for _, m := range muts {
		m(r)
	}
	r.ComputeTotals()
	return r
}

func TestCompareEqual(t *testing.T) {
	d := Compare(report(), report())
	if !d.Empty() {
		t.Fatalf("identical reports differ: %s", d)
	}
	if d.String() != "reports agree" {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestCompareDeltasSortedByRel(t *testing.T) {
	newR := report(func(r *obs.RunReport) {
		r.Benchmarks[0].AvgTotalChanges = 6    // +20%
		r.Benchmarks[0].AvgTotalNS = 3000      // +200%
		r.Stages[1].WallNS = 55                // +10%
		r.Benchmarks[1].AvgHybridChanges = 0.5 // 0 -> 0.5, +Inf
	})
	d := Compare(report(), newR)
	if len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("spurious added/removed: %+v", d)
	}
	if len(d.Deltas) != 4 {
		t.Fatalf("%d deltas, want 4: %s", len(d.Deltas), d)
	}
	if d.Deltas[0].Path != "benchmark/Mingle/avg_hybrid_changes" || !math.IsInf(d.Deltas[0].Rel(), 1) {
		t.Fatalf("first delta: %+v", d.Deltas[0])
	}
	if d.Deltas[1].Path != "benchmark/BasicSCB/avg_total_ns" {
		t.Fatalf("second delta: %+v", d.Deltas[1])
	}
	if d.Deltas[3].Path != "stage/resolve/wall_ns" {
		t.Fatalf("last delta: %+v", d.Deltas[3])
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	newR := report(func(r *obs.RunReport) {
		r.Benchmarks[1].Name = "TreeFlat"
		r.Stages = r.Stages[:1]
	})
	d := Compare(report(), newR)
	if len(d.Added) != 1 || d.Added[0] != "benchmark/TreeFlat" {
		t.Fatalf("added: %v", d.Added)
	}
	want := map[string]bool{"benchmark/Mingle": true, "stage/resolve": true}
	if len(d.Removed) != 2 || !want[d.Removed[0]] || !want[d.Removed[1]] {
		t.Fatalf("removed: %v", d.Removed)
	}
}

func TestFilter(t *testing.T) {
	newR := report(func(r *obs.RunReport) {
		r.Benchmarks[0].AvgTotalChanges = 5.5 // +10%
		r.Stages[0].WallNS = 300              // +200%
	})
	d := Compare(report(), newR).Filter(0.5)
	if len(d.Deltas) != 1 || d.Deltas[0].Path != "stage/one-cycle/wall_ns" {
		t.Fatalf("filtered deltas: %+v", d.Deltas)
	}
}

func TestStringAligned(t *testing.T) {
	newR := report(func(r *obs.RunReport) { r.Benchmarks[0].Runs = 5 })
	s := Compare(report(), newR).String()
	if !strings.Contains(s, "benchmark/BasicSCB/runs") || !strings.Contains(s, "+25.00%") {
		t.Fatalf("rendered diff: %q", s)
	}
}
