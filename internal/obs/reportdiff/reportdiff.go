// Package reportdiff compares two machine-readable run reports
// (obs.RunReport) and surfaces the regression deltas: per-benchmark
// change counts and stage runtimes that moved between two runs of the
// protocol. It backs `rsnbench -diff-report old.json,new.json` and CI
// trend checks over uploaded report artifacts.
package reportdiff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Delta is one numeric field that differs between the two reports.
type Delta struct {
	// Path locates the field, e.g. "benchmark/BasicSCB/avg_total_changes"
	// or "stage/closure/wall_ns".
	Path string  `json:"path"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
}

// Rel returns the relative change (new-old)/old; +Inf when old is zero
// and new is not.
func (d Delta) Rel() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (d.New - d.Old) / d.Old
}

// Diff is the comparison outcome.
type Diff struct {
	// Added and Removed list benchmarks/stages present in only one
	// report, prefixed like Delta paths ("benchmark/X", "stage/y").
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// Deltas lists the changed numeric fields, largest |Rel| first.
	Deltas []Delta `json:"deltas,omitempty"`
}

// Empty reports whether the two reports agree on every compared field.
func (d *Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Deltas) == 0
}

// Filter returns a copy keeping only deltas with |Rel| >= minRel (the
// added/removed lists are kept verbatim).
func (d *Diff) Filter(minRel float64) *Diff {
	out := &Diff{Added: d.Added, Removed: d.Removed}
	for _, dd := range d.Deltas {
		if math.Abs(dd.Rel()) >= minRel {
			out.Deltas = append(out.Deltas, dd)
		}
	}
	return out
}

// String renders the diff as an aligned human-readable table.
func (d *Diff) String() string {
	if d.Empty() {
		return "reports agree"
	}
	var sb strings.Builder
	for _, a := range d.Added {
		fmt.Fprintf(&sb, "added   %s\n", a)
	}
	for _, r := range d.Removed {
		fmt.Fprintf(&sb, "removed %s\n", r)
	}
	w := 0
	for _, dd := range d.Deltas {
		if len(dd.Path) > w {
			w = len(dd.Path)
		}
	}
	for _, dd := range d.Deltas {
		fmt.Fprintf(&sb, "%-*s  %14g -> %-14g  %+7.2f%%\n", w, dd.Path, dd.Old, dd.New, 100*dd.Rel())
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Compare diffs two reports field by field. Wall-clock stage times are
// compared like every other field; callers typically Filter by a
// relative threshold before treating time deltas as regressions, since
// absolute runtimes are machine-bound.
func Compare(old, new *obs.RunReport) *Diff {
	d := &Diff{}
	oldB := make(map[string]*obs.BenchmarkReport, len(old.Benchmarks))
	for i := range old.Benchmarks {
		oldB[old.Benchmarks[i].Name] = &old.Benchmarks[i]
	}
	newB := make(map[string]*obs.BenchmarkReport, len(new.Benchmarks))
	for i := range new.Benchmarks {
		b := &new.Benchmarks[i]
		newB[b.Name] = b
		if _, ok := oldB[b.Name]; !ok {
			d.Added = append(d.Added, "benchmark/"+b.Name)
		}
	}
	for i := range old.Benchmarks {
		name := old.Benchmarks[i].Name
		if _, ok := newB[name]; !ok {
			d.Removed = append(d.Removed, "benchmark/"+name)
		}
	}
	for i := range old.Benchmarks {
		o := &old.Benchmarks[i]
		n, ok := newB[o.Name]
		if !ok {
			continue
		}
		p := "benchmark/" + o.Name + "/"
		d.add(p+"runs", float64(o.Runs), float64(n.Runs))
		d.add(p+"errors", float64(o.Errors), float64(n.Errors))
		d.add(p+"avg_violating_regs", o.AvgViolatingRegs, n.AvgViolatingRegs)
		d.add(p+"avg_pure_changes", o.AvgPureChanges, n.AvgPureChanges)
		d.add(p+"avg_hybrid_changes", o.AvgHybridChanges, n.AvgHybridChanges)
		d.add(p+"avg_total_changes", o.AvgTotalChanges, n.AvgTotalChanges)
		d.add(p+"avg_dep_ns", float64(o.AvgDepNS), float64(n.AvgDepNS))
		d.add(p+"avg_pure_ns", float64(o.AvgPureNS), float64(n.AvgPureNS))
		d.add(p+"avg_hybrid_ns", float64(o.AvgHybridNS), float64(n.AvgHybridNS))
		d.add(p+"avg_total_ns", float64(o.AvgTotalNS), float64(n.AvgTotalNS))
	}

	oldS := make(map[string]*obs.StageReport, len(old.Stages))
	for i := range old.Stages {
		oldS[old.Stages[i].Name] = &old.Stages[i]
	}
	newS := make(map[string]*obs.StageReport, len(new.Stages))
	for i := range new.Stages {
		s := &new.Stages[i]
		newS[s.Name] = s
		if _, ok := oldS[s.Name]; !ok {
			d.Added = append(d.Added, "stage/"+s.Name)
		}
	}
	for i := range old.Stages {
		o := &old.Stages[i]
		if _, ok := newS[o.Name]; !ok {
			d.Removed = append(d.Removed, "stage/"+o.Name)
			continue
		}
		n := newS[o.Name]
		p := "stage/" + o.Name + "/"
		d.add(p+"wall_ns", float64(o.WallNS), float64(n.WallNS))
		d.add(p+"calls", float64(o.Calls), float64(n.Calls))
		d.add(p+"queries", float64(o.Queries), float64(n.Queries))
		d.add(p+"items", float64(o.Items), float64(n.Items))
		d.add(p+"saved", float64(o.Saved), float64(n.Saved))
	}

	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.SliceStable(d.Deltas, func(i, j int) bool {
		ri, rj := math.Abs(d.Deltas[i].Rel()), math.Abs(d.Deltas[j].Rel())
		if ri != rj {
			return ri > rj
		}
		return d.Deltas[i].Path < d.Deltas[j].Path
	})
	return d
}

// add records a delta when the values differ.
func (d *Diff) add(path string, old, new float64) {
	if old != new {
		d.Deltas = append(d.Deltas, Delta{Path: path, Old: old, New: new})
	}
}
