package reportdiff

import (
	"math"
	"sort"

	"repro/internal/obs/perfrec"
)

// CompareBenchRecords diffs two bench records the same way Compare
// diffs run reports: stage timing deltas (with sign and percent via
// Delta.Rel), SAT and memory counters, and added/removed rows for
// benchmarks or stages present in only one record. Unlike
// perfrec.Compare — the gate, which applies noise allowances and only
// flags slowdowns — this is the full symmetric diff for humans and
// trend dashboards; Filter by a relative threshold to cut jitter.
func CompareBenchRecords(old, new *perfrec.Record) *Diff {
	d := &Diff{}
	oldB := make(map[string]*perfrec.Benchmark, len(old.Benchmarks))
	for i := range old.Benchmarks {
		oldB[old.Benchmarks[i].Name] = &old.Benchmarks[i]
	}
	newB := make(map[string]*perfrec.Benchmark, len(new.Benchmarks))
	for i := range new.Benchmarks {
		b := &new.Benchmarks[i]
		newB[b.Name] = b
		if _, ok := oldB[b.Name]; !ok {
			d.Added = append(d.Added, "benchmark/"+b.Name)
		}
	}
	for i := range old.Benchmarks {
		o := &old.Benchmarks[i]
		n, ok := newB[o.Name]
		if !ok {
			d.Removed = append(d.Removed, "benchmark/"+o.Name)
			continue
		}
		p := "benchmark/" + o.Name + "/"
		d.add(p+"runs", float64(o.Runs), float64(n.Runs))
		d.add(p+"sat_queries", float64(o.SATQueries), float64(n.SATQueries))
		d.add(p+"sat_decisions", float64(o.SATDecisions), float64(n.SATDecisions))
		d.add(p+"sat_conflicts", float64(o.SATConflicts), float64(n.SATConflicts))
		d.add(p+"heap_alloc_peak_bytes", float64(o.HeapAllocPeakBytes), float64(n.HeapAllocPeakBytes))
		d.add(p+"total_alloc_bytes", float64(o.TotalAllocBytes), float64(n.TotalAllocBytes))

		diffStages(d, p, o.Stages, n.Stages)

		// The optional attack annex diffs like the pipeline stages when
		// both records carry it; a one-sided annex is an added/removed
		// row, never an error (the field is backward-compatible).
		switch {
		case o.Attack != nil && n.Attack != nil:
			ap := p + "attack/"
			d.add(ap+"key_bits", float64(o.Attack.KeyBits), float64(n.Attack.KeyBits))
			d.add(ap+"sat_iterations", float64(o.Attack.SATIterations), float64(n.Attack.SATIterations))
			d.add(ap+"sat_conflicts", float64(o.Attack.SATConflicts), float64(n.Attack.SATConflicts))
			d.add(ap+"flush_rank", float64(o.Attack.FlushRank), float64(n.Attack.FlushRank))
			diffStages(d, ap, o.Attack.Stages, n.Attack.Stages)
		case o.Attack == nil && n.Attack != nil:
			d.Added = append(d.Added, p+"attack")
		case o.Attack != nil && n.Attack == nil:
			d.Removed = append(d.Removed, p+"attack")
		}
	}

	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sortDeltas(d)
	return d
}

// diffStages emits the per-stage delta rows for one stage list pair
// under prefix ("benchmark/<name>/" or "benchmark/<name>/attack/").
func diffStages(d *Diff, prefix string, old, new []perfrec.Stage) {
	oldS := make(map[string]*perfrec.Stage, len(old))
	for j := range old {
		oldS[old[j].Name] = &old[j]
	}
	newS := make(map[string]*perfrec.Stage, len(new))
	for j := range new {
		st := &new[j]
		newS[st.Name] = st
		if _, ok := oldS[st.Name]; !ok {
			d.Added = append(d.Added, prefix+"stage/"+st.Name)
		}
	}
	for j := range old {
		os := &old[j]
		ns, ok := newS[os.Name]
		if !ok {
			d.Removed = append(d.Removed, prefix+"stage/"+os.Name)
			continue
		}
		sp := prefix + "stage/" + os.Name + "/"
		d.add(sp+"median_ns", float64(os.MedianNS), float64(ns.MedianNS))
		d.add(sp+"mad_ns", float64(os.MADNS), float64(ns.MADNS))
		d.add(sp+"calls", float64(os.Calls), float64(ns.Calls))
		d.add(sp+"queries", float64(os.Queries), float64(ns.Queries))
		d.add(sp+"items", float64(os.Items), float64(ns.Items))
		d.add(sp+"saved", float64(os.Saved), float64(ns.Saved))
		d.add(sp+"sim_resolved", float64(os.SimResolved), float64(ns.SimResolved))
		d.add(sp+"sat_resolved", float64(os.SATResolved), float64(ns.SATResolved))
	}
}

func sortDeltas(d *Diff) {
	sort.SliceStable(d.Deltas, func(i, j int) bool {
		ri, rj := math.Abs(d.Deltas[i].Rel()), math.Abs(d.Deltas[j].Rel())
		if ri != rj {
			return ri > rj
		}
		return d.Deltas[i].Path < d.Deltas[j].Path
	})
}
