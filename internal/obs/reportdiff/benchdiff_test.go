package reportdiff

import (
	"strings"
	"testing"

	"repro/internal/obs/perfrec"
)

func benchRecord(closureNS int64) *perfrec.Record {
	return &perfrec.Record{
		Schema: perfrec.BenchSchema,
		Tool:   "test",
		Reps:   1,
		Benchmarks: []perfrec.Benchmark{{
			Name: "TreeFlat", ScanFFs: 60, Runs: 5,
			Stages: []perfrec.Stage{
				perfrec.NewStage("closure", []int64{closureNS}),
				perfrec.NewStage("one-cycle", []int64{40_000_000}),
			},
			SATQueries: 100, SATDecisions: 2000, SATConflicts: 50,
			HeapAllocPeakBytes: 64 << 20, TotalAllocBytes: 128 << 20,
		}},
	}
}

func TestCompareBenchRecordsIdentical(t *testing.T) {
	r := benchRecord(10_000_000)
	d := CompareBenchRecords(r, r)
	if !d.Empty() {
		t.Fatalf("identical records diff: %s", d)
	}
	if d.String() != "reports agree" {
		t.Errorf("String = %q", d.String())
	}
}

func TestCompareBenchRecordsDeltasAndOrdering(t *testing.T) {
	old := benchRecord(10_000_000)
	new := benchRecord(25_000_000) // closure +150%
	new.Benchmarks[0].SATDecisions = 2200
	d := CompareBenchRecords(old, new)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("unexpected added/removed: %+v", d)
	}
	if len(d.Deltas) != 2 {
		t.Fatalf("want 2 deltas, got %d: %s", len(d.Deltas), d)
	}
	// Largest |Rel| first: closure +150% before sat_decisions +10%.
	if d.Deltas[0].Path != "benchmark/TreeFlat/stage/closure/median_ns" {
		t.Errorf("first delta = %s, want the closure timing", d.Deltas[0].Path)
	}
	if rel := d.Deltas[0].Rel(); rel < 1.49 || rel > 1.51 {
		t.Errorf("closure Rel = %v, want 1.5", rel)
	}
	// Sign and percent render in the table.
	if s := d.String(); !strings.Contains(s, "+150.00%") {
		t.Errorf("String lacks signed percent:\n%s", s)
	}
	// An improvement renders negative.
	back := CompareBenchRecords(new, old)
	if s := back.String(); !strings.Contains(s, "-60.00%") {
		t.Errorf("reverse diff lacks negative percent:\n%s", s)
	}
}

func TestCompareBenchRecordsAddedRemoved(t *testing.T) {
	old := benchRecord(10_000_000)
	new := benchRecord(10_000_000)
	new.Benchmarks[0].Stages = new.Benchmarks[0].Stages[:1] // drop one-cycle
	new.Benchmarks = append(new.Benchmarks, perfrec.Benchmark{
		Name: "Fresh", Runs: 1,
		Stages: []perfrec.Stage{perfrec.NewStage("closure", []int64{1})},
	})
	d := CompareBenchRecords(old, new)
	if len(d.Added) != 1 || d.Added[0] != "benchmark/Fresh" {
		t.Errorf("Added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "benchmark/TreeFlat/stage/one-cycle" {
		t.Errorf("Removed = %v", d.Removed)
	}
	// Added/removed rows are structural: they never produce deltas.
	for _, dd := range d.Deltas {
		if strings.Contains(dd.Path, "one-cycle") || strings.Contains(dd.Path, "Fresh") {
			t.Errorf("disjoint row produced a delta: %+v", dd)
		}
	}
}

// TestCompareBenchRecordsSimSATSplit covers the optional resolution-path
// split introduced with the simulation prefilter: records without the
// fields (old baselines) diff cleanly against records with them, and the
// split produces its own delta rows.
func TestCompareBenchRecordsSimSATSplit(t *testing.T) {
	old := benchRecord(10_000_000) // predates the split: both fields zero
	new := benchRecord(10_000_000)
	st := &new.Benchmarks[0].Stages[1] // one-cycle
	st.SimResolved, st.SATResolved = 730, 87
	d := CompareBenchRecords(old, new)
	want := map[string]float64{
		"benchmark/TreeFlat/stage/one-cycle/sim_resolved": 730,
		"benchmark/TreeFlat/stage/one-cycle/sat_resolved": 87,
	}
	for _, dd := range d.Deltas {
		v, ok := want[dd.Path]
		if !ok {
			t.Errorf("unexpected delta %+v", dd)
			continue
		}
		if dd.Old != 0 || dd.New != v {
			t.Errorf("%s: old=%v new=%v, want 0 -> %v", dd.Path, dd.Old, dd.New, v)
		}
		delete(want, dd.Path)
	}
	if len(want) != 0 {
		t.Errorf("missing split deltas: %v", want)
	}
	// Matching splits produce no deltas.
	st2 := &old.Benchmarks[0].Stages[1]
	st2.SimResolved, st2.SATResolved = 730, 87
	if d := CompareBenchRecords(old, new); !d.Empty() {
		t.Fatalf("matching splits still diff: %s", d)
	}
}

func TestCompareBenchRecordsFilter(t *testing.T) {
	old := benchRecord(10_000_000)
	new := benchRecord(10_500_000)     // +5%
	new.Benchmarks[0].SATQueries = 300 // +200%
	d := CompareBenchRecords(old, new).Filter(0.50)
	if len(d.Deltas) != 1 || d.Deltas[0].Path != "benchmark/TreeFlat/sat_queries" {
		t.Fatalf("Filter(0.50) kept %s", d)
	}
}

// TestCompareBenchRecordsAttackAnnex covers the optional attack annex:
// matched annexes diff stage-by-stage under the attack/ path, a
// one-sided annex is an added/removed row, and absent annexes on both
// sides stay silent.
func TestCompareBenchRecordsAttackAnnex(t *testing.T) {
	withAtk := func(satNS int64) *perfrec.Record {
		r := benchRecord(10_000_000)
		r.Benchmarks[0].Attack = &perfrec.AttackBench{
			KeyBits: 8,
			Stages: []perfrec.Stage{
				perfrec.NewStage("attack-sat", []int64{satNS}),
				perfrec.NewStage("attack-flush", []int64{1_000_000}),
			},
			SATIterations: 3, SATConflicts: 40, FlushRank: 4,
		}
		return r
	}
	if d := CompareBenchRecords(withAtk(5_000_000), withAtk(5_000_000)); !d.Empty() {
		t.Fatalf("identical annexed records diff: %s", d)
	}
	d := CompareBenchRecords(withAtk(5_000_000), withAtk(9_000_000))
	found := false
	for _, dl := range d.Deltas {
		if dl.Path == "benchmark/TreeFlat/attack/stage/attack-sat/median_ns" {
			found = true
			if dl.Old != 5_000_000 || dl.New != 9_000_000 {
				t.Errorf("attack-sat delta = %+v", dl)
			}
		}
		if strings.HasPrefix(dl.Path, "benchmark/TreeFlat/attack/stage/attack-flush/") {
			t.Errorf("unchanged attack stage produced a delta: %+v", dl)
		}
	}
	if !found {
		t.Errorf("attack-sat median delta missing: %s", d)
	}
	// One-sided annex: an added row, no annex deltas, no error.
	d = CompareBenchRecords(benchRecord(10_000_000), withAtk(5_000_000))
	if len(d.Added) != 1 || d.Added[0] != "benchmark/TreeFlat/attack" {
		t.Errorf("added = %v", d.Added)
	}
	d = CompareBenchRecords(withAtk(5_000_000), benchRecord(10_000_000))
	if len(d.Removed) != 1 || d.Removed[0] != "benchmark/TreeFlat/attack" {
		t.Errorf("removed = %v", d.Removed)
	}
}
