package reportdiff

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

func deltaDoc() *DeltaDoc {
	parent := report()
	child := report(func(r *obs.RunReport) {
		r.Benchmarks[0].AvgTotalChanges = 6
	})
	return NewDeltaDoc("basekey", "derivedkey", "scripthash", 2, parent, child)
}

func TestDeltaDocRoundTrip(t *testing.T) {
	d := deltaDoc()
	if d.Diff == nil || d.Diff.Empty() {
		t.Fatal("NewDeltaDoc did not compute the parent diff")
	}
	var buf bytes.Buffer
	if err := WriteDeltaDoc(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaDoc(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != DeltaSchema || got.BaseKey != "basekey" || got.Key != "derivedkey" ||
		got.ScriptHash != "scripthash" || got.ScriptOps != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Diff.Deltas) != len(d.Diff.Deltas) {
		t.Fatalf("round trip lost diff entries: %d vs %d", len(got.Diff.Deltas), len(d.Diff.Deltas))
	}
}

func TestDeltaDocValidate(t *testing.T) {
	cases := map[string]func(*DeltaDoc){
		"wrong schema":   func(d *DeltaDoc) { d.Schema = "other/v1" },
		"missing hash":   func(d *DeltaDoc) { d.ScriptHash = "" },
		"missing report": func(d *DeltaDoc) { d.Report = nil },
		"bad report":     func(d *DeltaDoc) { d.Report.Schema = "bogus" },
		"missing diff":   func(d *DeltaDoc) { d.Diff = nil },
	}
	for name, mutate := range cases {
		d := deltaDoc()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
		if err := WriteDeltaDoc(&bytes.Buffer{}, d); err == nil {
			t.Errorf("%s: WriteDeltaDoc succeeded, want error", name)
		}
	}
}
