package reportdiff

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// DeltaSchema identifies the delta-report document: the result of one
// incremental (edit-script) analysis, pairing the run's own report with
// the structured diff against its parent.
const DeltaSchema = "rsnsec.delta-report/v1"

// DeltaDoc is the stored/streamed result of a delta analysis. BaseKey
// and Key content-address the parent and the derived analysis when the
// document came from rsnserved; the CLI leaves them empty.
type DeltaDoc struct {
	Schema     string `json:"schema"`
	BaseKey    string `json:"base_key,omitempty"`
	Key        string `json:"key,omitempty"`
	ScriptHash string `json:"script_hash"`
	ScriptOps  int    `json:"script_ops"`
	// Report is the delta run's own rsnsec.run-report/v1.
	Report *obs.RunReport `json:"report"`
	// Diff compares the parent report (old) against Report (new).
	Diff *Diff `json:"diff"`
}

// NewDeltaDoc assembles a delta document, computing the diff of the
// parent report against the delta run's report.
func NewDeltaDoc(baseKey, key, scriptHash string, scriptOps int, parent, report *obs.RunReport) *DeltaDoc {
	return &DeltaDoc{
		Schema:     DeltaSchema,
		BaseKey:    baseKey,
		Key:        key,
		ScriptHash: scriptHash,
		ScriptOps:  scriptOps,
		Report:     report,
		Diff:       Compare(parent, report),
	}
}

// Validate checks the document's schema and the embedded run report.
func (d *DeltaDoc) Validate() error {
	if d.Schema != DeltaSchema {
		return fmt.Errorf("reportdiff: delta doc schema %q, want %q", d.Schema, DeltaSchema)
	}
	if d.ScriptHash == "" {
		return fmt.Errorf("reportdiff: delta doc missing script hash")
	}
	if d.Report == nil {
		return fmt.Errorf("reportdiff: delta doc missing report")
	}
	if err := d.Report.Validate(); err != nil {
		return fmt.Errorf("reportdiff: delta doc report: %w", err)
	}
	if d.Diff == nil {
		return fmt.Errorf("reportdiff: delta doc missing diff")
	}
	return nil
}

// WriteDeltaDoc validates and writes the document as indented JSON.
func WriteDeltaDoc(w io.Writer, d *DeltaDoc) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDeltaDoc decodes and validates a delta document.
func ReadDeltaDoc(r io.Reader) (*DeltaDoc, error) {
	var d DeltaDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("reportdiff: decode delta doc: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
