// Package cnf provides Tseitin encodings of combinational logic into
// conjunctive normal form on top of the sat package.
//
// The dependency computation encodes a flip-flop's next-state cone twice
// (with one input pinned to 0 and to 1) and asks the solver whether the
// two copies can differ — the classic dependency miter of the SAT-based
// dependency computation (HVC 2016).
package cnf

import "repro/internal/sat"

// Builder accumulates Tseitin clauses in a sat.Solver.
type Builder struct {
	S *sat.Solver
}

// NewBuilder returns a Builder emitting into a fresh solver.
func NewBuilder() *Builder {
	return &Builder{S: sat.New()}
}

// NewVar introduces a fresh CNF variable and returns its positive literal.
func (b *Builder) NewVar() sat.Lit {
	return sat.PosLit(b.S.NewVar())
}

// Const returns a literal fixed to the given constant value.
func (b *Builder) Const(v bool) sat.Lit {
	l := b.NewVar()
	if v {
		b.S.AddClause(l)
	} else {
		b.S.AddClause(l.Not())
	}
	return l
}

// And constrains out <-> AND(ins...). With no inputs, out is true.
func (b *Builder) And(out sat.Lit, ins ...sat.Lit) {
	// (~in -> ~out) for each in:  (in | ~out)
	for _, in := range ins {
		b.S.AddClause(in, out.Not())
	}
	// (all ins -> out): (~in1 | ~in2 | ... | out)
	cl := make([]sat.Lit, 0, len(ins)+1)
	for _, in := range ins {
		cl = append(cl, in.Not())
	}
	cl = append(cl, out)
	b.S.AddClause(cl...)
}

// Or constrains out <-> OR(ins...). With no inputs, out is false.
func (b *Builder) Or(out sat.Lit, ins ...sat.Lit) {
	for _, in := range ins {
		b.S.AddClause(in.Not(), out)
	}
	cl := make([]sat.Lit, 0, len(ins)+1)
	cl = append(cl, ins...)
	cl = append(cl, out.Not())
	b.S.AddClause(cl...)
}

// Nand constrains out <-> NAND(ins...).
func (b *Builder) Nand(out sat.Lit, ins ...sat.Lit) {
	b.And(out.Not(), ins...)
}

// Nor constrains out <-> NOR(ins...).
func (b *Builder) Nor(out sat.Lit, ins ...sat.Lit) {
	b.Or(out.Not(), ins...)
}

// Not constrains out <-> NOT(in).
func (b *Builder) Not(out, in sat.Lit) {
	b.Equal(out, in.Not())
}

// Buf constrains out <-> in.
func (b *Builder) Buf(out, in sat.Lit) {
	b.Equal(out, in)
}

// Equal constrains a <-> b.
func (b *Builder) Equal(a, x sat.Lit) {
	b.S.AddClause(a.Not(), x)
	b.S.AddClause(a, x.Not())
}

// Xor2 constrains out <-> a XOR x.
func (b *Builder) Xor2(out, a, x sat.Lit) {
	b.S.AddClause(out.Not(), a, x)
	b.S.AddClause(out.Not(), a.Not(), x.Not())
	b.S.AddClause(out, a.Not(), x)
	b.S.AddClause(out, a, x.Not())
}

// Xnor2 constrains out <-> a XNOR x.
func (b *Builder) Xnor2(out, a, x sat.Lit) {
	b.Xor2(out.Not(), a, x)
}

// Xor constrains out <-> XOR of all inputs, chaining Xor2 for arity > 2.
// With no inputs, out is false; with one, out equals it.
func (b *Builder) Xor(out sat.Lit, ins ...sat.Lit) {
	switch len(ins) {
	case 0:
		b.S.AddClause(out.Not())
	case 1:
		b.Equal(out, ins[0])
	case 2:
		b.Xor2(out, ins[0], ins[1])
	default:
		acc := ins[0]
		for i := 1; i < len(ins)-1; i++ {
			next := b.NewVar()
			b.Xor2(next, acc, ins[i])
			acc = next
		}
		b.Xor2(out, acc, ins[len(ins)-1])
	}
}

// Xnor constrains out <-> XNOR of all inputs.
func (b *Builder) Xnor(out sat.Lit, ins ...sat.Lit) {
	b.Xor(out.Not(), ins...)
}

// Mux constrains out <-> (sel ? hi : lo).
func (b *Builder) Mux(out, sel, lo, hi sat.Lit) {
	b.S.AddClause(sel.Not(), hi.Not(), out)
	b.S.AddClause(sel.Not(), hi, out.Not())
	b.S.AddClause(sel, lo.Not(), out)
	b.S.AddClause(sel, lo, out.Not())
	// Redundant but propagation-strengthening clauses:
	b.S.AddClause(lo.Not(), hi.Not(), out)
	b.S.AddClause(lo, hi, out.Not())
}

// Majority3 constrains out <-> MAJ(a, b, c).
func (b *Builder) Majority3(out, x, y, z sat.Lit) {
	b.S.AddClause(x.Not(), y.Not(), out)
	b.S.AddClause(x.Not(), z.Not(), out)
	b.S.AddClause(y.Not(), z.Not(), out)
	b.S.AddClause(x, y, out.Not())
	b.S.AddClause(x, z, out.Not())
	b.S.AddClause(y, z, out.Not())
}

// Implies adds the clause a -> x.
func (b *Builder) Implies(a, x sat.Lit) {
	b.S.AddClause(a.Not(), x)
}

// Assert fixes the literal to true.
func (b *Builder) Assert(l sat.Lit) {
	b.S.AddClause(l)
}

// Different returns a fresh literal constrained to a XOR x — the core of
// a dependency miter output.
func (b *Builder) Different(a, x sat.Lit) sat.Lit {
	d := b.NewVar()
	b.Xor2(d, a, x)
	return d
}
