package cnf

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// checkTruthTable exhaustively checks that the encoded gate constrains
// out to eval(inputs) for all input combinations.
func checkTruthTable(t *testing.T, name string, arity int,
	encode func(b *Builder, out sat.Lit, ins []sat.Lit),
	eval func(ins []bool) bool) {
	t.Helper()
	for m := 0; m < 1<<uint(arity); m++ {
		for _, outVal := range []bool{false, true} {
			b := NewBuilder()
			ins := make([]sat.Lit, arity)
			insB := make([]bool, arity)
			for i := range ins {
				ins[i] = b.NewVar()
				insB[i] = m>>uint(i)&1 == 1
			}
			out := b.NewVar()
			encode(b, out, ins)
			// Pin inputs and output, check satisfiability matches.
			var assumptions []sat.Lit
			for i, in := range ins {
				if insB[i] {
					assumptions = append(assumptions, in)
				} else {
					assumptions = append(assumptions, in.Not())
				}
			}
			if outVal {
				assumptions = append(assumptions, out)
			} else {
				assumptions = append(assumptions, out.Not())
			}
			want := eval(insB) == outVal
			got := b.S.Solve(assumptions...) == sat.Sat
			if got != want {
				t.Fatalf("%s: inputs=%v out=%v: sat=%v want %v", name, insB, outVal, got, want)
			}
		}
	}
}

func TestAnd(t *testing.T) {
	for arity := 1; arity <= 4; arity++ {
		checkTruthTable(t, "and", arity,
			func(b *Builder, out sat.Lit, ins []sat.Lit) { b.And(out, ins...) },
			func(ins []bool) bool {
				for _, v := range ins {
					if !v {
						return false
					}
				}
				return true
			})
	}
}

func TestOr(t *testing.T) {
	for arity := 1; arity <= 4; arity++ {
		checkTruthTable(t, "or", arity,
			func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Or(out, ins...) },
			func(ins []bool) bool {
				for _, v := range ins {
					if v {
						return true
					}
				}
				return false
			})
	}
}

func TestNand(t *testing.T) {
	checkTruthTable(t, "nand", 3,
		func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Nand(out, ins...) },
		func(ins []bool) bool { return !(ins[0] && ins[1] && ins[2]) })
}

func TestNor(t *testing.T) {
	checkTruthTable(t, "nor", 3,
		func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Nor(out, ins...) },
		func(ins []bool) bool { return !(ins[0] || ins[1] || ins[2]) })
}

func TestNot(t *testing.T) {
	checkTruthTable(t, "not", 1,
		func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Not(out, ins[0]) },
		func(ins []bool) bool { return !ins[0] })
}

func TestBuf(t *testing.T) {
	checkTruthTable(t, "buf", 1,
		func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Buf(out, ins[0]) },
		func(ins []bool) bool { return ins[0] })
}

func TestXor(t *testing.T) {
	for arity := 1; arity <= 5; arity++ {
		checkTruthTable(t, "xor", arity,
			func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Xor(out, ins...) },
			func(ins []bool) bool {
				p := false
				for _, v := range ins {
					p = p != v
				}
				return p
			})
	}
}

func TestXnor(t *testing.T) {
	for arity := 2; arity <= 4; arity++ {
		checkTruthTable(t, "xnor", arity,
			func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Xnor(out, ins...) },
			func(ins []bool) bool {
				p := true
				for _, v := range ins {
					p = p != v
				}
				return p
			})
	}
}

func TestMux(t *testing.T) {
	// Input order: sel, lo, hi.
	checkTruthTable(t, "mux", 3,
		func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Mux(out, ins[0], ins[1], ins[2]) },
		func(ins []bool) bool {
			if ins[0] {
				return ins[2]
			}
			return ins[1]
		})
}

func TestMajority3(t *testing.T) {
	checkTruthTable(t, "maj3", 3,
		func(b *Builder, out sat.Lit, ins []sat.Lit) { b.Majority3(out, ins[0], ins[1], ins[2]) },
		func(ins []bool) bool {
			n := 0
			for _, v := range ins {
				if v {
					n++
				}
			}
			return n >= 2
		})
}

func TestConst(t *testing.T) {
	b := NewBuilder()
	tr := b.Const(true)
	fa := b.Const(false)
	if b.S.Solve(tr.Not()) == sat.Sat {
		t.Fatal("true const can be false")
	}
	if b.S.Solve(fa) == sat.Sat {
		t.Fatal("false const can be true")
	}
	if b.S.Solve(tr, fa.Not()) != sat.Sat {
		t.Fatal("consts inconsistent")
	}
}

func TestImpliesAssert(t *testing.T) {
	b := NewBuilder()
	a, x := b.NewVar(), b.NewVar()
	b.Implies(a, x)
	b.Assert(a)
	if b.S.Solve(x.Not()) == sat.Sat {
		t.Fatal("a & (a->x) & ~x must be UNSAT")
	}
	if b.S.Solve(x) != sat.Sat {
		t.Fatal("a & (a->x) & x must be SAT")
	}
}

func TestDifferent(t *testing.T) {
	b := NewBuilder()
	a, x := b.NewVar(), b.NewVar()
	d := b.Different(a, x)
	if b.S.Solve(d, a, x) == sat.Sat {
		t.Fatal("d & a & x must be UNSAT")
	}
	if b.S.Solve(d, a, x.Not()) != sat.Sat {
		t.Fatal("d & a & ~x must be SAT")
	}
	if b.S.Solve(d.Not(), a, x.Not()) == sat.Sat {
		t.Fatal("~d & a & ~x must be UNSAT")
	}
}

// TestMiterEquivalence builds two structurally different but equivalent
// circuits (De Morgan) and shows the miter is UNSAT.
func TestMiterEquivalence(t *testing.T) {
	b := NewBuilder()
	x, y := b.NewVar(), b.NewVar()
	// f = ~(x & y)
	f := b.NewVar()
	b.Nand(f, x, y)
	// g = ~x | ~y
	g := b.NewVar()
	b.Or(g, x.Not(), y.Not())
	d := b.Different(f, g)
	if b.S.Solve(d) == sat.Sat {
		t.Fatal("De Morgan miter must be UNSAT")
	}
}

// TestRandomCircuitMiter builds a random gate network twice and checks
// the copies are equivalent (self-miter UNSAT), then perturbs one gate
// and checks the miter usually becomes SAT.
func TestRandomCircuitMiter(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		b := NewBuilder()
		nIn := 3 + rng.Intn(4)
		ins := make([]sat.Lit, nIn)
		for i := range ins {
			ins[i] = b.NewVar()
		}
		build := func(flipLast bool) sat.Lit {
			nodes := append([]sat.Lit{}, ins...)
			nGates := 5 + rng.Intn(10)
			st := rng.Int63()
			lr := rand.New(rand.NewSource(st))
			var out sat.Lit
			for g := 0; g < nGates; g++ {
				a := nodes[lr.Intn(len(nodes))]
				c := nodes[lr.Intn(len(nodes))]
				o := b.NewVar()
				switch lr.Intn(3) {
				case 0:
					b.And(o, a, c)
				case 1:
					b.Or(o, a, c)
				default:
					b.Xor2(o, a, c)
				}
				nodes = append(nodes, o)
				out = o
			}
			if flipLast {
				return out.Not()
			}
			return out
		}
		// Build the same random structure twice from a shared stream:
		// save/restore by re-seeding is handled inside build via its own
		// generator seeded identically.
		seed := rng.Int63()
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		buildWith := func(lr *rand.Rand, negate bool) sat.Lit {
			nodes := append([]sat.Lit{}, ins...)
			var out sat.Lit = ins[0]
			for g := 0; g < 8; g++ {
				a := nodes[lr.Intn(len(nodes))]
				c := nodes[lr.Intn(len(nodes))]
				o := b.NewVar()
				switch lr.Intn(3) {
				case 0:
					b.And(o, a, c)
				case 1:
					b.Or(o, a, c)
				default:
					b.Xor2(o, a, c)
				}
				nodes = append(nodes, o)
				out = o
			}
			if negate {
				return out.Not()
			}
			return out
		}
		_ = build
		f := buildWith(rngA, false)
		g := buildWith(rngB, false)
		if b.S.Solve(b.Different(f, g)) == sat.Sat {
			t.Fatalf("iter %d: identical circuits not equivalent", iter)
		}
		// Negating one output must make the miter SAT.
		if b.S.Solve(b.Different(f, g.Not())) != sat.Sat {
			t.Fatalf("iter %d: negated miter should be SAT", iter)
		}
	}
}
