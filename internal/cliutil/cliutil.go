// Package cliutil carries the flag glue shared by the rsnsec command
// suite: construction of the conventional -log-level / -log-format
// structured logger and its interaction with the suite-wide -q flag.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"log/slog"

	"repro/internal/obs/olog"
)

// Logger builds a tool logger from the conventional -log-level and
// -log-format flag values, writing to w. quiet forces the level off —
// the suite-wide -q contract (clean output streams for scripting) —
// unless the user explicitly passed -log-level on the command line,
// which wins over -q.
func Logger(w io.Writer, spec, format string, quiet bool) (*slog.Logger, error) {
	if quiet && !FlagWasSet("log-level") {
		spec = "off"
	}
	levels, err := olog.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if format != "json" && format != "text" {
		return nil, fmt.Errorf("unknown -log-format %q (want json or text)", format)
	}
	return olog.New(olog.Options{Writer: w, Format: format, Levels: levels}), nil
}

// FlagWasSet reports whether the named flag appeared on the command
// line (as opposed to resting at its default value).
func FlagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
