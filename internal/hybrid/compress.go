package hybrid

import (
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// RegisterAttr is the flip-flop-granular attribute storage of Section
// III-C: instead of one attribute per scan flip-flop, a register stores
// the propagated security attribute of its first flip-flop and the
// first flip-flop position where the attribute changes.
//
// When the attribute changes at most once along the register the
// representation is exact; with further changes Rest conservatively
// intersects everything from the change position on, so At never
// claims an accepted category the exact attribute lacks (a sound
// under-approximation for violation detection).
type RegisterAttr struct {
	// First is the attribute of scan flip-flop 0.
	First secspec.CatSet
	// ChangeAt is the first position whose attribute differs from
	// First, or -1 if the attribute is uniform.
	ChangeAt int
	// Rest is the intersection of the attributes at and after ChangeAt.
	Rest secspec.CatSet
}

// CompressRegister builds the compressed representation from per-bit
// attributes.
func CompressRegister(attrs []secspec.CatSet) RegisterAttr {
	ra := RegisterAttr{ChangeAt: -1}
	if len(attrs) == 0 {
		return ra
	}
	ra.First = attrs[0]
	for i := 1; i < len(attrs); i++ {
		if attrs[i] != ra.First {
			ra.ChangeAt = i
			ra.Rest = attrs[i]
			for _, a := range attrs[i+1:] {
				ra.Rest &= a
			}
			break
		}
	}
	return ra
}

// At returns the (possibly conservative) attribute of bit i.
func (ra RegisterAttr) At(i int) secspec.CatSet {
	if ra.ChangeAt < 0 || i < ra.ChangeAt {
		return ra.First
	}
	return ra.Rest
}

// RegisterAttrs runs the attribute propagation and compresses the
// incoming attributes of every register into the III-C representation.
func (a *Analysis) RegisterAttrs(nw *rsn.Network) []RegisterAttr {
	p := a.propagate(nw)
	out := make([]RegisterAttr, len(nw.Registers))
	for r := range nw.Registers {
		attrs := make([]secspec.CatSet, a.regLen[r])
		for b := range attrs {
			attrs[b] = p.attrIn[a.ScanIndex(r, b)]
		}
		out[r] = CompressRegister(attrs)
	}
	return out
}
