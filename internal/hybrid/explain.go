package hybrid

import (
	"fmt"
	"strings"

	"repro/internal/rsn"
)

// FlowStep is one node on a violating data flow, annotated with how the
// data arrived there.
type FlowStep struct {
	// Node is the combined index of the flip-flop.
	Node int
	// Name is its human-readable name.
	Name string
	// Via describes the arriving edge: "" for the flow's origin,
	// "fixed" for register chains, capture/update links and circuit
	// logic, or "wiring Rx->Ry" for a reconfigurable inter-register
	// connection.
	Via string
}

// Explanation is a human-readable account of one security violation:
// the culprit whose data leaks, the victim it reaches, and the flow in
// between.
type Explanation struct {
	// Culprit and Target are combined indices; data of Culprit's
	// module functionally reaches Target, whose module may not see it.
	Culprit, Target int
	// CulpritModule and TargetModule are the module indices.
	CulpritModule, TargetModule int
	// Steps lists the flow from culprit to target.
	Steps []FlowStep
	// WiringHops counts the reconfigurable connections on the flow —
	// the places the resolution can cut.
	WiringHops int
}

// String renders the explanation as a one-line flow description.
func (e *Explanation) String() string {
	var sb strings.Builder
	for i, s := range e.Steps {
		if i > 0 {
			if strings.HasPrefix(s.Via, "wiring") {
				fmt.Fprintf(&sb, " ={%s}=> ", s.Via)
			} else {
				sb.WriteString(" -> ")
			}
		}
		sb.WriteString(s.Name)
	}
	return sb.String()
}

// Explain reconstructs the data flow behind a violation at node v under
// the network's current wiring. For flows carried by the fixed
// infrastructure alone it still returns the explanation, alongside an
// ErrInsecureLogic error.
func (a *Analysis) Explain(nw *rsn.Network, v int) (*Explanation, error) {
	culprit, chain, hops, err := a.flowChain(nw, v)
	if err != nil {
		if _, isLogic := err.(*ErrInsecureLogic); !isLogic || chain == nil {
			return nil, err
		}
	}
	e := &Explanation{
		Culprit:       culprit,
		Target:        v,
		CulpritModule: a.nodeModule[culprit],
		TargetModule:  a.nodeModule[v],
		WiringHops:    len(hops),
	}
	// Re-derive per-step wiring annotations: a step from the last
	// flip-flop of register r to bit 0 of register s is a wiring hop.
	for i, n := range chain {
		step := FlowStep{Node: n, Name: a.NodeName(n)}
		if i > 0 {
			step.Via = "fixed"
			prev := chain[i-1]
			if r, bit, ok := a.IsScanNode(n); ok && bit == 0 {
				if pr, pbit, pok := a.IsScanNode(prev); pok && pbit == a.regLen[pr]-1 && pr != r {
					step.Via = fmt.Sprintf("wiring R%d->R%d", pr, r)
				}
			}
		}
		e.Steps = append(e.Steps, step)
	}
	return e, err
}

// ExplainAll explains every current violation, in node order.
func (a *Analysis) ExplainAll(nw *rsn.Network) []*Explanation {
	var out []*Explanation
	for _, v := range a.Violations(nw) {
		if e, err := a.Explain(nw, v.Node); e != nil && (err == nil || isInsecureLogicErr(err)) {
			out = append(out, e)
		}
	}
	return out
}

func isInsecureLogicErr(err error) bool {
	_, ok := err.(*ErrInsecureLogic)
	return ok
}
