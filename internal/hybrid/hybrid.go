// Package hybrid implements the novel contribution of the paper:
// detection and resolution of security violations over hybrid scan
// paths — data paths that use both the reconfigurable scan
// infrastructure and the underlying circuit logic — at scan flip-flop
// granularity (Sections III-B to III-D).
//
// The analysis builds a combined dependency space over circuit
// flip-flops and scan flip-flops. Its fixed part — circuit 1-cycle
// dependencies, the preset register-chain dependencies, and the
// capture/update links — is computed once, with internal flip-flops
// bridged away, and reused across every structural change to the RSN
// (the paper's rationale for calculating dependencies "omitting the
// RSN"). Only the reconfigurable inter-register wiring is re-derived
// after each change. Security attributes are propagated
// omnidirectionally over the combined graph to a fixed point; the
// finitely many attribute values guarantee termination even on the
// cyclic flows hybrid paths create.
package hybrid

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// Analysis is the fixed-infrastructure dependency analysis of one
// circuit + scan register structure. It is valid across arbitrary
// re-wiring of the network's inter-register connections.
type Analysis struct {
	Circuit *netlist.Netlist
	Spec    *secspec.Spec
	Mode    dep.Mode

	// Base is the bridged 1-cycle dependency matrix over the combined
	// index space: circuit flip-flops first, then scan flip-flops.
	Base *dep.Matrix
	// Clo is the multi-cycle closure of Base.
	Clo *dep.Matrix
	// Denoted marks combined indices that survived bridging.
	Denoted []bool
	// DepStats carries the dependency computation bookkeeping.
	DepStats dep.Stats
	// PresetDeps counts dependencies preset for consecutive scan
	// flip-flops instead of being computed (Section III-A subroutine 1).
	PresetDeps int

	nCirc     int
	total     int
	regOffset []int // per register: first combined index of its scan FFs
	regLen    []int
	regModule []int
	// nodeModule maps every combined index to its module.
	nodeModule []int
	// eng is the engine configuration the analysis was built under;
	// propagation and resolution report their stats through it.
	eng engine.Options
	// cache holds the most recent wiring's attribute fixed point, the
	// seed for incremental re-propagation after candidate cut/reconnect
	// changes. It is a pointer so the shallow WithSpec copy shares no
	// mutable state by accident: WithSpec installs a fresh cache, since
	// attributes depend on the specification.
	cache *propCache
}

// propCache is the parent-network fixed point a delta propagation
// re-seeds from. nw is a private clone of the wiring the fixed point
// belongs to — callers mutate their networks freely without
// invalidating the comparison. The mutex makes the cache safe for the
// parallel candidate evaluation of Resolve.
type propCache struct {
	mu sync.Mutex
	nw *rsn.Network
	p  *propagation
}

// NewAnalysis computes the fixed part of the hybrid data-flow analysis
// under the default engine configuration (all CPUs, no cancellation).
func NewAnalysis(nw *rsn.Network, circuit *netlist.Netlist, internal []netlist.FFID, spec *secspec.Spec, mode dep.Mode) *Analysis {
	// The background context never cancels, so the error is always nil.
	a, _ := NewAnalysisOpts(nw, circuit, internal, spec, mode, engine.Options{})
	return a
}

// NewAnalysisOpts computes the fixed part of the hybrid data-flow
// analysis: circuit 1-cycle dependencies (SAT-classified in Exact mode,
// fanned out over the engine's worker pool), preset register chains,
// capture/update links, bridging over the internal flip-flops, and the
// multi-cycle closure. Per-stage wall times and query counts are
// reported through opts.Stats; cancellation via opts.Context is honored
// between SAT queries and pipeline stages, returning the context error.
func NewAnalysisOpts(nw *rsn.Network, circuit *netlist.Netlist, internal []netlist.FFID, spec *secspec.Spec, mode dep.Mode, opts engine.Options) (*Analysis, error) {
	a := &Analysis{Circuit: circuit, Spec: spec, Mode: mode, eng: opts, cache: &propCache{}}
	a.nCirc = circuit.NumFFs()
	a.regOffset = make([]int, len(nw.Registers))
	a.regLen = make([]int, len(nw.Registers))
	a.regModule = make([]int, len(nw.Registers))
	idx := a.nCirc
	for r := range nw.Registers {
		a.regOffset[r] = idx
		a.regLen[r] = nw.Registers[r].Len
		a.regModule[r] = nw.Registers[r].Module
		idx += nw.Registers[r].Len
	}
	a.total = idx
	a.nodeModule = make([]int, a.total)
	for f := 0; f < a.nCirc; f++ {
		a.nodeModule[f] = circuit.FFs[f].Module
	}
	for r := range nw.Registers {
		for i := 0; i < a.regLen[r]; i++ {
			a.nodeModule[a.regOffset[r]+i] = a.regModule[r]
		}
	}

	a.DepStats.Mode = mode
	a.DepStats.FFsTotal = a.total
	m := dep.NewMatrix(a.total)
	if err := dep.FillOneCycleOpts(m, circuit, mode, &a.DepStats, opts); err != nil {
		return nil, err
	}

	// Preset the dependencies of consecutive flip-flops inside each
	// scan register: the latter path-depends on every former one.
	for r := range nw.Registers {
		for j := 1; j < a.regLen[r]; j++ {
			for i := 0; i < j; i++ {
				m.Set(a.regOffset[r]+j, a.regOffset[r]+i, dep.Path)
				a.PresetDeps++
			}
		}
	}
	// Capture and update links couple scan and circuit flip-flops.
	for r := range nw.Registers {
		reg := &nw.Registers[r]
		for i := 0; i < reg.Len; i++ {
			if g := reg.Capture[i]; g != netlist.NoFF {
				m.Set(a.regOffset[r]+i, int(g), dep.Path)
			}
			if f := reg.Update[i]; f != netlist.NoFF {
				m.Set(int(f), a.regOffset[r]+i, dep.Path)
			}
		}
	}
	a.DepStats.DepsBeforeBridge = m.CountDeps()
	if err := opts.Err(); err != nil {
		return nil, err
	}

	bridgeDone := opts.Stage("bridge").Start()
	bridgeSpan := opts.StartSpan("bridge", obs.Int("internal_ffs", int64(len(internal))),
		obs.Int("deps_before", int64(a.DepStats.DepsBeforeBridge)))
	dep.Bridge(m, internal)
	bridgeSpan.End()
	bridgeDone()
	a.DepStats.BridgedFFs = len(internal)
	a.DepStats.FFsDenoted = a.total - len(internal)
	a.DepStats.DepsAfterBridge = m.CountDeps()
	a.Base = m
	opts.Logf("bridge: %d internal FFs eliminated, %d -> %d deps",
		len(internal), a.DepStats.DepsBeforeBridge, a.DepStats.DepsAfterBridge)
	if err := opts.Err(); err != nil {
		return nil, err
	}

	closureDone := opts.Stage("closure").Start()
	a.Clo = m.Clone()
	if err := dep.ClosureOpts(a.Clo, opts); err != nil {
		return nil, err
	}
	closureDone()
	a.DepStats.DepsMultiCycle = a.Clo.CountDeps()
	a.DepStats.ClosurePathDeps = a.Clo.CountPath()
	opts.Logf("closure: %d multi-cycle deps (%d path)",
		a.DepStats.DepsMultiCycle, a.DepStats.ClosurePathDeps)

	a.Denoted = make([]bool, a.total)
	for i := range a.Denoted {
		a.Denoted[i] = true
	}
	for _, k := range internal {
		a.Denoted[k] = false
	}
	if err := opts.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// WithSpec returns a shallow copy of the analysis evaluating a
// different security specification. The dependency matrices do not
// depend on the specification, so one analysis can be reused across
// many specs (the experimental protocol evaluates 16 specifications per
// generated circuit).
func (a *Analysis) WithSpec(spec *secspec.Spec) *Analysis {
	cp := *a
	cp.Spec = spec
	// Attributes depend on the specification: the copy must not reuse
	// (or share) the original's cached fixed point.
	cp.cache = &propCache{}
	return &cp
}

// Total returns the size of the combined index space.
func (a *Analysis) Total() int { return a.total }

// NumCircuitFFs returns the number of circuit flip-flop indices.
func (a *Analysis) NumCircuitFFs() int { return a.nCirc }

// ScanIndex returns the combined index of scan flip-flop bit of
// register reg.
func (a *Analysis) ScanIndex(reg, bit int) int { return a.regOffset[reg] + bit }

// NodeModule returns the module of a combined index.
func (a *Analysis) NodeModule(n int) int { return a.nodeModule[n] }

// IsScanNode reports whether the combined index is a scan flip-flop,
// and if so of which register and bit.
func (a *Analysis) IsScanNode(n int) (reg, bit int, ok bool) {
	if n < a.nCirc {
		return 0, 0, false
	}
	// regOffset ascending: binary search for the register.
	r := sort.Search(len(a.regOffset), func(i int) bool { return a.regOffset[i] > n }) - 1
	return r, n - a.regOffset[r], true
}

// NodeName renders a combined index for diagnostics.
func (a *Analysis) NodeName(n int) string {
	if r, b, ok := a.IsScanNode(n); ok {
		return fmt.Sprintf("R%d.SF%d", r, b)
	}
	return fmt.Sprintf("ff:%s", a.Circuit.FFs[n].Name)
}

// InsecurePair is a fixed-infrastructure data flow that violates the
// specification independently of the reconfigurable scan wiring.
type InsecurePair struct {
	Src, Dst int // combined indices; data flows Src -> Dst
}

// InsecureLogic returns the security violations that exist over the
// fixed infrastructure alone (circuit logic, register chains and
// capture/update links) — violations that no re-wiring of the RSN can
// resolve and that require a redesign of the circuit (Section III-B).
// Pairs are sorted by (Src, Dst) so every run — parallel or not —
// reports them byte-identically.
func (a *Analysis) InsecureLogic() []InsecurePair {
	var out []InsecurePair
	for i := 0; i < a.total; i++ {
		if !a.Denoted[i] {
			continue
		}
		mi := a.nodeModule[i]
		a.Clo.PathDependsOn(i).ForEach(func(j int) {
			if !a.Denoted[j] {
				return
			}
			if a.Spec.Violates(a.nodeModule[j], mi) {
				out = append(out, InsecurePair{Src: j, Dst: i})
			}
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// InsecureModulePairs deduplicates InsecureLogic to module pairs.
func (a *Analysis) InsecureModulePairs() [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, p := range a.InsecureLogic() {
		mp := [2]int{a.nodeModule[p.Src], a.nodeModule[p.Dst]}
		if !seen[mp] {
			seen[mp] = true
			out = append(out, mp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Violation is a detected security violation: confidential data flows
// functionally into node Node (a scan flip-flop or a denoted circuit
// flip-flop) whose module may not hold it.
type Violation struct {
	Node int
	// Missing is the trust category of Node's module, absent from the
	// arriving attribute.
	Missing secspec.Category
}

// propagation holds the fixed-point attribute state for one wiring.
type propagation struct {
	attrIn  []secspec.CatSet
	attrOut []secspec.CatSet
}

// lastIndex returns the combined index of the last scan flip-flop of a
// register.
func (a *Analysis) lastIndex(reg int) int { return a.regOffset[reg] + a.regLen[reg] - 1 }

// active reports whether a propagation node carries attributes: mux
// pseudo-nodes always do, combined indices only when denoted.
func (a *Analysis) active(n int) bool { return n >= a.total || a.Denoted[n] }

// srcIdx maps a wiring source reference to its propagation node, or -1
// for the scan-in port (no constraint). Mux m is the transparent
// pseudo-node a.total+m.
func (a *Analysis) srcIdx(ref rsn.Ref) int {
	switch ref.Kind {
	case rsn.KRegister:
		return a.lastIndex(int(ref.ID))
	case rsn.KMux:
		return a.total + int(ref.ID)
	}
	return -1
}

// buildWiring derives the reverse wiring adjacency of the network's
// current inter-register connections: node -> nodes to re-evaluate when
// its out-attribute changes. The fixed Base edges are not included —
// they are read from the matrix directly.
func (a *Analysis) buildWiring(nw *rsn.Network) [][]int32 {
	size := a.total + len(nw.Muxes)
	wdep := make([][]int32, size)
	addDep := func(src rsn.Ref, sink int) {
		if s := a.srcIdx(src); s >= 0 {
			wdep[s] = append(wdep[s], int32(sink))
		}
	}
	for r := range nw.Registers {
		addDep(nw.Registers[r].In, a.ScanIndex(r, 0))
	}
	for m := range nw.Muxes {
		for _, in := range nw.Muxes[m].Inputs {
			addDep(in, a.total+m)
		}
	}
	return wdep
}

// runWorklist drives the monotone-decreasing attribute iteration to its
// fixed point from the given seed queue, re-evaluating nodes whose
// inputs changed. The queue is consumed through a head index and
// compacted in place once the dead prefix dominates, so the worklist
// never retains its backing array's consumed half (the former
// queue=queue[1:] pattern leaked the whole array until completion).
// It returns the number of node evaluations.
func (a *Analysis) runWorklist(nw *rsn.Network, wdep [][]int32, p *propagation, queue []int32, inQueue []bool) int64 {
	all := secspec.AllCats(a.Spec.NumCategories)
	evals := int64(0)
	head := 0
	for head < len(queue) {
		if head >= 1024 && head*2 >= len(queue) {
			queue = queue[:copy(queue, queue[head:])]
			head = 0
		}
		n := int(queue[head])
		head++
		inQueue[n] = false
		evals++

		in := all
		var out secspec.CatSet
		if n >= a.total {
			// Transparent mux node: intersection of its inputs.
			for _, ref := range nw.Muxes[n-a.total].Inputs {
				if s := a.srcIdx(ref); s >= 0 {
					in &= p.attrOut[s]
				}
			}
			out = in
		} else {
			a.Base.PathDependsOn(n).ForEach(func(u int) {
				if a.Denoted[u] {
					in &= p.attrOut[u]
				}
			})
			if r, bit, ok := a.IsScanNode(n); ok && bit == 0 {
				if s := a.srcIdx(nw.Registers[r].In); s >= 0 {
					in &= p.attrOut[s]
				}
			}
			out = in & a.Spec.Accepts[a.nodeModule[n]]
		}
		p.attrIn[n] = in
		if out == p.attrOut[n] {
			continue
		}
		p.attrOut[n] = out
		// Re-evaluate everything fed by n.
		push := func(d int32) {
			if a.active(int(d)) && !inQueue[d] {
				inQueue[d] = true
				queue = append(queue, d)
			}
		}
		if n < a.total {
			a.Base.PathDependents(n).ForEach(func(d int) { push(int32(d)) })
		}
		for _, d := range wdep[n] {
			push(d)
		}
	}
	return evals
}

// propagate computes the omnidirectional fixed point of security
// attributes over the combined graph from scratch: fixed Base edges
// plus the network's current inter-register wiring. Scan multiplexers
// are transparent pseudo-nodes (indices a.total..a.total+muxes-1) so
// the wiring contributes O(edges) work instead of flattening mux
// chains. All active nodes start at top and seed the worklist; the
// finite attribute lattice guarantees convergence to the greatest fixed
// point, which is unique — the reference point the incremental
// propagateDelta must reproduce exactly.
func (a *Analysis) propagate(nw *rsn.Network) *propagation {
	stage := a.eng.Stage("propagate")
	defer stage.Start()()
	span := a.eng.StartSpan("propagate")
	defer span.End()
	all := secspec.AllCats(a.Spec.NumCategories)
	size := a.total + len(nw.Muxes)
	p := &propagation{
		attrIn:  make([]secspec.CatSet, size),
		attrOut: make([]secspec.CatSet, size),
	}
	for i := 0; i < a.total; i++ {
		p.attrIn[i] = all
		p.attrOut[i] = all & a.Spec.Accepts[a.nodeModule[i]]
	}
	for i := a.total; i < size; i++ {
		p.attrIn[i] = all
		p.attrOut[i] = all
	}
	wdep := a.buildWiring(nw)
	inQueue := make([]bool, size)
	queue := make([]int32, 0, size)
	for n := 0; n < size; n++ {
		if a.active(n) {
			queue = append(queue, int32(n))
			inQueue[n] = true
		}
	}
	evals := a.runWorklist(nw, wdep, p, queue, inQueue)
	stage.AddQueries(evals)
	return p
}

// propagateDelta computes the fixed point of nw's wiring by re-seeding
// from the parent network's fixed point instead of from scratch.
//
// The invariant making this exact: a node is dirty when its evaluation
// equation changed (its register input or mux input list differs
// between the two wirings, or it is a new mux), or when a dirty node
// feeds it — the dirty set is the forward closure of the changed-wiring
// seeds over nw's dependency edges. Every clean node therefore has the
// same equation in both wirings and only clean sources, so the clean
// region is a backward-closed subsystem identical in both networks, and
// the greatest fixed point — unique on the finite attribute lattice —
// restricted to it coincides with the parent's. Resetting the dirty
// cone to top and re-running the monotone worklist from the dirty seeds
// then reconstructs exactly the full propagation's fixed point
// (TestIncrementalPropagateMatchesFull checks this differentially on
// every candidate change of catalog benchmarks).
func (a *Analysis) propagateDelta(parent *propagation, parentNW, nw *rsn.Network) *propagation {
	stage := a.eng.Stage("propagate-delta")
	defer stage.Start()()
	// A high-frequency trace span (one per candidate trial); sample it
	// via the tracer (SampleEvery("propagate-delta", n)) on large runs.
	span := a.eng.StartSpan("propagate-delta")
	defer span.End()
	all := secspec.AllCats(a.Spec.NumCategories)
	nMux := len(nw.Muxes)
	size := a.total + nMux
	pMux := len(parentNW.Muxes)

	// Seeds: nodes whose evaluation equation changed between the two
	// wirings. Base edges are fixed infrastructure and never change;
	// the scan-out source is not a propagation node.
	var seeds []int32
	for r := range nw.Registers {
		if nw.Registers[r].In != parentNW.Registers[r].In {
			seeds = append(seeds, int32(a.ScanIndex(r, 0)))
		}
	}
	for m := 0; m < nMux; m++ {
		if m >= pMux || !refsEqual(nw.Muxes[m].Inputs, parentNW.Muxes[m].Inputs) {
			seeds = append(seeds, int32(a.total+m))
		}
	}

	p := &propagation{
		attrIn:  make([]secspec.CatSet, size),
		attrOut: make([]secspec.CatSet, size),
	}
	common := a.total + min(nMux, pMux)
	copy(p.attrIn, parent.attrIn[:common])
	copy(p.attrOut, parent.attrOut[:common])
	for i := common; i < size; i++ {
		p.attrIn[i] = all
		p.attrOut[i] = all
	}

	// Dirty cone: forward closure of the seeds over nw's edges.
	wdep := a.buildWiring(nw)
	inQueue := make([]bool, size)
	queue := make([]int32, 0, len(seeds)*4)
	for _, s := range seeds {
		if a.active(int(s)) && !inQueue[s] {
			inQueue[s] = true
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		n := int(queue[head])
		push := func(d int32) {
			if a.active(int(d)) && !inQueue[d] {
				inQueue[d] = true
				queue = append(queue, d)
			}
		}
		if n < a.total {
			a.Base.PathDependents(n).ForEach(func(d int) { push(int32(d)) })
		}
		for _, d := range wdep[n] {
			push(d)
		}
	}
	// Reset the cone to top and re-run the worklist from it.
	for _, n := range queue {
		if int(n) >= a.total {
			p.attrIn[n] = all
			p.attrOut[n] = all
		} else {
			p.attrIn[n] = all
			p.attrOut[n] = all & a.Spec.Accepts[a.nodeModule[n]]
		}
	}
	dirty := len(queue)
	evals := a.runWorklist(nw, wdep, p, queue, inQueue)
	stage.AddQueries(evals)
	stage.AddItems(int64(dirty))
	saved := a.activeCount(nw) - dirty
	stage.AddSaved(int64(saved))
	span.SetAttrs(obs.Int("dirty", int64(dirty)), obs.Int("saved", int64(saved)),
		obs.Int("evals", evals))
	return p
}

// activeCount returns the number of attribute-carrying nodes of the
// combined graph under the given wiring.
func (a *Analysis) activeCount(nw *rsn.Network) int {
	n := len(nw.Muxes)
	for i := 0; i < a.total; i++ {
		if a.Denoted[i] {
			n++
		}
	}
	return n
}

// refsEqual reports whether two wiring source lists are identical.
func refsEqual(x, y []rsn.Ref) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// propWiringEqual reports whether two networks have identical
// propagation-relevant wiring: register inputs and mux input lists.
// (The scan-out source does not feed any propagation node.)
func propWiringEqual(x, y *rsn.Network) bool {
	if len(x.Registers) != len(y.Registers) || len(x.Muxes) != len(y.Muxes) {
		return false
	}
	for r := range x.Registers {
		if x.Registers[r].In != y.Registers[r].In {
			return false
		}
	}
	for m := range x.Muxes {
		if !refsEqual(x.Muxes[m].Inputs, y.Muxes[m].Inputs) {
			return false
		}
	}
	return true
}

// fixedPoint returns the attribute fixed point of the network's current
// wiring, reusing the analysis's cached parent fixed point when
// possible: wiring-identical networks are answered from the cache
// outright, and otherwise only the dirty cone downstream of the wiring
// delta is re-propagated. Falls back to a full propagation when no
// parent is cached. The cache is updated to the returned fixed point
// (keyed by a private clone of the wiring), and all paths produce the
// identical unique greatest fixed point, so callers — including the
// parallel candidate evaluation — may race on the cache freely without
// affecting results.
func (a *Analysis) fixedPoint(nw *rsn.Network) *propagation {
	c := a.cache
	if c == nil {
		return a.propagate(nw)
	}
	c.mu.Lock()
	parent, parentNW := c.p, c.nw
	c.mu.Unlock()
	var p *propagation
	switch {
	// The register set is fixed infrastructure; a parent with a
	// different one is a foreign network the delta diff cannot relate.
	case parent == nil || len(parentNW.Registers) != len(nw.Registers):
		p = a.propagate(nw)
	case propWiringEqual(parentNW, nw):
		a.eng.Stage("propagate-delta").AddSaved(int64(a.activeCount(nw)))
		return parent
	default:
		p = a.propagateDelta(parent, parentNW, nw)
	}
	snap := nw.Clone()
	c.mu.Lock()
	c.p, c.nw = p, snap
	c.mu.Unlock()
	return p
}

// Violations returns the security violations of the network's current
// wiring, sorted by combined index — a deterministic order regardless
// of the engine's worker configuration, so reports and -explain output
// are byte-identical across runs.
func (a *Analysis) Violations(nw *rsn.Network) []Violation {
	return a.violationsFrom(a.fixedPoint(nw))
}

// violationsFrom extracts the sorted violation list from an attribute
// fixed point.
func (a *Analysis) violationsFrom(p *propagation) []Violation {
	var out []Violation
	for n := 0; n < a.total; n++ {
		if !a.Denoted[n] {
			continue
		}
		trust := a.Spec.Trust[a.nodeModule[n]]
		if !p.attrIn[n].Has(trust) {
			out = append(out, Violation{Node: n, Missing: trust})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ViolatingRegisters returns the registers containing at least one
// violating scan flip-flop, ascending.
func (a *Analysis) ViolatingRegisters(nw *rsn.Network) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range a.Violations(nw) {
		if r, _, ok := a.IsScanNode(v.Node); ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}
