package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// SnapshotSchema versions the snapshot wire encoding. Bump it when the
// layout below changes; InitFrom rejects other versions.
const SnapshotSchema = "rsnsec.hybrid-snapshot/v1"

// ErrStructuralDelta reports an edit script that changes the register
// set. The fixed infrastructure of an Analysis — the combined index
// space, the bridged dependency matrices — is built over a concrete
// register list, so such deltas need a fresh Analysis over the derived
// network instead of a dirty-cone update (exp.SecureDelta does this
// fallback automatically).
var ErrStructuralDelta = errors.New("hybrid: delta changes the register set; a fresh Analysis is required")

// Snapshot is the serializable attribute fixed point of one wiring: the
// public form of the propagation cache that seeds incremental
// re-analysis. A snapshot pairs a private clone of the wiring with the
// per-node attribute arrays, so restoring it into a compatible Analysis
// re-establishes exactly the state from which propagateDelta runs only
// the dirty cone of the next edit.
type Snapshot struct {
	nw      *rsn.Network
	attrIn  []secspec.CatSet
	attrOut []secspec.CatSet
}

// Snapshot computes (or fetches from the cache) the attribute fixed
// point of the network's current wiring and returns it in serializable
// form. The network must have the analysis's register set.
func (a *Analysis) Snapshot(nw *rsn.Network) (*Snapshot, error) {
	if err := a.compatible(nw); err != nil {
		return nil, err
	}
	p := a.fixedPoint(nw)
	return &Snapshot{
		nw:      nw.Clone(),
		attrIn:  append([]secspec.CatSet(nil), p.attrIn...),
		attrOut: append([]secspec.CatSet(nil), p.attrOut...),
	}, nil
}

// Network returns a copy of the wiring the snapshot belongs to.
func (s *Snapshot) Network() *rsn.Network { return s.nw.Clone() }

// Nodes returns the number of attribute-carrying propagation nodes
// (combined indices plus mux pseudo-nodes).
func (s *Snapshot) Nodes() int { return len(s.attrIn) }

// EncodedWidth returns an upper bound on the byte length of Encode,
// letting callers size buffers once (the zenodb EncodedWidth/InitFrom
// round-trip idiom).
func (s *Snapshot) EncodedWidth() int {
	// schema + hash frames, node count, and ≤ binary.MaxVarintLen32
	// bytes per attribute value.
	return 2 + len(SnapshotSchema) + 2 + 64 + binary.MaxVarintLen64 +
		2*len(s.attrIn)*binary.MaxVarintLen32
}

// Encode serializes the snapshot: schema string, canonical wiring hash,
// node count, then every attrIn/attrOut value as a uvarint (CatSet is a
// small bitset, so most values take one or two bytes). The encoding is
// deterministic — the same wiring and spec always produce the same
// bytes — which keeps session records content-addressable.
func (s *Snapshot) Encode() []byte {
	buf := make([]byte, 0, s.EncodedWidth())
	appendStr := func(b []byte, v string) []byte {
		b = binary.AppendUvarint(b, uint64(len(v)))
		return append(b, v...)
	}
	buf = appendStr(buf, SnapshotSchema)
	buf = appendStr(buf, rsn.CanonicalHash(s.nw))
	buf = binary.AppendUvarint(buf, uint64(len(s.attrIn)))
	for _, v := range s.attrIn {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, v := range s.attrOut {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

// InitFrom decodes an encoded snapshot against the wiring it claims to
// describe: the canonical hash embedded in the bytes must match nw, so
// a snapshot can never be restored onto the wrong network revision.
func InitFrom(nw *rsn.Network, data []byte) (*Snapshot, error) {
	rest := data
	readStr := func() (string, error) {
		n, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < n {
			return "", fmt.Errorf("hybrid: snapshot truncated")
		}
		v := string(rest[k : k+int(n)])
		rest = rest[k+int(n):]
		return v, nil
	}
	schema, err := readStr()
	if err != nil {
		return nil, err
	}
	if schema != SnapshotSchema {
		return nil, fmt.Errorf("hybrid: snapshot schema %q, want %q", schema, SnapshotSchema)
	}
	hash, err := readStr()
	if err != nil {
		return nil, err
	}
	if got := rsn.CanonicalHash(nw); hash != got {
		return nil, fmt.Errorf("hybrid: snapshot wiring hash %.12s does not match network %.12s", hash, got)
	}
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, fmt.Errorf("hybrid: snapshot truncated")
	}
	rest = rest[k:]
	s := &Snapshot{
		nw:      nw.Clone(),
		attrIn:  make([]secspec.CatSet, n),
		attrOut: make([]secspec.CatSet, n),
	}
	readCats := func(dst []secspec.CatSet) error {
		for i := range dst {
			v, k := binary.Uvarint(rest)
			if k <= 0 || v > uint64(^secspec.CatSet(0)) {
				return fmt.Errorf("hybrid: snapshot truncated or corrupt at node %d", i)
			}
			dst[i] = secspec.CatSet(v)
			rest = rest[k:]
		}
		return nil
	}
	if err := readCats(s.attrIn); err != nil {
		return nil, err
	}
	if err := readCats(s.attrOut); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("hybrid: snapshot has %d trailing bytes", len(rest))
	}
	return s, nil
}

// compatible checks that a network shares the analysis's register set
// (count and lengths) — the precondition for its indices to be valid in
// the combined index space.
func (a *Analysis) compatible(nw *rsn.Network) error {
	if len(nw.Registers) != len(a.regOffset) {
		return fmt.Errorf("%w (analysis has %d registers, network %d)",
			ErrStructuralDelta, len(a.regOffset), len(nw.Registers))
	}
	for r := range nw.Registers {
		if nw.Registers[r].Len != a.regLen[r] {
			return fmt.Errorf("%w (register R%d length %d, analysis %d)",
				ErrStructuralDelta, r, nw.Registers[r].Len, a.regLen[r])
		}
	}
	return nil
}

// Restore installs a snapshot as the analysis's cached fixed point, so
// the next Violations/ApplyDelta call re-propagates only the dirty cone
// of whatever wiring difference it sees. The snapshot must match the
// analysis's index space: same register set, and attribute arrays sized
// total+muxes. Restore replaces any previously cached state.
func (a *Analysis) Restore(s *Snapshot) error {
	if err := a.compatible(s.nw); err != nil {
		return err
	}
	if want := a.total + len(s.nw.Muxes); len(s.attrIn) != want || len(s.attrOut) != want {
		return fmt.Errorf("hybrid: snapshot has %d nodes, analysis wiring needs %d", len(s.attrIn), want)
	}
	p := &propagation{
		attrIn:  append([]secspec.CatSet(nil), s.attrIn...),
		attrOut: append([]secspec.CatSet(nil), s.attrOut...),
	}
	c := a.cache
	c.mu.Lock()
	c.p, c.nw = p, s.nw.Clone()
	c.mu.Unlock()
	return nil
}

// ApplyDelta applies an edit script to base and returns the derived
// network together with its violations, computed incrementally from the
// cached fixed point (only the dirty cone downstream of the edit is
// re-propagated; see propagateDelta for the exactness argument). Scripts
// that change the register set return ErrStructuralDelta along with the
// derived network, so callers can fall back to a fresh Analysis.
func (a *Analysis) ApplyDelta(base *rsn.Network, script *rsn.EditScript) (*rsn.Network, []Violation, error) {
	derived, err := script.Apply(base)
	if err != nil {
		return nil, nil, err
	}
	if err := a.compatible(derived); err != nil {
		return derived, nil, err
	}
	return derived, a.Violations(derived), nil
}

// WithEngine returns a shallow copy of the analysis running under a
// different engine configuration (workers, stats, tracing, context).
// The copy shares the dependency matrices AND the propagation cache, so
// per-request engine options can be threaded through a long-lived
// session analysis without losing incremental state.
func (a *Analysis) WithEngine(opts engine.Options) *Analysis {
	cp := *a
	cp.eng = opts
	return &cp
}

// InternalFFs recovers the internal (bridged-away) circuit flip-flops
// the analysis was built with — what a caller needs to rebuild an
// equivalent Analysis after a structural delta.
func (a *Analysis) InternalFFs() []netlist.FFID {
	var out []netlist.FFID
	for i := 0; i < a.nCirc; i++ {
		if !a.Denoted[i] {
			out = append(out, netlist.FFID(i))
		}
	}
	return out
}

// NumRegisters returns the register count of the analysis's fixed
// infrastructure.
func (a *Analysis) NumRegisters() int { return len(a.regOffset) }
