package hybrid

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/pure"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

func newExampleAnalysis(t *testing.T, mode dep.Mode) (*paperex.Example, *Analysis) {
	t.Helper()
	e := paperex.New()
	a := NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, mode)
	return e, a
}

func TestAnalysisIndexing(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	if a.NumCircuitFFs() != 12 {
		t.Fatalf("circuit FFs = %d", a.NumCircuitFFs())
	}
	if a.Total() != 12+14 {
		t.Fatalf("total = %d", a.Total())
	}
	for r := 0; r < 5; r++ {
		for b := 0; b < e.Network.Registers[r].Len; b++ {
			idx := a.ScanIndex(r, b)
			rr, bb, ok := a.IsScanNode(idx)
			if !ok || rr != r || bb != b {
				t.Fatalf("IsScanNode(ScanIndex(%d,%d)) = (%d,%d,%v)", r, b, rr, bb, ok)
			}
			if a.NodeModule(idx) != e.Network.Registers[r].Module {
				t.Fatalf("module of scan node wrong")
			}
		}
	}
	if _, _, ok := a.IsScanNode(3); ok {
		t.Fatal("circuit node classified as scan node")
	}
}

func TestExampleDependencies(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	// After bridging IF1/IF2, F7 path-depends on F5 and only
	// structurally on F6 (the XOR reconvergence).
	f7, f5, f6 := int(e.F[6]), int(e.F[4]), int(e.F[5])
	if got := a.Clo.Kind(f7, f5); got != dep.Path {
		t.Errorf("F7 on F5 = %v, want path", got)
	}
	if got := a.Clo.Kind(f7, f6); got != dep.Structural {
		t.Errorf("F7 on F6 = %v, want structural", got)
	}
	// F9 likewise (Figure 3).
	f9 := int(e.F[8])
	if got := a.Clo.Kind(f9, f5); got != dep.Path {
		t.Errorf("F9 on F5 = %v, want path", got)
	}
	if got := a.Clo.Kind(f9, f6); got != dep.Structural {
		t.Errorf("F9 on F6 = %v, want structural", got)
	}
	// Internal flip-flops are bridged away.
	for _, k := range e.Internal {
		if a.Denoted[k] {
			t.Fatal("internal FF denoted")
		}
	}
	// Scan chains are preset: SF2 path-depends on SF1.
	if got := a.Base.Kind(a.ScanIndex(0, 1), a.ScanIndex(0, 0)); got != dep.Path {
		t.Errorf("preset SF2 on SF1 = %v", got)
	}
	if a.PresetDeps == 0 {
		t.Error("no preset dependencies recorded")
	}
}

func TestExampleNoInsecureLogic(t *testing.T) {
	_, a := newExampleAnalysis(t, dep.Exact)
	if pairs := a.InsecureLogic(); len(pairs) != 0 {
		t.Fatalf("unexpected insecure logic: %v (e.g. %s -> %s)", len(pairs),
			a.NodeName(pairs[0].Src), a.NodeName(pairs[0].Dst))
	}
}

func TestExampleViolationsBeforeAnyResolution(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	viols := a.Violations(e.Network)
	if len(viols) == 0 {
		t.Fatal("the insecure running example must have violations")
	}
	// F7 and F9 (untrusted circuit FFs fed from the hybrid path) and
	// SR4's scan flip-flops must be among them.
	want := map[int]bool{int(e.F[6]): false, int(e.F[8]): false, a.ScanIndex(e.SR[3], 0): false}
	for _, v := range viols {
		if _, ok := want[v.Node]; ok {
			want[v.Node] = true
		}
		if v.Missing != 0 {
			t.Errorf("missing category = %d, want 0 (untrusted trust)", v.Missing)
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("expected violation at %s", a.NodeName(n))
		}
	}
	vr := a.ViolatingRegisters(e.Network)
	if len(vr) != 1 || vr[0] != e.SR[3] {
		t.Errorf("violating registers = %v, want [SR4]", vr)
	}
}

// TestExampleFullPipeline mirrors the paper's flow: resolve pure
// violations first (Figure 4), then hybrid ones (Figure 5).
func TestExampleFullPipeline(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	nw := e.Network

	pres, err := pure.Resolve(nw, e.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Changes) == 0 {
		t.Fatal("the pure scan path violation must require changes")
	}
	if v := pure.ViolatingRegisters(nw, e.Spec); len(v) != 0 {
		t.Fatalf("pure violations remain: %v", v)
	}
	// The hybrid violation must remain after the pure stage (the
	// paper's central observation).
	hviols := a.Violations(nw)
	if len(hviols) == 0 {
		t.Fatal("hybrid violation should survive the pure stage")
	}

	hres, err := Resolve(a, nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(hres.Changes) == 0 {
		t.Fatal("hybrid resolution must apply changes")
	}
	if v := a.Violations(nw); len(v) != 0 {
		t.Fatalf("violations remain after hybrid resolution: %d", len(v))
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("network invalid after resolution: %v", err)
	}
	if len(nw.Registers) != 5 {
		t.Fatal("resolution must keep every scan register")
	}
	// As in Figure 5, the register updating F5 must no longer receive
	// crypto data: SR1 must not reach SR3 over pure paths.
	if nw.PureReaches(rsn.Reg(e.SR[0]), rsn.Reg(e.SR[2])) {
		t.Fatal("crypto register still reaches the update register of the hybrid path")
	}
}

func TestStructuralApproxFindsMoreViolations(t *testing.T) {
	e, aExact := newExampleAnalysis(t, dep.Exact)
	aApprox := NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.StructuralApprox)
	ve := aExact.Violations(e.Network)
	va := aApprox.Violations(e.Network)
	if len(va) < len(ve) {
		t.Fatalf("approx found fewer violations (%d) than exact (%d)", len(va), len(ve))
	}
	if aApprox.DepStats.SATCalls != 0 {
		t.Fatal("approx mode must not call SAT")
	}
	if aExact.DepStats.SATCalls == 0 {
		t.Fatal("exact mode must call SAT")
	}
}

// TestReconvergenceSecureUnderExact builds a network whose only
// cross-module circuit path is masked by a reconvergence: exact
// analysis reports no violation, the structural over-approximation a
// false positive (the paper's IV-C effect).
func TestReconvergenceSecureUnderExact(t *testing.T) {
	e := paperex.New()
	// Rewire F7 and F9 so the untrusted module sees only the masked
	// (structural-only) signal: F7' = XOR(IF2, XOR(IF2, F7)) == F7.
	c := e.Circuit
	n7 := c.FFs[e.F[6]].Node
	if2 := c.FFs[e.IF2].Node
	inner := c.AddGate(netlist.Xor, if2, n7)
	c.SetFFInput(e.F[6], c.AddGate(netlist.Xor, if2, inner))
	c.SetFFInput(e.F[8], c.FFs[e.F[8]].Node)

	// Remove every pure path into the untrusted register: SR4 now scans
	// in directly, and M2 routes SR5/SR3 to the scan-out port instead.
	e.Network.Connect(e.SR[3], rsn.ScanIn)
	e.Network.Muxes[e.M2].Inputs = []rsn.Ref{rsn.Reg(e.SR[4]), rsn.Reg(e.SR[2])}
	e.Network.ConnectOut(rsn.Mx(e.M2))
	if err := e.Network.Validate(); err != nil {
		t.Fatal(err)
	}

	aExact := NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact)
	if v := aExact.Violations(e.Network); len(v) != 0 {
		t.Fatalf("exact mode: unexpected violations: %d at %s", len(v), aExact.NodeName(v[0].Node))
	}
	aApprox := NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.StructuralApprox)
	if v := aApprox.Violations(e.Network); len(v) == 0 {
		t.Fatal("structural approximation should report a false positive here")
	}
}

func TestInsecureLogicDetection(t *testing.T) {
	e := paperex.New()
	// Wire the untrusted module directly to crypto state: F7' = F2.
	e.Circuit.SetFFInput(e.F[6], e.Circuit.FFs[e.F[1]].Node)
	a := NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact)
	pairs := a.InsecureLogic()
	if len(pairs) == 0 {
		t.Fatal("direct crypto-to-untrusted circuit path must be insecure logic")
	}
	mp := a.InsecureModulePairs()
	found := false
	for _, p := range mp {
		if p[0] == e.Crypto && p[1] == e.Untrusted {
			found = true
		}
	}
	if !found {
		t.Fatalf("module pairs = %v, want crypto->untrusted", mp)
	}
}

func TestResolveIdempotentOnSecureNetwork(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	nw := e.Network
	if _, err := pure.Resolve(nw, e.Spec); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(a, nw); err != nil {
		t.Fatal(err)
	}
	res, err := Resolve(a, nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Fatalf("second resolve applied %d changes", len(res.Changes))
	}
}

func TestChangeCostString(t *testing.T) {
	c := Change{Cut: rsn.Sink{Elem: rsn.Reg(2)}, OldSrc: rsn.Mx(0), NewSrc: rsn.ScanIn, NewMuxes: 1}
	if c.Cost() != 2 || c.String() == "" {
		t.Fatal("Change helpers broken")
	}
}

func TestErrInsecureLogicError(t *testing.T) {
	e := &ErrInsecureLogic{Src: 1, Dst: 2, Name: "a -> b"}
	if e.Error() == "" {
		t.Fatal("empty error")
	}
}

func TestCompressedAttrsRoundTrip(t *testing.T) {
	attrs := []secspec.CatSet{
		secspec.AllCats(4), secspec.AllCats(4),
		secspec.NewCatSet(2, 3), secspec.NewCatSet(2, 3),
	}
	ra := CompressRegister(attrs)
	for i, want := range attrs {
		if got := ra.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	// Uniform register.
	u := []secspec.CatSet{secspec.NewCatSet(1), secspec.NewCatSet(1)}
	ru := CompressRegister(u)
	if ru.ChangeAt != -1 || ru.At(0) != u[0] || ru.At(1) != u[1] {
		t.Fatal("uniform compression wrong")
	}
}

func TestCompressedAttrsSoundness(t *testing.T) {
	// With multiple changes the compressed form must be a sound
	// under-approximation (never claims more accepted categories).
	attrs := []secspec.CatSet{
		secspec.AllCats(4),
		secspec.NewCatSet(1, 2, 3),
		secspec.NewCatSet(2, 3),
		secspec.NewCatSet(3),
	}
	ra := CompressRegister(attrs)
	for i, exact := range attrs {
		got := ra.At(i)
		if got&^exact != 0 {
			t.Fatalf("At(%d) = %v claims categories beyond exact %v", i, got, exact)
		}
	}
}

func TestRegisterAttrsMatchPropagation(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	ras := a.RegisterAttrs(e.Network)
	if len(ras) != len(e.Network.Registers) {
		t.Fatalf("got %d register attrs", len(ras))
	}
	p := a.propagate(e.Network)
	for r := range ras {
		for b := 0; b < e.Network.Registers[r].Len; b++ {
			exact := p.attrIn[a.ScanIndex(r, b)]
			got := ras[r].At(b)
			if got&^exact != 0 {
				t.Fatalf("register %d bit %d: compressed %v beyond exact %v", r, b, got, exact)
			}
		}
	}
}

func BenchmarkAnalysisRunningExample(b *testing.B) {
	e := paperex.New()
	for i := 0; i < b.N; i++ {
		NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact)
	}
}

func BenchmarkViolationsRunningExample(b *testing.B) {
	e, a := func() (*paperex.Example, *Analysis) {
		e := paperex.New()
		return e, NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Violations(e.Network)
	}
}

func TestExplainViolation(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	viols := a.Violations(e.Network)
	if len(viols) == 0 {
		t.Fatal("no violations to explain")
	}
	// Explain the violation at F7 (untrusted circuit flip-flop).
	var target int = -1
	for _, v := range viols {
		if v.Node == int(e.F[6]) {
			target = v.Node
		}
	}
	if target < 0 {
		t.Fatal("F7 not violating")
	}
	ex, err := a.Explain(e.Network, target)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CulpritModule != e.Crypto || ex.TargetModule != e.Untrusted {
		t.Fatalf("modules: %d -> %d", ex.CulpritModule, ex.TargetModule)
	}
	if ex.WiringHops == 0 {
		t.Fatal("the hybrid flow must cross reconfigurable wiring")
	}
	s := ex.String()
	if !strings.Contains(s, "wiring") || !strings.Contains(s, "F7") {
		t.Fatalf("explanation string uninformative: %s", s)
	}
	if len(ex.Steps) < 3 {
		t.Fatalf("flow too short: %v", ex.Steps)
	}
	if ex.Steps[0].Via != "" {
		t.Fatal("first step must be the origin")
	}
}

func TestExplainAll(t *testing.T) {
	e, a := newExampleAnalysis(t, dep.Exact)
	exps := a.ExplainAll(e.Network)
	if len(exps) == 0 {
		t.Fatal("no explanations")
	}
	for _, ex := range exps {
		if !a.Spec.Violates(ex.CulpritModule, ex.TargetModule) {
			t.Fatalf("explanation for a non-violating pair %d->%d", ex.CulpritModule, ex.TargetModule)
		}
	}
}

func TestExplainInsecureLogic(t *testing.T) {
	e := paperex.New()
	// Untrusted module reads crypto state directly.
	e.Circuit.SetFFInput(e.F[6], e.Circuit.FFs[e.F[1]].Node)
	a := NewAnalysis(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact)
	ex, err := a.Explain(e.Network, int(e.F[6]))
	if err == nil {
		t.Fatal("expected ErrInsecureLogic")
	}
	if _, ok := err.(*ErrInsecureLogic); !ok {
		t.Fatalf("unexpected error type: %v", err)
	}
	if ex == nil || ex.WiringHops != 0 {
		t.Fatalf("explanation should still describe the fixed flow: %+v", ex)
	}
}

// TestAnalysisCancellation checks that a cancelled context aborts the
// pipeline construction with the context's error and no analysis.
func TestAnalysisCancellation(t *testing.T) {
	e := paperex.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := NewAnalysisOpts(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact, engine.Options{Context: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a != nil {
		t.Fatal("cancelled construction must not return an analysis")
	}
}

// TestAnalysisOptsStats checks that one full pipeline run records every
// engine stage with consistent counters.
func TestAnalysisOptsStats(t *testing.T) {
	e := paperex.New()
	stats := engine.NewStats()
	a, err := NewAnalysisOpts(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact, engine.Options{Stats: stats})
	if err != nil || a == nil {
		t.Fatalf("NewAnalysisOpts: %v", err)
	}
	a.Violations(e.Network) // the propagate stage runs on demand
	got := map[string]engine.StageSnapshot{}
	for _, st := range stats.Snapshot() {
		got[st.Name] = st
	}
	for _, name := range []string{"one-cycle", "bridge", "closure", "propagate"} {
		st, ok := got[name]
		if !ok {
			t.Fatalf("stage %q not recorded (have %v)", name, stats)
		}
		if st.Calls == 0 {
			t.Fatalf("stage %q recorded no calls", name)
		}
	}
	if got["one-cycle"].Queries != int64(a.DepStats.SATCalls) {
		t.Fatalf("one-cycle queries %d != SAT calls %d", got["one-cycle"].Queries, a.DepStats.SATCalls)
	}
}
