package hybrid

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rsn"
)

// Change records one applied structural modification bundle.
type Change struct {
	// Cut is the input pin that was disconnected.
	Cut rsn.Sink
	// OldSrc and NewSrc are the pin's sources before and after.
	OldSrc, NewSrc rsn.Ref
	// NewMuxes counts multiplexers inserted while re-attaching
	// separated segments.
	NewMuxes int
	// Culprit and Target are the combined indices of the flow the
	// change severed.
	Culprit, Target int
}

// Cost is the structural cost minimized by the candidate selection.
func (c Change) Cost() int { return 1 + c.NewMuxes }

func (c Change) String() string {
	return fmt.Sprintf("cut %v<-%v, reconnect to %v (+%d mux)", c.Cut.Elem, c.OldSrc, c.NewSrc, c.NewMuxes)
}

// Result summarizes a hybrid resolution run.
type Result struct {
	Changes []Change
	// ViolationsBefore is the number of violating nodes before any
	// change.
	ViolationsBefore int
}

// hop is one reconfigurable wiring edge on a violating flow: the last
// scan flip-flop of register From feeds the first of register To.
type hop struct {
	From, To int
}

// ErrInsecureLogic reports a violating flow that uses no reconfigurable
// wiring: it cannot be resolved by transforming the RSN.
type ErrInsecureLogic struct {
	Src, Dst int
	Name     string
}

func (e *ErrInsecureLogic) Error() string {
	return fmt.Sprintf("hybrid: flow %s is carried by circuit logic and fixed scan structure alone; resolving it requires a circuit redesign", e.Name)
}

// culpritPath searches backward from the violating node v for a source
// node u whose module data must not reach v, returning u and the wiring
// hops on the u-to-v flow.
func (a *Analysis) culpritPath(nw *rsn.Network, v int) (int, []hop, error) {
	u, _, hops, err := a.flowChain(nw, v)
	return u, hops, err
}

// flowChain is culpritPath plus the full node chain from culprit to
// target (used by Explain). The BFS state is kept in dense slices keyed
// by combined index — the search runs once per violation inside the
// resolve loop, where the former per-call maps dominated the allocation
// profile: visited/parentNext/parentWire are flat arrays of a.total
// entries, and a wiring hop is reconstructed from the registers of its
// two endpoint scan flip-flops instead of being stored per edge.
func (a *Analysis) flowChain(nw *rsn.Network, v int) (int, []int, []hop, error) {
	visited := make([]bool, a.total)
	parentNext := make([]int32, a.total) // node x flows into parentNext[x], toward v
	parentWire := make([]bool, a.total)  // the x -> parentNext[x] edge is a wiring hop
	visited[v] = true
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(v))
	vmod := a.nodeModule[v]
	var culprit = -1
	for head := 0; head < len(queue) && culprit < 0; head++ {
		y := int(queue[head])
		expand := func(x int, wire bool) {
			if visited[x] || !a.Denoted[x] {
				return
			}
			visited[x] = true
			parentNext[x] = int32(y)
			parentWire[x] = wire
			if a.Spec.Violates(a.nodeModule[x], vmod) {
				culprit = x
			}
			queue = append(queue, int32(x))
		}
		a.Base.PathDependsOn(y).ForEach(func(x int) {
			if culprit < 0 {
				expand(x, false)
			}
		})
		if culprit >= 0 {
			break
		}
		if r, bit, ok := a.IsScanNode(y); ok && bit == 0 {
			// Each node is dequeued at most once, so resolving the
			// register's wiring sources here (instead of precomputing
			// them for every register) does no repeated work.
			for _, src := range nw.EffectiveSources(r) {
				if src.Kind != rsn.KRegister {
					continue
				}
				expand(a.lastIndex(int(src.ID)), true)
				if culprit >= 0 {
					break
				}
			}
		}
	}
	if culprit < 0 {
		return -1, nil, nil, fmt.Errorf("hybrid: node %s violates but no culprit flow found", a.NodeName(v))
	}
	var hops []hop
	chain := []int{culprit}
	for n := culprit; n != v; {
		next := int(parentNext[n])
		if parentWire[n] {
			// The hop's endpoints: n is the last scan flip-flop of the
			// source register, next the first of the fed register.
			fromReg, _, _ := a.IsScanNode(n)
			toReg, _, _ := a.IsScanNode(next)
			hops = append(hops, hop{From: fromReg, To: toReg})
		}
		n = next
		chain = append(chain, n)
	}
	if len(hops) == 0 {
		return culprit, chain, nil, &ErrInsecureLogic{Src: culprit, Dst: v,
			Name: fmt.Sprintf("%s -> %s", a.NodeName(culprit), a.NodeName(v))}
	}
	return culprit, chain, hops, nil
}

// maxChanges bounds the resolve loop against pathological oscillation.
func maxChanges(nw *rsn.Network) int { return 8*len(nw.Registers) + 64 }

// Resolve repeatedly detects and repairs hybrid-path violations until
// the network is secure. It mutates nw and returns the applied changes.
//
// Violation checking is incremental: the fixed point of the current
// wiring is computed once and threaded through the loop, each candidate
// cut/reconnect is evaluated by delta propagation from it (only the
// dirty cone downstream of the changed wiring is re-run), and the
// winning candidate's fixed point becomes the next iteration's current
// one — CutAndReconnect is deterministic, so re-applying the winning
// change to nw reproduces the trial wiring exactly. Candidate trials
// fan out over the engine's worker pool; the unique greatest fixed
// point and the strict minimum-cost tie-break in candidate order keep
// the applied changes byte-identical to the sequential evaluation at
// any worker count. The analysis's engine context is honored between
// iterations, and the stage's wall time and change count are reported
// through its engine stats.
func Resolve(a *Analysis, nw *rsn.Network) (*Result, error) {
	stage := a.eng.Stage("resolve")
	defer stage.Start()()
	res := &Result{}
	span := a.eng.StartSpan("resolve")
	defer span.End()
	defer func() {
		stage.AddQueries(int64(len(res.Changes)))
		span.SetAttrs(obs.Int("violations_before", int64(res.ViolationsBefore)),
			obs.Int("changes", int64(len(res.Changes))))
	}()
	ctx := a.eng.Ctx()
	cur := a.fixedPoint(nw)
	res.ViolationsBefore = len(a.violationsFrom(cur))
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		viols := a.violationsFrom(cur)
		if len(viols) == 0 {
			return res, nil
		}
		if len(res.Changes) >= maxChanges(nw) {
			return res, fmt.Errorf("hybrid: resolution did not converge after %d changes (%d violations left)", len(res.Changes), len(viols))
		}
		v := viols[0].Node
		u, hops, err := a.culpritPath(nw, v)
		if err != nil {
			return res, err
		}
		ch, next, err := a.resolveOne(nw, cur, u, v, hops, len(viols))
		if err != nil {
			return res, err
		}
		res.Changes = append(res.Changes, ch)
		cur = next
	}
}

// resolveOne cuts one wiring hop of the violating flow and re-connects
// the separated segments, evaluating candidates on clones and applying
// the lowest-cost acceptable one. cur is the fixed point of nw's
// current wiring; the returned propagation is the fixed point of the
// applied change's wiring.
func (a *Analysis) resolveOne(nw *rsn.Network, cur *propagation, u, v int, hops []hop, before int) (Change, *propagation, error) {
	type candidate struct {
		pin    rsn.Sink
		newSrc rsn.Ref
	}
	var cands []candidate
	for _, h := range hops {
		pin := rsn.Sink{Elem: rsn.Reg(h.To), Idx: 0}
		// Compatible pure-path predecessors of the segment being cut
		// free, cheapest first; then the always-available scan-in port.
		smod := a.regModule[h.To]
		taken := 0
		for _, pr := range nw.PurePredecessors(h.To) {
			if pr == h.From {
				continue
			}
			if !cur.attrOut[a.lastIndex(pr)].Has(a.Spec.Trust[smod]) {
				continue
			}
			cands = append(cands, candidate{pin, rsn.Reg(pr)})
			if taken++; taken >= 4 {
				break
			}
		}
		cands = append(cands, candidate{pin, rsn.ScanIn})
	}

	// Evaluate every candidate on its own clone, in parallel over the
	// worker pool. Each result lands in its candidate's slot; the trial
	// fixed points are exact (delta propagation from cur reproduces the
	// unique greatest fixed point), so scheduling cannot change any
	// score. Structural validation is deferred to winner selection —
	// candidates rarely fail it, so scoring first and validating only
	// prospective winners trades a per-candidate graph traversal for a
	// per-change one without affecting which valid candidate wins.
	type scored struct {
		ok      bool
		muxes   int
		removed bool
		after   int
		trial   *rsn.Network
		p       *propagation
	}
	results := make([]scored, len(cands))
	stage := a.eng.Stage("resolve")
	stage.AddItems(int64(len(cands)))
	evalCand := func(i int) {
		c := cands[i]
		trial := nw.Clone()
		muxes, err := trial.CutAndReconnect(c.pin, c.newSrc)
		if err != nil {
			return
		}
		tp := a.propagateDelta(cur, nw, trial)
		after := a.violationsFrom(tp)
		if len(after) > before {
			return
		}
		results[i] = scored{
			ok: true, muxes: muxes,
			removed: !violatesNode(after, v), after: len(after),
			trial: trial, p: tp,
		}
	}
	if workers := a.eng.WorkerCount(); workers > 1 && len(cands) > 1 {
		if workers > len(cands) {
			workers = len(cands)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) {
						return
					}
					evalCand(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range cands {
			evalCand(i)
		}
	}

	// Pick the winner with a strict tie-break in candidate order: the
	// first candidate strictly better than everything chosen before it,
	// byte-identical to the former sequential scan. A prospective
	// winner that fails structural validation is discarded and the scan
	// repeated — removing an invalid maximum one at a time selects
	// exactly the maximum over the valid candidates, so deferring
	// validation cannot change the applied change.
	betterThan := func(s, t *scored) bool {
		if t == nil {
			return true
		}
		if s.removed != t.removed {
			return s.removed
		}
		if s.after != t.after {
			return s.after < t.after
		}
		return s.muxes < t.muxes
	}
	best := -1
	for {
		best = -1
		for i := range results {
			if !results[i].ok {
				continue
			}
			var cmp *scored
			if best >= 0 {
				cmp = &results[best]
			}
			if betterThan(&results[i], cmp) {
				best = i
			}
		}
		if best < 0 || results[best].trial.Validate() == nil {
			break
		}
		results[best].ok = false
	}
	if best < 0 {
		return Change{}, nil, fmt.Errorf("hybrid: no valid candidate to sever flow %s -> %s", a.NodeName(u), a.NodeName(v))
	}
	oldSrc := nw.SinkSource(cands[best].pin)
	muxes, err := nw.CutAndReconnect(cands[best].pin, cands[best].newSrc)
	if err != nil {
		return Change{}, nil, err
	}
	return Change{
		Cut:      cands[best].pin,
		OldSrc:   oldSrc,
		NewSrc:   cands[best].newSrc,
		NewMuxes: muxes,
		Culprit:  u,
		Target:   v,
	}, results[best].p, nil
}

func violatesNode(vs []Violation, n int) bool {
	for _, v := range vs {
		if v.Node == n {
			return true
		}
	}
	return false
}
