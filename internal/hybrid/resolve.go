package hybrid

import (
	"fmt"

	"repro/internal/rsn"
)

// Change records one applied structural modification bundle.
type Change struct {
	// Cut is the input pin that was disconnected.
	Cut rsn.Sink
	// OldSrc and NewSrc are the pin's sources before and after.
	OldSrc, NewSrc rsn.Ref
	// NewMuxes counts multiplexers inserted while re-attaching
	// separated segments.
	NewMuxes int
	// Culprit and Target are the combined indices of the flow the
	// change severed.
	Culprit, Target int
}

// Cost is the structural cost minimized by the candidate selection.
func (c Change) Cost() int { return 1 + c.NewMuxes }

func (c Change) String() string {
	return fmt.Sprintf("cut %v<-%v, reconnect to %v (+%d mux)", c.Cut.Elem, c.OldSrc, c.NewSrc, c.NewMuxes)
}

// Result summarizes a hybrid resolution run.
type Result struct {
	Changes []Change
	// ViolationsBefore is the number of violating nodes before any
	// change.
	ViolationsBefore int
}

// hop is one reconfigurable wiring edge on a violating flow: the last
// scan flip-flop of register From feeds the first of register To.
type hop struct {
	From, To int
}

// ErrInsecureLogic reports a violating flow that uses no reconfigurable
// wiring: it cannot be resolved by transforming the RSN.
type ErrInsecureLogic struct {
	Src, Dst int
	Name     string
}

func (e *ErrInsecureLogic) Error() string {
	return fmt.Sprintf("hybrid: flow %s is carried by circuit logic and fixed scan structure alone; resolving it requires a circuit redesign", e.Name)
}

// culpritPath searches backward from the violating node v for a source
// node u whose module data must not reach v, returning u and the wiring
// hops on the u-to-v flow.
func (a *Analysis) culpritPath(nw *rsn.Network, v int) (int, []hop, error) {
	u, _, hops, err := a.flowChain(nw, v)
	return u, hops, err
}

// flowChain is culpritPath plus the full node chain from culprit to
// target (used by Explain).
func (a *Analysis) flowChain(nw *rsn.Network, v int) (int, []int, []hop, error) {
	type edge struct {
		next   int  // node this one flows into (toward v)
		wiring *hop // non-nil if the edge is a wiring hop
	}
	parent := make(map[int]edge, 64)
	visited := make(map[int]bool, 64)
	visited[v] = true
	queue := []int{v}
	vmod := a.nodeModule[v]
	wiring := make([][]rsn.Ref, len(nw.Registers))
	for r := range nw.Registers {
		wiring[r] = nw.EffectiveSources(r)
	}
	var culprit = -1
	for len(queue) > 0 && culprit < 0 {
		y := queue[0]
		queue = queue[1:]
		expand := func(x int, w *hop) {
			if visited[x] || !a.Denoted[x] {
				return
			}
			visited[x] = true
			parent[x] = edge{next: y, wiring: w}
			if a.Spec.Violates(a.nodeModule[x], vmod) {
				culprit = x
			}
			queue = append(queue, x)
		}
		a.Base.PathDependsOn(y).ForEach(func(x int) {
			if culprit < 0 {
				expand(x, nil)
			}
		})
		if culprit >= 0 {
			break
		}
		if r, bit, ok := a.IsScanNode(y); ok && bit == 0 {
			for _, src := range wiring[r] {
				if src.Kind != rsn.KRegister {
					continue
				}
				h := hop{From: int(src.ID), To: r}
				expand(a.lastIndex(int(src.ID)), &h)
				if culprit >= 0 {
					break
				}
			}
		}
	}
	if culprit < 0 {
		return -1, nil, nil, fmt.Errorf("hybrid: node %s violates but no culprit flow found", a.NodeName(v))
	}
	var hops []hop
	chain := []int{culprit}
	for n := culprit; n != v; {
		e := parent[n]
		if e.wiring != nil {
			hops = append(hops, *e.wiring)
		}
		n = e.next
		chain = append(chain, n)
	}
	if len(hops) == 0 {
		return culprit, chain, nil, &ErrInsecureLogic{Src: culprit, Dst: v,
			Name: fmt.Sprintf("%s -> %s", a.NodeName(culprit), a.NodeName(v))}
	}
	return culprit, chain, hops, nil
}

// maxChanges bounds the resolve loop against pathological oscillation.
func maxChanges(nw *rsn.Network) int { return 8*len(nw.Registers) + 64 }

// Resolve repeatedly detects and repairs hybrid-path violations until
// the network is secure. It mutates nw and returns the applied changes.
// Security attributes are propagated anew after every change (the
// paper's III-D choice over a root-cause analysis). The analysis's
// engine context is honored between iterations, and the stage's wall
// time and change count are reported through its engine stats.
func Resolve(a *Analysis, nw *rsn.Network) (*Result, error) {
	stage := a.eng.Stage("resolve")
	defer stage.Start()()
	res := &Result{}
	defer func() { stage.AddQueries(int64(len(res.Changes))) }()
	ctx := a.eng.Ctx()
	res.ViolationsBefore = len(a.Violations(nw))
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		viols := a.Violations(nw)
		if len(viols) == 0 {
			return res, nil
		}
		if len(res.Changes) >= maxChanges(nw) {
			return res, fmt.Errorf("hybrid: resolution did not converge after %d changes (%d violations left)", len(res.Changes), len(viols))
		}
		v := viols[0].Node
		u, hops, err := a.culpritPath(nw, v)
		if err != nil {
			return res, err
		}
		ch, err := a.resolveOne(nw, u, v, hops, len(viols))
		if err != nil {
			return res, err
		}
		res.Changes = append(res.Changes, ch)
	}
}

// resolveOne cuts one wiring hop of the violating flow and re-connects
// the separated segments, evaluating candidates on clones and applying
// the lowest-cost acceptable one.
func (a *Analysis) resolveOne(nw *rsn.Network, u, v int, hops []hop, before int) (Change, error) {
	type candidate struct {
		pin    rsn.Sink
		newSrc rsn.Ref
	}
	var cands []candidate
	p := a.propagate(nw)
	for _, h := range hops {
		pin := rsn.Sink{Elem: rsn.Reg(h.To), Idx: 0}
		// Compatible pure-path predecessors of the segment being cut
		// free, cheapest first; then the always-available scan-in port.
		smod := a.regModule[h.To]
		taken := 0
		for _, pr := range nw.PurePredecessors(h.To) {
			if pr == h.From {
				continue
			}
			if !p.attrOut[a.lastIndex(pr)].Has(a.Spec.Trust[smod]) {
				continue
			}
			cands = append(cands, candidate{pin, rsn.Reg(pr)})
			if taken++; taken >= 4 {
				break
			}
		}
		cands = append(cands, candidate{pin, rsn.ScanIn})
	}

	type scored struct {
		c       candidate
		muxes   int
		removed bool
		after   int
	}
	var best *scored
	betterThan := func(s, t *scored) bool {
		if t == nil {
			return true
		}
		if s.removed != t.removed {
			return s.removed
		}
		if s.after != t.after {
			return s.after < t.after
		}
		return s.muxes < t.muxes
	}
	for _, c := range cands {
		trial := nw.Clone()
		muxes, err := trial.CutAndReconnect(c.pin, c.newSrc)
		if err != nil || trial.Validate() != nil {
			continue
		}
		after := a.Violations(trial)
		if len(after) > before {
			continue
		}
		s := scored{c: c, muxes: muxes, removed: !violatesNode(after, v), after: len(after)}
		if betterThan(&s, best) {
			cp := s
			best = &cp
		}
	}
	if best == nil {
		return Change{}, fmt.Errorf("hybrid: no valid candidate to sever flow %s -> %s", a.NodeName(u), a.NodeName(v))
	}
	oldSrc := nw.SinkSource(best.c.pin)
	muxes, err := nw.CutAndReconnect(best.c.pin, best.c.newSrc)
	if err != nil {
		return Change{}, err
	}
	return Change{
		Cut:      best.c.pin,
		OldSrc:   oldSrc,
		NewSrc:   best.c.newSrc,
		NewMuxes: muxes,
		Culprit:  u,
		Target:   v,
	}, nil
}

func violatesNode(vs []Violation, n int) bool {
	for _, v := range vs {
		if v.Node == n {
			return true
		}
	}
	return false
}
