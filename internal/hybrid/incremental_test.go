package hybrid

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/pure"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// catalogCase reconstructs a scaled catalog benchmark with an attached
// circuit and a generated specification that produces hybrid
// violations (searching a few spec seeds), the same structures the
// experimental protocol runs on.
func catalogCase(tb testing.TB, name string, scale float64, seed int64) (*Analysis, *rsn.Network) {
	tb.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		tb.Fatalf("unknown benchmark %q", name)
	}
	nw := b.Build(scale)
	att := bench.AttachCircuit(nw, bench.DefaultCircuitConfig(), seed)
	for specSeed := int64(0); specSeed < 24; specSeed++ {
		spec := secspec.Generate(len(nw.Modules), secspec.DefaultGenConfig(), specSeed)
		a := NewAnalysis(nw, att.Circuit, att.Internal, spec, dep.Exact)
		if len(a.InsecureModulePairs()) > 0 {
			continue
		}
		if len(a.violationsFrom(a.propagate(nw))) > 0 {
			return a, nw
		}
	}
	tb.Fatalf("%s: no spec seed with resolvable violations found", name)
	return nil, nil
}

// propEqual compares two propagations attribute for attribute.
func propEqual(tb testing.TB, ctx string, full, delta *propagation) {
	tb.Helper()
	if len(full.attrIn) != len(delta.attrIn) {
		tb.Fatalf("%s: node counts differ: %d vs %d", ctx, len(full.attrIn), len(delta.attrIn))
	}
	for n := range full.attrIn {
		if full.attrIn[n] != delta.attrIn[n] {
			tb.Fatalf("%s: attrIn[%d] = %v incremental, %v full", ctx, n, delta.attrIn[n], full.attrIn[n])
		}
		if full.attrOut[n] != delta.attrOut[n] {
			tb.Fatalf("%s: attrOut[%d] = %v incremental, %v full", ctx, n, delta.attrOut[n], full.attrOut[n])
		}
	}
}

// TestIncrementalPropagateMatchesFull is the differential check of the
// delta worklist: it drives the resolve loop over catalog benchmarks
// and, at every iteration, evaluates EVERY candidate cut/reconnect
// change — all compatible pure-path predecessors of each wiring hop,
// uncapped, plus the scan-in fallback — comparing the incremental
// propagation (re-seeded from the parent wiring's fixed point) against
// a from-scratch propagation, attribute for attribute. It also checks
// deltas from a stale ancestor fixed point (the multi-change diff the
// shared cache produces under parallel candidate evaluation).
func TestIncrementalPropagateMatchesFull(t *testing.T) {
	for _, name := range []string{"BasicSCB", "TreeFlat", "MBIST_1_5_5"} {
		t.Run(name, func(t *testing.T) {
			a, nw := catalogCase(t, name, 0.15, 7)
			p0 := a.propagate(nw)
			nw0 := nw.Clone()
			candidates := 0
			for step := 0; step < 12; step++ {
				parent := a.propagate(nw)
				viols := a.violationsFrom(parent)
				if len(viols) == 0 {
					break
				}
				v := viols[0].Node
				u, hops, err := a.culpritPath(nw, v)
				if err != nil {
					break // insecure-logic flow: nothing to transform
				}
				for _, h := range hops {
					pin := rsn.Sink{Elem: rsn.Reg(h.To), Idx: 0}
					var srcs []rsn.Ref
					for _, pr := range nw.PurePredecessors(h.To) {
						if pr != h.From {
							srcs = append(srcs, rsn.Reg(pr))
						}
					}
					srcs = append(srcs, rsn.ScanIn)
					for _, src := range srcs {
						trial := nw.Clone()
						if _, err := trial.CutAndReconnect(pin, src); err != nil || trial.Validate() != nil {
							continue
						}
						full := a.propagate(trial)
						propEqual(t, "parent delta", full, a.propagateDelta(parent, nw, trial))
						propEqual(t, "ancestor delta", full, a.propagateDelta(p0, nw0, trial))
						candidates++
					}
				}
				if _, next, err := a.resolveOne(nw, parent, u, v, hops, len(viols)); err != nil {
					break
				} else {
					propEqual(t, "applied change", a.propagate(nw), next)
				}
			}
			if candidates == 0 {
				t.Fatal("no candidate changes were compared")
			}
			t.Logf("%s: %d candidate changes compared", name, candidates)
		})
	}
}

// TestFixedPointCache checks the cache semantics: identical wiring is
// answered with the cached fixed point outright, changed wiring goes
// through the delta path with the identical result, and a WithSpec copy
// never reuses the original's cache (attributes depend on the spec).
func TestFixedPointCache(t *testing.T) {
	a, nw := catalogCase(t, "BasicSCB", 0.15, 7)

	p1 := a.fixedPoint(nw)
	if a.fixedPoint(nw) != p1 {
		t.Fatal("identical wiring must be answered from the cache")
	}
	propEqual(t, "cached full", a.propagate(nw), p1)

	// Re-wire, then check the delta-path answer against from-scratch.
	viols := a.violationsFrom(p1)
	_, hops, err := a.culpritPath(nw, viols[0].Node)
	if err != nil {
		t.Fatal(err)
	}
	trial := nw.Clone()
	if _, err := trial.CutAndReconnect(rsn.Sink{Elem: rsn.Reg(hops[0].To), Idx: 0}, rsn.ScanIn); err != nil {
		t.Fatal(err)
	}
	p2 := a.fixedPoint(trial)
	if p2 == p1 {
		t.Fatal("changed wiring must not be answered from the cache")
	}
	propEqual(t, "delta path", a.propagate(trial), p2)

	// A spec copy must compute its own fixed point for the same wiring.
	spec2 := a.Spec.Clone()
	if len(spec2.Accepts) > 0 {
		spec2.Accepts[0] = 0
	}
	b := a.WithSpec(spec2)
	if b.cache == a.cache {
		t.Fatal("WithSpec must install a fresh cache")
	}
	propEqual(t, "spec copy", b.propagate(trial), b.fixedPoint(trial))
}

// TestResolveDeterministicAcrossWorkers checks the byte-identical
// output guarantee of the parallel candidate evaluation: the applied
// change sequence of Resolve must not depend on the worker count —
// results land in candidate-order slots, the trial fixed points are
// exact at any schedule, and the tie-break scans slots in order.
func TestResolveDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"BasicSCB", "TreeFlat"} {
		t.Run(name, func(t *testing.T) {
			a, nw := catalogCase(t, name, 0.15, 7)
			var ref []Change
			for i, workers := range []int{1, 3, 8} {
				an, err := NewAnalysisOpts(nw, a.Circuit, internalOf(a), a.Spec, a.Mode,
					engine.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				run := nw.Clone()
				res, err := Resolve(an, run)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if i == 0 {
					ref = res.Changes
					continue
				}
				if len(res.Changes) != len(ref) {
					t.Fatalf("workers=%d: %d changes, want %d", workers, len(res.Changes), len(ref))
				}
				for j := range ref {
					if res.Changes[j] != ref[j] {
						t.Fatalf("workers=%d: change %d = %v, want %v", workers, j, res.Changes[j], ref[j])
					}
				}
			}
		})
	}
}

// internalOf recovers the bridged (internal) flip-flop list of an
// analysis from its Denoted marks.
func internalOf(a *Analysis) []netlist.FFID {
	var out []netlist.FFID
	for f := 0; f < a.NumCircuitFFs(); f++ {
		if !a.Denoted[f] {
			out = append(out, netlist.FFID(f))
		}
	}
	return out
}

// BenchmarkPropagate measures one from-scratch fixed-point propagation
// over a scaled catalog benchmark's combined graph.
func BenchmarkPropagate(b *testing.B) {
	a, nw := catalogCase(b, "MBIST_1_5_5", 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.propagate(nw)
	}
}

// BenchmarkPropagateDelta measures the incremental propagation of one
// candidate cut/reconnect change against the cached parent fixed point.
func BenchmarkPropagateDelta(b *testing.B) {
	a, nw := catalogCase(b, "MBIST_1_5_5", 0.15, 7)
	parent := a.propagate(nw)
	viols := a.violationsFrom(parent)
	_, hops, err := a.culpritPath(nw, viols[0].Node)
	if err != nil {
		b.Fatal(err)
	}
	trial := nw.Clone()
	if _, err := trial.CutAndReconnect(rsn.Sink{Elem: rsn.Reg(hops[0].To), Idx: 0}, rsn.ScanIn); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.propagateDelta(parent, nw, trial)
	}
}

// BenchmarkResolveHybrid measures a full hybrid resolution run — the
// loop the incremental propagation and parallel candidate evaluation
// target — on a scaled catalog benchmark.
func BenchmarkResolveHybrid(b *testing.B) {
	a, nw := catalogCase(b, "BasicSCB", 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		an := a.WithSpec(a.Spec) // fresh cache: measure from cold
		run := nw.Clone()
		b.StartTimer()
		if _, err := Resolve(an, run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveHybridFlexScan measures the resolve loop on the
// serial-bypass benchmark scaled to the recorded 350 flip-flop budget
// — the workload that dominates the original experimental protocol's
// hybrid stage. It mirrors one protocol run: a role-aware generated
// specification and the pure stage applied first, so Resolve sees the
// post-pure network.
func BenchmarkResolveHybridFlexScan(b *testing.B) {
	bm, ok := bench.ByName("FlexScan")
	if !ok {
		b.Fatal("FlexScan missing from the catalog")
	}
	nw := bm.Build(bm.ScaleForTarget(350))
	att := bench.AttachCircuit(nw, bench.DefaultCircuitConfig(), 7)
	an, err := NewAnalysisOpts(nw, att.Circuit, att.Internal, nil, dep.Exact, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var a2 *Analysis
	var run *rsn.Network
	for specSeed := int64(0); specSeed < 64 && run == nil; specSeed++ {
		spec := secspec.GenerateWithRoles(len(nw.Modules), att.DataSources, secspec.DefaultGenConfig(), specSeed)
		cand := an.WithSpec(spec)
		if len(cand.InsecureModulePairs()) > 0 {
			continue
		}
		r := nw.Clone()
		if len(cand.Violations(r)) == 0 {
			continue
		}
		if _, err := pure.Resolve(r, spec); err != nil {
			continue
		}
		if len(cand.Violations(r)) == 0 {
			continue
		}
		a2, run = cand, r
	}
	if run == nil {
		b.Fatal("no spec seed with post-pure hybrid violations found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		an2 := a2.WithSpec(a2.Spec) // fresh cache: measure from cold
		r := run.Clone()
		b.StartTimer()
		if _, err := Resolve(an2, r); err != nil {
			b.Fatal(err)
		}
	}
}
