package hybrid

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/rsn"
)

// TestSnapshotEncodeRoundTrip drives the full persistence seam:
// Snapshot → Encode → InitFrom → Restore into a freshly built analysis,
// whose cached state must then answer exactly like a from-scratch
// propagation.
func TestSnapshotEncodeRoundTrip(t *testing.T) {
	a, nw := catalogCase(t, "BasicSCB", 0.15, 7)
	snap, err := a.Snapshot(nw)
	if err != nil {
		t.Fatal(err)
	}
	data := snap.Encode()
	if len(data) > snap.EncodedWidth() {
		t.Fatalf("Encode produced %d bytes, EncodedWidth promised %d", len(data), snap.EncodedWidth())
	}
	if string(data) != string(snap.Encode()) {
		t.Fatal("Encode is not deterministic")
	}
	got, err := InitFrom(nw, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != snap.Nodes() {
		t.Fatalf("round trip changed node count: %d vs %d", got.Nodes(), snap.Nodes())
	}
	b := NewAnalysis(nw, a.Circuit, internalOf(a), a.Spec, a.Mode)
	if err := b.Restore(got); err != nil {
		t.Fatal(err)
	}
	propEqual(t, "restored fixed point", b.propagate(nw), b.fixedPoint(nw))
	if len(b.Violations(nw)) != len(a.Violations(nw)) {
		t.Fatal("restored analysis reports different violations")
	}
}

// TestSnapshotInitFromErrors checks the decoder's rejection paths:
// wrong wiring revision, truncation, trailing garbage, alien schema.
func TestSnapshotInitFromErrors(t *testing.T) {
	a, nw := catalogCase(t, "BasicSCB", 0.15, 7)
	snap, err := a.Snapshot(nw)
	if err != nil {
		t.Fatal(err)
	}
	data := snap.Encode()

	other := nw.Clone()
	pin := rsn.Sink{Elem: rsn.Reg(1), Idx: 0}
	if other.Registers[1].In == rsn.ScanIn {
		pin = rsn.Sink{Elem: rsn.Reg(2), Idx: 0}
	}
	if _, err := other.CutAndReconnect(pin, rsn.ScanIn); err != nil {
		t.Fatal(err)
	}
	if _, err := InitFrom(other, data); err == nil {
		t.Fatal("snapshot restored onto rewired network")
	}
	if _, err := InitFrom(nw, data[:len(data)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := InitFrom(nw, append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), data...)
	bad[1] ^= 0xff // inside the schema string
	if _, err := InitFrom(nw, bad); err == nil {
		t.Fatal("corrupted schema accepted")
	}
}

// TestApplyDeltaStructural checks the structural-fallback contract: a
// script that grows the register set still returns the derived network,
// but flags it with ErrStructuralDelta instead of computing violations
// against the stale index space.
func TestApplyDeltaStructural(t *testing.T) {
	a, nw := catalogCase(t, "BasicSCB", 0.15, 7)
	scr := &rsn.EditScript{Ops: []rsn.EditOp{
		{Op: rsn.OpAddRegister, Pin: "R0", Src: "SI", Name: "nx", Len: 2, Module: 0},
	}}
	if !scr.AddsRegisters() {
		t.Fatal("AddsRegisters = false")
	}
	derived, viols, err := a.ApplyDelta(nw, scr)
	if !errors.Is(err, ErrStructuralDelta) {
		t.Fatalf("err = %v, want ErrStructuralDelta", err)
	}
	if derived == nil || len(derived.Registers) != len(nw.Registers)+1 {
		t.Fatal("structural delta did not return the derived network")
	}
	if viols != nil {
		t.Fatal("structural delta returned violations from a stale index space")
	}
	// Snapshot rejects the incompatible wiring the same way.
	if _, err := a.Snapshot(derived); !errors.Is(err, ErrStructuralDelta) {
		t.Fatalf("Snapshot err = %v, want ErrStructuralDelta", err)
	}
}

// randomWiringScript builds a random wiring-only edit script against
// nw: one to maxOps cut/reconnect ops over register pins, each
// validated on an evolving clone so the whole script is applicable.
// Returns nil when no legal op was found.
func randomWiringScript(r *rand.Rand, nw *rsn.Network, maxOps int) *rsn.EditScript {
	tmp := nw.Clone()
	var ops []rsn.EditOp
	want := 1 + r.Intn(maxOps)
	for tries := 0; len(ops) < want && tries < 60; tries++ {
		reg := r.Intn(len(tmp.Registers))
		cur := tmp.Registers[reg].In
		// Candidate sources: any other register, or scan-in. Cycles and
		// other illegal rewirings are rejected by the trial validation.
		var srcs []rsn.Ref
		for cand := range tmp.Registers {
			if ref := rsn.Reg(cand); cand != reg && ref != cur {
				srcs = append(srcs, ref)
			}
		}
		if cur != rsn.ScanIn {
			srcs = append(srcs, rsn.ScanIn)
		}
		if len(srcs) == 0 {
			continue
		}
		src := srcs[r.Intn(len(srcs))]
		trial := tmp.Clone()
		if _, err := trial.CutAndReconnect(rsn.Sink{Elem: rsn.Reg(reg), Idx: 0}, src); err != nil || trial.Validate() != nil {
			continue
		}
		tmp = trial
		ops = append(ops, rsn.EditOp{Op: rsn.OpCutReconnect, Pin: rsn.Reg(reg).String(), Src: src.String()})
	}
	if len(ops) == 0 {
		return nil
	}
	return &rsn.EditScript{Ops: ops}
}

// violationSig folds a violation list into a comparable signature.
func violationSig(nw *rsn.Network, viols []Violation) string {
	return fmt.Sprintf("%s|%v", rsn.CanonicalHash(nw), viols)
}

// TestDeltaChainMatchesFullAnalysis is the randomized differential
// check of the incremental session seam: a chain of random edit
// scripts, applied through ApplyDelta on one long-lived analysis (with
// periodic Encode/InitFrom/Restore persistence round-trips mid-chain),
// must report bit-identical Violations and InsecureModulePairs to an
// independent from-scratch analysis of every derived network — and the
// whole chain must be invariant under the engine worker count.
func TestDeltaChainMatchesFullAnalysis(t *testing.T) {
	const steps = 25
	for _, name := range []string{"BasicSCB", "TreeFlat"} {
		t.Run(name, func(t *testing.T) {
			a0, base := catalogCase(t, name, 0.15, 7)
			internal := internalOf(a0)
			var ref []string
			for wi, workers := range []int{1, 3, 8} {
				an, err := NewAnalysisOpts(base, a0.Circuit, internal, a0.Spec, a0.Mode,
					engine.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				r := rand.New(rand.NewSource(42)) // same chain at every worker count
				nw := base
				var sigs []string
				for step := 0; step < steps; step++ {
					scr := randomWiringScript(r, nw, 3)
					if scr == nil {
						t.Fatalf("workers=%d step %d: no legal edit found", workers, step)
					}
					derived, viols, err := an.ApplyDelta(nw, scr)
					if err != nil {
						t.Fatalf("workers=%d step %d: %v", workers, step, err)
					}
					fresh := NewAnalysis(derived, a0.Circuit, internal, a0.Spec, a0.Mode)
					if got, want := violationSig(derived, viols), violationSig(derived, fresh.Violations(derived)); got != want {
						t.Fatalf("workers=%d step %d: incremental violations diverge from full analysis:\n inc  %s\n full %s",
							workers, step, got, want)
					}
					if got, want := fmt.Sprint(an.InsecureModulePairs()), fmt.Sprint(fresh.InsecureModulePairs()); got != want {
						t.Fatalf("workers=%d step %d: insecure module pairs diverge: %s vs %s", workers, step, got, want)
					}
					sigs = append(sigs, violationSig(derived, viols))
					if step%7 == 3 {
						// Persistence round trip mid-chain: the restored
						// state must continue the chain unchanged.
						snap, err := an.Snapshot(derived)
						if err != nil {
							t.Fatalf("workers=%d step %d: %v", workers, step, err)
						}
						restored, err := InitFrom(derived, snap.Encode())
						if err != nil {
							t.Fatalf("workers=%d step %d: %v", workers, step, err)
						}
						if err := an.Restore(restored); err != nil {
							t.Fatalf("workers=%d step %d: %v", workers, step, err)
						}
					}
					nw = derived
				}
				if wi == 0 {
					ref = sigs
					continue
				}
				for i := range ref {
					if sigs[i] != ref[i] {
						t.Fatalf("workers=%d: step %d signature diverges from workers=1:\n %s\n %s",
							workers, i, sigs[i], ref[i])
					}
				}
			}
		})
	}
}
