// Package clitest builds every cmd/ binary and audits their output
// discipline: under -q, stdout carries nothing but the machine
// artifact (a JSON report, an ICL file, DIMACS result lines — or
// nothing at all) and stderr stays empty, so the tools compose into
// pipelines without stray writes corrupting the stream.
package clitest

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "rsnsec-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator),
		"repro/cmd/rsnbench", "repro/cmd/rsnsec", "repro/cmd/rsnsat",
		"repro/cmd/rsngen", "repro/cmd/rsnserved")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(binDir)
		panic("building CLIs: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// runCLI executes one built binary and returns stdout and stderr
// separately.
func runCLI(t *testing.T, name string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestRsnbenchQuietStdoutIsPureJSON(t *testing.T) {
	stdout, stderr := runCLI(t, "rsnbench",
		"-table", "main", "-benchmarks", "TreeFlat",
		"-circuits", "1", "-specs", "2", "-ffbudget", "60",
		"-q", "-report", "-")
	if stderr != "" {
		t.Errorf("rsnbench -q wrote to stderr:\n%s", stderr)
	}
	var report map[string]any
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("rsnbench -q -report - stdout is not a single JSON document: %v\n%s", err, stdout)
	}
	if report["schema"] != "rsnsec.run-report/v1" {
		t.Errorf("unexpected schema: %v", report["schema"])
	}
}

func TestRsnbenchQuietWithoutReportIsSilent(t *testing.T) {
	stdout, stderr := runCLI(t, "rsnbench",
		"-table", "sizes", "-benchmarks", "TreeFlat", "-q")
	if stdout != "" || stderr != "" {
		t.Errorf("rsnbench -q must be silent, got stdout=%q stderr=%q", stdout, stderr)
	}
}

func TestRsnsecQuietIsSilent(t *testing.T) {
	stdout, stderr := runCLI(t, "rsnsec",
		"-benchmark", "TreeFlat", "-scale", "0.1", "-q", "-v")
	if stdout != "" {
		t.Errorf("rsnsec -q wrote to stdout:\n%s", stdout)
	}
	if stderr != "" {
		t.Errorf("rsnsec -q wrote to stderr (even with -v, quiet wins):\n%s", stderr)
	}
}

func TestRsnsecDeltaQuietStdoutIsPureJSON(t *testing.T) {
	script := filepath.Join(t.TempDir(), "edit.json")
	// add-register applies on any network, independent of the base
	// wiring, so the test is deterministic across benchmarks.
	if err := os.WriteFile(script, []byte(
		`{"ops":[{"op":"add-register","pin":"R0","src":"SI","name":"dx","len":1,"module":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr := runCLI(t, "rsnsec",
		"-benchmark", "TreeFlat", "-scale", "0.1", "-delta", script, "-q")
	if stderr != "" {
		t.Errorf("rsnsec -delta -q wrote to stderr:\n%s", stderr)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("rsnsec -delta -q stdout is not a single JSON document: %v\n%s", err, stdout)
	}
	if doc["schema"] != "rsnsec.delta-report/v1" {
		t.Errorf("unexpected schema: %v", doc["schema"])
	}
	if doc["diff"] == nil || doc["report"] == nil {
		t.Errorf("delta document missing diff or report:\n%s", stdout)
	}
	if doc["script_ops"] != float64(1) {
		t.Errorf("script_ops = %v, want 1", doc["script_ops"])
	}
}

func TestRsngenQuietStdoutIsPureICL(t *testing.T) {
	stdout, stderr := runCLI(t, "rsngen",
		"-benchmark", "TreeFlat", "-scale", "0.05", "-q")
	if stderr != "" {
		t.Errorf("rsngen -q wrote to stderr:\n%s", stderr)
	}
	if !strings.HasPrefix(stdout, "ScanNetwork ") {
		t.Fatalf("rsngen stdout is not an ICL document:\n%.200s", stdout)
	}
}

func TestRsnsatQuietStdoutIsPureDIMACS(t *testing.T) {
	cnf := filepath.Join(t.TempDir(), "f.cnf")
	if err := os.WriteFile(cnf, []byte("p cnf 2 2\n1 2 0\n-1 2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binDir, "rsnsat"), "-q", "-stats", cnf)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 10 {
		t.Fatalf("rsnsat on a satisfiable formula: err=%v", err)
	}
	if errb.Len() != 0 {
		t.Errorf("rsnsat -q wrote to stderr:\n%s", errb.String())
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "s ") && !strings.HasPrefix(line, "v ") {
			t.Errorf("rsnsat -q emitted a non-result line: %q", line)
		}
	}
}

func TestRsnservedQuietIsSilent(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "rsnserved"),
		"-q", "-addr", "localhost:0", "-drain-timeout", "2s")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let it bind and settle
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rsnserved did not exit cleanly on SIGTERM: %v\nstderr: %s", err, errb.String())
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("rsnserved ignored SIGTERM")
	}
	if out.Len() != 0 || errb.Len() != 0 {
		t.Errorf("rsnserved -q must be silent, got stdout=%q stderr=%q", out.String(), errb.String())
	}
}

// TestVersionFlag checks that every binary answers -version with a
// single stamped line naming the tool, and nothing else.
func TestVersionFlag(t *testing.T) {
	for _, tool := range []string{"rsnsec", "rsnbench", "rsngen", "rsnsat", "rsnserved"} {
		stdout, stderr := runCLI(t, tool, "-version")
		if stderr != "" {
			t.Errorf("%s -version wrote to stderr:\n%s", tool, stderr)
		}
		if !strings.HasPrefix(stdout, tool+" ") || strings.Count(stdout, "\n") != 1 {
			t.Errorf("%s -version output %q", tool, stdout)
		}
	}
}

// TestRsngenLoggingKeepsStdoutPure turns structured logging ON and
// checks the stream discipline still holds: the machine artifact owns
// stdout, the JSON log records own stderr.
func TestRsngenLoggingKeepsStdoutPure(t *testing.T) {
	dir := t.TempDir()
	stdout, stderr := runCLI(t, "rsngen",
		"-benchmark", "TreeFlat", "-scale", "0.05", "-out", dir, "-log-format", "json")
	if stdout != "" {
		t.Errorf("rsngen with -out wrote to stdout:\n%s", stdout)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(stderr), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("stderr line is not a JSON record: %v\n%s", err, line)
		}
		if m["msg"] == "benchmark written" && m["benchmark"] == "TreeFlat" {
			found = true
		}
	}
	if !found {
		t.Errorf("no structured progress record on stderr:\n%s", stderr)
	}
}

// TestExplicitLogLevelOverridesQuiet checks the precedence contract:
// -q silences logging unless the user explicitly passed -log-level.
func TestExplicitLogLevelOverridesQuiet(t *testing.T) {
	dir := t.TempDir()
	_, stderr := runCLI(t, "rsngen",
		"-benchmark", "TreeFlat", "-scale", "0.05", "-out", dir, "-q", "-log-level", "info")
	if !strings.Contains(stderr, "benchmark written") {
		t.Errorf("-log-level info should override -q, stderr:\n%s", stderr)
	}
	_, stderr = runCLI(t, "rsngen",
		"-benchmark", "TreeFlat", "-scale", "0.05", "-out", dir, "-q")
	if stderr != "" {
		t.Errorf("-q alone must silence logging, stderr:\n%s", stderr)
	}
}

// TestRsnservedTelemetryEndToEnd boots the real daemon and follows one
// correlated request through the whole telemetry surface: the caller's
// X-Request-ID and traceparent must come back on the response, appear
// in the flight recorder, and land in the structured access log — with
// the access-log record carrying every schema field the log consumers
// (and the CI correlation job) rely on.
func TestRsnservedTelemetryEndToEnd(t *testing.T) {
	const (
		reqID   = "req-clitest-e2e"
		traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	)
	stderrPath := filepath.Join(t.TempDir(), "rsnserved.stderr")
	errf, err := os.Create(stderrPath)
	if err != nil {
		t.Fatal(err)
	}
	defer errf.Close()
	cmd := exec.Command(filepath.Join(binDir, "rsnserved"),
		"-addr", "localhost:0", "-drain-timeout", "10s",
		"-log-format", "json", "-readyz-saturation", "30s")
	cmd.Stderr = errf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its resolved listen address; poll the log for it.
	logRecords := func() []map[string]any {
		data, err := os.ReadFile(stderrPath)
		if err != nil {
			return nil
		}
		var recs []map[string]any
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			var m map[string]any
			if json.Unmarshal([]byte(line), &m) == nil {
				recs = append(recs, m)
			}
		}
		return recs
	}
	var base string
	deadline := time.Now().Add(15 * time.Second)
	for base == "" {
		for _, m := range logRecords() {
			if m["msg"] == "rsnserved listening" {
				base, _ = m["addr"].(string)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("rsnserved never logged its listen address")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One correlated submission against the real engine.
	body := `{"benchmark":"TreeFlat","circuits":1,"specs":1,"target_scan_ffs":60,"seed":3}`
	req, err := http.NewRequest("POST", base+"/v1/analyses", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	req.Header.Set("Traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, respData)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("X-Request-ID echo = %q", got)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.Contains(tp, traceID) {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, traceID)
	}
	var st struct {
		ID        string `json:"id"`
		RequestID string `json:"request_id"`
		TraceID   string `json:"trace_id"`
	}
	if err := json.Unmarshal(respData, &st); err != nil {
		t.Fatalf("decode status: %v\n%s", err, respData)
	}
	if st.RequestID != reqID || st.TraceID != traceID {
		t.Fatalf("job identity = %q/%q", st.RequestID, st.TraceID)
	}

	// Wait for the job, then check the flight recorder joins the IDs.
	deadline = time.Now().Add(60 * time.Second)
	for {
		r2, err := http.Get(base + "/v1/analyses/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var poll struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if err := json.Unmarshal(data, &poll); err != nil {
			t.Fatalf("poll decode: %v\n%s", err, data)
		}
		if poll.State == "done" {
			break
		}
		if poll.State == "failed" || poll.State == "canceled" {
			t.Fatalf("job %s: %s", poll.State, poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (state %s)", poll.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	r3, err := http.Get(base + "/debug/events?job=" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	evData, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	if !strings.Contains(string(evData), reqID) || !strings.Contains(string(evData), traceID) {
		t.Fatalf("/debug/events lacks the request identity:\n%s", evData)
	}
	// The load surface answers while we are here.
	r4, err := http.Get(base + "/v1/load")
	if err != nil {
		t.Fatal(err)
	}
	loadData, _ := io.ReadAll(r4.Body)
	r4.Body.Close()
	if !strings.Contains(string(loadData), "predicted_backlog_seconds") {
		t.Fatalf("/v1/load shape:\n%s", loadData)
	}

	// Shut down and audit the access log: the submit record must carry
	// the forwarded identity and the full schema.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rsnserved exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rsnserved ignored SIGTERM")
	}
	found := false
	for _, m := range logRecords() {
		if m["msg"] != "access" || m["endpoint"] != "submit" {
			continue
		}
		found = true
		if m["request_id"] != reqID || m["trace_id"] != traceID {
			t.Fatalf("access log identity = %v/%v", m["request_id"], m["trace_id"])
		}
		for _, key := range []string{"time", "level", "component", "method", "path", "status", "bytes", "dur_ms", "remote", "span_id"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("access record lacks %q: %v", key, m)
			}
		}
	}
	if !found {
		t.Fatal("no access-log record for the submission")
	}
}
