// Package clitest builds every cmd/ binary and audits their output
// discipline: under -q, stdout carries nothing but the machine
// artifact (a JSON report, an ICL file, DIMACS result lines — or
// nothing at all) and stderr stays empty, so the tools compose into
// pipelines without stray writes corrupting the stream.
package clitest

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "rsnsec-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator),
		"repro/cmd/rsnbench", "repro/cmd/rsnsec", "repro/cmd/rsnsat",
		"repro/cmd/rsngen", "repro/cmd/rsnserved")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(binDir)
		panic("building CLIs: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// runCLI executes one built binary and returns stdout and stderr
// separately.
func runCLI(t *testing.T, name string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestRsnbenchQuietStdoutIsPureJSON(t *testing.T) {
	stdout, stderr := runCLI(t, "rsnbench",
		"-table", "main", "-benchmarks", "TreeFlat",
		"-circuits", "1", "-specs", "2", "-ffbudget", "60",
		"-q", "-report", "-")
	if stderr != "" {
		t.Errorf("rsnbench -q wrote to stderr:\n%s", stderr)
	}
	var report map[string]any
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("rsnbench -q -report - stdout is not a single JSON document: %v\n%s", err, stdout)
	}
	if report["schema"] != "rsnsec.run-report/v1" {
		t.Errorf("unexpected schema: %v", report["schema"])
	}
}

func TestRsnbenchQuietWithoutReportIsSilent(t *testing.T) {
	stdout, stderr := runCLI(t, "rsnbench",
		"-table", "sizes", "-benchmarks", "TreeFlat", "-q")
	if stdout != "" || stderr != "" {
		t.Errorf("rsnbench -q must be silent, got stdout=%q stderr=%q", stdout, stderr)
	}
}

func TestRsnsecQuietIsSilent(t *testing.T) {
	stdout, stderr := runCLI(t, "rsnsec",
		"-benchmark", "TreeFlat", "-scale", "0.1", "-q", "-v")
	if stdout != "" {
		t.Errorf("rsnsec -q wrote to stdout:\n%s", stdout)
	}
	if stderr != "" {
		t.Errorf("rsnsec -q wrote to stderr (even with -v, quiet wins):\n%s", stderr)
	}
}

func TestRsnsecDeltaQuietStdoutIsPureJSON(t *testing.T) {
	script := filepath.Join(t.TempDir(), "edit.json")
	// add-register applies on any network, independent of the base
	// wiring, so the test is deterministic across benchmarks.
	if err := os.WriteFile(script, []byte(
		`{"ops":[{"op":"add-register","pin":"R0","src":"SI","name":"dx","len":1,"module":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr := runCLI(t, "rsnsec",
		"-benchmark", "TreeFlat", "-scale", "0.1", "-delta", script, "-q")
	if stderr != "" {
		t.Errorf("rsnsec -delta -q wrote to stderr:\n%s", stderr)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("rsnsec -delta -q stdout is not a single JSON document: %v\n%s", err, stdout)
	}
	if doc["schema"] != "rsnsec.delta-report/v1" {
		t.Errorf("unexpected schema: %v", doc["schema"])
	}
	if doc["diff"] == nil || doc["report"] == nil {
		t.Errorf("delta document missing diff or report:\n%s", stdout)
	}
	if doc["script_ops"] != float64(1) {
		t.Errorf("script_ops = %v, want 1", doc["script_ops"])
	}
}

func TestRsngenQuietStdoutIsPureICL(t *testing.T) {
	stdout, stderr := runCLI(t, "rsngen",
		"-benchmark", "TreeFlat", "-scale", "0.05", "-q")
	if stderr != "" {
		t.Errorf("rsngen -q wrote to stderr:\n%s", stderr)
	}
	if !strings.HasPrefix(stdout, "ScanNetwork ") {
		t.Fatalf("rsngen stdout is not an ICL document:\n%.200s", stdout)
	}
}

func TestRsnsatQuietStdoutIsPureDIMACS(t *testing.T) {
	cnf := filepath.Join(t.TempDir(), "f.cnf")
	if err := os.WriteFile(cnf, []byte("p cnf 2 2\n1 2 0\n-1 2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binDir, "rsnsat"), "-q", "-stats", cnf)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 10 {
		t.Fatalf("rsnsat on a satisfiable formula: err=%v", err)
	}
	if errb.Len() != 0 {
		t.Errorf("rsnsat -q wrote to stderr:\n%s", errb.String())
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "s ") && !strings.HasPrefix(line, "v ") {
			t.Errorf("rsnsat -q emitted a non-result line: %q", line)
		}
	}
}

func TestRsnservedQuietIsSilent(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "rsnserved"),
		"-q", "-addr", "localhost:0", "-drain-timeout", "2s")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let it bind and settle
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rsnserved did not exit cleanly on SIGTERM: %v\nstderr: %s", err, errb.String())
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("rsnserved ignored SIGTERM")
	}
	if out.Len() != 0 || errb.Len() != 0 {
		t.Errorf("rsnserved -q must be silent, got stdout=%q stderr=%q", out.String(), errb.String())
	}
}
