package rsn

import "repro/internal/netlist"

// AppendCanonical hashes the network in canonical form: name, module
// table, register table (name, length, scan input, module,
// capture/update links) in id order, mux table (name, inputs) in id
// order, then the scan-out source. Together with the canonical forms of
// the attached circuit and the security specification this is the
// content address of an analysis (see internal/serve); bump
// netlist.CanonVersion when changing the field order.
func (nw *Network) AppendCanonical(h *netlist.Hasher) {
	h.Section("rsn")
	h.Str(nw.Name)
	h.List(len(nw.Modules))
	for _, m := range nw.Modules {
		h.Str(m)
	}
	ref := func(r Ref) {
		h.Int(int64(r.Kind))
		h.Int(int64(r.ID))
	}
	h.List(len(nw.Registers))
	for i := range nw.Registers {
		r := &nw.Registers[i]
		h.Str(r.Name)
		h.Int(int64(r.Len))
		ref(r.In)
		h.Int(int64(r.Module))
		h.List(len(r.Capture))
		for _, f := range r.Capture {
			h.Int(int64(f))
		}
		h.List(len(r.Update))
		for _, f := range r.Update {
			h.Int(int64(f))
		}
	}
	h.List(len(nw.Muxes))
	for i := range nw.Muxes {
		m := &nw.Muxes[i]
		h.Str(m.Name)
		h.List(len(m.Inputs))
		for _, in := range m.Inputs {
			ref(in)
		}
	}
	ref(nw.OutSrc)
}

// CanonicalHash returns the canonical digest of one network alone.
func CanonicalHash(nw *Network) string {
	h := netlist.NewHasher()
	nw.AppendCanonical(h)
	return h.SumHex()
}
