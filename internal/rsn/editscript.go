package rsn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// Edit operation kinds. An EditScript is an ordered list of these,
// applied front to back against a base network.
const (
	// OpCutReconnect rewires one input pin to a new source and, when
	// the cut leaves the old source without a consumer, re-attaches the
	// separated segment per Section III-D (CutAndReconnect). It errors
	// if the pin already has the requested source.
	OpCutReconnect = "cut-reconnect"
	// OpConnect rewires one input pin with no re-attachment of the old
	// source. The resulting network must still validate, so OpConnect
	// is for edits that keep every segment reachable on their own.
	OpConnect = "connect"
	// OpAddRegister adds a scan register fed by Src and splices it into
	// the pin named by Pin/PinIdx (the pin's previous source becomes
	// unused and is re-attached if it dangles).
	OpAddRegister = "add-register"
)

// EditOp is one edit against the current network state. Pin names the
// rewired input pin: the owning element as a reference string ("R3",
// "M1" or "SO") plus PinIdx for mux pins (must be 0 otherwise). Src is
// the new source reference ("R2", "M0" or "SI"). Name, Len and Module
// describe the register added by OpAddRegister.
type EditOp struct {
	Op     string `json:"op"`
	Pin    string `json:"pin,omitempty"`
	PinIdx int    `json:"pin_idx,omitempty"`
	Src    string `json:"src,omitempty"`
	Name   string `json:"name,omitempty"`
	Len    int    `json:"len,omitempty"`
	Module int    `json:"module,omitempty"`
}

// EditScript is an ordered edit sequence against a named base network:
// the unit of an incremental analysis submission. Scripts are
// content-addressed through AppendCanonical, so two scripts that
// canonicalize identically share one derived analysis key.
type EditScript struct {
	// Base, when non-empty, names the network the script applies to;
	// Apply rejects a mismatching network.
	Base string   `json:"base,omitempty"`
	Ops  []EditOp `json:"ops"`
}

// ParseRef parses the reference syntax used by edit scripts: "SI",
// "SO", "R<id>" or "M<id>" (case-insensitive element letter, decimal
// non-negative id).
func ParseRef(s string) (Ref, error) {
	switch s {
	case "SI", "si":
		return ScanIn, nil
	case "SO", "so":
		return ScanOut, nil
	}
	if len(s) >= 2 {
		var kind ElemKind
		switch s[0] {
		case 'R', 'r':
			kind = KRegister
		case 'M', 'm':
			kind = KMux
		default:
			return NoRef, fmt.Errorf("rsn: bad element reference %q", s)
		}
		id, err := strconv.Atoi(s[1:])
		if err != nil || id < 0 {
			return NoRef, fmt.Errorf("rsn: bad element reference %q", s)
		}
		return Ref{Kind: kind, ID: int32(id)}, nil
	}
	return NoRef, fmt.Errorf("rsn: bad element reference %q", s)
}

// Canonical validates the script's static shape and returns a
// normalized copy: op kinds lower-cased, references upper-case
// normalized via ParseRef round-trip, PinIdx zeroed for non-mux pins,
// add-register fields cleared on other ops. Index ranges are checked
// at Apply time, against the network state the op actually sees.
func (s *EditScript) Canonical() (*EditScript, error) {
	cp := &EditScript{Base: s.Base, Ops: make([]EditOp, len(s.Ops))}
	for i := range s.Ops {
		op := s.Ops[i]
		op.Op = strings.ToLower(strings.TrimSpace(op.Op))
		wrap := func(err error) error {
			return fmt.Errorf("rsn: edit op %d (%s): %w", i, op.Op, err)
		}
		switch op.Op {
		case OpCutReconnect, OpConnect, OpAddRegister:
		default:
			return nil, fmt.Errorf("rsn: edit op %d: unknown op %q", i, op.Op)
		}
		pin, err := ParseRef(op.Pin)
		if err != nil {
			return nil, wrap(fmt.Errorf("pin: %w", err))
		}
		switch pin.Kind {
		case KRegister, KScanOut:
			if op.PinIdx != 0 {
				return nil, wrap(fmt.Errorf("pin %s has a single input, pin_idx must be 0", pin))
			}
		case KMux:
			if op.PinIdx < 0 {
				return nil, wrap(fmt.Errorf("pin_idx %d negative", op.PinIdx))
			}
		default:
			return nil, wrap(fmt.Errorf("pin %s is not rewirable", pin))
		}
		op.Pin = pin.String()
		src, err := ParseRef(op.Src)
		if err != nil {
			return nil, wrap(fmt.Errorf("src: %w", err))
		}
		if src.Kind == KScanOut {
			return nil, wrap(fmt.Errorf("src SO cannot drive a pin"))
		}
		op.Src = src.String()
		if op.Op == OpAddRegister {
			if op.Name == "" {
				return nil, wrap(fmt.Errorf("add-register needs a name"))
			}
			if op.Len <= 0 {
				return nil, wrap(fmt.Errorf("add-register length %d must be positive", op.Len))
			}
			if op.Module < 0 {
				return nil, wrap(fmt.Errorf("add-register module %d negative", op.Module))
			}
		} else {
			op.Name, op.Len, op.Module = "", 0, 0
		}
		cp.Ops[i] = op
	}
	return cp, nil
}

// Validate checks the script's static shape (op kinds, reference
// syntax, add-register fields). Range errors against a concrete
// network surface from Apply.
func (s *EditScript) Validate() error {
	_, err := s.Canonical()
	return err
}

// AddsRegisters reports whether the script grows the register set —
// the case an existing Analysis index space cannot absorb (see
// hybrid.ErrStructuralDelta).
func (s *EditScript) AddsRegisters() bool {
	for i := range s.Ops {
		if strings.EqualFold(strings.TrimSpace(s.Ops[i].Op), OpAddRegister) {
			return true
		}
	}
	return false
}

// Apply canonicalizes the script and applies it to a clone of base,
// returning the derived network. Ops run in order, each seeing the
// network state left by its predecessors; the result must Validate.
// base is never mutated.
func (s *EditScript) Apply(base *Network) (*Network, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	if c.Base != "" && c.Base != base.Name {
		return nil, fmt.Errorf("rsn: edit script targets network %q, got %q", c.Base, base.Name)
	}
	nw := base.Clone()
	for i := range c.Ops {
		if err := nw.applyEdit(c.Ops[i]); err != nil {
			return nil, fmt.Errorf("rsn: edit op %d (%s): %w", i, c.Ops[i].Op, err)
		}
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("rsn: edited network invalid: %w", err)
	}
	return nw, nil
}

// applyEdit applies one canonicalized op in place, checking references
// against the current element ranges.
func (nw *Network) applyEdit(op EditOp) error {
	pinRef, _ := ParseRef(op.Pin)
	src, _ := ParseRef(op.Src)
	if err := nw.checkRange(pinRef); err != nil {
		return fmt.Errorf("pin: %w", err)
	}
	if err := nw.checkRange(src); err != nil {
		return fmt.Errorf("src: %w", err)
	}
	if pinRef.Kind == KMux && op.PinIdx >= len(nw.Muxes[pinRef.ID].Inputs) {
		return fmt.Errorf("pin %s input %d out of range (mux has %d inputs)",
			pinRef, op.PinIdx, len(nw.Muxes[pinRef.ID].Inputs))
	}
	pin := Sink{Elem: pinRef, Idx: op.PinIdx}
	switch op.Op {
	case OpCutReconnect:
		_, err := nw.CutAndReconnect(pin, src)
		return err
	case OpConnect:
		nw.SetSink(pin, src)
		return nil
	case OpAddRegister:
		if op.Module >= len(nw.Modules) {
			return fmt.Errorf("module %d out of range (network has %d modules)", op.Module, len(nw.Modules))
		}
		old := nw.SinkSource(pin)
		id := nw.AddRegister(op.Name, op.Len, op.Module)
		nw.Connect(id, src)
		nw.SetSink(pin, Reg(id))
		if (old.Kind == KRegister || old.Kind == KMux) && old.IsValid() && len(nw.Sinks(old)) == 0 {
			nw.reattach(old)
		}
		return nil
	}
	return fmt.Errorf("unknown op %q", op.Op)
}

// checkRange verifies an element reference exists in the network.
func (nw *Network) checkRange(r Ref) error {
	switch r.Kind {
	case KRegister:
		if int(r.ID) >= len(nw.Registers) {
			return fmt.Errorf("%s out of range (network has %d registers)", r, len(nw.Registers))
		}
	case KMux:
		if int(r.ID) >= len(nw.Muxes) {
			return fmt.Errorf("%s out of range (network has %d muxes)", r, len(nw.Muxes))
		}
	}
	return nil
}

// AppendCanonical appends the script's canonical encoding to the
// hasher: a framed section with base name, op count, and every op's
// fields in fixed order. The encoding depends only on canonicalized
// field values — never on JSON field order — so it is the stable
// identity used to derive delta analysis keys. Canonicalize first
// (Canonical or ParseEditScript) for a normalization-independent hash.
func (s *EditScript) AppendCanonical(h *netlist.Hasher) {
	h.Section("rsn.editscript")
	h.Str(s.Base)
	h.List(len(s.Ops))
	for i := range s.Ops {
		op := &s.Ops[i]
		h.Str(op.Op)
		h.Str(op.Pin)
		h.Int(int64(op.PinIdx))
		h.Str(op.Src)
		h.Str(op.Name)
		h.Int(int64(op.Len))
		h.Int(int64(op.Module))
	}
}

// CanonicalHash returns the hex SHA-256 of the canonicalized script
// under the current netlist.CanonVersion.
func (s *EditScript) CanonicalHash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := netlist.NewHasher()
	c.AppendCanonical(h)
	return h.SumHex(), nil
}

// ParseEditScript decodes the JSON form of an edit script (unknown
// fields rejected) and returns its canonicalized, validated form.
func ParseEditScript(data []byte) (*EditScript, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s EditScript
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("rsn: parse edit script: %w", err)
	}
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	if len(c.Ops) == 0 {
		return nil, fmt.Errorf("rsn: edit script has no ops")
	}
	return c, nil
}
