package rsn

import (
	"math/rand"
	"testing"
)

// TestActivePathWellFormed checks structural properties of active paths
// across random networks and configurations:
//
//   - every register on the path appears exactly once, as a contiguous
//     run of its flip-flops in ascending order;
//   - the path ends at the register driving the scan-out (after muxes);
//   - every register on the path is backward-reachable from scan-out.
func TestActivePathWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		nw := randomAccessNetwork(rng, 3+rng.Intn(10))
		if err := nw.Validate(); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 8; trial++ {
			cfg := nw.NewConfig()
			for m := range nw.Muxes {
				cfg[m] = rng.Intn(len(nw.Muxes[m].Inputs))
			}
			path, err := nw.ActivePath(cfg)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			seen := map[int]bool{}
			i := 0
			for i < len(path) {
				r := path[i].Register
				if seen[r] {
					t.Fatalf("register R%d appears twice on the path", r)
				}
				seen[r] = true
				for f := 0; f < nw.Registers[r].Len; f++ {
					if i >= len(path) || path[i].Register != r || path[i].FF != f {
						t.Fatalf("register R%d not contiguous/ordered on path %v", r, path)
					}
					i++
				}
			}
			if len(path) > 0 {
				last := path[len(path)-1].Register
				if !nw.PureReaches(Reg(last), ScanOut) {
					t.Fatalf("path tail R%d cannot reach scan-out", last)
				}
			}
		}
	}
}

// TestShiftIdentity: shifting a pattern of PathLen bits through the
// active path and then PathLen zeros returns the pattern unchanged —
// the scan path is a FIFO.
func TestShiftIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 40; iter++ {
		nw := randomAccessNetwork(rng, 3+rng.Intn(8))
		cfg := nw.NewConfig()
		for m := range nw.Muxes {
			cfg[m] = rng.Intn(len(nw.Muxes[m].Inputs))
		}
		path, err := nw.ActivePath(cfg)
		if err != nil || len(path) == 0 {
			continue
		}
		sim := NewSimulator(nw, nil)
		pattern := make([]bool, len(path))
		for i := range pattern {
			pattern[i] = rng.Intn(2) == 1
		}
		if _, err := sim.ShiftN(cfg, pattern, len(pattern)); err != nil {
			t.Fatal(err)
		}
		out, err := sim.ShiftN(cfg, nil, len(pattern))
		if err != nil {
			t.Fatal(err)
		}
		for i := range pattern {
			if out[i] != pattern[i] {
				t.Fatalf("iter %d: FIFO property violated at bit %d", iter, i)
			}
		}
	}
}

// TestPureReachesTransitive: reachability over the wiring graph is
// transitive and respects direct edges.
func TestPureReachesTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 30; iter++ {
		nw := randomAccessNetwork(rng, 4+rng.Intn(8))
		n := len(nw.Registers)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !nw.PureReaches(Reg(a), Reg(b)) {
					continue
				}
				for c := 0; c < n; c++ {
					if nw.PureReaches(Reg(b), Reg(c)) && !nw.PureReaches(Reg(a), Reg(c)) {
						t.Fatalf("transitivity violated: R%d->R%d->R%d", a, b, c)
					}
				}
			}
		}
		// Direct edges imply reachability.
		for i := range nw.Registers {
			for _, src := range nw.EffectiveSources(i) {
				if src.Kind == KRegister && !nw.PureReaches(src, Reg(i)) {
					t.Fatalf("direct source %v does not reach R%d", src, i)
				}
			}
		}
	}
}

// TestCutAndReconnectInvariants: cutting any register's input and
// re-wiring it to the scan-in port keeps the network valid (all
// registers accessible, acyclic), whatever the topology.
func TestCutAndReconnectInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 60; iter++ {
		nw := randomAccessNetwork(rng, 4+rng.Intn(8))
		victim := rng.Intn(len(nw.Registers))
		if nw.Registers[victim].In == ScanIn {
			continue
		}
		regsBefore := len(nw.Registers)
		if _, err := nw.CutAndReconnect(Sink{Elem: Reg(victim)}, ScanIn); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: invalid after cut: %v", iter, err)
		}
		if len(nw.Registers) != regsBefore {
			t.Fatal("register count changed")
		}
	}
}
