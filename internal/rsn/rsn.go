// Package rsn models reconfigurable scan networks (RSNs) in the style
// of IEEE Std 1687: scan registers composed of scan flip-flops, scan
// multiplexers, a scan-in and a scan-out port, and the three global
// control phases capture, shift and update.
//
// The model is the substrate the secure-data-flow method operates on
// (the role the eda1687 tool plays in the paper): it supports
// configuring active scan paths, reasoning about reachability over all
// configurations, structural transformation (cutting and re-connecting
// segments, inserting multiplexers) and cycle-accurate simulation of
// capture/shift/update against an attached gate-level circuit.
package rsn

import (
	"fmt"

	"repro/internal/netlist"
)

// ElemKind distinguishes the kinds of scan network elements a
// connection can reference.
type ElemKind uint8

// Element kinds.
const (
	KScanIn ElemKind = iota // the scan-in port
	KScanOut
	KRegister
	KMux
)

func (k ElemKind) String() string {
	switch k {
	case KScanIn:
		return "scan-in"
	case KScanOut:
		return "scan-out"
	case KRegister:
		return "register"
	case KMux:
		return "mux"
	}
	return fmt.Sprintf("ElemKind(%d)", uint8(k))
}

// Ref identifies a scan network element. For KScanIn/KScanOut the ID is
// unused (0).
type Ref struct {
	Kind ElemKind
	ID   int32
}

// NoRef is the absent connection.
var NoRef = Ref{Kind: KScanIn, ID: -1}

// ScanIn and ScanOut are the port references.
var (
	ScanIn  = Ref{Kind: KScanIn}
	ScanOut = Ref{Kind: KScanOut}
)

// Reg returns a register reference.
func Reg(id int) Ref { return Ref{Kind: KRegister, ID: int32(id)} }

// Mx returns a mux reference.
func Mx(id int) Ref { return Ref{Kind: KMux, ID: int32(id)} }

// IsValid reports whether the reference denotes an element.
func (r Ref) IsValid() bool { return r.ID >= 0 || r.Kind == KScanIn || r.Kind == KScanOut }

func (r Ref) String() string {
	switch r.Kind {
	case KScanIn:
		if r.ID < 0 {
			return "<none>"
		}
		return "SI"
	case KScanOut:
		return "SO"
	case KRegister:
		return fmt.Sprintf("R%d", r.ID)
	case KMux:
		return fmt.Sprintf("M%d", r.ID)
	}
	return "?"
}

// Register is a scan segment: an ordered chain of scan flip-flops with
// one scan input (feeding flip-flop 0) and one scan output (flip-flop
// Len-1). Capture and Update optionally link each scan flip-flop to a
// circuit flip-flop of the attached netlist.
type Register struct {
	Name   string
	Len    int
	In     Ref
	Module int
	// Capture[i] is the circuit FF captured into scan FF i during the
	// capture phase, or netlist.NoFF.
	Capture []netlist.FFID
	// Update[i] is the circuit FF written from scan FF i during the
	// update phase, or netlist.NoFF.
	Update []netlist.FFID
}

// Mux is a scan multiplexer selecting one of its inputs. Selection is
// modeled as free configuration: the security analysis assumes an
// attacker can establish any configuration (the paper's threat model).
type Mux struct {
	Name   string
	Inputs []Ref
}

// Network is a reconfigurable scan network. The zero value is empty and
// usable; scan-out starts unconnected.
type Network struct {
	Name      string
	Registers []Register
	Muxes     []Mux
	OutSrc    Ref // element driving the scan-out port
	Modules   []string
}

// New returns an empty network with an unconnected scan-out.
func New(name string) *Network {
	return &Network{Name: name, OutSrc: NoRef}
}

// AddModule registers a module name and returns its index.
func (nw *Network) AddModule(name string) int {
	nw.Modules = append(nw.Modules, name)
	return len(nw.Modules) - 1
}

// AddRegister adds a scan register of the given length with an
// unconnected input, returning its id.
func (nw *Network) AddRegister(name string, length, module int) int {
	if length <= 0 {
		panic("rsn: register length must be positive")
	}
	cap_ := make([]netlist.FFID, length)
	upd := make([]netlist.FFID, length)
	for i := range cap_ {
		cap_[i] = netlist.NoFF
		upd[i] = netlist.NoFF
	}
	nw.Registers = append(nw.Registers, Register{
		Name: name, Len: length, In: NoRef, Module: module,
		Capture: cap_, Update: upd,
	})
	return len(nw.Registers) - 1
}

// AddMux adds a scan multiplexer over the given inputs, returning its id.
func (nw *Network) AddMux(name string, inputs ...Ref) int {
	cp := make([]Ref, len(inputs))
	copy(cp, inputs)
	nw.Muxes = append(nw.Muxes, Mux{Name: name, Inputs: cp})
	return len(nw.Muxes) - 1
}

// Connect sets the scan input of register id.
func (nw *Network) Connect(id int, src Ref) { nw.Registers[id].In = src }

// ConnectOut sets the element driving the scan-out port.
func (nw *Network) ConnectOut(src Ref) { nw.OutSrc = src }

// SetCapture links scan FF i of register id to capture from circuit FF f.
func (nw *Network) SetCapture(id, i int, f netlist.FFID) { nw.Registers[id].Capture[i] = f }

// SetUpdate links scan FF i of register id to update into circuit FF f.
func (nw *Network) SetUpdate(id, i int, f netlist.FFID) { nw.Registers[id].Update[i] = f }

// NumScanFFs returns the total number of scan flip-flops.
func (nw *Network) NumScanFFs() int {
	n := 0
	for i := range nw.Registers {
		n += nw.Registers[i].Len
	}
	return n
}

// inputsOf returns the source references feeding the element.
func (nw *Network) inputsOf(r Ref) []Ref {
	switch r.Kind {
	case KScanIn:
		return nil
	case KScanOut:
		if nw.OutSrc.IsValid() && nw.OutSrc != NoRef {
			return []Ref{nw.OutSrc}
		}
		return nil
	case KRegister:
		in := nw.Registers[r.ID].In
		if in != NoRef && in.IsValid() {
			return []Ref{in}
		}
		return nil
	case KMux:
		return nw.Muxes[r.ID].Inputs
	}
	return nil
}

// Validate checks structural sanity: all references in range, scan-out
// connected, the connection graph acyclic, and every register reachable
// from scan-in and able to reach scan-out over some configuration.
func (nw *Network) Validate() error {
	// ok is the pure range check; the error strings are built only on
	// the failure path — Validate runs per candidate trial inside the
	// resolve loops, where eager message formatting dominated its cost.
	ok := func(r Ref) bool {
		switch r.Kind {
		case KRegister:
			return int(r.ID) < len(nw.Registers) && r.ID >= 0
		case KMux:
			return int(r.ID) < len(nw.Muxes) && r.ID >= 0
		}
		return true
	}
	for i := range nw.Registers {
		in := nw.Registers[i].In
		if in == NoRef {
			return fmt.Errorf("rsn: register %q (R%d) has unconnected scan input", nw.Registers[i].Name, i)
		}
		if !ok(in) {
			return fmt.Errorf("rsn: register R%d input references %v out of range", i, in)
		}
	}
	for i := range nw.Muxes {
		if len(nw.Muxes[i].Inputs) == 0 {
			return fmt.Errorf("rsn: mux %q (M%d) has no inputs", nw.Muxes[i].Name, i)
		}
		for j, in := range nw.Muxes[i].Inputs {
			if in == NoRef {
				return fmt.Errorf("rsn: mux M%d input %d unconnected", i, j)
			}
			if !ok(in) {
				return fmt.Errorf("rsn: mux M%d input %d references %v out of range", i, j, in)
			}
		}
	}
	if nw.OutSrc == NoRef {
		return fmt.Errorf("rsn: scan-out port unconnected")
	}
	if !ok(nw.OutSrc) {
		return fmt.Errorf("rsn: scan-out references %v out of range", nw.OutSrc)
	}
	if cyc := nw.findCycle(); cyc != "" {
		return fmt.Errorf("rsn: scan network contains a cycle through %s", cyc)
	}
	// Reachability both ways.
	fromIn := nw.reachableForward(ScanIn)
	toOut := nw.reachableBackward(ScanOut)
	for i := range nw.Registers {
		r := Reg(i)
		if !fromIn.has(r) {
			return fmt.Errorf("rsn: register R%d not reachable from scan-in", i)
		}
		if !toOut.has(r) {
			return fmt.Errorf("rsn: register R%d cannot reach scan-out", i)
		}
	}
	return nil
}

// refIndex maps an element reference to a dense index for slice-based
// marks: registers first, then muxes, then the two ports.
func (nw *Network) refIndex(r Ref) int {
	switch r.Kind {
	case KRegister:
		return int(r.ID)
	case KMux:
		return len(nw.Registers) + int(r.ID)
	case KScanIn:
		return len(nw.Registers) + len(nw.Muxes)
	default:
		return len(nw.Registers) + len(nw.Muxes) + 1
	}
}

// numRefs returns the size of the dense element index space.
func (nw *Network) numRefs() int { return len(nw.Registers) + len(nw.Muxes) + 2 }

// RefIndex maps an element reference to a dense index in
// [0, NumRefs()): registers first, then muxes, then the two ports.
// Attribute propagations key flat per-element arrays by it instead of
// hashing Refs into maps.
func (nw *Network) RefIndex(r Ref) int { return nw.refIndex(r) }

// NumRefs returns the size of the dense element index space.
func (nw *Network) NumRefs() int { return nw.numRefs() }

// refSet is a dense element set.
type refSet struct {
	nw    *Network
	marks []bool
}

func (s refSet) has(r Ref) bool { return s.marks[s.nw.refIndex(r)] }

// findCycle returns a description of an element on a cycle of the
// connection graph, or "" if the graph is acyclic.
func (nw *Network) findCycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, nw.numRefs())
	type frame struct {
		r   Ref
		idx int
	}
	var stack []frame
	var roots []Ref
	roots = append(roots, ScanOut)
	for i := range nw.Registers {
		roots = append(roots, Reg(i))
	}
	for i := range nw.Muxes {
		roots = append(roots, Mx(i))
	}
	for _, root := range roots {
		if color[nw.refIndex(root)] != white {
			continue
		}
		stack = append(stack[:0], frame{root, 0})
		color[nw.refIndex(root)] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ins := nw.inputsOf(f.r)
			if f.idx >= len(ins) {
				color[nw.refIndex(f.r)] = black
				stack = stack[:len(stack)-1]
				continue
			}
			next := ins[f.idx]
			f.idx++
			switch color[nw.refIndex(next)] {
			case gray:
				return next.String()
			case white:
				color[nw.refIndex(next)] = gray
				stack = append(stack, frame{next, 0})
			}
		}
	}
	return ""
}

// reachableBackward returns the set of elements reachable from r by
// following inputs (i.e. all elements whose data can reach r over some
// configuration).
func (nw *Network) reachableBackward(r Ref) refSet {
	seen := refSet{nw, make([]bool, nw.numRefs())}
	stack := []Ref{r}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := nw.refIndex(cur)
		if seen.marks[idx] {
			continue
		}
		seen.marks[idx] = true
		stack = append(stack, nw.inputsOf(cur)...)
	}
	return seen
}

// reachableForward returns the set of elements reachable from r by
// following fanout (i.e. all elements r's data can reach over some
// configuration).
func (nw *Network) reachableForward(r Ref) refSet {
	// Dense fanout adjacency.
	fan := make([][]Ref, nw.numRefs())
	addFan := func(src, dst Ref) {
		if src != NoRef && src.IsValid() {
			i := nw.refIndex(src)
			fan[i] = append(fan[i], dst)
		}
	}
	for i := range nw.Registers {
		addFan(nw.Registers[i].In, Reg(i))
	}
	for i := range nw.Muxes {
		for _, in := range nw.Muxes[i].Inputs {
			addFan(in, Mx(i))
		}
	}
	addFan(nw.OutSrc, ScanOut)

	seen := refSet{nw, make([]bool, nw.numRefs())}
	stack := []Ref{r}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := nw.refIndex(cur)
		if seen.marks[idx] {
			continue
		}
		seen.marks[idx] = true
		stack = append(stack, fan[idx]...)
	}
	return seen
}

// PureReaches reports whether data in element a can reach element b
// over some configuration of pure scan paths (a == b counts as true).
func (nw *Network) PureReaches(a, b Ref) bool {
	return nw.reachableBackward(b).has(a)
}

// PurePredecessors returns all registers whose data can reach register
// id over pure scan paths (excluding itself).
func (nw *Network) PurePredecessors(id int) []int {
	seen := nw.reachableBackward(Reg(id))
	var out []int
	for i := range nw.Registers {
		if i != id && seen.has(Reg(i)) {
			out = append(out, i)
		}
	}
	return out
}

// PureSuccessors returns all registers reachable from register id over
// pure scan paths (excluding itself).
func (nw *Network) PureSuccessors(id int) []int {
	seen := nw.reachableForward(Reg(id))
	var out []int
	for i := range nw.Registers {
		if i != id && seen.has(Reg(i)) {
			out = append(out, i)
		}
	}
	return out
}

// InputsOf returns the source references feeding the element.
func (nw *Network) InputsOf(r Ref) []Ref { return nw.inputsOf(r) }

// ElementTopoOrder returns every element (registers and muxes, ScanIn
// first, ScanOut last) in a topological order of the connection graph:
// sources before the elements they feed. It panics if the network is
// cyclic; call Validate first.
func (nw *Network) ElementTopoOrder() []Ref {
	order := make([]Ref, 0, nw.numRefs())
	state := make([]uint8, nw.numRefs()) // 0 new, 1 open, 2 done
	type frame struct {
		r   Ref
		ins []Ref // the element's inputs, resolved once per visit
		idx int
	}
	var stack []frame
	var roots []Ref
	roots = append(roots, ScanOut)
	for i := range nw.Registers {
		roots = append(roots, Reg(i))
	}
	for i := range nw.Muxes {
		roots = append(roots, Mx(i))
	}
	for _, root := range roots {
		if state[nw.refIndex(root)] != 0 {
			continue
		}
		stack = append(stack[:0], frame{root, nw.inputsOf(root), 0})
		state[nw.refIndex(root)] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx >= len(f.ins) {
				state[nw.refIndex(f.r)] = 2
				order = append(order, f.r)
				stack = stack[:len(stack)-1]
				continue
			}
			next := f.ins[f.idx]
			f.idx++
			switch state[nw.refIndex(next)] {
			case 1:
				panic("rsn: ElementTopoOrder on cyclic network")
			case 0:
				if next != ScanIn {
					state[nw.refIndex(next)] = 1
					stack = append(stack, frame{next, nw.inputsOf(next), 0})
				} else {
					state[nw.refIndex(next)] = 2
				}
			}
		}
	}
	// ScanIn first, ScanOut naturally last among its ancestors; move
	// ScanOut to the very end for a stable contract.
	out := make([]Ref, 0, len(order)+1)
	out = append(out, ScanIn)
	for _, r := range order {
		if r != ScanOut && r != ScanIn {
			out = append(out, r)
		}
	}
	out = append(out, ScanOut)
	return out
}

// Sink identifies one input pin of an element: the element and the
// input position (always 0 except for muxes).
type Sink struct {
	Elem Ref
	Idx  int
}

// FanoutMap maps each element to the elements it feeds.
func (nw *Network) FanoutMap() map[Ref][]Ref {
	m := map[Ref][]Ref{}
	add := func(src, dst Ref) {
		if src != NoRef && src.IsValid() {
			m[src] = append(m[src], dst)
		}
	}
	for i := range nw.Registers {
		add(nw.Registers[i].In, Reg(i))
	}
	for i := range nw.Muxes {
		for _, in := range nw.Muxes[i].Inputs {
			add(in, Mx(i))
		}
	}
	add(nw.OutSrc, ScanOut)
	return m
}

// Sinks returns every input pin currently driven by src.
func (nw *Network) Sinks(src Ref) []Sink {
	var out []Sink
	for i := range nw.Registers {
		if nw.Registers[i].In == src {
			out = append(out, Sink{Reg(i), 0})
		}
	}
	for i := range nw.Muxes {
		for j, in := range nw.Muxes[i].Inputs {
			if in == src {
				out = append(out, Sink{Mx(i), j})
			}
		}
	}
	if nw.OutSrc == src {
		out = append(out, Sink{ScanOut, 0})
	}
	return out
}

// SetSink rewires one input pin to a new source.
func (nw *Network) SetSink(s Sink, src Ref) {
	switch s.Elem.Kind {
	case KRegister:
		nw.Registers[s.Elem.ID].In = src
	case KMux:
		nw.Muxes[s.Elem.ID].Inputs[s.Idx] = src
	case KScanOut:
		nw.OutSrc = src
	default:
		panic("rsn: cannot rewire " + s.Elem.String())
	}
}

// SinkSource returns the current source of an input pin.
func (nw *Network) SinkSource(s Sink) Ref {
	switch s.Elem.Kind {
	case KRegister:
		return nw.Registers[s.Elem.ID].In
	case KMux:
		return nw.Muxes[s.Elem.ID].Inputs[s.Idx]
	case KScanOut:
		return nw.OutSrc
	}
	return NoRef
}

// Config assigns a selected input index to each mux.
type Config []int

// NewConfig returns the all-zero configuration for the network.
func (nw *Network) NewConfig() Config { return make(Config, len(nw.Muxes)) }

// PathElement is one scan flip-flop position on an active scan path.
type PathElement struct {
	Register int // register id
	FF       int // flip-flop index inside the register
}

// ActivePath returns the scan flip-flop sequence from scan-in to
// scan-out under the given configuration, or an error if the
// configuration is malformed (dangling selection or a configured loop).
func (nw *Network) ActivePath(cfg Config) ([]PathElement, error) {
	var rev []int // registers from scan-out backwards
	cur := nw.OutSrc
	steps := 0
	limit := len(nw.Registers) + len(nw.Muxes) + 2
	for cur != ScanIn {
		if steps++; steps > limit {
			return nil, fmt.Errorf("rsn: active path does not terminate (configured loop)")
		}
		switch cur.Kind {
		case KRegister:
			rev = append(rev, int(cur.ID))
			cur = nw.Registers[cur.ID].In
		case KMux:
			sel := 0
			if int(cur.ID) < len(cfg) {
				sel = cfg[cur.ID]
			}
			if sel < 0 || sel >= len(nw.Muxes[cur.ID].Inputs) {
				return nil, fmt.Errorf("rsn: mux M%d select %d out of range", cur.ID, sel)
			}
			cur = nw.Muxes[cur.ID].Inputs[sel]
		default:
			return nil, fmt.Errorf("rsn: active path hit %s", cur)
		}
		if cur == NoRef || !cur.IsValid() {
			return nil, fmt.Errorf("rsn: active path hit unconnected input")
		}
	}
	var path []PathElement
	for i := len(rev) - 1; i >= 0; i-- {
		r := rev[i]
		for f := 0; f < nw.Registers[r].Len; f++ {
			path = append(path, PathElement{r, f})
		}
	}
	return path, nil
}

// ConfigsThrough searches for a configuration whose active path
// contains register id. It returns the config and true on success.
func (nw *Network) ConfigsThrough(id int) (Config, bool) {
	// Walk backward from scan-out, preferring branches that reach the
	// register; then walk backward from the register to scan-in.
	cfg := nw.NewConfig()
	target := Reg(id)

	// reach[r] = true if target is backward-reachable from r.
	reach := map[Ref]bool{}
	var canReach func(r Ref) bool
	canReach = func(r Ref) bool {
		if r == target {
			return true
		}
		if v, ok := reach[r]; ok {
			return v
		}
		reach[r] = false // cycle guard; network is acyclic anyway
		for _, in := range nw.inputsOf(r) {
			if canReach(in) {
				reach[r] = true
				return true
			}
		}
		return false
	}
	// From scan-out walk back, configuring muxes toward the target
	// until we pass it, then any terminating choice.
	cur := nw.OutSrc
	passed := false
	steps := 0
	limit := len(nw.Registers) + len(nw.Muxes) + 2
	for cur != ScanIn {
		if steps++; steps > limit {
			return nil, false
		}
		if cur == target {
			passed = true
		}
		switch cur.Kind {
		case KRegister:
			cur = nw.Registers[cur.ID].In
		case KMux:
			sel := -1
			if !passed {
				for j, in := range nw.Muxes[cur.ID].Inputs {
					if canReach(in) {
						sel = j
						break
					}
				}
			}
			if sel < 0 {
				sel = 0 // any branch terminates (acyclic network)
			}
			cfg[cur.ID] = sel
			cur = nw.Muxes[cur.ID].Inputs[sel]
		default:
			return nil, false
		}
		if cur == NoRef || !cur.IsValid() {
			return nil, false
		}
	}
	if !passed {
		return nil, false
	}
	return cfg, true
}

// Stats summarizes structural network properties.
type Stats struct {
	Registers int
	ScanFFs   int
	Muxes     int
}

// Stats returns the structural summary used in Table I.
func (nw *Network) Stats() Stats {
	return Stats{
		Registers: len(nw.Registers),
		ScanFFs:   nw.NumScanFFs(),
		Muxes:     len(nw.Muxes),
	}
}

// Clone returns a deep copy of the network.
func (nw *Network) Clone() *Network {
	cp := &Network{Name: nw.Name, OutSrc: nw.OutSrc}
	cp.Modules = append([]string{}, nw.Modules...)
	cp.Registers = make([]Register, len(nw.Registers))
	for i, r := range nw.Registers {
		nr := r
		nr.Capture = append([]netlist.FFID{}, r.Capture...)
		nr.Update = append([]netlist.FFID{}, r.Update...)
		cp.Registers[i] = nr
	}
	cp.Muxes = make([]Mux, len(nw.Muxes))
	for i, m := range nw.Muxes {
		nm := m
		nm.Inputs = append([]Ref{}, m.Inputs...)
		cp.Muxes[i] = nm
	}
	return cp
}
