package rsn

import "fmt"

// CutAndReconnect rewires the input pin to a new source and, if the cut
// left the old source without any consumer, re-attaches it so that no
// scan segment dangles (Section III-D of the paper: separated segments
// are connected to multi-cycle predecessors/successors over pure scan
// paths, or to the scan-in/scan-out port when none exists). It returns
// the number of multiplexers inserted.
func (nw *Network) CutAndReconnect(pin Sink, newSrc Ref) (int, error) {
	oldSrc := nw.SinkSource(pin)
	if oldSrc == newSrc {
		return 0, fmt.Errorf("rsn: cut would not change pin of %v", pin.Elem)
	}
	nw.SetSink(pin, newSrc)
	muxes := 0
	if (oldSrc.Kind == KRegister || oldSrc.Kind == KMux) && len(nw.Sinks(oldSrc)) == 0 {
		muxes += nw.reattach(oldSrc)
	}
	return muxes, nil
}

// reattach gives a dangling source a consumer: it feeds the separated
// segment into a pure-path successor through a new multiplexer, or into
// the scan-out port if no successor exists. Attachment points are
// checked against post-cut reachability so no cycle can be created and
// no new data-flow pairs appear. It returns the number of multiplexers
// inserted.
func (nw *Network) reattach(src Ref) int {
	up := nw.reachableBackward(src)  // everything upstream of src
	down := nw.reachableForward(src) // everything downstream of src
	for i := range nw.Registers {
		r := Reg(i)
		if r == src || up.has(r) {
			continue // upstream of src: attaching would create a cycle
		}
		if down.has(r) {
			old := nw.Registers[i].In
			m := nw.AddMux(fmt.Sprintf("m_reattach_%d", len(nw.Muxes)), old, src)
			nw.Connect(i, Mx(m))
			return 1
		}
	}
	old := nw.OutSrc
	m := nw.AddMux(fmt.Sprintf("m_reattach_%d", len(nw.Muxes)), old, src)
	nw.ConnectOut(Mx(m))
	return 1
}

// EffectiveSources returns the registers (and possibly the scan-in
// port) whose scan output can feed register id, looking through
// multiplexers: the inter-register connectivity of the reconfigurable
// wiring.
func (nw *Network) EffectiveSources(id int) []Ref {
	var out []Ref
	seen := map[Ref]bool{}
	var walk func(r Ref)
	walk = func(r Ref) {
		if seen[r] {
			return
		}
		seen[r] = true
		switch r.Kind {
		case KScanIn, KRegister:
			out = append(out, r)
		case KMux:
			for _, in := range nw.Muxes[r.ID].Inputs {
				walk(in)
			}
		}
	}
	walk(nw.Registers[id].In)
	return out
}
