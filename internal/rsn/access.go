package rsn

import "fmt"

// AccessPlan describes how to read or write one scan register: the mux
// configuration establishing an active path through it, the position of
// its flip-flops on that path, and the path length. It is the pattern
// generation half of the eda1687-style substrate: after the
// secure-data-flow method transforms a network, plans prove that every
// register is still accessible.
type AccessPlan struct {
	Register int
	Config   Config
	// Offset is the position of the register's first flip-flop on the
	// active path (0 = right after the scan-in port).
	Offset int
	// PathLen is the total length of the active path in flip-flops.
	PathLen int
}

// ShiftsToWrite returns the number of shift cycles after which data
// presented at the scan-in port occupies the register: the bits must
// travel past the Offset flip-flops in front of the register plus its
// own length.
func (p AccessPlan) ShiftsToWrite(regLen int) int { return p.Offset + regLen }

// ShiftsToRead returns the number of shift cycles until the register's
// content has fully appeared at the scan-out port.
func (p AccessPlan) ShiftsToRead(regLen int) int { return p.PathLen - p.Offset }

// PlanAccess computes an access plan for register id, or an error if no
// configuration routes an active path through it (a well-formed network
// always has one; Validate guarantees reachability).
func (nw *Network) PlanAccess(id int) (AccessPlan, error) {
	cfg, ok := nw.ConfigsThrough(id)
	if !ok {
		return AccessPlan{}, fmt.Errorf("rsn: no configuration reaches register R%d", id)
	}
	path, err := nw.ActivePath(cfg)
	if err != nil {
		return AccessPlan{}, err
	}
	offset := -1
	for i, pe := range path {
		if pe.Register == id && pe.FF == 0 {
			offset = i
			break
		}
	}
	if offset < 0 {
		return AccessPlan{}, fmt.Errorf("rsn: register R%d missing from its own active path", id)
	}
	return AccessPlan{Register: id, Config: cfg, Offset: offset, PathLen: len(path)}, nil
}

// PlanAllAccesses computes plans for every register. The secure
// transformation guarantees all registers stay accessible; this
// verifies it constructively.
func (nw *Network) PlanAllAccesses() ([]AccessPlan, error) {
	plans := make([]AccessPlan, len(nw.Registers))
	for i := range nw.Registers {
		p, err := nw.PlanAccess(i)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	return plans, nil
}

// WriteRegister shifts the given bits into the register using its
// access plan. bits[0] ends up in the register's first flip-flop. Other
// registers on the active path are disturbed, as in real scan access.
func (s *Simulator) WriteRegister(plan AccessPlan, bits []bool) error {
	reg := &s.nw.Registers[plan.Register]
	if len(bits) != reg.Len {
		return fmt.Errorf("rsn: register R%d needs %d bits, got %d", plan.Register, reg.Len, len(bits))
	}
	// The bit destined for the LAST flip-flop of the register must be
	// shifted in first; after Offset+Len cycles bits[0] sits at the
	// register's first flip-flop.
	total := plan.ShiftsToWrite(reg.Len)
	for k := 0; k < total; k++ {
		var in bool
		// The first Len cycles feed the register's data, last bit first.
		if k < reg.Len {
			in = bits[reg.Len-1-k]
		}
		if _, err := s.Shift(plan.Config, in); err != nil {
			return err
		}
	}
	return nil
}

// ReadRegister shifts the register's current content out and returns
// it, first flip-flop first. The register's content is replaced by
// whatever was upstream, as in real scan access.
func (s *Simulator) ReadRegister(plan AccessPlan) ([]bool, error) {
	reg := &s.nw.Registers[plan.Register]
	// The register's last flip-flop is ShiftsToRead - Len cycles away
	// from the scan-out port; its bits then appear last-FF-first over
	// the following Len cycles.
	lead := plan.ShiftsToRead(reg.Len) - reg.Len
	for k := 0; k < lead; k++ {
		if _, err := s.Shift(plan.Config, false); err != nil {
			return nil, err
		}
	}
	out := make([]bool, reg.Len)
	for k := 0; k < reg.Len; k++ {
		b, err := s.Shift(plan.Config, false)
		if err != nil {
			return nil, err
		}
		out[reg.Len-1-k] = b
	}
	return out, nil
}

// ReadInstrument captures the register's instrument data and shifts it
// out: a complete capture-shift read access.
func (s *Simulator) ReadInstrument(plan AccessPlan) ([]bool, error) {
	if err := s.Capture(plan.Config); err != nil {
		return nil, err
	}
	return s.ReadRegister(plan)
}

// WriteInstrument shifts data into the register and updates it into the
// instrument: a complete shift-update write access.
func (s *Simulator) WriteInstrument(plan AccessPlan, bits []bool) error {
	if err := s.WriteRegister(plan, bits); err != nil {
		return err
	}
	return s.Update(plan.Config)
}
