package rsn

import (
	"testing"

	"repro/internal/netlist"
)

// canonFixture builds a small fixed network: two registers behind a
// bypass mux, one capture link.
func canonFixture() *Network {
	nw := New("canon")
	m0 := nw.AddModule("m0")
	m1 := nw.AddModule("m1")
	r0 := nw.AddRegister("R0", 2, m0)
	r1 := nw.AddRegister("R1", 1, m1)
	nw.Connect(r0, ScanIn)
	nw.Connect(r1, Reg(r0))
	mx := nw.AddMux("M0", Reg(r1), Reg(r0))
	nw.ConnectOut(Mx(mx))
	nw.SetCapture(r0, 0, netlist.FFID(3))
	nw.SetUpdate(r1, 0, netlist.FFID(1))
	return nw
}

// goldenNetworkHash pins the canonical digest of canonFixture under
// netlist.CanonVersion "rsnsec.canon/v1" — the RSN part of the
// internal/serve cache key. A drift here means the canonical encoding
// changed and CanonVersion must be bumped.
const goldenNetworkHash = "b6094d821e3db87ac907c70b4b65bcb73e6455f5b0fcc7d63552cf9cf9d5520e"

func TestCanonicalHashGolden(t *testing.T) {
	got := CanonicalHash(canonFixture())
	if got != goldenNetworkHash {
		t.Fatalf("canonical network hash drifted:\n got  %s\n want %s\nbump netlist.CanonVersion if the encoding change is intended", got, goldenNetworkHash)
	}
}

func TestCanonicalHashCloneStable(t *testing.T) {
	nw := canonFixture()
	if CanonicalHash(nw) != CanonicalHash(nw.Clone()) {
		t.Fatal("Clone hashes differently from the original")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := CanonicalHash(canonFixture())
	mutations := map[string]func(nw *Network){
		"rename":       func(nw *Network) { nw.Name = "x" },
		"register len": func(nw *Network) { nw.Registers[0].Len = 3 },
		"rewire input": func(nw *Network) { nw.Registers[1].In = ScanIn },
		"capture link": func(nw *Network) { nw.Registers[0].Capture[0] = netlist.NoFF },
		"update link":  func(nw *Network) { nw.Registers[1].Update[0] = netlist.FFID(2) },
		"mux input":    func(nw *Network) { nw.Muxes[0].Inputs[0] = ScanIn },
		"out source":   func(nw *Network) { nw.OutSrc = Reg(0) },
		"module":       func(nw *Network) { nw.Registers[1].Module = 0 },
	}
	for name, mutate := range mutations {
		nw := canonFixture()
		mutate(nw)
		if CanonicalHash(nw) == base {
			t.Errorf("%s: hash unchanged after mutation", name)
		}
	}
}

// TestCanonicalHashDistinguishesKinds ensures a network never hashes
// like a netlist even over equal payload shapes (the Section tags
// differ).
func TestCanonicalHashDistinguishesKinds(t *testing.T) {
	if CanonicalHash(New("x")) == netlist.CanonicalHash(netlist.New()) {
		t.Fatal("empty network aliases empty netlist")
	}
}
