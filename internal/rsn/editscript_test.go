package rsn

import (
	"strings"
	"testing"
)

func TestParseRef(t *testing.T) {
	good := map[string]Ref{
		"SI": ScanIn, "si": ScanIn,
		"SO": ScanOut, "so": ScanOut,
		"R0": Reg(0), "r12": Reg(12),
		"M3": Mx(3), "m0": Mx(0),
	}
	for s, want := range good {
		got, err := ParseRef(s)
		if err != nil || got != want {
			t.Errorf("ParseRef(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "R", "M", "R-1", "Rx", "X3", "SI0", "3", "reg0"} {
		if _, err := ParseRef(s); err == nil {
			t.Errorf("ParseRef(%q) succeeded, want error", s)
		}
	}
}

func TestEditScriptCanonicalNormalizes(t *testing.T) {
	s := &EditScript{Ops: []EditOp{
		{Op: " Cut-Reconnect ", Pin: "r2", Src: "si",
			// add-register fields on another op must be cleared.
			Name: "junk", Len: 9, Module: 3},
	}}
	c, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	op := c.Ops[0]
	if op.Op != OpCutReconnect || op.Pin != "R2" || op.Src != "SI" {
		t.Fatalf("normalized op = %+v", op)
	}
	if op.Name != "" || op.Len != 0 || op.Module != 0 {
		t.Fatalf("add-register fields not cleared: %+v", op)
	}
	// Canonical must not mutate the receiver.
	if s.Ops[0].Pin != "r2" {
		t.Fatal("Canonical mutated its receiver")
	}
}

func TestEditScriptCanonicalRejects(t *testing.T) {
	cases := map[string]*EditScript{
		"unknown op":       {Ops: []EditOp{{Op: "swap", Pin: "R0", Src: "SI"}}},
		"bad pin":          {Ops: []EditOp{{Op: OpConnect, Pin: "Q1", Src: "SI"}}},
		"bad src":          {Ops: []EditOp{{Op: OpConnect, Pin: "R0", Src: "??"}}},
		"src scan-out":     {Ops: []EditOp{{Op: OpConnect, Pin: "R0", Src: "SO"}}},
		"pin scan-in":      {Ops: []EditOp{{Op: OpConnect, Pin: "SI", Src: "R0"}}},
		"reg pin_idx":      {Ops: []EditOp{{Op: OpConnect, Pin: "R0", PinIdx: 1, Src: "SI"}}},
		"neg mux pin_idx":  {Ops: []EditOp{{Op: OpConnect, Pin: "M0", PinIdx: -1, Src: "SI"}}},
		"add without name": {Ops: []EditOp{{Op: OpAddRegister, Pin: "R0", Src: "SI", Len: 1}}},
		"add zero length":  {Ops: []EditOp{{Op: OpAddRegister, Pin: "R0", Src: "SI", Name: "x"}}},
		"add neg module":   {Ops: []EditOp{{Op: OpAddRegister, Pin: "R0", Src: "SI", Name: "x", Len: 1, Module: -1}}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestEditScriptApplyCutReconnect(t *testing.T) {
	base := buildDiamond()
	s := &EditScript{Base: "diamond", Ops: []EditOp{
		{Op: OpCutReconnect, Pin: "R2", Src: "R0"}, // C: mux -> A directly
	}}
	nw, err := s.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("derived network invalid: %v", err)
	}
	if got := nw.Registers[2].In; got != Reg(0) {
		t.Fatalf("C.In = %v, want R0", got)
	}
	// base must be untouched.
	if base.Registers[2].In != Mx(0) {
		t.Fatal("Apply mutated the base network")
	}
	// Base-name mismatch must be rejected.
	s2 := &EditScript{Base: "other", Ops: s.Ops}
	if _, err := s2.Apply(base); err == nil {
		t.Fatal("base mismatch not rejected")
	}
}

func TestEditScriptApplyOrdered(t *testing.T) {
	// Ops see the network state left by their predecessors: the register
	// added by op 0 is a legal source for op 1.
	base := buildDiamond()
	s := &EditScript{Ops: []EditOp{
		{Op: OpAddRegister, Pin: "R2", Src: "R0", Name: "N", Len: 2, Module: 0},
		{Op: OpCutReconnect, Pin: "R1", Src: "R3"},
	}}
	nw, err := s.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Registers) != 4 || nw.Registers[3].Name != "N" {
		t.Fatalf("added register missing: %d registers", len(nw.Registers))
	}
	if nw.Registers[1].In != Reg(3) {
		t.Fatalf("B.In = %v, want R3", nw.Registers[1].In)
	}
	// Reversed, op 1's source R3 does not exist yet.
	rev := &EditScript{Ops: []EditOp{s.Ops[1], s.Ops[0]}}
	if _, err := rev.Apply(base); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("reversed script error = %v, want out-of-range", err)
	}
}

func TestEditScriptApplyRangeErrors(t *testing.T) {
	base := buildDiamond() // 3 registers, 1 mux
	cases := map[string]*EditScript{
		"pin register": {Ops: []EditOp{{Op: OpConnect, Pin: "R9", Src: "SI"}}},
		"pin mux":      {Ops: []EditOp{{Op: OpConnect, Pin: "M4", Src: "SI"}}},
		"src register": {Ops: []EditOp{{Op: OpConnect, Pin: "R0", Src: "R7"}}},
		"mux input":    {Ops: []EditOp{{Op: OpConnect, Pin: "M0", PinIdx: 5, Src: "SI"}}},
		"add module":   {Ops: []EditOp{{Op: OpAddRegister, Pin: "R0", Src: "SI", Name: "x", Len: 1, Module: 9}}},
	}
	for name, s := range cases {
		if _, err := s.Apply(base); err == nil {
			t.Errorf("%s: Apply succeeded, want range error", name)
		}
	}
}

func TestEditScriptAddsRegisters(t *testing.T) {
	s := &EditScript{Ops: []EditOp{{Op: "Add-Register", Pin: "R0", Src: "SI", Name: "x", Len: 1}}}
	if !s.AddsRegisters() {
		t.Fatal("AddsRegisters = false for add-register script")
	}
	s = &EditScript{Ops: []EditOp{{Op: OpCutReconnect, Pin: "R0", Src: "SI"}}}
	if s.AddsRegisters() {
		t.Fatal("AddsRegisters = true for wiring-only script")
	}
}

func TestEditScriptCanonicalHashNormalizationIndependent(t *testing.T) {
	a := &EditScript{Ops: []EditOp{{Op: "CUT-RECONNECT", Pin: "r2", Src: "si"}}}
	b := &EditScript{Ops: []EditOp{{Op: OpCutReconnect, Pin: "R2", Src: "SI"}}}
	ha, err := a.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("normalization changed the hash: %s vs %s", ha, hb)
	}
	c := &EditScript{Ops: []EditOp{{Op: OpCutReconnect, Pin: "R2", Src: "R0"}}}
	if hc, _ := c.CanonicalHash(); hc == ha {
		t.Fatal("different scripts share a hash")
	}
}

func TestParseEditScript(t *testing.T) {
	s, err := ParseEditScript([]byte(`{"ops":[{"op":"cut-reconnect","pin":"r2","src":"si"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Ops[0].Pin != "R2" {
		t.Fatalf("parsed script not canonicalized: %+v", s.Ops[0])
	}
	if _, err := ParseEditScript([]byte(`{"ops":[]}`)); err == nil {
		t.Fatal("empty ops accepted")
	}
	if _, err := ParseEditScript([]byte(`{"ops":[{"op":"connect","pin":"R0","src":"SI"}],"extra":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
