package rsn

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Key-gated scan obfuscation. An Obfuscation is an overlay on an
// existing network: it does not change the structural graph, it gates
// how values and selections behave during shift. Two gate kinds are
// modeled, matching the defenses attacked in the scan-obfuscation
// literature:
//
//   - KeyXOR: an XOR gate on a register's scan-output link. Every
//     value leaving the register's last scan FF (to the next path
//     element or to scan-out) is XORed with one key bit.
//   - KeyMux: a key-controlled scan mux. The effective select of a
//     2-input mux becomes cfg XOR key bit, so an attacker who does not
//     know the key no longer knows which path a configuration opens.
//
// The key schedule is either static (the key bits gate directly, the
// classic EFF/ScanSAT target) or dynamic à la DynUnlock: the key seeds
// an LFSR that advances one step per shift cycle, and gates read the
// current LFSR state instead of the key itself.
const ObfuscationSchema = "rsnsec.obfus-overlay/v1"

// Gate kinds.
const (
	KeyXOR = "xor"
	KeyMux = "mux"
)

// KeyGate binds one key bit to one network element.
type KeyGate struct {
	Kind string // KeyXOR (Elem is a register id) or KeyMux (mux id)
	Elem int
	Bit  int // key bit index driving the gate
}

// Obfuscation is a key-gate overlay over a network. The zero value is
// an empty overlay (no gates, no key bits) and is invalid; overlays
// must carry at least one key bit.
type Obfuscation struct {
	NumKeyBits int
	Gates      []KeyGate
	// Dynamic selects the DynUnlock-style key schedule: the key is the
	// initial LFSR state and the state advances one step per shift
	// cycle. Taps lists the feedback tap bit indices.
	Dynamic bool
	Taps    []int
}

// Validate checks the overlay against a network: key bits and element
// ids in range, key muxes restricted to 2-input muxes (wider muxes
// have no single-bit select to gate), at most one gate per element,
// and a usable tap set when the schedule is dynamic.
func (ov *Obfuscation) Validate(nw *Network) error {
	if ov.NumKeyBits < 1 {
		return fmt.Errorf("rsn: obfuscation needs at least one key bit")
	}
	if len(ov.Gates) == 0 {
		return fmt.Errorf("rsn: obfuscation has no gates")
	}
	seen := map[[2]int]bool{}
	for i, g := range ov.Gates {
		if g.Bit < 0 || g.Bit >= ov.NumKeyBits {
			return fmt.Errorf("rsn: gate %d key bit %d out of range [0,%d)", i, g.Bit, ov.NumKeyBits)
		}
		switch g.Kind {
		case KeyXOR:
			if g.Elem < 0 || g.Elem >= len(nw.Registers) {
				return fmt.Errorf("rsn: gate %d register id %d out of range", i, g.Elem)
			}
			if seen[[2]int{0, g.Elem}] {
				return fmt.Errorf("rsn: register R%d gated twice", g.Elem)
			}
			seen[[2]int{0, g.Elem}] = true
		case KeyMux:
			if g.Elem < 0 || g.Elem >= len(nw.Muxes) {
				return fmt.Errorf("rsn: gate %d mux id %d out of range", i, g.Elem)
			}
			if n := len(nw.Muxes[g.Elem].Inputs); n != 2 {
				return fmt.Errorf("rsn: key mux M%d has %d inputs, want 2", g.Elem, n)
			}
			if seen[[2]int{1, g.Elem}] {
				return fmt.Errorf("rsn: mux M%d gated twice", g.Elem)
			}
			seen[[2]int{1, g.Elem}] = true
		default:
			return fmt.Errorf("rsn: gate %d has unknown kind %q", i, g.Kind)
		}
	}
	if ov.Dynamic {
		if len(ov.Taps) == 0 {
			return fmt.Errorf("rsn: dynamic schedule needs at least one LFSR tap")
		}
		for _, t := range ov.Taps {
			if t < 0 || t >= ov.NumKeyBits {
				return fmt.Errorf("rsn: LFSR tap %d out of range [0,%d)", t, ov.NumKeyBits)
			}
		}
	} else if len(ov.Taps) != 0 {
		return fmt.Errorf("rsn: static schedule must not set LFSR taps")
	}
	return nil
}

// regGate returns the key bit gating register id's scan-output link,
// or -1 when the register is ungated.
func (ov *Obfuscation) regGate(id int) int {
	for _, g := range ov.Gates {
		if g.Kind == KeyXOR && g.Elem == id {
			return g.Bit
		}
	}
	return -1
}

// muxGate returns the key bit gating mux id's select, or -1.
func (ov *Obfuscation) muxGate(id int) int {
	for _, g := range ov.Gates {
		if g.Kind == KeyMux && g.Elem == id {
			return g.Bit
		}
	}
	return -1
}

// MuxGateBits returns the sorted set of key bits driving mux gates.
func (ov *Obfuscation) MuxGateBits() []int {
	var bits []int
	seen := map[int]bool{}
	for _, g := range ov.Gates {
		if g.Kind == KeyMux && !seen[g.Bit] {
			seen[g.Bit] = true
			bits = append(bits, g.Bit)
		}
	}
	sort.Ints(bits)
	return bits
}

// NextKeyState advances a dynamic key schedule by one shift cycle: a
// Fibonacci LFSR shifting toward bit 0 with the tap parity entering at
// the top. Static schedules return the state unchanged. The result is
// a fresh slice.
func (ov *Obfuscation) NextKeyState(s []bool) []bool {
	n := make([]bool, len(s))
	if !ov.Dynamic {
		copy(n, s)
		return n
	}
	fb := false
	for _, t := range ov.Taps {
		fb = fb != s[t]
	}
	copy(n, s[1:])
	n[len(s)-1] = fb
	return n
}

// EffectiveConfig maps an attacker-visible configuration to the
// configuration the hardware actually decodes under key state ks:
// gated mux selects are XORed with their key bit, ungated selects pass
// through. The input cfg may be shorter than the mux count (missing
// entries select input 0, as in ActivePath).
func (ov *Obfuscation) EffectiveConfig(nw *Network, cfg Config, ks []bool) Config {
	eff := make(Config, len(nw.Muxes))
	for m := range nw.Muxes {
		sel := 0
		if m < len(cfg) {
			sel = cfg[m]
		}
		if b := ov.muxGate(m); b >= 0 && ks[b] {
			sel ^= 1
		}
		eff[m] = sel
	}
	return eff
}

// KeyedSimulator shifts a network under a key-gate overlay. Its shift
// semantics mirror Simulator.Shift exactly — only path cells move,
// off-path cells hold, the pre-shift value of the last path cell
// appears at scan-out — with two additions: the active path is
// resolved through the effective (key-XORed) configuration, and every
// value crossing a gated register's output link is XORed with the
// gate's current key bit. Dynamic schedules advance the LFSR once per
// shift cycle.
type KeyedSimulator struct {
	nw   *Network
	ov   *Obfuscation
	scan [][]bool
	ks   []bool
}

// NewKeyedSimulator returns a keyed simulator with all scan FFs at 0
// and the key schedule at its initial state (the key itself).
func NewKeyedSimulator(nw *Network, ov *Obfuscation, key []bool) (*KeyedSimulator, error) {
	if err := ov.Validate(nw); err != nil {
		return nil, err
	}
	if len(key) != ov.NumKeyBits {
		return nil, fmt.Errorf("rsn: key has %d bits, overlay wants %d", len(key), ov.NumKeyBits)
	}
	scan := make([][]bool, len(nw.Registers))
	for i := range scan {
		scan[i] = make([]bool, nw.Registers[i].Len)
	}
	ks := make([]bool, len(key))
	copy(ks, key)
	return &KeyedSimulator{nw: nw, ov: ov, scan: scan, ks: ks}, nil
}

// ScanFF returns the current value of scan FF i of register reg.
func (s *KeyedSimulator) ScanFF(reg, i int) bool { return s.scan[reg][i] }

// KeyState returns a copy of the current key schedule state.
func (s *KeyedSimulator) KeyState() []bool { return append([]bool(nil), s.ks...) }

// Shift runs one keyed shift cycle under the attacker-visible
// configuration cfg and returns the scan-out bit.
func (s *KeyedSimulator) Shift(cfg Config, in bool) (out bool, err error) {
	eff := s.ov.EffectiveConfig(s.nw, cfg, s.ks)
	path, err := s.nw.ActivePath(eff)
	if err != nil {
		return false, fmt.Errorf("keyed shift: %w", err)
	}
	defer func() { s.ks = s.ov.NextKeyState(s.ks) }()
	if len(path) == 0 {
		return in, nil
	}
	last := path[len(path)-1]
	out = s.scan[last.Register][last.FF]
	if b := s.ov.regGate(last.Register); b >= 0 && s.ks[b] {
		out = !out
	}
	for k := len(path) - 1; k >= 1; k-- {
		prev := path[k-1]
		v := s.scan[prev.Register][prev.FF]
		// The XOR gate sits on the register's output link: it applies
		// when the value crosses from the last FF of prev's register
		// into the next register on the path.
		if prev.Register != path[k].Register {
			if b := s.ov.regGate(prev.Register); b >= 0 && s.ks[b] {
				v = !v
			}
		}
		s.scan[path[k].Register][path[k].FF] = v
	}
	s.scan[path[0].Register][path[0].FF] = in
	return out, nil
}

// ShiftN performs n keyed shift cycles feeding the given bits (padded
// with zeros) and returns the bits observed at scan-out.
func (s *KeyedSimulator) ShiftN(cfg Config, bits []bool, n int) ([]bool, error) {
	out := make([]bool, 0, n)
	for k := 0; k < n; k++ {
		in := false
		if k < len(bits) {
			in = bits[k]
		}
		o, err := s.Shift(cfg, in)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// AppendCanonical feeds the overlay into a canonical hasher, so
// attack submissions content-address identically iff their overlays
// are identical.
func (ov *Obfuscation) AppendCanonical(h *netlist.Hasher) {
	h.Section("rsn.obfuscation")
	h.Int(int64(ov.NumKeyBits))
	h.Bool(ov.Dynamic)
	h.List(len(ov.Taps))
	for _, t := range ov.Taps {
		h.Int(int64(t))
	}
	h.List(len(ov.Gates))
	for _, g := range ov.Gates {
		h.Str(g.Kind)
		h.Int(int64(g.Elem))
		h.Int(int64(g.Bit))
	}
}

// Overlay sidecar document. The ICL grammar has no key-gate syntax, so
// overlays travel as JSON next to the network, referencing elements by
// name. The optional key field is the defender's copy of the secret:
// attack-feasibility runs need the true key to answer oracle queries.
type overlayDoc struct {
	Schema  string       `json:"schema"`
	KeyBits int          `json:"key_bits"`
	Dynamic bool         `json:"dynamic,omitempty"`
	Taps    []int        `json:"taps,omitempty"`
	Gates   []overlayGat `json:"gates"`
	Key     string       `json:"key,omitempty"`
}

type overlayGat struct {
	Kind string `json:"kind"`
	Elem string `json:"elem"`
	Bit  int    `json:"bit"`
}

// ParseObfuscation decodes an rsnsec.obfus-overlay/v1 document and
// resolves its element names against nw. It returns the overlay and,
// when the document carries the defender's key, its bits (nil
// otherwise). The overlay is validated before return.
func ParseObfuscation(data []byte, nw *Network) (*Obfuscation, []bool, error) {
	var doc overlayDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("rsn: overlay: %w", err)
	}
	if doc.Schema != ObfuscationSchema {
		return nil, nil, fmt.Errorf("rsn: overlay schema %q, want %q", doc.Schema, ObfuscationSchema)
	}
	regs := make(map[string]int, len(nw.Registers))
	for i, r := range nw.Registers {
		regs[r.Name] = i
	}
	muxes := make(map[string]int, len(nw.Muxes))
	for i, m := range nw.Muxes {
		muxes[m.Name] = i
	}
	ov := &Obfuscation{NumKeyBits: doc.KeyBits, Dynamic: doc.Dynamic, Taps: doc.Taps}
	for i, g := range doc.Gates {
		var id int
		var ok bool
		switch g.Kind {
		case KeyXOR:
			id, ok = regs[g.Elem]
			if !ok {
				return nil, nil, fmt.Errorf("rsn: overlay gate %d: unknown register %q", i, g.Elem)
			}
		case KeyMux:
			id, ok = muxes[g.Elem]
			if !ok {
				return nil, nil, fmt.Errorf("rsn: overlay gate %d: unknown mux %q", i, g.Elem)
			}
		default:
			return nil, nil, fmt.Errorf("rsn: overlay gate %d: unknown kind %q", i, g.Kind)
		}
		ov.Gates = append(ov.Gates, KeyGate{Kind: g.Kind, Elem: id, Bit: g.Bit})
	}
	if err := ov.Validate(nw); err != nil {
		return nil, nil, err
	}
	var key []bool
	if doc.Key != "" {
		k, err := ParseKeyHex(doc.Key, ov.NumKeyBits)
		if err != nil {
			return nil, nil, fmt.Errorf("rsn: overlay key: %w", err)
		}
		key = k
	}
	return ov, key, nil
}

// MarshalObfuscation encodes an overlay (and optionally the defender's
// key, when key is non-nil) as an rsnsec.obfus-overlay/v1 document.
func MarshalObfuscation(ov *Obfuscation, nw *Network, key []bool) ([]byte, error) {
	if err := ov.Validate(nw); err != nil {
		return nil, err
	}
	doc := overlayDoc{Schema: ObfuscationSchema, KeyBits: ov.NumKeyBits, Dynamic: ov.Dynamic, Taps: ov.Taps}
	for _, g := range ov.Gates {
		name := ""
		switch g.Kind {
		case KeyXOR:
			name = nw.Registers[g.Elem].Name
		case KeyMux:
			name = nw.Muxes[g.Elem].Name
		}
		doc.Gates = append(doc.Gates, overlayGat{Kind: g.Kind, Elem: name, Bit: g.Bit})
	}
	if key != nil {
		if len(key) != ov.NumKeyBits {
			return nil, fmt.Errorf("rsn: key has %d bits, overlay wants %d", len(key), ov.NumKeyBits)
		}
		doc.Key = KeyHex(key)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// KeyHex encodes key bits as lowercase hex, bit 0 the least
// significant bit of the last byte (big-endian integer reading).
func KeyHex(key []bool) string {
	nb := (len(key) + 7) / 8
	buf := make([]byte, nb)
	for i, b := range key {
		if b {
			buf[nb-1-i/8] |= 1 << (i % 8)
		}
	}
	return hex.EncodeToString(buf)
}

// ParseKeyHex decodes an n-bit key from KeyHex's encoding. The string
// must describe exactly the bytes needed for n bits, and bits above n
// must be zero.
func ParseKeyHex(s string, n int) ([]bool, error) {
	buf, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	nb := (n + 7) / 8
	if len(buf) != nb {
		return nil, fmt.Errorf("key %q is %d bytes, want %d for %d bits", s, len(buf), nb, n)
	}
	key := make([]bool, n)
	for i := range key {
		key[i] = buf[nb-1-i/8]&(1<<(i%8)) != 0
	}
	for i := n; i < nb*8; i++ {
		if buf[nb-1-i/8]&(1<<(i%8)) != 0 {
			return nil, fmt.Errorf("key %q sets bit %d beyond the %d-bit key", s, i, n)
		}
	}
	return key, nil
}

// KeyFromSeed derives a deterministic n-bit key from a seed via
// splitmix64, the repo's standard seeding mix.
func KeyFromSeed(seed int64, n int) []bool {
	key := make([]bool, n)
	x := uint64(seed)
	var w uint64
	for i := range key {
		if i%64 == 0 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			w = z ^ (z >> 31)
		}
		key[i] = w&(1<<(i%64)) != 0
	}
	return key
}
