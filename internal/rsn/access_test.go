package rsn

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestPlanAccessDiamond(t *testing.T) {
	nw := buildDiamond()
	plans, err := nw.PlanAllAccesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d", len(plans))
	}
	for _, p := range plans {
		path, err := nw.ActivePath(p.Config)
		if err != nil {
			t.Fatal(err)
		}
		if p.PathLen != len(path) {
			t.Fatalf("R%d: PathLen %d != %d", p.Register, p.PathLen, len(path))
		}
		if path[p.Offset].Register != p.Register || path[p.Offset].FF != 0 {
			t.Fatalf("R%d: offset %d points at %v", p.Register, p.Offset, path[p.Offset])
		}
	}
}

func TestWriteThenReadRegister(t *testing.T) {
	nw := buildDiamond()
	for id := 0; id < 3; id++ {
		plan, err := nw.PlanAccess(id)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSimulator(nw, nil)
		regLen := nw.Registers[id].Len
		bits := make([]bool, regLen)
		for i := range bits {
			bits[i] = i%2 == 0
		}
		if err := sim.WriteRegister(plan, bits); err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if sim.ScanFF(id, i) != bits[i] {
				t.Fatalf("R%d bit %d: wrote %v, holds %v", id, i, bits[i], sim.ScanFF(id, i))
			}
		}
		got, err := sim.ReadRegister(plan)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("R%d bit %d: read %v, want %v", id, i, got[i], bits[i])
			}
		}
	}
}

func TestWriteRegisterLengthCheck(t *testing.T) {
	nw := buildDiamond()
	plan, _ := nw.PlanAccess(0)
	sim := NewSimulator(nw, nil)
	if err := sim.WriteRegister(plan, []bool{true}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestInstrumentAccessRoundTrip(t *testing.T) {
	// Circuit: 3-bit instrument register.
	cn := netlist.New()
	m := cn.AddModule("inst")
	ffs := make([]netlist.FFID, 3)
	for i := range ffs {
		ffs[i] = cn.AddFF("f", m)
		cn.SetFFInput(ffs[i], cn.FFs[ffs[i]].Node)
	}
	nw := New("acc")
	nw.AddModule("inst")
	r := nw.AddRegister("R", 3, 0)
	nw.Connect(r, ScanIn)
	nw.ConnectOut(Reg(r))
	for i := range ffs {
		nw.SetCapture(r, i, ffs[i])
		nw.SetUpdate(r, i, ffs[i])
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := nw.PlanAccess(r)
	if err != nil {
		t.Fatal(err)
	}
	csim := netlist.NewSimulator(cn)
	sim := NewSimulator(nw, csim)

	want := []bool{true, false, true}
	if err := sim.WriteInstrument(plan, want); err != nil {
		t.Fatal(err)
	}
	for i, f := range ffs {
		if csim.FFValue(f) != want[i] {
			t.Fatalf("instrument bit %d = %v, want %v", i, csim.FFValue(f), want[i])
		}
	}
	got, err := sim.ReadInstrument(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read bit %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestAccessPlansOnRandomNetworks checks write-then-read across random
// topologies and register positions.
func TestAccessPlansOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 20; iter++ {
		nw := randomAccessNetwork(rng, 3+rng.Intn(8))
		if err := nw.Validate(); err != nil {
			t.Fatal(err)
		}
		plans, err := nw.PlanAllAccesses()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for _, plan := range plans {
			sim := NewSimulator(nw, nil)
			regLen := nw.Registers[plan.Register].Len
			bits := make([]bool, regLen)
			for i := range bits {
				bits[i] = rng.Intn(2) == 1
			}
			if err := sim.WriteRegister(plan, bits); err != nil {
				t.Fatal(err)
			}
			got, err := sim.ReadRegister(plan)
			if err != nil {
				t.Fatal(err)
			}
			for i := range bits {
				if got[i] != bits[i] {
					t.Fatalf("iter %d R%d bit %d: %v != %v", iter, plan.Register, i, got[i], bits[i])
				}
			}
		}
	}
}

// randomAccessNetwork mirrors the generator used in the pure tests but
// lives here to keep packages decoupled.
func randomAccessNetwork(rng *rand.Rand, nRegs int) *Network {
	nw := New("racc")
	for i := 0; i < nRegs; i++ {
		m := nw.AddModule("m")
		nw.AddRegister("R", 1+rng.Intn(4), m)
	}
	for i := 0; i < nRegs; i++ {
		pick := func() Ref {
			if i == 0 || rng.Intn(4) == 0 {
				return ScanIn
			}
			return Reg(rng.Intn(i))
		}
		if i > 1 && rng.Intn(3) == 0 {
			a, b := pick(), pick()
			if a == b {
				nw.Connect(i, a)
				continue
			}
			m := nw.AddMux("mx", a, b)
			nw.Connect(i, Mx(m))
		} else {
			nw.Connect(i, pick())
		}
	}
	var dangling []Ref
	for i := 0; i < nRegs; i++ {
		if len(nw.Sinks(Reg(i))) == 0 {
			dangling = append(dangling, Reg(i))
		}
	}
	switch len(dangling) {
	case 0:
		nw.ConnectOut(Reg(nRegs - 1))
	case 1:
		nw.ConnectOut(dangling[0])
	default:
		m := nw.AddMux("mout", dangling...)
		nw.ConnectOut(Mx(m))
	}
	return nw
}

func TestShiftCountHelpers(t *testing.T) {
	p := AccessPlan{Offset: 3, PathLen: 10}
	if p.ShiftsToWrite(2) != 5 {
		t.Fatalf("ShiftsToWrite = %d", p.ShiftsToWrite(2))
	}
	if p.ShiftsToRead(2) != 7 {
		t.Fatalf("ShiftsToRead = %d", p.ShiftsToRead(2))
	}
}
