package rsn

import (
	"testing"

	"repro/internal/netlist"
)

// buildDiamond returns a network
//
//	SI -> A -> M0{A,B} -> C -> SO
//	      A -> B
//
// where configuring M0 to 0 gives path A,C and to 1 gives A,B,C.
func buildDiamond() *Network {
	nw := New("diamond")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 2, m)
	b := nw.AddRegister("B", 3, m)
	c := nw.AddRegister("C", 1, m)
	nw.Connect(a, ScanIn)
	nw.Connect(b, Reg(a))
	mx := nw.AddMux("M0", Reg(a), Reg(b))
	nw.Connect(c, Mx(mx))
	nw.ConnectOut(Reg(c))
	return nw
}

func TestValidateDiamond(t *testing.T) {
	nw := buildDiamond()
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := nw.Stats()
	if st.Registers != 3 || st.ScanFFs != 6 || st.Muxes != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestValidateUnconnectedRegister(t *testing.T) {
	nw := New("bad")
	m := nw.AddModule("m")
	nw.AddRegister("A", 1, m)
	nw.ConnectOut(Reg(0))
	if err := nw.Validate(); err == nil {
		t.Fatal("expected unconnected input error")
	}
}

func TestValidateUnconnectedScanOut(t *testing.T) {
	nw := New("bad")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	nw.Connect(a, ScanIn)
	if err := nw.Validate(); err == nil {
		t.Fatal("expected unconnected scan-out error")
	}
}

func TestValidateCycle(t *testing.T) {
	nw := New("cyc")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	b := nw.AddRegister("B", 1, m)
	nw.Connect(a, Reg(b))
	nw.Connect(b, Reg(a))
	nw.ConnectOut(Reg(b))
	if err := nw.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateUnreachableFromScanIn(t *testing.T) {
	nw := New("orphan")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	b := nw.AddRegister("B", 1, m)
	nw.Connect(a, ScanIn)
	nw.Connect(b, Reg(b)) // self loop; also a cycle
	nw.ConnectOut(Reg(a))
	if err := nw.Validate(); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateCannotReachScanOut(t *testing.T) {
	nw := New("deadend")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	b := nw.AddRegister("B", 1, m)
	nw.Connect(a, ScanIn)
	nw.Connect(b, ScanIn)
	nw.ConnectOut(Reg(a)) // B feeds nothing
	if err := nw.Validate(); err == nil {
		t.Fatal("expected unreachable-scan-out error")
	}
}

func TestActivePath(t *testing.T) {
	nw := buildDiamond()
	cfg := nw.NewConfig()
	cfg[0] = 0 // select A directly
	path, err := nw.ActivePath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []PathElement{{0, 0}, {0, 1}, {2, 0}}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
	cfg[0] = 1 // through B
	path, err = nw.ActivePath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 {
		t.Fatalf("long path length = %d, want 6", len(path))
	}
	if path[2].Register != 1 || path[5].Register != 2 {
		t.Fatalf("long path = %v", path)
	}
}

func TestActivePathBadSelect(t *testing.T) {
	nw := buildDiamond()
	cfg := Config{5}
	if _, err := nw.ActivePath(cfg); err == nil {
		t.Fatal("expected select out of range error")
	}
}

func TestConfigsThrough(t *testing.T) {
	nw := buildDiamond()
	for id := 0; id < 3; id++ {
		cfg, ok := nw.ConfigsThrough(id)
		if !ok {
			t.Fatalf("no config through R%d", id)
		}
		path, err := nw.ActivePath(cfg)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, pe := range path {
			if pe.Register == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("config %v path %v does not contain R%d", cfg, path, id)
		}
	}
}

func TestPureReachability(t *testing.T) {
	nw := buildDiamond()
	if !nw.PureReaches(Reg(0), Reg(2)) {
		t.Error("A must reach C")
	}
	if !nw.PureReaches(Reg(1), Reg(2)) {
		t.Error("B must reach C")
	}
	if nw.PureReaches(Reg(2), Reg(0)) {
		t.Error("C must not reach A")
	}
	preds := nw.PurePredecessors(2)
	if len(preds) != 2 {
		t.Errorf("predecessors of C = %v", preds)
	}
	succs := nw.PureSuccessors(0)
	if len(succs) != 2 {
		t.Errorf("successors of A = %v", succs)
	}
	if got := nw.PureSuccessors(2); len(got) != 0 {
		t.Errorf("successors of C = %v", got)
	}
}

func TestSinksAndSetSink(t *testing.T) {
	nw := buildDiamond()
	sinks := nw.Sinks(Reg(0)) // A feeds B and M0 input 0
	if len(sinks) != 2 {
		t.Fatalf("sinks of A = %v", sinks)
	}
	// Rewire M0 input 0 to scan-in.
	var muxSink Sink
	for _, s := range sinks {
		if s.Elem.Kind == KMux {
			muxSink = s
		}
	}
	nw.SetSink(muxSink, ScanIn)
	if got := nw.SinkSource(muxSink); got != ScanIn {
		t.Fatalf("SinkSource = %v", got)
	}
	if len(nw.Sinks(Reg(0))) != 1 {
		t.Fatal("A should now feed only B")
	}
}

func TestCloneIndependence(t *testing.T) {
	nw := buildDiamond()
	cp := nw.Clone()
	cp.Connect(2, ScanIn)
	cp.Muxes[0].Inputs[0] = ScanIn
	cp.Registers[0].Capture[0] = 7
	if nw.Registers[2].In == ScanIn {
		t.Fatal("clone shares register state")
	}
	if nw.Muxes[0].Inputs[0] == ScanIn {
		t.Fatal("clone shares mux inputs")
	}
	if nw.Registers[0].Capture[0] == 7 {
		t.Fatal("clone shares capture slices")
	}
}

func TestRefString(t *testing.T) {
	if ScanIn.String() != "SI" || ScanOut.String() != "SO" {
		t.Fatal("port names")
	}
	if Reg(3).String() != "R3" || Mx(1).String() != "M1" {
		t.Fatal("element names")
	}
	if NoRef.String() != "<none>" {
		t.Fatal("NoRef name")
	}
}

func TestShiftThroughPath(t *testing.T) {
	nw := buildDiamond()
	sim := NewSimulator(nw, nil)
	cfg := nw.NewConfig()
	cfg[0] = 1 // A,B,C: 6 FFs
	bits := []bool{true, false, true, true, false, false}
	out, err := sim.ShiftN(cfg, bits, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o {
			t.Fatalf("unexpected nonzero scan-out %v", out)
		}
	}
	// After 6 shifts the 6-FF path holds the bits; first bit shifted in
	// is now at the end of the path (register C).
	if !sim.ScanFF(2, 0) {
		t.Fatal("first bit must have reached register C")
	}
	// Shifting 6 more cycles streams the pattern out in order.
	out, err = sim.ShiftN(cfg, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range bits {
		if out[i] != want {
			t.Fatalf("scan-out[%d] = %v, want %v (%v)", i, out[i], want, out)
		}
	}
}

func TestCaptureUpdateRoundTrip(t *testing.T) {
	// Circuit: two FFs holding state; scan register captures from f0 and
	// updates into f1.
	cn := netlist.New()
	cm := cn.AddModule("m")
	f0 := cn.AddFF("f0", cm)
	f1 := cn.AddFF("f1", cm)
	cn.SetFFInput(f0, cn.FFs[f0].Node) // hold
	cn.SetFFInput(f1, cn.FFs[f1].Node) // hold
	csim := netlist.NewSimulator(cn)

	nw := New("cap")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 2, m)
	nw.Connect(a, ScanIn)
	nw.ConnectOut(Reg(a))
	nw.SetCapture(a, 0, f0)
	nw.SetUpdate(a, 1, f1)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}

	sim := NewSimulator(nw, csim)
	csim.SetFF(f0, true)
	cfg := nw.NewConfig()
	if err := sim.Capture(cfg); err != nil {
		t.Fatal(err)
	}
	if !sim.ScanFF(a, 0) {
		t.Fatal("capture did not load f0")
	}
	// Shift once: the captured bit moves from position 0 to 1.
	if _, err := sim.Shift(cfg, false); err != nil {
		t.Fatal(err)
	}
	if !sim.ScanFF(a, 1) {
		t.Fatal("shift did not move captured bit")
	}
	if err := sim.Update(cfg); err != nil {
		t.Fatal(err)
	}
	if !csim.FFValue(f1) {
		t.Fatal("update did not write f1")
	}
}

func TestShiftOffPathRegistersUntouched(t *testing.T) {
	nw := buildDiamond()
	sim := NewSimulator(nw, nil)
	sim.SetScanFF(1, 1, true) // register B, off path when cfg[0]=0
	cfg := nw.NewConfig()
	cfg[0] = 0
	if _, err := sim.ShiftN(cfg, []bool{true, true, true}, 3); err != nil {
		t.Fatal(err)
	}
	if !sim.ScanFF(1, 1) {
		t.Fatal("off-path register must keep its value")
	}
}

func TestNumScanFFs(t *testing.T) {
	nw := buildDiamond()
	if nw.NumScanFFs() != 6 {
		t.Fatalf("NumScanFFs = %d", nw.NumScanFFs())
	}
}

func TestAddRegisterPanicsOnZeroLen(t *testing.T) {
	nw := New("p")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw.AddRegister("bad", 0, 0)
}

func TestElementTopoOrder(t *testing.T) {
	nw := buildDiamond()
	order := nw.ElementTopoOrder()
	pos := map[Ref]int{}
	for i, r := range order {
		pos[r] = i
	}
	if order[0] != ScanIn || order[len(order)-1] != ScanOut {
		t.Fatalf("order endpoints wrong: %v", order)
	}
	// Every element appears once and after its inputs.
	if len(order) != 2+3+1 {
		t.Fatalf("order = %v", order)
	}
	for _, r := range order {
		for _, in := range nw.InputsOf(r) {
			if pos[in] >= pos[r] {
				t.Fatalf("input %v not before %v in %v", in, r, order)
			}
		}
	}
}

func TestInputsOf(t *testing.T) {
	nw := buildDiamond()
	if ins := nw.InputsOf(Mx(0)); len(ins) != 2 {
		t.Fatalf("mux inputs = %v", ins)
	}
	if ins := nw.InputsOf(Reg(0)); len(ins) != 1 || ins[0] != ScanIn {
		t.Fatalf("register inputs = %v", ins)
	}
	if ins := nw.InputsOf(ScanIn); ins != nil {
		t.Fatalf("scan-in inputs = %v", ins)
	}
	if ins := nw.InputsOf(ScanOut); len(ins) != 1 {
		t.Fatalf("scan-out inputs = %v", ins)
	}
}
