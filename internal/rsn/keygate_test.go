package rsn

import (
	"testing"
)

func boolsOf(bits ...int) []bool {
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = b != 0
	}
	return out
}

func TestKeyedSimulatorStaticXOR(t *testing.T) {
	// SI -> A(2) -> C(1) -> SO with an XOR gate on A's output link.
	nw := New("chain")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 2, m)
	c := nw.AddRegister("C", 1, m)
	nw.Connect(a, ScanIn)
	nw.Connect(c, Reg(a))
	nw.ConnectOut(Reg(c))
	ov := &Obfuscation{NumKeyBits: 2, Gates: []KeyGate{{Kind: KeyXOR, Elem: a, Bit: 1}}}
	if err := ov.Validate(nw); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// With key bit 1 clear the keyed simulator must match the plain one.
	ks, err := NewKeyedSimulator(nw, ov, boolsOf(1, 0))
	if err != nil {
		t.Fatalf("NewKeyedSimulator: %v", err)
	}
	ps := NewSimulator(nw, nil)
	cfg := nw.NewConfig()
	stream := boolsOf(1, 0, 1, 1, 0, 1, 0, 0)
	got, err := ks.ShiftN(cfg, stream, len(stream))
	if err != nil {
		t.Fatalf("keyed ShiftN: %v", err)
	}
	want, err := ps.ShiftN(cfg, stream, len(stream))
	if err != nil {
		t.Fatalf("plain ShiftN: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: keyed=%v plain=%v (gate bit clear should be transparent)", i, got[i], want[i])
		}
	}

	// With key bit 1 set, every bit that crossed A's output link is
	// inverted: the value entering C is flipped, so scan-out shows the
	// complement of the plain response once real data emerges.
	ks2, _ := NewKeyedSimulator(nw, ov, boolsOf(0, 1))
	ps2 := NewSimulator(nw, nil)
	got2, err := ks2.ShiftN(cfg, stream, len(stream))
	if err != nil {
		t.Fatalf("keyed ShiftN: %v", err)
	}
	want2, _ := ps2.ShiftN(cfg, stream, len(stream))
	// Cycle 0 reads C's initial zero before anything crossed the gate;
	// from cycle 1 on every emerging bit crossed A's output link once.
	if got2[0] != want2[0] {
		t.Fatalf("cycle 0: initial state should be unaffected by the gate")
	}
	for i := 1; i < len(got2); i++ {
		if got2[i] == want2[i] {
			t.Fatalf("cycle %d: keyed output not inverted by XOR gate", i)
		}
	}
}

func TestKeyedSimulatorKeyMux(t *testing.T) {
	// Diamond: M0 gated by key bit 0. cfg=0 with key bit set must
	// behave like cfg=1 on the plain network and vice versa.
	nw := buildDiamond()
	ov := &Obfuscation{NumKeyBits: 1, Gates: []KeyGate{{Kind: KeyMux, Elem: 0, Bit: 0}}}
	stream := boolsOf(1, 1, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0)
	for sel := 0; sel <= 1; sel++ {
		ks, err := NewKeyedSimulator(nw, ov, boolsOf(1))
		if err != nil {
			t.Fatalf("NewKeyedSimulator: %v", err)
		}
		ps := NewSimulator(nw, nil)
		got, err := ks.ShiftN(Config{sel}, stream, len(stream))
		if err != nil {
			t.Fatalf("keyed ShiftN: %v", err)
		}
		want, err := ps.ShiftN(Config{1 - sel}, stream, len(stream))
		if err != nil {
			t.Fatalf("plain ShiftN: %v", err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sel=%d cycle %d: keyed=%v plain(flipped)=%v", sel, i, got[i], want[i])
			}
		}
	}
}

func TestKeyScheduleLFSR(t *testing.T) {
	ov := &Obfuscation{NumKeyBits: 3, Dynamic: true, Taps: []int{0, 2},
		Gates: []KeyGate{{Kind: KeyXOR, Elem: 0, Bit: 0}}}
	s := boolsOf(1, 0, 1)
	// feedback = s[0]^s[2] = 0; shift down: [0,1,0]
	s = ov.NextKeyState(s)
	if !equalBools(s, boolsOf(0, 1, 0)) {
		t.Fatalf("step 1 = %v", s)
	}
	// feedback = 0^0 = 0 -> [1,0,0]
	s = ov.NextKeyState(s)
	if !equalBools(s, boolsOf(1, 0, 0)) {
		t.Fatalf("step 2 = %v", s)
	}
	// feedback = 1^0 = 1 -> [0,0,1]
	s = ov.NextKeyState(s)
	if !equalBools(s, boolsOf(0, 0, 1)) {
		t.Fatalf("step 3 = %v", s)
	}
}

func TestKeyedSimulatorDynamicAdvances(t *testing.T) {
	// Single 1-cell register with an XOR output gate under a dynamic
	// schedule: out_t = in_{t-1} ^ S_t[0], so the output stream for a
	// zero input is exactly the LFSR bit-0 trace.
	nw := New("one")
	m := nw.AddModule("m")
	a := nw.AddRegister("A", 1, m)
	nw.Connect(a, ScanIn)
	nw.ConnectOut(Reg(a))
	ov := &Obfuscation{NumKeyBits: 3, Dynamic: true, Taps: []int{1},
		Gates: []KeyGate{{Kind: KeyXOR, Elem: a, Bit: 0}}}
	key := boolsOf(1, 1, 0)
	ks, err := NewKeyedSimulator(nw, ov, key)
	if err != nil {
		t.Fatalf("NewKeyedSimulator: %v", err)
	}
	st := append([]bool(nil), key...)
	for cycle := 0; cycle < 8; cycle++ {
		want := st[0]
		got, err := ks.Shift(nw.NewConfig(), false)
		if err != nil {
			t.Fatalf("Shift: %v", err)
		}
		if got != want {
			t.Fatalf("cycle %d: out=%v want LFSR bit %v", cycle, got, want)
		}
		st = ov.NextKeyState(st)
	}
}

func TestObfuscationValidate(t *testing.T) {
	nw := buildDiamond()
	cases := []struct {
		name string
		ov   Obfuscation
	}{
		{"no key bits", Obfuscation{Gates: []KeyGate{{Kind: KeyXOR, Elem: 0, Bit: 0}}}},
		{"no gates", Obfuscation{NumKeyBits: 2}},
		{"bit range", Obfuscation{NumKeyBits: 1, Gates: []KeyGate{{Kind: KeyXOR, Elem: 0, Bit: 1}}}},
		{"bad kind", Obfuscation{NumKeyBits: 1, Gates: []KeyGate{{Kind: "nand", Elem: 0, Bit: 0}}}},
		{"reg range", Obfuscation{NumKeyBits: 1, Gates: []KeyGate{{Kind: KeyXOR, Elem: 9, Bit: 0}}}},
		{"mux range", Obfuscation{NumKeyBits: 1, Gates: []KeyGate{{Kind: KeyMux, Elem: 5, Bit: 0}}}},
		{"double gate", Obfuscation{NumKeyBits: 2, Gates: []KeyGate{
			{Kind: KeyXOR, Elem: 0, Bit: 0}, {Kind: KeyXOR, Elem: 0, Bit: 1}}}},
		{"dynamic no taps", Obfuscation{NumKeyBits: 1, Dynamic: true,
			Gates: []KeyGate{{Kind: KeyXOR, Elem: 0, Bit: 0}}}},
		{"static with taps", Obfuscation{NumKeyBits: 1, Taps: []int{0},
			Gates: []KeyGate{{Kind: KeyXOR, Elem: 0, Bit: 0}}}},
		{"tap range", Obfuscation{NumKeyBits: 1, Dynamic: true, Taps: []int{3},
			Gates: []KeyGate{{Kind: KeyXOR, Elem: 0, Bit: 0}}}},
	}
	for _, tc := range cases {
		if err := tc.ov.Validate(nw); err == nil {
			t.Errorf("%s: Validate accepted invalid overlay", tc.name)
		}
	}
	ok := Obfuscation{NumKeyBits: 2, Gates: []KeyGate{
		{Kind: KeyXOR, Elem: 1, Bit: 0}, {Kind: KeyMux, Elem: 0, Bit: 1}}}
	if err := ok.Validate(nw); err != nil {
		t.Errorf("valid overlay rejected: %v", err)
	}
}

func TestOverlayRoundTrip(t *testing.T) {
	nw := buildDiamond()
	ov := &Obfuscation{NumKeyBits: 3, Dynamic: true, Taps: []int{0, 2}, Gates: []KeyGate{
		{Kind: KeyXOR, Elem: 2, Bit: 0}, {Kind: KeyMux, Elem: 0, Bit: 2}}}
	key := boolsOf(1, 0, 1)
	data, err := MarshalObfuscation(ov, nw, key)
	if err != nil {
		t.Fatalf("MarshalObfuscation: %v", err)
	}
	got, gotKey, err := ParseObfuscation(data, nw)
	if err != nil {
		t.Fatalf("ParseObfuscation: %v", err)
	}
	if got.NumKeyBits != ov.NumKeyBits || got.Dynamic != ov.Dynamic || len(got.Gates) != len(ov.Gates) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range got.Gates {
		if got.Gates[i] != ov.Gates[i] {
			t.Fatalf("gate %d: %+v != %+v", i, got.Gates[i], ov.Gates[i])
		}
	}
	if !equalBools(gotKey, key) {
		t.Fatalf("key round trip: %v != %v", gotKey, key)
	}
	// Without the key the document must omit the secret entirely.
	data2, err := MarshalObfuscation(ov, nw, nil)
	if err != nil {
		t.Fatalf("MarshalObfuscation(no key): %v", err)
	}
	if string(data2) == string(data) {
		t.Fatal("keyless document should differ")
	}
	_, noKey, err := ParseObfuscation(data2, nw)
	if err != nil {
		t.Fatalf("ParseObfuscation(no key): %v", err)
	}
	if noKey != nil {
		t.Fatalf("keyless document produced key %v", noKey)
	}
}

func TestKeyHexRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 8, 9, 16, 63} {
		key := KeyFromSeed(int64(n)*77+5, n)
		s := KeyHex(key)
		got, err := ParseKeyHex(s, n)
		if err != nil {
			t.Fatalf("n=%d ParseKeyHex(%q): %v", n, s, err)
		}
		if !equalBools(got, key) {
			t.Fatalf("n=%d round trip: %v != %v", n, got, key)
		}
	}
	if _, err := ParseKeyHex("ff", 3); err == nil {
		t.Fatal("ParseKeyHex accepted bits beyond the key width")
	}
	if _, err := ParseKeyHex("0102", 8); err == nil {
		t.Fatal("ParseKeyHex accepted oversized key")
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
