package rsn

import (
	"fmt"

	"repro/internal/netlist"
)

// Simulator executes capture, shift and update phases of a network,
// optionally coupled to a gate-level circuit simulator. It is used to
// demonstrate attacks (shifting confidential data into an untrusted
// module) and to verify that secured networks no longer admit them.
type Simulator struct {
	nw      *Network
	circuit *netlist.Simulator // may be nil
	scan    [][]bool           // per register, per scan FF
}

// NewSimulator returns a simulator with all scan flip-flops at 0.
// circuit may be nil for a pure scan network simulation.
func NewSimulator(nw *Network, circuit *netlist.Simulator) *Simulator {
	scan := make([][]bool, len(nw.Registers))
	for i := range scan {
		scan[i] = make([]bool, nw.Registers[i].Len)
	}
	return &Simulator{nw: nw, circuit: circuit, scan: scan}
}

// ScanFF returns the current value of scan FF i of register reg.
func (s *Simulator) ScanFF(reg, i int) bool { return s.scan[reg][i] }

// SetScanFF sets the value of scan FF i of register reg.
func (s *Simulator) SetScanFF(reg, i int, v bool) { s.scan[reg][i] = v }

// Circuit returns the attached circuit simulator (or nil).
func (s *Simulator) Circuit() *netlist.Simulator { return s.circuit }

// Capture runs one capture phase: every scan flip-flop on the active
// path with a capture source loads the current value of its circuit
// flip-flop.
func (s *Simulator) Capture(cfg Config) error {
	path, err := s.nw.ActivePath(cfg)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	if s.circuit == nil {
		return nil
	}
	for _, pe := range path {
		src := s.nw.Registers[pe.Register].Capture[pe.FF]
		if src != netlist.NoFF {
			s.scan[pe.Register][pe.FF] = s.circuit.FFValue(src)
		}
	}
	return nil
}

// Shift runs one shift cycle along the active path: scan-in data enters
// the first flip-flop, every flip-flop takes its predecessor's value,
// and the last flip-flop's previous value appears at scan-out.
func (s *Simulator) Shift(cfg Config, in bool) (out bool, err error) {
	path, err := s.nw.ActivePath(cfg)
	if err != nil {
		return false, fmt.Errorf("shift: %w", err)
	}
	if len(path) == 0 {
		return in, nil
	}
	last := path[len(path)-1]
	out = s.scan[last.Register][last.FF]
	for k := len(path) - 1; k >= 1; k-- {
		prev := path[k-1]
		s.scan[path[k].Register][path[k].FF] = s.scan[prev.Register][prev.FF]
	}
	s.scan[path[0].Register][path[0].FF] = in
	return out, nil
}

// ShiftN performs n shift cycles feeding the given bits (padded with
// zeros) and returns the bits observed at scan-out.
func (s *Simulator) ShiftN(cfg Config, bits []bool, n int) ([]bool, error) {
	out := make([]bool, 0, n)
	for k := 0; k < n; k++ {
		in := false
		if k < len(bits) {
			in = bits[k]
		}
		o, err := s.Shift(cfg, in)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Update runs one update phase: every scan flip-flop on the active path
// with an update sink writes its value into its circuit flip-flop.
func (s *Simulator) Update(cfg Config) error {
	path, err := s.nw.ActivePath(cfg)
	if err != nil {
		return fmt.Errorf("update: %w", err)
	}
	if s.circuit == nil {
		return nil
	}
	for _, pe := range path {
		dst := s.nw.Registers[pe.Register].Update[pe.FF]
		if dst != netlist.NoFF {
			s.circuit.SetFF(dst, s.scan[pe.Register][pe.FF])
		}
	}
	return nil
}

// ClockCircuit advances the functional circuit by n clock cycles.
func (s *Simulator) ClockCircuit(n int) {
	if s.circuit == nil {
		return
	}
	for i := 0; i < n; i++ {
		s.circuit.Step()
	}
}
