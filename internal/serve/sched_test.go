package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// gateRun is a controllable job body: each invocation parks until its
// release channel is closed (or the job context ends) and records the
// execution order.
type gateRun struct {
	mu      sync.Mutex
	order   []string
	release chan struct{}
	started chan string
}

func newGateRun() *gateRun {
	return &gateRun{
		release: make(chan struct{}),
		started: make(chan string, 64),
	}
}

func (g *gateRun) run(ctx context.Context, j *Job) ([]byte, error) {
	g.mu.Lock()
	g.order = append(g.order, j.Label)
	g.mu.Unlock()
	g.started <- j.Label
	select {
	case <-g.release:
		return []byte("report:" + j.Label), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gateRun) ran() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

func waitState(t *testing.T, s *Scheduler, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerCoalescesIdenticalSubmissions(t *testing.T) {
	g := newGateRun()
	reg := obs.NewRegistry()
	s := NewScheduler(SchedulerConfig{Workers: 1}, reg, g.run)
	j1, joined, err := s.Submit(context.Background(), testKey(1), "a", 0, 0, nil)
	if err != nil || joined {
		t.Fatalf("first submit: joined=%v err=%v", joined, err)
	}
	<-g.started // j1 is running
	j2, joined, err := s.Submit(context.Background(), testKey(1), "a", 0, 0, nil)
	if err != nil || !joined {
		t.Fatalf("identical submit must coalesce: joined=%v err=%v", joined, err)
	}
	if j2.ID != j1.ID {
		t.Fatalf("coalesced submission got a fresh job: %s vs %s", j2.ID, j1.ID)
	}
	close(g.release)
	waitState(t, s, j1.ID, StateDone)
	if got := g.ran(); len(got) != 1 {
		t.Fatalf("engine ran %d times for 2 identical submissions", len(got))
	}
	if v := reg.Counter("serve_jobs_coalesced_total").Value(); v != 1 {
		t.Fatalf("coalesced counter = %d, want 1", v)
	}
	// The key is released on completion: a later identical submission
	// runs fresh (the HTTP layer consults the store first).
	g.release = make(chan struct{})
	close(g.release)
	j3, joined, err := s.Submit(context.Background(), testKey(1), "a", 0, 0, nil)
	if err != nil || joined {
		t.Fatalf("post-completion submit must not coalesce: %v %v", joined, err)
	}
	waitState(t, s, j3.ID, StateDone)
}

func TestSchedulerQueueFullBackpressure(t *testing.T) {
	g := newGateRun()
	defer close(g.release)
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 1}, obs.NewRegistry(), g.run)
	s.Submit(context.Background(), testKey(1), "running", 0, 0, nil)
	<-g.started
	if _, _, err := s.Submit(context.Background(), testKey(2), "queued", 0, 0, nil); err != nil {
		t.Fatalf("queue slot available: %v", err)
	}
	_, _, err := s.Submit(context.Background(), testKey(3), "over", 0, 0, nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow error = %v, want ErrQueueFull", err)
	}
	// Coalescing still works at full queue: it adds no queue entry.
	if _, joined, err := s.Submit(context.Background(), testKey(2), "queued", 0, 0, nil); err != nil || !joined {
		t.Fatalf("coalesce at full queue: joined=%v err=%v", joined, err)
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	g := newGateRun()
	s := NewScheduler(SchedulerConfig{Workers: 1}, obs.NewRegistry(), g.run)
	s.Submit(context.Background(), testKey(0), "first", 0, 0, nil)
	<-g.started // worker busy; the rest queue up
	s.Submit(context.Background(), testKey(1), "low-a", 0, 0, nil)
	s.Submit(context.Background(), testKey(2), "high", 5, 0, nil)
	jLast, _, _ := s.Submit(context.Background(), testKey(3), "low-b", 0, 0, nil)
	close(g.release)
	for i := 0; i < 3; i++ {
		<-g.started
	}
	waitState(t, s, jLast.ID, StateDone)
	want := []string{"first", "high", "low-a", "low-b"}
	got := g.ran()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	g := newGateRun()
	defer close(g.release)
	s := NewScheduler(SchedulerConfig{Workers: 1}, obs.NewRegistry(), g.run)
	s.Submit(context.Background(), testKey(0), "running", 0, 0, nil)
	<-g.started
	j, _, _ := s.Submit(context.Background(), testKey(1), "queued", 0, 0, nil)
	st, err := s.Cancel(j.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: state=%s err=%v", st.State, err)
	}
	if s.Queued() != 0 {
		t.Fatalf("queue depth = %d after cancel", s.Queued())
	}
	// Canceling again reports the terminal state.
	if _, err := s.Cancel(j.ID); !errors.Is(err, ErrJobFinished) {
		t.Fatalf("double cancel error = %v", err)
	}
	// The canceled key coalesces no more.
	if _, joined, err := s.Submit(context.Background(), testKey(1), "queued", 0, 0, nil); err != nil || joined {
		t.Fatalf("resubmit after cancel: joined=%v err=%v", joined, err)
	}
}

func TestSchedulerCancelRunningFreesWorker(t *testing.T) {
	g := newGateRun()
	defer close(g.release)
	s := NewScheduler(SchedulerConfig{Workers: 1}, obs.NewRegistry(), g.run)
	j1, _, _ := s.Submit(context.Background(), testKey(1), "victim", 0, 0, nil)
	<-g.started
	j2, _, _ := s.Submit(context.Background(), testKey(2), "next", 0, 0, nil)
	if _, err := s.Cancel(j1.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	st := waitState(t, s, j1.ID, StateCanceled)
	if st.Error != "canceled" {
		t.Fatalf("canceled job error = %q", st.Error)
	}
	// The worker must move on to the next queued job.
	<-g.started
	if st, _ := s.Status(j2.ID); st.State != StateRunning {
		t.Fatalf("next job state = %s, want running", st.State)
	}
}

func TestSchedulerJobTimeout(t *testing.T) {
	g := newGateRun()
	defer close(g.release)
	s := NewScheduler(SchedulerConfig{Workers: 1, JobTimeout: 20 * time.Millisecond}, obs.NewRegistry(), g.run)
	// A request asking for MORE than the server cap is clamped down.
	j, _, _ := s.Submit(context.Background(), testKey(1), "slow", 0, time.Hour, nil)
	st := waitState(t, s, j.ID, StateFailed)
	if st.Error == "" || st.Error[:8] != "timeout:" {
		t.Fatalf("timeout error = %q", st.Error)
	}
}

func TestSchedulerDrainGraceful(t *testing.T) {
	g := newGateRun()
	s := NewScheduler(SchedulerConfig{Workers: 1}, obs.NewRegistry(), g.run)
	j1, _, _ := s.Submit(context.Background(), testKey(1), "running", 0, 0, nil)
	<-g.started
	j2, _, _ := s.Submit(context.Background(), testKey(2), "queued", 0, 0, nil)

	done := make(chan error)
	go func() { done <- s.Drain(context.Background()) }()
	// Submissions are refused once draining.
	deadline := time.Now().Add(time.Second)
	for {
		if _, _, err := s.Submit(context.Background(), testKey(3), "late", 0, 0, nil); errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining scheduler still accepts submissions")
		}
		time.Sleep(time.Millisecond)
	}
	close(g.release) // both jobs finish
	if err := <-done; err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if st, _ := s.Status(id); st.State != StateDone {
			t.Fatalf("job %s = %s after graceful drain, want done", id, st.State)
		}
	}
}

func TestSchedulerDrainDeadlineCancels(t *testing.T) {
	g := newGateRun()
	defer close(g.release)
	s := NewScheduler(SchedulerConfig{Workers: 1}, obs.NewRegistry(), g.run)
	j1, _, _ := s.Submit(context.Background(), testKey(1), "running", 0, 0, nil)
	<-g.started
	j2, _, _ := s.Submit(context.Background(), testKey(2), "queued", 0, 0, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain error = %v", err)
	}
	// No accepted job is silently dropped: both reached terminal states.
	if st, _ := s.Status(j1.ID); st.State != StateCanceled {
		t.Fatalf("running job after forced drain = %s", st.State)
	}
	if st, _ := s.Status(j2.ID); st.State != StateCanceled {
		t.Fatalf("queued job after forced drain = %s", st.State)
	}
}

func TestSchedulerInsertFinished(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1}, obs.NewRegistry(), nil)
	j := s.InsertFinished(context.Background(), testKey(9), "cached", "hit", []byte("doc"))
	st, err := s.Status(j.ID)
	if err != nil || st.State != StateDone || st.Cache != "hit" {
		t.Fatalf("store-hit record: %+v err=%v", st, err)
	}
	data, _, err := s.Result(j.ID)
	if err != nil || string(data) != "doc" {
		t.Fatalf("store-hit result: %q err=%v", data, err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("store-hit job must be born finished")
	}
}

func TestSchedulerFinishedRecordEviction(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, FinishedJobs: 2}, obs.NewRegistry(), nil)
	first := s.InsertFinished(context.Background(), testKey(0), "a", "hit", nil)
	s.InsertFinished(context.Background(), testKey(1), "b", "hit", nil)
	s.InsertFinished(context.Background(), testKey(2), "c", "hit", nil)
	if _, err := s.Status(first.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest finished record must be evicted, got err=%v", err)
	}
}
