package serve

import (
	"net/http"
	"time"

	"repro/internal/obs/series"
)

// handleHistory serves GET /debug/metrics/history: one evaluated range
// query over the in-process series store, as a
// rsnsec.metrics-history/v1 document.
//
//	name=    metric family (required; omit to get the known families)
//	window=  trailing range, Go duration (default: full retention)
//	step=    point spacing, Go duration (default: sampling interval)
//	fn=      aggregation (kind-specific; default rate/avg/p50)
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, "metrics history disabled (start with -history-interval)")
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"families":     s.history.Families(),
			"fns":          series.KnownFns(),
			"interval_ms":  s.history.Interval().Milliseconds(),
			"retention_ms": s.history.Retention().Milliseconds(),
		})
		return
	}
	window, err := parseDur(q.Get("window"), s.history.Retention())
	if err != nil {
		writeError(w, http.StatusBadRequest, "window: %v", err)
		return
	}
	step, err := parseDur(q.Get("step"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "step: %v", err)
		return
	}
	h, err := s.history.Query(name, window, step, q.Get("fn"), time.Now())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func parseDur(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	return time.ParseDuration(s)
}

// handleSLO serves GET /v1/slo: the rsnsec.slo-status/v1 document.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.sloEng == nil {
		writeError(w, http.StatusNotFound, "no SLO config loaded (start with -slo)")
		return
	}
	writeJSON(w, http.StatusOK, s.sloEng.Evaluate(time.Now()))
}
