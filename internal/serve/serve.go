// Package serve is the rsnserved analysis service: a daemon that runs
// the secure-data-flow method (and the Table I experimental protocol)
// behind an HTTP+JSON API, backed by a content-addressed result store
// and a bounded job scheduler.
//
// The pieces compose as
//
//	HTTP API  ──►  content address (canonical SHA-256 of the inputs)
//	   │                 │
//	   │           store hit? ── yes ──► finished record, cached report
//	   │                 │ no
//	   └──────►  scheduler (coalesce identical in-flight jobs,
//	             bounded queue with priority, 429 backpressure)
//	                     │
//	              worker pool ──► internal/exp / internal/core
//	                     │
//	              store.Put(key, report) — rsnsec.run-report/v1
//
// Analysis results (counts, changes, violations) are deterministic by
// construction, which is what makes content addressing sound; the
// byte-identical responses for repeated submissions come from serving
// the stored document instead of re-running.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/olog"
	"repro/internal/obs/perfrec"
	"repro/internal/obs/series"
	"repro/internal/obs/slo"
)

// Limits bounds and defaults the per-request protocol parameters.
type Limits struct {
	// DefaultCircuits/DefaultSpecs/DefaultScanFFs fill zero-valued
	// submissions; defaults are deliberately small — a service answers
	// many users, so the heavyweight full protocol must be asked for
	// explicitly.
	DefaultCircuits int
	DefaultSpecs    int
	DefaultScanFFs  int
	// MaxCircuits/MaxSpecs/MaxScanFFs reject submissions that would
	// monopolize the workers.
	MaxCircuits int
	MaxSpecs    int
	MaxScanFFs  int
}

// Config parameterizes a Server. The zero value is usable: ephemeral
// port, memory-only store, one worker.
type Config struct {
	// Addr is the listen address; "" means "localhost:0" (ephemeral).
	Addr string
	// Workers is the number of concurrent analysis jobs; <= 0 uses 1.
	Workers int
	// EngineWorkers bounds each job's inner SAT worker pool; <= 0 lets
	// the engine size itself.
	EngineWorkers int
	// QueueDepth bounds the pending-job queue; <= 0 uses 64.
	QueueDepth int
	// JobTimeout caps each job's run time; 0 means no cap.
	JobTimeout time.Duration
	// FinishedJobs bounds the retained finished-job records; <= 0 uses
	// 1024.
	FinishedJobs int
	// MaxSessions bounds the live (in-memory) analysis sessions kept
	// for delta submissions; <= 0 uses 16. Evicted sessions re-hydrate
	// from their persisted records on the next delta.
	MaxSessions int
	// Store sizes the content-addressed result store.
	Store StoreConfig
	// Limits bounds request parameters; zero fields use the package
	// defaults (see limits).
	Limits Limits
	// Registry receives the server's metrics (request latencies, queue
	// depth, store hit/miss counters, engine stage counters); nil
	// creates a private registry.
	Registry *obs.Registry
	// Tracer, when non-nil, receives hierarchical spans:
	// server > job > (engine stages).
	Tracer *obs.Tracer
	// SlowJobThreshold enables the slow-job log: a job whose run time
	// reaches it dumps its full span tree as one JSONL record to
	// SlowJobLog; 0 disables. While enabled, jobs trace into a private
	// unsampled per-job tracer (the span tree appears in the dump, not
	// in Tracer's journal; lifecycle spans still do).
	SlowJobThreshold time.Duration
	// SlowJobLog receives the slow-job JSONL records; buffered, flushed
	// on Shutdown. Required for SlowJobThreshold to take effect.
	SlowJobLog io.Writer
	// Logger receives the server's structured records (lifecycle
	// events, one access-log line per request, job transitions). Build
	// it with olog.New so records pick up the request identity from
	// their context. Nil falls back to bridging Logf; with both nil the
	// server is silent.
	Logger *slog.Logger
	// Logf, when non-nil (and Logger nil), receives one rendered line
	// per event — the legacy printf seam, kept for embedders.
	Logf func(format string, args ...any)
	// FlightEvents sizes the flight recorder's per-category rings
	// (served at /debug/events, embedded in slow-job dumps): 0 uses
	// 256, < 0 disables the recorder entirely.
	FlightEvents int
	// LoadModel, when non-nil, seeds the predicted-backlog cost model
	// from a bench record's per-stage medians (see load.go); without it
	// the model warms up from observed job durations alone.
	LoadModel *perfrec.Record
	// SaturationThreshold flips /readyz to 503 "saturated" while the
	// predicted backlog meets or exceeds it; 0 disables the gate.
	SaturationThreshold time.Duration
	// LoadEWMAAlpha overrides the cost model's EWMA weight; 0 uses the
	// default (0.3), anything outside (0, 1] is rejected by New.
	LoadEWMAAlpha float64
	// History, when non-nil, enables the in-process metrics history: a
	// bounded series store sampling the registry on History.Interval
	// (served at /debug/metrics/history, feeding the SLO engine and the
	// windowed cost percentiles). Nil disables it — unless SLO is set,
	// which enables history with defaults sized to the objectives.
	History *series.Config
	// SLO, when non-nil, evaluates the objectives against the metrics
	// history: /v1/slo serves the status document, slo_* gauges appear
	// in /metrics, and gate_ready objectives couple to /readyz.
	SLO *slo.Config
}

// limits resolves the configured bounds against the defaults.
func (c *Config) limits() Limits {
	l := c.Limits
	if l.DefaultCircuits <= 0 {
		l.DefaultCircuits = 2
	}
	if l.DefaultSpecs <= 0 {
		l.DefaultSpecs = 4
	}
	if l.DefaultScanFFs <= 0 {
		l.DefaultScanFFs = 120
	}
	if l.MaxCircuits <= 0 {
		l.MaxCircuits = 16
	}
	if l.MaxSpecs <= 0 {
		l.MaxSpecs = 64
	}
	if l.MaxScanFFs <= 0 {
		l.MaxScanFFs = 1500
	}
	return l
}

// Server is the rsnserved daemon: HTTP API + scheduler + store.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	store  *Store
	sched  *Scheduler
	stats  *engine.Stats
	tracer *obs.Tracer
	root   *obs.Span

	// log carries lifecycle and job records ("serve" component);
	// httpLog carries the per-request access log ("http" component);
	// engLog is the base for per-job engine progress ("engine").
	log     *slog.Logger
	httpLog *slog.Logger
	engLog  *slog.Logger
	flight  *flight.Recorder
	cost    *costModel
	history *series.Store
	sloEng  *slo.Engine

	slowLog  *slowJobLog
	slowJobs *obs.Counter
	profMu   sync.Mutex // the CPU profiler is process-global

	// atkMetrics aggregates attack-job solver statistics across jobs
	// (see attack.go).
	atkMetrics attackMetrics

	// sessions holds the live analysis sessions deltas build on,
	// keyed by content address (see session.go).
	sessMu   sync.Mutex
	sessions map[string]*session

	httpSrv *http.Server
	ln      net.Listener

	// runJob executes one resolved analysis; a field so tests can
	// substitute controllable workloads for the real engine.
	runJob runFunc
}

// New builds a Server (scheduler workers start immediately; the HTTP
// listener starts in Start).
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if a := cfg.LoadEWMAAlpha; a < 0 || a > 1 {
		return nil, fmt.Errorf("serve: load EWMA alpha %v outside (0, 1]", a)
	}
	var rec *flight.Recorder
	if cfg.FlightEvents >= 0 {
		rec = flight.New(cfg.FlightEvents)
	}
	storeCfg := cfg.Store
	storeCfg.Flight = rec
	store, err := NewStore(storeCfg, cfg.Registry)
	if err != nil {
		return nil, err
	}
	base := cfg.Logger
	if base == nil && cfg.Logf != nil {
		base = olog.NewPrintfLogger(cfg.Logf, nil)
	}
	if base == nil {
		base = olog.Discard()
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		store:    store,
		tracer:   cfg.Tracer,
		log:      olog.Component(base, "serve"),
		httpLog:  olog.Component(base, "http"),
		engLog:   olog.Component(base, "engine"),
		flight:   rec,
		cost:     newCostModel(cfg.LoadModel, cfg.LoadEWMAAlpha),
		sessions: make(map[string]*session),
		// Engine stage counters aggregate across jobs on the server
		// registry (engine_stage_*_total{stage=...}): per-job numbers
		// stay out of the report documents (they would break
		// byte-identical caching) but remain observable live.
		stats: engine.NewStatsOn(cfg.Registry),
	}
	s.atkMetrics = newAttackMetrics(cfg.Registry)
	s.runJob = s.execute
	if cfg.SlowJobThreshold > 0 && cfg.SlowJobLog != nil {
		s.slowLog = newSlowJobLog(cfg.SlowJobLog)
		cfg.Registry.SetHelp("serve_slow_jobs_total", "Jobs that breached the slow-job threshold and dumped their span tree.")
		s.slowJobs = cfg.Registry.Counter("serve_slow_jobs_total")
	}
	// dispatch wraps the substitutable runJob seam with per-job
	// tracing, the slow-job log and profile capture.
	s.sched = NewScheduler(SchedulerConfig{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		JobTimeout:   cfg.JobTimeout,
		FinishedJobs: cfg.FinishedJobs,
		Flight:       rec,
	}, cfg.Registry, s.dispatch)
	s.registerLoadGauges()
	s.cost.bindMetrics(cfg.Registry)
	// SLO evaluation needs history; an SLO config without one enables
	// the series store with defaults stretched to cover the slowest
	// objective window.
	histCfg := cfg.History
	if histCfg == nil && cfg.SLO != nil {
		histCfg = &series.Config{}
		if w := cfg.SLO.MaxWindow(); w > histCfg.Retention {
			histCfg.Retention = w
		}
	}
	if histCfg != nil {
		s.history = series.NewStore(cfg.Registry, *histCfg)
		s.cost.bindHistory(s.history)
	}
	if cfg.SLO != nil {
		eng, err := slo.NewEngine(cfg.SLO, s.history, cfg.Registry)
		if err != nil {
			return nil, err
		}
		s.sloEng = eng
	}
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// Start binds the listen address and serves in a background goroutine.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "localhost:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.ln = ln
	if s.history != nil {
		s.history.Start()
	}
	if s.tracer != nil {
		s.root = s.tracer.Start(nil, "server", obs.Str("addr", ln.Addr().String()))
	}
	s.log.Info("rsnserved listening", "addr", "http://"+ln.Addr().String())
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("http server failed", "err", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (host:port); "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// History returns the in-process series store (nil when disabled).
// Tests tick it manually via Sample; the daemon samples in background.
func (s *Server) History() *series.Store { return s.history }

// SLOEngine returns the objectives engine (nil when no SLO config).
func (s *Server) SLOEngine() *slo.Engine { return s.sloEng }

// Shutdown drains gracefully: new submissions are refused immediately
// (503), queued and running jobs are given until ctx's deadline to
// finish, then any stragglers are canceled, and finally the HTTP
// listener closes. An accepted job is never silently dropped: it ends
// done, failed or canceled, and its record stays queryable until the
// process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.log.Info("rsnserved draining", "queued", s.sched.Queued(), "running", s.sched.Running())
	if s.history != nil {
		s.history.Stop()
	}
	s.sched.Drain(ctx)
	err := s.httpSrv.Shutdown(ctx)
	if s.root != nil {
		s.root.End()
	}
	// All jobs are terminal now — flush the buffered slow-job records
	// so none are lost with the process.
	if s.slowLog != nil {
		if ferr := s.slowLog.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	s.log.Info("rsnserved stopped")
	return err
}

// execute runs one resolved analysis to a serialized
// rsnsec.run-report/v1 document and stores it under the job's content
// address. Job-level engine instrumentation feeds the server-wide
// stats (live /metrics) but NOT the report document: a report is a
// function of the analysis inputs, not of this process's cumulative
// counters, so its Stages section is left empty and StartedAt unset.
func (s *Server) execute(ctx context.Context, j *Job) ([]byte, error) {
	a := j.Payload.(*analysis)
	if a.script != nil {
		return s.executeDelta(ctx, j, a)
	}
	if a.atk != nil {
		return s.executeAttack(ctx, j, a)
	}
	var rep *obs.RunReport
	if a.benchmark != nil {
		cfg := a.cfg
		cfg.Workers = s.cfg.EngineWorkers
		cfg.Parallel = 1 // job concurrency comes from the scheduler pool
		cfg.Stats = s.stats
		cfg.Tracer = j.tracer
		cfg.TraceParent = j.span
		results, err := exp.RunProtocol(ctx, []bench.Benchmark{*a.benchmark}, cfg, nil)
		if err != nil {
			return nil, err
		}
		rep = exp.BuildReport("rsnserved", "main", cfg, results, nil)
	} else {
		// Build the dependency analysis here (not inside core.Secure)
		// so it outlives the run as an incremental session: deltas
		// against this analysis skip the dependency calculation and
		// re-propagate only their dirty cone.
		opts := core.Options{
			Mode:        a.mode,
			Workers:     s.cfg.EngineWorkers,
			Context:     ctx,
			Logger:      s.engLog.With("job", j.ID),
			Stats:       s.stats,
			Tracer:      j.tracer,
			TraceParent: j.span,
		}
		t0 := time.Now()
		an, err := hybrid.NewAnalysisOpts(a.nw, a.circuit, a.internal, a.spec, a.mode, opts.EngineOptions())
		if err != nil {
			return nil, err
		}
		depDur := time.Since(t0)
		crep, err := core.SecureWithAnalysis(an, a.nw.Clone(), opts)
		if err != nil {
			return nil, err
		}
		crep.Times.DependencyCalc = depDur
		crep.Times.Total += depDur
		rep = exp.SecureReport("rsnserved", a.label, a.mode, a.nw.Stats(), crep, nil)
		s.saveSession(&session{
			hydrated: true, key: a.key, label: a.label, mode: a.mode,
			iclText: a.iclText, benchText: a.benchText,
			an: an.WithEngine(engine.Options{Workers: s.cfg.EngineWorkers, Stats: s.stats}),
			nw: a.nw, circuit: a.circuit, internal: a.internal, spec: a.spec,
		})
	}
	var buf bytes.Buffer
	if err := obs.WriteReport(&buf, rep); err != nil {
		return nil, fmt.Errorf("serve: encode report: %w", err)
	}
	// The store key is the undecorated content address (a.key): a
	// profiled job's scheduler key carries a "#profile-..." suffix so
	// it never coalesces with (or short-circuits as) an unprofiled
	// submission, but its result still warms the cache for plain ones.
	if err := s.store.Put(a.key, buf.Bytes()); err != nil {
		// The result is still served from the job record; only future
		// identical submissions lose the cache hit.
		s.log.LogAttrs(ctx, slog.LevelWarn, "store put failed",
			slog.String("key", shortKey(a.key)), slog.String("err", err.Error()))
	}
	return buf.Bytes(), nil
}
