package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/exp"
	"repro/internal/icl"
	"repro/internal/netlist"
	"repro/internal/obfus"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/rsn"
)

// AttackRequest is the JSON body of POST /v1/attacks: one obfuscated
// network (inline ICL plus its rsnsec.obfus-overlay/v1 sidecar) to run
// the attack analysis against. The true key — needed to answer the
// attacks' oracle queries — comes from the overlay's embedded key
// field or the explicit key override; a request with neither is
// rejected.
type AttackRequest struct {
	ICL     string          `json:"icl"`
	Overlay json.RawMessage `json:"overlay"`
	// Key overrides the overlay-embedded defender key (KeyHex
	// encoding).
	Key string `json:"key,omitempty"`

	// Attack budgets; zero values use the attack defaults.
	Horizon        int   `json:"horizon,omitempty"`
	MaxIterations  int   `json:"max_iterations,omitempty"`
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	MaxConfigs     int   `json:"max_configs,omitempty"`
	SkipSAT        bool  `json:"skip_sat,omitempty"`
	SkipFlush      bool  `json:"skip_flush,omitempty"`

	// Priority and TimeoutMS behave like their AnalysisRequest
	// counterparts.
	Priority  int   `json:"priority,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// attackRun is a resolved attack submission riding on the analysis
// payload through the scheduler.
type attackRun struct {
	nw   *rsn.Network
	ov   *rsn.Obfuscation
	key  []bool
	opts exp.AttackOptions
}

// attackMetrics are the serve-level attack counters, aggregated across
// jobs on the server registry (per-job numbers stay in the report
// documents).
type attackMetrics struct {
	jobs       *obs.Counter
	satIters   *obs.Counter
	satSolves  *obs.Counter
	satConfl   *obs.Counter
	keysFound  *obs.Counter
	flushBits  *obs.Counter
	flushProbe *obs.Counter
}

func newAttackMetrics(reg *obs.Registry) attackMetrics {
	reg.SetHelp("serve_attack_jobs_total", "Attack-analysis jobs executed to completion.")
	reg.SetHelp("serve_attack_sat_iterations_total", "ScanSAT distinguishing-input refinement iterations across attack jobs.")
	reg.SetHelp("serve_attack_sat_solve_calls_total", "SAT solver invocations across attack jobs.")
	reg.SetHelp("serve_attack_sat_conflicts_total", "SAT solver conflicts across attack jobs.")
	reg.SetHelp("serve_attack_keys_recovered_total", "Attack jobs whose SAT key recovery finished recovered and verified.")
	reg.SetHelp("serve_attack_flush_bits_total", "Key bits recovered algebraically by the flush attack across jobs.")
	reg.SetHelp("serve_attack_flush_probes_total", "Flush-attack oracle probes across attack jobs.")
	return attackMetrics{
		jobs:       reg.Counter("serve_attack_jobs_total"),
		satIters:   reg.Counter("serve_attack_sat_iterations_total"),
		satSolves:  reg.Counter("serve_attack_sat_solve_calls_total"),
		satConfl:   reg.Counter("serve_attack_sat_conflicts_total"),
		keysFound:  reg.Counter("serve_attack_keys_recovered_total"),
		flushBits:  reg.Counter("serve_attack_flush_bits_total"),
		flushProbe: reg.Counter("serve_attack_flush_probes_total"),
	}
}

// resolveAttack validates and materializes one attack submission and
// computes its content address: the canonical network, overlay, true
// key and every budget knob. Identical submissions share a cache slot
// and coalesce onto one in-flight job, like analyses.
func (s *Server) resolveAttack(req *AttackRequest) (*analysis, error) {
	if req.ICL == "" {
		return nil, fmt.Errorf("attack request needs an icl network")
	}
	if len(req.Overlay) == 0 {
		return nil, fmt.Errorf("attack request needs an obfuscation overlay")
	}
	if req.SkipSAT && req.SkipFlush {
		return nil, fmt.Errorf("attack request skips both attacks")
	}
	// Attack analyses never consult the instrument circuit, so ICL
	// instrument links resolve against synthesized flip-flop IDs.
	byName := map[string]netlist.FFID{}
	lookup := func(name string) (netlist.FFID, bool) {
		if id, ok := byName[name]; ok {
			return id, true
		}
		id := netlist.FFID(len(byName))
		byName[name] = id
		return id, true
	}
	nw, _, err := icl.ParseNetworkAndSpec(req.ICL, lookup)
	if err != nil {
		return nil, fmt.Errorf("icl: %w", err)
	}
	lim := s.cfg.limits()
	if ffs := nw.NumScanFFs(); ffs > lim.MaxScanFFs {
		return nil, fmt.Errorf("network has %d scan FFs (cap %d)", ffs, lim.MaxScanFFs)
	}
	ov, key, err := rsn.ParseObfuscation(req.Overlay, nw)
	if err != nil {
		return nil, err
	}
	if req.Key != "" {
		if key, err = rsn.ParseKeyHex(req.Key, ov.NumKeyBits); err != nil {
			return nil, fmt.Errorf("key: %w", err)
		}
	}
	if key == nil {
		return nil, fmt.Errorf("attack request needs the true key (overlay-embedded or the key field) to answer oracle queries")
	}
	if req.Horizon < 0 || req.MaxIterations < 0 || req.ConflictBudget < 0 || req.MaxConfigs < 0 {
		return nil, fmt.Errorf("attack budgets must be non-negative")
	}
	a := &analysis{
		label:   "attack:" + nw.Name,
		scanFFs: nw.NumScanFFs(),
		atk: &attackRun{
			nw: nw, ov: ov, key: key,
			opts: exp.AttackOptions{
				Horizon:        req.Horizon,
				MaxIterations:  req.MaxIterations,
				ConflictBudget: req.ConflictBudget,
				MaxConfigs:     req.MaxConfigs,
				SkipSAT:        req.SkipSAT,
				SkipFlush:      req.SkipFlush,
				// Timings stay out of served documents so replays of
				// identical submissions are byte-identical.
				IncludeTimings: false,
			},
		},
	}
	h := netlist.NewHasher()
	h.Section("serve.attack")
	nw.AppendCanonical(h)
	ov.AppendCanonical(h)
	h.Str(rsn.KeyHex(key))
	h.Section("attack-budgets")
	h.Int(int64(req.Horizon))
	h.Int(int64(req.MaxIterations))
	h.Int(req.ConflictBudget)
	h.Int(int64(req.MaxConfigs))
	h.Bool(req.SkipSAT)
	h.Bool(req.SkipFlush)
	a.key = h.SumHex()
	return a, nil
}

// handleAttack resolves, caches or schedules one attack analysis. The
// response shapes mirror handleSubmit: 200 on a store hit (the cached
// rsnsec.attack-report/v1 is byte-identical to the first run's), 202
// when queued or coalesced, plus the usual 429/503 backpressure.
func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	var req AttackRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	a, err := s.resolveAttack(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ri, _ := obs.ReqInfoFrom(r.Context())
	s.flight.Record(flight.Event{Cat: "attack", Name: "submit",
		RequestID: ri.RequestID, TraceID: ri.Trace.TraceID,
		Detail: fmt.Sprintf("%s key_bits=%d gates=%d dynamic=%v",
			a.atk.nw.Name, a.atk.ov.NumKeyBits, len(a.atk.ov.Gates), a.atk.ov.Dynamic)})
	if data, ok := s.store.Get(a.key); ok {
		j := s.sched.InsertFinished(r.Context(), a.key, a.label, "hit", data)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "served from store",
			slog.String("job", j.ID), slog.String("label", a.label), slog.String("key", shortKey(a.key)))
		writeJSON(w, http.StatusOK, s.status(j))
		return
	}
	var timeout time.Duration
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	s.scheduleJob(w, r, a, req.Priority, timeout)
}

// executeAttack runs one attack job to a serialized
// rsnsec.attack-report/v1 document and stores it under the job's
// content address. Reports are built without wall-clock timings, so a
// replayed submission serves the stored bytes unchanged.
func (s *Server) executeAttack(ctx context.Context, j *Job, a *analysis) ([]byte, error) {
	at := a.atk
	opts := at.opts
	opts.Stats = s.stats
	opts.Tracer = j.tracer
	opts.TraceParent = j.span
	rep, err := exp.RunAttackAnalysis(ctx, "rsnserved", at.nw, at.ov, at.key, opts)
	if err != nil {
		s.flight.Record(flight.Event{Cat: "attack", Name: "failed", Job: j.ID,
			RequestID: j.RequestID, TraceID: j.TraceID, Detail: err.Error()})
		return nil, err
	}
	s.atkMetrics.jobs.Inc()
	detail := ""
	if sat := rep.SAT; sat != nil {
		s.atkMetrics.satIters.Add(int64(sat.Iterations))
		s.atkMetrics.satSolves.Add(int64(sat.SolveCalls))
		s.atkMetrics.satConfl.Add(sat.Conflicts)
		if sat.Outcome == obfus.OutcomeRecovered && sat.Verified {
			s.atkMetrics.keysFound.Inc()
		}
		detail = fmt.Sprintf("sat=%s iters=%d", sat.Outcome, sat.Iterations)
	}
	if fl := rep.Flush; fl != nil {
		s.atkMetrics.flushBits.Add(int64(len(fl.RecoveredBits)))
		s.atkMetrics.flushProbe.Add(int64(fl.Probes))
		if detail != "" {
			detail += " "
		}
		detail += fmt.Sprintf("flush_rank=%d", fl.Rank)
	}
	s.flight.Record(flight.Event{Cat: "attack", Name: "report", Job: j.ID,
		RequestID: j.RequestID, TraceID: j.TraceID, Detail: detail})
	var buf bytes.Buffer
	if err := obfus.WriteReport(&buf, rep); err != nil {
		return nil, fmt.Errorf("serve: encode attack report: %w", err)
	}
	if err := s.store.Put(a.key, buf.Bytes()); err != nil {
		s.log.LogAttrs(ctx, slog.LevelWarn, "store put failed",
			slog.String("key", shortKey(a.key)), slog.String("err", err.Error()))
	}
	return buf.Bytes(), nil
}
