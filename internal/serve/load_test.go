package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/perfrec"
)

func getLoad(t *testing.T, base string) LoadStatus {
	t.Helper()
	code, _, data := getBody(t, base+"/v1/load")
	if code != http.StatusOK {
		t.Fatalf("/v1/load: HTTP %d: %s", code, data)
	}
	var ls LoadStatus
	if err := json.Unmarshal(data, &ls); err != nil {
		t.Fatalf("decode load: %v\n%s", err, data)
	}
	return ls
}

// TestLoadSignalUnderSaturation drives the server into saturation (one
// worker pinned, three submissions queued) and checks the autoscale
// surface end to end: /v1/load, the /metrics gauges, and the /readyz
// flip — then verifies everything drains back to idle.
func TestLoadSignalUnderSaturation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv, ts := testServer(t, Config{
		Workers:             1,
		SaturationThreshold: time.Millisecond,
	}, func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte(`{"stub":"done"}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	// Idle: nothing running, nothing queued, not saturated.
	ls := getLoad(t, ts.URL)
	if ls.Workers != 1 || ls.Running != 0 || ls.QueueDepth != 0 || ls.Saturated {
		t.Fatalf("idle load = %+v", ls)
	}
	if code, _, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("idle readyz = %d", code)
	}

	// Saturate: four distinct submissions against one pinned worker.
	var ids []string
	for seed := 1; seed <= 4; seed++ {
		body := fmt.Sprintf(`{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":%d}`, seed)
		code, _, data := postJSON(t, ts.URL+"/v1/analyses", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", seed, code, data)
		}
		ids = append(ids, decodeStatus(t, data).ID)
	}
	<-started // the worker holds job 1; jobs 2..4 queue behind it

	// Let the oldest queued wait exceed the 1ms saturation threshold.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ls = getLoad(t, ts.URL)
		if ls.Saturated || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ls.Workers != 1 || ls.Running != 1 || ls.QueueDepth != 3 {
		t.Fatalf("saturated load = %+v, want 1 running, 3 queued", ls)
	}
	if ls.WorkerBusy != 1 {
		t.Fatalf("worker_busy = %v, want 1", ls.WorkerBusy)
	}
	if ls.OldestWaitSeconds <= 0 || ls.PredictedBacklogSeconds < ls.OldestWaitSeconds {
		t.Fatalf("backlog %v must be positive and floored by oldest wait %v",
			ls.PredictedBacklogSeconds, ls.OldestWaitSeconds)
	}
	if !ls.Saturated || ls.SaturationThresholdSeconds != 0.001 {
		t.Fatalf("saturation flags = %+v", ls)
	}

	// /readyz reports saturation as 503 so load balancers back off.
	code, _, data := getBody(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(data), "saturated") {
		t.Fatalf("saturated readyz = %d: %s", code, data)
	}

	// The same signal is scrapeable: every worker busy = 1000 permille.
	code, _, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"serve_worker_busy_permille 1000", "serve_workers 1",
		"serve_queue_oldest_wait_ms", "serve_predicted_backlog_ms"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics lacks %q", want)
		}
	}

	// Drain and verify the signal recovers.
	close(release)
	for _, id := range ids {
		pollDone(t, ts.URL, id)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		ls = getLoad(t, ts.URL)
		if (ls.Running == 0 && ls.QueueDepth == 0 && !ls.Saturated) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ls.Running != 0 || ls.QueueDepth != 0 || ls.Saturated {
		t.Fatalf("drained load = %+v", ls)
	}
	if code, _, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("drained readyz = %d", code)
	}
	_ = srv
}

// TestCostModel covers the predicted-backlog estimator: seeding from a
// bench record, EWMA refinement from observed jobs, and the whole-job
// fallback for jobs of unknown size.
func TestCostModel(t *testing.T) {
	m := newCostModel(nil, 0)
	if got := m.estimate(100); got != 0 {
		t.Fatalf("cold model estimate = %v, want 0", got)
	}
	// First observation is adopted outright; later ones blend.
	m.observe(100, 100*time.Millisecond) // 1ms per FF
	if got := m.estimate(50); got != 50*time.Millisecond {
		t.Fatalf("estimate(50) = %v, want 50ms", got)
	}
	m.observe(100, 200*time.Millisecond)
	est := m.estimate(100)
	if est <= 100*time.Millisecond || est >= 200*time.Millisecond {
		t.Fatalf("EWMA estimate = %v, want between the observations", est)
	}
	// Unknown size falls back to the whole-job EWMA.
	if got := m.estimate(0); got <= 0 {
		t.Fatalf("whole-job fallback = %v", got)
	}

	// A bench record seeds ns-per-FF before any job has run: 2e6 ns
	// over 1000 FFs = 2000 ns/FF median.
	rec := &perfrec.Record{Benchmarks: []perfrec.Benchmark{
		{ScanFFs: 1000, Stages: []perfrec.Stage{{MedianNS: 1_000_000}, {MedianNS: 1_000_000}}},
		{ScanFFs: 0, Stages: []perfrec.Stage{{MedianNS: 5_000_000}}}, // ignored: no size
	}}
	seeded := newCostModel(rec, 0)
	if got := seeded.estimate(1000); got != 2*time.Millisecond {
		t.Fatalf("seeded estimate(1000) = %v, want 2ms", got)
	}
}
