package serve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the slow-job log writes
// from scheduler workers while the test reads after shutdown.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestSlowJobDump exercises the slow-job path: one deliberately slow
// job must produce exactly one span-tree dump, and a fast job under
// the same threshold must produce none.
func TestSlowJobDump(t *testing.T) {
	var log syncBuffer
	threshold := 50 * time.Millisecond
	srv, ts := testServer(t, Config{
		Workers:          2,
		SlowJobThreshold: threshold,
		SlowJobLog:       &log,
	}, func(ctx context.Context, j *Job) ([]byte, error) {
		// The dispatch wrapper hands every job a private tracer; emit a
		// child span like the real engine would.
		sp := j.tracer.Start(j.span, "work")
		if j.Label == "TreeFlat" {
			time.Sleep(threshold + 30*time.Millisecond)
		}
		sp.End()
		return []byte(`{}`), nil
	})

	code, _, data := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat"}`)
	if code != http.StatusAccepted {
		t.Fatalf("slow submit: HTTP %d: %s", code, data)
	}
	slow := decodeStatus(t, data)
	code, _, data = postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"BasicSCB"}`)
	if code != http.StatusAccepted {
		t.Fatalf("fast submit: HTTP %d: %s", code, data)
	}
	fast := decodeStatus(t, data)
	pollDone(t, ts.URL, slow.ID)
	pollDone(t, ts.URL, fast.ID)

	// Shutdown drains and flushes the buffered log.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	var entries []slowJobEntry
	sc := bufio.NewScanner(bytes.NewReader(log.Bytes()))
	for sc.Scan() {
		var e slowJobEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad slow-job line: %v\n%s", err, sc.Text())
		}
		entries = append(entries, e)
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly 1 slow-job dump, got %d: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.JobID != slow.ID {
		t.Errorf("dumped job %s, want the slow job %s", e.JobID, slow.ID)
	}
	if e.ThresholdMS != threshold.Milliseconds() {
		t.Errorf("threshold_ms = %d, want %d", e.ThresholdMS, threshold.Milliseconds())
	}
	if e.DurMS < e.ThresholdMS {
		t.Errorf("dur_ms %d below threshold_ms %d", e.DurMS, e.ThresholdMS)
	}
	names := map[string]bool{}
	for _, sp := range e.Spans {
		names[sp.Name] = true
	}
	if !names["job"] || !names["work"] {
		t.Errorf("span tree lacks job/work spans: %v", e.Spans)
	}
	if n := srv.reg.Counter("serve_slow_jobs_total").Value(); n != 1 {
		t.Errorf("serve_slow_jobs_total = %d, want 1", n)
	}
}

// TestSlowJobThresholdGating: with a threshold no job reaches, nothing
// is dumped.
func TestSlowJobThresholdGating(t *testing.T) {
	var log syncBuffer
	srv, ts := testServer(t, Config{
		SlowJobThreshold: time.Hour,
		SlowJobLog:       &log,
	}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{}`), nil
	})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"BasicSCB"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, data)
	}
	pollDone(t, ts.URL, decodeStatus(t, data).ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if out := log.Bytes(); len(out) != 0 {
		t.Fatalf("sub-threshold job dumped: %s", out)
	}
}

// gunzip decompresses a pprof blob (pprof profiles are gzipped
// protobufs; the gzip layer is the stdlib-checkable part).
func gunzip(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile gunzip: %v", err)
	}
	return raw
}

// TestProfileCaptureCPU runs a real engine job under ?profile=cpu and
// checks the captured blob parses as a pprof profile (gzip-framed
// protobuf), that the profiled run still warms the content cache for
// plain submissions, and the 404 path for unprofiled jobs.
func TestProfileCaptureCPU(t *testing.T) {
	_, ts := testServer(t, Config{}, nil) // real engine execute
	body := `{"benchmark":"BasicSCB","circuits":1,"specs":2,"target_scan_ffs":60}`

	code, _, data := postJSON(t, ts.URL+"/v1/analyses?profile=cpu", body)
	if code != http.StatusAccepted {
		t.Fatalf("profiled submit: HTTP %d (want 202, a profile must force a real run): %s", code, data)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	if st.State != StateDone {
		t.Fatalf("profiled job ended %s: %s", st.State, st.Error)
	}
	if st.ProfileURL == "" {
		t.Fatalf("finished profiled job has no profile_url: %+v", st)
	}

	code, hdr, blob := getBody(t, ts.URL+st.ProfileURL)
	if code != http.StatusOK {
		t.Fatalf("profile fetch: HTTP %d: %s", code, blob)
	}
	if kind := hdr.Get("X-Profile-Kind"); kind != "cpu" {
		t.Errorf("X-Profile-Kind = %q, want cpu", kind)
	}
	if len(blob) < 2 || blob[0] != 0x1f || blob[1] != 0x8b {
		t.Fatalf("profile blob lacks gzip magic: % x", blob[:min(8, len(blob))])
	}
	if raw := gunzip(t, blob); len(raw) == 0 {
		t.Error("profile decompressed to nothing")
	}

	// The profiled run stored its report under the undecorated content
	// key: an identical plain submission is a cache hit.
	code, _, data = postJSON(t, ts.URL+"/v1/analyses", body)
	if code != http.StatusOK {
		t.Fatalf("plain resubmit after profiled run: HTTP %d (want 200 cache hit): %s", code, data)
	}
	if st := decodeStatus(t, data); st.Cache != "hit" {
		t.Errorf("cache = %q, want hit", st.Cache)
	}
	// ...and the plain job has no profile.
	code, _, data = getBody(t, ts.URL+"/v1/analyses/"+decodeStatus(t, data).ID+"/profile")
	if code != http.StatusNotFound {
		t.Errorf("unprofiled job profile fetch: HTTP %d (want 404): %s", code, data)
	}
}

// TestProfileCaptureHeap checks the heap kind end to end with a
// substituted workload (heap profiles do not depend on the engine).
func TestProfileCaptureHeap(t *testing.T) {
	_, ts := testServer(t, Config{}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{}`), nil
	})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses?profile=heap", `{"benchmark":"BasicSCB"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, data)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	code, hdr, blob := getBody(t, ts.URL+"/v1/analyses/"+st.ID+"/profile")
	if code != http.StatusOK {
		t.Fatalf("profile fetch: HTTP %d: %s", code, blob)
	}
	if kind := hdr.Get("X-Profile-Kind"); kind != "heap" {
		t.Errorf("X-Profile-Kind = %q, want heap", kind)
	}
	gunzip(t, blob)
}

// TestProfileParamValidation rejects unknown profile kinds.
func TestProfileParamValidation(t *testing.T) {
	_, ts := testServer(t, Config{}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{}`), nil
	})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses?profile=wallclock", `{"benchmark":"BasicSCB"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad profile kind: HTTP %d (want 400): %s", code, data)
	}
}
