package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestStoreEntryLRU(t *testing.T) {
	st, err := NewStore(StoreConfig{MaxEntries: 2}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put(testKey(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("entries = %d, want 2", st.Len())
	}
	if _, ok := st.Get(testKey(0)); ok {
		t.Fatal("oldest entry must be evicted")
	}
	for i := 1; i < 3; i++ {
		if data, ok := st.Get(testKey(i)); !ok || !bytes.Equal(data, []byte{byte(i)}) {
			t.Fatalf("entry %d lost", i)
		}
	}
	// A Get refreshes recency: 1 was just touched, so adding 3 must
	// evict 2... but Get(2) above was more recent. Re-touch 1 and check.
	st.Get(testKey(1))
	st.Put(testKey(3), []byte{3})
	if _, ok := st.Get(testKey(2)); ok {
		t.Fatal("least recently used entry (2) must be evicted")
	}
	if _, ok := st.Get(testKey(1)); !ok {
		t.Fatal("recently used entry (1) must survive")
	}
}

func TestStoreByteBound(t *testing.T) {
	st, err := NewStore(StoreConfig{MaxEntries: 100, MaxBytes: 10}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	st.Put(testKey(0), make([]byte, 6))
	st.Put(testKey(1), make([]byte, 6))
	if st.Len() != 1 {
		t.Fatalf("entries = %d, want 1 (byte bound)", st.Len())
	}
	// An oversized single entry stays resident: the bound evicts down
	// to at least one entry, it does not refuse storage.
	st.Put(testKey(2), make([]byte, 64))
	if _, ok := st.Get(testKey(2)); !ok {
		t.Fatal("oversized entry must still be stored")
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, err := NewStore(StoreConfig{Dir: dir}, reg)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	want := []byte(`{"report":true}`)
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, key+".json")); err != nil || !bytes.Equal(data, want) {
		t.Fatalf("disk copy missing or wrong: %v", err)
	}
	for _, e := range []string{"put-*.tmp"} {
		if m, _ := filepath.Glob(filepath.Join(dir, e)); len(m) != 0 {
			t.Fatalf("leftover temp files: %v", m)
		}
	}

	// A fresh store over the same directory (a restarted daemon) still
	// hits.
	st2, err := NewStore(StoreConfig{Dir: dir}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := st2.Get(key); !ok || !bytes.Equal(data, want) {
		t.Fatal("restart lost the stored report")
	}
	if !st2.Contains(key) {
		t.Fatal("Contains must see the disk entry")
	}
}

func TestStoreDiskFallbackAfterEviction(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := NewStore(StoreConfig{MaxEntries: 1, Dir: t.TempDir()}, reg)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(testKey(0), []byte("a"))
	st.Put(testKey(1), []byte("b")) // evicts 0 from memory, not disk
	if data, ok := st.Get(testKey(0)); !ok || !bytes.Equal(data, []byte("a")) {
		t.Fatal("memory-evicted entry must fall back to disk")
	}
	if got := reg.Counter("serve_store_disk_hits_total").Value(); got != 1 {
		t.Fatalf("disk hits = %d, want 1", got)
	}
	if got := reg.Counter("serve_store_hits_total").Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

func TestStoreMissCounters(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := NewStore(StoreConfig{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testKey(0)); ok {
		t.Fatal("empty store cannot hit")
	}
	st.Put(testKey(0), []byte("x"))
	st.Get(testKey(0))
	if h, m := reg.Counter("serve_store_hits_total").Value(), reg.Counter("serve_store_misses_total").Value(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, m)
	}
	if g := reg.Gauge("serve_store_entries").Value(); g != 1 {
		t.Fatalf("entries gauge = %d, want 1", g)
	}
}
