package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testServer wires a Server to an httptest listener. When run is
// non-nil it replaces the engine-backed job body (still performing the
// store write, like the real execute does).
func testServer(t *testing.T, cfg Config, run func(ctx context.Context, j *Job) ([]byte, error)) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		srv.runJob = func(ctx context.Context, j *Job) ([]byte, error) {
			data, err := run(ctx, j)
			if err == nil {
				if perr := srv.store.Put(j.Key, data); perr != nil {
					t.Errorf("store put: %v", perr)
				}
			}
			return data, err
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data
}

func decodeStatus(t *testing.T, data []byte) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decode status: %v\n%s", err, data)
	}
	return st
}

// pollDone polls the status endpoint until the job reaches a terminal
// state.
func pollDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _, data := getBody(t, base+"/v1/analyses/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d: %s", code, data)
		}
		st := decodeStatus(t, data)
		if st.State.Finished() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{}, func(context.Context, *Job) ([]byte, error) { return nil, nil })
	cases := []struct{ name, body string }{
		{"empty", `{}`},
		{"both inputs", `{"benchmark":"TreeFlat","icl":"x"}`},
		{"unknown benchmark", `{"benchmark":"NoSuch"}`},
		{"unknown mode", `{"benchmark":"TreeFlat","mode":"psychic"}`},
		{"circuits cap", `{"benchmark":"TreeFlat","circuits":999}`},
		{"specs cap", `{"benchmark":"TreeFlat","specs":999}`},
		{"ff cap", `{"benchmark":"TreeFlat","target_scan_ffs":99999}`},
		{"scale range", `{"benchmark":"TreeFlat","scale":2.5}`},
		{"unknown field", `{"benchmark":"TreeFlat","frobnicate":1}`},
		{"bad json", `{`},
		{"icl without spec", `{"icl":"ScanNetwork \"x\" { ScanRegister \"A\" { Length 1; ScanInSource SI; } ScanOutSource Register \"A\"; }"}`},
	}
	for _, c := range cases {
		code, _, data := postJSON(t, ts.URL+"/v1/analyses", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d (want 400): %s", c.name, code, data)
		}
		var e apiError
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", c.name, data)
		}
	}
}

func TestUnknownJobEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{}, func(context.Context, *Job) ([]byte, error) { return nil, nil })
	for _, ep := range []string{"/v1/analyses/nope", "/v1/analyses/nope/report"} {
		if code, _, _ := getBody(t, ts.URL+ep); code != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", ep, code)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/analyses/nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestServerCoalescingAndCacheHit(t *testing.T) {
	release := make(chan struct{})
	reg := obs.NewRegistry()
	srv, ts := testServer(t, Config{Registry: reg}, func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte(`{"stub":"` + j.Key[:8] + `"}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	body := `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":7}`

	code1, _, data1 := postJSON(t, ts.URL+"/v1/analyses", body)
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d: %s", code1, data1)
	}
	st1 := decodeStatus(t, data1)
	if st1.Cache != "miss" {
		t.Fatalf("first submit cache = %q, want miss", st1.Cache)
	}

	// An identical submission while the first is in flight coalesces:
	// same job, no second engine run.
	code2, _, data2 := postJSON(t, ts.URL+"/v1/analyses", body)
	if code2 != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d: %s", code2, data2)
	}
	st2 := decodeStatus(t, data2)
	if st2.ID != st1.ID {
		t.Fatalf("coalesced submission got its own job: %s vs %s", st2.ID, st1.ID)
	}
	if st2.Cache != "coalesced" {
		t.Fatalf("coalesced cache = %q", st2.Cache)
	}

	close(release)
	pollDone(t, ts.URL, st1.ID)
	if v := reg.Counter("serve_jobs_executed_total").Value(); v != 1 {
		t.Fatalf("executed jobs = %d for 2 identical submissions", v)
	}
	if v := reg.Counter("serve_jobs_coalesced_total").Value(); v != 1 {
		t.Fatalf("coalesced counter = %d", v)
	}

	// A third submission after completion is a store hit: HTTP 200, a
	// finished record, the identical document.
	code3, _, data3 := postJSON(t, ts.URL+"/v1/analyses", body)
	if code3 != http.StatusOK {
		t.Fatalf("cached submit: HTTP %d: %s", code3, data3)
	}
	st3 := decodeStatus(t, data3)
	if st3.Cache != "hit" || st3.State != StateDone {
		t.Fatalf("cached submit: %+v", st3)
	}
	if st3.ID == st1.ID {
		t.Fatal("store hit must mint its own job record")
	}
	_, h1, rep1 := getBody(t, ts.URL+"/v1/analyses/"+st1.ID+"/report")
	_, h3, rep3 := getBody(t, ts.URL+"/v1/analyses/"+st3.ID+"/report")
	if !bytes.Equal(rep1, rep3) {
		t.Fatalf("cached report differs:\n%s\nvs\n%s", rep1, rep3)
	}
	if h1.Get("X-Cache") != "miss" || h3.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache headers: %q, %q", h1.Get("X-Cache"), h3.Get("X-Cache"))
	}
	if v := reg.Counter("serve_store_hits_total").Value(); v != 1 {
		t.Fatalf("store hits = %d, want 1", v)
	}
	_ = srv
}

func TestServerQueueFull429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 8)
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte("{}"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	submit := func(seed int) (int, http.Header) {
		code, h, _ := postJSON(t, ts.URL+"/v1/analyses",
			fmt.Sprintf(`{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":%d}`, seed))
		return code, h
	}
	if code, _ := submit(1); code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	<-started // worker occupied; the next submission queues
	if code, _ := submit(2); code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	code, h := submit(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", code)
	}
	if h.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestServerCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 8)
	_, ts := testServer(t, Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done() // honor cancellation like the engine does
		return nil, ctx.Err()
	})
	_, _, data := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1}`)
	st := decodeStatus(t, data)
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/analyses/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	final := pollDone(t, ts.URL, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s", final.State)
	}
	// The report of a canceled job is gone, not pending.
	if code, _, _ := getBody(t, ts.URL+"/v1/analyses/"+st.ID+"/report"); code != http.StatusGone {
		t.Fatalf("canceled report: HTTP %d, want 410", code)
	}

	// The freed worker accepts new work.
	_, _, data = postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":99}`)
	st2 := decodeStatus(t, data)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the next job after cancel")
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/analyses/"+st2.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func TestServerShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv, ts := testServer(t, Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte(`{"drained":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, _, data := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1}`)
	st := decodeStatus(t, data)
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Once draining: readiness fails and submissions are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _, _ := getBody(t, ts.URL+"/readyz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":5}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", code)
	}

	// The in-flight job finishes — the drain loses no accepted work.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if jst, err := srv.sched.Status(st.ID); err != nil || jst.State != StateDone {
		t.Fatalf("accepted job after shutdown: %+v err=%v", jst, err)
	}
	if data, _, err := srv.sched.Result(st.ID); err != nil || !strings.Contains(string(data), "drained") {
		t.Fatalf("drained job lost its result: %q err=%v", data, err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{}, func(context.Context, *Job) ([]byte, error) {
		return []byte("{}"), nil
	})
	_, _, data := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1}`)
	pollDone(t, ts.URL, decodeStatus(t, data).ID)
	code, _, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"serve_queue_depth",
		"serve_jobs_running",
		"serve_store_hits_total",
		"serve_store_misses_total",
		`serve_request_seconds_bucket{endpoint="submit"`,
		`serve_requests_total{endpoint="submit",code="202"}`,
		`serve_requests_total{endpoint="status",code="200"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{}, func(context.Context, *Job) ([]byte, error) { return nil, nil })
	if code, _, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
}

// sumEngineCalls totals the engine_stage_calls_total series — the
// live proof of how many engine stage executions happened.
func sumEngineCalls(reg *obs.Registry) int64 {
	var total int64
	for name, v := range reg.Snapshot() {
		if strings.HasPrefix(name, "engine_stage_calls_total") {
			if n, ok := v.(int64); ok {
				total += n
			}
		}
	}
	return total
}

// TestE2EDoubleSubmissionRealEngine is the acceptance criterion of the
// serving subsystem run against the real engine: two identical
// submissions cost one engine run and yield byte-identical
// schema-valid reports, with the second answered from the
// content-addressed store (zero engine_stage_*_total delta).
func TestE2EDoubleSubmissionRealEngine(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := testServer(t, Config{Registry: reg}, nil)
	body := `{"benchmark":"TreeFlat","circuits":1,"specs":2,"target_scan_ffs":60,"seed":3}`

	code, _, data := postJSON(t, ts.URL+"/v1/analyses", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, data)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	if st.State != StateDone {
		t.Fatalf("first run: %+v", st)
	}
	_, _, rep1 := getBody(t, ts.URL+st.ReportURL)
	report, err := obs.ReadReport(bytes.NewReader(rep1))
	if err != nil {
		t.Fatalf("report schema: %v\n%s", err, rep1)
	}
	if report.Tool != "rsnserved" || len(report.Benchmarks) != 1 {
		t.Fatalf("report shape: tool=%q benchmarks=%d", report.Tool, len(report.Benchmarks))
	}
	if report.Benchmarks[0].Name != "TreeFlat" {
		t.Fatalf("report benchmark = %q", report.Benchmarks[0].Name)
	}

	callsAfterFirst := sumEngineCalls(reg)
	if callsAfterFirst == 0 {
		t.Fatal("engine stage counters must register on the server registry")
	}

	code, _, data = postJSON(t, ts.URL+"/v1/analyses", body)
	if code != http.StatusOK {
		t.Fatalf("second submit: HTTP %d: %s", code, data)
	}
	st2 := decodeStatus(t, data)
	if st2.Cache != "hit" {
		t.Fatalf("second submit cache = %q", st2.Cache)
	}
	_, _, rep2 := getBody(t, ts.URL+st2.ReportURL)
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("reports differ between identical submissions:\n%s\nvs\n%s", rep1, rep2)
	}
	if delta := sumEngineCalls(reg) - callsAfterFirst; delta != 0 {
		t.Fatalf("cached submission cost %d engine stage calls", delta)
	}

	// A different seed is a different content address: fresh run.
	code, _, _ = postJSON(t, ts.URL+"/v1/analyses",
		`{"benchmark":"TreeFlat","circuits":1,"specs":2,"target_scan_ffs":60,"seed":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("different-seed submit: HTTP %d, want 202", code)
	}
}

const serveICLSample = `
ScanNetwork "annotated" {
  Categories 4;
  Module "crypto" { Trust 3; Accepts 2, 3; }
  Module "untrusted" { Trust 0; Accepts 0, 1, 2, 3; }
  Module "plain" { Trust 1; Accepts 0, 1, 2, 3; }
  ScanRegister "A" { Length 2; ScanInSource SI; Module "crypto"; }
  ScanRegister "B" { Length 1; ScanInSource Register "A"; Module "untrusted"; }
  ScanRegister "C" { Length 1; ScanInSource Register "B"; Module "plain"; }
  ScanOutSource Register "C";
}
`

func TestICLSubmissionRealEngine(t *testing.T) {
	_, ts := testServer(t, Config{}, nil)
	body, _ := json.Marshal(AnalysisRequest{ICL: serveICLSample})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("icl submit: HTTP %d: %s", code, data)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	if st.State != StateDone {
		t.Fatalf("icl run: %+v", st)
	}
	if st.Label != "annotated" {
		t.Fatalf("label = %q, want the network name", st.Label)
	}
	_, _, rep := getBody(t, ts.URL+st.ReportURL)
	report, err := obs.ReadReport(bytes.NewReader(rep))
	if err != nil {
		t.Fatalf("icl report schema: %v\n%s", err, rep)
	}
	b := report.Benchmarks[0]
	if b.Family != "inline" || b.Name != "annotated" {
		t.Fatalf("icl report row: %+v", b)
	}
	if b.Runs+b.SkippedInsecureLogic != 1 {
		t.Fatalf("icl report must account for exactly one run: %+v", b)
	}
}

// serveICLLinked carries instrument links but no circuit: the server
// synthesizes hold flip-flops for the referenced names (like
// rsnsec -icl without -bench).
const serveICLLinked = `
ScanNetwork "linked" {
  Categories 4;
  Module "crypto" { Trust 3; Accepts 2, 3; }
  Module "untrusted" { Trust 0; Accepts 0, 1, 2, 3; }
  ScanRegister "A" {
    Length 2;
    ScanInSource SI;
    Module "crypto";
    CaptureSource 0 "crypto.F0";
    CaptureSource 1 "crypto.F1";
  }
  ScanRegister "B" {
    Length 3;
    ScanInSource Register "A";
    Module "untrusted";
    UpdateSink 2 "untrusted.F0";
  }
  ScanOutSource Register "B";
}
`

func TestICLLinkedWithoutCircuit(t *testing.T) {
	_, ts := testServer(t, Config{}, nil)
	body, _ := json.Marshal(AnalysisRequest{ICL: serveICLLinked})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("linked icl submit: HTTP %d: %s", code, data)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	if st.State != StateDone {
		t.Fatalf("linked icl run: %+v", st)
	}
	_, _, rep := getBody(t, ts.URL+st.ReportURL)
	if _, err := obs.ReadReport(bytes.NewReader(rep)); err != nil {
		t.Fatalf("linked icl report schema: %v\n%s", err, rep)
	}
}

func TestRequestKeyStability(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	key := func(req AnalysisRequest) string {
		t.Helper()
		a, err := srv.resolve(&req)
		if err != nil {
			t.Fatal(err)
		}
		return a.key
	}
	base := AnalysisRequest{Benchmark: "TreeFlat", Circuits: 1, Specs: 2, TargetScanFFs: 60, Seed: 3}
	if key(base) != key(base) {
		t.Fatal("identical requests must share a content address")
	}
	// Explicit values equal to the defaults hash identically to the
	// defaulted form.
	defaulted := AnalysisRequest{Benchmark: "TreeFlat", Circuits: 1, Specs: 2, TargetScanFFs: 60, Seed: 3, Mode: "exact"}
	if key(base) != key(defaulted) {
		t.Fatal("explicit default mode must not change the content address")
	}
	for name, alt := range map[string]AnalysisRequest{
		"seed":     {Benchmark: "TreeFlat", Circuits: 1, Specs: 2, TargetScanFFs: 60, Seed: 4},
		"specs":    {Benchmark: "TreeFlat", Circuits: 1, Specs: 3, TargetScanFFs: 60, Seed: 3},
		"ffbudget": {Benchmark: "TreeFlat", Circuits: 1, Specs: 2, TargetScanFFs: 80, Seed: 3},
		"mode":     {Benchmark: "TreeFlat", Circuits: 1, Specs: 2, TargetScanFFs: 60, Seed: 3, Mode: "structural"},
		"bench":    {Benchmark: "BasicSCB", Circuits: 1, Specs: 2, TargetScanFFs: 60, Seed: 3},
	} {
		if key(base) == key(alt) {
			t.Errorf("changing %s must change the content address", name)
		}
	}
	// Priority and timeout are delivery parameters, not analysis
	// inputs: they share the cache slot.
	pri := base
	pri.Priority = 9
	pri.TimeoutMS = 1234
	if key(base) != key(pri) {
		t.Fatal("priority/timeout must not change the content address")
	}
}
