package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/olog"
)

// jsonLines decodes every non-empty buffered log line as a JSON
// object (syncBuffer is declared in slowjob_test.go).
func jsonLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(string(b.Bytes())), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, ln)
		}
		out = append(out, m)
	}
	return out
}

// doWithIdentity performs req with the given correlation headers.
func doWithIdentity(t *testing.T, method, url, body, reqID, traceparent string) (int, http.Header, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// TestRequestIdentityCorrelation is the end-to-end telemetry check: one
// submission carrying a fixed X-Request-ID and W3C traceparent must
// surface the same identifiers in (1) the response headers, (2) the
// job record, (3) the structured access log, (4) the span tree of the
// job run, and (5) the flight-recorder events — the whole point of the
// request-scoped telemetry layer.
func TestRequestIdentityCorrelation(t *testing.T) {
	const (
		reqID   = "req-correlation-e2e"
		traceID = "0af7651916cd43dd8448eb211c80319c"
		parent  = "00-" + traceID + "-b7ad6b7169203331-01"
	)
	logBuf := &syncBuffer{}
	lg := olog.New(olog.Options{Writer: logBuf, Format: "json"})
	collector := &obs.CollectorSink{}
	reg := obs.NewRegistry()
	srv, ts := testServer(t, Config{
		Registry: reg,
		Logger:   lg,
		Tracer:   obs.NewTracer(collector),
	}, func(ctx context.Context, j *Job) ([]byte, error) {
		// The job context must carry the submitting request's identity
		// even though the HTTP handler has long returned.
		ri, ok := obs.ReqInfoFrom(ctx)
		if !ok || ri.RequestID != reqID || ri.Trace.TraceID != traceID {
			t.Errorf("job context identity = %+v ok=%v, want request %s trace %s", ri, ok, reqID, traceID)
		}
		return []byte(`{"stub":"ok"}`), nil
	})

	body := `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":3}`
	code, hdr, data := doWithIdentity(t, "POST", ts.URL+"/v1/analyses", body, reqID, parent)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, data)
	}

	// (1) Response headers echo the request ID and continue the trace
	// with a fresh span ID.
	if got := hdr.Get("X-Request-ID"); got != reqID {
		t.Fatalf("X-Request-ID echo = %q, want %q", got, reqID)
	}
	tp := hdr.Get("Traceparent")
	tc, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if tc.TraceID != traceID {
		t.Fatalf("response trace ID = %s, want %s", tc.TraceID, traceID)
	}
	if tc.SpanID == "b7ad6b7169203331" {
		t.Fatal("response span ID must be a child span, not the caller's")
	}

	// (2) The job record carries the identity.
	st := decodeStatus(t, data)
	if st.RequestID != reqID || st.TraceID != traceID {
		t.Fatalf("job identity = %q/%q, want %q/%q", st.RequestID, st.TraceID, reqID, traceID)
	}
	fin := pollDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job state = %s: %s", fin.State, fin.Error)
	}

	// (3) The access log has exactly one submit line with the identity.
	found := 0
	for _, m := range jsonLines(t, logBuf) {
		if m["msg"] != "access" || m["endpoint"] != "submit" {
			continue
		}
		found++
		if m["request_id"] != reqID || m["trace_id"] != traceID {
			t.Fatalf("access log identity = %v/%v, want %s/%s", m["request_id"], m["trace_id"], reqID, traceID)
		}
		for _, key := range []string{"method", "path", "status", "bytes", "dur_ms", "remote", "span_id"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("access log line lacks %q: %v", key, m)
			}
		}
	}
	if found != 1 {
		t.Fatalf("access log submit lines = %d, want 1", found)
	}

	// (4) The job span carries the identity attributes.
	jobSpans := 0
	for _, ev := range collector.Events() {
		if ev.Name != "job" {
			continue
		}
		jobSpans++
		if ev.Attrs["request_id"] != reqID || ev.Attrs["trace_id"] != traceID {
			t.Fatalf("job span attrs = %v, want request %s trace %s", ev.Attrs, reqID, traceID)
		}
	}
	if jobSpans != 1 {
		t.Fatalf("job spans = %d, want 1", jobSpans)
	}

	// (5) The flight recorder joins the same identifiers to the job.
	code, _, evData := getBody(t, ts.URL+"/debug/events?job="+st.ID)
	if code != http.StatusOK {
		t.Fatalf("/debug/events: HTTP %d: %s", code, evData)
	}
	var evResp struct {
		Events []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(evData, &evResp); err != nil {
		t.Fatalf("decode events: %v\n%s", err, evData)
	}
	names := map[string]bool{}
	for _, ev := range evResp.Events {
		names[ev.Cat+"/"+ev.Name] = true
		if ev.RequestID != reqID || ev.TraceID != traceID {
			t.Fatalf("flight event %s/%s identity = %q/%q, want %q/%q",
				ev.Cat, ev.Name, ev.RequestID, ev.TraceID, reqID, traceID)
		}
	}
	for _, want := range []string{"sched/enqueue", "job/start", "job/done"} {
		if !names[want] {
			t.Fatalf("flight recorder lacks %s; got %v", want, names)
		}
	}
	_ = srv
}

// TestRequestIdentityMinted checks the no-header path: the server mints
// a request ID and starts a fresh trace, and rejects unusable inbound
// request IDs instead of propagating garbage into logs.
func TestRequestIdentityMinted(t *testing.T) {
	_, ts := testServer(t, Config{}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{}`), nil
	})
	code, hdr, _ := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if id := hdr.Get("X-Request-ID"); !strings.HasPrefix(id, "req-") || len(id) != len("req-")+16 {
		t.Fatalf("minted request ID %q", id)
	}
	if _, ok := obs.ParseTraceparent(hdr.Get("Traceparent")); !ok {
		t.Fatalf("minted traceparent %q does not parse", hdr.Get("Traceparent"))
	}

	// An unusable request ID (overlong) must be replaced, not echoed.
	overlong := strings.Repeat("x", 300)
	code, hdr, _ = doWithIdentity(t, "GET", ts.URL+"/healthz", "", overlong, "not-a-traceparent")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if id := hdr.Get("X-Request-ID"); strings.Contains(id, "xxx") {
		t.Fatalf("unsanitized request ID echoed: %q", id)
	}
	if _, ok := obs.ParseTraceparent(hdr.Get("Traceparent")); !ok {
		t.Fatalf("fallback traceparent %q does not parse", hdr.Get("Traceparent"))
	}
}

// TestAccessLogFlushOnShutdown is the flush audit: access-log records
// buffered in an olog.BufferedWriter must all reach the underlying
// writer once the server shut down and the buffer flushed — the
// rsnserved -log-file path. Run under -race this also audits the
// handler-goroutine/shutdown-goroutine handoff.
func TestAccessLogFlushOnShutdown(t *testing.T) {
	under := &syncBuffer{}
	bw := olog.NewBufferedWriter(under)
	lg := olog.New(olog.Options{Writer: bw, Format: "json"})
	srv, err := New(Config{Logger: lg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/healthz")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	access := 0
	for _, m := range jsonLines(t, under) {
		if m["msg"] == "access" {
			access++
		}
	}
	if access != n {
		t.Fatalf("flushed access lines = %d, want %d (dropped tail)", access, n)
	}
}
