package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/obs/reportdiff"
	"repro/internal/rsn"
)

// DeltaRequest is the JSON body of POST /v1/analyses/{id}/delta: an
// edit script applied against the session of a finished analysis.
type DeltaRequest struct {
	Script *rsn.EditScript `json:"script"`
	// Priority and TimeoutMS behave like their AnalysisRequest
	// counterparts.
	Priority  int   `json:"priority,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// deltaKey derives the content address of a delta analysis from the
// base analysis's key and the script's canonical hash — two
// submissions share a key (and therefore a cache slot and a coalesced
// job) exactly when base and canonicalized script agree.
func deltaKey(baseKey string, script *rsn.EditScript) string {
	h := netlist.NewHasher()
	h.Section("serve.delta")
	h.Str(baseKey)
	script.AppendCanonical(h)
	return h.SumHex()
}

// contentKey strips any scheduler decoration ("#profile-...", "#delta")
// from a job key, recovering the content address the result is stored
// under.
func contentKey(key string) string {
	if i := strings.IndexByte(key, '#'); i >= 0 {
		return key[:i]
	}
	return key
}

// isContentKey reports whether id looks like a raw content address
// (lowercase hex SHA-256) — the restart-resume form of the {id} path
// element, used when the job records of a previous process life are
// gone but the store still has the session.
func isContentKey(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// resolveBaseKey maps the {id} path element of a delta submission to
// the base analysis's content key and display label. id is either a
// job ID (the job must be done) or a raw content key.
func (s *Server) resolveBaseKey(id string) (key, label string, code int, err error) {
	st, serr := s.sched.Status(id)
	if serr == nil {
		if st.State != StateDone {
			return "", "", http.StatusConflict,
				fmt.Errorf("analysis %s is %s; deltas build on finished analyses", id, st.State)
		}
		return contentKey(st.Key), st.Label, 0, nil
	}
	if isContentKey(id) {
		return id, "analysis " + shortKey(id), 0, nil
	}
	return "", "", http.StatusNotFound, fmt.Errorf("unknown analysis %q", id)
}

// handleDelta resolves, caches or schedules one delta analysis. The
// response shapes mirror handleSubmit: 200 on a store hit, 202 when
// queued or coalesced, 409 when the base is unfinished or has no
// session, plus the usual 429/503 backpressure.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	baseKey, baseLabel, code, err := s.resolveBaseKey(r.PathValue("id"))
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}
	var req DeltaRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Script == nil || len(req.Script.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "delta request needs a script with at least one op")
		return
	}
	script, err := req.Script.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.hasSession(baseKey) {
		writeError(w, http.StatusConflict,
			"analysis %s has no session to apply a delta to (benchmark-form submissions and memory-evicted sessions cannot take deltas)",
			shortKey(baseKey))
		return
	}
	scriptHash, err := script.CanonicalHash()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a := &analysis{
		key:        deltaKey(baseKey, script),
		label:      fmt.Sprintf("%s+%dop", baseLabel, len(script.Ops)),
		baseKey:    baseKey,
		script:     script,
		scriptHash: scriptHash,
	}
	if data, ok := s.store.Get(a.key); ok {
		j := s.sched.InsertFinished(r.Context(), a.key, a.label, "hit", data)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "served from store",
			slog.String("job", j.ID), slog.String("label", a.label), slog.String("key", shortKey(a.key)))
		writeJSON(w, http.StatusOK, s.status(j))
		return
	}
	var timeout time.Duration
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	s.scheduleJob(w, r, a, req.Priority, timeout)
}

// scheduleJob submits a resolved analysis and writes the uniform
// submission responses (202 queued/coalesced, 429 full, 503 draining).
// The request context carries the submission's identity onto the job.
func (s *Server) scheduleJob(w http.ResponseWriter, r *http.Request, a *analysis, priority int, timeout time.Duration) {
	j, joined, err := s.sched.Submit(r.Context(), a.schedKey(), a.label, priority, timeout, a)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new analyses")
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "analysis queue full, retry later")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if joined {
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "coalesced identical submission",
			slog.String("job", j.ID), slog.String("label", a.label), slog.String("key", shortKey(a.key)))
		writeJSON(w, http.StatusAccepted, s.statusAs(j, "coalesced"))
		return
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "queued",
		slog.String("job", j.ID), slog.String("label", a.label), slog.String("key", shortKey(a.key)))
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// parentReport extracts the run report stored under the base key —
// either a plain run-report document (the chain's root) or the report
// embedded in a previous delta document (mid-chain).
func (s *Server) parentReport(baseKey string) (*obs.RunReport, error) {
	data, ok := s.store.Get(baseKey)
	if !ok {
		return nil, fmt.Errorf("parent report %s not in store", shortKey(baseKey))
	}
	if rep, err := obs.ReadReport(bytes.NewReader(data)); err == nil {
		return rep, nil
	}
	if doc, err := reportdiff.ReadDeltaDoc(bytes.NewReader(data)); err == nil {
		return doc.Report, nil
	}
	return nil, fmt.Errorf("stored document %s is neither a run report nor a delta report", shortKey(baseKey))
}

// executeDelta runs one delta job: hydrate (or fetch) the base
// session, apply the script and re-secure incrementally, diff against
// the parent report, store the delta document under the derived key,
// and persist the derived session so the chain continues — across
// process restarts — from this delta's state.
func (s *Server) executeDelta(ctx context.Context, j *Job, a *analysis) ([]byte, error) {
	sess, err := s.sessionFor(ctx, a.baseKey)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Mode:        sess.mode,
		Workers:     s.cfg.EngineWorkers,
		Context:     ctx,
		Logger:      s.engLog.With("job", j.ID),
		Stats:       s.stats,
		Tracer:      j.tracer,
		TraceParent: j.span,
	}
	// Serialize delta runs on one session: they share the analysis's
	// incremental cache, and interleaving would thrash it.
	sess.mu.Lock()
	res, err := exp.SecureDelta("rsnserved", sess.label, sess.an, sess.nw, a.script, opts)
	sess.mu.Unlock()
	if err != nil {
		return nil, err
	}
	parent, err := s.parentReport(a.baseKey)
	if err != nil {
		return nil, err
	}
	doc := reportdiff.NewDeltaDoc(a.baseKey, a.key, a.scriptHash, len(a.script.Ops), parent, res.Report)
	var buf bytes.Buffer
	if err := reportdiff.WriteDeltaDoc(&buf, doc); err != nil {
		return nil, fmt.Errorf("serve: encode delta report: %w", err)
	}
	if err := s.store.Put(a.key, buf.Bytes()); err != nil {
		s.log.LogAttrs(ctx, slog.LevelWarn, "store put failed",
			slog.String("key", shortKey(a.key)), slog.String("err", err.Error()))
	}
	s.saveSession(&session{
		hydrated: true, key: a.key, label: sess.label, mode: sess.mode,
		iclText: sess.iclText, benchText: sess.benchText,
		scripts: append(append([]*rsn.EditScript{}, sess.scripts...), a.script),
		an:      res.Analysis, nw: res.Derived,
		circuit: sess.circuit, internal: sess.internal, spec: sess.spec,
	})
	return buf.Bytes(), nil
}
