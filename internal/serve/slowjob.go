package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// slowJobEntry is one JSONL record of the slow-job log: the job's
// identity, its measured duration against the configured threshold,
// and the full span tree of the run.
type slowJobEntry struct {
	Time        string      `json:"time"`
	JobID       string      `json:"job_id"`
	Label       string      `json:"label,omitempty"`
	Key         string      `json:"key"`
	DurMS       int64       `json:"dur_ms"`
	ThresholdMS int64       `json:"threshold_ms"`
	Spans       []obs.Event `json:"spans,omitempty"`
}

// slowJobLog serializes slow-job entries as buffered JSON lines.
// Flush on graceful shutdown pushes buffered entries to the
// underlying writer.
type slowJobLog struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

func newSlowJobLog(w io.Writer) *slowJobLog {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &slowJobLog{bw: bw, enc: json.NewEncoder(bw)}
}

func (l *slowJobLog) record(e slowJobEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(e)
}

func (l *slowJobLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bw.Flush()
}

// dispatch is the scheduler's run function: it wraps the job execution
// seam (s.runJob, substitutable by tests) with per-job tracing, the
// slow-job log and on-demand profile capture, so those paths are
// exercised regardless of the workload behind them.
//
// When slow-job logging is on, the job runs under a private per-job
// tracer over a collector sink — full fidelity, no sampling — and the
// complete span tree is journaled only if the job breaches the
// threshold; the server-wide tracer keeps the lifecycle spans. With
// logging off, the job traces into the server tracer as before.
func (s *Server) dispatch(ctx context.Context, j *Job) ([]byte, error) {
	tracer := s.tracer
	var collector *obs.CollectorSink
	var parent *obs.Span
	if s.slowLog != nil {
		collector = &obs.CollectorSink{}
		tracer = obs.NewTracer(collector)
	} else {
		parent = s.root
	}
	label, key := j.Label, j.Key
	span := tracer.Start(parent, "job",
		obs.Str("id", j.ID), obs.Str("label", label), obs.Str("key", shortKey(key)))
	j.tracer, j.span = tracer, span

	start := time.Now()
	data, err := s.runWithProfile(ctx, j)
	span.End()
	dur := time.Since(start)

	if s.slowLog != nil && dur >= s.cfg.SlowJobThreshold {
		s.slowJobs.Inc()
		entry := slowJobEntry{
			Time:        time.Now().UTC().Format(time.RFC3339Nano),
			JobID:       j.ID,
			Label:       label,
			Key:         key,
			DurMS:       dur.Milliseconds(),
			ThresholdMS: s.cfg.SlowJobThreshold.Milliseconds(),
			Spans:       collector.Events(),
		}
		if lerr := s.slowLog.record(entry); lerr != nil {
			s.logf("serve: slow-job log: %v", lerr)
		} else {
			s.logf("job %s: slow (%s > %s threshold), span tree dumped (%d spans)",
				j.ID, dur.Round(time.Millisecond), s.cfg.SlowJobThreshold, len(entry.Spans))
		}
	}
	return data, err
}

// runWithProfile runs the job, capturing a CPU or heap profile around
// it when the submission asked for one (?profile=cpu|heap). The CPU
// profiler is process-global, so concurrent CPU-profiled jobs
// serialize on profMu (the profile then covers only its own job plus
// whatever else the process does meanwhile — that is inherent to
// runtime profiling). Profile capture failures degrade to an
// unprofiled run; the analysis result always wins.
func (s *Server) runWithProfile(ctx context.Context, j *Job) ([]byte, error) {
	a, _ := j.Payload.(*analysis)
	kind := ""
	if a != nil {
		kind = a.profile
	}
	switch kind {
	case "cpu":
		var buf bytes.Buffer
		s.profMu.Lock()
		if err := pprof.StartCPUProfile(&buf); err != nil {
			s.profMu.Unlock()
			s.logf("job %s: cpu profile: %v", j.ID, err)
			return s.runJob(ctx, j)
		}
		data, runErr := s.runJob(ctx, j)
		pprof.StopCPUProfile()
		s.profMu.Unlock()
		if runErr == nil {
			s.saveProfile(j, a, "cpu", buf.Bytes())
		}
		return data, runErr
	case "heap":
		data, runErr := s.runJob(ctx, j)
		if runErr == nil {
			runtime.GC() // fold transient garbage so the profile shows live allocations
			var buf bytes.Buffer
			if err := pprof.WriteHeapProfile(&buf); err != nil {
				s.logf("job %s: heap profile: %v", j.ID, err)
			} else {
				s.saveProfile(j, a, "heap", buf.Bytes())
			}
		}
		return data, runErr
	default:
		return s.runJob(ctx, j)
	}
}

// saveProfile attaches the pprof blob to the job record (served by
// GET /v1/analyses/{id}/profile) and persists it next to the cached
// report when the store has a disk tier.
func (s *Server) saveProfile(j *Job, a *analysis, kind string, data []byte) {
	s.sched.SetProfile(j, kind, data)
	if err := s.store.PutProfile(a.key, kind, data); err != nil {
		s.logf("job %s: store profile: %v", j.ID, err)
	}
	s.logf("job %s: %s profile captured (%d bytes)", j.ID, kind, len(data))
}
