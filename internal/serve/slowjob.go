package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// slowJobEntry is one JSONL record of the slow-job log: the job's
// identity (including the submitting request's, so the dump joins the
// access log and trace journal), its measured duration against the
// configured threshold, the full span tree of the run, and the
// flight-recorder events the job left behind.
type slowJobEntry struct {
	Time        string         `json:"time"`
	JobID       string         `json:"job_id"`
	Label       string         `json:"label,omitempty"`
	Key         string         `json:"key"`
	RequestID   string         `json:"request_id,omitempty"`
	TraceID     string         `json:"trace_id,omitempty"`
	DurMS       int64          `json:"dur_ms"`
	ThresholdMS int64          `json:"threshold_ms"`
	Spans       []obs.Event    `json:"spans,omitempty"`
	Events      []flight.Event `json:"events,omitempty"`
}

// slowJobLog serializes slow-job entries as buffered JSON lines.
// Flush on graceful shutdown pushes buffered entries to the
// underlying writer.
type slowJobLog struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

func newSlowJobLog(w io.Writer) *slowJobLog {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &slowJobLog{bw: bw, enc: json.NewEncoder(bw)}
}

func (l *slowJobLog) record(e slowJobEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(e)
}

func (l *slowJobLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bw.Flush()
}

// dispatch is the scheduler's run function: it wraps the job execution
// seam (s.runJob, substitutable by tests) with per-job tracing, the
// slow-job log and on-demand profile capture, so those paths are
// exercised regardless of the workload behind them.
//
// When slow-job logging is on, the job runs under a private per-job
// tracer over a collector sink — full fidelity, no sampling — and the
// complete span tree is journaled only if the job breaches the
// threshold; the server-wide tracer keeps the lifecycle spans. With
// logging off, the job traces into the server tracer as before.
func (s *Server) dispatch(ctx context.Context, j *Job) ([]byte, error) {
	tracer := s.tracer
	var collector *obs.CollectorSink
	var parent *obs.Span
	if s.slowLog != nil {
		collector = &obs.CollectorSink{}
		tracer = obs.NewTracer(collector)
	} else {
		parent = s.root
	}
	label, key := j.Label, j.Key
	attrs := []obs.Attr{obs.Str("id", j.ID), obs.Str("label", label), obs.Str("key", shortKey(key))}
	if j.RequestID != "" {
		attrs = append(attrs, obs.Str("request_id", j.RequestID), obs.Str("trace_id", j.TraceID))
	}
	span := tracer.Start(parent, "job", attrs...)
	j.tracer, j.span = tracer, span

	start := time.Now()
	data, err := s.runWithProfile(ctx, j)
	span.End()
	dur := time.Since(start)

	// Successful runs calibrate the predicted-backlog cost model.
	if err == nil {
		if a, _ := j.Payload.(*analysis); a != nil {
			s.cost.observe(a.scanFFs, dur)
		}
	}

	if s.slowLog != nil && dur >= s.cfg.SlowJobThreshold {
		s.slowJobs.Inc()
		entry := slowJobEntry{
			Time:        time.Now().UTC().Format(time.RFC3339Nano),
			JobID:       j.ID,
			Label:       label,
			Key:         key,
			RequestID:   j.RequestID,
			TraceID:     j.TraceID,
			DurMS:       dur.Milliseconds(),
			ThresholdMS: s.cfg.SlowJobThreshold.Milliseconds(),
			Spans:       collector.Events(),
			Events:      s.flight.ForJob(j.ID),
		}
		if lerr := s.slowLog.record(entry); lerr != nil {
			s.log.LogAttrs(ctx, slog.LevelError, "slow-job log write failed",
				slog.String("job", j.ID), slog.String("err", lerr.Error()))
		} else {
			s.log.LogAttrs(ctx, slog.LevelWarn, "slow job, span tree dumped",
				slog.String("job", j.ID),
				slog.Duration("dur", dur.Round(time.Millisecond)),
				slog.Duration("threshold", s.cfg.SlowJobThreshold),
				slog.Int("spans", len(entry.Spans)))
		}
	}
	return data, err
}

// runWithProfile runs the job, capturing a CPU or heap profile around
// it when the submission asked for one (?profile=cpu|heap). The CPU
// profiler is process-global, so concurrent CPU-profiled jobs
// serialize on profMu (the profile then covers only its own job plus
// whatever else the process does meanwhile — that is inherent to
// runtime profiling). Profile capture failures degrade to an
// unprofiled run; the analysis result always wins.
func (s *Server) runWithProfile(ctx context.Context, j *Job) ([]byte, error) {
	a, _ := j.Payload.(*analysis)
	kind := ""
	if a != nil {
		kind = a.profile
	}
	switch kind {
	case "cpu":
		var buf bytes.Buffer
		s.profMu.Lock()
		if err := pprof.StartCPUProfile(&buf); err != nil {
			s.profMu.Unlock()
			s.log.LogAttrs(ctx, slog.LevelWarn, "cpu profile failed",
				slog.String("job", j.ID), slog.String("err", err.Error()))
			return s.runJob(ctx, j)
		}
		data, runErr := s.runJob(ctx, j)
		pprof.StopCPUProfile()
		s.profMu.Unlock()
		if runErr == nil {
			s.saveProfile(j, a, "cpu", buf.Bytes())
		}
		return data, runErr
	case "heap":
		data, runErr := s.runJob(ctx, j)
		if runErr == nil {
			runtime.GC() // fold transient garbage so the profile shows live allocations
			var buf bytes.Buffer
			if err := pprof.WriteHeapProfile(&buf); err != nil {
				s.log.LogAttrs(ctx, slog.LevelWarn, "heap profile failed",
					slog.String("job", j.ID), slog.String("err", err.Error()))
			} else {
				s.saveProfile(j, a, "heap", buf.Bytes())
			}
		}
		return data, runErr
	default:
		return s.runJob(ctx, j)
	}
}

// saveProfile attaches the pprof blob to the job record (served by
// GET /v1/analyses/{id}/profile) and persists it next to the cached
// report when the store has a disk tier.
func (s *Server) saveProfile(j *Job, a *analysis, kind string, data []byte) {
	s.sched.SetProfile(j, kind, data)
	if err := s.store.PutProfile(a.key, kind, data); err != nil {
		s.log.Warn("store profile failed", "job", j.ID, "err", err)
	}
	s.log.Info("profile captured", "job", j.ID, "kind", kind, "bytes", len(data))
}
