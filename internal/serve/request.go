package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dep"
	"repro/internal/exp"
	"repro/internal/icl"
	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// AnalysisRequest is the JSON body of POST /v1/analyses. Exactly one
// input form is given:
//
//   - Benchmark names a Table I catalog network; the server runs the
//     paper's protocol (Circuits × Specs random pairs) on it, exactly
//     like rsnbench -table main.
//   - ICL carries an inline network description whose module
//     annotations embed the security specification; the server runs
//     one full Secure pipeline on it. Bench optionally carries the
//     .bench circuit backing the network's instrument links.
//
// Zero-valued protocol parameters fall back to the server's defaults;
// values beyond the server's caps are rejected (400), bounding the
// cost a single request can demand.
type AnalysisRequest struct {
	Benchmark string `json:"benchmark,omitempty"`
	ICL       string `json:"icl,omitempty"`
	Bench     string `json:"bench,omitempty"`

	// Protocol parameters (Benchmark form only).
	Circuits      int     `json:"circuits,omitempty"`
	Specs         int     `json:"specs,omitempty"`
	TargetScanFFs int     `json:"target_scan_ffs,omitempty"`
	Scale         float64 `json:"scale,omitempty"`
	Seed          int64   `json:"seed,omitempty"`

	// Mode selects "exact" (default) or "structural" dependencies.
	Mode string `json:"mode,omitempty"`

	// Priority orders the queue: higher runs first (FIFO within a
	// priority).
	Priority int `json:"priority,omitempty"`
	// TimeoutMS caps this job's run time; the server's job timeout is
	// an upper bound.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// analysis is a resolved, validated submission: the materialized
// structures, the derived run configuration and the content address.
type analysis struct {
	key   string
	label string
	// profile requests on-demand pprof capture around the run: "",
	// "cpu" or "heap" (from the ?profile= query parameter).
	profile string
	// scanFFs is the analyzed structure size, the cost-model feature
	// behind the predicted-backlog load signal (0 when unknown, e.g.
	// delta submissions).
	scanFFs int

	// Benchmark form.
	benchmark *bench.Benchmark
	cfg       exp.RunConfig

	// Inline-ICL form.
	nw       *rsn.Network
	circuit  *netlist.Netlist
	internal []netlist.FFID
	spec     *secspec.Spec
	mode     dep.Mode
	// iclText/benchText are the submitted sources, kept for the session
	// record so a delta chain can re-hydrate after a restart.
	iclText   string
	benchText string

	// Delta form (POST /v1/analyses/{id}/delta): an edit script against
	// the session of a finished base analysis. key is derived from
	// (baseKey, script hash).
	baseKey    string
	script     *rsn.EditScript
	scriptHash string

	// Attack form (POST /v1/attacks): an obfuscated network to run the
	// attack analysis against (see attack.go).
	atk *attackRun
}

// schedKey is the scheduler/coalescing key. Profiled submissions get a
// decorated key so they never coalesce with (or get short-circuited
// by) unprofiled runs of the same inputs — a profile request must
// force a real execution. Delta jobs get a "#delta" decoration on top
// of their already-derived key: a delta may only coalesce with the
// identical (base-key, script-hash) pair, never with a plain
// submission. The content address a.key stays undecorated for the
// store.
func (a *analysis) schedKey() string {
	if a.script != nil {
		return a.key + "#delta"
	}
	if a.profile == "" {
		return a.key
	}
	return a.key + "#profile-" + a.profile
}

func (a *analysis) timeout(req *AnalysisRequest) time.Duration {
	if req.TimeoutMS <= 0 {
		return 0
	}
	return time.Duration(req.TimeoutMS) * time.Millisecond
}

// resolve validates the request against the server's limits,
// materializes the analysis inputs and computes the content address —
// the SHA-256 over the canonical serialization (netlist.Hasher) of
// every result-determining input. Engine concurrency (worker counts)
// is deliberately NOT part of the key: results are deterministic at
// any worker count, so runs at different parallelism still share one
// cache slot.
func (s *Server) resolve(req *AnalysisRequest) (*analysis, error) {
	mode := dep.Exact
	switch req.Mode {
	case "", "exact":
		req.Mode = "exact"
	case "structural":
		mode = dep.StructuralApprox
	default:
		return nil, fmt.Errorf("unknown mode %q (want exact or structural)", req.Mode)
	}
	switch {
	case req.Benchmark != "" && req.ICL != "":
		return nil, fmt.Errorf("benchmark and icl are mutually exclusive")
	case req.Benchmark != "":
		return s.resolveBenchmark(req, mode)
	case req.ICL != "":
		return s.resolveICL(req, mode)
	default:
		return nil, fmt.Errorf("one of benchmark or icl is required")
	}
}

// resolveBenchmark materializes a catalog protocol run.
func (s *Server) resolveBenchmark(req *AnalysisRequest, mode dep.Mode) (*analysis, error) {
	b, ok := bench.ByName(req.Benchmark)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", req.Benchmark)
	}
	lim := s.cfg.limits()
	if req.Circuits == 0 {
		req.Circuits = lim.DefaultCircuits
	}
	if req.Specs == 0 {
		req.Specs = lim.DefaultSpecs
	}
	if req.Scale == 0 && req.TargetScanFFs == 0 {
		req.TargetScanFFs = lim.DefaultScanFFs
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	switch {
	case req.Circuits < 0 || req.Circuits > lim.MaxCircuits:
		return nil, fmt.Errorf("circuits %d out of range (1..%d)", req.Circuits, lim.MaxCircuits)
	case req.Specs < 0 || req.Specs > lim.MaxSpecs:
		return nil, fmt.Errorf("specs %d out of range (1..%d)", req.Specs, lim.MaxSpecs)
	case req.TargetScanFFs < 0 || req.TargetScanFFs > lim.MaxScanFFs:
		return nil, fmt.Errorf("target_scan_ffs %d out of range (1..%d)", req.TargetScanFFs, lim.MaxScanFFs)
	case req.Scale < 0 || req.Scale > 1:
		return nil, fmt.Errorf("scale %g out of range (0..1]", req.Scale)
	}
	cfg := exp.DefaultRunConfig()
	cfg.Circuits = req.Circuits
	cfg.Specs = req.Specs
	cfg.TargetScanFFs = req.TargetScanFFs
	cfg.Scale = req.Scale
	cfg.Seed = req.Seed
	cfg.Mode = mode
	if req.Scale > 0 {
		// An explicit scale must not exceed the scan-FF cap either.
		if ffs := b.Build(req.Scale).NumScanFFs(); ffs > lim.MaxScanFFs {
			return nil, fmt.Errorf("scale %g yields %d scan FFs (cap %d)", req.Scale, ffs, lim.MaxScanFFs)
		}
	}

	a := &analysis{label: b.Name, benchmark: &b, cfg: cfg}
	h := netlist.NewHasher()
	h.Section("serve.analysis")
	h.Str("benchmark")
	// The materialized network at the effective scale IS part of the
	// key: a catalog change that alters the generated structure must
	// miss the cache.
	nw := b.Build(cfg.Scale)
	if cfg.Scale == 0 {
		nw = b.Build(b.ScaleForTarget(cfg.TargetScanFFs))
	}
	// The protocol runs Circuits×Specs analyses over this structure, so
	// the cost feature scales with the requested pair count.
	a.scanFFs = nw.NumScanFFs() * cfg.Circuits * cfg.Specs
	nw.AppendCanonical(h)
	h.Section("protocol")
	h.Str(b.Name)
	h.Int(cfg.Seed)
	h.Int(int64(cfg.Circuits))
	h.Int(int64(cfg.Specs))
	h.Int(int64(cfg.TargetScanFFs))
	h.Float(cfg.Scale)
	h.Str(fmt.Sprint(cfg.Mode))
	hashCircuitConfig(h, cfg.Circuit)
	hashSpecGen(h, cfg.SpecGen)
	a.key = h.SumHex()
	return a, nil
}

// hashCircuitConfig pins the circuit-attachment parameters that shape
// the generated circuits (and therefore the results).
func hashCircuitConfig(h *netlist.Hasher, c bench.CircuitConfig) {
	h.Section("circuit-config")
	h.Int(int64(c.MaxPortsPerModule))
	h.Int(int64(c.InternalPerModule))
	h.Float(c.InternalFrac)
	h.Int(int64(c.MaxInternalPerModule))
	h.Float(c.CrossEdgesPerModule)
	h.Float(c.ReconvergenceRate)
	h.Float(c.DataSourceFrac)
	h.Int(int64(c.Depth))
	h.Int(int64(c.Inputs))
}

// hashSpecGen pins the random-specification parameters.
func hashSpecGen(h *netlist.Hasher, g secspec.GenConfig) {
	h.Section("specgen")
	h.Int(int64(g.NumCategories))
	h.Float(g.ConfidentialFrac)
	h.Float(g.UntrustedFrac)
}

// parsedICL is a materialized inline submission: the network, its
// embedded specification, and the backing (or synthesized) circuit.
type parsedICL struct {
	nw       *rsn.Network
	spec     *secspec.Spec
	circuit  *netlist.Netlist
	internal []netlist.FFID
}

// parseICLSubmission parses an inline network description and its
// optional .bench circuit. Without a circuit, referenced instrument
// flip-flops are synthesized as hold flip-flops (like rsnsec -icl
// without -bench), so link-carrying files analyze standalone. The
// construction is deterministic in (iclText, benchText): session
// re-hydration (see session.go) relies on re-parsing the recorded
// sources to rebuild the exact flip-flop numbering a persisted
// snapshot's attribute arrays are indexed by.
func parseICLSubmission(iclText, benchText string) (*parsedICL, error) {
	p := &parsedICL{}
	var lookup func(string) (netlist.FFID, bool)
	var lazy *netlist.Netlist
	var linked []bool
	if benchText != "" {
		circuit, err := netlist.ParseBench(strings.NewReader(benchText))
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		p.circuit = circuit
		byName := make(map[string]netlist.FFID, len(circuit.FFs))
		linked = make([]bool, len(circuit.FFs))
		for i := range circuit.FFs {
			byName[circuit.FFs[i].Name] = netlist.FFID(i)
		}
		lookup = func(name string) (netlist.FFID, bool) {
			id, ok := byName[name]
			if ok {
				linked[id] = true
			}
			return id, ok
		}
	} else {
		// No circuit given: synthesize a hold flip-flop for every
		// instrument name the file references.
		lazy = netlist.New()
		byName := map[string]netlist.FFID{}
		lookup = func(name string) (netlist.FFID, bool) {
			if id, ok := byName[name]; ok {
				return id, true
			}
			f := lazy.AddFF(name, 0)
			lazy.SetFFInput(f, lazy.FFs[f].Node)
			byName[name] = f
			return f, true
		}
	}
	nw, spec, err := icl.ParseNetworkAndSpec(iclText, lookup)
	if err != nil {
		return nil, fmt.Errorf("icl: %w", err)
	}
	if spec == nil {
		return nil, fmt.Errorf("icl: no embedded security specification (annotate modules with Trust/Accepts)")
	}
	p.nw = nw
	p.spec = spec
	if p.circuit == nil {
		// The synthesized circuit needs the network's module table;
		// hold flip-flops re-add in lookup order so their IDs match the
		// links just parsed. Modules resolve by "module." name prefix.
		p.circuit = netlist.New()
		for _, name := range nw.Modules {
			p.circuit.AddModule(name)
		}
		for i := range lazy.FFs {
			name := lazy.FFs[i].Name
			mod := 0
			for mi, mn := range nw.Modules {
				if strings.HasPrefix(name, mn+".") {
					mod = mi
					break
				}
			}
			f := p.circuit.AddFF(name, mod)
			p.circuit.SetFFInput(f, p.circuit.FFs[f].Node)
		}
	} else {
		// Flip-flops never referenced by a capture/update link are
		// internal: the dependency analysis bridges over them.
		for i, l := range linked {
			if !l {
				p.internal = append(p.internal, netlist.FFID(i))
			}
		}
	}
	return p, nil
}

// resolveICL parses an inline submission and computes its content
// address over the materialized circuit, internal list, network,
// specification and mode.
func (s *Server) resolveICL(req *AnalysisRequest, mode dep.Mode) (*analysis, error) {
	lim := s.cfg.limits()
	p, err := parseICLSubmission(req.ICL, req.Bench)
	if err != nil {
		return nil, err
	}
	if ffs := p.nw.NumScanFFs(); ffs > lim.MaxScanFFs {
		return nil, fmt.Errorf("network has %d scan FFs (cap %d)", ffs, lim.MaxScanFFs)
	}
	a := &analysis{
		mode: mode, nw: p.nw, circuit: p.circuit, internal: p.internal,
		spec: p.spec, label: p.nw.Name, iclText: req.ICL, benchText: req.Bench,
		scanFFs: p.nw.NumScanFFs(),
	}
	h := netlist.NewHasher()
	h.Section("serve.analysis")
	h.Str("icl")
	p.circuit.AppendCanonical(h)
	h.List(len(p.internal))
	for _, f := range p.internal {
		h.Int(int64(f))
	}
	p.nw.AppendCanonical(h)
	p.spec.AppendCanonical(h)
	h.Str(fmt.Sprint(mode))
	a.key = h.SumHex()
	return a, nil
}
