package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/obfus"
	"repro/internal/rsn"
)

// attackBody generates a small obfuscated network (ICL + overlay
// sidecar with the embedded defender key) and marshals it as an
// AttackRequest body.
func attackBody(t *testing.T, mutate func(*AttackRequest)) string {
	t.Helper()
	var iclBuf, ovBuf bytes.Buffer
	_, err := bench.StreamScaleICL(&iclBuf, &ovBuf, bench.ScaleGenConfig{
		TargetScanFFs: 24, SIBFanout: 3, LeafLen: 4, Modules: 2,
		Seed: 9, ObfKeyBits: 4, ObfMuxShare: -1,
	})
	if err != nil {
		t.Fatalf("StreamScaleICL: %v", err)
	}
	req := AttackRequest{ICL: iclBuf.String(), Overlay: json.RawMessage(ovBuf.Bytes())}
	if mutate != nil {
		mutate(&req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestAttackValidation(t *testing.T) {
	_, ts := testServer(t, Config{}, nil)
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"bad json", `{`},
		{"unknown field", `{"icl":"x","frobnicate":1}`},
		{"no overlay", attackBody(t, func(r *AttackRequest) { r.Overlay = nil })},
		{"bad icl", attackBody(t, func(r *AttackRequest) { r.ICL = "ScanNetwork {" })},
		{"bad overlay", attackBody(t, func(r *AttackRequest) { r.Overlay = json.RawMessage(`{"schema":"nope"}`) })},
		{"no key", attackBody(t, func(r *AttackRequest) {
			// Strip the embedded key from the sidecar and give no
			// override: the oracle has nothing to answer with.
			var doc map[string]any
			if err := json.Unmarshal(r.Overlay, &doc); err != nil {
				t.Fatal(err)
			}
			delete(doc, "key")
			raw, _ := json.Marshal(doc)
			r.Overlay = raw
		})},
		{"bad key override", attackBody(t, func(r *AttackRequest) { r.Key = "zz" })},
		{"both skipped", attackBody(t, func(r *AttackRequest) { r.SkipSAT = true; r.SkipFlush = true })},
		{"negative budget", attackBody(t, func(r *AttackRequest) { r.Horizon = -1 })},
	}
	for _, c := range cases {
		code, _, data := postJSON(t, ts.URL+"/v1/attacks", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d (want 400): %s", c.name, code, data)
		}
	}
}

func TestAttackScanFFCap(t *testing.T) {
	_, ts := testServer(t, Config{Limits: Limits{MaxScanFFs: 10}}, nil)
	code, _, data := postJSON(t, ts.URL+"/v1/attacks", attackBody(t, nil))
	if code != http.StatusBadRequest || !strings.Contains(string(data), "cap") {
		t.Fatalf("HTTP %d: %s (want 400 with cap message)", code, data)
	}
}

// TestAttackEndToEndCachedReplay runs a real attack job, then replays
// the identical submission and requires the cached response bytes to
// equal the first run's — the report carries no wall-clock timings, so
// content addressing is sound.
func TestAttackEndToEndCachedReplay(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1}, nil)
	body := attackBody(t, nil)

	code, _, data := postJSON(t, ts.URL+"/v1/attacks", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, data)
	}
	st := decodeStatus(t, data)
	if st.Cache != "miss" {
		t.Fatalf("first submission cache %q, want miss", st.Cache)
	}
	done := pollDone(t, ts.URL, st.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s: %s", done.State, done.Error)
	}
	code, _, rep1 := getBody(t, ts.URL+"/v1/attacks/"+st.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", code, rep1)
	}
	rep, err := obfus.ReadReport(bytes.NewReader(rep1))
	if err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if rep.SAT == nil || rep.SAT.Outcome != obfus.OutcomeRecovered || !rep.SAT.Verified {
		t.Fatalf("SAT section: %+v", rep.SAT)
	}
	if want := rsn.KeyHex(rsn.KeyFromSeed(9, 4)); rep.SAT.RecoveredKey != want {
		t.Fatalf("recovered key %s, want %s", rep.SAT.RecoveredKey, want)
	}
	if rep.SAT.TimeNS != 0 || (rep.Flush != nil && rep.Flush.TimeNS != 0) {
		t.Fatal("served report carries wall-clock timings; replays would not be byte-identical")
	}

	// Replay: answered from the store, byte-identical document.
	code, _, data = postJSON(t, ts.URL+"/v1/attacks", body)
	if code != http.StatusOK {
		t.Fatalf("replay: HTTP %d: %s", code, data)
	}
	st2 := decodeStatus(t, data)
	if st2.Cache != "hit" {
		t.Fatalf("replay cache %q, want hit", st2.Cache)
	}
	code, _, rep2 := getBody(t, ts.URL+"/v1/attacks/"+st2.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("replay report: HTTP %d", code)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("cached replay is not byte-identical:\n%s\n---\n%s", rep1, rep2)
	}

	// The job left its marks: attack metrics on /metrics, attack events
	// in the flight recorder.
	code, _, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, want := range []string{"serve_attack_jobs_total 1", "serve_attack_keys_recovered_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if srv.atkMetrics.satIters.Value() < 1 || srv.atkMetrics.satSolves.Value() < 1 {
		t.Errorf("solver metrics not accumulated: iters=%d solves=%d",
			srv.atkMetrics.satIters.Value(), srv.atkMetrics.satSolves.Value())
	}
	code, _, events := getBody(t, ts.URL+"/debug/events?cat=attack")
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	for _, want := range []string{`"event": "submit"`, `"event": "report"`} {
		if !strings.Contains(string(events), want) {
			t.Errorf("flight recorder missing attack %s event:\n%s", want, events)
		}
	}
}
