package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// StoreConfig sizes the content-addressed result store.
type StoreConfig struct {
	// MaxEntries caps the number of in-memory reports (LRU-evicted);
	// <= 0 uses 512.
	MaxEntries int
	// MaxBytes caps the summed in-memory report size; <= 0 uses 128 MiB.
	MaxBytes int64
	// Dir, when non-empty, persists every report as <key>.json in this
	// directory (created on demand). Entries evicted from memory — or
	// lost to a restart — are transparently re-read from disk, so
	// identical re-submissions stay cache hits across process lives.
	Dir string
	// Flight, when non-nil, receives one flight-recorder event per
	// store decision (hit, miss, disk-hit, put, evict).
	Flight *flight.Recorder
}

func (c StoreConfig) maxEntries() int {
	if c.MaxEntries > 0 {
		return c.MaxEntries
	}
	return 512
}

func (c StoreConfig) maxBytes() int64 {
	if c.MaxBytes > 0 {
		return c.MaxBytes
	}
	return 128 << 20
}

// Store is the content-addressed analysis-result store: finished
// run-report documents keyed by the canonical SHA-256 of their inputs
// (see analysisKey). The in-memory tier is a byte- and entry-bounded
// LRU; the optional disk tier is one JSON file per key, written
// atomically. All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	cfg   StoreConfig
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	bytes int64

	hits, misses, diskHits *obs.Counter
	entriesG, bytesG       *obs.Gauge
}

type storeEntry struct {
	key  string
	data []byte
}

// NewStore returns an empty store, creating the disk directory when
// configured. Metrics register in reg (may be nil):
// serve_store_{hits,misses,disk_hits}_total and
// serve_store_{entries,bytes}.
func NewStore(cfg StoreConfig, reg *obs.Registry) (*Store, error) {
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: store dir: %w", err)
		}
	}
	reg.SetHelp("serve_store_hits_total", "Analysis results answered from the content-addressed store.")
	reg.SetHelp("serve_store_misses_total", "Analysis submissions not present in the store.")
	return &Store{
		cfg:      cfg,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		hits:     reg.Counter("serve_store_hits_total"),
		misses:   reg.Counter("serve_store_misses_total"),
		diskHits: reg.Counter("serve_store_disk_hits_total"),
		entriesG: reg.Gauge("serve_store_entries"),
		bytesG:   reg.Gauge("serve_store_bytes"),
	}, nil
}

// path returns the disk file of a key. Keys are lowercase hex SHA-256
// digests (validated at construction in analysisKey), so they are
// path-safe by construction.
func (s *Store) path(key string) string {
	return filepath.Join(s.cfg.Dir, key+".json")
}

// Get returns the stored report bytes for key. Memory misses fall back
// to the disk tier (re-populating memory). The returned slice is the
// cached backing array — callers must not mutate it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*storeEntry).data
		s.mu.Unlock()
		s.hits.Inc()
		s.event("hit", key)
		return data, true
	}
	s.mu.Unlock()
	if s.cfg.Dir != "" {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			s.hits.Inc()
			s.diskHits.Inc()
			s.event("disk-hit", key)
			s.insert(key, data, false) // already on disk
			return data, true
		}
	}
	s.misses.Inc()
	s.event("miss", key)
	return nil, false
}

// event records one store flight event (no-op without a recorder).
func (s *Store) event(name, key string) {
	s.cfg.Flight.Record(flight.Event{Cat: "store", Name: name, Detail: shortKey(key)})
}

// Contains reports whether key is resident (memory or disk) without
// touching hit/miss accounting or LRU order.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	_, ok := s.byKey[key]
	s.mu.Unlock()
	if !ok && s.cfg.Dir != "" {
		_, err := os.Stat(s.path(key))
		ok = err == nil
	}
	return ok
}

// Put stores the report bytes under key in memory and, when
// configured, on disk (atomic temp-file + rename, so a crashed write
// never leaves a truncated report behind).
func (s *Store) Put(key string, data []byte) error {
	s.insert(key, data, true)
	s.event("put", key)
	if s.cfg.Dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(s.cfg.Dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: store write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	return nil
}

// PutProfile persists a captured pprof blob next to the cached report
// (<key>.<kind>.pprof) when the store has a disk tier; memory-only
// stores keep profiles on the job record alone. Written atomically
// like reports.
func (s *Store) PutProfile(key, kind string, data []byte) error {
	if s.cfg.Dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(s.cfg.Dir, "prof-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: profile write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: profile write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: profile write: %w", err)
	}
	dst := filepath.Join(s.cfg.Dir, key+"."+kind+".pprof")
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: profile write: %w", err)
	}
	return nil
}

// insert adds or refreshes the in-memory entry and evicts LRU tails
// beyond the entry and byte bounds.
func (s *Store) insert(key string, data []byte, overwrite bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		if overwrite {
			e := el.Value.(*storeEntry)
			s.bytes += int64(len(data)) - int64(len(e.data))
			e.data = data
		}
		s.ll.MoveToFront(el)
	} else {
		s.byKey[key] = s.ll.PushFront(&storeEntry{key: key, data: data})
		s.bytes += int64(len(data))
	}
	for s.ll.Len() > s.cfg.maxEntries() || (s.bytes > s.cfg.maxBytes() && s.ll.Len() > 1) {
		back := s.ll.Back()
		e := back.Value.(*storeEntry)
		s.ll.Remove(back)
		delete(s.byKey, e.key)
		s.bytes -= int64(len(e.data))
		s.event("evict", e.key)
	}
	s.entriesG.Set(int64(s.ll.Len()))
	s.bytesG.Set(s.bytes)
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
