package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/hybrid"
	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// sessionSchema versions the persisted session record.
const sessionSchema = "rsnsec.session/v1"

// sessionSuffix decorates a content key into its session-record store
// key; the disk tier then writes <key>.session.json next to the
// report, via the same atomic temp-file + rename path.
const sessionSuffix = ".session"

// sessionRecord is the durable form of an analysis session: everything
// needed to rebuild the live state after eviction or a restart. The
// sources (ICL + optional bench) re-parse into the exact flip-flop
// numbering the snapshot's attribute arrays are indexed by, the script
// chain replays the base network into the session's derived wiring,
// and the snapshot skips re-propagation entirely. Snapshot is the
// hybrid.SnapshotSchema encoding (JSON carries it base64).
type sessionRecord struct {
	Schema   string            `json:"schema"`
	Key      string            `json:"key"`
	Label    string            `json:"label"`
	Mode     string            `json:"mode"`
	ICL      string            `json:"icl"`
	Bench    string            `json:"bench,omitempty"`
	Scripts  []*rsn.EditScript `json:"scripts,omitempty"`
	Snapshot []byte            `json:"snapshot"`
}

// session is the live state of one analysis a delta can build on. The
// mutex serializes hydration and delta runs on the same session; the
// analysis pointer may be shared along a delta chain (every derived
// session of a wiring-only chain reuses one fixed infrastructure).
type session struct {
	mu       sync.Mutex
	hydrated bool

	key       string
	label     string
	mode      dep.Mode
	iclText   string
	benchText string
	scripts   []*rsn.EditScript

	an       *hybrid.Analysis
	nw       *rsn.Network // derived input wiring (pre-resolution)
	circuit  *netlist.Netlist
	internal []netlist.FFID
	spec     *secspec.Spec

	lastUse time.Time // guarded by Server.sessMu
}

func modeName(m dep.Mode) string {
	if m == dep.StructuralApprox {
		return "structural"
	}
	return "exact"
}

func parseModeName(s string) (dep.Mode, error) {
	switch s {
	case "", "exact":
		return dep.Exact, nil
	case "structural":
		return dep.StructuralApprox, nil
	}
	return dep.Exact, fmt.Errorf("unknown mode %q", s)
}

// maxSessions resolves the live-session cap.
func (c *Config) maxSessions() int {
	if c.MaxSessions > 0 {
		return c.MaxSessions
	}
	return 16
}

// registerSession installs a live session and evicts the
// least-recently-used hydrated session beyond the cap. Evicted
// sessions stay resumable through their persisted records.
func (s *Server) registerSession(sess *session) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess.lastUse = time.Now()
	s.sessions[sess.key] = sess
	for len(s.sessions) > s.cfg.maxSessions() {
		var oldest *session
		for _, cand := range s.sessions {
			if cand == sess || !cand.hydrated {
				continue
			}
			if oldest == nil || cand.lastUse.Before(oldest.lastUse) {
				oldest = cand
			}
		}
		if oldest == nil {
			return
		}
		delete(s.sessions, oldest.key)
	}
}

// saveSession persists the session record through the store (memory
// LRU + atomic disk write when a store dir is configured) and
// registers the live session. The snapshot is the fixed point of the
// session's derived input wiring — exactly the seed the next delta's
// dirty-cone propagation needs.
func (s *Server) saveSession(sess *session) {
	snap, err := sess.an.Snapshot(sess.nw)
	if err != nil {
		s.log.Warn("session snapshot failed", "key", shortKey(sess.key), "err", err)
		return
	}
	rec := sessionRecord{
		Schema: sessionSchema, Key: sess.key, Label: sess.label,
		Mode: modeName(sess.mode), ICL: sess.iclText, Bench: sess.benchText,
		Scripts: sess.scripts, Snapshot: snap.Encode(),
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		s.log.Warn("session encode failed", "key", shortKey(sess.key), "err", err)
		return
	}
	if err := s.store.Put(sess.key+sessionSuffix, data); err != nil {
		s.log.Warn("session put failed", "key", shortKey(sess.key), "err", err)
	}
	s.registerSession(sess)
}

// hasSession reports whether a delta can build on the key: a live
// session exists or a persisted record is resident (memory or disk).
func (s *Server) hasSession(key string) bool {
	s.sessMu.Lock()
	_, ok := s.sessions[key]
	s.sessMu.Unlock()
	return ok || s.store.Contains(key+sessionSuffix)
}

// sessionFor returns the hydrated live session of a content key,
// re-hydrating it from the persisted record when needed: re-parse the
// recorded sources, replay the script chain, rebuild the dependency
// analysis once, and restore the persisted fixed point — after which
// the chain continues incrementally as if the process had never
// stopped. ctx cancels the dependency rebuild.
func (s *Server) sessionFor(ctx context.Context, key string) (*session, error) {
	s.sessMu.Lock()
	sess, ok := s.sessions[key]
	if !ok {
		sess = &session{key: key}
		s.sessions[key] = sess
	}
	sess.lastUse = time.Now()
	s.sessMu.Unlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.hydrated {
		return sess, nil
	}
	if err := s.hydrateSession(ctx, sess); err != nil {
		// Drop the stub so a later delta retries from the record.
		s.sessMu.Lock()
		if s.sessions[key] == sess {
			delete(s.sessions, key)
		}
		s.sessMu.Unlock()
		return nil, err
	}
	sess.hydrated = true
	return sess, nil
}

// hydrateSession fills a stub session from its persisted record.
// Called with sess.mu held.
func (s *Server) hydrateSession(ctx context.Context, sess *session) error {
	data, ok := s.store.Get(sess.key + sessionSuffix)
	if !ok {
		return fmt.Errorf("no session record for analysis %s (memory-only store, or the base was never analyzed here)", shortKey(sess.key))
	}
	var rec sessionRecord
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return fmt.Errorf("session record %s: %w", shortKey(sess.key), err)
	}
	if rec.Schema != sessionSchema {
		return fmt.Errorf("session record %s: schema %q, want %q", shortKey(sess.key), rec.Schema, sessionSchema)
	}
	mode, err := parseModeName(rec.Mode)
	if err != nil {
		return fmt.Errorf("session record %s: %w", shortKey(sess.key), err)
	}
	p, err := parseICLSubmission(rec.ICL, rec.Bench)
	if err != nil {
		return fmt.Errorf("session record %s: %w", shortKey(sess.key), err)
	}
	nw := p.nw
	for i, scr := range rec.Scripts {
		if nw, err = scr.Apply(nw); err != nil {
			return fmt.Errorf("session record %s: replay script %d: %w", shortKey(sess.key), i, err)
		}
	}
	an, err := hybrid.NewAnalysisOpts(nw, p.circuit, p.internal, p.spec, mode,
		engine.Options{Workers: s.cfg.EngineWorkers, Context: ctx, Stats: s.stats})
	if err != nil {
		return fmt.Errorf("session record %s: rebuild analysis: %w", shortKey(sess.key), err)
	}
	// The per-delta runs thread their own engine options (and job
	// context) via WithEngine; the long-lived analysis must not retain
	// this hydration's context.
	an = an.WithEngine(engine.Options{Workers: s.cfg.EngineWorkers, Stats: s.stats})
	snap, err := hybrid.InitFrom(nw, rec.Snapshot)
	if err != nil {
		return fmt.Errorf("session record %s: %w", shortKey(sess.key), err)
	}
	if err := an.Restore(snap); err != nil {
		return fmt.Errorf("session record %s: %w", shortKey(sess.key), err)
	}
	sess.label = rec.Label
	sess.mode = mode
	sess.iclText = rec.ICL
	sess.benchText = rec.Bench
	sess.scripts = rec.Scripts
	sess.an = an
	sess.nw = nw
	sess.circuit = p.circuit
	sess.internal = p.internal
	sess.spec = p.spec
	s.log.Info("session re-hydrated", "key", shortKey(sess.key), "scripts_replayed", len(rec.Scripts))
	return nil
}
