package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Scheduler errors surfaced to the HTTP layer.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — explicit backpressure (HTTP 429) instead of unbounded
	// buffering.
	ErrQueueFull = errors.New("serve: analysis queue full")
	// ErrDraining rejects a submission during graceful shutdown.
	ErrDraining = errors.New("serve: scheduler draining")
	// ErrUnknownJob marks a job id with no record.
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrJobFinished rejects canceling an already-finished job.
	ErrJobFinished = errors.New("serve: job already finished")
)

// JobState enumerates the lifecycle of one analysis job.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Finished reports whether the state is terminal.
func (s JobState) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one analysis unit of work. Mutable fields are guarded by the
// owning scheduler's lock; Done exposes completion to waiters.
type Job struct {
	// ID is the externally visible job identifier.
	ID string
	// Key is the content address of the job's inputs (and of its result
	// in the store).
	Key string
	// Label is a human-readable tag (benchmark name or network name).
	Label string
	// Priority orders the queue: higher runs first, FIFO within a
	// priority.
	Priority int
	// Cache records how the submission was satisfied: "miss" (fresh
	// run), "coalesced" (joined an in-flight identical job) or "hit"
	// (answered from the store).
	Cache string
	// RequestID and TraceID carry the identity of the submitting HTTP
	// request (empty for direct scheduler use), correlating the job
	// record with the access log, span tree and flight recorder.
	// Immutable after Submit.
	RequestID string
	TraceID   string
	// Payload carries the resolved analysis through to the run
	// function.
	Payload any

	state      JobState
	err        string
	result     []byte
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	// Per-job tracing, set by the server's dispatch wrapper before the
	// run function executes (worker-goroutine access only).
	tracer *obs.Tracer
	span   *obs.Span
	// Captured pprof blob (scheduler-lock guarded, like state).
	profileKind string
	profile     []byte

	ctx       context.Context
	cancel    context.CancelFunc
	canceling bool
	done      chan struct{}
	seq       uint64
	heapIndex int
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is an immutable snapshot of one job, JSON-shaped for the
// HTTP API.
type JobStatus struct {
	ID         string   `json:"id"`
	Key        string   `json:"key"`
	Label      string   `json:"label,omitempty"`
	State      JobState `json:"state"`
	Cache      string   `json:"cache,omitempty"`
	Priority   int      `json:"priority,omitempty"`
	Error      string   `json:"error,omitempty"`
	RequestID  string   `json:"request_id,omitempty"`
	TraceID    string   `json:"trace_id,omitempty"`
	EnqueuedAt string   `json:"enqueued_at,omitempty"`
	StartedAt  string   `json:"started_at,omitempty"`
	FinishedAt string   `json:"finished_at,omitempty"`
	ReportURL  string   `json:"report_url,omitempty"`
	ProfileURL string   `json:"profile_url,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// statusLocked snapshots the job under the scheduler lock.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.ID, Key: j.Key, Label: j.Label, State: j.state,
		Cache: j.Cache, Priority: j.Priority, Error: j.err,
		RequestID: j.RequestID, TraceID: j.TraceID,
		EnqueuedAt: stamp(j.enqueuedAt), StartedAt: stamp(j.startedAt),
		FinishedAt: stamp(j.finishedAt),
	}
	if j.state == StateDone {
		st.ReportURL = "/v1/analyses/" + j.ID + "/report"
	}
	if len(j.profile) > 0 {
		st.ProfileURL = "/v1/analyses/" + j.ID + "/profile"
	}
	return st
}

// jobQueue is a max-heap by (priority, arrival order).
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}
func (q *jobQueue) Push(x any) {
	j := x.(*Job)
	j.heapIndex = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*q = old[:n-1]
	return j
}

// SchedulerConfig sizes the job scheduler.
type SchedulerConfig struct {
	// Workers is the number of concurrently running analysis jobs;
	// <= 0 uses 1 (each job parallelizes internally over the engine's
	// SAT worker pool, so one job already saturates the CPUs).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail with ErrQueueFull. <= 0 uses 64.
	QueueDepth int
	// JobTimeout caps one job's run time (0 = no cap). A request may
	// lower but never raise it.
	JobTimeout time.Duration
	// FinishedJobs bounds the retained finished-job records (status
	// remains queryable until evicted); <= 0 uses 1024.
	FinishedJobs int
	// Flight, when non-nil, receives one flight-recorder event per
	// scheduler decision (enqueue, coalesce, reject, cancel) and job
	// lifecycle transition (start, done, failed, canceled, timeout).
	Flight *flight.Recorder
}

func (c SchedulerConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 1
}

func (c SchedulerConfig) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c SchedulerConfig) finishedJobs() int {
	if c.FinishedJobs > 0 {
		return c.FinishedJobs
	}
	return 1024
}

// runFunc executes one job and returns the serialized report.
type runFunc func(ctx context.Context, j *Job) ([]byte, error)

// Scheduler runs analysis jobs on a bounded worker pool over a
// priority FIFO queue with explicit backpressure, deduplicates
// identical in-flight submissions, supports per-job timeouts and
// client cancellation, and drains gracefully on shutdown.
type Scheduler struct {
	cfg SchedulerConfig
	run runFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue
	byID     map[string]*Job
	byKey    map[string]*Job // queued or running jobs, for coalescing
	finished []string        // completion order, for record eviction
	seq      uint64
	closed   bool
	wg       sync.WaitGroup

	queueDepthG, runningG                    *obs.Gauge
	executed, coalesced, rejected, canceledC *obs.Counter
	doneC, failedC                           *obs.Counter
}

// NewScheduler starts cfg.Workers workers executing run. Metrics
// register in reg (may be nil): serve_queue_depth, serve_jobs_running,
// serve_jobs_{executed,coalesced,rejected,canceled,done,failed}_total.
func NewScheduler(cfg SchedulerConfig, reg *obs.Registry, run runFunc) *Scheduler {
	reg.SetHelp("serve_queue_depth", "Queued (not yet running) analysis jobs.")
	reg.SetHelp("serve_jobs_coalesced_total", "Submissions joined onto an identical in-flight job.")
	s := &Scheduler{
		cfg:         cfg,
		run:         run,
		byID:        make(map[string]*Job),
		byKey:       make(map[string]*Job),
		queueDepthG: reg.Gauge("serve_queue_depth"),
		runningG:    reg.Gauge("serve_jobs_running"),
		executed:    reg.Counter("serve_jobs_executed_total"),
		coalesced:   reg.Counter("serve_jobs_coalesced_total"),
		rejected:    reg.Counter("serve_jobs_rejected_total"),
		canceledC:   reg.Counter("serve_jobs_canceled_total"),
		doneC:       reg.Counter("serve_jobs_done_total"),
		failedC:     reg.Counter("serve_jobs_failed_total"),
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < cfg.workers(); w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues a job for key. When an identical job is already
// queued or running, the submission coalesces onto it (the returned
// job is the existing one and joined is true) — concurrent identical
// submissions share one engine run. payload, label, priority and
// timeout apply only to freshly created jobs.
//
// ctx is the submitting request's context: its obs.ReqInfo (request
// ID, trace context) is copied onto the job record and re-attached to
// the job's own run context, so logs, spans and flight events emitted
// by the worker goroutine — long after the HTTP handler returned —
// still correlate back to the request. The job's lifetime is NOT
// bound to ctx (a submission outlives its HTTP request by design).
func (s *Scheduler) Submit(ctx context.Context, key, label string, priority int, timeout time.Duration, payload any) (j *Job, joined bool, err error) {
	ri, _ := obs.ReqInfoFrom(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrDraining
	}
	if existing, ok := s.byKey[key]; ok {
		s.coalesced.Inc()
		s.event("sched", "coalesce", existing, ri, "joined by "+orUnknown(ri.RequestID))
		return existing, true, nil
	}
	if len(s.queue) >= s.cfg.queueDepth() {
		s.rejected.Inc()
		s.event("sched", "reject", nil, ri, "queue full ("+shortKey(key)+")")
		return nil, false, ErrQueueFull
	}
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	s.seq++
	j = &Job{
		ID:         fmt.Sprintf("a%06x-%.12s", s.seq, key),
		Key:        key,
		Label:      label,
		Priority:   priority,
		Cache:      "miss",
		RequestID:  ri.RequestID,
		TraceID:    ri.Trace.TraceID,
		Payload:    payload,
		state:      StateQueued,
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
		seq:        s.seq,
	}
	base := obs.WithReqInfo(context.Background(), ri)
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(base, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(base)
	}
	heap.Push(&s.queue, j)
	s.byID[j.ID] = j
	s.byKey[key] = j
	s.queueDepthG.Set(int64(len(s.queue)))
	s.event("sched", "enqueue", j, ri, label)
	s.cond.Signal()
	return j, false, nil
}

// event records one flight-recorder event (no-op without a recorder).
// Safe to call with the scheduler lock held: the recorder takes only
// its own short per-ring lock.
func (s *Scheduler) event(cat, name string, j *Job, ri obs.ReqInfo, detail string) {
	ev := flight.Event{Cat: cat, Name: name, Detail: detail,
		RequestID: ri.RequestID, TraceID: ri.Trace.TraceID}
	if j != nil {
		ev.Job = j.ID
		if ev.RequestID == "" {
			ev.RequestID, ev.TraceID = j.RequestID, j.TraceID
		}
	}
	s.cfg.Flight.Record(ev)
}

func orUnknown(s string) string {
	if s == "" {
		return "unidentified request"
	}
	return s
}

// InsertFinished registers an already-satisfied submission (a store
// hit) as a finished job record so its status and report stay
// addressable over the jobs API. ctx carries the submitting request's
// identity, like Submit.
func (s *Scheduler) InsertFinished(ctx context.Context, key, label, cache string, result []byte) *Job {
	ri, _ := obs.ReqInfoFrom(ctx)
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:         fmt.Sprintf("a%06x-%.12s", s.seq, key),
		Key:        key,
		Label:      label,
		Cache:      cache,
		RequestID:  ri.RequestID,
		TraceID:    ri.Trace.TraceID,
		state:      StateDone,
		result:     result,
		enqueuedAt: now,
		finishedAt: now,
		done:       make(chan struct{}),
		seq:        s.seq,
	}
	close(j.done)
	s.byID[j.ID] = j
	s.recordFinishedLocked(j)
	s.event("sched", cache, j, ri, label)
	return j
}

// worker executes queued jobs until the scheduler closes and the queue
// drains.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		j.state = StateRunning
		j.startedAt = time.Now()
		s.queueDepthG.Set(int64(len(s.queue)))
		s.runningG.Add(1)
		waited := j.startedAt.Sub(j.enqueuedAt)
		s.mu.Unlock()

		s.event("job", "start", j, obs.ReqInfo{}, "waited "+waited.Round(time.Millisecond).String())
		s.executed.Inc()
		result, err := s.run(j.ctx, j)
		j.cancel() // release the timeout timer

		s.mu.Lock()
		j.finishedAt = time.Now()
		evName, evDetail := "done", j.finishedAt.Sub(j.startedAt).Round(time.Millisecond).String()
		switch {
		case err == nil:
			j.state = StateDone
			j.result = result
			s.doneC.Inc()
		case j.canceling || errors.Is(err, context.Canceled):
			j.state = StateCanceled
			j.err = "canceled"
			s.canceledC.Inc()
			evName, evDetail = "canceled", ""
		default:
			j.state = StateFailed
			j.err = err.Error()
			evName, evDetail = "failed", j.err
			if errors.Is(err, context.DeadlineExceeded) {
				j.err = "timeout: " + j.err
				evName = "timeout"
			}
			s.failedC.Inc()
		}
		delete(s.byKey, j.Key)
		s.runningG.Add(-1)
		s.recordFinishedLocked(j)
		close(j.done)
		s.mu.Unlock()
		s.event("job", evName, j, obs.ReqInfo{}, evDetail)
	}
}

// recordFinishedLocked tracks completion order and evicts the oldest
// finished records beyond the retention bound.
func (s *Scheduler) recordFinishedLocked(j *Job) {
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.finishedJobs() {
		delete(s.byID, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// SetProfile attaches a captured pprof blob to the job record.
func (s *Scheduler) SetProfile(j *Job, kind string, data []byte) {
	s.mu.Lock()
	j.profileKind = kind
	j.profile = data
	s.mu.Unlock()
}

// Profile returns the job's captured pprof blob (empty when the job
// did not request profiling or capture failed) with a status snapshot.
func (s *Scheduler) Profile(id string) (kind string, data []byte, st JobStatus, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return "", nil, JobStatus{}, ErrUnknownJob
	}
	return j.profileKind, j.profile, j.statusLocked(), nil
}

// Status returns a snapshot of the identified job.
func (s *Scheduler) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.statusLocked(), nil
}

// Result returns the finished job's report bytes.
func (s *Scheduler) Result(id string) ([]byte, JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return nil, JobStatus{}, ErrUnknownJob
	}
	return j.result, j.statusLocked(), nil
}

// Cancel terminates the identified job: a queued job is removed from
// the queue immediately; a running job has its context canceled (the
// engine honors cancellation between SAT queries, freeing the worker).
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		heap.Remove(&s.queue, j.heapIndex)
		s.queueDepthG.Set(int64(len(s.queue)))
		delete(s.byKey, j.Key)
		j.cancel()
		j.state = StateCanceled
		j.err = "canceled"
		j.finishedAt = time.Now()
		s.canceledC.Inc()
		s.recordFinishedLocked(j)
		close(j.done)
		s.event("sched", "cancel", j, obs.ReqInfo{}, "canceled while queued")
	case StateRunning:
		j.canceling = true
		j.cancel()
		s.event("sched", "cancel", j, obs.ReqInfo{}, "cancel requested while running")
	default:
		return j.statusLocked(), ErrJobFinished
	}
	return j.statusLocked(), nil
}

// Draining reports whether the scheduler has stopped accepting
// submissions (graceful shutdown in progress).
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Queued and Running report current load (for tests and logs).
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// LoadSnapshot is one point-in-time view of scheduler pressure, the
// raw material of the autoscale load signals (see load.go).
type LoadSnapshot struct {
	// Workers is the pool size; Running of them are busy.
	Workers int
	Running int
	// Queued is the number of jobs waiting for a worker; OldestWait is
	// how long the longest-waiting one has been queued.
	Queued     int
	OldestWait time.Duration
	// Backlog is the predicted per-worker work ahead: the cost-model
	// estimates of every queued job plus the unfinished remainder of
	// every running one, divided by the pool size. Zero when no cost
	// function is given.
	Backlog time.Duration
}

// Load snapshots the scheduler's pressure at time now. cost, when
// non-nil, estimates one job's total run time (see Server.jobCost); it
// is called under the scheduler lock and must not call back in.
func (s *Scheduler) Load(now time.Time, cost func(*Job) time.Duration) LoadSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := LoadSnapshot{Workers: s.cfg.workers(), Queued: len(s.queue)}
	var total time.Duration
	for _, j := range s.byKey {
		switch j.state {
		case StateRunning:
			ls.Running++
			if cost != nil {
				if rem := cost(j) - now.Sub(j.startedAt); rem > 0 {
					total += rem
				}
			}
		case StateQueued:
			if w := now.Sub(j.enqueuedAt); w > ls.OldestWait {
				ls.OldestWait = w
			}
			if cost != nil {
				total += cost(j)
			}
		}
	}
	ls.Backlog = total / time.Duration(ls.Workers)
	return ls
}

// Running returns the number of jobs currently executing.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.byKey {
		if j.state == StateRunning {
			n++
		}
	}
	return n
}

// Drain stops accepting submissions, lets queued and running jobs
// finish, and returns when the pool is idle. When ctx expires first,
// every remaining job is canceled and Drain waits for the workers to
// acknowledge, so no accepted job is silently abandoned mid-run: it
// either finished or is marked canceled.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: cancel everything still in flight and wait for
	// the workers to wind down.
	s.mu.Lock()
	for _, j := range s.byKey {
		j.canceling = true
		j.cancel()
	}
	// Queued jobs still in the heap are canceled outright.
	for len(s.queue) > 0 {
		j := heap.Pop(&s.queue).(*Job)
		delete(s.byKey, j.Key)
		j.cancel()
		j.state = StateCanceled
		j.err = "canceled: shutdown"
		j.finishedAt = time.Now()
		s.canceledC.Inc()
		s.recordFinishedLocked(j)
		close(j.done)
		s.event("sched", "cancel", j, obs.ReqInfo{}, "shutdown drain deadline")
	}
	s.queueDepthG.Set(0)
	s.mu.Unlock()
	<-idle
	return ctx.Err()
}
