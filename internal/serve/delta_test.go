package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/reportdiff"
	"repro/internal/rsn"
)

// newTestListener serves an already-built Server on an httptest
// listener (testServer's sibling for tests that manage the Server
// lifecycle themselves, e.g. to restart over one store directory).
func newTestListener(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestDeltaSchedKeyHygiene pins the coalescing contract of delta jobs:
// the scheduler key carries a "#delta" decoration, so a delta can only
// ever coalesce with another delta of the identical (base key, script)
// pair — never with a plain submission, whatever its content key.
func TestDeltaSchedKeyHygiene(t *testing.T) {
	scr, err := (&rsn.EditScript{Ops: []rsn.EditOp{
		{Op: rsn.OpCutReconnect, Pin: "R1", Src: "SI"},
	}}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	d := &analysis{key: "k", script: scr}
	if got := d.schedKey(); got != "k#delta" {
		t.Fatalf("delta sched key = %q, want k#delta", got)
	}
	plain := &analysis{key: "k"}
	if got := plain.schedKey(); got != "k" {
		t.Fatalf("plain sched key = %q, want k", got)
	}
	if d.schedKey() == plain.schedKey() {
		t.Fatal("a delta job must never share a scheduler key with a plain job")
	}
	if contentKey(d.schedKey()) != "k" || contentKey("k#profile-cpu") != "k" || contentKey("k") != "k" {
		t.Fatal("contentKey must strip scheduler decorations")
	}

	// The derived key depends only on the canonicalized script and the
	// base key.
	loose, err := (&rsn.EditScript{Ops: []rsn.EditOp{
		{Op: "CUT-RECONNECT", Pin: "r1", Src: "si"},
	}}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if deltaKey("base", scr) != deltaKey("base", loose) {
		t.Fatal("canonically equal scripts must derive the same key")
	}
	if deltaKey("base", scr) == deltaKey("other", scr) {
		t.Fatal("the base key must participate in the derived key")
	}
	other, _ := (&rsn.EditScript{Ops: []rsn.EditOp{
		{Op: rsn.OpCutReconnect, Pin: "R2", Src: "SI"},
	}}).Canonical()
	if deltaKey("base", scr) == deltaKey("base", other) {
		t.Fatal("different scripts must derive different keys")
	}
}

// TestDeltaCoalescingAndValidation drives the delta endpoint against a
// stubbed job body: identical (base, script) submissions coalesce onto
// one job, different scripts get their own, and the endpoint's 4xx
// paths hold.
func TestDeltaCoalescingAndValidation(t *testing.T) {
	release := make(chan struct{})
	srv, ts := testServer(t, Config{}, func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte("{}"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	baseKey := strings.Repeat("a", 64)
	// A session record is what entitles a key to take deltas; the stub
	// body never hydrates it, so a placeholder is enough.
	if err := srv.store.Put(baseKey+sessionSuffix, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	deltaURL := ts.URL + "/v1/analyses/" + baseKey + "/delta"
	body := `{"script":{"ops":[{"op":"cut-reconnect","pin":"R1","src":"SI"}]}}`

	code, _, data := postJSON(t, deltaURL, body)
	if code != http.StatusAccepted {
		t.Fatalf("first delta: HTTP %d: %s", code, data)
	}
	st1 := decodeStatus(t, data)
	if st1.Cache != "miss" {
		t.Fatalf("first delta cache = %q", st1.Cache)
	}
	if !strings.HasSuffix(st1.Key, "#delta") {
		t.Fatalf("delta sched key %q lacks the #delta decoration", st1.Key)
	}

	code, _, data = postJSON(t, deltaURL, body)
	if code != http.StatusAccepted {
		t.Fatalf("identical delta: HTTP %d: %s", code, data)
	}
	st2 := decodeStatus(t, data)
	if st2.ID != st1.ID || st2.Cache != "coalesced" {
		t.Fatalf("identical delta did not coalesce: %+v vs %+v", st2, st1)
	}

	// A canonically equal spelling coalesces too.
	code, _, data = postJSON(t, deltaURL, `{"script":{"ops":[{"op":"CUT-RECONNECT","pin":"r1","src":"si"}]}}`)
	if code != http.StatusAccepted {
		t.Fatalf("respelled delta: HTTP %d: %s", code, data)
	}
	if st := decodeStatus(t, data); st.ID != st1.ID {
		t.Fatal("canonically equal script did not coalesce")
	}

	// A different script is a different job.
	code, _, data = postJSON(t, deltaURL, `{"script":{"ops":[{"op":"cut-reconnect","pin":"R2","src":"SI"}]}}`)
	if code != http.StatusAccepted {
		t.Fatalf("different delta: HTTP %d: %s", code, data)
	}
	if st := decodeStatus(t, data); st.ID == st1.ID {
		t.Fatal("different script coalesced onto the same job")
	}

	// Validation and resolution failures.
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown base", ts.URL + "/v1/analyses/nope/delta", body, http.StatusNotFound},
		{"no session", ts.URL + "/v1/analyses/" + strings.Repeat("b", 64) + "/delta", body, http.StatusConflict},
		{"empty ops", deltaURL, `{"script":{"ops":[]}}`, http.StatusBadRequest},
		{"no script", deltaURL, `{}`, http.StatusBadRequest},
		{"unknown op", deltaURL, `{"script":{"ops":[{"op":"swap","pin":"R0","src":"SI"}]}}`, http.StatusBadRequest},
		{"unknown field", deltaURL, `{"script":{"ops":[{"op":"connect","pin":"R0","src":"SI"}]},"x":1}`, http.StatusBadRequest},
		{"bad json", deltaURL, `{`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _, data := postJSON(t, c.url, c.body); code != c.want {
			t.Errorf("%s: HTTP %d (want %d): %s", c.name, code, c.want, data)
		}
	}

	// A delta against a still-running job is a 409: deltas build on
	// finished analyses only.
	code, _, data = postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("plain submit: HTTP %d: %s", code, data)
	}
	running := decodeStatus(t, data)
	if code, _, _ := postJSON(t, ts.URL+"/v1/analyses/"+running.ID+"/delta", body); code != http.StatusConflict {
		t.Fatalf("delta on running job: HTTP %d, want 409", code)
	}

	close(release)
	pollDone(t, ts.URL, st1.ID)
}

// deltaBody wraps an op list into a delta request body.
func deltaBody(ops string) string {
	return `{"script":{"ops":[` + ops + `]}}`
}

// runDelta posts a delta, waits for completion, and returns the decoded
// document plus its raw bytes and content key.
func runDelta(t *testing.T, baseURL, id, body string) (*reportdiff.DeltaDoc, []byte, string) {
	t.Helper()
	code, _, data := postJSON(t, baseURL+"/v1/analyses/"+id+"/delta", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("delta submit: HTTP %d: %s", code, data)
	}
	st := pollDone(t, baseURL, decodeStatus(t, data).ID)
	if st.State != StateDone {
		t.Fatalf("delta run: %+v", st)
	}
	code, h, rep := getBody(t, baseURL+st.ReportURL)
	if code != http.StatusOK {
		t.Fatalf("delta report: HTTP %d: %s", code, rep)
	}
	doc, err := reportdiff.ReadDeltaDoc(bytes.NewReader(rep))
	if err != nil {
		t.Fatalf("delta doc schema: %v\n%s", err, rep)
	}
	return doc, rep, h.Get("X-Content-Key")
}

// TestDeltaEndToEndRealEngine runs the incremental session flow against
// the real engine: ICL base analysis, a chain of two deltas, store-hit
// replay, and the document invariants (schema, parent keys, diff).
func TestDeltaEndToEndRealEngine(t *testing.T) {
	srv, ts := testServer(t, Config{Store: StoreConfig{Dir: t.TempDir()}}, nil)
	body, _ := json.Marshal(AnalysisRequest{ICL: serveICLSample})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("icl submit: HTTP %d: %s", code, data)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	if st.State != StateDone {
		t.Fatalf("icl run: %+v", st)
	}
	_, h, _ := getBody(t, ts.URL+st.ReportURL)
	baseKey := h.Get("X-Content-Key")
	if !isContentKey(baseKey) {
		t.Fatalf("X-Content-Key %q is not a raw content address", baseKey)
	}
	if !srv.hasSession(baseKey) {
		t.Fatal("finished ICL analysis left no session")
	}

	// Delta 1: rewire register C (R2) to scan-in.
	doc1, rep1, key1 := runDelta(t, ts.URL, st.ID, deltaBody(`{"op":"cut-reconnect","pin":"R2","src":"SI"}`))
	if doc1.Schema != reportdiff.DeltaSchema {
		t.Fatalf("doc schema %q", doc1.Schema)
	}
	if doc1.BaseKey != baseKey {
		t.Fatalf("doc base key %s, want %s", doc1.BaseKey, baseKey)
	}
	if doc1.Key != key1 || !isContentKey(key1) {
		t.Fatalf("doc key %s, header %s", doc1.Key, key1)
	}
	if doc1.ScriptOps != 1 || doc1.ScriptHash == "" {
		t.Fatalf("script metadata: %+v", doc1)
	}
	if doc1.Diff == nil {
		t.Fatal("doc diff missing")
	}
	row := doc1.Report.Benchmarks[0]
	if row.Runs+row.SkippedInsecureLogic != 1 {
		t.Fatalf("delta report row accounts %+v", row)
	}

	// Identical resubmission: served from the store, byte-identical.
	code, _, data = postJSON(t, ts.URL+"/v1/analyses/"+st.ID+"/delta", deltaBody(`{"op":"cut-reconnect","pin":"R2","src":"SI"}`))
	if code != http.StatusOK {
		t.Fatalf("replayed delta: HTTP %d: %s", code, data)
	}
	st2 := decodeStatus(t, data)
	if st2.Cache != "hit" {
		t.Fatalf("replayed delta cache = %q", st2.Cache)
	}
	_, _, rep2 := getBody(t, ts.URL+st2.ReportURL)
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("replayed delta document differs")
	}

	// Delta 2 chains on delta 1's job: its parent is delta 1's key.
	d1job := pollDone(t, ts.URL, st2.ID)
	doc2, _, _ := runDelta(t, ts.URL, d1job.ID, deltaBody(`{"op":"cut-reconnect","pin":"R2","src":"R1"}`))
	if doc2.BaseKey != doc1.Key {
		t.Fatalf("chained doc base key %s, want %s", doc2.BaseKey, doc1.Key)
	}

	// A benchmark-form submission has no session: deltas are refused.
	code, _, data = postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":3,"target_scan_ffs":60}`)
	if code != http.StatusAccepted {
		t.Fatalf("benchmark submit: HTTP %d: %s", code, data)
	}
	bj := pollDone(t, ts.URL, decodeStatus(t, data).ID)
	if code, _, _ := postJSON(t, ts.URL+"/v1/analyses/"+bj.ID+"/delta", deltaBody(`{"op":"cut-reconnect","pin":"R0","src":"SI"}`)); code != http.StatusConflict {
		t.Fatalf("delta on benchmark run: HTTP %d, want 409", code)
	}
}

// benchRow strips the timing fields from a report row, leaving the
// deterministic outcome (structure and change counts).
func benchRow(doc *reportdiff.DeltaDoc) string {
	b := doc.Report.Benchmarks[0]
	return fmt.Sprintf("%s r%d ff%d mx%d runs%d viol%v pure%v hyb%v tot%v",
		b.Name, b.Registers, b.ScanFFs, b.Muxes, b.Runs,
		b.AvgViolatingRegs, b.AvgPureChanges, b.AvgHybridChanges, b.AvgTotalChanges)
}

// TestDeltaRestartResume is the durability acceptance check: a delta
// chain interrupted by a process restart continues from the persisted
// session record — re-hydrated from disk via the raw content key — and
// produces the same content keys and analysis outcomes as an
// uninterrupted chain in a single process life.
func TestDeltaRestartResume(t *testing.T) {
	dir := t.TempDir()
	d1body := deltaBody(`{"op":"cut-reconnect","pin":"R2","src":"SI"}`)
	d2body := deltaBody(`{"op":"cut-reconnect","pin":"R2","src":"R1"}`)
	iclBody, _ := json.Marshal(AnalysisRequest{ICL: serveICLSample})

	submitICL := func(ts string) string {
		code, _, data := postJSON(t, ts+"/v1/analyses", string(iclBody))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("icl submit: HTTP %d: %s", code, data)
		}
		st := pollDone(t, ts, decodeStatus(t, data).ID)
		if st.State != StateDone {
			t.Fatalf("icl run: %+v", st)
		}
		return st.ID
	}

	// Life 1: base analysis + first delta, then a clean shutdown.
	srv1, err := New(Config{Store: StoreConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestListener(t, srv1)
	baseID := submitICL(ts1)
	doc1, _, key1 := runDelta(t, ts1, baseID, d1body)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("life-1 shutdown: %v", err)
	}
	cancel()

	// Life 2: a fresh process over the same store directory. The job
	// records of life 1 are gone; the chain continues from delta 1's
	// raw content key, re-hydrating the session from disk.
	srv2, err := New(Config{Store: StoreConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestListener(t, srv2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
	})
	if srv2.hasSession(key1) != true {
		t.Fatal("persisted session not visible after restart")
	}
	doc2, _, _ := runDelta(t, ts2, key1, d2body)
	if doc2.BaseKey != key1 {
		t.Fatalf("resumed doc base key %s, want %s", doc2.BaseKey, key1)
	}

	// Control: the identical chain in one uninterrupted life must agree
	// on every content key and every deterministic outcome field.
	srvC, err := New(Config{Store: StoreConfig{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	tsC := newTestListener(t, srvC)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srvC.Shutdown(ctx)
	})
	baseC := submitICL(tsC)
	doc1C, _, _ := runDelta(t, tsC, baseC, d1body)
	doc2C, _, _ := runDelta(t, tsC, doc1C.Key, d2body)
	if doc1C.Key != doc1.Key || doc2C.Key != doc2.Key {
		t.Fatalf("content keys diverge across restart:\n interrupted %s %s\n single life %s %s",
			doc1.Key, doc2.Key, doc1C.Key, doc2C.Key)
	}
	if benchRow(doc2) != benchRow(doc2C) {
		t.Fatalf("resumed outcome diverges:\n %s\n %s", benchRow(doc2), benchRow(doc2C))
	}
}

// TestSessionRegisterEviction checks the live-session LRU: the cap
// holds, the newest session survives, and eviction only forgets the
// in-memory state (persisted records keep the key delta-capable).
func TestSessionRegisterEviction(t *testing.T) {
	srv, err := New(Config{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	for i := 0; i < 3; i++ {
		srv.registerSession(&session{hydrated: true, key: fmt.Sprintf("k%d", i)})
	}
	srv.sessMu.Lock()
	defer srv.sessMu.Unlock()
	if len(srv.sessions) != 2 {
		t.Fatalf("%d live sessions, cap 2", len(srv.sessions))
	}
	if _, ok := srv.sessions["k2"]; !ok {
		t.Fatal("newest session evicted")
	}
	if _, ok := srv.sessions["k0"]; ok {
		t.Fatal("oldest session kept beyond the cap")
	}
}

func TestModeNameRoundTrip(t *testing.T) {
	for _, name := range []string{"exact", "structural"} {
		m, err := parseModeName(name)
		if err != nil {
			t.Fatal(err)
		}
		if modeName(m) != name {
			t.Fatalf("modeName(parseModeName(%q)) = %q", name, modeName(m))
		}
	}
	if _, err := parseModeName("psychic"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
