package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Handler returns the rsnserved HTTP API:
//
//	POST   /v1/analyses             submit (200 cached, 202 accepted, 429 full)
//	                                ?profile=cpu|heap forces a real run and
//	                                captures a pprof profile around it
//	POST   /v1/analyses/{id}/delta  submit an edit script against a finished
//	                                analysis's session; {id} is a job ID or a
//	                                raw content key (restart resume)
//	GET    /v1/analyses/{id}        job status
//	GET    /v1/analyses/{id}/report finished job's rsnsec.run-report/v1
//	GET    /v1/analyses/{id}/profile captured pprof blob (octet-stream)
//	DELETE /v1/analyses/{id}        cancel a queued or running job
//	POST   /v1/attacks              submit an obfuscated network for the
//	                                attack analysis (200 cached, 202
//	                                accepted; see attack.go)
//	GET    /v1/attacks/{id}         job status (alias of the analyses
//	                                status endpoint — attacks share the
//	                                job namespace)
//	GET    /v1/attacks/{id}/report  finished rsnsec.attack-report/v1
//	GET    /v1/load                 autoscale load signal (see load.go)
//	GET    /v1/slo                  SLO burn-rate status, rsnsec.slo-status/v1
//	                                (404 without -slo; see internal/obs/slo)
//	GET    /debug/events            flight-recorder events (?cat=, ?job=,
//	                                ?n=, ?since=<seq> for incremental tails)
//	GET    /debug/metrics/history   windowed metrics history (?name=, ?window=,
//	                                ?step=, ?fn=), rsnsec.metrics-history/v1
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness (503 while draining, saturated,
//	                                or a gate_ready SLO is breaching)
//	GET    /metrics                 Prometheus text metrics
//
// Every endpoint is instrumented with per-endpoint latency histograms
// and status-code counters on the server registry, and wrapped in the
// request-identity middleware: an X-Request-ID is accepted (or minted)
// and a W3C traceparent continued (or started), both echoed on the
// response and threaded through the request context into logs, spans,
// job records and flight events. One structured access-log line is
// emitted per request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/analyses", s.instrument("submit", s.handleSubmit))
	mux.Handle("POST /v1/analyses/{id}/delta", s.instrument("delta", s.handleDelta))
	mux.Handle("GET /v1/analyses/{id}", s.instrument("status", s.handleStatus))
	mux.Handle("GET /v1/analyses/{id}/report", s.instrument("report", s.handleReport))
	mux.Handle("GET /v1/analyses/{id}/profile", s.instrument("profile", s.handleProfile))
	mux.Handle("DELETE /v1/analyses/{id}", s.instrument("cancel", s.handleCancel))
	mux.Handle("POST /v1/attacks", s.instrument("attack", s.handleAttack))
	mux.Handle("GET /v1/attacks/{id}", s.instrument("status", s.handleStatus))
	mux.Handle("GET /v1/attacks/{id}/report", s.instrument("report", s.handleReport))
	mux.Handle("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	mux.Handle("GET /v1/load", s.instrument("load", s.handleLoad))
	mux.Handle("GET /v1/slo", s.instrument("slo", s.handleSLO))
	mux.Handle("GET /debug/events", s.instrument("events", s.handleEvents))
	mux.Handle("GET /debug/metrics/history", s.instrument("history", s.handleHistory))
	mux.Handle("GET /readyz", s.instrument("readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.sched.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		// A saturated server is alive but should not receive new
		// traffic: the predicted backlog says a submission now would
		// wait longer than the operator's bound.
		if s.cfg.SaturationThreshold > 0 {
			if ls := s.loadStatus(); ls.Saturated {
				writeJSON(w, http.StatusServiceUnavailable, map[string]any{
					"status":                    "saturated",
					"predicted_backlog_seconds": ls.PredictedBacklogSeconds,
				})
				return
			}
		}
		// An objective marked gate_ready couples its burn-rate alert to
		// readiness: while both windows burn over threshold, drain this
		// instance rather than keep failing its SLO on live traffic.
		if s.sloEng != nil && s.sloEng.Breaching(time.Now()) {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "slo-breaching"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}))
	mux.Handle("GET /metrics", s.instrument("metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	}))
	return mux
}

// statusRecorder captures the response code and body size for the
// request counters and the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// handleEvents serves the flight recorder (404 when disabled via
// Config.FlightEvents < 0).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	s.flight.Handler().ServeHTTP(w, r)
}

// instrument wraps a handler with the request-identity middleware, the
// per-endpoint latency histogram (serve_request_seconds{endpoint=...}),
// status-code counters (serve_requests_total{endpoint=...,code=...})
// and the structured access log.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram(fmt.Sprintf("serve_request_seconds{endpoint=%q}", endpoint),
		0.001, 0.01, 0.1, 1, 10, 60)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := requestIdentity(r)
		r = r.WithContext(obs.WithReqInfo(r.Context(), ri))
		// Echo the identity so callers (and retries, and support
		// tickets) can quote the exact IDs this request ran under.
		w.Header().Set("X-Request-ID", ri.RequestID)
		w.Header().Set("Traceparent", ri.Trace.Traceparent())
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		dur := time.Since(start)
		hist.Observe(dur.Seconds())
		s.reg.Counter(fmt.Sprintf("serve_requests_total{endpoint=%q,code=\"%d\"}",
			endpoint, rec.code)).Inc()
		s.httpLog.LogAttrs(r.Context(), slog.LevelInfo, "access",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", rec.code),
			slog.Int64("bytes", rec.bytes),
			slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
			slog.String("remote", r.RemoteAddr))
	})
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit resolves, caches or schedules one analysis:
//
//	store hit             → 200, finished record, cache "hit"
//	identical in flight   → 202, the existing job, cache "coalesced"
//	fresh                 → 202, new queued job, cache "miss"
//	queue full            → 429 + Retry-After
//	draining              → 503
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req AnalysisRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	a, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch prof := r.URL.Query().Get("profile"); prof {
	case "", "cpu", "heap":
		a.profile = prof
	default:
		writeError(w, http.StatusBadRequest, "unknown profile %q (want cpu or heap)", prof)
		return
	}
	// A profile request skips the store lookup: the point is to watch a
	// real run, so a cached report must not short-circuit it.
	if a.profile == "" {
		if data, ok := s.store.Get(a.key); ok {
			j := s.sched.InsertFinished(r.Context(), a.key, a.label, "hit", data)
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "served from store",
				slog.String("job", j.ID), slog.String("label", a.label), slog.String("key", shortKey(a.key)))
			writeJSON(w, http.StatusOK, s.status(j))
			return
		}
	}
	s.scheduleJob(w, r, a, req.Priority, a.timeout(&req))
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// status snapshots a job via the scheduler (taking its lock).
func (s *Server) status(j *Job) JobStatus {
	st, err := s.sched.Status(j.ID)
	if err != nil {
		// The record was evicted between creation and snapshot — only
		// possible under absurdly small retention; synthesize minimally.
		return JobStatus{ID: j.ID, Key: j.Key, State: StateDone}
	}
	return st
}

// statusAs snapshots a job but reports a submission-specific cache
// disposition: a coalesced caller joined an existing "miss" job, and
// the record's own field must not be rewritten under it.
func (s *Server) statusAs(j *Job, cache string) JobStatus {
	st := s.status(j)
	st.Cache = cache
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Status(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusNotFound, "unknown analysis %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReport streams the finished job's run-report document. For
// unfinished jobs it answers 409 with the job status, so pollers can
// use one URL.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	data, st, err := s.sched.Result(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusNotFound, "unknown analysis %q", r.PathValue("id"))
		return
	}
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", st.Cache)
		w.Header().Set("X-Content-Key", contentKey(st.Key))
		_, _ = w.Write(data)
	case StateFailed, StateCanceled:
		writeError(w, http.StatusGone, "analysis %s: %s", st.ID, st.Error)
	default:
		writeJSON(w, http.StatusConflict, st)
	}
}

// handleProfile streams the pprof blob captured around a
// ?profile=cpu|heap job: 409 with the status while the job is still
// running (poll and retry), 404 when the job never requested
// profiling (or capture failed), 200 with the raw protobuf otherwise.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	kind, data, st, err := s.sched.Profile(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		writeError(w, http.StatusNotFound, "unknown analysis %q", r.PathValue("id"))
		return
	}
	if !st.State.Finished() {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusNotFound, "analysis %s has no captured profile (submit with ?profile=cpu or ?profile=heap)", st.ID)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Profile-Kind", kind)
	w.Header().Set("X-Content-Key", contentKey(st.Key))
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown analysis %q", r.PathValue("id"))
	case errors.Is(err, ErrJobFinished):
		writeJSON(w, http.StatusConflict, st)
	default:
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "cancel requested", slog.String("job", st.ID))
		writeJSON(w, http.StatusOK, st)
	}
}

// Tracer returns the server's tracer (nil when tracing is off); the
// CLI uses it to flush spans at exit.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }
