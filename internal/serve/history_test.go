package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/series"
	"repro/internal/obs/slo"
)

// testSLOConfig exercises all three objective kinds against metric
// families the server actually exports.
func testSLOConfig() *slo.Config {
	return &slo.Config{
		Schema: slo.ConfigSchema,
		Objectives: []slo.Objective{
			{Name: "request-latency", Type: slo.TypeLatency, Metric: "serve_request_seconds",
				ThresholdSeconds: 1, Target: 0.9, FastWindowMS: 5_000, SlowWindowMS: 30_000, BurnThreshold: 2},
			{Name: "job-errors", Type: slo.TypeErrorRate,
				GoodMetric: "serve_jobs_done_total", BadMetric: "serve_jobs_failed_total",
				Target: 0.9, FastWindowMS: 5_000, SlowWindowMS: 30_000, BurnThreshold: 2},
			{Name: "queue-saturation", Type: slo.TypeSaturation, Metric: "serve_queue_depth",
				Limit: 32, Target: 0.5, FastWindowMS: 5_000, SlowWindowMS: 30_000},
		},
	}
}

// TestHistoryAndSLOEndpoints drives the full observability read path:
// jobs run, the sampler ticks, /debug/metrics/history answers
// schema-valid windowed documents, /v1/slo answers a schema-valid
// status, and the slo_* gauges appear in /metrics.
func TestHistoryAndSLOEndpoints(t *testing.T) {
	srv, ts := testServer(t, Config{
		Workers: 2,
		// testServer never calls Start, so the background sampler stays
		// quiet; the test ticks manually for determinism.
		History: &series.Config{Interval: 50 * time.Millisecond, Retention: time.Minute},
		SLO:     testSLOConfig(),
	}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{"stub":"done"}`), nil
	})

	// Baseline sample before any traffic, stamped safely in the past
	// (the store orders by the logical timestamps the ticks carry, the
	// handler queries relative to the wall clock).
	srv.History().Sample(time.Now().Add(-10 * time.Second))

	// Run a few jobs so request and job counters move.
	for seed := 1; seed <= 3; seed++ {
		body := fmt.Sprintf(`{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":%d}`, seed)
		code, _, data := postJSON(t, ts.URL+"/v1/analyses", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d: %s", code, data)
		}
		pollDone(t, ts.URL, decodeStatus(t, data).ID)
	}
	// Post-traffic ticks a couple of seconds back from the wall clock,
	// so they land inside fully-closed step windows no matter how the
	// query's end aligns.
	srv.History().Sample(time.Now().Add(-2 * time.Second))
	srv.History().Sample(time.Now().Add(-1 * time.Second))
	srv.History().Sample(time.Now())

	// Without ?name= the endpoint describes itself.
	code, _, data := getBody(t, ts.URL+"/debug/metrics/history")
	if code != http.StatusOK || !strings.Contains(string(data), "serve_request_seconds") {
		t.Fatalf("family listing: %d %s", code, data)
	}

	// A counter family: windowed rate, schema-valid document.
	code, _, data = getBody(t, ts.URL+"/debug/metrics/history?name=serve_requests_total&window=30s&step=1s")
	if code != http.StatusOK {
		t.Fatalf("history query: %d %s", code, data)
	}
	doc, err := series.ReadHistory(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("history document invalid: %v\n%s", err, data)
	}
	if doc.Kind != series.KindCounter || doc.Fn != "rate" {
		t.Fatalf("doc = %s/%s", doc.Kind, doc.Fn)
	}
	var nonEmpty bool
	for _, p := range doc.Points {
		if p.V != nil && *p.V > 0 {
			nonEmpty = true
		}
	}
	if !nonEmpty {
		t.Fatalf("no windowed rate in %s", data)
	}

	// A histogram family with an explicit quantile fn.
	code, _, data = getBody(t, ts.URL+"/debug/metrics/history?name=serve_request_seconds&window=30s&step=5s&fn=p90")
	if code != http.StatusOK {
		t.Fatalf("p90 query: %d %s", code, data)
	}
	if _, err := series.ReadHistory(bytes.NewReader(data)); err != nil {
		t.Fatalf("p90 document invalid: %v", err)
	}

	// Bad queries are 400s, not panics.
	for _, q := range []string{"?name=nope", "?name=serve_requests_total&fn=p50", "?name=serve_requests_total&window=bogus"} {
		if code, _, _ := getBody(t, ts.URL+"/debug/metrics/history"+q); code != http.StatusBadRequest {
			t.Fatalf("query %s: HTTP %d, want 400", q, code)
		}
	}

	// /v1/slo: schema-valid, all objectives judged or no-data, not
	// breaching under this healthy workload. Evaluations memoize for
	// one sampling interval and the collector already evaluated against
	// the then-empty store during the first tick, so step past the
	// interval to force a fresh evaluation.
	time.Sleep(60 * time.Millisecond)
	code, _, data = getBody(t, ts.URL+"/v1/slo")
	if code != http.StatusOK {
		t.Fatalf("/v1/slo: %d %s", code, data)
	}
	st, err := slo.ReadStatus(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("slo status invalid: %v\n%s", err, data)
	}
	if len(st.Objectives) != 3 || st.Breaching {
		t.Fatalf("slo status = %+v", st)
	}
	for _, o := range st.Objectives {
		if o.Name == "job-errors" && (o.NoData || o.Events == 0 || o.BadEvents != 0) {
			t.Fatalf("job-errors objective unjudged under real traffic: %+v", o)
		}
	}

	// The burn gauges are scrapeable.
	code, _, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`slo_burn_rate{objective="job-errors"}`,
		`slo_error_budget_remaining{objective="request-latency"}`,
		"serve_job_cost_ns_per_ff_count",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics lacks %q", want)
		}
	}
}

// TestObservabilityEndpointsDisabledByDefault keeps the zero config
// honest: no history, no SLO, both endpoints 404.
func TestObservabilityEndpointsDisabledByDefault(t *testing.T) {
	_, ts := testServer(t, Config{}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{}`), nil
	})
	if code, _, _ := getBody(t, ts.URL+"/debug/metrics/history"); code != http.StatusNotFound {
		t.Fatalf("history without config: %d", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/v1/slo"); code != http.StatusNotFound {
		t.Fatalf("slo without config: %d", code)
	}
}

// TestSLOImpliesHistory checks the convenience wiring: an SLO config
// alone enables the series store with retention covering the slowest
// objective window.
func TestSLOImpliesHistory(t *testing.T) {
	srv, err := New(Config{SLO: testSLOConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if srv.History() == nil {
		t.Fatal("SLO config did not enable history")
	}
	if got := srv.History().Retention(); got < 30*time.Second {
		t.Fatalf("retention %v smaller than the slowest SLO window", got)
	}
	if srv.SLOEngine() == nil {
		t.Fatal("no SLO engine")
	}
}

// TestEventsSinceCursorThroughServer exercises the flight recorder's
// incremental tail through the daemon endpoint.
func TestEventsSinceCursorThroughServer(t *testing.T) {
	_, ts := testServer(t, Config{}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{}`), nil
	})
	code, _, data := postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	pollDone(t, ts.URL, decodeStatus(t, data).ID)

	var resp struct {
		LastSeq uint64            `json:"last_seq"`
		Events  []json.RawMessage `json:"events"`
	}
	code, _, data = getBody(t, ts.URL+"/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events: %d", code)
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.LastSeq == 0 || len(resp.Events) == 0 {
		t.Fatalf("baseline events = %+v", resp)
	}

	// Nothing new after the cursor...
	code, _, data = getBody(t, fmt.Sprintf("%s/debug/events?since=%d", ts.URL, resp.LastSeq))
	if code != http.StatusOK {
		t.Fatalf("tail: %d", code)
	}
	cursor := resp.LastSeq
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 0 {
		t.Fatalf("tail from tip returned %d events", len(resp.Events))
	}

	// ...until more work happens.
	code, _, data = postJSON(t, ts.URL+"/v1/analyses", `{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":9}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	pollDone(t, ts.URL, decodeStatus(t, data).ID)
	code, _, data = getBody(t, fmt.Sprintf("%s/debug/events?since=%d", ts.URL, cursor))
	if code != http.StatusOK {
		t.Fatalf("tail 2: %d", code)
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) == 0 || resp.LastSeq <= cursor {
		t.Fatalf("tail after new work: %d events, last_seq %d (cursor %d)", len(resp.Events), resp.LastSeq, cursor)
	}
}

// TestBacklogDivergesFromPureEWMAUnderBimodalMix is the acceptance
// test for the history-backed predictor: under a bimodal job mix
// (cheap pure-path jobs interleaved with SAT-heavy ones) the windowed
// p90 prediction reflects the slow mode while a pure EWMA blends the
// modes into a rate that describes neither.
func TestBacklogDivergesFromPureEWMAUnderBimodalMix(t *testing.T) {
	reg := obs.NewRegistry()
	st := series.NewStore(reg, series.Config{Interval: time.Second, Retention: time.Minute})
	hist := newCostModel(nil, 0)
	hist.bindMetrics(reg)
	hist.bindHistory(st)
	ewma := newCostModel(nil, 0) // the old predictor, for comparison

	const ffs = 1000
	fast := time.Duration(ffs) * 2 * time.Microsecond   // 2e3 ns/FF
	slow := time.Duration(ffs) * 2 * time.Millisecond   // 2e6 ns/FF
	for i := 0; i < 25; i++ {                           // interleaved bimodal mix
		for _, d := range []time.Duration{slow, fast} { // ends on a fast job
			hist.observe(ffs, d)
			ewma.observe(ffs, d)
		}
	}
	st.Sample(time.Now())

	p50, p90, ok := hist.quantiles()
	if !ok {
		t.Fatal("windowed quantiles unavailable")
	}
	// The bimodal distribution splits across the bucket grid: p50 lands
	// at the fast mode's bucket, p90 at the slow mode's.
	if p50 > 3e3 {
		t.Fatalf("windowed p50 = %v, want the fast mode (<= 3e3)", p50)
	}
	if p90 < 2e6 {
		t.Fatalf("windowed p90 = %v, want the slow mode (>= 2e6)", p90)
	}

	histEst := hist.estimate(ffs)
	ewmaEst := ewma.estimate(ffs)
	// The EWMA ends just after a fast sample, so it underestimates the
	// mix's tail badly; the windowed p90 stays at the slow mode.
	if histEst < 2*time.Second {
		t.Fatalf("history-backed estimate = %v, want >= 2s (slow mode)", histEst)
	}
	if ewmaEst*2 > histEst {
		t.Fatalf("divergence too small: ewma=%v history=%v", ewmaEst, histEst)
	}
}

// TestReportsByteIdenticalWithSamplerRunning is the determinism
// acceptance check: with the background sampler actively ticking, a
// real engine-backed analysis must produce byte-identical report
// documents on a repeated identical submission, and a fresh
// recomputation on a second server must match on every content field
// (reports embed wall times — started_at, stage wall_ns, avg_*_ns —
// which are the only fields allowed to differ).
func TestReportsByteIdenticalWithSamplerRunning(t *testing.T) {
	body := `{"benchmark":"TreeFlat","circuits":1,"specs":1}`
	runOnce := func() []byte {
		srv, ts := testServer(t, Config{
			History: &series.Config{Interval: 5 * time.Millisecond, Retention: time.Minute},
		}, nil) // nil run = the real engine path
		srv.History().Start() // background sampler ticking hard
		defer srv.History().Stop()

		code, _, data := postJSON(t, ts.URL+"/v1/analyses", body)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit: %d %s", code, data)
		}
		id := decodeStatus(t, data).ID
		pollDone(t, ts.URL, id)
		code, _, rep := getBody(t, ts.URL+"/v1/analyses/"+id+"/report")
		if code != http.StatusOK {
			t.Fatalf("report: %d %s", code, rep)
		}

		// Same server, identical submission: served from the store,
		// byte-identical by construction — and the sampler must not
		// have perturbed the stored document.
		code, _, data = postJSON(t, ts.URL+"/v1/analyses", body)
		if code != http.StatusOK {
			t.Fatalf("resubmit: %d %s", code, data)
		}
		id2 := decodeStatus(t, data).ID
		code, _, rep2 := getBody(t, ts.URL+"/v1/analyses/"+id2+"/report")
		if code != http.StatusOK || !bytes.Equal(rep, rep2) {
			t.Fatalf("cache-hit report differs (%d bytes vs %d)", len(rep), len(rep2))
		}
		return rep
	}
	a := runOnce()
	b := runOnce() // fresh server: full recomputation, sampler running
	if na, nb := stripWallTimes(t, a), stripWallTimes(t, b); !bytes.Equal(na, nb) {
		t.Fatalf("recomputed report content differs across servers:\n%s\nvs\n%s", na, nb)
	}
}

// stripWallTimes zeroes a report's timing fields so content can be
// compared across independent recomputations.
func stripWallTimes(t *testing.T, data []byte) []byte {
	t.Helper()
	rep, err := obs.ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("report invalid: %v\n%s", err, data)
	}
	rep.StartedAt = ""
	for i := range rep.Stages {
		rep.Stages[i].WallNS = 0
	}
	rep.Totals.StageWallNS = 0
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		b.AvgDepNS, b.AvgPureNS, b.AvgHybridNS, b.AvgTotalNS = 0, 0, 0, 0
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoadUnderChurn hammers /v1/load while jobs are submitted and
// canceled around a pinned worker, asserting the two signal invariants
// under concurrency: the oldest queued wait is monotone non-decreasing
// (the head of the queue only gets older while it is stuck) and the
// predicted backlog never goes negative. Run with -race.
func TestLoadUnderChurn(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 64},
		func(ctx context.Context, j *Job) ([]byte, error) {
			started <- struct{}{}
			select {
			case <-release:
				return []byte(`{"stub":"done"}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})

	// Pin the worker and park one job at the head of the queue.
	var ids []string
	for seed := 1; seed <= 2; seed++ {
		body := fmt.Sprintf(`{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":%d}`, seed)
		code, _, data := postJSON(t, ts.URL+"/v1/analyses", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", seed, code, data)
		}
		ids = append(ids, decodeStatus(t, data).ID)
	}
	<-started

	// Churn: submit-and-cancel behind the parked head while the main
	// goroutine polls the signal.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := 100
		client := &http.Client{Timeout: 5 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			seed++
			body := fmt.Sprintf(`{"benchmark":"TreeFlat","circuits":1,"specs":1,"seed":%d}`, seed)
			resp, err := client.Post(ts.URL+"/v1/analyses", "application/json", strings.NewReader(body))
			if err != nil {
				continue
			}
			var jst JobStatus
			_ = json.NewDecoder(resp.Body).Decode(&jst)
			resp.Body.Close()
			if jst.ID != "" {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/analyses/"+jst.ID, nil)
				if dresp, err := client.Do(req); err == nil {
					dresp.Body.Close()
				}
			}
		}
	}()

	prevWait := -1.0
	for i := 0; i < 40; i++ {
		ls := getLoad(t, ts.URL)
		if ls.PredictedBacklogSeconds < 0 {
			t.Fatalf("negative predicted backlog: %+v", ls)
		}
		if ls.OldestWaitSeconds < prevWait {
			t.Fatalf("oldest wait went backwards: %v -> %v", prevWait, ls.OldestWaitSeconds)
		}
		prevWait = ls.OldestWaitSeconds
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	close(release)
	for _, id := range ids {
		pollDone(t, ts.URL, id)
	}
	if ls := getLoad(t, ts.URL); ls.PredictedBacklogSeconds < 0 {
		t.Fatalf("negative backlog after drain: %+v", ls)
	}
}
