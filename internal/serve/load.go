package serve

import (
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/perfrec"
	"repro/internal/obs/series"
)

// LoadStatus is the autoscale load signal served by GET /v1/load and
// mirrored as gauges on /metrics: how busy the worker pool is, how
// deep the queue is, how long the oldest queued submission has waited,
// and how many seconds of work the cost model predicts are ahead of a
// submission arriving now. An autoscaler (or a load balancer deciding
// where to route) needs exactly this — queue depth alone says nothing
// when jobs differ by three orders of magnitude in size.
type LoadStatus struct {
	Workers    int `json:"workers"`
	Running    int `json:"running"`
	QueueDepth int `json:"queue_depth"`
	// WorkerBusy is Running/Workers in 0..1.
	WorkerBusy        float64 `json:"worker_busy"`
	OldestWaitSeconds float64 `json:"oldest_wait_seconds"`
	// PredictedBacklogSeconds estimates how long a job submitted now
	// would wait for a worker: the cost-model sum of queued work and
	// running remainders per worker, floored by the oldest observed
	// wait (the queue never predicts better than it is measuring).
	PredictedBacklogSeconds float64 `json:"predicted_backlog_seconds"`
	// SaturationThresholdSeconds echoes the -readyz-saturation
	// configuration (absent when the gate is off); Saturated reports
	// whether the backlog breaches it — the same signal that flips
	// /readyz to 503.
	SaturationThresholdSeconds float64 `json:"saturation_threshold_seconds,omitempty"`
	Saturated                  bool    `json:"saturated"`
	// CostP50NSPerFF / CostP90NSPerFF expose the windowed ns-per-scan-FF
	// percentiles the predictor runs on (0 while the history window is
	// still empty and the EWMA fallback is in charge).
	CostP50NSPerFF float64 `json:"cost_p50_ns_per_ff,omitempty"`
	CostP90NSPerFF float64 `json:"cost_p90_ns_per_ff,omitempty"`
}

// costModel predicts one job's run time from its scan flip-flop count.
// Prediction sources, in order (see DESIGN.md §5j for the full story):
//
//  1. Windowed percentiles. When the metrics history is enabled, every
//     finished sized job records its ns-per-scan-FF rate into the
//     serve_job_cost_ns_per_ff histogram, and the predictor uses the
//     p90 of that distribution over the history window — a queue-wait
//     promise should reflect the observed spread, not the last sample,
//     and under a bimodal job mix (cheap pure-mode jobs interleaved
//     with SAT-heavy hybrid ones) an EWMA converges to a value that
//     describes neither mode.
//  2. EWMA ns-per-FF as cold-start fallback: seeded from a bench
//     record (rsnsec.bench-record/v1 — the sum of per-stage median wall
//     times over the benchmark's scan-FF count, median across
//     benchmarks), then updated by every finished job.
//  3. EWMA of whole-job durations, for jobs with unknown size (deltas).
type costModel struct {
	mu      sync.Mutex
	alpha   float64 // EWMA weight on (0, 1]
	nsPerFF float64 // EWMA ns per scan FF; 0 = unknown
	jobNS   float64 // EWMA whole-job ns; 0 = unknown

	costHist *obs.Histogram // serve_job_cost_ns_per_ff (nil until bindMetrics)
	history  *series.Store  // windowed percentile source (nil = EWMA only)

	// Windowed percentiles are memoized for one sampling interval: a
	// load snapshot calls estimate once per queued job, and the window
	// only changes when a sample lands.
	q50, q90 float64
	qAt      time.Time
}

// ewmaAlpha is the default EWMA weight: high enough to adapt within a
// few jobs, low enough that one outlier does not whipsaw the signal.
const ewmaAlpha = 0.3

// costBounds are the serve_job_cost_ns_per_ff histogram's bucket upper
// bounds — log-spaced over the plausible ns-per-scan-FF range (sub-µs
// pure-mode propagation up to ~10ms/FF SAT-heavy attacks). Windowed
// percentiles resolve to these bounds, so they are also the
// granularity of the backlog prediction.
var costBounds = []float64{1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7}

func newCostModel(rec *perfrec.Record, alpha float64) *costModel {
	m := &costModel{alpha: alpha}
	if m.alpha <= 0 || m.alpha > 1 {
		m.alpha = ewmaAlpha
	}
	if rec == nil {
		return m
	}
	var rates []float64
	for i := range rec.Benchmarks {
		b := &rec.Benchmarks[i]
		if b.ScanFFs <= 0 {
			continue
		}
		var total int64
		for j := range b.Stages {
			total += b.Stages[j].MedianNS
		}
		if total > 0 {
			rates = append(rates, float64(total)/float64(b.ScanFFs))
		}
	}
	if len(rates) > 0 {
		sort.Float64s(rates)
		m.nsPerFF = rates[len(rates)/2]
	}
	return m
}

// bindMetrics registers the per-job cost-rate histogram the windowed
// percentiles are computed from.
func (m *costModel) bindMetrics(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.SetHelp("serve_job_cost_ns_per_ff",
		"Per-job analysis cost rate in nanoseconds per scan flip-flop; "+
			"the windowed p90 drives the /v1/load backlog prediction.")
	m.costHist = reg.Histogram("serve_job_cost_ns_per_ff", costBounds...)
}

// bindHistory attaches the series store the windowed percentiles read
// from; without it the model is EWMA-only.
func (m *costModel) bindHistory(st *series.Store) {
	if m != nil {
		m.history = st
	}
}

// observe folds one finished job into the model.
func (m *costModel) observe(scanFFs int, d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	blend := func(cur, sample float64) float64 {
		if cur == 0 {
			return sample
		}
		return cur + m.alpha*(sample-cur)
	}
	if scanFFs > 0 {
		rate := float64(d) / float64(scanFFs)
		m.nsPerFF = blend(m.nsPerFF, rate)
		if m.costHist != nil {
			m.costHist.Observe(rate)
		}
	}
	m.jobNS = blend(m.jobNS, float64(d))
}

// quantiles returns the windowed (p50, p90) ns-per-FF rates, memoized
// for one sampling interval; ok is false while the window is empty
// (history disabled, or no sized job finished inside the retention).
func (m *costModel) quantiles() (p50, p90 float64, ok bool) {
	if m == nil || m.history == nil {
		return 0, 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quantilesLocked(time.Now())
}

func (m *costModel) quantilesLocked(now time.Time) (p50, p90 float64, ok bool) {
	if m.history == nil {
		return 0, 0, false
	}
	if !m.qAt.IsZero() && now.Sub(m.qAt) >= 0 && now.Sub(m.qAt) < m.history.Interval() {
		return m.q50, m.q90, m.q90 > 0
	}
	m.qAt = now
	m.q50, m.q90 = 0, 0
	d, found := m.history.FamilyHistogramWindow("serve_job_cost_ns_per_ff", m.history.Retention(), now)
	if !found {
		return 0, 0, false
	}
	p50, p90 = d.Quantile(0.5), d.Quantile(0.9)
	if math.IsNaN(p50) || math.IsNaN(p90) || math.IsInf(p90, 0) {
		return 0, 0, false
	}
	m.q50, m.q90 = p50, p90
	return p50, p90, true
}

// estimate predicts a job's run time; 0 when the model knows nothing
// yet. Sized jobs prefer the windowed p90 rate (conservative: the
// backlog signal gates /readyz, and under-promising wait time is the
// harmful direction), then the EWMA rate; sizeless jobs use the
// whole-job EWMA.
func (m *costModel) estimate(scanFFs int) time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if scanFFs > 0 {
		if _, p90, ok := m.quantilesLocked(time.Now()); ok {
			return time.Duration(p90 * float64(scanFFs))
		}
		if m.nsPerFF > 0 {
			return time.Duration(m.nsPerFF * float64(scanFFs))
		}
	}
	return time.Duration(m.jobNS)
}

// jobCost estimates one scheduled job's total run time for the load
// snapshot (called under the scheduler lock; touches only immutable
// payload fields and the cost model's own lock).
func (s *Server) jobCost(j *Job) time.Duration {
	a, _ := j.Payload.(*analysis)
	ffs := 0
	if a != nil {
		ffs = a.scanFFs
	}
	return s.cost.estimate(ffs)
}

// loadStatus assembles the current load signal.
func (s *Server) loadStatus() LoadStatus {
	ls := s.sched.Load(time.Now(), s.jobCost)
	st := LoadStatus{
		Workers:           ls.Workers,
		Running:           ls.Running,
		QueueDepth:        ls.Queued,
		WorkerBusy:        float64(ls.Running) / float64(ls.Workers),
		OldestWaitSeconds: ls.OldestWait.Seconds(),
	}
	backlog := ls.Backlog
	if ls.OldestWait > backlog {
		backlog = ls.OldestWait
	}
	st.PredictedBacklogSeconds = backlog.Seconds()
	if t := s.cfg.SaturationThreshold; t > 0 {
		st.SaturationThresholdSeconds = t.Seconds()
		st.Saturated = backlog >= t
	}
	if p50, p90, ok := s.cost.quantiles(); ok {
		st.CostP50NSPerFF, st.CostP90NSPerFF = p50, p90
	}
	return st
}

// handleLoad serves GET /v1/load.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.loadStatus())
}

// registerLoadGauges exposes the load signal on /metrics via a
// registry pull-collector, so every scrape sees a fresh snapshot
// without a background refresher goroutine. Ratios and durations are
// encoded for int64 gauges: busy as permille, waits as milliseconds.
func (s *Server) registerLoadGauges() {
	s.reg.SetHelp("serve_worker_busy_permille", "Busy workers per 1000 (1000 = every worker running a job).")
	s.reg.SetHelp("serve_queue_oldest_wait_ms", "How long the longest-queued submission has been waiting.")
	s.reg.SetHelp("serve_predicted_backlog_ms", "Cost-model prediction of how long a new submission would wait for a worker.")
	busyG := s.reg.Gauge("serve_worker_busy_permille")
	oldestG := s.reg.Gauge("serve_queue_oldest_wait_ms")
	backlogG := s.reg.Gauge("serve_predicted_backlog_ms")
	workersG := s.reg.Gauge("serve_workers")
	s.reg.AddCollector(func() {
		st := s.loadStatus()
		busyG.Set(int64(st.WorkerBusy * 1000))
		oldestG.Set(int64(st.OldestWaitSeconds * 1000))
		backlogG.Set(int64(st.PredictedBacklogSeconds * 1000))
		workersG.Set(int64(st.Workers))
	})
}

// requestIdentity accepts or mints the request's identity: a caller's
// X-Request-ID is honored when it is short and printable (anything
// else gets a fresh one — the ID lands verbatim in logs and JSON), and
// a valid W3C traceparent is continued as a child (same trace ID, new
// span ID). Requests without either get fresh random identities, so
// every request is correlatable even when no caller cooperates.
func requestIdentity(r *http.Request) obs.ReqInfo {
	ri := obs.ReqInfo{RequestID: sanitizeRequestID(r.Header.Get("X-Request-ID"))}
	if ri.RequestID == "" {
		ri.RequestID = obs.NewRequestID()
	}
	if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ri.Trace = tc.Child()
	} else {
		ri.Trace = obs.NewTraceContext()
	}
	return ri
}

func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}
