package serve

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/perfrec"
)

// LoadStatus is the autoscale load signal served by GET /v1/load and
// mirrored as gauges on /metrics: how busy the worker pool is, how
// deep the queue is, how long the oldest queued submission has waited,
// and how many seconds of work the cost model predicts are ahead of a
// submission arriving now. An autoscaler (or a load balancer deciding
// where to route) needs exactly this — queue depth alone says nothing
// when jobs differ by three orders of magnitude in size.
type LoadStatus struct {
	Workers    int `json:"workers"`
	Running    int `json:"running"`
	QueueDepth int `json:"queue_depth"`
	// WorkerBusy is Running/Workers in 0..1.
	WorkerBusy        float64 `json:"worker_busy"`
	OldestWaitSeconds float64 `json:"oldest_wait_seconds"`
	// PredictedBacklogSeconds estimates how long a job submitted now
	// would wait for a worker: the cost-model sum of queued work and
	// running remainders per worker, floored by the oldest observed
	// wait (the queue never predicts better than it is measuring).
	PredictedBacklogSeconds float64 `json:"predicted_backlog_seconds"`
	// SaturationThresholdSeconds echoes the -readyz-saturation
	// configuration (absent when the gate is off); Saturated reports
	// whether the backlog breaches it — the same signal that flips
	// /readyz to 503.
	SaturationThresholdSeconds float64 `json:"saturation_threshold_seconds,omitempty"`
	Saturated                  bool    `json:"saturated"`
}

// costModel predicts one job's run time from its scan flip-flop count.
// It is seeded from a bench record (rsnsec.bench-record/v1): the sum
// of per-stage median wall times divided by the benchmark's scan-FF
// count gives an ns-per-FF rate, and the median rate across the
// record's benchmarks is the prior. Every finished job then feeds an
// EWMA, so the model tracks this machine and this workload even when
// no record was given (it just starts from zero knowledge and warms up
// after the first job). Jobs with unknown size (deltas) fall back to
// the EWMA of whole-job durations.
type costModel struct {
	mu      sync.Mutex
	nsPerFF float64 // EWMA ns per scan FF; 0 = unknown
	jobNS   float64 // EWMA whole-job ns; 0 = unknown
}

// ewmaAlpha weights new observations: high enough to adapt within a
// few jobs, low enough that one outlier does not whipsaw the signal.
const ewmaAlpha = 0.3

func newCostModel(rec *perfrec.Record) *costModel {
	m := &costModel{}
	if rec == nil {
		return m
	}
	var rates []float64
	for i := range rec.Benchmarks {
		b := &rec.Benchmarks[i]
		if b.ScanFFs <= 0 {
			continue
		}
		var total int64
		for j := range b.Stages {
			total += b.Stages[j].MedianNS
		}
		if total > 0 {
			rates = append(rates, float64(total)/float64(b.ScanFFs))
		}
	}
	if len(rates) > 0 {
		sort.Float64s(rates)
		m.nsPerFF = rates[len(rates)/2]
	}
	return m
}

// observe folds one finished job into the model.
func (m *costModel) observe(scanFFs int, d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	blend := func(cur, sample float64) float64 {
		if cur == 0 {
			return sample
		}
		return cur + ewmaAlpha*(sample-cur)
	}
	if scanFFs > 0 {
		m.nsPerFF = blend(m.nsPerFF, float64(d)/float64(scanFFs))
	}
	m.jobNS = blend(m.jobNS, float64(d))
}

// estimate predicts a job's run time; 0 when the model knows nothing
// yet.
func (m *costModel) estimate(scanFFs int) time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if scanFFs > 0 && m.nsPerFF > 0 {
		return time.Duration(m.nsPerFF * float64(scanFFs))
	}
	return time.Duration(m.jobNS)
}

// jobCost estimates one scheduled job's total run time for the load
// snapshot (called under the scheduler lock; touches only immutable
// payload fields and the cost model's own lock).
func (s *Server) jobCost(j *Job) time.Duration {
	a, _ := j.Payload.(*analysis)
	ffs := 0
	if a != nil {
		ffs = a.scanFFs
	}
	return s.cost.estimate(ffs)
}

// loadStatus assembles the current load signal.
func (s *Server) loadStatus() LoadStatus {
	ls := s.sched.Load(time.Now(), s.jobCost)
	st := LoadStatus{
		Workers:           ls.Workers,
		Running:           ls.Running,
		QueueDepth:        ls.Queued,
		WorkerBusy:        float64(ls.Running) / float64(ls.Workers),
		OldestWaitSeconds: ls.OldestWait.Seconds(),
	}
	backlog := ls.Backlog
	if ls.OldestWait > backlog {
		backlog = ls.OldestWait
	}
	st.PredictedBacklogSeconds = backlog.Seconds()
	if t := s.cfg.SaturationThreshold; t > 0 {
		st.SaturationThresholdSeconds = t.Seconds()
		st.Saturated = backlog >= t
	}
	return st
}

// handleLoad serves GET /v1/load.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.loadStatus())
}

// registerLoadGauges exposes the load signal on /metrics via a
// registry pull-collector, so every scrape sees a fresh snapshot
// without a background refresher goroutine. Ratios and durations are
// encoded for int64 gauges: busy as permille, waits as milliseconds.
func (s *Server) registerLoadGauges() {
	s.reg.SetHelp("serve_worker_busy_permille", "Busy workers per 1000 (1000 = every worker running a job).")
	s.reg.SetHelp("serve_queue_oldest_wait_ms", "How long the longest-queued submission has been waiting.")
	s.reg.SetHelp("serve_predicted_backlog_ms", "Cost-model prediction of how long a new submission would wait for a worker.")
	busyG := s.reg.Gauge("serve_worker_busy_permille")
	oldestG := s.reg.Gauge("serve_queue_oldest_wait_ms")
	backlogG := s.reg.Gauge("serve_predicted_backlog_ms")
	workersG := s.reg.Gauge("serve_workers")
	s.reg.AddCollector(func() {
		st := s.loadStatus()
		busyG.Set(int64(st.WorkerBusy * 1000))
		oldestG.Set(int64(st.OldestWaitSeconds * 1000))
		backlogG.Set(int64(st.PredictedBacklogSeconds * 1000))
		workersG.Set(int64(st.Workers))
	})
}

// requestIdentity accepts or mints the request's identity: a caller's
// X-Request-ID is honored when it is short and printable (anything
// else gets a fresh one — the ID lands verbatim in logs and JSON), and
// a valid W3C traceparent is continued as a child (same trace ID, new
// span ID). Requests without either get fresh random identities, so
// every request is correlatable even when no caller cooperates.
func requestIdentity(r *http.Request) obs.ReqInfo {
	ri := obs.ReqInfo{RequestID: sanitizeRequestID(r.Header.Get("X-Request-ID"))}
	if ri.RequestID == "" {
		ri.RequestID = obs.NewRequestID()
	}
	if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ri.Trace = tc.Child()
	} else {
		ri.Trace = obs.NewTraceContext()
	}
	return ri
}

func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}
