package icl

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// Write renders a network in the ICL dialect understood by Parse.
// ffName maps circuit flip-flop ids to the names emitted for
// CaptureSource/UpdateSink items; it may be nil when the network has no
// capture/update links.
func Write(w io.Writer, nw *rsn.Network, ffName func(netlist.FFID) string) error {
	return WriteWithSpec(w, nw, nil, ffName)
}

// WriteWithSpec renders a network together with its security
// specification: module declarations carry Trust/Accepts attributes and
// the file declares the category universe.
func WriteWithSpec(w io.Writer, nw *rsn.Network, spec *secspec.Spec, ffName func(netlist.FFID) string) error {
	if spec != nil && spec.NumModules() != len(nw.Modules) {
		return fmt.Errorf("icl: specification covers %d modules, network has %d", spec.NumModules(), len(nw.Modules))
	}
	var sb strings.Builder
	ref := func(r rsn.Ref) string {
		switch r.Kind {
		case rsn.KScanIn:
			return "SI"
		case rsn.KRegister:
			return fmt.Sprintf("Register %q", nw.Registers[r.ID].Name)
		case rsn.KMux:
			return fmt.Sprintf("Mux %q", nw.Muxes[r.ID].Name)
		}
		return "SI"
	}
	fmt.Fprintf(&sb, "ScanNetwork %q {\n", nw.Name)
	if spec != nil {
		fmt.Fprintf(&sb, "  Categories %d;\n", spec.NumCategories)
	}
	for mi, m := range nw.Modules {
		if spec == nil {
			fmt.Fprintf(&sb, "  Module %q;\n", m)
			continue
		}
		fmt.Fprintf(&sb, "  Module %q { Trust %d; Accepts ", m, spec.Trust[mi])
		first := true
		for c := secspec.Category(0); int(c) < spec.NumCategories; c++ {
			if spec.Accepts[mi].Has(c) {
				if !first {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%d", c)
				first = false
			}
		}
		sb.WriteString("; }\n")
	}
	for i := range nw.Registers {
		r := &nw.Registers[i]
		fmt.Fprintf(&sb, "  ScanRegister %q {\n", r.Name)
		fmt.Fprintf(&sb, "    Length %d;\n", r.Len)
		fmt.Fprintf(&sb, "    ScanInSource %s;\n", ref(r.In))
		if len(nw.Modules) > 0 {
			fmt.Fprintf(&sb, "    Module %q;\n", nw.Modules[r.Module])
		}
		for bit, ff := range r.Capture {
			if ff == netlist.NoFF {
				continue
			}
			if ffName == nil {
				return fmt.Errorf("icl: register %q has capture links but no ffName function was given", r.Name)
			}
			fmt.Fprintf(&sb, "    CaptureSource %d %q;\n", bit, ffName(ff))
		}
		for bit, ff := range r.Update {
			if ff == netlist.NoFF {
				continue
			}
			if ffName == nil {
				return fmt.Errorf("icl: register %q has update links but no ffName function was given", r.Name)
			}
			fmt.Fprintf(&sb, "    UpdateSink %d %q;\n", bit, ffName(ff))
		}
		fmt.Fprintf(&sb, "  }\n")
	}
	for i := range nw.Muxes {
		m := &nw.Muxes[i]
		fmt.Fprintf(&sb, "  ScanMux %q {\n", m.Name)
		for _, in := range m.Inputs {
			fmt.Fprintf(&sb, "    Input %s;\n", ref(in))
		}
		fmt.Fprintf(&sb, "  }\n")
	}
	fmt.Fprintf(&sb, "  ScanOutSource %s;\n", ref(nw.OutSrc))
	fmt.Fprintf(&sb, "}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the network to a string, panicking on the errors Write
// can produce (missing ffName). Intended for networks without
// capture/update links or with a total ffName function.
func String(nw *rsn.Network, ffName func(netlist.FFID) string) string {
	var sb strings.Builder
	if err := Write(&sb, nw, ffName); err != nil {
		panic(err)
	}
	return sb.String()
}
