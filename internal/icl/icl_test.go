package icl

import (
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/rsn"
)

const sample = `
// running-example style network
ScanNetwork "example" {
  Module "crypto";
  Module "untrusted";
  ScanRegister "A" {
    Length 2;
    ScanInSource SI;
    Module "crypto";
    CaptureSource 0 "crypto.F0";
    CaptureSource 1 "crypto.F1";
  }
  ScanRegister "B" {
    Length 3;
    ScanInSource Register "A";
    Module "untrusted";
    UpdateSink 2 "untrusted.F0";
  }
  ScanMux "M0" {
    Input Register "A";
    Input Register "B";
  }
  ScanRegister "C" {
    Length 1;
    ScanInSource Mux "M0";
    Module "untrusted";
  }
  ScanOutSource Register "C";
}
`

func sampleLookup() (func(string) (netlist.FFID, bool), *netlist.Netlist) {
	n := netlist.New()
	c := n.AddModule("crypto")
	u := n.AddModule("untrusted")
	names := map[string]netlist.FFID{}
	for i := 0; i < 2; i++ {
		f := n.AddFF("crypto.F"+string(rune('0'+i)), c)
		n.SetFFInput(f, n.FFs[f].Node)
		names[n.FFs[f].Name] = f
	}
	f := n.AddFF("untrusted.F0", u)
	n.SetFFInput(f, n.FFs[f].Node)
	names["untrusted.F0"] = f
	return func(s string) (netlist.FFID, bool) {
		id, ok := names[s]
		return id, ok
	}, n
}

func TestParseBuildSample(t *testing.T) {
	lookup, _ := sampleLookup()
	nw, err := ParseNetwork(sample, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "example" {
		t.Errorf("name = %q", nw.Name)
	}
	if len(nw.Registers) != 3 || len(nw.Muxes) != 1 || len(nw.Modules) != 2 {
		t.Fatalf("sizes: %d regs %d muxes %d modules", len(nw.Registers), len(nw.Muxes), len(nw.Modules))
	}
	if nw.Registers[0].Len != 2 || nw.Registers[1].Len != 3 || nw.Registers[2].Len != 1 {
		t.Fatal("lengths wrong")
	}
	if nw.Registers[1].In != rsn.Reg(0) {
		t.Errorf("B.In = %v", nw.Registers[1].In)
	}
	if nw.Registers[2].In != rsn.Mx(0) {
		t.Errorf("C.In = %v", nw.Registers[2].In)
	}
	if nw.OutSrc != rsn.Reg(2) {
		t.Errorf("OutSrc = %v", nw.OutSrc)
	}
	if nw.Registers[0].Capture[0] == netlist.NoFF || nw.Registers[0].Capture[1] == netlist.NoFF {
		t.Error("capture links missing")
	}
	if nw.Registers[1].Update[2] == netlist.NoFF {
		t.Error("update link missing")
	}
	if nw.Registers[0].Module != 0 || nw.Registers[1].Module != 1 {
		t.Error("module association wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	lookup, n := sampleLookup()
	nw, err := ParseNetwork(sample, lookup)
	if err != nil {
		t.Fatal(err)
	}
	text := String(nw, func(f netlist.FFID) string { return n.FFs[f].Name })
	nw2, err := ParseNetwork(text, lookup)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(nw2.Registers) != len(nw.Registers) || len(nw2.Muxes) != len(nw.Muxes) {
		t.Fatal("round trip changed element counts")
	}
	for i := range nw.Registers {
		a, b := nw.Registers[i], nw2.Registers[i]
		if a.Name != b.Name || a.Len != b.Len || a.In != b.In || a.Module != b.Module {
			t.Fatalf("register %d differs after round trip", i)
		}
		for bit := range a.Capture {
			if a.Capture[bit] != b.Capture[bit] || a.Update[bit] != b.Update[bit] {
				t.Fatalf("register %d links differ after round trip", i)
			}
		}
	}
	for i := range nw.Muxes {
		if len(nw.Muxes[i].Inputs) != len(nw2.Muxes[i].Inputs) {
			t.Fatalf("mux %d differs", i)
		}
		for j := range nw.Muxes[i].Inputs {
			if nw.Muxes[i].Inputs[j] != nw2.Muxes[i].Inputs[j] {
				t.Fatalf("mux %d input %d differs", i, j)
			}
		}
	}
	if nw2.OutSrc != nw.OutSrc {
		t.Fatal("scan-out differs")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no scanout", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; } }`},
		{"unknown ref", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource Register "Z"; } ScanOutSource Register "A"; }`},
		{"zero length", `ScanNetwork "x" { ScanRegister "A" { Length 0; ScanInSource SI; } ScanOutSource Register "A"; }`},
		{"missing length", `ScanNetwork "x" { ScanRegister "A" { ScanInSource SI; } ScanOutSource Register "A"; }`},
		{"missing in", `ScanNetwork "x" { ScanRegister "A" { Length 1; } ScanOutSource Register "A"; }`},
		{"dup register", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; } ScanRegister "A" { Length 1; ScanInSource SI; } ScanOutSource Register "A"; }`},
		{"dup scanout", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; } ScanOutSource Register "A"; ScanOutSource Register "A"; }`},
		{"unknown module", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; Module "nope"; } ScanOutSource Register "A"; }`},
		{"bit range", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; CaptureSource 3 "f"; } ScanOutSource Register "A"; }`},
		{"empty mux", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; } ScanMux "M" { } ScanOutSource Register "A"; }`},
		{"unterminated string", `ScanNetwork "x { }`},
		{"garbage", `ScanNetwork "x" { % }`},
		{"cycle", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource Register "B"; } ScanRegister "B" { Length 1; ScanInSource Register "A"; } ScanOutSource Register "B"; }`},
		{"capture without binding", `ScanNetwork "x" { ScanRegister "A" { Length 1; ScanInSource SI; CaptureSource 0 "f"; } ScanOutSource Register "A"; }`},
	}
	for _, c := range cases {
		if _, err := ParseNetwork(c.src, nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// header comment
ScanNetwork "c" { // trailing
  ScanRegister "A" { Length 1; ScanInSource SI; } // inline
  ScanOutSource Register "A";
}`
	nw, err := ParseNetwork(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Registers) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestImplicitDefaultModule(t *testing.T) {
	src := `ScanNetwork "d" { ScanRegister "A" { Length 2; ScanInSource SI; } ScanOutSource Register "A"; }`
	nw, err := ParseNetwork(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Modules) != 1 || nw.Modules[0] != "default" {
		t.Fatalf("Modules = %v", nw.Modules)
	}
}

func TestWriteWithoutFFNameOnLinkedNetwork(t *testing.T) {
	lookup, _ := sampleLookup()
	nw, err := ParseNetwork(sample, lookup)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, nw, nil); err == nil {
		t.Fatal("expected error writing capture links without ffName")
	}
}

func TestIdentifiersWithDots(t *testing.T) {
	// FF names like "crypto.F0" appear in strings; identifiers with dots
	// appear in none of the keywords but must lex without error.
	lookup, _ := sampleLookup()
	if _, err := ParseNetwork(sample, lookup); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	src := "ScanNetwork \"x\" {\n  ScanRegister \"A\" {\n    Length 0;\n    ScanInSource SI;\n  }\n  ScanOutSource Register \"A\";\n}"
	_, err := ParseNetwork(src, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

const specSample = `
ScanNetwork "annotated" {
  Categories 4;
  Module "crypto" { Trust 3; Accepts 2, 3; }
  Module "untrusted" { Trust 0; Accepts 0, 1, 2, 3; }
  Module "plain";
  ScanRegister "A" { Length 2; ScanInSource SI; Module "crypto"; }
  ScanRegister "B" { Length 1; ScanInSource Register "A"; Module "untrusted"; }
  ScanRegister "C" { Length 1; ScanInSource Register "B"; Module "plain"; }
  ScanOutSource Register "C";
}
`

func TestParseSpecAnnotations(t *testing.T) {
	nw, spec, err := ParseNetworkAndSpec(specSample, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil {
		t.Fatal("spec missing")
	}
	if spec.NumCategories != 4 || spec.NumModules() != 3 {
		t.Fatalf("spec shape: %d cats %d modules", spec.NumCategories, spec.NumModules())
	}
	if spec.Trust[0] != 3 || spec.Trust[1] != 0 {
		t.Fatalf("trust: %v", spec.Trust)
	}
	if !spec.Violates(0, 1) {
		t.Fatal("crypto->untrusted must violate")
	}
	if spec.Violates(0, 2) {
		// Module "plain" is unannotated: trust 0... it defaults to
		// trust 0 and accepts-all, and crypto does not accept trust 0.
		// This is the expected conservative default.
		t.Log("crypto->plain violates under default trust 0 (conservative)")
	}
	if len(nw.Registers) != 3 {
		t.Fatal("network lost registers")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	nw, spec, err := ParseNetworkAndSpec(specSample, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteWithSpec(&sb, nw, spec, nil); err != nil {
		t.Fatal(err)
	}
	nw2, spec2, err := ParseNetworkAndSpec(sb.String(), nil)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if nw2.Stats() != nw.Stats() {
		t.Fatal("network changed in round trip")
	}
	if spec2 == nil || spec2.NumCategories != spec.NumCategories {
		t.Fatal("spec lost in round trip")
	}
	for m := range spec.Trust {
		if spec.Trust[m] != spec2.Trust[m] || spec.Accepts[m] != spec2.Accepts[m] {
			t.Fatalf("module %d spec differs: %v/%v vs %v/%v", m,
				spec.Trust[m], spec.Accepts[m], spec2.Trust[m], spec2.Accepts[m])
		}
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"category out of range", `ScanNetwork "x" { Categories 2; Module "m" { Trust 5; } ScanRegister "A" { Length 1; ScanInSource SI; Module "m"; } ScanOutSource Register "A"; }`},
		{"bad categories", `ScanNetwork "x" { Categories 0; ScanRegister "A" { Length 1; ScanInSource SI; } ScanOutSource Register "A"; }`},
		{"bad attr", `ScanNetwork "x" { Module "m" { Frob 1; } ScanRegister "A" { Length 1; ScanInSource SI; Module "m"; } ScanOutSource Register "A"; }`},
	}
	for _, c := range cases {
		if _, _, err := ParseNetworkAndSpec(c.src, nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNoSpecReturnsNil(t *testing.T) {
	_, spec, err := ParseNetworkAndSpec(sample, sampleLookupFunc(t))
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		t.Fatal("unannotated file must yield nil spec")
	}
}

func sampleLookupFunc(t *testing.T) func(string) (netlist.FFID, bool) {
	t.Helper()
	l, _ := sampleLookup()
	return l
}
