package icl

import (
	"fmt"
	"strconv"

	"repro/internal/netlist"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// File is the parsed form of an ICL description before resolution.
type File struct {
	Name      string
	Modules   []ModuleDecl
	Registers []RegisterDecl
	Muxes     []MuxDecl
	ScanOut   RefDecl
	// Categories is the declared trust-category universe size, or 0 if
	// no "Categories n;" declaration was present.
	Categories int
}

// ModuleDecl is a module declaration, optionally annotated with the
// security attributes of Kochte et al.: a trust category and the set of
// accepted trust categories.
type ModuleDecl struct {
	Name string
	// Trust is the module's trust category, or -1 if unannotated.
	Trust int
	// Accepts lists the accepted categories; nil means unrestricted.
	Accepts []int
	Line    int
}

// RefDecl is an unresolved element reference.
type RefDecl struct {
	Kind rsn.ElemKind // KScanIn, KRegister or KMux
	Name string       // element name for registers and muxes
	Line int
}

// LinkDecl is a capture/update association of one scan flip-flop with a
// named circuit flip-flop.
type LinkDecl struct {
	Bit  int
	FF   string
	Line int
}

// RegisterDecl is an unresolved scan register declaration.
type RegisterDecl struct {
	Name    string
	Length  int
	In      RefDecl
	Module  string
	Capture []LinkDecl
	Update  []LinkDecl
	Line    int
}

// MuxDecl is an unresolved scan multiplexer declaration.
type MuxDecl struct {
	Name   string
	Inputs []RefDecl
	Line   int
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("icl: line %d: expected %v, found %v %q", p.tok.line, k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return fmt.Errorf("icl: line %d: expected %q, found %q", p.tok.line, kw, p.tok.text)
	}
	return p.advance()
}

// Parse reads an ICL description into its unresolved form.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{ScanOut: RefDecl{Kind: rsn.KScanIn, Name: "", Line: 0}}
	scanOutSeen := false

	if err := p.expectKeyword("ScanNetwork"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	f.Name = name.text
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("icl: line %d: expected declaration, found %v %q", p.tok.line, p.tok.kind, p.tok.text)
		}
		switch p.tok.text {
		case "Categories":
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("icl: line %d: invalid category count %q", n.line, n.text)
			}
			f.Categories = v
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		case "Module":
			md, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			f.Modules = append(f.Modules, *md)
		case "ScanRegister":
			r, err := p.parseRegister()
			if err != nil {
				return nil, err
			}
			f.Registers = append(f.Registers, *r)
		case "ScanMux":
			m, err := p.parseMux()
			if err != nil {
				return nil, err
			}
			f.Muxes = append(f.Muxes, *m)
		case "ScanOutSource":
			if scanOutSeen {
				return nil, fmt.Errorf("icl: line %d: duplicate ScanOutSource", p.tok.line)
			}
			scanOutSeen = true
			if err := p.advance(); err != nil {
				return nil, err
			}
			ref, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			f.ScanOut = ref
		default:
			return nil, fmt.Errorf("icl: line %d: unknown declaration %q", p.tok.line, p.tok.text)
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	if !scanOutSeen {
		return nil, fmt.Errorf("icl: network %q lacks a ScanOutSource", f.Name)
	}
	return f, nil
}

// parseModule parses `Module "name";` or
// `Module "name" { Trust n; Accepts a, b, c; }`.
func (p *parser) parseModule() (*ModuleDecl, error) {
	md := &ModuleDecl{Trust: -1, Line: p.tok.line}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	md.Name = name.text
	if p.tok.kind == tokSemi {
		return md, p.advance()
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("icl: line %d: expected module attribute", p.tok.line)
		}
		switch p.tok.text {
		case "Trust":
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil {
				return nil, fmt.Errorf("icl: line %d: invalid trust %q", n.line, n.text)
			}
			md.Trust = v
		case "Accepts":
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				n, err := p.expect(tokNumber)
				if err != nil {
					return nil, err
				}
				v, err := strconv.Atoi(n.text)
				if err != nil {
					return nil, fmt.Errorf("icl: line %d: invalid category %q", n.line, n.text)
				}
				md.Accepts = append(md.Accepts, v)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("icl: line %d: unknown module attribute %q", p.tok.line, p.tok.text)
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
	}
	return md, p.advance()
}

func (p *parser) parseRef() (RefDecl, error) {
	line := p.tok.line
	if p.tok.kind != tokIdent {
		return RefDecl{}, fmt.Errorf("icl: line %d: expected reference, found %v", line, p.tok.kind)
	}
	switch p.tok.text {
	case "SI":
		return RefDecl{Kind: rsn.KScanIn, Line: line}, p.advance()
	case "Register":
		if err := p.advance(); err != nil {
			return RefDecl{}, err
		}
		n, err := p.expect(tokString)
		if err != nil {
			return RefDecl{}, err
		}
		return RefDecl{Kind: rsn.KRegister, Name: n.text, Line: line}, nil
	case "Mux":
		if err := p.advance(); err != nil {
			return RefDecl{}, err
		}
		n, err := p.expect(tokString)
		if err != nil {
			return RefDecl{}, err
		}
		return RefDecl{Kind: rsn.KMux, Name: n.text, Line: line}, nil
	}
	return RefDecl{}, fmt.Errorf("icl: line %d: expected SI, Register or Mux, found %q", line, p.tok.text)
}

func (p *parser) parseRegister() (*RegisterDecl, error) {
	r := &RegisterDecl{Line: p.tok.line, Length: -1, In: RefDecl{Kind: rsn.KScanIn, Name: "\x00unset"}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	r.Name = name.text
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	inSeen := false
	for p.tok.kind != tokRBrace {
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("icl: line %d: expected register item", p.tok.line)
		}
		switch p.tok.text {
		case "Length":
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("icl: line %d: invalid register length %q", n.line, n.text)
			}
			r.Length = v
		case "ScanInSource":
			if err := p.advance(); err != nil {
				return nil, err
			}
			ref, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			r.In = ref
			inSeen = true
		case "Module":
			if err := p.advance(); err != nil {
				return nil, err
			}
			m, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			r.Module = m.text
		case "CaptureSource", "UpdateSink":
			kw := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			bit, err := strconv.Atoi(n.text)
			if err != nil || bit < 0 {
				return nil, fmt.Errorf("icl: line %d: invalid bit index %q", n.line, n.text)
			}
			ff, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			l := LinkDecl{Bit: bit, FF: ff.text, Line: n.line}
			if kw == "CaptureSource" {
				r.Capture = append(r.Capture, l)
			} else {
				r.Update = append(r.Update, l)
			}
		default:
			return nil, fmt.Errorf("icl: line %d: unknown register item %q", p.tok.line, p.tok.text)
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if r.Length <= 0 {
		return nil, fmt.Errorf("icl: line %d: register %q lacks a Length", r.Line, r.Name)
	}
	if !inSeen {
		return nil, fmt.Errorf("icl: line %d: register %q lacks a ScanInSource", r.Line, r.Name)
	}
	for _, l := range append(append([]LinkDecl{}, r.Capture...), r.Update...) {
		if l.Bit >= r.Length {
			return nil, fmt.Errorf("icl: line %d: bit %d out of range for register %q of length %d", l.Line, l.Bit, r.Name, r.Length)
		}
	}
	return r, nil
}

func (p *parser) parseMux() (*MuxDecl, error) {
	m := &MuxDecl{Line: p.tok.line}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	m.Name = name.text
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		if err := p.expectKeyword("Input"); err != nil {
			return nil, err
		}
		ref, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		m.Inputs = append(m.Inputs, ref)
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if len(m.Inputs) == 0 {
		return nil, fmt.Errorf("icl: line %d: mux %q has no inputs", m.Line, m.Name)
	}
	return m, nil
}

// Build resolves a parsed file into a scan network. lookupFF resolves
// circuit flip-flop names referenced by CaptureSource/UpdateSink; it
// may be nil, in which case such references are an error.
func Build(f *File, lookupFF func(string) (netlist.FFID, bool)) (*rsn.Network, error) {
	nw := rsn.New(f.Name)
	modIdx := map[string]int{}
	for _, m := range f.Modules {
		if _, dup := modIdx[m.Name]; dup {
			return nil, fmt.Errorf("icl: line %d: duplicate module %q", m.Line, m.Name)
		}
		modIdx[m.Name] = nw.AddModule(m.Name)
	}
	regIdx := map[string]int{}
	muxIdx := map[string]int{}
	for _, r := range f.Registers {
		if _, dup := regIdx[r.Name]; dup {
			return nil, fmt.Errorf("icl: line %d: duplicate register %q", r.Line, r.Name)
		}
		mod := 0
		if r.Module != "" {
			mi, ok := modIdx[r.Module]
			if !ok {
				return nil, fmt.Errorf("icl: line %d: register %q references unknown module %q", r.Line, r.Name, r.Module)
			}
			mod = mi
		} else if len(f.Modules) == 0 {
			// Implicit default module.
			mod = nw.AddModule("default")
			modIdx["default"] = mod
			f.Modules = append(f.Modules, ModuleDecl{Name: "default", Trust: -1})
		}
		regIdx[r.Name] = nw.AddRegister(r.Name, r.Length, mod)
	}
	for _, m := range f.Muxes {
		if _, dup := muxIdx[m.Name]; dup {
			return nil, fmt.Errorf("icl: line %d: duplicate mux %q", m.Line, m.Name)
		}
		if _, dup := regIdx[m.Name]; dup {
			return nil, fmt.Errorf("icl: line %d: mux %q collides with a register name", m.Line, m.Name)
		}
		muxIdx[m.Name] = nw.AddMux(m.Name)
	}
	resolve := func(r RefDecl) (rsn.Ref, error) {
		switch r.Kind {
		case rsn.KScanIn:
			return rsn.ScanIn, nil
		case rsn.KRegister:
			id, ok := regIdx[r.Name]
			if !ok {
				return rsn.NoRef, fmt.Errorf("icl: line %d: unknown register %q", r.Line, r.Name)
			}
			return rsn.Reg(id), nil
		case rsn.KMux:
			id, ok := muxIdx[r.Name]
			if !ok {
				return rsn.NoRef, fmt.Errorf("icl: line %d: unknown mux %q", r.Line, r.Name)
			}
			return rsn.Mx(id), nil
		}
		return rsn.NoRef, fmt.Errorf("icl: line %d: unresolvable reference", r.Line)
	}
	for _, r := range f.Registers {
		src, err := resolve(r.In)
		if err != nil {
			return nil, err
		}
		id := regIdx[r.Name]
		nw.Connect(id, src)
		for _, l := range r.Capture {
			if lookupFF == nil {
				return nil, fmt.Errorf("icl: line %d: CaptureSource %q requires a circuit binding", l.Line, l.FF)
			}
			ff, ok := lookupFF(l.FF)
			if !ok {
				return nil, fmt.Errorf("icl: line %d: unknown circuit flip-flop %q", l.Line, l.FF)
			}
			nw.SetCapture(id, l.Bit, ff)
		}
		for _, l := range r.Update {
			if lookupFF == nil {
				return nil, fmt.Errorf("icl: line %d: UpdateSink %q requires a circuit binding", l.Line, l.FF)
			}
			ff, ok := lookupFF(l.FF)
			if !ok {
				return nil, fmt.Errorf("icl: line %d: unknown circuit flip-flop %q", l.Line, l.FF)
			}
			nw.SetUpdate(id, l.Bit, ff)
		}
	}
	for _, m := range f.Muxes {
		id := muxIdx[m.Name]
		for _, in := range m.Inputs {
			src, err := resolve(in)
			if err != nil {
				return nil, err
			}
			nw.Muxes[id].Inputs = append(nw.Muxes[id].Inputs, src)
		}
	}
	out, err := resolve(f.ScanOut)
	if err != nil {
		return nil, err
	}
	nw.ConnectOut(out)
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}

// ParseNetwork parses and resolves in one step.
func ParseNetwork(src string, lookupFF func(string) (netlist.FFID, bool)) (*rsn.Network, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(f, lookupFF)
}

// SpecFromFile extracts the security specification from a parsed
// file's module annotations. The category universe size comes from the
// "Categories" declaration or, absent one, from the largest category
// mentioned. It returns nil if no module carries annotations.
func SpecFromFile(f *File) (*secspec.Spec, error) {
	annotated := false
	maxCat := 0
	for _, m := range f.Modules {
		if m.Trust >= 0 || m.Accepts != nil {
			annotated = true
		}
		if m.Trust > maxCat {
			maxCat = m.Trust
		}
		for _, c := range m.Accepts {
			if c > maxCat {
				maxCat = c
			}
		}
	}
	if !annotated {
		return nil, nil
	}
	nCats := f.Categories
	if nCats == 0 {
		nCats = maxCat + 1
	}
	if maxCat >= nCats {
		return nil, fmt.Errorf("icl: category %d exceeds declared universe of %d", maxCat, nCats)
	}
	if nCats > secspec.MaxCategories {
		return nil, fmt.Errorf("icl: %d categories exceed the maximum of %d", nCats, secspec.MaxCategories)
	}
	spec := secspec.New(len(f.Modules), nCats)
	for i, m := range f.Modules {
		if m.Trust >= 0 {
			spec.SetTrust(i, secspec.Category(m.Trust))
		}
		if m.Accepts != nil {
			acc := secspec.CatSet(0)
			for _, c := range m.Accepts {
				acc = acc.With(secspec.Category(c))
			}
			spec.SetAccepts(i, acc)
		}
	}
	return spec, nil
}

// ParseNetworkAndSpec parses a description carrying security
// annotations, returning both the network and the specification (nil
// if the file has no annotations).
func ParseNetworkAndSpec(src string, lookupFF func(string) (netlist.FFID, bool)) (*rsn.Network, *secspec.Spec, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	nw, err := Build(f, lookupFF)
	if err != nil {
		return nil, nil, err
	}
	spec, err := SpecFromFile(f)
	if err != nil {
		return nil, nil, err
	}
	if spec != nil && spec.NumModules() != len(nw.Modules) {
		return nil, nil, fmt.Errorf("icl: specification covers %d modules, network has %d", spec.NumModules(), len(nw.Modules))
	}
	return nw, spec, nil
}
