// Package icl reads and writes scan network descriptions in a compact
// dialect of the IEEE 1687 Instrument Connectivity Language (ICL).
//
// The BASTION benchmark suite the paper evaluates on distributes its
// networks as ICL source files; this package gives the reproduction the
// same round-trippable textual form. The dialect covers exactly the
// constructs the secure-data-flow method needs: scan registers with
// lengths, module association and capture/update links, scan
// multiplexers, and the scan-in/scan-out ports.
//
// Grammar (informal):
//
//	file        := "ScanNetwork" string "{" decl* "}"
//	decl        := module | register | mux | scanout
//	module      := "Module" string ";"
//	register    := "ScanRegister" string "{" regItem* "}"
//	regItem     := "Length" number ";"
//	             | "ScanInSource" ref ";"
//	             | "Module" string ";"
//	             | "CaptureSource" number string ";"
//	             | "UpdateSink" number string ";"
//	mux         := "ScanMux" string "{" ("Input" ref ";")* "}"
//	scanout     := "ScanOutSource" ref ";"
//	ref         := "SI" | "Register" string | "Mux" string
package icl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLBrace
	tokRBrace
	tokSemi
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// next returns the next token, skipping whitespace and // comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", l.line}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", l.line}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", l.line}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", l.line}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, fmt.Errorf("icl: line %d: unterminated string", l.line)
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("icl: line %d: unterminated string", l.line)
		}
		l.pos++
		return token{tokString, sb.String(), l.line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], l.line}, nil
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], l.line}, nil
	}
	return token{}, fmt.Errorf("icl: line %d: unexpected character %q", l.line, c)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
