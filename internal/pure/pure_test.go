package pure

import (
	"math/rand"
	"testing"

	"repro/internal/rsn"
	"repro/internal/secspec"
)

// chainSpec builds SI -> A(crypto) -> B(untrusted) -> C(plain) -> SO and
// a spec where crypto data must not traverse untrusted segments.
func chainSpec() (*rsn.Network, *secspec.Spec) {
	nw := rsn.New("chain")
	crypto := nw.AddModule("crypto")
	untrusted := nw.AddModule("untrusted")
	plain := nw.AddModule("plain")
	a := nw.AddRegister("A", 2, crypto)
	b := nw.AddRegister("B", 2, untrusted)
	c := nw.AddRegister("C", 2, plain)
	nw.Connect(a, rsn.ScanIn)
	nw.Connect(b, rsn.Reg(a))
	nw.Connect(c, rsn.Reg(b))
	nw.ConnectOut(rsn.Reg(c))

	spec := secspec.New(3, 4)
	spec.SetTrust(crypto, 3)
	spec.SetAccepts(crypto, secspec.NewCatSet(2, 3)) // only high trust
	spec.SetTrust(untrusted, 0)
	spec.SetAccepts(untrusted, secspec.AllCats(4))
	spec.SetTrust(plain, 2)
	spec.SetAccepts(plain, secspec.AllCats(4))
	return nw, spec
}

func TestPropagateChain(t *testing.T) {
	nw, spec := chainSpec()
	p := Propagate(nw, spec)
	if got := p.Out(rsn.ScanIn); got != secspec.AllCats(4) {
		t.Fatalf("scan-in out = %v", got)
	}
	// A's incoming attribute is unrestricted; its outgoing is {2,3}
	// (crypto accepts plus its own trust).
	if got := p.In(rsn.Reg(0)); got != secspec.AllCats(4) {
		t.Fatalf("A in = %v", got)
	}
	if got := p.Out(rsn.Reg(0)); got != secspec.NewCatSet(2, 3) {
		t.Fatalf("A out = %v", got)
	}
	// B (trust 0) receives {2,3}: violation.
	if len(p.Violating) != 1 || p.Violating[0] != 1 {
		t.Fatalf("Violating = %v", p.Violating)
	}
	// C (trust 2) is fine: bit 2 present in its incoming attribute.
	if !p.In(rsn.Reg(2)).Has(2) {
		t.Fatal("C must accept its own data")
	}
}

func TestFindCulprit(t *testing.T) {
	nw, spec := chainSpec()
	x, ok := FindCulprit(nw, spec, 1)
	if !ok || x != 0 {
		t.Fatalf("culprit = %d, %v", x, ok)
	}
	if _, ok := FindCulprit(nw, spec, 2); ok {
		t.Fatal("C has no culprit")
	}
}

func TestResolveChain(t *testing.T) {
	nw, spec := chainSpec()
	res, err := Resolve(nw, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatingBefore != 1 {
		t.Fatalf("ViolatingBefore = %d", res.ViolatingBefore)
	}
	if len(res.Changes) == 0 {
		t.Fatal("expected at least one change")
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("network invalid after resolve: %v", err)
	}
	if v := ViolatingRegisters(nw, spec); len(v) != 0 {
		t.Fatalf("violations remain: %v", v)
	}
	if nw.PureReaches(rsn.Reg(0), rsn.Reg(1)) {
		t.Fatal("crypto data still reaches untrusted register")
	}
	// All registers still present and accessible (Validate checked
	// reachability; double-check count).
	if len(nw.Registers) != 3 {
		t.Fatal("registers lost")
	}
}

func TestResolveNoViolations(t *testing.T) {
	nw, spec := chainSpec()
	// Loosen the spec: crypto accepts everything.
	spec.SetAccepts(0, secspec.AllCats(4))
	res, err := Resolve(nw, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 || res.ViolatingBefore != 0 {
		t.Fatalf("unexpected changes: %+v", res)
	}
}

func TestResolveDiamondPrefersCheapCut(t *testing.T) {
	// SI -> A(crypto) -> B(untrusted) ; SI -> D(plain) ; M{A,D} -> ...
	//
	//	SI -> A -> M0{A, D} -> B -> SO
	//	SI -> D
	//
	// Cutting B's input from M0 and reconnecting to D resolves the
	// violation without losing access to any register.
	nw := rsn.New("diamond")
	crypto := nw.AddModule("crypto")
	untrusted := nw.AddModule("untrusted")
	plain := nw.AddModule("plain")
	a := nw.AddRegister("A", 2, crypto)
	d := nw.AddRegister("D", 2, plain)
	b := nw.AddRegister("B", 2, untrusted)
	nw.Connect(a, rsn.ScanIn)
	nw.Connect(d, rsn.ScanIn)
	m := nw.AddMux("M0", rsn.Reg(a), rsn.Reg(d))
	nw.Connect(b, rsn.Mx(m))
	mo := nw.AddMux("MO", rsn.Reg(b), rsn.Reg(a))
	nw.ConnectOut(rsn.Mx(mo))

	spec := secspec.New(3, 4)
	spec.SetTrust(crypto, 3)
	spec.SetAccepts(crypto, secspec.NewCatSet(2, 3))
	spec.SetTrust(untrusted, 0)
	spec.SetAccepts(untrusted, secspec.AllCats(4))
	spec.SetTrust(plain, 2)
	spec.SetAccepts(plain, secspec.AllCats(4))

	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Resolve(nw, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("changes = %v", res.Changes)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ViolatingRegisters(nw, spec)) != 0 {
		t.Fatal("violations remain")
	}
	if nw.PureReaches(rsn.Reg(a), rsn.Reg(b)) {
		t.Fatal("A still reaches B")
	}
	// D must still be able to feed B or B be fed from scan-in; B must
	// still be accessible — Validate covers it.
}

func TestResolveMultipleViolations(t *testing.T) {
	// Two untrusted registers downstream of crypto.
	nw := rsn.New("multi")
	crypto := nw.AddModule("crypto")
	u1 := nw.AddModule("u1")
	u2 := nw.AddModule("u2")
	a := nw.AddRegister("A", 1, crypto)
	b := nw.AddRegister("B", 1, u1)
	c := nw.AddRegister("C", 1, u2)
	nw.Connect(a, rsn.ScanIn)
	nw.Connect(b, rsn.Reg(a))
	nw.Connect(c, rsn.Reg(b))
	nw.ConnectOut(rsn.Reg(c))

	spec := secspec.New(3, 4)
	spec.SetTrust(crypto, 3)
	spec.SetAccepts(crypto, secspec.NewCatSet(3))
	spec.SetTrust(u1, 0)
	spec.SetAccepts(u1, secspec.AllCats(4))
	spec.SetTrust(u2, 1)
	spec.SetAccepts(u2, secspec.AllCats(4))

	res, err := Resolve(nw, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ViolatingRegisters(nw, spec)) != 0 {
		t.Fatal("violations remain")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) == 0 {
		t.Fatal("expected changes")
	}
	if nw.PureReaches(rsn.Reg(a), rsn.Reg(b)) || nw.PureReaches(rsn.Reg(a), rsn.Reg(c)) {
		t.Fatal("crypto data still reaches untrusted registers")
	}
}

// randomNetwork builds a random acyclic scan network with one module
// per register.
func randomNetwork(rng *rand.Rand, nRegs int) *rsn.Network {
	nw := rsn.New("rand")
	for i := 0; i < nRegs; i++ {
		m := nw.AddModule("mod" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		nw.AddRegister("R"+string(rune('A'+i%26))+string(rune('0'+i/26)), 1+rng.Intn(4), m)
	}
	// Connect register i to a random earlier element (acyclic by
	// construction), occasionally through a mux over earlier elements.
	for i := 0; i < nRegs; i++ {
		pick := func() rsn.Ref {
			if i == 0 || rng.Intn(4) == 0 {
				return rsn.ScanIn
			}
			return rsn.Reg(rng.Intn(i))
		}
		if i > 1 && rng.Intn(3) == 0 {
			a, b := pick(), pick()
			if a == b {
				b = rsn.ScanIn
			}
			if a == b {
				nw.Connect(i, a)
				continue
			}
			m := nw.AddMux("mux", a, b)
			nw.Connect(i, rsn.Mx(m))
		} else {
			nw.Connect(i, pick())
		}
	}
	// Scan-out: mux over all sink-less registers so everything reaches
	// the scan-out port.
	var dangling []rsn.Ref
	for i := 0; i < nRegs; i++ {
		if len(nw.Sinks(rsn.Reg(i))) == 0 {
			dangling = append(dangling, rsn.Reg(i))
		}
	}
	switch len(dangling) {
	case 0:
		nw.ConnectOut(rsn.Reg(nRegs - 1))
	case 1:
		nw.ConnectOut(dangling[0])
	default:
		m := nw.AddMux("mout", dangling...)
		nw.ConnectOut(rsn.Mx(m))
	}
	return nw
}

func TestResolveRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	resolvedSomething := false
	for iter := 0; iter < 40; iter++ {
		nRegs := 4 + rng.Intn(10)
		nw := randomNetwork(rng, nRegs)
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: generated network invalid: %v", iter, err)
		}
		spec := secspec.Generate(len(nw.Modules), secspec.DefaultGenConfig(), rng.Int63())
		before := len(ViolatingRegisters(nw, spec))
		res, err := Resolve(nw, spec)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("iter %d: invalid after resolve: %v", iter, err)
		}
		if v := ViolatingRegisters(nw, spec); len(v) != 0 {
			t.Fatalf("iter %d: %d violations remain", iter, len(v))
		}
		if len(nw.Registers) != nRegs {
			t.Fatalf("iter %d: register count changed", iter)
		}
		if before > 0 {
			resolvedSomething = true
			if len(res.Changes) == 0 {
				t.Fatalf("iter %d: violations existed but no changes", iter)
			}
		}
	}
	if !resolvedSomething {
		t.Fatal("test never exercised resolution; adjust generator")
	}
}

func TestChangeCostAndString(t *testing.T) {
	c := Change{Cut: rsn.Sink{Elem: rsn.Reg(1)}, OldSrc: rsn.Reg(0), NewSrc: rsn.ScanIn, NewMuxes: 1}
	if c.Cost() != 2 {
		t.Fatalf("Cost = %d", c.Cost())
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}
