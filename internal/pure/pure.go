// Package pure detects and resolves security violations over pure scan
// paths — paths that use only the scan infrastructure — implementing
// the method of Raiola et al. (IOLTS 2018) that the secure-data-flow
// paper applies as its first stage (Figure 2).
//
// Security attributes are propagated once, forward, from the scan-in
// port over every scan segment toward the scan-out port: the attribute
// arriving at a segment is the intersection of the accepted-category
// masks of everything upstream. A segment whose own trust category is
// missing from its incoming attribute sits on a configurable scan path
// downstream of data that must not traverse it — a violation. Found
// violations are resolved by cutting the offending connection and
// re-connecting the separated segments, choosing the lowest-cost
// candidate that keeps the network acyclic and every register
// accessible.
package pure

import (
	"fmt"
	"sort"

	"repro/internal/rsn"
	"repro/internal/secspec"
)

// Propagation holds the forward-propagated security attributes of one
// network under one specification. Attributes live in flat per-element
// arrays keyed by the network's dense reference index — the resolve
// loop re-propagates once per candidate trial, where the former
// map-of-Ref representation dominated the allocation profile.
type Propagation struct {
	nw *rsn.Network
	// in and out hold the attribute (accepted-category mask) arriving
	// at and leaving each element, keyed by Network.RefIndex.
	in, out []secspec.CatSet
	// Violating lists the registers whose trust category is missing
	// from their incoming attribute, ascending.
	Violating []int
}

// In returns the attribute arriving at the element.
func (p *Propagation) In(r rsn.Ref) secspec.CatSet { return p.in[p.nw.RefIndex(r)] }

// Out returns the attribute leaving the element.
func (p *Propagation) Out(r rsn.Ref) secspec.CatSet { return p.out[p.nw.RefIndex(r)] }

// Propagate computes security attributes over all pure scan paths with
// a single forward traversal in topological order.
func Propagate(nw *rsn.Network, spec *secspec.Spec) *Propagation {
	all := secspec.AllCats(spec.NumCategories)
	n := nw.NumRefs()
	p := &Propagation{
		nw:  nw,
		in:  make([]secspec.CatSet, n),
		out: make([]secspec.CatSet, n),
	}
	// Source attributes are read through out[RefIndex(src)]; an invalid
	// source (an unconnected pin) contributes no constraint, matching a
	// missing input. The topological order guarantees sources are final
	// before their sinks are evaluated.
	srcOut := func(src rsn.Ref) secspec.CatSet {
		if src == rsn.NoRef || !src.IsValid() {
			return all
		}
		return p.out[nw.RefIndex(src)]
	}
	for _, r := range nw.ElementTopoOrder() {
		idx := nw.RefIndex(r)
		switch r.Kind {
		case rsn.KScanIn:
			p.in[idx] = all
			p.out[idx] = all
		case rsn.KRegister:
			reg := &nw.Registers[r.ID]
			in := srcOut(reg.In)
			p.in[idx] = in
			if !in.Has(spec.Trust[reg.Module]) {
				p.Violating = append(p.Violating, int(r.ID))
			}
			p.out[idx] = in & spec.Accepts[reg.Module]
		case rsn.KMux:
			in := all
			for _, src := range nw.Muxes[r.ID].Inputs {
				in &= srcOut(src)
			}
			p.in[idx] = in
			p.out[idx] = in
		case rsn.KScanOut:
			in := srcOut(nw.OutSrc)
			p.in[idx] = in
			p.out[idx] = in
		}
	}
	sort.Ints(p.Violating)
	return p
}

// ViolatingRegisters returns the registers with a pure-path violation,
// ascending.
func ViolatingRegisters(nw *rsn.Network, spec *secspec.Spec) []int {
	return Propagate(nw, spec).Violating
}

// FindCulprit returns a register upstream of y whose data must not
// traverse y, if any.
func FindCulprit(nw *rsn.Network, spec *secspec.Spec, y int) (int, bool) {
	ymod := nw.Registers[y].Module
	for _, x := range nw.PurePredecessors(y) {
		if spec.Violates(nw.Registers[x].Module, ymod) {
			return x, true
		}
	}
	return 0, false
}

// Change records one applied structural modification bundle.
type Change struct {
	// Cut is the input pin that was disconnected.
	Cut rsn.Sink
	// OldSrc is the source the pin was disconnected from.
	OldSrc rsn.Ref
	// NewSrc is the source the pin was re-connected to.
	NewSrc rsn.Ref
	// NewMuxes counts scan multiplexers inserted while re-attaching
	// separated segments.
	NewMuxes int
	// Violation is the (source register, violating register) pair the
	// change resolved.
	Violation [2]int
}

// Cost is the structural cost of the change: one for the re-route plus
// one per inserted multiplexer, the metric minimized by the candidate
// selection.
func (c Change) Cost() int { return 1 + c.NewMuxes }

func (c Change) String() string {
	return fmt.Sprintf("cut %v<-%v, reconnect to %v (+%d mux)", c.Cut.Elem, c.OldSrc, c.NewSrc, c.NewMuxes)
}

// Result summarizes a resolution run.
type Result struct {
	Changes []Change
	// ViolatingBefore is the number of violating registers before any
	// change was applied.
	ViolatingBefore int
}

// maxRounds bounds the resolve loop; beyond it only the provably
// terminating scan-in fallback candidate is used.
func maxRounds(nw *rsn.Network) int { return 4*len(nw.Registers) + 16 }

// Resolve repeatedly finds and repairs pure-path violations until the
// network is pure-path secure. It mutates nw and returns the applied
// changes. The current wiring's attributes are propagated once per
// round and reused for candidate filtering and the before count —
// only candidate trials re-propagate.
func Resolve(nw *rsn.Network, spec *secspec.Spec) (*Result, error) {
	res := &Result{}
	first := true
	for round := 0; ; round++ {
		p := Propagate(nw, spec)
		if first {
			res.ViolatingBefore = len(p.Violating)
			first = false
		}
		if len(p.Violating) == 0 {
			return res, nil
		}
		y := p.Violating[0]
		x, ok := FindCulprit(nw, spec, y)
		if !ok {
			return res, fmt.Errorf("pure: register R%d violates but no culprit found", y)
		}
		ch, err := resolveOne(nw, spec, p, x, y, round >= maxRounds(nw))
		if err != nil {
			return res, err
		}
		res.Changes = append(res.Changes, ch)
	}
}

// resolveOne repairs the flow from register x into register y by
// cutting a connection on the way and re-connecting the separated
// segments. p is the current wiring's propagation. With fallbackOnly
// set, only the always-valid candidate (connect y to the scan-in port)
// is considered.
func resolveOne(nw *rsn.Network, spec *secspec.Spec, p *Propagation, x, y int, fallbackOnly bool) (Change, error) {
	type candidate struct {
		pin    rsn.Sink
		newSrc rsn.Ref
	}
	pin := rsn.Sink{Elem: rsn.Reg(y), Idx: 0}
	oldSrc := nw.Registers[y].In

	var cands []candidate
	if !fallbackOnly {
		// Re-connecting y to a pure-path predecessor keeps y deep in the
		// network; acceptable when the predecessor's data is compatible.
		// The candidate count is capped: evaluating every predecessor of
		// a deep chain position costs a clone and a re-propagation each.
		const maxPredCandidates = 6
		preds := nw.PurePredecessors(y)
		ymod := nw.Registers[y].Module
		for _, pr := range preds {
			src := rsn.Reg(pr)
			if src == oldSrc {
				continue
			}
			if p.Out(src).Has(spec.Trust[ymod]) {
				cands = append(cands, candidate{pin, src})
				if len(cands) >= maxPredCandidates {
					break
				}
			}
		}
	}
	// The scan-in fallback is always valid and provably terminating.
	cands = append(cands, candidate{pin, rsn.ScanIn})

	before := len(p.Violating)
	type scored struct {
		c     candidate
		cost  int
		after int
		trial *rsn.Network
	}
	var results []scored
	for _, c := range cands {
		trial := nw.Clone()
		muxes, err := trial.CutAndReconnect(c.pin, c.newSrc)
		if err != nil {
			continue
		}
		tp := Propagate(trial, spec)
		// The targeted violation must be gone and the overall number of
		// violating registers must not grow.
		if containsInt(tp.Violating, y) && stillFlows(trial, x, y) {
			continue
		}
		if len(tp.Violating) > before {
			continue
		}
		results = append(results, scored{c, 1 + muxes, len(tp.Violating), trial})
	}
	// Structural validation is deferred to winner selection: candidates
	// rarely fail it, and discarding an invalid minimum one at a time
	// selects exactly the minimum-cost valid candidate.
	var best *scored
	for {
		best = nil
		for i := range results {
			s := &results[i]
			if s.trial == nil {
				continue
			}
			if best == nil || s.cost < best.cost || (s.cost == best.cost && s.after < best.after) {
				best = s
			}
		}
		if best == nil || best.trial.Validate() == nil {
			break
		}
		best.trial = nil
	}
	if best == nil {
		// The fallback candidate cannot fail validation; reaching this
		// point indicates an internal inconsistency.
		return Change{}, fmt.Errorf("pure: no valid candidate to separate R%d from R%d", x, y)
	}
	muxes, err := nw.CutAndReconnect(best.c.pin, best.c.newSrc)
	if err != nil {
		return Change{}, err
	}
	return Change{
		Cut:       best.c.pin,
		OldSrc:    oldSrc,
		NewSrc:    best.c.newSrc,
		NewMuxes:  muxes,
		Violation: [2]int{x, y},
	}, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// stillFlows reports whether data from register x can still reach
// register y over pure paths.
func stillFlows(nw *rsn.Network, x, y int) bool {
	return nw.PureReaches(rsn.Reg(x), rsn.Reg(y))
}
