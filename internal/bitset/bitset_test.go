package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Any() {
		t.Fatal("fresh set must be empty")
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 4 {
		t.Fatal("Clear failed")
	}
	if !s.Any() {
		t.Fatal("Any must be true")
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestOr(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	b.Set(3)
	b.Set(70)
	if !a.Or(b) {
		t.Fatal("Or must report change")
	}
	if !a.Has(70) || !a.Has(3) || a.Count() != 2 {
		t.Fatal("Or result wrong")
	}
	if a.Or(b) {
		t.Fatal("second Or must report no change")
	}
}

func TestAndNot(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(65)
	b.Set(65)
	a.AndNot(b)
	if a.Has(65) || !a.Has(1) {
		t.Fatal("AndNot wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(10)
	b := a.Clone()
	b.Set(20)
	if a.Has(20) {
		t.Fatal("clone shares storage")
	}
	if !b.Has(10) {
		t.Fatal("clone lost bits")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{0, 5, 63, 64, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIntersectsWith(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(100)
	b.Set(101)
	if a.IntersectsWith(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Set(100)
	if !a.IntersectsWith(b) {
		t.Fatal("intersection missed")
	}
}

func TestQuickAgainstMap(t *testing.T) {
	// Property: a Set behaves like a map[int]bool under random ops.
	f := func(ops []uint16) bool {
		const n = 300
		s := New(n)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			switch (op / 300) % 3 {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !s.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrChangeDetectionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		a, b := New(256), New(256)
		for i := 0; i < 40; i++ {
			a.Set(rng.Intn(256))
			b.Set(rng.Intn(256))
		}
		before := a.Clone()
		changed := a.Or(b)
		grew := a.Count() > before.Count()
		if changed != grew {
			t.Fatalf("Or change=%v but count %d -> %d", changed, before.Count(), a.Count())
		}
	}
}
