// Package bitset provides a dense fixed-size bit set used by the
// dependency matrices: one row per flip-flop, one bit per potential
// dependency source. The multi-cycle closure is bit-parallel over rows.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. Create one with New; the zero value
// is an empty set of capacity 0.
type Set struct {
	words []uint64
	n     int
}

// New returns a set with capacity for n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets s to s ∪ o and reports whether s changed. The sets must have
// equal capacity.
func (s *Set) Or(o *Set) bool {
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot sets s to s \ o.
func (s *Set) AndNot(o *Set) {
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	cp := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(cp.words, s.words)
	return cp
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls f with every set bit index in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o have the same length and members.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// IntersectsWith reports whether s ∩ o is non-empty.
func (s *Set) IntersectsWith(o *Set) bool {
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}
