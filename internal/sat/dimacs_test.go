package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	n, clauses, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(clauses) != 2 {
		t.Fatalf("n=%d clauses=%d", n, len(clauses))
	}
	if clauses[0][0] != PosLit(1) || clauses[0][1] != NegLit(2) {
		t.Fatalf("clause 0 = %v", clauses[0])
	}
}

func TestParseDIMACSNoHeader(t *testing.T) {
	n, clauses, err := ParseDIMACS(strings.NewReader("1 2 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(clauses) != 2 {
		t.Fatalf("n=%d m=%d", n, len(clauses))
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	_, clauses, err := ParseDIMACS(strings.NewReader("1 2\n3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 || len(clauses[0]) != 3 {
		t.Fatalf("clauses = %v", clauses)
	}
}

func TestParseDIMACSTrailingClause(t *testing.T) {
	_, clauses, err := ParseDIMACS(strings.NewReader("1 -2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 {
		t.Fatalf("clauses = %v", clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, src := range []string{"p cnf x 2\n", "p cnf\n", "1 foo 0\n"} {
		if _, _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestLoadDIMACSSolve(t *testing.T) {
	// (x1) & (~x1 | x2) & (~x2 | x3) & (~x3) is UNSAT.
	src := "p cnf 3 4\n1 0\n-1 2 0\n-2 3 0\n-3 0\n"
	s, err := LoadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		s1 := New()
		n := 4 + rng.Intn(8)
		for v := 0; v < n; v++ {
			s1.NewVar()
		}
		m := 3 + rng.Intn(4*n)
		var clauses [][]Lit
		for c := 0; c < m; c++ {
			cl := make([]Lit, 1+rng.Intn(4))
			for j := range cl {
				cl[j] = MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0)
			}
			clauses = append(clauses, cl)
			if !s1.AddClause(cl...) {
				break
			}
		}
		var sb strings.Builder
		if err := s1.WriteDIMACS(&sb); err != nil {
			t.Fatal(err)
		}
		s2, err := LoadDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		// Same satisfiability (clauses simplified at level 0 may differ
		// syntactically, but the formula is equisatisfiable: the writer
		// emits the simplified problem plus the level-0 units are baked
		// into assignments... compare against a fresh solver over the
		// original clauses instead).
		ref := New()
		for v := 0; v < n; v++ {
			ref.NewVar()
		}
		refOK := true
		for _, cl := range clauses {
			if !ref.AddClause(cl...) {
				refOK = false
				break
			}
		}
		want := refOK && ref.Solve() == Sat
		got := s2.Solve() == Sat && s1.Solve() == Sat
		_ = got
		// The round-tripped formula may lack level-0 units (they are
		// assignments, not clauses), so it is weaker; it must be SAT
		// whenever the original is.
		if want && s2.Solve() != Sat {
			t.Fatalf("iter %d: round trip lost satisfiability", iter)
		}
	}
}

func TestReduceDBKeepsCorrectness(t *testing.T) {
	// A formula hard enough to trigger learning and reduction, solved
	// with a tiny reduction threshold.
	s := New()
	addPigeonhole(s, 8, 7)
	s.maxLearnts = 50 // force frequent reductions
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	if s.Stats.Deleted == 0 {
		t.Fatal("expected deleted clauses with tiny maxLearnts")
	}
	// A satisfiable instance under the same pressure.
	s2 := New()
	addPigeonhole(s2, 7, 7)
	s2.maxLearnts = 50
	if got := s2.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}
