// Package sat implements a small conflict-driven clause-learning (CDCL)
// satisfiability solver.
//
// The solver is the substrate for the SAT-based dependency computation of
// Soeken et al. (HVC 2016), which the secure-data-flow method uses to
// distinguish functional from only-structural dependencies in circuit
// logic. It supports incremental solving under assumptions, two-watched
// literal propagation, first-UIP clause learning, activity-based
// branching with phase saving, and Luby restarts.
package sat

import (
	"errors"
	"fmt"
)

// Var is a propositional variable. Valid variables are >= 1.
type Var int32

// Lit is a literal: a variable or its negation.
// The encoding is 2*v for the positive literal of v and 2*v+1 for the
// negative literal. The zero Lit is invalid and used as a sentinel.
type Lit int32

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit returns the literal of v with the given sign. A true sign means
// the negative literal, matching the MiniSat convention.
func MkLit(v Var, neg bool) Lit {
	if neg {
		return NegLit(v)
	}
	return PosLit(v)
}

// Var returns the variable of the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as "v3" or "~v3".
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver has not produced a result.
	Unknown Status = iota
	// Sat means the formula is satisfiable.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// value of a variable during search.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	cref    int // index into clauses
	blocker Lit // a literal whose truth satisfies the clause cheaply
}

type varData struct {
	assign   lbool
	level    int32
	reason   int // clause reference or -1
	activity float64
	phase    bool // saved phase: true = last assigned false (negative)
	seen     bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// solvers with New.
type Solver struct {
	vars    []varData // index 0 unused
	clauses []clause
	watches [][]watcher // indexed by Lit

	trail    []Lit
	trailLim []int
	qhead    int

	varInc    float64
	clauseInc float64

	order *varHeap

	ok    bool   // false once a top-level conflict is found
	model []bool // last satisfying assignment, indexed by Var

	// learned-clause database reduction
	numLearnt  int
	maxLearnts int

	// statistics
	Stats Statistics

	budget int64 // max conflicts; <=0 means unlimited
}

// Statistics accumulates solver counters across Solve calls.
type Statistics struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learnt       int64
	Deleted      int64
	Restarts     int64
}

// ErrBudget is returned by SolveLimited when the conflict budget is
// exhausted before a result is established.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:    1.0,
		clauseInc: 1.0,
		ok:        true,
	}
	s.vars = make([]varData, 1) // index 0 unused
	s.watches = make([][]watcher, 2)
	s.order = newVarHeap(s)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.vars))
	s.vars = append(s.vars, varData{assign: lUndef, reason: -1})
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int {
	n := 0
	for i := range s.clauses {
		if !s.clauses[i].learnt && !s.clauses[i].deleted {
			n++
		}
	}
	return n
}

// ensureVar grows the variable tables so that v is valid.
func (s *Solver) ensureVar(v Var) {
	for Var(len(s.vars)) <= v {
		s.NewVar()
	}
}

func (s *Solver) litValue(l Lit) lbool {
	a := s.vars[l.Var()].assign
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a clause over the given literals. It returns false if
// the solver is already in an unsatisfiable state (including the case
// where the new clause is empty after simplification at level 0).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Normalize: sort-free dedup, drop false lits, detect tautology.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l <= 1 {
			panic("sat: invalid literal")
		}
		s.ensureVar(l.Var())
		switch s.litValue(l) {
		case lTrue:
			return true // clause already satisfied at level 0
		case lFalse:
			continue // literal cannot help
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.ok = false
			return false
		}
		if conf := s.propagate(); conf != -1 {
			s.ok = false
			return false
		}
		return true
	}
	cref := len(s.clauses)
	s.clauses = append(s.clauses, clause{lits: out})
	s.watchClause(cref)
	return true
}

func (s *Solver) watchClause(cref int) {
	c := &s.clauses[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns literal l to true with the given reason clause.
// It returns false on an immediate conflict with an existing assignment.
func (s *Solver) enqueue(l Lit, reason int) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	vd := &s.vars[l.Var()]
	if l.Neg() {
		vd.assign = lFalse
	} else {
		vd.assign = lTrue
	}
	vd.level = int32(s.decisionLevel())
	vd.reason = reason
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation. It returns the reference of a
// conflicting clause, or -1 if no conflict occurred.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			c := &s.clauses[w.cref]
			if c.deleted {
				continue // drop the watcher of a reduced clause
			}
			if s.litValue(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			// Ensure the false literal (p.Not()) is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[n] = watcher{w.cref, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{w.cref, first}
			n++
			if s.litValue(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.enqueue(first, w.cref)
		}
		s.watches[p] = ws[:n]
	}
	return -1
}

// analyze performs first-UIP conflict analysis. It returns the learnt
// clause (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for asserting literal
	seenCount := 0
	p := Lit(0)
	idx := len(s.trail) - 1
	var toClear []Var

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != 0 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			vd := &s.vars[v]
			if !vd.seen && vd.level > 0 {
				vd.seen = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if int(vd.level) >= s.decisionLevel() {
					seenCount++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to look at.
		for !s.vars[s.trail[idx].Var()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.vars[p.Var()].reason
		s.vars[p.Var()].seen = false
		seenCount--
		if seenCount == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Minimize: remove literals implied by the rest of the clause.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learnt = out

	// Find backtrack level: max level among lits[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.vars[learnt[i].Var()].level > s.vars[learnt[maxI].Var()].level {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.vars[learnt[1].Var()].level)
	}
	for _, v := range toClear {
		s.vars[v].seen = false
	}
	return learnt, btLevel
}

// redundant reports whether literal l in a learnt clause is implied by
// the remaining seen literals (simple local minimization: every literal
// of its reason clause must be seen or at level 0).
func (s *Solver) redundant(l Lit) bool {
	r := s.vars[l.Var()].reason
	if r < 0 {
		return false
	}
	for _, q := range s.clauses[r].lits {
		if q.Var() == l.Var() {
			continue
		}
		vd := &s.vars[q.Var()]
		if !vd.seen && vd.level > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v Var) {
	s.vars[v].activity += s.varInc
	if s.vars[v].activity > 1e100 {
		for i := 1; i < len(s.vars); i++ {
			s.vars[i].activity *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(cref int) {
	c := &s.clauses[cref]
	c.act += s.clauseInc
	if c.act > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learnt {
				s.clauses[i].act *= 1e-20
			}
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

// backtrackTo undoes assignments above the given decision level.
func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		vd := &s.vars[l.Var()]
		vd.phase = l.Neg()
		vd.assign = lUndef
		vd.reason = -1
		s.order.push(l.Var())
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = limit
}

// pickBranchLit selects the next decision literal, or 0 if all variables
// are assigned.
func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.pop()
		if !ok {
			return 0
		}
		if s.vars[v].assign == lUndef {
			return MkLit(v, s.vars[v].phase)
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// SetConflictBudget limits subsequent Solve calls to approximately n
// conflicts; n <= 0 removes the limit.
func (s *Solver) SetConflictBudget(n int64) { s.budget = n }

// Solve determines satisfiability under the given assumptions. The
// assumptions hold only for this call.
func (s *Solver) Solve(assumptions ...Lit) Status {
	st, _ := s.SolveLimited(assumptions...)
	return st
}

// SolveLimited is Solve with support for conflict budgets: it returns
// ErrBudget if the budget set via SetConflictBudget was exhausted
// before a result could be established.
//
// After every backtrack the main loop re-establishes the assumption
// prefix, one assumption per decision level; a falsified assumption
// means unsatisfiability under the assumptions.
func (s *Solver) SolveLimited(assumptions ...Lit) (Status, error) {
	if !s.ok {
		return Unsat, nil
	}
	for _, a := range assumptions {
		s.ensureVar(a.Var())
	}
	defer s.backtrackTo(0)

	conflictsAtStart := s.Stats.Conflicts
	restartIdx := int64(1)
	restartLimit := int64(100) * luby(restartIdx)

	for {
		confl := s.propagate()
		if confl != -1 {
			s.Stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat, nil
			}
			learnt, btLevel := s.analyze(confl)
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				if btLevel != 0 {
					s.backtrackTo(0)
				}
				if !s.enqueue(learnt[0], -1) {
					s.ok = false
					return Unsat, nil
				}
			} else {
				cref := s.learnClause(learnt)
				s.enqueue(learnt[0], cref)
			}
			s.decayActivities()
			if s.maxLearnts == 0 {
				s.maxLearnts = s.NumClauses()/3 + 2000
			}
			if s.numLearnt > s.maxLearnts {
				s.reduceDB()
				s.maxLearnts += s.maxLearnts / 10
			}
			if s.budget > 0 && s.Stats.Conflicts-conflictsAtStart >= s.budget {
				return Unknown, ErrBudget
			}
			if s.Stats.Conflicts-conflictsAtStart >= restartLimit {
				s.Stats.Restarts++
				restartIdx++
				restartLimit = s.Stats.Conflicts - conflictsAtStart + 100*luby(restartIdx)
				s.backtrackTo(0)
			}
			continue
		}
		// No conflict: establish the assumption prefix, then decide.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.litValue(a) {
			case lTrue:
				// Already implied; open a dummy level to keep the
				// level-to-assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat, nil
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, -1)
			continue
		}
		next := s.pickBranchLit()
		if next == 0 {
			s.captureModel()
			return Sat, nil
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, -1)
	}
}

// captureModel snapshots the current complete assignment.
func (s *Solver) captureModel() {
	if cap(s.model) < len(s.vars) {
		s.model = make([]bool, len(s.vars))
	}
	s.model = s.model[:len(s.vars)]
	for v := 1; v < len(s.vars); v++ {
		s.model[v] = s.vars[v].assign == lTrue
	}
}

func (s *Solver) learnClause(lits []Lit) int {
	s.Stats.Learnt++
	s.numLearnt++
	cref := len(s.clauses)
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	s.clauses = append(s.clauses, clause{lits: cp, learnt: true, act: s.clauseInc})
	s.watchClause(cref)
	return cref
}

// reduceDB deletes roughly half of the learned clauses — the
// low-activity ones — keeping binary clauses and clauses currently
// acting as reasons. Deleted clauses are skipped lazily by propagate.
func (s *Solver) reduceDB() {
	locked := make(map[int]bool)
	for v := 1; v < len(s.vars); v++ {
		if s.vars[v].assign != lUndef && s.vars[v].reason >= 0 {
			locked[s.vars[v].reason] = true
		}
	}
	var acts []float64
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && len(c.lits) > 2 && !locked[i] {
			acts = append(acts, c.act)
		}
	}
	if len(acts) == 0 {
		return
	}
	// Median activity as the deletion threshold.
	threshold := medianOf(acts)
	removed := 0
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && len(c.lits) > 2 && !locked[i] && c.act <= threshold {
			c.deleted = true
			c.lits = nil
			removed++
			s.numLearnt--
		}
	}
	s.Stats.Deleted += int64(removed)
}

// medianOf returns an approximate median via quickselect on a copy.
func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return cp[k]
}

// Value returns the value of v in the most recent satisfying
// assignment. It is only meaningful after Solve has returned Sat.
func (s *Solver) Value(v Var) bool {
	if int(v) >= len(s.model) {
		return false
	}
	return s.model[v]
}

// Model returns a copy of the last satisfying assignment, indexed by
// variable (index 0 unused).
func (s *Solver) Model() []bool {
	out := make([]bool, len(s.model))
	copy(out, s.model)
	return out
}
