// Package sat implements a small conflict-driven clause-learning (CDCL)
// satisfiability solver.
//
// The solver is the substrate for the SAT-based dependency computation of
// Soeken et al. (HVC 2016), which the secure-data-flow method uses to
// distinguish functional from only-structural dependencies in circuit
// logic. It supports incremental solving under assumptions, two-watched
// literal propagation with blocking literals, first-UIP clause learning
// with LBD (glue) scoring, glucose-style clause-database reduction,
// activity-based branching with phase saving, Luby or LBD-EMA adaptive
// restarts, and assumption-prefix trail reuse between consecutive Solve
// calls (the incremental cofactor-query pattern of internal/dep keeps
// thousands of closely related queries from re-propagating a shared
// assumption prefix from scratch).
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Var is a propositional variable. Valid variables are >= 1.
type Var int32

// Lit is a literal: a variable or its negation.
// The encoding is 2*v for the positive literal of v and 2*v+1 for the
// negative literal. The zero Lit is invalid and used as a sentinel.
type Lit int32

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit returns the literal of v with the given sign. A true sign means
// the negative literal, matching the MiniSat convention.
func MkLit(v Var, neg bool) Lit {
	if neg {
		return NegLit(v)
	}
	return PosLit(v)
}

// Var returns the variable of the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as "v3" or "~v3".
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver has not produced a result.
	Unknown Status = iota
	// Sat means the formula is satisfiable.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// value of a variable during search.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	lbd     int32 // literal block distance (glue) of a learnt clause
	deleted bool
}

type watcher struct {
	cref    int // index into clauses
	blocker Lit // a literal whose truth satisfies the clause cheaply
}

type varData struct {
	assign   lbool
	level    int32
	reason   int // clause reference or -1
	activity float64
	phase    bool // saved phase: true = last assigned false (negative)
	seen     bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// solvers with New.
type Solver struct {
	vars    []varData // index 0 unused
	clauses []clause
	watches [][]watcher // indexed by Lit

	trail    []Lit
	trailLim []int
	qhead    int

	varInc    float64
	clauseInc float64

	order *varHeap

	ok    bool   // false once a top-level conflict is found
	model []bool // last satisfying assignment, indexed by Var

	// learned-clause database reduction
	numLearnt  int
	maxLearnts int

	// LBD scratch: generation-stamped per-level marks, reused across
	// computeLBD calls to avoid allocation on the conflict path.
	lbdStamp []uint64
	lbdGen   uint64

	// restart state; the LBD EMAs persist across Solve calls so the
	// adaptive policy keeps its history over an incremental query burst.
	restartPolicy RestartPolicy
	fastLBD       float64 // short-horizon EMA of learnt-clause LBD
	slowLBD       float64 // long-horizon EMA of learnt-clause LBD

	// keptAssumps is the assumption prefix whose decision levels were
	// retained on the trail when the previous Solve call returned. The
	// next call reuses the longest common prefix instead of
	// re-propagating it from level 0.
	keptAssumps []Lit

	// statistics
	Stats Statistics

	budget int64 // max conflicts; <=0 means unlimited

	// clauseTrace, when set, receives every clause handed to AddClause
	// before normalization. Exporters use it to capture the exact CNF
	// an encoder emitted (AddClause itself drops satisfied clauses and
	// enqueues units without storing them).
	clauseTrace func(lits []Lit)
}

// SetClauseTrace registers fn to observe every AddClause call (nil
// disables tracing).
func (s *Solver) SetClauseTrace(fn func(lits []Lit)) { s.clauseTrace = fn }

// RestartPolicy selects the solver's restart strategy.
type RestartPolicy int

const (
	// RestartEMA restarts when the short-horizon EMA of learnt-clause
	// LBD exceeds the long-horizon EMA by 25% (glucose-style adaptive
	// restarts). This is the default.
	RestartEMA RestartPolicy = iota
	// RestartLuby restarts on the Luby sequence scaled by 100 conflicts.
	RestartLuby
)

// SetRestartPolicy selects the restart strategy for subsequent Solve
// calls. The default is RestartEMA.
func (s *Solver) SetRestartPolicy(p RestartPolicy) { s.restartPolicy = p }

// Statistics accumulates solver counters across Solve calls.
type Statistics struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learnt       int64
	Deleted      int64
	Restarts     int64
	// BlockerHits counts watcher visits resolved by the blocking
	// literal alone, without dereferencing the clause.
	BlockerHits int64
	// LBDSum is the sum of LBD (glue) values over learnt clauses;
	// LBDSum/Learnt is the mean glue of the run.
	LBDSum int64
	// GlueLearnt counts learnt clauses with LBD <= 2, which the
	// database reduction keeps unconditionally.
	GlueLearnt int64
	// DBReductions counts glucose-style learnt-database reductions.
	DBReductions int64
	// ReusedLevels and ReusedLits count decision levels and trail
	// literals carried over between consecutive Solve calls that
	// shared an assumption prefix.
	ReusedLevels int64
	ReusedLits   int64
}

// Sub returns the field-wise difference s - prev: the counters accrued
// since prev was snapshotted.
func (s Statistics) Sub(prev Statistics) Statistics {
	return Statistics{
		Decisions:    s.Decisions - prev.Decisions,
		Propagations: s.Propagations - prev.Propagations,
		Conflicts:    s.Conflicts - prev.Conflicts,
		Learnt:       s.Learnt - prev.Learnt,
		Deleted:      s.Deleted - prev.Deleted,
		Restarts:     s.Restarts - prev.Restarts,
		BlockerHits:  s.BlockerHits - prev.BlockerHits,
		LBDSum:       s.LBDSum - prev.LBDSum,
		GlueLearnt:   s.GlueLearnt - prev.GlueLearnt,
		DBReductions: s.DBReductions - prev.DBReductions,
		ReusedLevels: s.ReusedLevels - prev.ReusedLevels,
		ReusedLits:   s.ReusedLits - prev.ReusedLits,
	}
}

// ErrBudget is returned by SolveLimited when the conflict budget is
// exhausted before a result is established.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:    1.0,
		clauseInc: 1.0,
		ok:        true,
	}
	s.vars = make([]varData, 1) // index 0 unused
	s.watches = make([][]watcher, 2)
	s.order = newVarHeap(s)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.vars))
	s.vars = append(s.vars, varData{assign: lUndef, reason: -1})
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int {
	n := 0
	for i := range s.clauses {
		if !s.clauses[i].learnt && !s.clauses[i].deleted {
			n++
		}
	}
	return n
}

// ensureVar grows the variable tables so that v is valid.
func (s *Solver) ensureVar(v Var) {
	for Var(len(s.vars)) <= v {
		s.NewVar()
	}
}

func (s *Solver) litValue(l Lit) lbool {
	a := s.vars[l.Var()].assign
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a clause over the given literals. It returns false if
// the solver is already in an unsatisfiable state (including the case
// where the new clause is empty after simplification at level 0).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.clauseTrace != nil {
		s.clauseTrace(lits)
	}
	// Clause addition needs level 0; drop any trail kept for
	// assumption-prefix reuse.
	s.cancelReuse()
	// Normalize: sort-free dedup, drop false lits, detect tautology.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l <= 1 {
			panic("sat: invalid literal")
		}
		s.ensureVar(l.Var())
		switch s.litValue(l) {
		case lTrue:
			return true // clause already satisfied at level 0
		case lFalse:
			continue // literal cannot help
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.ok = false
			return false
		}
		if conf := s.propagate(); conf != -1 {
			s.ok = false
			return false
		}
		return true
	}
	cref := len(s.clauses)
	s.clauses = append(s.clauses, clause{lits: out})
	s.watchClause(cref)
	return true
}

func (s *Solver) watchClause(cref int) {
	c := &s.clauses[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns literal l to true with the given reason clause.
// It returns false on an immediate conflict with an existing assignment.
func (s *Solver) enqueue(l Lit, reason int) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	vd := &s.vars[l.Var()]
	if l.Neg() {
		vd.assign = lFalse
	} else {
		vd.assign = lTrue
	}
	vd.level = int32(s.decisionLevel())
	vd.reason = reason
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation. It returns the reference of a
// conflicting clause, or -1 if no conflict occurred.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker first: a true blocking literal satisfies the
			// clause without touching the clause memory at all.
			if s.litValue(w.blocker) == lTrue {
				s.Stats.BlockerHits++
				ws[n] = w
				n++
				continue
			}
			c := &s.clauses[w.cref]
			if c.deleted {
				continue // drop the watcher of a reduced clause
			}
			// Ensure the false literal (p.Not()) is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[n] = watcher{w.cref, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{w.cref, first}
			n++
			if s.litValue(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.enqueue(first, w.cref)
		}
		s.watches[p] = ws[:n]
	}
	return -1
}

// analyze performs first-UIP conflict analysis. It returns the learnt
// clause (with the asserting literal first), the backtrack level, and
// the clause's LBD (computed while every literal is still assigned).
func (s *Solver) analyze(confl int) ([]Lit, int, int32) {
	learnt := []Lit{0} // placeholder for asserting literal
	seenCount := 0
	p := Lit(0)
	idx := len(s.trail) - 1
	var toClear []Var

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != 0 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			vd := &s.vars[v]
			if !vd.seen && vd.level > 0 {
				vd.seen = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if int(vd.level) >= s.decisionLevel() {
					seenCount++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to look at.
		for !s.vars[s.trail[idx].Var()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.vars[p.Var()].reason
		s.vars[p.Var()].seen = false
		seenCount--
		if seenCount == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Minimize: remove literals implied by the rest of the clause.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learnt = out

	// Find backtrack level: max level among lits[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.vars[learnt[i].Var()].level > s.vars[learnt[maxI].Var()].level {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.vars[learnt[1].Var()].level)
	}
	for _, v := range toClear {
		s.vars[v].seen = false
	}
	return learnt, btLevel, s.computeLBD(learnt)
}

// computeLBD returns the literal block distance of lits: the number of
// distinct non-zero decision levels among their (assigned) variables.
// Generation-stamped marks avoid clearing between calls.
func (s *Solver) computeLBD(lits []Lit) int32 {
	if need := s.decisionLevel() + 1; len(s.lbdStamp) < need {
		s.lbdStamp = append(s.lbdStamp, make([]uint64, need-len(s.lbdStamp))...)
	}
	s.lbdGen++
	var lbd int32
	for _, l := range lits {
		lvl := s.vars[l.Var()].level
		if lvl <= 0 || int(lvl) >= len(s.lbdStamp) {
			continue
		}
		if s.lbdStamp[lvl] != s.lbdGen {
			s.lbdStamp[lvl] = s.lbdGen
			lbd++
		}
	}
	return lbd
}

// redundant reports whether literal l in a learnt clause is implied by
// the remaining seen literals (simple local minimization: every literal
// of its reason clause must be seen or at level 0).
func (s *Solver) redundant(l Lit) bool {
	r := s.vars[l.Var()].reason
	if r < 0 {
		return false
	}
	for _, q := range s.clauses[r].lits {
		if q.Var() == l.Var() {
			continue
		}
		vd := &s.vars[q.Var()]
		if !vd.seen && vd.level > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v Var) {
	s.vars[v].activity += s.varInc
	if s.vars[v].activity > 1e100 {
		for i := 1; i < len(s.vars); i++ {
			s.vars[i].activity *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(cref int) {
	c := &s.clauses[cref]
	// A clause participating in conflict analysis has every literal
	// assigned, so its LBD can be refreshed; keep the minimum seen.
	if nl := s.computeLBD(c.lits); nl > 0 && nl < c.lbd {
		c.lbd = nl
	}
	c.act += s.clauseInc
	if c.act > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learnt {
				s.clauses[i].act *= 1e-20
			}
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

// backtrackTo undoes assignments above the given decision level.
func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		vd := &s.vars[l.Var()]
		vd.phase = l.Neg()
		vd.assign = lUndef
		vd.reason = -1
		s.order.push(l.Var())
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = limit
}

// pickBranchLit selects the next decision literal, or 0 if all variables
// are assigned.
func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.pop()
		if !ok {
			return 0
		}
		if s.vars[v].assign == lUndef {
			return MkLit(v, s.vars[v].phase)
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// SetConflictBudget limits subsequent Solve calls to approximately n
// conflicts; n <= 0 removes the limit.
func (s *Solver) SetConflictBudget(n int64) { s.budget = n }

// Solve determines satisfiability under the given assumptions. The
// assumptions hold only for this call.
func (s *Solver) Solve(assumptions ...Lit) Status {
	st, _ := s.SolveLimited(assumptions...)
	return st
}

// cancelReuse drops any trail retained for assumption-prefix reuse and
// returns the solver to decision level 0.
func (s *Solver) cancelReuse() {
	s.backtrackTo(0)
	s.keptAssumps = s.keptAssumps[:0]
}

// reusePrefix backtracks only far enough to discard the part of the
// previous call's kept assumption prefix that the new assumptions do
// not share. Levels 1..k of the trail stay intact along with every
// literal they implied.
func (s *Solver) reusePrefix(assumptions []Lit) {
	k := 0
	for k < len(s.keptAssumps) && k < len(assumptions) && s.keptAssumps[k] == assumptions[k] {
		k++
	}
	if dl := s.decisionLevel(); k > dl {
		k = dl
	}
	s.backtrackTo(k)
	s.keptAssumps = s.keptAssumps[:0]
	if k > 0 {
		s.Stats.ReusedLevels += int64(k)
		s.Stats.ReusedLits += int64(len(s.trail))
	}
}

// finishSolve retains the decision levels corresponding to the
// established assumption prefix (so the next call over the same prefix
// skips their propagation) and records which assumptions they cover.
//
// Invariant relied on: at any point of the search loop, the leading
// min(decisionLevel, len(assumptions)) decision levels correspond
// one-to-one to the assumption prefix — levels are only ever opened in
// assumption order (with dummy levels for already-implied assumptions)
// and backtracking removes a suffix of levels.
func (s *Solver) finishSolve(assumptions []Lit) {
	if !s.ok {
		s.cancelReuse()
		return
	}
	keep := s.decisionLevel()
	if keep > len(assumptions) {
		keep = len(assumptions)
	}
	s.backtrackTo(keep)
	s.keptAssumps = append(s.keptAssumps[:0], assumptions[:keep]...)
}

// SolveLimited is Solve with support for conflict budgets: it returns
// ErrBudget if the budget set via SetConflictBudget was exhausted
// before a result could be established.
//
// After every backtrack the main loop re-establishes the assumption
// prefix, one assumption per decision level; a falsified assumption
// means unsatisfiability under the assumptions.
//
// Between consecutive calls the solver keeps the decision levels of the
// established assumption prefix on the trail; a following call whose
// assumptions share a prefix with the previous call's resumes from the
// first differing assumption instead of from level 0.
func (s *Solver) SolveLimited(assumptions ...Lit) (Status, error) {
	if !s.ok {
		return Unsat, nil
	}
	for _, a := range assumptions {
		s.ensureVar(a.Var())
	}
	s.reusePrefix(assumptions)
	defer s.finishSolve(assumptions)

	conflictsAtStart := s.Stats.Conflicts
	conflictsSinceRestart := int64(0)
	restartIdx := int64(1)
	restartLimit := int64(100) * luby(restartIdx)

	for {
		confl := s.propagate()
		if confl != -1 {
			s.Stats.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat, nil
			}
			learnt, btLevel, lbd := s.analyze(confl)
			s.updateLBDEMAs(lbd)
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				if btLevel != 0 {
					s.backtrackTo(0)
				}
				if !s.enqueue(learnt[0], -1) {
					s.ok = false
					return Unsat, nil
				}
			} else {
				cref := s.learnClause(learnt, lbd)
				s.enqueue(learnt[0], cref)
			}
			s.decayActivities()
			if s.maxLearnts == 0 {
				s.maxLearnts = s.NumClauses()/3 + 2000
			}
			if s.numLearnt > s.maxLearnts {
				s.reduceDB()
				s.maxLearnts += s.maxLearnts / 10
			}
			if s.budget > 0 && s.Stats.Conflicts-conflictsAtStart >= s.budget {
				return Unknown, ErrBudget
			}
			if s.shouldRestart(conflictsSinceRestart, &restartIdx, &restartLimit, conflictsAtStart) {
				s.Stats.Restarts++
				conflictsSinceRestart = 0
				s.backtrackTo(0)
			}
			continue
		}
		// No conflict: establish the assumption prefix, then decide.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.litValue(a) {
			case lTrue:
				// Already implied; open a dummy level to keep the
				// level-to-assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat, nil
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, -1)
			continue
		}
		next := s.pickBranchLit()
		if next == 0 {
			s.captureModel()
			return Sat, nil
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, -1)
	}
}

// updateLBDEMAs folds a learnt clause's LBD into the fast (1/32) and
// slow (1/1024) exponential moving averages driving RestartEMA.
func (s *Solver) updateLBDEMAs(lbd int32) {
	l := float64(lbd)
	if s.slowLBD == 0 {
		s.fastLBD, s.slowLBD = l, l
		return
	}
	s.fastLBD += (l - s.fastLBD) / 32
	s.slowLBD += (l - s.slowLBD) / 1024
}

// shouldRestart implements the active restart policy. For RestartEMA
// the trigger is fast > 1.25*slow after at least 32 conflicts since
// the last restart (resetting fast to slow on fire); for RestartLuby
// it is the conflict count crossing the scaled Luby sequence.
func (s *Solver) shouldRestart(sinceRestart int64, restartIdx, restartLimit *int64, conflictsAtStart int64) bool {
	switch s.restartPolicy {
	case RestartLuby:
		if s.Stats.Conflicts-conflictsAtStart >= *restartLimit {
			*restartIdx++
			*restartLimit = s.Stats.Conflicts - conflictsAtStart + 100*luby(*restartIdx)
			return true
		}
		return false
	default: // RestartEMA
		if sinceRestart >= 32 && s.fastLBD > 1.25*s.slowLBD {
			s.fastLBD = s.slowLBD
			return true
		}
		return false
	}
}

// captureModel snapshots the current complete assignment.
func (s *Solver) captureModel() {
	if cap(s.model) < len(s.vars) {
		s.model = make([]bool, len(s.vars))
	}
	s.model = s.model[:len(s.vars)]
	for v := 1; v < len(s.vars); v++ {
		s.model[v] = s.vars[v].assign == lTrue
	}
}

func (s *Solver) learnClause(lits []Lit, lbd int32) int {
	s.Stats.Learnt++
	s.Stats.LBDSum += int64(lbd)
	if lbd <= 2 {
		s.Stats.GlueLearnt++
	}
	s.numLearnt++
	cref := len(s.clauses)
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	s.clauses = append(s.clauses, clause{lits: cp, learnt: true, act: s.clauseInc, lbd: lbd})
	s.watchClause(cref)
	return cref
}

// reduceDB performs a glucose-style learnt-database reduction: binary
// clauses, glue clauses (LBD <= 2), and clauses currently acting as
// reasons are kept unconditionally; the rest are sorted worst-first by
// (LBD descending, activity ascending) and the worse half is deleted.
// Deleted clauses are skipped lazily by propagate.
func (s *Solver) reduceDB() {
	s.Stats.DBReductions++
	locked := make(map[int]bool)
	for v := 1; v < len(s.vars); v++ {
		if s.vars[v].assign != lUndef && s.vars[v].reason >= 0 {
			locked[s.vars[v].reason] = true
		}
	}
	var cands []int
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && len(c.lits) > 2 && c.lbd > 2 && !locked[i] {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := &s.clauses[cands[a]], &s.clauses[cands[b]]
		if ca.lbd != cb.lbd {
			return ca.lbd > cb.lbd
		}
		return ca.act < cb.act
	})
	removed := 0
	for _, i := range cands[:len(cands)/2] {
		c := &s.clauses[i]
		c.deleted = true
		c.lits = nil
		removed++
		s.numLearnt--
	}
	s.Stats.Deleted += int64(removed)
}

// Value returns the value of v in the most recent satisfying
// assignment. It is only meaningful after Solve has returned Sat.
func (s *Solver) Value(v Var) bool {
	if int(v) >= len(s.model) {
		return false
	}
	return s.model[v]
}

// Model returns a copy of the last satisfying assignment, indexed by
// variable (index 0 unused).
func (s *Solver) Model() []bool {
	out := make([]bool, len(s.model))
	copy(out, s.model)
	return out
}
