package sat

import (
	"testing"
)

// FuzzSolveMatchesBruteForce is the differential fuzz harness of the
// solver: an arbitrary byte string is decoded into a small random
// formula (≤ 12 variables, ≤ 64 ternary clauses) plus an assumption
// set, and the CDCL result is compared against exhaustive enumeration —
// including repeated solves under shared assumption prefixes, the
// pattern that exercises trail reuse, and a final unassumed solve that
// exercises full backtracking of the kept prefix. CI runs this with a
// bounded -fuzztime as a smoke test; longer local runs explore deeper.
func FuzzSolveMatchesBruteForce(f *testing.F) {
	f.Add([]byte{3, 0x01, 0x82, 0x03, 0x84, 0x05, 0x86})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x81, 0x82, 0x83})
	f.Add([]byte{12, 0xff, 0x00, 0x7f, 0x80, 0x3f, 0xc0, 0x1f, 0xe0})
	f.Add([]byte{1, 0x01, 0x81, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		nVars := 1 + int(data[0]%12)
		rest := data[1:]
		var clauses [][]Lit
		for i := 0; i+2 < len(rest) && len(clauses) < 64; i += 3 {
			cl := make([]Lit, 0, 3)
			for j := 0; j < 3; j++ {
				b := rest[i+j]
				cl = append(cl, MkLit(Var(1+int(b)%nVars), b&0x80 != 0))
			}
			clauses = append(clauses, cl)
		}

		want := bruteForce(nVars, clauses)
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		got := false
		if ok {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Fatalf("plain solve: solver=%v bruteforce=%v (n=%d, %d clauses)", got, want, nVars, len(clauses))
		}
		if !ok {
			return
		}

		// Assumption set from the leading bytes; solving twice under the
		// same assumptions reuses the kept trail, the shorter prefix
		// exercises partial backtracking.
		assume := make([]Lit, 0, 3)
		for _, b := range rest[:3] {
			assume = append(assume, MkLit(Var(1+int(b)%nVars), b&0x40 != 0))
		}
		withUnits := func(as []Lit) [][]Lit {
			all := append([][]Lit{}, clauses...)
			for _, a := range as {
				all = append(all, []Lit{a})
			}
			return all
		}
		wantA := bruteForce(nVars, withUnits(assume))
		for round := 0; round < 2; round++ {
			if gotA := s.Solve(assume...) == Sat; gotA != wantA {
				t.Fatalf("assumed solve round %d: solver=%v bruteforce=%v (assume %v)", round, gotA, wantA, assume)
			}
		}
		wantP := bruteForce(nVars, withUnits(assume[:2]))
		if gotP := s.Solve(assume[:2]...) == Sat; gotP != wantP {
			t.Fatalf("prefix solve: solver=%v bruteforce=%v (assume %v)", gotP, wantP, assume[:2])
		}
		if got2 := s.Solve() == Sat; got2 != want {
			t.Fatalf("final plain solve: solver=%v bruteforce=%v", got2, want)
		}
	})
}
