package sat

import (
	"os"
	"path/filepath"
	"testing"
)

// The solver microbenchmarks run against pinned DIMACS instances under
// testdata/ so that before/after comparisons across solver changes
// measure the same formulas bit for bit:
//
//	php_8_7.cnf              PHP(8,7) pigeonhole, UNSAT, conflict-heavy
//	rand3_v150_r43_s1.cnf    random 3-SAT at ratio 4.3 (phase transition), SAT
//	rand3_v200_r38_s2.cnf    random 3-SAT at ratio 3.8, SAT, propagation-heavy
//	attack_miter_static.cnf  ScanSAT key-recovery miter, TreeFlat @ 48 FFs,
//	                         16-bit static xor/mux overlay, SAT
//	attack_miter_dyn.cnf     ScanSAT miter, BasicSCB @ 36 FFs, 8-bit
//	                         LFSR-scheduled (dynamic) overlay, SAT
//
// The two attack_miter instances are deterministic exports of
// obfus.WriteMiterDIMACS (the first query of every ScanSAT run: two
// unrolled key copies, shared symbolic config and scan-in, distinguisher
// asserted); TestAttackMiterTestdataPinned in internal/obfus regenerates
// them and fails if the committed bytes drift from the encoder.
//
// Besides ns/op, each benchmark reports the solver's own counters as
// custom metrics (propagations, conflicts, restarts, DB reductions per
// solve), so a change in search behaviour is visible even when the
// wall-clock delta is in the noise. bench_tables.txt records the
// before/after deltas of these counters across solver revisions.

func loadBenchCNF(tb testing.TB, name string) (int, [][]Lit) {
	tb.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	nv, clauses, err := ParseDIMACS(f)
	if err != nil {
		tb.Fatal(err)
	}
	return nv, clauses
}

func benchSolve(b *testing.B, name string, want Status, policy RestartPolicy) {
	nv, clauses := loadBenchCNF(b, name)
	var last Statistics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		s.SetRestartPolicy(policy)
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		st := Unsat
		if ok {
			st = s.Solve()
		}
		if st != want {
			b.Fatalf("%s: Solve = %v, want %v", name, st, want)
		}
		last = s.Stats
	}
	b.ReportMetric(float64(last.Propagations), "props/solve")
	b.ReportMetric(float64(last.Conflicts), "conflicts/solve")
	b.ReportMetric(float64(last.Restarts), "restarts/solve")
	b.ReportMetric(float64(last.DBReductions), "reduceDB/solve")
}

func BenchmarkDIMACSPigeonhole(b *testing.B) {
	benchSolve(b, "php_8_7.cnf", Unsat, RestartEMA)
}

func BenchmarkDIMACSPigeonholeLuby(b *testing.B) {
	benchSolve(b, "php_8_7.cnf", Unsat, RestartLuby)
}

func BenchmarkDIMACSRand3Hard(b *testing.B) {
	benchSolve(b, "rand3_v150_r43_s1.cnf", Sat, RestartEMA)
}

func BenchmarkDIMACSRand3HardLuby(b *testing.B) {
	benchSolve(b, "rand3_v150_r43_s1.cnf", Sat, RestartLuby)
}

func BenchmarkDIMACSRand3Easy(b *testing.B) {
	benchSolve(b, "rand3_v200_r38_s2.cnf", Sat, RestartEMA)
}

// The attack miters are large, heavily structured circuit instances
// (tens of thousands of variables, mostly binary/ternary gate clauses):
// the workload ScanSAT actually hands the solver, as opposed to the
// small combinatorial/random instances above. EMA and Luby variants are
// both pinned because the glucose-style restart trade shows most
// clearly on structured formulas.

func BenchmarkDIMACSAttackStatic(b *testing.B) {
	benchSolve(b, "attack_miter_static.cnf", Sat, RestartEMA)
}

func BenchmarkDIMACSAttackStaticLuby(b *testing.B) {
	benchSolve(b, "attack_miter_static.cnf", Sat, RestartLuby)
}

func BenchmarkDIMACSAttackDyn(b *testing.B) {
	benchSolve(b, "attack_miter_dyn.cnf", Sat, RestartEMA)
}

func BenchmarkDIMACSAttackDynLuby(b *testing.B) {
	benchSolve(b, "attack_miter_dyn.cnf", Sat, RestartLuby)
}

// TestAttackMiterInstances pins the expected status of the committed
// attack instances: an overlay with at least one distinguishable key
// bit always yields a satisfiable initial miter.
func TestAttackMiterInstances(t *testing.T) {
	for _, name := range []string{"attack_miter_static.cnf", "attack_miter_dyn.cnf"} {
		nv, clauses := loadBenchCNF(t, name)
		s := New()
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			if !s.AddClause(c...) {
				t.Fatalf("%s: top-level conflict", name)
			}
		}
		if st := s.Solve(); st != Sat {
			t.Errorf("%s: Solve = %v, want Sat", name, st)
		}
	}
}

// BenchmarkIncrementalAssumptions replays the cofactor-query pattern of
// the dependence engine on a pinned satisfiable instance: many solves
// against one solver under a growing shared assumption prefix plus a
// per-query tail. This is the workload trail reuse accelerates; the
// reused-levels metric shows how much of each solve's prefix survived.
func BenchmarkIncrementalAssumptions(b *testing.B) {
	benchIncremental(b, RestartEMA)
}

// BenchmarkIncrementalAssumptionsLuby pins the pre-modernization restart
// policy so before/after runs isolate the trail-reuse effect from the
// restart-trajectory change.
func BenchmarkIncrementalAssumptionsLuby(b *testing.B) {
	benchIncremental(b, RestartLuby)
}

func benchIncremental(b *testing.B, policy RestartPolicy) {
	nv, clauses := loadBenchCNF(b, "rand3_v200_r38_s2.cnf")
	var last Statistics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		s.SetRestartPolicy(policy)
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			if !s.AddClause(c...) {
				b.Fatal("unexpected top-level conflict")
			}
		}
		// Fixed prefix of 12 assumptions; 48 queries vary only the tail.
		prefix := make([]Lit, 12)
		for j := range prefix {
			prefix[j] = MkLit(Var(1+j*7%nv), j%2 == 0)
		}
		assume := make([]Lit, 0, len(prefix)+1)
		for qi := 0; qi < 48; qi++ {
			tail := MkLit(Var(1+(qi*13+5)%nv), qi%3 == 0)
			assume = append(assume[:0], prefix...)
			assume = append(assume, tail)
			s.Solve(assume...)
		}
		last = s.Stats
	}
	b.ReportMetric(float64(last.Propagations), "props/run")
	b.ReportMetric(float64(last.Conflicts), "conflicts/run")
	b.ReportMetric(float64(last.ReusedLevels), "reused-levels/run")
	b.ReportMetric(float64(last.ReusedLits), "reused-lits/run")
}
