package sat

// varHeap is a binary max-heap of variables ordered by activity, with
// an index map for decrease/increase-key updates. It is the solver's
// VSIDS-style decision order.
type varHeap struct {
	s       *Solver
	heap    []Var
	indices []int32 // position of var in heap, -1 if absent
}

func newVarHeap(s *Solver) *varHeap {
	return &varHeap{s: s}
}

func (h *varHeap) less(a, b Var) bool {
	return h.s.vars[a].activity > h.s.vars[b].activity
}

func (h *varHeap) ensure(v Var) {
	for Var(len(h.indices)) <= v {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

// push inserts v if absent.
func (h *varHeap) push(v Var) {
	h.ensure(v)
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

// pop removes and returns the variable with the highest activity.
func (h *varHeap) pop() (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.indices[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top, true
}

// update restores the heap property after v's activity increased.
func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.up(int(h.indices[v]))
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && h.less(h.heap[child+1], h.heap[child]) {
			child++
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}

func (h *varHeap) size() int { return len(h.heap) }
