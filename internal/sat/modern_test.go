package sat

import (
	"math/rand"
	"testing"
)

// TestTrailReuseAcrossPrefix checks that consecutive solves under a
// shared assumption prefix keep the prefix's decision levels on the
// trail (counted by ReusedLevels/ReusedLits) and still answer exactly
// like a fresh solver.
func TestTrailReuseAcrossPrefix(t *testing.T) {
	// Implication ladder: a_i -> b_i, plus cross clauses.
	s := New()
	const n = 30
	as := make([]Var, n)
	bs := make([]Var, n)
	for i := range as {
		as[i], bs[i] = s.NewVar(), s.NewVar()
		s.AddClause(NegLit(as[i]), PosLit(bs[i]))
	}
	prefix := make([]Lit, 0, n)
	for i := 0; i < n; i++ {
		prefix = append(prefix, PosLit(as[i]))
	}
	// First solve establishes the prefix; the following solves append
	// one extra assumption each and must reuse every prefix level.
	if st := s.Solve(prefix...); st != Sat {
		t.Fatalf("prefix solve = %v", st)
	}
	before := s.Stats
	for i := 0; i < n; i++ {
		q := append(append([]Lit{}, prefix...), NegLit(bs[i]))
		if st := s.Solve(q...); st != Unsat {
			t.Fatalf("query %d = %v, want Unsat (a_%d forces b_%d)", i, st, i, i)
		}
	}
	d := s.Stats.Sub(before)
	if d.ReusedLevels == 0 || d.ReusedLits == 0 {
		t.Fatalf("no trail reuse recorded across shared-prefix solves: %+v", d)
	}
	// Diverging prefix: flip the first assumption; reuse must not leak
	// stale implications.
	q := append([]Lit{NegLit(as[0])}, prefix[1:]...)
	if st := s.Solve(q...); st != Sat {
		t.Fatalf("diverged prefix solve = %v, want Sat", st)
	}
	if s.Value(as[0]) {
		t.Fatal("model violates flipped assumption")
	}
}

// TestTrailReuseRandomDifferential drives the incremental cofactor
// pattern — many solves under a growing shared prefix, interleaved with
// clause additions — against a fresh solver per query.
func TestTrailReuseRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(7)
		m := 3 + rng.Intn(4*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0)
			}
			clauses[i] = cl
		}
		inc := New()
		for v := 0; v < n; v++ {
			inc.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !inc.AddClause(c...) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Queries share a random prefix and vary the tail, like the
		// per-leaf cofactor queries of one cone.
		prefixLen := rng.Intn(3)
		prefix := make([]Lit, prefixLen)
		for i := range prefix {
			prefix[i] = MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0)
		}
		for qi := 0; qi < 8; qi++ {
			tail := MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0)
			q := append(append([]Lit{}, prefix...), tail)
			all := append([][]Lit{}, clauses...)
			for _, a := range q {
				all = append(all, []Lit{a})
			}
			want := bruteForce(n, all)
			if got := inc.Solve(q...) == Sat; got != want {
				t.Fatalf("iter %d query %d: incremental=%v bruteforce=%v", iter, qi, got, want)
			}
			if qi == 4 {
				// Mid-stream clause addition must cancel the kept trail
				// and stay correct.
				cl := []Lit{
					MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0),
					MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0),
				}
				if !inc.AddClause(cl...) {
					break
				}
				clauses = append(clauses, cl)
			}
		}
	}
}

// TestRestartPolicies solves the same hard instance under both restart
// policies; both must refute it, and the Luby policy must restart.
func TestRestartPolicies(t *testing.T) {
	for _, pol := range []RestartPolicy{RestartEMA, RestartLuby} {
		s := New()
		s.SetRestartPolicy(pol)
		addPigeonhole(s, 8, 7)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("policy %v: Solve = %v, want Unsat", pol, got)
		}
		if pol == RestartLuby && s.Stats.Restarts == 0 {
			t.Fatalf("Luby policy recorded no restarts on PHP(8,7): %+v", s.Stats)
		}
	}
}

// TestGlucoseReduceDB forces database reductions with a tiny learnt
// budget and checks the glucose invariants: reductions happen, clauses
// are deleted, and the result is still correct.
func TestGlucoseReduceDB(t *testing.T) {
	s := New()
	s.maxLearnts = 40 // force frequent reductions
	addPigeonhole(s, 8, 7)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	if s.Stats.DBReductions == 0 {
		t.Fatalf("expected DB reductions with maxLearnts=40: %+v", s.Stats)
	}
	if s.Stats.Deleted == 0 {
		t.Fatalf("expected deleted learnt clauses: %+v", s.Stats)
	}
	// Glue clauses (LBD <= 2) survive every reduction.
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && c.deleted && c.lbd <= 2 && c.lbd > 0 {
			t.Fatalf("glue clause (lbd=%d) was deleted", c.lbd)
		}
	}
}

// TestLBDAndBlockerCounters checks that the new hot-path counters move
// on a non-trivial instance.
func TestLBDAndBlockerCounters(t *testing.T) {
	s := New()
	addPigeonhole(s, 7, 6)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Stats.Learnt > 0 && s.Stats.LBDSum == 0 {
		t.Errorf("learnt %d clauses but LBDSum is zero", s.Stats.Learnt)
	}
	if s.Stats.BlockerHits == 0 {
		t.Error("no blocker hits recorded on a conflict-heavy instance")
	}
	if s.Stats.Propagations == 0 || s.Stats.Conflicts == 0 {
		t.Errorf("missing base counters: %+v", s.Stats)
	}
}

// TestStatisticsSub checks the field-wise delta helper.
func TestStatisticsSub(t *testing.T) {
	a := Statistics{Decisions: 10, Propagations: 100, Conflicts: 5, Learnt: 4,
		Deleted: 1, Restarts: 2, BlockerHits: 50, LBDSum: 12, GlueLearnt: 3,
		DBReductions: 1, ReusedLevels: 7, ReusedLits: 70}
	b := Statistics{Decisions: 4, Propagations: 40, Conflicts: 2, Learnt: 1,
		Deleted: 0, Restarts: 1, BlockerHits: 20, LBDSum: 5, GlueLearnt: 1,
		DBReductions: 0, ReusedLevels: 3, ReusedLits: 30}
	d := a.Sub(b)
	want := Statistics{Decisions: 6, Propagations: 60, Conflicts: 3, Learnt: 3,
		Deleted: 1, Restarts: 1, BlockerHits: 30, LBDSum: 7, GlueLearnt: 2,
		DBReductions: 1, ReusedLevels: 4, ReusedLits: 40}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
}

// TestAddClauseDuringKeptTrail: adding a clause between assumed solves
// (with a kept trail) must return to level 0 and stay sound.
func TestAddClauseDuringKeptTrail(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b))
	if st := s.Solve(PosLit(a)); st != Sat {
		t.Fatalf("first solve = %v", st)
	}
	// The kept trail holds a=true, b=true; this clause contradicts it
	// only under the assumption, not at level 0.
	s.AddClause(NegLit(b), PosLit(c))
	if st := s.Solve(PosLit(a), NegLit(c)); st != Unsat {
		t.Fatalf("solve under a,~c = %v, want Unsat", st)
	}
	if st := s.Solve(NegLit(a)); st != Sat {
		t.Fatalf("solve under ~a = %v, want Sat", st)
	}
}
