package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format. It returns the
// declared variable count and the clauses. The header is optional; the
// actual variable count grows with the literals seen.
func ParseDIMACS(r io.Reader) (numVars int, clauses [][]Lit, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var cur []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return 0, nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", lineNo, line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 0 {
				return 0, nil, fmt.Errorf("dimacs: line %d: bad variable count %q", lineNo, fields[2])
			}
			numVars = v
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return 0, nil, fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				clauses = append(clauses, cur)
				cur = nil
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if v > numVars {
				numVars = v
			}
			cur = append(cur, MkLit(Var(v), neg))
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	return numVars, clauses, nil
}

// LoadDIMACS parses a DIMACS CNF and loads it into a fresh solver.
func LoadDIMACS(r io.Reader) (*Solver, error) {
	numVars, clauses, err := ParseDIMACS(r)
	if err != nil {
		return nil, err
	}
	s := New()
	for v := 0; v < numVars; v++ {
		s.NewVar()
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			// Top-level conflict: keep loading is pointless, but the
			// solver faithfully reports Unsat.
			break
		}
	}
	return s, nil
}

// WriteDIMACS renders the solver's problem clauses (not learned ones)
// in DIMACS CNF format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), s.NumClauses())
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt || c.deleted {
			continue
		}
		for _, l := range c.lits {
			v := int(l.Var())
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// WriteDIMACS writes a CNF formula in DIMACS format, the inverse of
// ParseDIMACS. Comment lines (without the leading "c ") may precede
// the problem line.
func WriteDIMACS(w io.Writer, numVars int, clauses [][]Lit, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", numVars, len(clauses)); err != nil {
		return err
	}
	for _, cl := range clauses {
		for _, l := range cl {
			v := int(l.Var())
			if l.Neg() {
				v = -v
			}
			if _, err := fmt.Fprintf(bw, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
