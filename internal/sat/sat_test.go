package sat

import (
	"math/rand"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	v := Var(7)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var() round trip failed: %v %v", p.Var(), n.Var())
	}
	if p.Neg() || !n.Neg() {
		t.Fatalf("sign flags wrong: %v %v", p.Neg(), n.Neg())
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not() not an involution")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatalf("MkLit mismatch")
	}
	if p.String() != "v7" || n.String() != "~v7" {
		t.Fatalf("String: %q %q", p, n)
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(PosLit(a)) {
		t.Fatal("AddClause failed")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Fatal("model must set a true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if s.AddClause(NegLit(a)) {
		t.Fatal("conflicting unit must report failure")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: Solve = %v, want Sat", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(PosLit(a), NegLit(a), PosLit(b)) {
		t.Fatal("tautology must be accepted")
	}
	s.AddClause(NegLit(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a), PosLit(a), PosLit(a))
	if got := s.Solve(); got != Sat || !s.Value(a) {
		t.Fatalf("Solve = %v Value=%v", got, s.Value(a))
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 & (x1->x2) & ... & (x99->x100) & (~x100) is unsat.
	s := New()
	const n = 100
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(PosLit(vs[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vs[i]), PosLit(vs[i+1]))
	}
	s.AddClause(NegLit(vs[n-1]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b)) // a -> b
	if got := s.Solve(PosLit(a), NegLit(b)); got != Unsat {
		t.Fatalf("Solve under a,~b = %v, want Unsat", got)
	}
	// Solver must remain usable and satisfiable afterwards.
	if got := s.Solve(PosLit(a)); got != Sat {
		t.Fatalf("Solve under a = %v, want Sat", got)
	}
	if !s.Value(b) {
		t.Fatal("model under assumption a must have b true")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve without assumptions = %v, want Sat", got)
	}
}

func TestAssumptionContradictsUnit(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if got := s.Solve(NegLit(a)); got != Unsat {
		t.Fatalf("Solve under ~a = %v, want Unsat", got)
	}
	if got := s.Solve(PosLit(a)); got != Sat {
		t.Fatalf("Solve under a = %v, want Sat", got)
	}
}

func TestRepeatedAssumption(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if got := s.Solve(NegLit(a), NegLit(a), NegLit(a)); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("model wrong: a=%v b=%v", s.Value(a), s.Value(b))
	}
}

// addPigeonhole adds the pigeonhole principle PHP(m pigeons, n holes).
func addPigeonhole(s *Solver, pigeons, holes int) {
	p := make([][]Var, pigeons)
	for i := range p {
		p[i] = make([]Var, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		cl := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			cl[j] = PosLit(p[i][j])
		}
		s.AddClause(cl...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(NegLit(p[i][j]), NegLit(p[k][j]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		s := New()
		addPigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): Solve = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	addPigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): Solve = %v, want Sat", got)
	}
}

func TestXorChainUnsat(t *testing.T) {
	// Encode x1 ^ x2 = 1, x2 ^ x3 = 1, ..., x_{n-1} ^ x_n = 1,
	// plus x1 = x_n for odd chain length parity contradiction.
	s := New()
	const n = 9
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		a, b := vs[i], vs[i+1]
		// a xor b: (a|b) & (~a|~b)
		s.AddClause(PosLit(a), PosLit(b))
		s.AddClause(NegLit(a), NegLit(b))
	}
	// With n-1=8 xors, x1 == x9 is forced; now force x1 != x9.
	s.AddClause(PosLit(vs[0]), PosLit(vs[n-1]))
	s.AddClause(NegLit(vs[0]), NegLit(vs[n-1]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// bruteForce decides satisfiability of clauses over vars 1..n by
// exhaustive enumeration.
func bruteForce(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>(uint(l.Var())-1)&1 == 1
				if bit != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(5*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				v := Var(1 + rng.Intn(n))
				cl[j] = MkLit(v, rng.Intn(2) == 0)
			}
			clauses[i] = cl
		}
		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		addOK := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				addOK = false
				break
			}
		}
		want := bruteForce(n, clauses)
		var got bool
		if !addOK {
			got = false
		} else {
			st := s.Solve()
			got = st == Sat
			if got {
				// Verify the model satisfies every clause.
				for _, c := range clauses {
					sat := false
					for _, l := range c {
						if s.Value(l.Var()) != l.Neg() {
							sat = true
							break
						}
					}
					if !sat {
						t.Fatalf("iter %d: model does not satisfy clause %v", iter, c)
					}
				}
			}
		}
		if got != want {
			t.Fatalf("iter %d (n=%d m=%d): solver=%v bruteforce=%v", iter, n, m, got, want)
		}
	}
}

func TestRandomWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(4*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				v := Var(1 + rng.Intn(n))
				cl[j] = MkLit(v, rng.Intn(2) == 0)
			}
			clauses[i] = cl
		}
		nAssume := 1 + rng.Intn(3)
		assumed := map[Var]bool{}
		var assumptions []Lit
		for len(assumptions) < nAssume {
			v := Var(1 + rng.Intn(n))
			if assumed[v] {
				continue
			}
			assumed[v] = true
			assumptions = append(assumptions, MkLit(v, rng.Intn(2) == 0))
		}
		// Brute-force with assumptions folded in as unit clauses.
		all := append([][]Lit{}, clauses...)
		for _, a := range assumptions {
			all = append(all, []Lit{a})
		}
		want := bruteForce(n, all)

		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		var got bool
		if !ok {
			got = false
		} else {
			got = s.Solve(assumptions...) == Sat
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v (assumptions %v)", iter, got, want, assumptions)
		}
		if ok {
			// The solver must remain reusable: solving without
			// assumptions afterwards must agree with brute force.
			want2 := bruteForce(n, clauses)
			got2 := s.Solve() == Sat
			if got2 != want2 {
				t.Fatalf("iter %d: reuse solver=%v bruteforce=%v", iter, got2, want2)
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	addPigeonhole(s, 9, 8)
	s.SetConflictBudget(10)
	st, err := s.SolveLimited()
	if err == nil {
		// A very fast refutation is acceptable; otherwise budget applies.
		if st != Unsat {
			t.Fatalf("got %v without budget error", st)
		}
		return
	}
	if err != ErrBudget || st != Unknown {
		t.Fatalf("got (%v, %v), want (Unknown, ErrBudget)", st, err)
	}
	// Removing the budget must let the solve finish.
	s.SetConflictBudget(0)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("first Solve = %v", got)
	}
	s.AddClause(NegLit(a))
	s.AddClause(NegLit(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("second Solve = %v, want Unsat", got)
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	addPigeonhole(s, 6, 5)
	s.Solve()
	if s.Stats.Conflicts == 0 {
		t.Error("expected conflicts on PHP(6,5)")
	}
	if s.Stats.Propagations == 0 {
		t.Error("expected propagations")
	}
}

func TestNumVarsAndClauses(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if s.NumVars() != 2 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	if s.NumClauses() != 2 {
		t.Fatalf("NumClauses = %d", s.NumClauses())
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String mismatch")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.NewVar()
	}
	// Bump var 5 the most, then 3.
	for i := 0; i < 5; i++ {
		s.bumpVar(5)
	}
	s.bumpVar(3)
	v, ok := s.order.pop()
	if !ok || v != 5 {
		t.Fatalf("pop = %v, want 5", v)
	}
	v, ok = s.order.pop()
	if !ok || v != 3 {
		t.Fatalf("pop = %v, want 3", v)
	}
}

func BenchmarkSolverPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		addPigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("expected Unsat")
		}
	}
}

func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 120, 480 // below the phase transition: mostly SAT
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for c := 0; c < m; c++ {
			var cl [3]Lit
			for j := range cl {
				cl[j] = MkLit(Var(1+rng.Intn(n)), rng.Intn(2) == 0)
			}
			s.AddClause(cl[:]...)
		}
		s.Solve()
	}
}
