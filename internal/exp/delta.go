package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/rsn"
)

// DeltaResult is the outcome of one incremental (edit-script) analysis
// run.
type DeltaResult struct {
	// Derived is the edited input network — the base wiring with the
	// script applied, before the resolution pipeline mutated anything.
	// It is the base of the next delta in a session chain.
	Derived *rsn.Network
	// Analysis is valid for Derived: the caller's analysis when the
	// script kept the register set, or the fresh one built by the
	// structural fallback. Either way its cache holds a fixed point
	// from this run, ready to seed the next delta.
	Analysis *hybrid.Analysis
	// Structural reports that the script changed the register set, so
	// the fixed infrastructure was recomputed from scratch.
	Structural bool
	// Core is the pipeline outcome on (a clone of) Derived.
	Core *core.Report
	// Report is Core rendered as a one-row rsnsec.run-report/v1.
	Report *obs.RunReport
}

// SecureDelta applies an edit script to base and runs the resolution
// pipeline on the derived network, reusing an's fixed infrastructure
// (dependency matrices, cached attribute fixed point) whenever the
// script only rewires: those runs skip the dependency calculation
// entirely and re-propagate only the dirty cone of the edit. Scripts
// that add registers fall back to a fresh analysis over the derived
// network (ErrStructuralDelta path) — correct, just not incremental.
// The pipeline runs on a clone, so the returned Derived network keeps
// the pre-resolution wiring for chaining further deltas.
func SecureDelta(tool, label string, an *hybrid.Analysis, base *rsn.Network, script *rsn.EditScript, opts core.Options) (*DeltaResult, error) {
	derived, err := script.Apply(base)
	if err != nil {
		return nil, err
	}
	res := &DeltaResult{Derived: derived, Analysis: an}
	run := derived.Clone()
	if len(derived.Registers) == an.NumRegisters() {
		res.Core, err = core.SecureWithAnalysis(an, run, opts)
	} else {
		// Register set changed (or lengths diverged): the existing
		// combined index space cannot absorb the edit. Pay one fresh
		// dependency calculation and keep incrementality from here on.
		res.Structural = true
		t0 := time.Now()
		dan, derr := hybrid.NewAnalysisOpts(derived, an.Circuit, an.InternalFFs(), an.Spec, an.Mode, opts.EngineOptions())
		if derr != nil {
			return nil, fmt.Errorf("exp: delta dependency analysis: %w", derr)
		}
		depDur := time.Since(t0)
		res.Analysis = dan
		res.Core, err = core.SecureWithAnalysis(dan, run, opts)
		if res.Core != nil {
			res.Core.Times.DependencyCalc = depDur
			res.Core.Times.Total += depDur
		}
	}
	if err != nil {
		return nil, err
	}
	res.Report = SecureReport(tool, label, an.Mode, derived.Stats(), res.Core, nil)
	return res, nil
}
