package exp

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs/perfrec"
)

func smokeCollectConfig() RunConfig {
	cfg := QuickRunConfig()
	cfg.Circuits = 2
	cfg.Specs = 3
	cfg.TargetScanFFs = 60
	return cfg
}

func TestCollectBenchRecord(t *testing.T) {
	basic, ok := bench.ByName("BasicSCB")
	if !ok {
		t.Fatal("BasicSCB not in catalog")
	}
	rec, err := CollectBenchRecord(context.Background(), []bench.Benchmark{basic}, smokeCollectConfig(),
		CollectOptions{Reps: 2, Commit: "testcommit"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("collected record invalid: %v", err)
	}
	if rec.Reps != 2 || rec.Tool != "rsnbench" {
		t.Errorf("header = reps %d tool %q", rec.Reps, rec.Tool)
	}
	if rec.Env.Commit != "testcommit" || rec.Env.GOMAXPROCS < 1 {
		t.Errorf("environment fingerprint: %+v", rec.Env)
	}
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "BasicSCB" {
		t.Fatalf("benchmarks = %+v", rec.Benchmarks)
	}
	b := rec.Benchmarks[0]
	if b.Runs <= 0 || b.ScanFFs <= 0 {
		t.Errorf("runs %d, scan FFs %d", b.Runs, b.ScanFFs)
	}
	if len(b.Stages) == 0 {
		t.Fatal("no stages collected")
	}
	seen := map[string]perfrec.Stage{}
	for _, st := range b.Stages {
		if len(st.SamplesNS) != 2 {
			t.Errorf("stage %s has %d samples, want 2", st.Name, len(st.SamplesNS))
		}
		seen[st.Name] = st
	}
	// The core pipeline stages must be present with real span-derived
	// wall time (one-cycle SAT sweeps and resolution always run).
	for _, name := range []string{"one-cycle", "pure-resolve", "resolve", "propagate"} {
		st, ok := seen[name]
		if !ok {
			t.Errorf("stage %q missing from record (have %v)", name, stageNames(b.Stages))
			continue
		}
		if st.MedianNS <= 0 {
			t.Errorf("stage %q median is %d, want > 0", name, st.MedianNS)
		}
	}
	if b.SATQueries <= 0 || b.SATDecisions <= 0 {
		t.Errorf("SAT counters not collected: queries %d decisions %d", b.SATQueries, b.SATDecisions)
	}
	// The one-cycle stage carries the resolution-path split: the
	// prefilter witnesses most leaves, SAT decides the rest.
	if oc := seen["one-cycle"]; oc.SimResolved <= 0 || oc.SATResolved != b.SATQueries {
		t.Errorf("one-cycle split = sim %d / sat %d (sat_queries %d)",
			oc.SimResolved, oc.SATResolved, b.SATQueries)
	}
	if b.HeapAllocPeakBytes <= 0 || b.TotalAllocBytes <= 0 {
		t.Errorf("memory stats not collected: peak %d total %d", b.HeapAllocPeakBytes, b.TotalAllocBytes)
	}
	// A self-comparison of the collected record must pass the gate.
	if regs := perfrec.Compare(rec, rec, perfrec.Limits{}); len(regs) != 0 {
		t.Errorf("self-comparison flagged: %s", perfrec.FormatRegressions(regs))
	}
}

func TestCollectBenchRecordCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	basic, _ := bench.ByName("BasicSCB")
	_, err := CollectBenchRecord(ctx, []bench.Benchmark{basic}, smokeCollectConfig(),
		CollectOptions{Reps: 1})
	if err == nil {
		t.Fatal("canceled collection returned no error")
	}
}

func stageNames(stages []perfrec.Stage) []string {
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	return names
}

func TestCollectBenchRecordAttackAnnex(t *testing.T) {
	basic, ok := bench.ByName("BasicSCB")
	if !ok {
		t.Fatal("BasicSCB not in catalog")
	}
	cfg := smokeCollectConfig()
	cfg.Circuits = 1
	cfg.Specs = 1
	cfg.TargetScanFFs = 30
	rec, err := CollectBenchRecord(context.Background(), []bench.Benchmark{basic}, cfg,
		CollectOptions{Reps: 2, AttackKeyBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := rec.Benchmarks[0].Attack
	if a == nil {
		t.Fatal("attack annex not collected")
	}
	if a.KeyBits != 4 || a.Dynamic {
		t.Errorf("annex shape: %+v", a)
	}
	names := map[string]perfrec.Stage{}
	for _, st := range a.Stages {
		names[st.Name] = st
	}
	for _, want := range []string{"attack-sat", "attack-flush"} {
		st, ok := names[want]
		if !ok {
			t.Errorf("attack stage %q missing", want)
			continue
		}
		if st.Reps != 2 || st.MedianNS <= 0 {
			t.Errorf("attack stage %q: reps %d median %d", want, st.Reps, st.MedianNS)
		}
	}
	if a.SATIterations < 1 {
		t.Errorf("sat_iterations %d, want >= 1", a.SATIterations)
	}
	// The attack stages live only in the annex, not among the pipeline
	// stages.
	for _, st := range rec.Benchmarks[0].Stages {
		if st.Name == "attack-sat" || st.Name == "attack-flush" {
			t.Errorf("attack stage %q leaked into the pipeline stages", st.Name)
		}
	}
	if regs := perfrec.Compare(rec, rec, perfrec.Limits{}); len(regs) != 0 {
		t.Errorf("self-comparison flagged: %s", perfrec.FormatRegressions(regs))
	}
}
