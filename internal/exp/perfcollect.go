package exp

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/obfus"
	"repro/internal/obs"
	"repro/internal/obs/perfrec"
)

// CollectOptions parameterizes bench-record collection.
type CollectOptions struct {
	// Reps is the number of repetitions each benchmark is measured
	// over (medians and MADs are taken across reps); <= 0 uses 3.
	Reps int
	// Tool stamps the record's producer; "" uses "rsnbench".
	Tool string
	// Commit stamps the environment fingerprint's VCS revision.
	Commit string
	// Progress, when non-nil, receives one line per finished rep.
	Progress func(format string, args ...any)
	// AttackKeyBits, when positive, additionally measures the attack
	// analysis each rep: the benchmark's network (at the protocol's
	// effective scale) is obfuscated with that many key bits seeded by
	// the run seed, both attacks run against it, and the timings land
	// in the record's optional per-benchmark Attack annex.
	// AttackDynamic selects the LFSR key schedule.
	AttackKeyBits int
	AttackDynamic bool
}

func (o CollectOptions) reps() int {
	if o.Reps > 0 {
		return o.Reps
	}
	return 3
}

// repSample is one repetition's measurements for one benchmark.
type repSample struct {
	spanNS     map[string]int64 // per-stage wall, summed from trace spans
	snap       []engine.StageSnapshot
	satQ       int64
	satD       int64
	satC       int64
	simR       int64
	heapPeak   int64
	totalAlloc int64
	runs       int
	scanFFs    int
	atk        *attackRepSample
}

// attackRepSample is one repetition's attack-analysis measurements.
type attackRepSample struct {
	satNS   int64
	flushNS int64
	iters   int64
	confl   int64
	rank    int64
}

// CollectBenchRecord measures the Table I protocol Reps times per
// benchmark and assembles the schema-versioned bench record: per-stage
// wall-time medians with MAD noise estimates, SAT decision/conflict
// totals, items/saved counters, runtime.MemStats peaks and the
// environment fingerprint.
//
// Per-stage wall times come from the real trace spans of the run — a
// private tracer over a CollectorSink journals every stage span (no
// sampling), and the collector sums durations per stage name — not
// from ad-hoc timers around the stages. Stage spans are cumulative
// across the protocol's concurrent circuit workers, so a stage's wall
// time is total time spent in the stage, which can exceed the rep's
// elapsed wall clock; the engine-stats wall counters share that
// semantics, and a stage that records counters but no spans falls back
// to its stats counter so the record stays complete. Memory peaks are
// sampled best-effort at ~10ms granularity.
func CollectBenchRecord(ctx context.Context, benchmarks []bench.Benchmark, cfg RunConfig, opts CollectOptions) (*perfrec.Record, error) {
	reps := opts.reps()
	tool := opts.Tool
	if tool == "" {
		tool = "rsnbench"
	}
	rec := &perfrec.Record{
		Schema: perfrec.BenchSchema,
		Tool:   tool,
		Reps:   reps,
		Config: perfrec.Config{
			Mode:          fmt.Sprint(cfg.Mode),
			Seed:          cfg.Seed,
			Circuits:      cfg.Circuits,
			Specs:         cfg.Specs,
			TargetScanFFs: cfg.TargetScanFFs,
			Scale:         cfg.Scale,
			Workers:       cfg.Workers,
		},
		Env: perfrec.CaptureEnvironment(opts.Commit),
	}
	for _, b := range benchmarks {
		samples := make([]repSample, 0, reps)
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s, err := collectRep(ctx, b, cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("%s: rep %d: %w", b.Name, rep+1, err)
			}
			samples = append(samples, *s)
			if opts.Progress != nil {
				opts.Progress("%s: rep %d/%d done (%d runs)", b.Name, rep+1, reps, s.runs)
			}
		}
		rec.Benchmarks = append(rec.Benchmarks, assemble(b.Name, samples, opts))
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("collected record invalid: %w", err)
	}
	return rec, nil
}

// collectRep runs one repetition of the protocol for one benchmark
// under private instrumentation.
func collectRep(ctx context.Context, b bench.Benchmark, cfg RunConfig, opts CollectOptions) (*repSample, error) {
	reg := obs.NewRegistry()
	stats := engine.NewStatsOn(reg)
	sink := &obs.CollectorSink{}
	cfg.Stats = stats
	cfg.Tracer = obs.NewTracer(sink)
	cfg.TraceParent = nil
	cfg.Progress = nil

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	peakC := make(chan int64, 1)
	stop := make(chan struct{})
	go sampleHeapPeak(stop, peakC)

	results, err := RunProtocol(ctx, []bench.Benchmark{b}, cfg, nil)
	close(stop)
	peak := <-peakC
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if err != nil {
		return nil, err
	}
	res := results[0]

	s := &repSample{
		spanNS:  make(map[string]int64),
		snap:    stats.Snapshot(),
		satQ:    reg.Counter("dep_sat_queries_total").Value(),
		satD:    reg.Counter("dep_sat_decisions_total").Value(),
		satC:    reg.Counter("dep_sat_conflicts_total").Value(),
		simR:    reg.Counter("dep_sim_resolved_total").Value(),
		runs:    res.Runs,
		scanFFs: res.ScaledStats.ScanFFs,
	}
	if hp := int64(m1.HeapAlloc); hp > peak {
		peak = hp
	}
	s.heapPeak = peak
	s.totalAlloc = int64(m1.TotalAlloc - m0.TotalAlloc)
	for _, ev := range sink.Events() {
		s.spanNS[ev.Name] += ev.DurU * int64(time.Microsecond)
	}
	if opts.AttackKeyBits > 0 {
		atk, err := collectAttackRep(ctx, b, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("attack: %w", err)
		}
		s.atk = atk
	}
	return s, nil
}

// collectAttackRep runs the attack analysis once against the
// benchmark's obfuscated network (at the protocol's effective scale)
// and samples its timings and effort counters. The attack stages stay
// out of the rep's engine instrumentation so they land only in the
// record's Attack annex, not among the pipeline stages.
func collectAttackRep(ctx context.Context, b bench.Benchmark, cfg RunConfig, opts CollectOptions) (*attackRepSample, error) {
	scale := cfg.Scale
	if scale == 0 {
		scale = b.ScaleForTarget(cfg.TargetScanFFs)
	}
	nw := b.Build(scale)
	ov, key, err := obfus.ObfuscateNetwork(nw, obfus.GenConfig{
		KeyBits: opts.AttackKeyBits, MuxShare: -1, Dynamic: opts.AttackDynamic,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep, err := RunAttackAnalysis(ctx, "rsnbench", nw, ov, key, AttackOptions{IncludeTimings: true})
	if err != nil {
		return nil, err
	}
	atk := &attackRepSample{}
	if sat := rep.SAT; sat != nil {
		atk.satNS = sat.TimeNS
		atk.iters = int64(sat.Iterations)
		atk.confl = sat.Conflicts
	}
	if fl := rep.Flush; fl != nil {
		atk.flushNS = fl.TimeNS
		atk.rank = int64(fl.Rank)
	}
	return atk, nil
}

// sampleHeapPeak polls runtime.MemStats until stop closes and sends
// the peak observed HeapAlloc.
func sampleHeapPeak(stop <-chan struct{}, out chan<- int64) {
	var peak int64
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var m runtime.MemStats
	for {
		select {
		case <-stop:
			out <- peak
			return
		case <-tick.C:
			runtime.ReadMemStats(&m)
			if h := int64(m.HeapAlloc); h > peak {
				peak = h
			}
		}
	}
}

// assemble folds the per-rep samples of one benchmark into its record
// row: stage order follows the engine's deterministic pipeline order,
// stage walls are span-derived medians, counters are medians across
// reps, and the heap peak is the maximum over reps.
func assemble(name string, samples []repSample, opts CollectOptions) perfrec.Benchmark {
	first := samples[0]
	b := perfrec.Benchmark{
		Name:    name,
		ScanFFs: first.scanFFs,
		Runs:    first.runs,
	}
	var satQ, satD, satC, alloc []int64
	for i := range samples {
		s := &samples[i]
		satQ = append(satQ, s.satQ)
		satD = append(satD, s.satD)
		satC = append(satC, s.satC)
		alloc = append(alloc, s.totalAlloc)
		if s.heapPeak > b.HeapAllocPeakBytes {
			b.HeapAllocPeakBytes = s.heapPeak
		}
	}
	b.SATQueries = perfrec.Median(satQ)
	b.SATDecisions = perfrec.Median(satD)
	b.SATConflicts = perfrec.Median(satC)
	b.TotalAllocBytes = perfrec.Median(alloc)

	for _, st := range first.snap {
		var wall, calls, queries, items, saved []int64
		for i := range samples {
			s := &samples[i]
			w, ok := s.spanNS[st.Name]
			if !ok {
				// Counter-only stage (no span coverage): fall back to
				// the engine-stats wall so the record stays complete.
				w = statsWall(s.snap, st.Name)
			}
			wall = append(wall, w)
			c := snapshotOf(s.snap, st.Name)
			calls = append(calls, c.Calls)
			queries = append(queries, c.Queries)
			items = append(items, c.Items)
			saved = append(saved, c.Saved)
		}
		stage := perfrec.NewStage(st.Name, wall)
		stage.Calls = perfrec.Median(calls)
		stage.Queries = perfrec.Median(queries)
		stage.Items = perfrec.Median(items)
		stage.Saved = perfrec.Median(saved)
		if st.Name == "one-cycle" {
			// Split the stage's leaf classifications by resolution path:
			// prefilter-witnessed vs. decided by a SAT cofactor query.
			var simR, satQ []int64
			for i := range samples {
				simR = append(simR, samples[i].simR)
				satQ = append(satQ, samples[i].satQ)
			}
			stage.SimResolved = perfrec.Median(simR)
			stage.SATResolved = perfrec.Median(satQ)
		}
		b.Stages = append(b.Stages, stage)
	}
	if first.atk != nil {
		var satNS, flushNS, iters, confl, rank []int64
		for i := range samples {
			a := samples[i].atk
			satNS = append(satNS, a.satNS)
			flushNS = append(flushNS, a.flushNS)
			iters = append(iters, a.iters)
			confl = append(confl, a.confl)
			rank = append(rank, a.rank)
		}
		b.Attack = &perfrec.AttackBench{
			KeyBits: opts.AttackKeyBits,
			Dynamic: opts.AttackDynamic,
			Stages: []perfrec.Stage{
				perfrec.NewStage("attack-sat", satNS),
				perfrec.NewStage("attack-flush", flushNS),
			},
			SATIterations: perfrec.Median(iters),
			SATConflicts:  perfrec.Median(confl),
			FlushRank:     perfrec.Median(rank),
		}
	}
	return b
}

func snapshotOf(snap []engine.StageSnapshot, name string) engine.StageSnapshot {
	for _, st := range snap {
		if st.Name == name {
			return st
		}
	}
	return engine.StageSnapshot{}
}

func statsWall(snap []engine.StageSnapshot, name string) int64 {
	return int64(snapshotOf(snap, name).Wall)
}
