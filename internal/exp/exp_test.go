package exp

import (
	"testing"

	"repro/internal/bench"
)

func mustBench(t *testing.T, name string) bench.Benchmark {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %q missing", name)
	}
	return b
}

func TestRunBenchmarkBasicSCB(t *testing.T) {
	cfg := QuickRunConfig()
	res, err := RunBenchmark(mustBench(t, "BasicSCB"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Runs + res.SkippedNoViolation + res.SkippedInsecureLogic + res.Errors
	if total != cfg.Circuits*cfg.Specs {
		t.Fatalf("accounted runs %d != %d", total, cfg.Circuits*cfg.Specs)
	}
	if res.Errors != 0 {
		t.Fatalf("%d resolution errors", res.Errors)
	}
	if res.Runs == 0 {
		t.Fatal("no measured runs; generator/spec defaults too tame")
	}
	if res.AvgViolatingRegs <= 0 || res.AvgTotalChanges <= 0 {
		t.Fatalf("averages: viol=%v changes=%v", res.AvgViolatingRegs, res.AvgTotalChanges)
	}
	if d := res.AvgTotalChanges - (res.AvgPureChanges + res.AvgHybridChanges); d > 1e-9 || d < -1e-9 {
		t.Fatal("change averages inconsistent")
	}
	if res.AvgTotalTime <= 0 || res.AvgDepTime <= 0 {
		t.Fatal("runtimes not recorded")
	}
	if res.FullStats.Registers != 21 {
		t.Fatal("full stats wrong")
	}
}

func TestRunBenchmarkDeterministic(t *testing.T) {
	cfg := QuickRunConfig()
	b := mustBench(t, "TreeFlat")
	a, err := RunBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != c.Runs || a.AvgViolatingRegs != c.AvgViolatingRegs ||
		a.AvgPureChanges != c.AvgPureChanges || a.AvgHybridChanges != c.AvgHybridChanges {
		t.Fatalf("same config produced different results: %+v vs %+v", a, c)
	}
}

func TestRunBenchmarkScaledLargeBenchmark(t *testing.T) {
	cfg := QuickRunConfig()
	cfg.Circuits = 1
	cfg.Specs = 4
	res, err := RunBenchmark(mustBench(t, "p93791"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaledStats.ScanFFs > 3*cfg.TargetScanFFs {
		t.Fatalf("scaled FFs = %d, target %d", res.ScaledStats.ScanFFs, cfg.TargetScanFFs)
	}
	if res.ScaledStats.Registers < 8 {
		t.Fatalf("scaled structure too small: %+v", res.ScaledStats)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
}

func TestRunBenchmarkRejectsBadConfig(t *testing.T) {
	cfg := QuickRunConfig()
	cfg.Circuits = 0
	if _, err := RunBenchmark(mustBench(t, "BasicSCB"), cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBridging(t *testing.T) {
	cfg := QuickRunConfig()
	res, err := RunBridging(mustBench(t, "Mingle"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FFsBridged >= res.FFsTotal {
		t.Fatalf("bridging removed nothing: %d -> %d", res.FFsTotal, res.FFsBridged)
	}
	if res.FFReduction() <= 0 || res.FFReduction() >= 1 {
		t.Fatalf("FF reduction = %v", res.FFReduction())
	}
	// Dependency reduction is typically positive (fewer denoted pairs).
	if res.DepReduction() < 0 {
		t.Logf("note: dependency count grew under bridging: %v", res.DepReduction())
	}
}

func TestRunApprox(t *testing.T) {
	cfg := QuickRunConfig()
	res, err := RunApprox(mustBench(t, "BasicSCB"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpecRuns != cfg.Circuits*cfg.Specs {
		t.Fatalf("examined %d of %d pairs", res.TotalSpecRuns, cfg.Circuits*cfg.Specs)
	}
	if res.Runs > 0 && res.ApproxChanges < res.ExactChanges {
		t.Fatalf("approximation needed fewer changes (%v < %v)", res.ApproxChanges, res.ExactChanges)
	}
	if r := res.FalseInsecureRate(); r < 0 || r > 1 {
		t.Fatalf("false insecure rate = %v", r)
	}
}

func TestEffectiveScale(t *testing.T) {
	cfg := DefaultRunConfig()
	small := mustBench(t, "BasicSCB") // 176 FFs < 350 target
	if s := cfg.effectiveScale(small); s != 1 {
		t.Fatalf("small benchmark scale = %v, want 1", s)
	}
	big := mustBench(t, "p93791")
	if s := cfg.effectiveScale(big); s >= 1 || s <= 0 {
		t.Fatalf("big benchmark scale = %v", s)
	}
	cfg.Scale = 0.5
	if s := cfg.effectiveScale(big); s != 0.5 {
		t.Fatalf("explicit scale ignored: %v", s)
	}
}
