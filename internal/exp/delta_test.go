package exp

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/hybrid"
	"repro/internal/paperex"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// firstWiringScript finds a wiring-only edit on base for which both the
// incremental and the from-scratch pipeline succeed, returning the
// script and the two reports for comparison.
func firstWiringScript(t *testing.T, an *hybrid.Analysis, base *rsn.Network, opts core.Options) (*rsn.EditScript, *DeltaResult, *core.Report) {
	t.Helper()
	for reg := range base.Registers {
		for cand := -1; cand < len(base.Registers); cand++ {
			src := rsn.ScanIn
			if cand >= 0 {
				if cand == reg {
					continue
				}
				src = rsn.Reg(cand)
			}
			scr := &rsn.EditScript{Ops: []rsn.EditOp{
				{Op: rsn.OpCutReconnect, Pin: rsn.Reg(reg).String(), Src: src.String()},
			}}
			derived, err := scr.Apply(base)
			if err != nil {
				continue
			}
			full, err := core.Secure(derived.Clone(), an.Circuit, an.InternalFFs(), an.Spec, opts)
			if err != nil || !full.Secured {
				continue
			}
			res, err := SecureDelta("test", "paperex", an, base, scr, opts)
			if err != nil {
				t.Fatalf("full pipeline succeeded but SecureDelta failed on %v: %v", scr.Ops, err)
			}
			return scr, res, full
		}
	}
	t.Fatal("no wiring edit with a securable outcome found")
	return nil, nil, nil
}

// TestSecureDeltaWiringOnly checks the incremental path end to end on
// the running example: a wiring-only script reuses the caller's
// analysis (no dependency recalculation) and produces the same pipeline
// outcome as a from-scratch core.Secure on the derived network.
func TestSecureDeltaWiringOnly(t *testing.T) {
	e := paperex.New()
	opts := core.Options{Mode: dep.Exact}
	an, err := hybrid.NewAnalysisOpts(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact, opts.EngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	scr, res, full := firstWiringScript(t, an, e.Network, opts)
	if res.Structural {
		t.Fatal("wiring-only script flagged structural")
	}
	if res.Analysis != an {
		t.Fatal("wiring-only delta must reuse the caller's analysis")
	}
	if res.Core.Times.DependencyCalc != 0 {
		t.Fatalf("incremental run recomputed dependencies (%v)", res.Core.Times.DependencyCalc)
	}
	if res.Core.Secured != full.Secured ||
		res.Core.ViolatingRegsBefore != full.ViolatingRegsBefore ||
		res.Core.PureChanges != full.PureChanges ||
		res.Core.HybridChanges != full.HybridChanges {
		t.Fatalf("incremental outcome diverges from full run:\n inc  %+v\n full %+v", res.Core, full)
	}
	// Derived must be the pre-resolution wiring: applying the script to
	// the base again reproduces it exactly.
	again, err := scr.Apply(e.Network)
	if err != nil {
		t.Fatal(err)
	}
	if rsn.CanonicalHash(res.Derived) != rsn.CanonicalHash(again) {
		t.Fatal("Derived is not the pre-resolution edited network")
	}
	if res.Report == nil || res.Report.Validate() != nil {
		t.Fatalf("delta run report invalid: %+v", res.Report)
	}
	if res.Report.Benchmarks[0].AvgDepNS != 0 {
		t.Fatal("incremental run report charges dependency time")
	}
}

// TestSecureDeltaStructuralFallback checks the other leg: a script that
// adds a register cannot reuse the fixed infrastructure, so SecureDelta
// builds a fresh analysis, charges the dependency time, and still
// matches the from-scratch pipeline.
func TestSecureDeltaStructuralFallback(t *testing.T) {
	e := paperex.New()
	opts := core.Options{Mode: dep.Exact}
	an, err := hybrid.NewAnalysisOpts(e.Network, e.Circuit, e.Internal, e.Spec, dep.Exact, opts.EngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	scr := &rsn.EditScript{Ops: []rsn.EditOp{
		{Op: rsn.OpAddRegister, Pin: "R0", Src: "SI", Name: "nx", Len: 2, Module: 0},
	}}
	res, err := SecureDelta("test", "paperex", an, e.Network, scr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Structural {
		t.Fatal("add-register script not flagged structural")
	}
	if res.Analysis == an {
		t.Fatal("structural delta must build a fresh analysis")
	}
	if res.Analysis.NumRegisters() != len(e.Network.Registers)+1 {
		t.Fatalf("fresh analysis has %d registers", res.Analysis.NumRegisters())
	}
	if res.Core.Times.DependencyCalc <= 0 {
		t.Fatal("structural run must charge the dependency recalculation")
	}
	full, err := core.Secure(res.Derived.Clone(), an.Circuit, an.InternalFFs(), an.Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Core.Secured != full.Secured ||
		res.Core.ViolatingRegsBefore != full.ViolatingRegsBefore ||
		res.Core.PureChanges != full.PureChanges ||
		res.Core.HybridChanges != full.HybridChanges {
		t.Fatalf("structural outcome diverges from full run:\n inc  %+v\n full %+v", res.Core, full)
	}
}

// deltaBenchCase builds a scaled catalog benchmark with an attached
// circuit and a generated spec that yields resolvable violations — the
// same setup the hybrid package benchmarks on, through public API only.
func deltaBenchCase(tb testing.TB, name string) (*hybrid.Analysis, *rsn.Network) {
	tb.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		tb.Fatalf("unknown benchmark %q", name)
	}
	nw := b.Build(0.15)
	att := bench.AttachCircuit(nw, bench.DefaultCircuitConfig(), 7)
	for seed := int64(0); seed < 24; seed++ {
		spec := secspec.Generate(len(nw.Modules), secspec.DefaultGenConfig(), seed)
		an, err := hybrid.NewAnalysisOpts(nw, att.Circuit, att.Internal, spec, dep.Exact, engine.Options{})
		if err != nil {
			continue
		}
		if len(an.InsecureModulePairs()) > 0 || len(an.Violations(nw)) == 0 {
			continue
		}
		return an, nw
	}
	tb.Fatalf("%s: no spec seed with violations found", name)
	return nil, nil
}

// benchChain precomputes a deterministic chain of wiring-only scripts
// (validated step by step on an evolving clone) plus the derived
// network of every step, and verifies during setup that both the
// incremental and the from-scratch pipeline secure every step.
func benchChain(tb testing.TB, an *hybrid.Analysis, base *rsn.Network, steps int) []*rsn.EditScript {
	tb.Helper()
	r := rand.New(rand.NewSource(11))
	scripts := make([]*rsn.EditScript, 0, steps)
	nw := base
	for len(scripts) < steps {
		var ops []rsn.EditOp
		for tries := 0; len(ops) == 0 && tries < 100; tries++ {
			reg := r.Intn(len(nw.Registers))
			cur := nw.Registers[reg].In
			src := rsn.ScanIn
			if cand := r.Intn(len(nw.Registers) + 1); cand < len(nw.Registers) && cand != reg {
				src = rsn.Reg(cand)
			}
			if src == cur {
				continue
			}
			trial := nw.Clone()
			if _, err := trial.CutAndReconnect(rsn.Sink{Elem: rsn.Reg(reg), Idx: 0}, src); err != nil || trial.Validate() != nil {
				continue
			}
			ops = append(ops, rsn.EditOp{Op: rsn.OpCutReconnect, Pin: rsn.Reg(reg).String(), Src: src.String()})
		}
		if len(ops) == 0 {
			tb.Fatalf("step %d: no legal edit found", len(scripts))
		}
		scr := &rsn.EditScript{Ops: ops}
		derived, err := scr.Apply(nw)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := core.Secure(derived.Clone(), an.Circuit, an.InternalFFs(), an.Spec, core.Options{Mode: an.Mode}); err != nil {
			// This step is not securable; skip it and look for another.
			continue
		}
		scripts = append(scripts, scr)
		nw = derived
	}
	return scripts
}

// BenchmarkSecureDeltaChain measures one incremental session: a chain
// of wiring-only deltas secured through SecureDelta on a single
// long-lived analysis. Compare against BenchmarkSecureFullChain (same
// chain, from-scratch core.Secure per step) for the per-delta speedup —
// the incremental runs skip the dependency calculation entirely.
func BenchmarkSecureDeltaChain(b *testing.B) {
	an, base := deltaBenchCase(b, "MBIST_1_5_5")
	scripts := benchChain(b, an, base, 6)
	opts := core.Options{Mode: an.Mode}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := base
		for _, scr := range scripts {
			res, err := SecureDelta("bench", "chain", an, nw, scr, opts)
			if err != nil {
				b.Fatal(err)
			}
			nw = res.Derived
		}
	}
}

// BenchmarkSecureFullChain is the baseline for BenchmarkSecureDeltaChain:
// the same edit chain, but every step pays a from-scratch core.Secure
// (dependency analysis included).
func BenchmarkSecureFullChain(b *testing.B) {
	an, base := deltaBenchCase(b, "MBIST_1_5_5")
	scripts := benchChain(b, an, base, 6)
	opts := core.Options{Mode: an.Mode}
	networks := make([]*rsn.Network, 0, len(scripts))
	nw := base
	for _, scr := range scripts {
		derived, err := scr.Apply(nw)
		if err != nil {
			b.Fatal(err)
		}
		networks = append(networks, derived)
		nw = derived
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, derived := range networks {
			if _, err := core.Secure(derived.Clone(), an.Circuit, an.InternalFFs(), an.Spec, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}
