package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/obfus"
	"repro/internal/obs"
	"repro/internal/rsn"
)

// AttackOptions parameterizes one attack-analysis run against an
// obfuscated network.
type AttackOptions struct {
	// Horizon is the observation window in shift cycles (0 = the
	// network's default).
	Horizon int
	// MaxIterations caps ScanSAT distinguishing-input refinements
	// (0 = the attack's default).
	MaxIterations int
	// ConflictBudget caps total solver conflicts across the refinement
	// loop (0 = unlimited).
	ConflictBudget int64
	// MaxConfigs bounds configuration enumeration (0 = the default).
	MaxConfigs int
	// SkipSAT / SkipFlush drop the corresponding attack from the run
	// (and its section from the report).
	SkipSAT   bool
	SkipFlush bool
	// IncludeTimings stamps wall-clock durations into the report's
	// TimeNS fields. Leave false when the report feeds a
	// content-addressed store: without timings, reports of identical
	// runs are byte-identical.
	IncludeTimings bool
	// Stats, when non-nil, accumulates per-stage engine instrumentation
	// under the "attack-sat" and "attack-flush" stages.
	Stats *engine.Stats
	// Tracer/TraceParent nest one span per attack stage under the
	// caller's span.
	Tracer      *obs.Tracer
	TraceParent *obs.Span
}

// RunAttackAnalysis executes the attack stages of the obfuscation
// study against one (network, overlay, key) triple: the ScanSAT-style
// key recovery and the GF(2) flush analysis, assembled into the
// schema-versioned rsnsec.attack-report/v1 document.
func RunAttackAnalysis(ctx context.Context, tool string, nw *rsn.Network, ov *rsn.Obfuscation, trueKey []bool, opts AttackOptions) (*obfus.Report, error) {
	if opts.SkipSAT && opts.SkipFlush {
		return nil, fmt.Errorf("exp: attack analysis with both attacks skipped")
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = obfus.DefaultHorizon(nw)
	}
	var (
		kr *obfus.KeyRecoveryResult
		fl *obfus.FlushResult
		// Durations are tracked outside the results so served reports
		// can omit them.
		satNS, flushNS int64
	)
	if !opts.SkipSAT {
		done := opts.Stats.Stage("attack-sat").Start()
		span := opts.Tracer.Start(opts.TraceParent, "attack-sat",
			obs.Str("network", nw.Name), obs.Int("key_bits", int64(ov.NumKeyBits)))
		t0 := time.Now()
		res, err := obfus.KeyRecovery(ctx, nw, ov, trueKey, obfus.KeyRecoveryOptions{
			Horizon:        horizon,
			MaxIterations:  opts.MaxIterations,
			ConflictBudget: opts.ConflictBudget,
			MaxConfigs:     opts.MaxConfigs,
		})
		satNS = time.Since(t0).Nanoseconds()
		if err == nil {
			span.SetAttrs(obs.Str("outcome", res.Outcome), obs.Int("iterations", int64(res.Iterations)))
		}
		span.End()
		done()
		if err != nil {
			return nil, fmt.Errorf("exp: key recovery: %w", err)
		}
		kr = res
	}
	if !opts.SkipFlush {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		done := opts.Stats.Stage("attack-flush").Start()
		span := opts.Tracer.Start(opts.TraceParent, "attack-flush",
			obs.Str("network", nw.Name), obs.Int("key_bits", int64(ov.NumKeyBits)))
		t0 := time.Now()
		res, err := obfus.FlushAttack(nw, ov, trueKey, obfus.FlushOptions{
			Horizon:    horizon,
			MaxConfigs: opts.MaxConfigs,
		})
		flushNS = time.Since(t0).Nanoseconds()
		if err == nil {
			span.SetAttrs(obs.Int("rank", int64(res.Rank)))
		}
		span.End()
		done()
		if err != nil {
			return nil, fmt.Errorf("exp: flush attack: %w", err)
		}
		fl = res
	}
	rep := obfus.NewReport(tool, nw, ov, horizon, kr, fl)
	if opts.IncludeTimings {
		if rep.SAT != nil {
			rep.SAT.TimeNS = satNS
		}
		if rep.Flush != nil {
			rep.Flush.TimeNS = flushNS
		}
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("exp: attack report: %w", err)
	}
	return rep, nil
}
