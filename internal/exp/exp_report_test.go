package exp

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

// TestBuildReportAgreesWithEngineStats pins the acceptance contract of
// rsnbench -report: the report's per-stage totals are exactly the
// engine's instrumentation (same stages, same wall times, same
// counters), and the benchmark rows mirror the measured results.
func TestBuildReportAgreesWithEngineStats(t *testing.T) {
	cfg := QuickRunConfig()
	stats := engine.NewStats()
	cfg.Stats = stats
	b := mustBench(t, "BasicSCB")
	res, err := RunBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rep := BuildReport("rsnbench", "main", cfg, []*Result{res, nil}, stats)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("%d benchmark rows (nil results must be skipped)", len(rep.Benchmarks))
	}

	snaps := stats.Snapshot()
	if len(rep.Stages) == 0 || len(rep.Stages) != len(snaps) {
		t.Fatalf("%d stage rows, engine has %d", len(rep.Stages), len(snaps))
	}
	var wall int64
	for i, s := range rep.Stages {
		sn := snaps[i]
		if s.Name != sn.Name {
			t.Fatalf("stage %d: %q != engine %q", i, s.Name, sn.Name)
		}
		if s.WallNS != sn.Wall.Nanoseconds() {
			t.Fatalf("stage %q: report wall %d != engine wall %d", s.Name, s.WallNS, sn.Wall.Nanoseconds())
		}
		if s.Calls != sn.Calls || s.Queries != sn.Queries || s.Items != sn.Items || s.Saved != sn.Saved {
			t.Fatalf("stage %q counters diverge: %+v vs %+v", s.Name, s, sn)
		}
		wall += s.WallNS
	}
	if rep.Totals.StageWallNS != wall {
		t.Fatalf("totals wall %d != stage sum %d", rep.Totals.StageWallNS, wall)
	}

	row := rep.Benchmarks[0]
	if row.Name != "BasicSCB" || row.Runs != res.Runs ||
		row.AvgTotalChanges != res.AvgTotalChanges || row.AvgDepNS != int64(res.AvgDepTime) {
		t.Fatalf("benchmark row diverges from result: %+v vs %+v", row, res)
	}
	if rep.Totals.Runs != res.Runs {
		t.Fatalf("totals runs %d != %d", rep.Totals.Runs, res.Runs)
	}

	// The serialized artifact round-trips through the validating reader.
	var buf bytes.Buffer
	if err := obs.WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Totals != rep.Totals {
		t.Fatal("totals changed across serialization")
	}
}

// TestBuildReportDeterministic: identical runs produce byte-identical
// report rows (wall times differ run to run, so compare with stats
// detached).
func TestBuildReportDeterministic(t *testing.T) {
	cfg := QuickRunConfig()
	b := mustBench(t, "TreeFlat")
	r1, err := RunBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildReport("rsnbench", "main", cfg, []*Result{r1}, nil)
	c := BuildReport("rsnbench", "main", cfg, []*Result{r2}, nil)
	ra, rc := a.Benchmarks[0], c.Benchmarks[0]
	// Zero the machine-bound timing fields; everything else must match.
	ra.AvgDepNS, ra.AvgPureNS, ra.AvgHybridNS, ra.AvgTotalNS = 0, 0, 0, 0
	rc.AvgDepNS, rc.AvgPureNS, rc.AvgHybridNS, rc.AvgTotalNS = 0, 0, 0, 0
	if ra != rc {
		t.Fatalf("same config produced different report rows:\n%+v\n%+v", ra, rc)
	}
}

// TestRunBenchmarkTraceHierarchy checks the spans a measured run emits:
// every circuit span is a child of the given parent, and stage spans
// nest under circuit spans.
func TestRunBenchmarkTraceHierarchy(t *testing.T) {
	sink := &obs.CollectorSink{}
	tracer := obs.NewTracer(sink)
	cfg := QuickRunConfig()
	cfg.Circuits = 2
	cfg.Specs = 4
	cfg.Tracer = tracer
	root := tracer.Start(nil, "run")
	cfg.TraceParent = root
	if _, err := RunBenchmark(mustBench(t, "BasicSCB"), cfg); err != nil {
		t.Fatal(err)
	}
	root.End()

	circuits := make(map[uint64]bool)
	for _, ev := range sink.Events() {
		if ev.Name == "circuit" {
			circuits[ev.Span] = true
			if ev.Parent != root.ID() {
				t.Fatalf("circuit span parented to %d, want run %d", ev.Parent, root.ID())
			}
		}
	}
	if len(circuits) != cfg.Circuits {
		t.Fatalf("%d circuit spans, want %d", len(circuits), cfg.Circuits)
	}
	stages := 0
	for _, ev := range sink.Events() {
		switch ev.Name {
		case "one-cycle", "bridge", "closure":
			if !circuits[ev.Parent] {
				t.Fatalf("stage span %q parented outside a circuit span: %+v", ev.Name, ev)
			}
			stages++
		}
	}
	if stages == 0 {
		t.Fatal("no stage spans recorded")
	}
}
