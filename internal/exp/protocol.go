package exp

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rsn"
)

// RunProtocol executes the Table I protocol over a benchmark list —
// the shared driver behind cmd/rsnbench's main table and the
// rsnserved analysis jobs, so the two can never drift. Benchmarks run
// sequentially (each one parallelizes internally over cfg.Parallel
// circuit workers); observe, when non-nil, receives every finished
// result in order, letting a CLI render rows incrementally while a
// server ignores it. The returned slice holds one result per
// benchmark; on error the slice covers the benchmarks finished before
// the failure.
func RunProtocol(ctx context.Context, benchmarks []bench.Benchmark, cfg RunConfig, observe func(*Result)) ([]*Result, error) {
	results := make([]*Result, 0, len(benchmarks))
	for _, b := range benchmarks {
		res, err := RunBenchmarkCtx(ctx, b, cfg)
		if err != nil {
			return results, fmt.Errorf("%s: %w", b.Name, err)
		}
		results = append(results, res)
		if observe != nil {
			observe(res)
		}
	}
	return results, nil
}

// SecureReport wraps the outcome of one core.Secure run as a one-row
// schema-versioned run report, so single-network analyses (the
// rsnserved inline-ICL jobs) emit the same rsnsec.run-report/v1
// documents as full protocol runs. An insecure-logic outcome reports
// zero runs with SkippedInsecureLogic set, mirroring the protocol's
// exclusion rule. Like BuildReport, it leaves StartedAt unset so
// reports of identical runs stay byte-comparable.
func SecureReport(tool, name string, mode dep.Mode, st rsn.Stats, rep *core.Report, stats *engine.Stats) *obs.RunReport {
	row := obs.BenchmarkReport{
		Name:   name,
		Family: "inline",

		Registers: st.Registers,
		ScanFFs:   st.ScanFFs,
		Muxes:     st.Muxes,

		FullRegisters: st.Registers,
		FullScanFFs:   st.ScanFFs,
		FullMuxes:     st.Muxes,
	}
	if rep.InsecureLogic {
		row.SkippedInsecureLogic = 1
	} else {
		row.Runs = 1
		row.AvgViolatingRegs = float64(rep.ViolatingRegsBefore)
		row.AvgPureChanges = float64(rep.PureChanges)
		row.AvgHybridChanges = float64(rep.HybridChanges)
		row.AvgTotalChanges = float64(rep.TotalChanges())
		row.AvgDepNS = int64(rep.Times.DependencyCalc)
		row.AvgPureNS = int64(rep.Times.PureStage)
		row.AvgHybridNS = int64(rep.Times.HybridStage)
		row.AvgTotalNS = int64(rep.Times.Total)
	}
	r := &obs.RunReport{
		Schema: obs.ReportSchema,
		Tool:   tool,
		Config: obs.ReportConfig{
			Table:    "secure",
			Mode:     fmt.Sprint(mode),
			Circuits: 1,
			Specs:    1,
		},
		Benchmarks: []obs.BenchmarkReport{row},
	}
	r.Stages = stats.StageReports()
	r.ComputeTotals()
	return r
}
