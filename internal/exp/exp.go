// Package exp drives the paper's experimental protocol (Section IV-A):
// for every benchmark it generates k random circuits and, per circuit,
// s random security specifications; runs the full secure-data-flow
// method on every (circuit, specification) pair where a violation
// occurs but the circuit logic itself is not insecure; and averages
// violating-register counts, applied changes (pure/hybrid/total) and
// per-stage runtimes — the columns of Table I. It also measures the
// bridging reductions of Section III-A and the structural
// over-approximation overheads of Section IV-C.
package exp

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/pure"
	"repro/internal/rsn"
	"repro/internal/secspec"
)

// RunConfig parameterizes one experimental run.
type RunConfig struct {
	// Scale shrinks benchmark structures for bounded hardware; 1 is
	// full size (the paper's sizes). When 0, a per-benchmark scale is
	// derived from TargetScanFFs.
	Scale float64
	// TargetScanFFs is the per-benchmark scan flip-flop budget used
	// when Scale is 0: benchmarks below the budget run at full size,
	// larger ones are scaled down to roughly the budget.
	TargetScanFFs int
	// Circuits per benchmark (the paper uses 10).
	Circuits int
	// Specs per circuit (the paper uses 16 security requirements).
	Specs int
	// Mode selects exact or structurally over-approximated
	// dependencies.
	Mode dep.Mode
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Circuit generation parameters.
	Circuit bench.CircuitConfig
	// SpecGen parameterizes random specification generation.
	SpecGen secspec.GenConfig
	// Parallel bounds the number of circuits analyzed concurrently;
	// 0 uses GOMAXPROCS. Results are deterministic regardless: partial
	// sums are aggregated in circuit order.
	Parallel int
	// Workers bounds each circuit's inner SAT worker pool (the 1-cycle
	// dependency computation). 0 divides the CPUs evenly over the
	// concurrently analyzed circuits so the protocol never
	// oversubscribes the machine.
	Workers int
	// Progress, when non-nil, receives coarse progress lines (one per
	// analyzed circuit). It may be called from concurrent workers.
	Progress func(format string, args ...any)
	// Stats, when non-nil, accumulates race-safe per-stage engine
	// instrumentation across all circuits.
	Stats *engine.Stats
	// Tracer, when non-nil, receives hierarchical spans: one "circuit"
	// span per generated circuit (a child of TraceParent), with the
	// stage and query spans of its analyses nested underneath.
	Tracer *obs.Tracer
	// TraceParent is the enclosing span (typically the CLI's "run").
	TraceParent *obs.Span
}

// engineOptions derives the per-circuit engine configuration, dividing
// the CPU budget over outer circuit workers when Workers is unset.
func (cfg RunConfig) engineOptions(ctx context.Context, outer int) engine.Options {
	workers := cfg.Workers
	if workers <= 0 && outer > 1 {
		if workers = runtime.NumCPU() / outer; workers < 1 {
			workers = 1
		}
	}
	return engine.Options{Workers: workers, Context: ctx, Stats: cfg.Stats,
		Tracer: cfg.Tracer, TraceParent: cfg.TraceParent}
}

// DefaultRunConfig returns the scaled default protocol: the paper's
// 10 circuits × 16 specs at a structure scale suitable for a laptop.
// The 700 flip-flop budget is double the original default; it is
// affordable because the sparse SCC closure and incremental violation
// checking more than halve the resolution cost per run compared to
// the dense closure and from-scratch propagation at equal size (see
// bench_tables.txt for the recorded before/after protocol numbers).
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Scale:         0, // auto from TargetScanFFs
		TargetScanFFs: 700,
		Circuits:      10,
		Specs:         16,
		Mode:          dep.Exact,
		Seed:          1,
		Circuit:       bench.DefaultCircuitConfig(),
		SpecGen:       secspec.DefaultGenConfig(),
	}
}

// QuickRunConfig returns a fast smoke-test protocol (3 circuits × 4
// specs at a small scale) used by unit tests and -short benches.
func QuickRunConfig() RunConfig {
	cfg := DefaultRunConfig()
	cfg.Circuits = 3
	cfg.Specs = 8
	cfg.TargetScanFFs = 120
	return cfg
}

// Result aggregates one benchmark's measured averages (one Table I
// row).
type Result struct {
	Benchmark bench.Benchmark
	// FullStats are the full-size structural counts (Table I columns
	// 2-4); ScaledStats the analyzed structure's counts.
	FullStats, ScaledStats rsn.Stats
	// Runs is the number of measured (circuit, spec) pairs;
	// SkippedNoViolation and SkippedInsecure count excluded pairs.
	Runs                 int
	SkippedNoViolation   int
	SkippedInsecureLogic int
	Errors               int
	// Averages over measured runs (Table I columns 5-8).
	AvgViolatingRegs float64
	AvgPureChanges   float64
	AvgHybridChanges float64
	AvgTotalChanges  float64
	// Average per-stage runtimes (Table I columns 9-12). Dependency
	// calculation happens once per circuit and is attributed to each of
	// its measured runs, as in the paper's accounting.
	AvgDepTime    time.Duration
	AvgPureTime   time.Duration
	AvgHybridTime time.Duration
	AvgTotalTime  time.Duration
}

// effectiveScale resolves the scale for one benchmark.
func (cfg RunConfig) effectiveScale(b bench.Benchmark) float64 {
	if cfg.Scale > 0 {
		return cfg.Scale
	}
	return b.ScaleForTarget(cfg.TargetScanFFs)
}

// benchSeed derives a per-benchmark base seed.
func benchSeed(base int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprint(h, name)
	return base ^ int64(h.Sum64())
}

// RunBenchmark executes the protocol for one benchmark.
func RunBenchmark(b bench.Benchmark, cfg RunConfig) (*Result, error) {
	return RunBenchmarkCtx(context.Background(), b, cfg)
}

// RunBenchmarkCtx is RunBenchmark with cancellation: the context is
// honored between SAT queries and (circuit, spec) pairs, and its error
// is returned when the run is cut short.
func RunBenchmarkCtx(ctx context.Context, b bench.Benchmark, cfg RunConfig) (*Result, error) {
	if cfg.Circuits <= 0 || cfg.Specs <= 0 {
		return nil, fmt.Errorf("exp: Circuits and Specs must be positive")
	}
	res := &Result{Benchmark: b}
	res.FullStats = rsn.Stats{Registers: b.Registers, ScanFFs: b.ScanFFs, Muxes: b.Muxes}
	base := benchSeed(cfg.Seed, b.Name)

	type circuitSums struct {
		runs, skipNoViol, skipInsecure, errors int
		stats                                  rsn.Stats
		sumViol, sumPure, sumHybrid            float64
		sumDep, sumPureT, sumHybT, sumTotalT   time.Duration
	}
	scale := cfg.effectiveScale(b)
	perCircuit := make([]circuitSums, cfg.Circuits)

	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Circuits {
		workers = cfg.Circuits
	}
	eng := cfg.engineOptions(ctx, workers)

	runCircuit := func(c int) error {
		cs := &perCircuit[c]
		nw := b.Build(scale)
		cs.stats = nw.Stats()
		att := bench.AttachCircuit(nw, cfg.Circuit, base+int64(c)*7919)

		// One circuit span per unit of outer parallelism; the analysis
		// and per-spec resolution spans nest under it.
		cspan := cfg.Tracer.Start(cfg.TraceParent, "circuit",
			obs.Str("benchmark", b.Name), obs.Int("index", int64(c)),
			obs.Int("scan_ffs", int64(cs.stats.ScanFFs)))
		defer cspan.End()
		ceng := eng.WithParent(cspan)

		t0 := time.Now()
		an, err := hybrid.NewAnalysisOpts(nw, att.Circuit, att.Internal, nil, cfg.Mode, ceng)
		if err != nil {
			return err
		}
		depTime := time.Since(t0)

		for s := 0; s < cfg.Specs; s++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			spec := secspec.GenerateWithRoles(len(nw.Modules), att.DataSources, cfg.SpecGen, base+int64(c)*104729+int64(s)*31)
			a2 := an.WithSpec(spec)

			if len(a2.InsecureModulePairs()) > 0 {
				cs.skipInsecure++
				continue
			}
			run := nw.Clone()
			violBefore := len(a2.ViolatingRegisters(run))
			if violBefore == 0 {
				cs.skipNoViol++
				continue
			}

			t1 := time.Now()
			pureDone := ceng.Stage("pure-resolve").Start()
			pureSpan := ceng.StartSpan("pure-resolve")
			pres, err := pure.Resolve(run, spec)
			pureSpan.End()
			pureDone()
			pureTime := time.Since(t1)
			if err != nil {
				cs.errors++
				continue
			}
			t2 := time.Now()
			hres, err := hybrid.Resolve(a2, run)
			hybTime := time.Since(t2)
			if err != nil {
				cs.errors++
				continue
			}

			cs.runs++
			cs.sumViol += float64(violBefore)
			cs.sumPure += float64(len(pres.Changes))
			cs.sumHybrid += float64(len(hres.Changes))
			cs.sumDep += depTime
			cs.sumPureT += pureTime
			cs.sumHybT += hybTime
			cs.sumTotalT += depTime + pureTime + hybTime
		}
		cspan.SetAttrs(obs.Int("runs", int64(cs.runs)),
			obs.Int("dep_calc_us", depTime.Microseconds()))
		if cfg.Progress != nil {
			cfg.Progress("%s: circuit %d/%d done (%d runs, dep calc %s)",
				b.Name, c+1, cfg.Circuits, cs.runs, depTime.Round(time.Millisecond))
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if ctx.Err() != nil {
					continue // drain remaining jobs after cancellation
				}
				if err := runCircuit(c); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for c := 0; c < cfg.Circuits; c++ {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var (
		sumViol, sumPure, sumHybrid          float64
		sumDep, sumPureT, sumHybT, sumTotalT time.Duration
	)
	res.ScaledStats = perCircuit[0].stats
	for c := range perCircuit {
		cs := &perCircuit[c]
		res.Runs += cs.runs
		res.SkippedNoViolation += cs.skipNoViol
		res.SkippedInsecureLogic += cs.skipInsecure
		res.Errors += cs.errors
		sumViol += cs.sumViol
		sumPure += cs.sumPure
		sumHybrid += cs.sumHybrid
		sumDep += cs.sumDep
		sumPureT += cs.sumPureT
		sumHybT += cs.sumHybT
		sumTotalT += cs.sumTotalT
	}
	if res.Runs > 0 {
		n := float64(res.Runs)
		res.AvgViolatingRegs = sumViol / n
		res.AvgPureChanges = sumPure / n
		res.AvgHybridChanges = sumHybrid / n
		res.AvgTotalChanges = (sumPure + sumHybrid) / n
		res.AvgDepTime = sumDep / time.Duration(res.Runs)
		res.AvgPureTime = sumPureT / time.Duration(res.Runs)
		res.AvgHybridTime = sumHybT / time.Duration(res.Runs)
		res.AvgTotalTime = sumTotalT / time.Duration(res.Runs)
	}
	return res, nil
}

// BuildReport assembles the schema-versioned machine-readable run
// report from the measured benchmark results and the engine's
// per-stage instrumentation — the data behind the rendered Table I and
// the bench_tables.txt trajectory. stats may be nil (the stage section
// is then empty). The caller stamps RunReport.StartedAt if wall-clock
// provenance is wanted; BuildReport leaves it empty so reports of
// identical runs stay byte-comparable.
func BuildReport(tool, table string, cfg RunConfig, results []*Result, stats *engine.Stats) *obs.RunReport {
	r := &obs.RunReport{
		Schema: obs.ReportSchema,
		Tool:   tool,
		Config: obs.ReportConfig{
			Table:         table,
			Mode:          fmt.Sprint(cfg.Mode),
			Seed:          cfg.Seed,
			Circuits:      cfg.Circuits,
			Specs:         cfg.Specs,
			TargetScanFFs: cfg.TargetScanFFs,
			Scale:         cfg.Scale,
			Workers:       cfg.Workers,
		},
		Benchmarks: make([]obs.BenchmarkReport, 0, len(results)),
	}
	for _, res := range results {
		if res == nil {
			continue
		}
		r.Benchmarks = append(r.Benchmarks, obs.BenchmarkReport{
			Name:   res.Benchmark.Name,
			Family: res.Benchmark.Family.String(),

			Registers: res.ScaledStats.Registers,
			ScanFFs:   res.ScaledStats.ScanFFs,
			Muxes:     res.ScaledStats.Muxes,

			FullRegisters: res.FullStats.Registers,
			FullScanFFs:   res.FullStats.ScanFFs,
			FullMuxes:     res.FullStats.Muxes,

			Runs:                 res.Runs,
			SkippedSecure:        res.SkippedNoViolation,
			SkippedInsecureLogic: res.SkippedInsecureLogic,
			Errors:               res.Errors,

			AvgViolatingRegs: res.AvgViolatingRegs,
			AvgPureChanges:   res.AvgPureChanges,
			AvgHybridChanges: res.AvgHybridChanges,
			AvgTotalChanges:  res.AvgTotalChanges,

			AvgDepNS:    int64(res.AvgDepTime),
			AvgPureNS:   int64(res.AvgPureTime),
			AvgHybridNS: int64(res.AvgHybridTime),
			AvgTotalNS:  int64(res.AvgTotalTime),
		})
	}
	r.Stages = stats.StageReports()
	r.ComputeTotals()
	return r
}

// BridgingResult measures experiment E4: the reductions achieved by
// bridging over internal flip-flops (the paper reports −41.72% denoted
// flip-flops and −65.37% denoted dependencies on average).
type BridgingResult struct {
	Benchmark    bench.Benchmark
	FFsTotal     int // denoted flip-flops without bridging
	FFsBridged   int // denoted flip-flops with bridging
	DepsNoBridge int // multi-cycle dependencies without bridging
	DepsBridge   int // multi-cycle dependencies with bridging
}

// FFReduction returns the fractional reduction in denoted flip-flops.
func (r BridgingResult) FFReduction() float64 {
	if r.FFsTotal == 0 {
		return 0
	}
	return 1 - float64(r.FFsBridged)/float64(r.FFsTotal)
}

// DepReduction returns the fractional reduction in denoted
// dependencies.
func (r BridgingResult) DepReduction() float64 {
	if r.DepsNoBridge == 0 {
		return 0
	}
	return 1 - float64(r.DepsBridge)/float64(r.DepsNoBridge)
}

// RunBridging computes the bridging reductions for one benchmark by
// running the dependency analysis with and without bridging on the
// same generated circuit.
func RunBridging(b bench.Benchmark, cfg RunConfig) (*BridgingResult, error) {
	return RunBridgingCtx(context.Background(), b, cfg)
}

// RunBridgingCtx is RunBridging with cancellation.
func RunBridgingCtx(ctx context.Context, b bench.Benchmark, cfg RunConfig) (*BridgingResult, error) {
	eng := cfg.engineOptions(ctx, 1)
	nw := b.Build(cfg.effectiveScale(b))
	att := bench.AttachCircuit(nw, cfg.Circuit, benchSeed(cfg.Seed, b.Name))
	with, err := hybrid.NewAnalysisOpts(nw, att.Circuit, att.Internal, nil, cfg.Mode, eng)
	if err != nil {
		return nil, err
	}
	without, err := hybrid.NewAnalysisOpts(nw, att.Circuit, nil, nil, cfg.Mode, eng)
	if err != nil {
		return nil, err
	}
	return &BridgingResult{
		Benchmark:    b,
		FFsTotal:     without.DepStats.FFsDenoted,
		FFsBridged:   with.DepStats.FFsDenoted,
		DepsNoBridge: without.DepStats.DepsMultiCycle,
		DepsBridge:   with.DepStats.DepsMultiCycle,
	}, nil
}

// ApproxResult measures experiment E5: the cost of over-approximating
// path-dependency with structural dependency (Section IV-C: +61%
// applied changes on average; 6.21% of runs falsely classify the
// circuit logic as insecure).
type ApproxResult struct {
	Benchmark bench.Benchmark
	// Runs measured under both modes.
	Runs int
	// ExactChanges and ApproxChanges are total applied changes summed
	// over common runs.
	ExactChanges, ApproxChanges float64
	// FalseInsecure counts runs the approximation classified as
	// insecure circuit logic although exact analysis did not.
	FalseInsecure int
	// TotalSpecRuns counts all (circuit, spec) pairs examined.
	TotalSpecRuns int
}

// ChangeOverhead returns the relative increase in applied changes.
func (r ApproxResult) ChangeOverhead() float64 {
	if r.ExactChanges == 0 {
		return 0
	}
	return r.ApproxChanges/r.ExactChanges - 1
}

// FalseInsecureRate returns the fraction of examined pairs falsely
// classified insecure.
func (r ApproxResult) FalseInsecureRate() float64 {
	if r.TotalSpecRuns == 0 {
		return 0
	}
	return float64(r.FalseInsecure) / float64(r.TotalSpecRuns)
}

// RunApprox executes the IV-C comparison for one benchmark: the same
// circuits and specifications under exact and structural dependencies.
func RunApprox(b bench.Benchmark, cfg RunConfig) (*ApproxResult, error) {
	return RunApproxCtx(context.Background(), b, cfg)
}

// RunApproxCtx is RunApprox with cancellation.
func RunApproxCtx(ctx context.Context, b bench.Benchmark, cfg RunConfig) (*ApproxResult, error) {
	res := &ApproxResult{Benchmark: b}
	base := benchSeed(cfg.Seed, b.Name)
	scale := cfg.effectiveScale(b)
	eng := cfg.engineOptions(ctx, 1)
	for c := 0; c < cfg.Circuits; c++ {
		nw := b.Build(scale)
		att := bench.AttachCircuit(nw, cfg.Circuit, base+int64(c)*7919)
		exact, err := hybrid.NewAnalysisOpts(nw, att.Circuit, att.Internal, nil, dep.Exact, eng)
		if err != nil {
			return nil, err
		}
		approx, err := hybrid.NewAnalysisOpts(nw, att.Circuit, att.Internal, nil, dep.StructuralApprox, eng)
		if err != nil {
			return nil, err
		}
		for s := 0; s < cfg.Specs; s++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			spec := secspec.GenerateWithRoles(len(nw.Modules), att.DataSources, cfg.SpecGen, base+int64(c)*104729+int64(s)*31)
			res.TotalSpecRuns++
			ea := exact.WithSpec(spec)
			aa := approx.WithSpec(spec)
			exactInsecure := len(ea.InsecureModulePairs()) > 0
			approxInsecure := len(aa.InsecureModulePairs()) > 0
			if !exactInsecure && approxInsecure {
				res.FalseInsecure++
			}
			if exactInsecure || approxInsecure {
				continue
			}
			runE := nw.Clone()
			if len(ea.ViolatingRegisters(runE)) == 0 && len(aa.ViolatingRegisters(runE)) == 0 {
				continue
			}
			pe, err := pure.Resolve(runE, spec)
			if err != nil {
				continue
			}
			he, err := hybrid.Resolve(ea, runE)
			if err != nil {
				continue
			}
			runA := nw.Clone()
			pa, err := pure.Resolve(runA, spec)
			if err != nil {
				continue
			}
			ha, err := hybrid.Resolve(aa, runA)
			if err != nil {
				continue
			}
			res.Runs++
			res.ExactChanges += float64(len(pe.Changes) + len(he.Changes))
			res.ApproxChanges += float64(len(pa.Changes) + len(ha.Changes))
		}
	}
	return res, nil
}
