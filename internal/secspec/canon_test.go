package secspec

import "testing"

func canonFixture() *Spec {
	s := New(3, 4)
	s.SetTrust(1, 2)
	s.SetAccepts(0, NewCatSet(0, 1))
	s.SetAccepts(2, NewCatSet(3))
	return s
}

// goldenSpecHash pins the canonical digest of canonFixture under
// netlist.CanonVersion "rsnsec.canon/v1" — the specification part of
// the internal/serve cache key. A drift here means the canonical
// encoding changed and CanonVersion must be bumped.
const goldenSpecHash = "9a3006c57bd6c5bde46e2bb83b2b6dac6d018472251b8e8650c8ed0b0ce5faf1"

func TestCanonicalHashGolden(t *testing.T) {
	got := CanonicalHash(canonFixture())
	if got != goldenSpecHash {
		t.Fatalf("canonical spec hash drifted:\n got  %s\n want %s\nbump netlist.CanonVersion if the encoding change is intended", got, goldenSpecHash)
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := CanonicalHash(canonFixture())
	mutations := map[string]func(s *Spec){
		"trust":      func(s *Spec) { s.SetTrust(0, 1) },
		"accepts":    func(s *Spec) { s.SetAccepts(0, NewCatSet(0)) },
		"categories": func(s *Spec) { s.NumCategories = 5 },
	}
	for name, mutate := range mutations {
		s := canonFixture()
		mutate(s)
		if CanonicalHash(s) == base {
			t.Errorf("%s: hash unchanged after mutation", name)
		}
	}
	if CanonicalHash(New(3, 4)) == base {
		t.Error("unrestricted spec aliases the fixture")
	}
}
