package secspec

import (
	"testing"
	"testing/quick"
)

func TestCatSetBasics(t *testing.T) {
	s := NewCatSet(0, 3, 5)
	if !s.Has(0) || !s.Has(3) || !s.Has(5) {
		t.Fatal("missing members")
	}
	if s.Has(1) || s.Has(4) {
		t.Fatal("spurious members")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.String() != "{0,3,5}" {
		t.Fatalf("String = %q", s.String())
	}
	s = s.With(4)
	if !s.Has(4) || s.Len() != 4 {
		t.Fatal("With failed")
	}
	s = s.Without(0)
	if s.Has(0) || s.Len() != 3 {
		t.Fatal("Without failed")
	}
}

func TestAllCats(t *testing.T) {
	if AllCats(4) != NewCatSet(0, 1, 2, 3) {
		t.Fatalf("AllCats(4) = %v", AllCats(4))
	}
	if AllCats(1) != NewCatSet(0) {
		t.Fatalf("AllCats(1) = %v", AllCats(1))
	}
	if AllCats(32) != ^CatSet(0) {
		t.Fatal("AllCats(32) must be the full set")
	}
}

func TestCatSetProperties(t *testing.T) {
	withHas := func(s uint32, c uint8) bool {
		cat := Category(c % MaxCategories)
		return CatSet(s).With(cat).Has(cat)
	}
	if err := quick.Check(withHas, nil); err != nil {
		t.Error(err)
	}
	withoutHas := func(s uint32, c uint8) bool {
		cat := Category(c % MaxCategories)
		return !CatSet(s).Without(cat).Has(cat)
	}
	if err := quick.Check(withoutHas, nil); err != nil {
		t.Error(err)
	}
	lenMonotone := func(s uint32, c uint8) bool {
		cat := Category(c % MaxCategories)
		cs := CatSet(s)
		return cs.With(cat).Len() >= cs.Len() && cs.Without(cat).Len() <= cs.Len()
	}
	if err := quick.Check(lenMonotone, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecViolates(t *testing.T) {
	s := New(3, 4)
	// Module 0: crypto, trust 3, accepts only {2,3}.
	s.SetTrust(0, 3)
	s.SetAccepts(0, NewCatSet(2, 3))
	// Module 1: untrusted sensor, trust 0.
	s.SetTrust(1, 0)
	s.SetAccepts(1, AllCats(4))
	// Module 2: ordinary, trust 2.
	s.SetTrust(2, 2)
	s.SetAccepts(2, AllCats(4))

	if !s.Violates(0, 1) {
		t.Error("crypto data through untrusted must violate")
	}
	if s.Violates(0, 2) {
		t.Error("crypto data through trust-2 module accepted")
	}
	if s.Violates(1, 0) {
		t.Error("untrusted data through crypto is allowed by this spec")
	}
	if s.Violates(0, 0) {
		t.Error("module never violates with itself")
	}
	if !s.AnyViolationPossible() {
		t.Error("violations are possible")
	}
}

func TestSetAcceptsKeepsOwnTrust(t *testing.T) {
	s := New(1, 4)
	s.SetTrust(0, 2)
	s.SetAccepts(0, NewCatSet(3))
	if !s.Accepts[0].Has(2) {
		t.Fatal("accept set must contain own trust category")
	}
}

func TestNoViolationPossible(t *testing.T) {
	s := New(2, 4)
	if s.AnyViolationPossible() {
		t.Fatal("default spec is unrestricted")
	}
}

func TestSpecClone(t *testing.T) {
	s := New(2, 4)
	s.SetTrust(0, 3)
	cp := s.Clone()
	cp.SetTrust(0, 1)
	cp.SetAccepts(1, NewCatSet(0))
	if s.Trust[0] != 3 {
		t.Fatal("clone shares trust")
	}
	if s.Accepts[1] != AllCats(4) {
		t.Fatal("clone shares accepts")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, DefaultGenConfig(), 9)
	b := Generate(50, DefaultGenConfig(), 9)
	for m := 0; m < 50; m++ {
		if a.Trust[m] != b.Trust[m] || a.Accepts[m] != b.Accepts[m] {
			t.Fatalf("module %d differs between same-seed specs", m)
		}
	}
}

func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := Generate(30, DefaultGenConfig(), seed)
		for m := 0; m < 30; m++ {
			if int(s.Trust[m]) >= s.NumCategories {
				t.Fatalf("seed %d: trust out of range", seed)
			}
			if !s.Accepts[m].Has(s.Trust[m]) {
				t.Fatalf("seed %d: module %d does not accept own trust", seed, m)
			}
		}
	}
}

func TestGenerateProducesViolatingSpecs(t *testing.T) {
	// Over several seeds at default config, a healthy fraction of specs
	// must admit violations at all (the experiments filter on this).
	n := 0
	for seed := int64(0); seed < 32; seed++ {
		if Generate(20, DefaultGenConfig(), seed).AnyViolationPossible() {
			n++
		}
	}
	if n < 16 {
		t.Fatalf("only %d/32 random specs admit violations", n)
	}
}

func TestNewPanics(t *testing.T) {
	for _, bad := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with %d categories must panic", bad)
				}
			}()
			New(1, bad)
		}()
	}
}
