// Package secspec implements the security specification of Kochte et
// al. (ETS 2017) / Raiola et al. (IOLTS 2018) used by the
// secure-data-flow method: every scan segment is annotated with a trust
// category (the trustworthiness of the segment or its surrounding core)
// and a set of accepted trust categories (the sensitivity of the data it
// holds).
//
// The specification is violated when data stored in a segment x can
// flow into or through a segment y whose trust category is not accepted
// by x — e.g. confidential data from a crypto core traversing an
// untrusted instrument. Annotations live at module granularity; scan
// segments and circuit flip-flops inherit them from their module.
package secspec

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Category is a trust category. Valid categories are 0..MaxCategories-1.
type Category uint8

// MaxCategories bounds the category universe so that category sets fit
// a machine word. The paper's propagation argument relies on the set of
// security attributes being small and finite.
const MaxCategories = 32

// CatSet is a set of trust categories, one bit per category.
type CatSet uint32

// NewCatSet builds a set from the listed categories.
func NewCatSet(cats ...Category) CatSet {
	var s CatSet
	for _, c := range cats {
		s |= 1 << c
	}
	return s
}

// AllCats returns the set of all categories below n.
func AllCats(n int) CatSet {
	if n >= MaxCategories {
		return ^CatSet(0)
	}
	return CatSet(1)<<uint(n) - 1
}

// Has reports whether the set contains c.
func (s CatSet) Has(c Category) bool { return s&(1<<c) != 0 }

// With returns the set extended by c.
func (s CatSet) With(c Category) CatSet { return s | 1<<c }

// Without returns the set with c removed.
func (s CatSet) Without(c Category) CatSet { return s &^ (1 << c) }

// Len returns the number of categories in the set.
func (s CatSet) Len() int { return bits.OnesCount32(uint32(s)) }

// String renders the set as "{0,3,5}".
func (s CatSet) String() string {
	out := "{"
	first := true
	for c := Category(0); c < MaxCategories; c++ {
		if s.Has(c) {
			if !first {
				out += ","
			}
			out += fmt.Sprint(c)
			first = false
		}
	}
	return out + "}"
}

// Spec is a security specification over a fixed set of modules.
type Spec struct {
	NumCategories int
	// Trust[m] is the trust category of module m.
	Trust []Category
	// Accepts[m] is the set of trust categories that data stored in
	// module m's segments accepts on its scan paths.
	Accepts []CatSet
}

// New returns a specification for numModules modules over numCategories
// categories. Initially every module has trust 0 and accepts all
// categories (no restrictions).
func New(numModules, numCategories int) *Spec {
	if numCategories <= 0 || numCategories > MaxCategories {
		panic(fmt.Sprintf("secspec: numCategories %d out of range (1..%d)", numCategories, MaxCategories))
	}
	s := &Spec{
		NumCategories: numCategories,
		Trust:         make([]Category, numModules),
		Accepts:       make([]CatSet, numModules),
	}
	for m := range s.Accepts {
		s.Accepts[m] = AllCats(numCategories)
	}
	return s
}

// SetTrust assigns the trust category of module m.
func (s *Spec) SetTrust(m int, c Category) {
	if int(c) >= s.NumCategories {
		panic(fmt.Sprintf("secspec: category %d out of range", c))
	}
	s.Trust[m] = c
}

// SetAccepts assigns the accepted-category set of module m. The set is
// forced to contain the module's own trust category (data may always
// stay in its own segment).
func (s *Spec) SetAccepts(m int, cs CatSet) {
	s.Accepts[m] = cs.With(s.Trust[m])
}

// NumModules returns the number of annotated modules.
func (s *Spec) NumModules() int { return len(s.Trust) }

// Violates reports whether data originating in module src may not flow
// into or through module dst.
func (s *Spec) Violates(src, dst int) bool {
	if src == dst {
		return false
	}
	return !s.Accepts[src].Has(s.Trust[dst])
}

// AnyViolationPossible reports whether some ordered module pair
// violates the specification at all (otherwise every network is
// trivially secure under this spec).
func (s *Spec) AnyViolationPossible() bool {
	for a := range s.Trust {
		for b := range s.Trust {
			if s.Violates(a, b) {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy.
func (s *Spec) Clone() *Spec {
	cp := &Spec{NumCategories: s.NumCategories}
	cp.Trust = append([]Category{}, s.Trust...)
	cp.Accepts = append([]CatSet{}, s.Accepts...)
	return cp
}

// GenConfig controls random specification generation.
type GenConfig struct {
	// NumCategories is the size of the trust-category universe.
	NumCategories int
	// ConfidentialFrac is the fraction of modules holding sensitive
	// data (small accept sets).
	ConfidentialFrac float64
	// UntrustedFrac is the fraction of modules with the lowest trust
	// category (candidate leak targets).
	UntrustedFrac float64
}

// DefaultGenConfig mirrors the experimental setup of Section IV-A:
// random specifications over a small category universe with a mix of
// confidential and untrusted instruments.
func DefaultGenConfig() GenConfig {
	return GenConfig{NumCategories: 4, ConfidentialFrac: 0.25, UntrustedFrac: 0.25}
}

// GenerateWithRoles builds a random specification aligned with circuit
// roles: confidential annotations are assigned only to dataSource
// modules (modules whose circuit data never leaves over functional
// logic — e.g. crypto cores), and untrusted annotations only to the
// remaining modules. This mirrors real designs, where sensitive cores
// do not broadcast their state into other instruments; their data can
// leave only over the scan infrastructure, which is exactly the threat
// the secure-data-flow method addresses.
func GenerateWithRoles(numModules int, dataSource []bool, cfg GenConfig, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	s := New(numModules, cfg.NumCategories)
	hi := Category(cfg.NumCategories - 1)
	for m := 0; m < numModules; m++ {
		isSource := m < len(dataSource) && dataSource[m]
		r := rng.Float64()
		switch {
		case isSource && r < 0.6:
			// Confidential source: its data accepts only the upper half
			// of the category universe.
			s.SetTrust(m, hi)
			acc := CatSet(0)
			for c := Category(cfg.NumCategories / 2); int(c) < cfg.NumCategories; c++ {
				acc = acc.With(c)
			}
			s.SetAccepts(m, acc)
		case !isSource && r < 0.35:
			// Untrusted instrument: lowest trust, accepts anything.
			s.SetTrust(m, 0)
			s.SetAccepts(m, AllCats(cfg.NumCategories))
		default:
			// Ordinary instrument with reasonably high trust so benign
			// paths stay legal.
			c := Category(cfg.NumCategories/2 + rng.Intn(cfg.NumCategories-cfg.NumCategories/2))
			s.SetTrust(m, c)
			s.SetAccepts(m, AllCats(cfg.NumCategories))
		}
	}
	// Occasionally restrict a single ordinary module's accept set so
	// the insecure-circuit-logic check stays exercised; one module per
	// spec keeps the exclusion rate independent of the module count.
	if numModules > 0 && rng.Float64() < 0.5 {
		m := rng.Intn(numModules)
		if !(m < len(dataSource) && dataSource[m]) {
			s.Accepts[m] = s.Accepts[m].Without(Category(rng.Intn(cfg.NumCategories))).With(s.Trust[m])
		}
	}
	return s
}

// Generate builds a random specification for numModules modules.
// Category 0 is the lowest trust ("untrusted"); category
// NumCategories-1 the highest. Confidential modules accept only high
// categories; ordinary modules accept everything.
func Generate(numModules int, cfg GenConfig, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	s := New(numModules, cfg.NumCategories)
	hi := Category(cfg.NumCategories - 1)
	for m := 0; m < numModules; m++ {
		r := rng.Float64()
		switch {
		case r < cfg.UntrustedFrac:
			// Untrusted instrument: lowest trust, accepts anything.
			s.SetTrust(m, 0)
			s.SetAccepts(m, AllCats(cfg.NumCategories))
		case r < cfg.UntrustedFrac+cfg.ConfidentialFrac:
			// Confidential instrument: high trust, accepts only the
			// upper half of the category universe.
			s.SetTrust(m, hi)
			acc := CatSet(0)
			for c := Category(cfg.NumCategories / 2); int(c) < cfg.NumCategories; c++ {
				acc = acc.With(c)
			}
			s.SetAccepts(m, acc)
		default:
			// Ordinary instrument: random mid trust, accepts most
			// categories with occasional random restrictions.
			c := Category(rng.Intn(cfg.NumCategories))
			s.SetTrust(m, c)
			acc := AllCats(cfg.NumCategories)
			if rng.Float64() < 0.2 {
				acc = acc.Without(Category(rng.Intn(cfg.NumCategories)))
			}
			s.SetAccepts(m, acc)
		}
	}
	return s
}
