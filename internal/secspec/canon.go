package secspec

import "repro/internal/netlist"

// AppendCanonical hashes the specification in canonical form: the
// category-universe size, then per module (in module-id order) its
// trust category and accepted-category bit set. The encoding feeds the
// content address of an analysis (see internal/serve); bump
// netlist.CanonVersion when changing the field order.
func (s *Spec) AppendCanonical(h *netlist.Hasher) {
	h.Section("secspec")
	h.Int(int64(s.NumCategories))
	h.List(len(s.Trust))
	for _, c := range s.Trust {
		h.Int(int64(c))
	}
	h.List(len(s.Accepts))
	for _, a := range s.Accepts {
		h.Uint(uint64(a))
	}
}

// CanonicalHash returns the canonical digest of one specification.
func CanonicalHash(s *Spec) string {
	h := netlist.NewHasher()
	s.AppendCanonical(h)
	return h.SumHex()
}
