package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "Benchmark", ">#Regs", ">Runtime")
	tb.Add("BasicSCB", "21", "0.13")
	tb.Add("MBIST_20_20_20", "26222", "9433.54")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Right-aligned numeric column: "21" must end at the same offset as
	// "26222".
	if !strings.Contains(lines[2], "---") {
		t.Error("separator missing")
	}
	r1 := strings.Index(lines[3], "21")
	r2 := strings.Index(lines[4], "26222")
	if r1+2 != r2+5 {
		t.Errorf("right alignment broken:\n%s", out)
	}
}

func TestAddPanicsOnExtraCells(t *testing.T) {
	tb := New("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Add("1", "2")
}

func TestAddPadsMissingCells(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x")
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("row lost")
	}
}

func TestFormatters(t *testing.T) {
	if Int(5) != "5" || F1(1.25) != "1.2" && F1(1.25) != "1.3" {
		t.Error("Int/F1")
	}
	if F2(3.14159) != "3.14" {
		t.Errorf("F2 = %s", F2(3.14159))
	}
	if Pct(0.4172) != "41.72%" {
		t.Errorf("Pct = %s", Pct(0.4172))
	}
	if Secs(1500*time.Millisecond) != "1.50" {
		t.Errorf("Secs = %s", Secs(1500*time.Millisecond))
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "h")
	tb.Add("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("leading blank line")
	}
}
