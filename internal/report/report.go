// Package report renders fixed-width text tables for the experiment
// harness, in the style of the paper's Table I.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	aligns  []bool // true = right-aligned
}

// New returns a table with the given column headers. Headers prefixed
// with '>' are right-aligned (the prefix is stripped).
func New(title string, headers ...string) *Table {
	t := &Table{Title: title}
	for _, h := range headers {
		right := strings.HasPrefix(h, ">")
		t.headers = append(t.headers, strings.TrimPrefix(h, ">"))
		t.aligns = append(t.aligns, right)
	}
	return t
}

// Add appends a row; missing cells render empty, extra cells panic.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("report: row has %d cells, table %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if t.aligns[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				sb.WriteString(c)
			} else {
				sb.WriteString(c)
				if i != len(cells)-1 {
					sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				}
			}
		}
		sb.WriteString("\n")
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		panic(err) // strings.Builder writes cannot fail
	}
	return sb.String()
}

// Int formats an integer cell.
func Int(v int) string { return fmt.Sprintf("%d", v) }

// F1 formats a float with one decimal (the paper's change columns).
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals (the paper's violation column).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Secs formats a duration in seconds with two decimals (the paper's
// runtime columns).
func Secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
