package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/rsn"
)

// RandomNetwork builds a random acyclic scan network with nRegs
// registers (one module per register), random widths, and a mix of
// direct connections and multiplexers — useful for property-based
// testing of the analysis and resolution algorithms.
func RandomNetwork(rng *rand.Rand, nRegs int) *rsn.Network {
	nw := rsn.New("random")
	for i := 0; i < nRegs; i++ {
		m := nw.AddModule(fmt.Sprintf("mod%d", i))
		nw.AddRegister(fmt.Sprintf("R%d", i), 1+rng.Intn(4), m)
	}
	for i := 0; i < nRegs; i++ {
		pick := func() rsn.Ref {
			if i == 0 || rng.Intn(4) == 0 {
				return rsn.ScanIn
			}
			return rsn.Reg(rng.Intn(i))
		}
		if i > 1 && rng.Intn(3) == 0 {
			a, b := pick(), pick()
			if a == b {
				b = rsn.ScanIn
			}
			if a == b {
				nw.Connect(i, a)
				continue
			}
			m := nw.AddMux(fmt.Sprintf("mux%d", len(nw.Muxes)), a, b)
			nw.Connect(i, rsn.Mx(m))
		} else {
			nw.Connect(i, pick())
		}
	}
	// Route every sink-less register to the scan-out port.
	var dangling []rsn.Ref
	for i := 0; i < nRegs; i++ {
		if len(nw.Sinks(rsn.Reg(i))) == 0 {
			dangling = append(dangling, rsn.Reg(i))
		}
	}
	switch len(dangling) {
	case 0:
		nw.ConnectOut(rsn.Reg(nRegs - 1))
	case 1:
		nw.ConnectOut(dangling[0])
	default:
		m := nw.AddMux("mout", dangling...)
		nw.ConnectOut(rsn.Mx(m))
	}
	if err := nw.Validate(); err != nil {
		panic("bench: RandomNetwork invalid: " + err.Error())
	}
	return nw
}
