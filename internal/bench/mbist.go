package bench

import (
	"fmt"

	"repro/internal/rsn"
)

// buildMBIST builds the industrial-style scalable memory-BIST network
// MBIST_n_m_o of Section IV-A: a chip with n cores, m MBIST controllers
// per core, and o memories per controller. The hierarchy allows fast
// access to each controller: every core can be included in or excluded
// from the chip-level scan path, and every controller in or out of its
// core's path.
//
// Register/mux counts follow the closed forms fitted from Table I:
//
//	registers = n·(m·(3o+5)+11) + 2
//	muxes     = n·(2m+3) + 2
//
// and match the paper exactly. Scan flip-flop totals come out 8 per
// core above the paper's fit because the 11 core-level registers are
// one-bit select/status bits here (documented in EXPERIMENTS.md).
func buildMBIST(n, m, o int) *rsn.Network {
	nw := rsn.New(fmt.Sprintf("MBIST_%d_%d_%d", n, m, o))
	chipMod := nw.AddModule("chip")

	memWidths := [3]int{4, 4, 5} // 13 FFs per memory interface
	ctrlFront := [2]int{8, 8}    // controller config registers
	ctrlBack := [3]int{9, 9, 9}  // controller status registers
	chipWidths := [2]int{2, 3}   // chip id + chip config

	chain := func(cur rsn.Ref, mod int, prefix string, ws []int) rsn.Ref {
		for i, w := range ws {
			id := nw.AddRegister(fmt.Sprintf("%s_r%d", prefix, i), w, mod)
			nw.Connect(id, cur)
			cur = rsn.Reg(id)
		}
		return cur
	}

	controller := func(cur rsn.Ref, core, ctl int) rsn.Ref {
		mod := nw.AddModule(fmt.Sprintf("core%d.ctrl%d", core, ctl))
		prefix := fmt.Sprintf("c%d_m%d", core, ctl)
		cur0 := cur
		cur = chain(cur, mod, prefix+"_cfg", ctrlFront[:])
		memStart := cur
		for mem := 0; mem < o; mem++ {
			cur = chain(cur, mod, fmt.Sprintf("%s_mem%d", prefix, mem), memWidths[:])
		}
		// Memories can be excluded from the controller's path.
		mx := nw.AddMux(prefix+"_memsel", cur, memStart)
		cur = rsn.Mx(mx)
		cur = chain(cur, mod, prefix+"_st", ctrlBack[:])
		// The whole controller can be excluded from the core's path.
		mx = nw.AddMux(prefix+"_sel", cur, cur0)
		return rsn.Mx(mx)
	}

	core := func(cur rsn.Ref, c int) rsn.Ref {
		mod := nw.AddModule(fmt.Sprintf("core%d", c))
		prefix := fmt.Sprintf("c%d", c)
		cur0 := cur
		// Three one-bit configuration registers.
		cur = chain(cur, mod, prefix+"_cfg", []int{1, 1, 1})
		mx := nw.AddMux(prefix+"_cfgsel", cur, cur0)
		cur = rsn.Mx(mx)
		ctrlStart := cur
		for ctl := 0; ctl < m; ctl++ {
			cur = controller(cur, c, ctl)
		}
		// All controllers can be excluded at once.
		mx = nw.AddMux(prefix+"_ctrlsel", cur, ctrlStart)
		cur = rsn.Mx(mx)
		// Eight one-bit status registers.
		cur = chain(cur, mod, prefix+"_st", []int{1, 1, 1, 1, 1, 1, 1, 1})
		// The whole core can be excluded from the chip-level path.
		mx = nw.AddMux(prefix+"_sel", cur, cur0)
		return rsn.Mx(mx)
	}

	id0 := nw.AddRegister("chip_id", chipWidths[0], chipMod)
	nw.Connect(id0, rsn.ScanIn)
	cur := rsn.Ref(rsn.Reg(id0))
	coresStart := cur
	for c := 0; c < n; c++ {
		cur = core(cur, c)
	}
	// All cores can be bypassed.
	mx := nw.AddMux("chip_coresel", cur, coresStart)
	cfg := nw.AddRegister("chip_cfg", chipWidths[1], chipMod)
	nw.Connect(cfg, rsn.Mx(mx))
	// Chip-level bypass: scan out either the full path or just the id.
	out := nw.AddMux("chip_bypass", rsn.Reg(cfg), rsn.Reg(id0))
	nw.ConnectOut(rsn.Mx(out))
	return nw
}

// MBISTCounts returns the structural counts of MBIST_n_m_o as built.
func MBISTCounts(n, m, o int) (regs, ffs, muxes int) {
	regs = n*(m*(3*o+5)+11) + 2
	ffs = n*(m*(13*o+43)+11) + 5
	muxes = n*(2*m+3) + 2
	return
}

// MBISTPaperFFs returns Table I's scan flip-flop count for MBIST_n_m_o
// (the fit n·(m·(13o+43)+3)+5; this reproduction carries 8 extra
// one-bit core registers per core).
func MBISTPaperFFs(n, m, o int) int {
	return n*(m*(13*o+43)+3) + 5
}
