package bench

import (
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/rsn"
)

// CircuitConfig controls the random circuit attached to a benchmark
// network (the paper generates 10 random circuits per benchmark since
// the benchmarks ship without underlying logic).
type CircuitConfig struct {
	// MaxPortsPerModule caps the number of RSN-linked circuit
	// flip-flops per module; scan flip-flops beyond the cap stay
	// unlinked (pure shift-only bits), bounding circuit size for the
	// very large networks.
	MaxPortsPerModule int
	// InternalPerModule is the minimum number of internal (bridgeable)
	// flip-flops per module.
	InternalPerModule int
	// InternalFrac sizes each module's internal flip-flop count
	// relative to its scan flip-flops (capped by MaxInternalPerModule).
	// Real circuits hold far more state than the scan infrastructure
	// can reach directly — the paper's generated circuits bridge away
	// 41.72% of all denoted flip-flops on average.
	InternalFrac float64
	// MaxInternalPerModule caps the internal flip-flops per module so
	// the dependency matrices stay bounded on wide-register networks.
	MaxInternalPerModule int
	// CrossEdgesPerModule scales the number of inter-module circuit
	// paths (the raw material of hybrid violations).
	CrossEdgesPerModule float64
	// ReconvergenceRate is the fraction of masked (only-structural)
	// data paths.
	ReconvergenceRate float64
	// DataSourceFrac is the fraction of modules treated as data
	// sources (crypto-like cores): their circuit data never drives
	// other modules over functional logic, so it can leave only via
	// the scan infrastructure. Security specifications assign
	// confidential annotations to these modules.
	DataSourceFrac float64
	// Depth of the random next-state gate trees.
	Depth int
	// Inputs is the number of circuit primary inputs.
	Inputs int
}

// DefaultCircuitConfig mirrors the flavor of the running example.
func DefaultCircuitConfig() CircuitConfig {
	return CircuitConfig{
		MaxPortsPerModule:    6,
		InternalPerModule:    2,
		InternalFrac:         1.0,
		MaxInternalPerModule: 48,
		CrossEdgesPerModule:  2.5,
		ReconvergenceRate:    0.45,
		DataSourceFrac:       0.25,
		Depth:                2,
		Inputs:               4,
	}
}

// Attachment is a generated circuit wired to a network's scan
// flip-flops via capture/update links.
type Attachment struct {
	Circuit  *netlist.Netlist
	Internal []netlist.FFID
	// Links counts the scan flip-flops with capture/update links.
	Links int
	// DataSources marks modules whose circuit data never drives other
	// modules (crypto-like cores); specifications draw confidential
	// annotations from these.
	DataSources []bool
}

// AttachCircuit generates a random circuit for the network's modules
// and links it: scan flip-flops capture from and update into their
// module's circuit flip-flops (round-robin up to the per-module cap).
// The attachment mutates the network's capture/update tables.
func AttachCircuit(nw *rsn.Network, cfg CircuitConfig, seed int64) *Attachment {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	// Decide per register how many of its scan flip-flops get circuit
	// links: up to two per register, capped per module, so links spread
	// over a module's registers and circuit size stays bounded on the
	// very large networks.
	perReg := make([]int, len(nw.Registers))
	ports := make([]int, len(nw.Modules))
	for r := range nw.Registers {
		reg := &nw.Registers[r]
		want := reg.Len
		if want > 2 {
			want = 2
		}
		if room := cfg.MaxPortsPerModule - ports[reg.Module]; want > room {
			want = room
		}
		if want < 0 {
			want = 0
		}
		perReg[r] = want
		ports[reg.Module] += want
	}
	for m := range ports {
		if ports[m] == 0 {
			ports[m] = 1 // every module gets at least one circuit flip-flop
		}
	}
	// Pick the data-source modules: they never drive other modules.
	sources := make([]bool, len(nw.Modules))
	nSources := 0
	for m := range sources {
		if rng.Float64() < cfg.DataSourceFrac {
			sources[m] = true
			nSources++
		}
	}
	if nSources == 0 && len(sources) > 0 {
		sources[rng.Intn(len(sources))] = true
	}
	crossSources := make([]bool, len(sources))
	for m := range crossSources {
		crossSources[m] = !sources[m]
	}

	// Internal flip-flop counts scale with each module's scan width.
	scanPerModule := make([]int, len(nw.Modules))
	for r := range nw.Registers {
		scanPerModule[nw.Registers[r].Module] += nw.Registers[r].Len
	}
	internals := make([]int, len(nw.Modules))
	for m := range internals {
		n := int(cfg.InternalFrac * float64(scanPerModule[m]))
		if n < cfg.InternalPerModule {
			n = cfg.InternalPerModule
		}
		if cfg.MaxInternalPerModule > 0 && n > cfg.MaxInternalPerModule {
			n = cfg.MaxInternalPerModule
		}
		internals[m] = n
	}

	gcfg := netlist.GenConfig{
		ModuleNames:       append([]string{}, nw.Modules...),
		PortFFs:           ports,
		InternalFFs:       cfg.InternalPerModule,
		InternalPerModule: internals,
		Inputs:            cfg.Inputs,
		CrossEdges:        int(cfg.CrossEdgesPerModule*float64(len(nw.Modules))) + 1,
		ReconvergenceRate: cfg.ReconvergenceRate,
		Depth:             cfg.Depth,
		CrossSources:      crossSources,
	}
	gen := netlist.Generate(gcfg, rng.Int63())

	// Link scan flip-flops to their module's port FFs in order.
	next := make([]int, len(nw.Modules))
	links := 0
	for r := range nw.Registers {
		reg := &nw.Registers[r]
		mod := reg.Module
		avail := gen.PortFFs[mod]
		for b := 0; b < perReg[r] && next[mod] < len(avail); b++ {
			f := avail[next[mod]]
			next[mod]++
			nw.SetCapture(r, b, f)
			nw.SetUpdate(r, b, f)
			links++
		}
	}
	return &Attachment{Circuit: gen.N, Internal: gen.InternalFFs, Links: links, DataSources: sources}
}
