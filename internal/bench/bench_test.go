package bench

import (
	"testing"

	"repro/internal/dep"
	"repro/internal/hybrid"
	"repro/internal/icl"
	"repro/internal/secspec"
)

// TestBenchmarkSizesMatchPaper asserts experiment E1: the full-size
// generated networks match Table I's structural columns. Register and
// mux counts must match exactly for all 22 benchmarks; scan flip-flop
// counts match exactly for the BASTION set and within the documented
// +8n offset for the MBIST set.
func TestBenchmarkSizesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size structure generation in -short mode")
	}
	for _, b := range Catalog() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			nw := b.Build(1)
			st := nw.Stats()
			if st.Registers != b.Registers {
				t.Errorf("registers = %d, want %d", st.Registers, b.Registers)
			}
			if st.Muxes != b.Muxes {
				t.Errorf("muxes = %d, want %d", st.Muxes, b.Muxes)
			}
			if st.ScanFFs != b.ScanFFs {
				t.Errorf("scan FFs = %d, want %d", st.ScanFFs, b.ScanFFs)
			}
			if b.Family == Bastion && st.ScanFFs != b.PaperScanFFs {
				t.Errorf("BASTION scan FFs = %d, paper says %d", st.ScanFFs, b.PaperScanFFs)
			}
			if b.Family == Industrial {
				diff := st.ScanFFs - b.PaperScanFFs
				if diff < 0 || diff > st.ScanFFs/50 {
					t.Errorf("MBIST scan FFs = %d vs paper %d (offset %d too large)", st.ScanFFs, b.PaperScanFFs, diff)
				}
			}
			if err := nw.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 22 {
		t.Fatalf("catalog has %d benchmarks, want 22", len(cat))
	}
	bastion, industrial := 0, 0
	for _, b := range cat {
		if b.Family == Bastion {
			bastion++
		} else {
			industrial++
		}
	}
	if bastion != 13 || industrial != 9 {
		t.Fatalf("families: %d bastion, %d industrial", bastion, industrial)
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("FlexScan")
	if !ok || b.Registers != 8485 {
		t.Fatalf("ByName(FlexScan) = %+v, %v", b, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name found")
	}
}

func TestScaledBuildsValidate(t *testing.T) {
	for _, b := range Catalog() {
		for _, s := range []float64{0.02, 0.1, 0.3} {
			nw := b.Build(s)
			if err := nw.Validate(); err != nil {
				t.Fatalf("%s scale %.2f: %v", b.Name, s, err)
			}
			full := b.Build(1)
			if s <= 0.3 && nw.NumScanFFs() > full.NumScanFFs() {
				t.Fatalf("%s scale %.2f larger than full size", b.Name, s)
			}
		}
	}
}

func TestScaleClamped(t *testing.T) {
	b, _ := ByName("BasicSCB")
	a := b.Build(0)   // clamps to 1
	c := b.Build(1.5) // clamps to 1
	if a.Stats() != c.Stats() || a.Stats().Registers != 21 {
		t.Fatal("scale clamping broken")
	}
}

func TestMBISTCountFormulas(t *testing.T) {
	cases := []struct {
		n, m, o            int
		regs, muxes, paper int
	}{
		{1, 5, 5, 113, 15, 548},
		{1, 5, 20, 338, 15, 1523},
		{1, 20, 20, 1313, 45, 6068},
		{2, 5, 5, 224, 28, 1091},
		{2, 5, 20, 674, 28, 3041},
		{2, 20, 20, 2624, 88, 12131},
		{5, 5, 5, 557, 67, 2720},
		{5, 20, 20, 6557, 217, 30320},
		{20, 20, 20, 26222, 862, 121265},
	}
	for _, c := range cases {
		regs, _, muxes := MBISTCounts(c.n, c.m, c.o)
		if regs != c.regs || muxes != c.muxes {
			t.Errorf("MBIST_%d_%d_%d: regs/muxes = %d/%d, want %d/%d", c.n, c.m, c.o, regs, muxes, c.regs, c.muxes)
		}
		if got := MBISTPaperFFs(c.n, c.m, c.o); got != c.paper {
			t.Errorf("MBIST_%d_%d_%d paper FFs = %d, want %d", c.n, c.m, c.o, got, c.paper)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	b, _ := ByName("Mingle")
	a := b.Build(1)
	c := b.Build(1)
	if a.Stats() != c.Stats() || len(a.Muxes) != len(c.Muxes) {
		t.Fatal("builds differ")
	}
	for i := range a.Registers {
		if a.Registers[i].In != c.Registers[i].In || a.Registers[i].Len != c.Registers[i].Len {
			t.Fatalf("register %d differs", i)
		}
	}
}

func TestAttachCircuitBasics(t *testing.T) {
	b, _ := ByName("BasicSCB")
	nw := b.Build(1)
	att := AttachCircuit(nw, DefaultCircuitConfig(), 3)
	if att.Links == 0 {
		t.Fatal("no capture/update links created")
	}
	if err := att.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(att.Circuit.Modules) != len(nw.Modules) {
		t.Fatalf("circuit modules %d != network modules %d", len(att.Circuit.Modules), len(nw.Modules))
	}
	// Every capture/update reference must be a valid circuit FF of the
	// register's own module.
	for r := range nw.Registers {
		reg := &nw.Registers[r]
		for bit, f := range reg.Capture {
			if f < 0 {
				continue
			}
			if int(f) >= att.Circuit.NumFFs() {
				t.Fatalf("register %d bit %d links to bogus FF %d", r, bit, f)
			}
			if att.Circuit.FFs[f].Module != reg.Module {
				t.Fatalf("register %d (module %d) linked to FF of module %d", r, reg.Module, att.Circuit.FFs[f].Module)
			}
		}
	}
}

func TestAttachCircuitDeterministic(t *testing.T) {
	b, _ := ByName("TreeFlat")
	n1 := b.Build(1)
	n2 := b.Build(1)
	a1 := AttachCircuit(n1, DefaultCircuitConfig(), 7)
	a2 := AttachCircuit(n2, DefaultCircuitConfig(), 7)
	if a1.Circuit.NumNodes() != a2.Circuit.NumNodes() || a1.Links != a2.Links {
		t.Fatal("same seed produced different attachments")
	}
	a3 := AttachCircuit(b.Build(1), DefaultCircuitConfig(), 8)
	if a3.Circuit.NumNodes() == a1.Circuit.NumNodes() && a3.Circuit.NumGates() == a1.Circuit.NumGates() {
		t.Log("different seeds produced equal sizes (possible but unusual)")
	}
}

func TestAttachCircuitCapRespected(t *testing.T) {
	b, _ := ByName("Mingle")
	nw := b.Build(1)
	cfg := DefaultCircuitConfig()
	cfg.MaxPortsPerModule = 3
	att := AttachCircuit(nw, cfg, 1)
	counts := make(map[int]int)
	for r := range nw.Registers {
		for _, f := range nw.Registers[r].Capture {
			if f >= 0 {
				counts[att.Circuit.FFs[f].Module]++
			}
		}
	}
	for m, c := range counts {
		if c > 3 {
			t.Fatalf("module %d has %d links, cap 3", m, c)
		}
	}
}

// TestSmallBenchmarkEndToEnd runs the full secure pipeline stages on a
// small benchmark with an attached circuit and random specification.
func TestSmallBenchmarkEndToEnd(t *testing.T) {
	b, _ := ByName("BasicSCB")
	nw := b.Build(1)
	att := AttachCircuit(nw, DefaultCircuitConfig(), 11)
	spec := secspec.Generate(len(nw.Modules), secspec.DefaultGenConfig(), 5)
	an := hybrid.NewAnalysis(nw, att.Circuit, att.Internal, spec, dep.Exact)
	if an.DepStats.FFsDenoted <= 0 {
		t.Fatal("no denoted FFs")
	}
	// The analysis must at least run detection without error.
	_ = an.Violations(nw)
	_ = an.InsecureModulePairs()
}

func BenchmarkBuildFlexScanFull(b *testing.B) {
	bench, _ := ByName("FlexScan")
	for i := 0; i < b.N; i++ {
		bench.Build(1)
	}
}

func BenchmarkAttachCircuitBasicSCB(b *testing.B) {
	bench, _ := ByName("BasicSCB")
	for i := 0; i < b.N; i++ {
		nw := bench.Build(1)
		AttachCircuit(nw, DefaultCircuitConfig(), int64(i))
	}
}

// TestICLRoundTripAllBenchmarks round-trips every (scaled) benchmark
// through the ICL dialect and compares structure.
func TestICLRoundTripAllBenchmarks(t *testing.T) {
	for _, b := range Catalog() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			nw := b.Build(0.05)
			text := icl.String(nw, nil)
			nw2, err := icl.ParseNetwork(text, nil)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if nw2.Stats() != nw.Stats() {
				t.Fatalf("stats changed: %+v vs %+v", nw2.Stats(), nw.Stats())
			}
			for i := range nw.Registers {
				if nw.Registers[i].In != nw2.Registers[i].In || nw.Registers[i].Len != nw2.Registers[i].Len {
					t.Fatalf("register %d differs", i)
				}
			}
			for i := range nw.Muxes {
				for j := range nw.Muxes[i].Inputs {
					if nw.Muxes[i].Inputs[j] != nw2.Muxes[i].Inputs[j] {
						t.Fatalf("mux %d input %d differs", i, j)
					}
				}
			}
			if nw.OutSrc != nw2.OutSrc {
				t.Fatal("scan-out differs")
			}
		})
	}
}
