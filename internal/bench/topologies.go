// Package bench reconstructs the benchmark networks of the paper's
// experimental evaluation: the BASTION suite subset (ITC 2016) and the
// industrial-style scalable MBIST networks, with the exact register,
// scan flip-flop and multiplexer counts of Table I, plus seeded random
// circuit attachment (the paper's benchmarks ship without underlying
// circuits, so the authors — and this reproduction — generate them).
package bench

import (
	"fmt"

	"repro/internal/rsn"
)

// widths distributes total scan flip-flops over n registers as evenly
// as possible (earlier registers get the remainder).
func widths(n, total int) []int {
	if total < n {
		total = n
	}
	w := make([]int, n)
	base, rem := total/n, total%n
	for i := range w {
		w[i] = base
		if i < rem {
			w[i]++
		}
	}
	return w
}

// moduleEvery assigns one module per group of consecutive registers.
func moduleEvery(nw *rsn.Network, group int) func() int {
	count := 0
	cur := -1
	return func() int {
		if count%group == 0 {
			cur = nw.AddModule(fmt.Sprintf("inst%d", len(nw.Modules)))
		}
		count++
		return cur
	}
}

// buildFlatSIB builds a chain of regs registers with muxes bypass
// multiplexers evenly distributed: the topology of SIB-based flat
// networks (TreeFlat) and of SCB-controlled segment chains (BasicSCB,
// Mingle, SoC wrapper chains). Every bypass mux lets the active path
// skip the chain segment it guards.
func buildFlatSIB(name string, regs, ffs, muxes, regsPerModule int) *rsn.Network {
	nw := rsn.New(name)
	mod := moduleEvery(nw, regsPerModule)
	w := widths(regs, ffs)
	if muxes > regs {
		muxes = regs
	}
	// Segment boundaries: after which registers a bypass mux sits.
	segLen := regs / muxes
	extra := regs % muxes
	cur := rsn.ScanIn
	segStart := cur
	placed := 0
	inSeg := 0
	segTarget := segLen
	if extra > 0 {
		segTarget++
		extra--
	}
	for i := 0; i < regs; i++ {
		id := nw.AddRegister(fmt.Sprintf("%s_R%d", name, i), w[i], mod())
		nw.Connect(id, cur)
		cur = rsn.Reg(id)
		inSeg++
		if inSeg == segTarget && placed < muxes {
			m := nw.AddMux(fmt.Sprintf("%s_M%d", name, placed), cur, segStart)
			cur = rsn.Mx(m)
			segStart = cur
			placed++
			inSeg = 0
			segTarget = segLen
			if extra > 0 {
				segTarget++
				extra--
			}
		}
	}
	nw.ConnectOut(cur)
	return nw
}

// buildTreeSIB builds a two-level SIB tree: registers are grouped, each
// group is guarded by a group-bypass mux, and the remaining mux budget
// provides register-level bypasses inside the groups. balanced selects
// equal group sizes; otherwise group sizes grow geometrically
// (TreeUnbalanced).
func buildTreeSIB(name string, regs, ffs, muxes, regsPerModule int, balanced bool) *rsn.Network {
	nw := rsn.New(name)
	mod := moduleEvery(nw, regsPerModule)
	w := widths(regs, ffs)
	if muxes > regs {
		muxes = regs
	}
	groups := muxes / 2
	if groups < 1 {
		groups = 1
	}
	inner := muxes - groups // register-level bypass muxes

	// Group sizes.
	sizes := make([]int, groups)
	if balanced {
		for i := range sizes {
			sizes[i] = regs / groups
			if i < regs%groups {
				sizes[i]++
			}
		}
	} else {
		// Geometric: each group roughly double the previous.
		total := 0
		weight := 1
		wsum := 0
		weightsArr := make([]int, groups)
		for i := range weightsArr {
			weightsArr[i] = weight
			wsum += weight
			if weight < regs {
				weight *= 2
			}
		}
		for i := range sizes {
			sizes[i] = regs * weightsArr[i] / wsum
			if sizes[i] < 1 {
				sizes[i] = 1
			}
			total += sizes[i]
		}
		// Fix rounding drift on the last group.
		sizes[groups-1] += regs - total
		if sizes[groups-1] < 1 {
			// Redistribute if the correction went negative.
			deficit := 1 - sizes[groups-1]
			sizes[groups-1] = 1
			for i := 0; i < groups-1 && deficit > 0; i++ {
				take := sizes[i] - 1
				if take > deficit {
					take = deficit
				}
				sizes[i] -= take
				deficit -= take
			}
		}
	}

	cur := rsn.ScanIn
	ri := 0
	mi := 0
	innerPlaced := 0
	for g := 0; g < groups; g++ {
		groupStart := cur
		for k := 0; k < sizes[g]; k++ {
			id := nw.AddRegister(fmt.Sprintf("%s_R%d", name, ri), w[ri], mod())
			nw.Connect(id, cur)
			cur = rsn.Reg(id)
			ri++
			if innerPlaced < inner {
				// Register-level bypass (a SIB around one register).
				m := nw.AddMux(fmt.Sprintf("%s_M%d", name, mi), cur, nw.Registers[id].In)
				mi++
				cur = rsn.Mx(m)
				innerPlaced++
			}
		}
		// Group bypass.
		m := nw.AddMux(fmt.Sprintf("%s_M%d", name, mi), cur, groupStart)
		mi++
		cur = rsn.Mx(m)
	}
	nw.ConnectOut(cur)
	return nw
}

// buildSerialBypass builds FlexScan's topology: a long serial chain of
// one-bit registers where every stage of two registers sits behind its
// own bypass multiplexer, all muxes in series. With x muxes the network
// has 2x-1 registers; each register belongs to its own module (the
// paper's FlexScan integration assumption).
func buildSerialBypass(name string, muxes int) *rsn.Network {
	nw := rsn.New(name)
	cur := rsn.ScanIn
	ri := 0
	addReg := func() rsn.Ref {
		m := nw.AddModule(fmt.Sprintf("inst%d", ri))
		id := nw.AddRegister(fmt.Sprintf("%s_R%d", name, ri), 1, m)
		nw.Connect(id, cur)
		ri++
		return rsn.Reg(id)
	}
	for k := 0; k < muxes; k++ {
		stageStart := cur
		r := addReg()
		cur = r
		if k > 0 { // all stages except the first have two registers
			cur = addReg()
		}
		m := nw.AddMux(fmt.Sprintf("%s_M%d", name, k), cur, stageStart)
		cur = rsn.Mx(m)
	}
	nw.ConnectOut(cur)
	return nw
}
