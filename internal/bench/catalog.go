package bench

import (
	"fmt"
	"math"

	"repro/internal/rsn"
)

// Family distinguishes the two benchmark sets of Table I.
type Family uint8

// Benchmark families.
const (
	Bastion Family = iota
	Industrial
)

func (f Family) String() string {
	if f == Bastion {
		return "Bastion"
	}
	return "Industrial"
}

// Benchmark describes one reconstructable benchmark network.
type Benchmark struct {
	Name   string
	Family Family
	// Registers, ScanFFs and Muxes are the structural counts of the
	// full-size generated network. Registers and Muxes match Table I
	// exactly for every benchmark; ScanFFs matches exactly for the
	// BASTION set and is 8·n above the paper's fit for MBIST_n_m_o.
	Registers, ScanFFs, Muxes int
	// PaperScanFFs is Table I's scan flip-flop count.
	PaperScanFFs int

	build func(scale float64) *rsn.Network
}

// Build generates the network at the given scale. Scale 1 reproduces
// the full-size benchmark; smaller scales shrink the analysis load
// (for runs on bounded hardware) while keeping the topology style:
// scan flip-flops scale linearly, register and mux counts by the
// square root (preserving structure). Scale is clamped to (0, 1].
func (b Benchmark) Build(scale float64) *rsn.Network {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return b.build(scale)
}

// ScaleForTarget returns the scale that brings the benchmark's scan
// flip-flop count down to roughly target (1 if already smaller).
func (b Benchmark) ScaleForTarget(target int) float64 {
	if target <= 0 || b.ScanFFs <= target {
		return 1
	}
	return float64(target) / float64(b.ScanFFs)
}

func scaleInt(v int, s float64, min int) int {
	n := int(math.Round(float64(v) * s))
	if n < min {
		n = min
	}
	return n
}

func bastionEntry(name string, regs, ffs, muxes, regsPerModule int,
	build func(r, f, x int) *rsn.Network) Benchmark {
	return Benchmark{
		Name:         name,
		Family:       Bastion,
		Registers:    regs,
		ScanFFs:      ffs,
		Muxes:        muxes,
		PaperScanFFs: ffs,
		build: func(s float64) *rsn.Network {
			// Registers/muxes shrink by sqrt(s) so structure survives
			// even when the flip-flop budget shrinks linearly.
			sq := math.Sqrt(s)
			r := scaleInt(regs, sq, 4)
			f := scaleInt(ffs, s, r)
			x := scaleInt(muxes, sq, 1)
			if x > r {
				x = r
			}
			return build(r, f, x)
		},
	}
}

func mbistEntry(n, m, o int) Benchmark {
	regs, ffs, muxes := MBISTCounts(n, m, o)
	return Benchmark{
		Name:         mbistName(n, m, o),
		Family:       Industrial,
		Registers:    regs,
		ScanFFs:      ffs,
		Muxes:        muxes,
		PaperScanFFs: MBISTPaperFFs(n, m, o),
		build: func(s float64) *rsn.Network {
			if s >= 1 {
				return buildMBIST(n, m, o)
			}
			// Search the hierarchy parameters whose flip-flop count
			// best matches the scaled target.
			target := float64(ffs) * s
			bestN, bestM, bestO := 1, 1, 1
			best := math.Inf(1)
			for ns := 1; ns <= n; ns++ {
				for ms := 1; ms <= m; ms++ {
					for os_ := 1; os_ <= o; os_++ {
						_, f, _ := MBISTCounts(ns, ms, os_)
						d := math.Abs(float64(f) - target)
						if d < best {
							best = d
							bestN, bestM, bestO = ns, ms, os_
						}
					}
				}
			}
			return buildMBIST(bestN, bestM, bestO)
		},
	}
}

func mbistName(n, m, o int) string {
	return fmt.Sprintf("MBIST_%d_%d_%d", n, m, o)
}

// Catalog returns all 22 benchmarks of Table I in the paper's order.
func Catalog() []Benchmark {
	mk := func(name string, regs, ffs, muxes, rpm int, kind string) Benchmark {
		return bastionEntry(name, regs, ffs, muxes, rpm, func(r, f, x int) *rsn.Network {
			switch kind {
			case "flat":
				return buildFlatSIB(name, r, f, x, rpm)
			case "balanced":
				return buildTreeSIB(name, r, f, x, rpm, true)
			case "unbalanced":
				return buildTreeSIB(name, r, f, x, rpm, false)
			}
			panic("bench: unknown kind " + kind)
		})
	}

	flexScan := Benchmark{
		Name:         "FlexScan",
		Family:       Bastion,
		Registers:    8485,
		ScanFFs:      8485,
		Muxes:        4243,
		PaperScanFFs: 8485,
		build: func(s float64) *rsn.Network {
			x := scaleInt(4243, s, 2)
			return buildSerialBypass("FlexScan", x)
		},
	}

	return []Benchmark{
		mk("BasicSCB", 21, 176, 10, 3, "flat"),
		mk("Mingle", 22, 270, 13, 3, "flat"),
		mk("TreeFlat", 24, 101, 24, 2, "flat"),
		mk("TreeFlatEx", 122, 5194, 59, 4, "balanced"),
		mk("TreeBalanced", 90, 5581, 46, 4, "balanced"),
		mk("TreeUnbalanced", 63, 41887, 28, 4, "unbalanced"),
		mk("q12710", 50, 26185, 27, 5, "flat"),
		mk("t512505", 287, 77005, 159, 5, "flat"),
		mk("p22810", 524, 30098, 270, 5, "balanced"),
		mk("a586710", 64, 41667, 32, 5, "flat"),
		mk("p34392", 197, 23196, 96, 5, "balanced"),
		mk("p93791", 1185, 98611, 596, 5, "balanced"),
		flexScan,
		mbistEntry(1, 5, 5),
		mbistEntry(1, 5, 20),
		mbistEntry(1, 20, 20),
		mbistEntry(2, 5, 5),
		mbistEntry(2, 5, 20),
		mbistEntry(2, 20, 20),
		mbistEntry(5, 5, 5),
		mbistEntry(5, 20, 20),
		mbistEntry(20, 20, 20),
	}
}

// ByName finds a benchmark in the catalog.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Catalog() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
