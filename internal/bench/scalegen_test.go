package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/icl"
	"repro/internal/rsn"
)

func TestStreamScaleICLParsesBack(t *testing.T) {
	var out, ovb bytes.Buffer
	cfg := ScaleGenConfig{
		TargetScanFFs: 2000,
		SIBFanout:     4,
		LeafLen:       8,
		Modules:       6,
		WithSpec:      true,
		Seed:          11,
		ObfKeyBits:    10,
		ObfMuxShare:   -1,
	}
	st, err := StreamScaleICL(&out, &ovb, cfg)
	if err != nil {
		t.Fatalf("StreamScaleICL: %v", err)
	}
	nw, spec, err := icl.ParseNetworkAndSpec(out.String(), nil)
	if err != nil {
		t.Fatalf("streamed ICL does not parse: %v", err)
	}
	ns := nw.Stats()
	if ns.Registers != st.Registers || ns.ScanFFs != st.ScanFFs || ns.Muxes != st.Muxes {
		t.Fatalf("parsed stats %+v != streamed stats %+v", ns, st)
	}
	if ns.ScanFFs != cfg.TargetScanFFs {
		t.Fatalf("got %d scan FFs, want %d", ns.ScanFFs, cfg.TargetScanFFs)
	}
	if spec == nil || spec.NumModules() != st.Modules {
		t.Fatalf("embedded spec missing or wrong module count")
	}
	// The network must be structurally sound: a default configuration
	// selects a full scan path.
	cfgv := make(rsn.Config, ns.Muxes)
	path, err := nw.ActivePath(cfgv)
	if err != nil {
		t.Fatalf("ActivePath: %v", err)
	}
	if len(path) != cfg.TargetScanFFs {
		t.Fatalf("all-include path has %d cells, want %d", len(path), cfg.TargetScanFFs)
	}
	// The overlay sidecar resolves against the parsed network and
	// carries the seed-derived defender key.
	ov, key, err := rsn.ParseObfuscation(ovb.Bytes(), nw)
	if err != nil {
		t.Fatalf("overlay sidecar: %v", err)
	}
	if ov.NumKeyBits != 10 || len(ov.Gates) != 10 {
		t.Fatalf("overlay: %d bits, %d gates", ov.NumKeyBits, len(ov.Gates))
	}
	want := rsn.KeyFromSeed(cfg.Seed, 10)
	if rsn.KeyHex(key) != rsn.KeyHex(want) {
		t.Fatalf("sidecar key %s, want %s", rsn.KeyHex(key), rsn.KeyHex(want))
	}
	// The keyed simulator accepts the (network, overlay, key) triple.
	if _, err := rsn.NewKeyedSimulator(nw, ov, key); err != nil {
		t.Fatalf("NewKeyedSimulator: %v", err)
	}
}

func TestStreamScaleICLDeterministic(t *testing.T) {
	gen := func(seed int64) (string, string) {
		var out, ovb bytes.Buffer
		_, err := StreamScaleICL(&out, &ovb, ScaleGenConfig{
			TargetScanFFs: 500, SIBFanout: 3, LeafLen: 5, Seed: seed,
			ObfKeyBits: 6, ObfMuxShare: -1, ObfDynamic: true,
		})
		if err != nil {
			t.Fatalf("StreamScaleICL: %v", err)
		}
		return out.String(), ovb.String()
	}
	a1, o1 := gen(7)
	a2, o2 := gen(7)
	if a1 != a2 || o1 != o2 {
		t.Fatal("same seed streamed different bytes")
	}
	_, o3 := gen(8)
	if o1 == o3 {
		t.Fatal("different seeds streamed identical overlays")
	}
}

func TestStreamScaleICLSmallAndErrors(t *testing.T) {
	var out bytes.Buffer
	st, err := StreamScaleICL(&out, nil, ScaleGenConfig{TargetScanFFs: 3, LeafLen: 16})
	if err != nil {
		t.Fatalf("StreamScaleICL: %v", err)
	}
	if st.Registers != 1 || st.Muxes != 1 {
		t.Fatalf("tiny network stats %+v", st)
	}
	nw, err := icl.ParseNetwork(out.String(), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if nw.Stats().ScanFFs != 3 {
		t.Fatalf("scan FFs %d", nw.Stats().ScanFFs)
	}
	if _, err := StreamScaleICL(&out, nil, ScaleGenConfig{TargetScanFFs: 0}); err == nil {
		t.Fatal("TargetScanFFs 0 accepted")
	}
	if _, err := StreamScaleICL(&out, nil, ScaleGenConfig{TargetScanFFs: 10, ObfKeyBits: 4}); err == nil {
		t.Fatal("overlay without a sidecar writer accepted")
	}
	if _, err := StreamScaleICL(&out, &bytes.Buffer{}, ScaleGenConfig{TargetScanFFs: 16, LeafLen: 16, ObfKeyBits: 40}); err == nil {
		t.Fatal("key bits beyond gate capacity accepted")
	}
}

func TestStreamScaleICLLastLeafRemainder(t *testing.T) {
	var out bytes.Buffer
	st, err := StreamScaleICL(&out, nil, ScaleGenConfig{TargetScanFFs: 100, LeafLen: 16, SIBFanout: 4})
	if err != nil {
		t.Fatalf("StreamScaleICL: %v", err)
	}
	if st.Registers != 7 {
		t.Fatalf("registers %d, want ceil(100/16)=7", st.Registers)
	}
	if !strings.Contains(out.String(), "Length 4;") {
		t.Fatal("last leaf should carry the remainder length 4")
	}
	nw, err := icl.ParseNetwork(out.String(), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if nw.Stats().ScanFFs != 100 {
		t.Fatalf("scan FFs %d, want 100", nw.Stats().ScanFFs)
	}
}
